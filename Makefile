# Developer entry points for the FastForward reproduction.
#
# `make check` is the pre-merge gate: the tier-1 flow (build + full test
# suite) plus `go vet`, the fflint domain analyzers (determinism, seed
# flow, dB-unit discipline, metric-name registry, and the daemon/fleet
# service discipline: lockscope, netdeadline, errflow, wirecodes — see
# DESIGN.md §7), a race-detector pass over the packages the parallel
# sweep engine made concurrent (internal/par, internal/fft,
# internal/ident, and the testbed's parallel paths) with a drift guard
# (racecheck) that fails if a concurrent package is missing from that
# list, a manifest smoke run of every cmd binary (see OBSERVABILITY.md),
# and the fleet sweep smokes — local gates and the served wire mode
# against real ffrelayd subprocesses (DESIGN.md §11, OPERATIONS.md).

GO ?= go
SMOKE := .smoke

.PHONY: all build test vet lint race racecheck check bench bench-allocs bench-sessions manifest-smoke daemon-smoke fleet-smoke fleet-served-smoke fuzz-smoke

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis: detrand (no wall-clock or unseeded
# randomness in sweep-path packages), seedflow (worker rngs derive from
# rng.ItemSeed), dbunits (dB/linear naming discipline), obsmetrics
# (metric names match internal/obs/METRICS.txt, OBSERVABILITY.md, and
# the manifestcheck -require lists above), allocfree (no per-block
# allocation inside Process/ProcessInto bodies), lockscope (no blocking
# work or lock-order inversions while a mutex is held), netdeadline
# (conn I/O in internal/relayd is always deadline-armed), errflow (no
# dropped errors on protocol/admission/status paths), wirecodes
# (REFUSE/frame literals come from protocol.go, which cross-validates
# against OPERATIONS.md). Suppress a finding with
# `//fflint:allow <analyzer> <reason>` — the reason is mandatory, and
# the driver audits the allows themselves: stale, unknown-analyzer, or
# malformed ones are findings too. The binary is built once into
# bin/fflint so repeated lints (and CI) reuse the compile.
bin/fflint: $(shell find cmd/fflint internal/analysis -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o bin/fflint ./cmd/fflint

lint: build bin/fflint
	./bin/fflint ./...

# The race pass runs the concurrent packages in full, plus the testbed's
# parallel-vs-serial determinism tests (the full testbed suite under the
# race detector takes tens of minutes; the determinism tests exercise every
# concurrent code path). internal/obs is written to from every worker and
# internal/sic publishes through shared registries, so both run here too
# (sic in -short mode: the long characterization sweeps are Short-gated,
# the concurrent-registry tests are not).
race:
	$(GO) test -race ./internal/par ./internal/fft ./internal/ident ./internal/obs ./internal/pipeline ./internal/relayd ./internal/fleet
	$(GO) test -race -short ./internal/sic
	$(GO) test -race -run 'Parallel|Slot|Determinism' ./internal/testbed

# Drift guard for the hand-maintained race list above: any package with
# tests whose sources spawn goroutines, use channels/select, import
# sync, or fan out through internal/par must appear in the race recipe.
racecheck:
	$(GO) run ./cmd/racecheck

check: test vet lint race racecheck manifest-smoke daemon-smoke fleet-smoke fleet-served-smoke

# Run every cmd binary with -manifest on a tiny configuration and
# validate the JSON it writes; ffsim additionally must report nonzero
# cancellation and amplification metrics (the OBSERVABILITY.md
# acceptance assertion), and its manifest metrics must be bit-identical
# between a serial and a 4-worker run.
manifest-smoke: build
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) run ./cmd/ffsim -fig 12 -grid 4 -stride 13 -workers 1 -manifest $(SMOKE)/ffsim.json > /dev/null
	$(GO) run ./cmd/ffsim -fig 12 -grid 4 -stride 13 -workers 4 -manifest $(SMOKE)/ffsim-w4.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require sic.analog_db,sic.total_db,relay.amp_db,testbed.cells $(SMOKE)/ffsim.json
	$(GO) run ./cmd/manifestcheck -diff $(SMOKE)/ffsim.json $(SMOKE)/ffsim-w4.json
	$(GO) run ./cmd/heatmap -grid 3 -manifest $(SMOKE)/heatmap.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require testbed.cells,relay.amp_db $(SMOKE)/heatmap.json
	$(GO) run ./cmd/cancel -trials 2 -manifest $(SMOKE)/cancel.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require sic.analog_db,sic.total_db,sic.tune_iterations $(SMOKE)/cancel.json
	$(GO) run ./cmd/fingerprint -locations 4 -packets 50 -manifest $(SMOKE)/fingerprint.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require ident.locations,ident.packets $(SMOKE)/fingerprint.json
	rm -rf $(SMOKE)

# End-to-end daemon check (see OPERATIONS.md): one process starts a real
# TCP ffrelayd, streams two concurrent bit-verified sessions, provokes a
# Sec 3.5 budget refusal, scrapes the status endpoint, drains cleanly,
# and writes a manifest whose relayd.* metrics must all be present.
daemon-smoke: build
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) run ./cmd/ffrelayd -mode smoke -manifest $(SMOKE)/relayd.json
	$(GO) run ./cmd/manifestcheck -require relayd.sessions_admitted,relayd.sessions_completed,relayd.sessions_refused.budget,relayd.frames_in,relayd.frames_out,relayd.amp_granted_db $(SMOKE)/relayd.json
	rm -rf $(SMOKE)

# Fleet smoke (see DESIGN.md §11): a small relay-pool sweep with its
# forced degradation event must publish every fleet.* metric and be
# bit-identical between a serial and a 4-worker run. Seed 2 is a grid
# where every counter is naturally nonzero (refusals, spills,
# migrations, and strandings all occur), so -require can demand all 12.
fleet-smoke: build
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) run ./cmd/ffsim -fig fleet -fleet-relays 1,3 -fleet-clients 20,40 -workers 1 -sic-trials 0 -seed 2 -manifest $(SMOKE)/fleet.json > /dev/null
	$(GO) run ./cmd/ffsim -fig fleet -fleet-relays 1,3 -fleet-clients 20,40 -workers 4 -sic-trials 0 -seed 2 -manifest $(SMOKE)/fleet-w4.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require fleet.cells,fleet.relays,fleet.clients,fleet.assigned,fleet.refused,fleet.spilled,fleet.migrations,fleet.stranded,fleet.amp_db,fleet.relay_sessions,fleet.aggregate_mbps,fleet.p99_client_mbps $(SMOKE)/fleet.json
	$(GO) run ./cmd/manifestcheck -diff $(SMOKE)/fleet.json $(SMOKE)/fleet-w4.json
	rm -rf $(SMOKE)

# Served fleet smoke (see OPERATIONS.md "Served fleet mode"): the same
# seeded grid as fleet-smoke, once against in-process gates and once
# against real ffrelayd subprocesses over loopback TCP, with a session
# cap that provokes genuine session_limit REFUSEs (so the wire's
# REFUSE → spill mapping is on the critical path). The wire run must
# publish every fleet.wire.* transport counter (io_errors excluded — it
# must stay zero and -require demands nonzero), and the two manifests
# must be bit-identical outside the fleet.wire. prefix.
fleet-served-smoke: build
	rm -rf $(SMOKE) && mkdir -p $(SMOKE)
	$(GO) build -o $(SMOKE)/ffrelayd ./cmd/ffrelayd
	$(GO) run ./cmd/ffsim -fig fleet -fleet-relays 1,3 -fleet-clients 20,40 -fleet-cap 8 -workers 4 -sic-trials 0 -seed 2 -manifest $(SMOKE)/fleet-local.json > /dev/null
	$(GO) run ./cmd/ffsim -fig fleet -fleet-relays 1,3 -fleet-clients 20,40 -fleet-cap 8 -workers 4 -sic-trials 0 -seed 2 -serve-mode wire -fleet-exec $(SMOKE)/ffrelayd -manifest $(SMOKE)/fleet-wire.json > /dev/null
	$(GO) run ./cmd/manifestcheck -require fleet.spilled,fleet.wire.hellos,fleet.wire.accepted,fleet.wire.refused,fleet.wire.releases,fleet.wire.load_queries,fleet.wire.blocks,fleet.wire.verified_sessions $(SMOKE)/fleet-wire.json
	$(GO) run ./cmd/manifestcheck -diff -ignore fleet.wire. $(SMOKE)/fleet-local.json $(SMOKE)/fleet-wire.json
	rm -rf $(SMOKE)

# Short fuzz runs over every fuzz target (go accepts one -fuzz target per
# invocation). Seed corpora make even short runs meaningful; CI runs this
# with the default budget. Override with e.g. FUZZTIME=2m.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDetectPacket$$' -fuzztime $(FUZZTIME) ./internal/ofdm
	$(GO) test -run '^$$' -fuzz '^FuzzEstimateCFO$$' -fuzztime $(FUZZTIME) ./internal/ofdm
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/wifi
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFeedback$$' -fuzztime $(FUZZTIME) ./internal/protocol
	$(GO) test -run '^$$' -fuzz '^FuzzDetect$$' -fuzztime $(FUZZTIME) ./internal/ident
	$(GO) test -run '^$$' -fuzz '^FuzzChainSegmentation$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzSoARoundTrip$$' -fuzztime $(FUZZTIME) ./internal/dsp
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/relayd
	$(GO) test -run '^$$' -fuzz '^FuzzAssignment$$' -fuzztime $(FUZZTIME) ./internal/fleet

# Record the perf baseline (see EXPERIMENTS.md "Performance baseline").
# The pipeline micro-benchmarks (relay block path + SIC filter direct vs
# FFT) additionally write machine-readable results to BENCH_pipeline.json.
bench:
	$(GO) test -bench . -benchtime 1x .
	$(GO) test -bench Forward -benchtime 100000x ./internal/fft
	$(GO) test -run '^$$' -bench 'FFRelayProcess|MIMORelayProcess|SICFilter' -benchmem -json . > BENCH_pipeline.json

# Alloc-regression gate: the per-block hot paths (SIC filter, relay
# forward chain, batched multi-session sweep) must stay at 0 allocs/op.
# Any benchmark line reporting nonzero allocs/op fails the target.
bench-allocs: build
	$(GO) test -run '^$$' -bench 'SICFilter|FFRelayProcess|PipelineBatch' -benchmem -benchtime 100x . \
		| tee /dev/stderr \
		| awk '/allocs\/op/ { if ($$(NF-1)+0 != 0) bad = 1 } END { if (bad) { print "FAIL: nonzero allocs/op in a per-block hot path"; exit 1 } }'

# Machine benchmark: how many concurrent real-time 20 MHz full-duplex
# sessions one core carries (see cmd/ffsim -fig sessions). The gauge may
# legitimately read 0 on a slow or heavily loaded host, so the check
# requires the sweep machinery's counters, not a nonzero session count.
bench-sessions: build
	$(GO) run ./cmd/ffsim -fig sessions -sic-trials 0 -manifest BENCH_sessions.json
	$(GO) run ./cmd/manifestcheck -require pipeline.batch.sweeps,pipeline.batch.sessions,pipeline.blocks,pipeline.soa_blocks BENCH_sessions.json
