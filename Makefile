# Developer entry points for the FastForward reproduction.
#
# `make check` is the pre-merge gate: the tier-1 flow (build + full test
# suite) plus `go vet` and a race-detector pass over the packages the
# parallel sweep engine made concurrent (internal/par, internal/fft,
# internal/ident, and the testbed's parallel paths).

GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race pass runs the concurrent packages in full, plus the testbed's
# parallel-vs-serial determinism tests (the full testbed suite under the
# race detector takes tens of minutes; the determinism tests exercise every
# concurrent code path).
race:
	$(GO) test -race ./internal/par ./internal/fft ./internal/ident
	$(GO) test -race -run 'Parallel|Slot|Determinism' ./internal/testbed

check: test vet race

# Record the perf baseline (see EXPERIMENTS.md "Performance baseline").
bench:
	$(GO) test -bench . -benchtime 1x .
	$(GO) test -bench Forward -benchtime 100000x ./internal/fft
