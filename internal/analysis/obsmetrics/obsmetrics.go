// Package obsmetrics enforces the metric-name contract between code,
// registry, documentation, and the manifest validator. Every metric-name
// string passed to internal/obs Counter/Gauge/Histogram must appear in
// the checked-in registry (internal/obs/METRICS.txt); when the obs
// package itself is analyzed, the registry is additionally
// cross-validated against OBSERVABILITY.md (every registered name must
// be documented) and the Makefile's `manifestcheck -require` lists
// (every required name must be registered). A renamed metric therefore
// fails `make lint` immediately instead of surfacing later as a manifest
// diff in `make manifest-smoke` — or worse, as a silently weakened
// -require assertion.
//
// Dynamic names built from a literal prefix (`"relay.amp_bound." +
// b.String()`) are checked by prefix: at least one registered name must
// extend the literal part. Names with no literal prefix at all are
// unverifiable and flagged; route them through a registered prefix or
// allowlist the site with a reason.
package obsmetrics

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fastforward/internal/analysis"
)

// Config locates the registry and its cross-validation sources, all
// relative to the module root of the package under analysis. Zero-value
// fields take the production defaults.
type Config struct {
	RegistryFile      string // default internal/obs/METRICS.txt
	ObservabilityFile string // default OBSERVABILITY.md
	MakefileFile      string // default Makefile
	// ObsSuffixes identify the metrics package: method calls on its
	// Registry type are checked, and analyzing the package itself
	// triggers registry cross-validation.
	ObsSuffixes []string
}

// metricMethods are the Registry constructors whose first argument is a
// metric name. Stage timers are deliberately out of scope: timings are
// wall-clock diagnostics, not part of the deterministic metrics contract.
var metricMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// New returns the obsmetrics analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.RegistryFile == "" {
		cfg.RegistryFile = filepath.Join("internal", "obs", "METRICS.txt")
	}
	if cfg.ObservabilityFile == "" {
		cfg.ObservabilityFile = "OBSERVABILITY.md"
	}
	if cfg.MakefileFile == "" {
		cfg.MakefileFile = "Makefile"
	}
	if cfg.ObsSuffixes == nil {
		cfg.ObsSuffixes = []string{"obs"}
	}
	registries := map[string]*registry{}
	return &analysis.Analyzer{
		Name: "obsmetrics",
		Doc:  "require obs metric names to appear in the checked-in registry, cross-validated against OBSERVABILITY.md and the Makefile -require lists",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg, registries)
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

type registry struct {
	names map[string]bool
	err   error
}

func loadRegistry(path string) *registry {
	data, err := os.ReadFile(path)
	if err != nil {
		return &registry{err: err}
	}
	r := &registry{names: map[string]bool{}}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r.names[line] = true
	}
	return r
}

func (r *registry) has(name string) bool { return r.names[name] }

func (r *registry) hasPrefix(prefix string) bool {
	for n := range r.names {
		if strings.HasPrefix(n, prefix) && n != prefix {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, cfg Config, registries map[string]*registry) error {
	if pass.ModuleDir == "" {
		return fmt.Errorf("obsmetrics needs Pass.ModuleDir to locate %s", cfg.RegistryFile)
	}
	reg, ok := registries[pass.ModuleDir]
	if !ok {
		reg = loadRegistry(filepath.Join(pass.ModuleDir, cfg.RegistryFile))
		registries[pass.ModuleDir] = reg
	}

	usesObs := pathMatches(pass.Pkg.Path(), cfg.ObsSuffixes)
	for _, imp := range pass.Pkg.Imports() {
		if pathMatches(imp.Path(), cfg.ObsSuffixes) {
			usesObs = true
		}
	}
	if !usesObs {
		return nil
	}
	if reg.err != nil {
		pass.Reportf(pass.Files[0].Name.Pos(), "metric registry unavailable: %v", reg.err)
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method := registryMethod(pass, call, cfg); method != "" && len(call.Args) > 0 {
				checkName(pass, call.Args[0], method, reg)
			}
			return true
		})
	}

	if pathMatches(pass.Pkg.Path(), cfg.ObsSuffixes) {
		crossValidate(pass, cfg, reg)
	}
	return nil
}

// registryMethod returns the metric-constructor name when call is
// (*obs.Registry).Counter/Gauge/Histogram, else "".
func registryMethod(pass *analysis.Pass, call *ast.CallExpr, cfg Config) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !metricMethods[sel.Sel.Name] {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return ""
	}
	if !pathMatches(named.Obj().Pkg().Path(), cfg.ObsSuffixes) {
		return ""
	}
	return sel.Sel.Name
}

func checkName(pass *analysis.Pass, arg ast.Expr, method string, reg *registry) {
	arg = ast.Unparen(arg)
	// Constant-foldable names (literals, consts, literal concatenations)
	// are checked exactly.
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		name := stringConstant(tv)
		if name == "" {
			return
		}
		if !reg.has(name) {
			pass.Reportf(arg.Pos(), "metric %q passed to %s is not in the metric registry (internal/obs/METRICS.txt); register and document it in OBSERVABILITY.md", name, method)
		}
		return
	}
	// Dynamic name: require a registered extension of the literal prefix.
	if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		if tv, ok := pass.TypesInfo.Types[bin.X]; ok && tv.Value != nil {
			prefix := stringConstant(tv)
			if prefix != "" {
				if !reg.hasPrefix(prefix) {
					pass.Reportf(arg.Pos(), "no registered metric extends the dynamic prefix %q passed to %s; register the concrete names", prefix, method)
				}
				return
			}
		}
	}
	pass.Reportf(arg.Pos(), "metric name passed to %s is not a checkable literal; use a registered literal (or prefix + dynamic suffix), or annotate //fflint:allow obsmetrics <reason>", method)
}

// metricNameRE is what a documented metric name looks like inside
// OBSERVABILITY.md backticks: dotted lowercase segments.
var metricNameRE = regexp.MustCompile("`([a-z][a-z0-9_]*(?:\\.[a-z0-9_]+)+)`")

// requireRE pulls the comma-joined lists out of `manifestcheck -require a,b`.
var requireRE = regexp.MustCompile(`-require\s+([A-Za-z0-9_.,]+)`)

// crossValidate holds the registry to its two external contracts.
func crossValidate(pass *analysis.Pass, cfg Config, reg *registry) {
	at := pass.Files[0].Name.Pos()

	docPath := filepath.Join(pass.ModuleDir, cfg.ObservabilityFile)
	doc, docErr := os.ReadFile(docPath)
	if docErr != nil {
		pass.Reportf(at, "cannot cross-validate metric registry: %v", docErr)
	} else {
		documented := map[string]bool{}
		for _, m := range metricNameRE.FindAllStringSubmatch(string(doc), -1) {
			documented[m[1]] = true
		}
		for _, name := range sortedNames(reg) {
			if !documented[name] {
				pass.Reportf(at, "registered metric %q is not documented in %s", name, cfg.ObservabilityFile)
			}
		}
	}

	mkPath := filepath.Join(pass.ModuleDir, cfg.MakefileFile)
	mk, mkErr := os.ReadFile(mkPath)
	if mkErr != nil {
		pass.Reportf(at, "cannot cross-validate metric registry: %v", mkErr)
		return
	}
	for _, line := range strings.Split(string(mk), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue // prose in Makefile comments can mention -require
		}
		for _, m := range requireRE.FindAllStringSubmatch(line, -1) {
			for _, name := range strings.Split(m[1], ",") {
				if name != "" && !reg.has(name) {
					pass.Reportf(at, "Makefile requires manifest metric %q that is not in the metric registry", name)
				}
			}
		}
	}
}

func sortedNames(reg *registry) []string {
	names := make([]string, 0, len(reg.names))
	for n := range reg.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// stringConstant returns the string value of a constant-valued
// expression, or "" when the constant is not a string.
func stringConstant(tv types.TypeAndValue) string {
	unq, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return ""
	}
	return unq
}
