package obsmetrics_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/obsmetrics"
)

func TestObsMetrics(t *testing.T) {
	a := obsmetrics.New(obsmetrics.Config{
		RegistryFile:      "METRICS.txt",
		ObservabilityFile: "OBS.md",
		MakefileFile:      "Makefile",
	})
	analysistest.Run(t, "testdata", a, "metricuse_ok", "metricuse_bad", "crossval/obs")
}
