package obs // want `registered metric "b.undocumented_db" is not documented in OBS.md` `Makefile requires manifest metric "d.missing_db" that is not in the metric registry`

// The cross-validation fixture: analyzing a package whose import path
// ends in /obs holds the sibling METRICS.txt to OBS.md (every registered
// name documented) and to the Makefile -require lists (every required
// name registered). Both violations report at the package clause above.
