// Package metricuse_bad exercises the flagged metric-name forms.
package metricuse_bad

import "obs"

func register(r *obs.Registry, mode string) {
	r.Counter("sweep.cells", "cells")                // registered: allowed
	r.Counter("sweep.typo_cells", "cells")           // want `metric "sweep.typo_cells" passed to Counter is not in the metric registry`
	r.Histogram("sweep.rate_mbs", "Mbps", nil)       // want `metric "sweep.rate_mbs" passed to Histogram is not in the metric registry`
	r.Counter("sweep.unknown_prefix."+mode, "cells") // want `no registered metric extends the dynamic prefix "sweep.unknown_prefix."`
	r.Gauge(pick(mode), "dB")                        // want `metric name passed to Gauge is not a checkable literal`
}

func pick(mode string) string { return "sweep." + mode }
