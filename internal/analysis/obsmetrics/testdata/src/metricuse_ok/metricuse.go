// Package metricuse_ok exercises the allowed metric-name forms:
// registered literals, registered dynamic prefixes, stage timers (out of
// scope), and the annotated escape hatch.
package metricuse_ok

import "obs"

func register(r *obs.Registry, mode string) {
	r.Counter("sweep.cells", "cells")
	r.Gauge("sweep.final_db", "dB")
	r.Histogram("sweep.rate_mbps", "Mbps", nil)
	r.Counter("sweep.bound."+mode, "cells") // registered names extend the prefix
	r.Stage("sweep.run")                    // stage timers are wall-clock diagnostics, unregistered
	name := computed()
	r.Counter(name, "cells") //fflint:allow obsmetrics fixture demonstrating a documented dynamic name
}

func computed() string { return "sweep.cells" }
