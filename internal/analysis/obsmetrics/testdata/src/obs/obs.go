// Package obs is a stub of fastforward/internal/obs for obsmetrics
// fixtures: the Registry constructors whose first argument is a metric
// name.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name, unit string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, unit string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram { return &Histogram{} }

// Stage timers are out of scope for the registry contract.
func (r *Registry) Stage(name string) func() { return func() {} }
