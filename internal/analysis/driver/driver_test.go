package driver_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastforward/internal/analysis"
	"fastforward/internal/analysis/dbunits"
	"fastforward/internal/analysis/detrand"
	"fastforward/internal/analysis/driver"
	"fastforward/internal/analysis/obsmetrics"
	"fastforward/internal/analysis/seedflow"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// The sweep-path packages the analyzers guard must load through the real
// `go list -export` driver and come up clean. This is the same contract
// `make lint` enforces repo-wide; keeping a slice of it in `go test`
// means a regression fails fast even when lint isn't run.
func TestDefaultAnalyzersCleanOnSweepPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	root := moduleRoot(t)
	analyzers := []*analysis.Analyzer{
		detrand.Default(),
		seedflow.Default(),
		dbunits.Default(),
		obsmetrics.Default(),
	}
	diags, err := driver.Run(root, analyzers,
		"fastforward/internal/obs",
		"fastforward/internal/relay",
		"fastforward/internal/par",
	)
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// writeModule lays out a throwaway module for the go-list-backed loader.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module m\n\ngo 1.22\n"
	for path, content := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// testAnalyzer flags every call to a function literally named bad.
func testAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "testcheck",
		Doc:  "flags calls to bad()",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
							pass.Reportf(call.Pos(), "call to bad")
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestLoadRejectsBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	root := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	if _, err := driver.Load(root, "./nonexistent/..."); err == nil {
		t.Fatal("expected an error for a pattern matching no packages")
	}
}

func TestLoadSurfacesBrokenDependency(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	// The dependency does not compile, so `go list -export` cannot
	// produce export data for it; the loader must report that rather
	// than type-check against a hole in the import graph.
	root := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"m/b\"\n\nvar _ = b.V\n",
		"b/b.go": "package b\n\nvar V = undefined\n",
	})
	if _, err := driver.Load(root, "./a"); err == nil {
		t.Fatal("expected an error for a dependency with no export data")
	}
}

func TestRunAuditedFlagsStaleUnknownAndMalformedAllows(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	root := writeModule(t, map[string]string{"p/p.go": strings.Join([]string{
		"package p",
		"",
		"func bad() {}",
		"",
		"func use() {",
		"\tbad()",
		"\tbad() //fflint:allow testcheck legitimate in this test",
		"\tok()  //fflint:allow testcheck this allow is stale",
		"\tok()  //fflint:allow nosuch unknown analyzer name",
		"\tok()  //fflint:allow testcheck",
		"}",
		"",
		"func ok() {}",
		"",
	}, "\n")})
	diags, err := driver.RunAudited(root, []*analysis.Analyzer{testAnalyzer()}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		analyzer string
		line     int
	}
	got := map[key]string{}
	for _, d := range diags {
		got[key{d.Analyzer, d.Pos.Line}] = d.Message
	}
	want := map[key]string{
		{"testcheck", 6}:         "call to bad",
		{analysis.AuditName, 8}:  "stale fflint:allow",
		{analysis.AuditName, 9}:  "unknown analyzer",
		{analysis.AuditName, 10}: "malformed fflint:allow",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), diags)
	}
	for k, substr := range want {
		msg, ok := got[k]
		if !ok {
			t.Errorf("missing %s diagnostic at line %d:\n%v", k.analyzer, k.line, diags)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("line %d message %q does not mention %q", k.line, msg, substr)
		}
	}
	// The suppressed finding on line 7 must not appear, and its allow
	// must not be called stale.
	for _, d := range diags {
		if d.Pos.Line == 7 {
			t.Errorf("line 7 should be cleanly suppressed, got: %s", d)
		}
	}
}
