package driver_test

import (
	"os"
	"path/filepath"
	"testing"

	"fastforward/internal/analysis"
	"fastforward/internal/analysis/dbunits"
	"fastforward/internal/analysis/detrand"
	"fastforward/internal/analysis/driver"
	"fastforward/internal/analysis/obsmetrics"
	"fastforward/internal/analysis/seedflow"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// The sweep-path packages the analyzers guard must load through the real
// `go list -export` driver and come up clean. This is the same contract
// `make lint` enforces repo-wide; keeping a slice of it in `go test`
// means a regression fails fast even when lint isn't run.
func TestDefaultAnalyzersCleanOnSweepPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	root := moduleRoot(t)
	analyzers := []*analysis.Analyzer{
		detrand.Default(),
		seedflow.Default(),
		dbunits.Default(),
		obsmetrics.Default(),
	}
	diags, err := driver.Run(root, analyzers,
		"fastforward/internal/obs",
		"fastforward/internal/relay",
		"fastforward/internal/par",
	)
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
