// Package driver loads type-checked packages for the fflint suite and
// runs analyzers over them.
//
// Loading rides on the go toolchain rather than a bespoke module
// resolver: `go list -deps -export -json <patterns>` compiles (or pulls
// from the build cache) export data for every dependency, and the
// packages under analysis are then parsed from source and type-checked
// against that export data with the standard gc importer. This is the
// same division of labor the x/tools go/packages driver uses, shrunk to
// what a single-module, cgo-free repository needs, and it works fully
// offline.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"fastforward/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	ModuleDir string
}

// Load resolves the given `go list` patterns (e.g. "./...") in dir and
// type-checks every non-standard-library package they match. Test files
// are not loaded: the invariants fflint enforces are production-code
// contracts, and fixtures exercise the analyzers directly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, af)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		moduleDir := ""
		if p.Module != nil {
			moduleDir = p.Module.Dir
		}
		pkgs = append(pkgs, &Package{
			Path:      p.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
			ModuleDir: moduleDir,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run loads the patterns and applies every analyzer to every package,
// returning all surviving (non-allowlisted) diagnostics.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, p := range pkgs {
		diags, err := analysis.RunAnalyzers(analysis.Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
			ModuleDir: p.ModuleDir,
		}, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
