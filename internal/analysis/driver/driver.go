// Package driver loads type-checked packages for the fflint suite and
// runs analyzers over them.
//
// Loading rides on the go toolchain rather than a bespoke module
// resolver: `go list -deps -export -json <patterns>` compiles (or pulls
// from the build cache) export data for every dependency, and the
// packages under analysis are then parsed from source and type-checked
// against that export data with the standard gc importer. This is the
// same division of labor the x/tools go/packages driver uses, shrunk to
// what a single-module, cgo-free repository needs, and it works fully
// offline.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"fastforward/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	ModuleDir string
}

// Load resolves the given `go list` patterns (e.g. "./...") in dir and
// type-checks every non-standard-library package they match. Test files
// are not loaded: the invariants fflint enforces are production-code
// contracts, and fixtures exercise the analyzers directly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, af)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		moduleDir := ""
		if p.Module != nil {
			moduleDir = p.Module.Dir
		}
		pkgs = append(pkgs, &Package{
			Path:      p.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
			ModuleDir: moduleDir,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run loads the patterns and applies every analyzer to every package,
// returning all surviving (non-allowlisted) diagnostics.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, p := range pkgs {
		diags, _, err := analysis.RunAnalyzers(analysis.Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
			ModuleDir: p.ModuleDir,
		}, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// RunAudited is Run plus the allow audit: after every analyzer has run
// over every package, each fflint:allow directive in the loaded sources
// is checked against the suppressions that actually happened. Malformed
// directives, directives naming an analyzer that is not registered, and
// stale directives (well-formed, known analyzer, but suppressing nothing
// this run) are appended as `allowaudit` diagnostics, so an allow cannot
// outlive its reason. The audit diagnostics are not themselves
// suppressible.
func RunAudited(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	used := map[analysis.AllowUse]bool{}
	var all []analysis.Diagnostic
	var allows []analysis.Allow
	for _, p := range pkgs {
		diags, uses, err := analysis.RunAnalyzers(analysis.Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
			ModuleDir: p.ModuleDir,
		}, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
		for _, u := range uses {
			used[u] = true
		}
		pkgAllows, malformed := analysis.CollectAllows(p.Fset, p.Files)
		all = append(all, malformed...)
		allows = append(allows, pkgAllows...)
	}
	for _, al := range allows {
		for _, name := range al.Analyzers {
			if !known[name] {
				all = append(all, analysis.Diagnostic{
					Analyzer: analysis.AuditName,
					Pos:      token.Position{Filename: al.File, Line: al.Line, Column: 1},
					Message:  fmt.Sprintf("fflint:allow names unknown analyzer %q", name),
				})
				continue
			}
			if !used[analysis.AllowUse{File: al.File, Line: al.Line, Analyzer: name}] {
				all = append(all, analysis.Diagnostic{
					Analyzer: analysis.AuditName,
					Pos:      token.Position{Filename: al.File, Line: al.Line, Column: 1},
					Message:  fmt.Sprintf("stale fflint:allow: %s no longer reports anything here (reason was: %s)", name, al.Reason),
				})
			}
		}
	}
	analysis.SortDiagnostics(all)
	return all, nil
}
