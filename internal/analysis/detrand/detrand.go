// Package detrand forbids nondeterminism sources in the sweep pipeline:
// wall-clock reads, the global math/rand stream, and map-iteration order
// feeding order-sensitive results. The parallel sweep engine's
// bit-identical serial-vs-parallel guarantee (internal/par) and the
// byte-identical run manifests (internal/obs) both rest on these being
// impossible, not merely avoided.
//
// Three rules:
//
//  1. Wall clock: calls to time.Now / time.Since / time.Until are
//     forbidden everywhere except explicitly allowlisted packages
//     (cmd/internal/runmeta stamps manifests with real timestamps by
//     design; internal/relayd and cmd/ffrelayd run connection deadlines
//     and backoff) and `//fflint:allow detrand <reason>` sites.
//
//  2. Global rand: package-level math/rand draws (rand.Float64,
//     rand.Intn, rand.Shuffle, ...) read a process-global sequential
//     stream whose order depends on goroutine scheduling. Constructing
//     seeded sources (rand.New, rand.NewSource) stays legal — that is
//     exactly what internal/rng wraps.
//
//  3. Map ranges: a `for ... range m` over a map inside a sweep-path
//     package must not feed an order-sensitive sink — appending to a
//     slice declared outside the loop, accumulating into a float
//     (float addition is not associative), or setting an obs.Gauge
//     (last-write-wins). Writing into another map or integer counters
//     is order-independent and stays legal.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// SweepPackages are import-path suffixes subject to the map-range
	// rule (the packages that compute results and metrics).
	SweepPackages []string
	// WallClock are import-path suffixes where time.Now is legitimate
	// (manifest run metadata).
	WallClock []string
}

var defaultSweep = []string{
	"internal/testbed", "internal/par", "internal/ident", "internal/impair",
	"internal/sic", "internal/cnf", "internal/relay", "internal/obs",
	"internal/pipeline", "internal/fleet",
}

// The relay daemon and its binary are allowlisted for the wall clock:
// connection deadlines, idle eviction, token-bucket sleeps, and reconnect
// backoff are genuinely temporal. The sample path stays deterministic —
// relayd feeds blocks through internal/pipeline, which remains fully
// covered by all three rules.
var defaultWallClock = []string{
	"cmd/internal/runmeta", "internal/relayd", "cmd/ffrelayd",
}

// forbiddenTime are the wall-clock reads; time.Sleep is scheduling, not
// data, and the sweep packages have no business calling it either, so it
// is included.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// allowedRandConstructors may be called anywhere: they build seeded,
// local sources.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// New returns the detrand analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.SweepPackages == nil {
		cfg.SweepPackages = defaultSweep
	}
	if cfg.WallClock == nil {
		cfg.WallClock = defaultWallClock
	}
	return &analysis.Analyzer{
		Name: "detrand",
		Doc:  "forbid wall-clock reads, the global math/rand stream, and order-sensitive map iteration in sweep-path packages",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, cfg Config) {
	wallClockOK := pathMatches(pass.Pkg.Path(), cfg.WallClock)
	sweep := pathMatches(pass.Pkg.Path(), cfg.SweepPackages)
	for _, f := range pass.Files {
		var enclosing []ast.Node // stack of function bodies
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					enclosing = append(enclosing, n.Body)
				}
			case *ast.FuncLit:
				enclosing = append(enclosing, n.Body)
			case *ast.Ident:
				checkIdentUse(pass, n, wallClockOK)
			case *ast.RangeStmt:
				if sweep {
					body := innermostContaining(enclosing, n)
					checkMapRange(pass, n, body)
				}
			}
			return true
		})
	}
}

// innermostContaining returns the innermost pushed function body whose
// span contains n (entries are pushed in nesting order and never need
// popping: position containment disambiguates).
func innermostContaining(stack []ast.Node, n ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].Pos() <= n.Pos() && n.End() <= stack[i].End() {
			return stack[i]
		}
	}
	return nil
}

// pkgFunc resolves a call target to (package path, func name) when the
// callee is a package-level function reached through a selector or a
// dot-import ident.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

// checkIdentUse flags any use — call or function value — of the
// forbidden time and global-rand functions. Checking uses rather than
// calls closes the `f := time.Now; f()` and `sync.OnceValue(time.Now)`
// escape hatches.
func checkIdentUse(pass *analysis.Pass, id *ast.Ident, wallClockOK bool) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. Time.Sub) are derived data, not clock reads
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] && !wallClockOK {
			pass.Reportf(id.Pos(), "wall-clock call time.%s: sweep results and manifests must be time-independent (move behind the obs timings boundary, or annotate //fflint:allow detrand <reason>)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "global math/rand draw rand.%s: schedule-dependent shared stream; construct a seeded source (internal/rng) instead", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive sinks inside a range over a map.
// body is the enclosing function body, used to recognize the
// collect-then-sort idiom.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, body ast.Node) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, body, n)
		case *ast.CallExpr:
			if isGaugeSet(pass, n) {
				pass.Reportf(n.Pos(), "obs.Gauge set inside range over map: last-write-wins under random iteration order; use a Histogram or iterate sorted keys")
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, body ast.Node, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if !declaredOutside(pass, lhs, rng) {
			continue
		}
		// append into an outer slice: iteration order becomes element
		// order — unless the slice is sorted after the loop
		// (collect-keys-then-sort is the deterministic idiom this rule
		// exists to push people toward).
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if !sortedAfter(pass, body, rng, lhs) {
							pass.Reportf(as.Pos(), "append into %s inside range over map: element order follows random map iteration; sort the slice afterwards or iterate sorted keys", exprString(lhs))
						}
						continue
					}
				}
			}
		}
		// float accumulation: addition order changes the rounding.
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if tv, ok := pass.TypesInfo.Types[lhs]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
					pass.Reportf(as.Pos(), "float accumulation into %s inside range over map: float addition is not associative, so the sum depends on iteration order; iterate sorted keys or accumulate in fixed point", exprString(lhs))
				}
			}
		}
	}
}

// sortFuncs are the sorting entry points of sort and slices whose first
// argument is the slice being ordered.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether, somewhere in the enclosing function body
// after the range loop, the slice written by the loop is passed to a
// sort/slices sorting function. Matching is textual on the expression
// (out, snap.Timings, ...) — crude, but sorting a *different* expression
// that aliases the slice is not an idiom this codebase uses.
func sortedAfter(pass *analysis.Pass, body ast.Node, rng *ast.RangeStmt, target ast.Expr) bool {
	if body == nil {
		return false
	}
	want := exprString(target)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		path, name := pkgFunc(pass, call)
		if (path != "sort" && path != "slices") || !sortFuncs[name] {
			return true
		}
		if exprString(ast.Unparen(call.Args[0])) == want {
			found = true
		}
		return true
	})
	return found
}

// declaredOutside reports whether the object behind expr was declared
// outside the range statement (so writes to it survive the loop).
// Selector targets (fields of outer structs) count as outside.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return declaredOutside(pass, e.X, rng)
	}
	return false
}

// isGaugeSet matches (*obs.Gauge).Set calls by method name and receiver
// type, using a package-path suffix so fixtures can stub the obs package.
func isGaugeSet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Set" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Gauge" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "value"
}
