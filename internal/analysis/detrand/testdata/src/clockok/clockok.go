// Package clockok stands in for cmd/internal/runmeta: a package on the
// wall-clock allowlist, where manifest metadata legitimately records
// real timestamps.
package clockok

import "time"

func Stamp() time.Time {
	return time.Now() // allowlisted package: no diagnostic
}
