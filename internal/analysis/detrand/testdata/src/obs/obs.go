// Package obs is a stub of fastforward/internal/obs for detrand
// fixtures: just enough surface for the Gauge.Set map-range rule.
package obs

type Registry struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Gauge(name, unit string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram { return &Histogram{} }

func (g *Gauge) Set(v float64) {}

func (h *Histogram) Observe(shard int, v float64) {}

// NowNanos mirrors the real obs clock: monotonic nanos since process
// start, the sanctioned timing source for swept code.
func NowNanos() int64 { return 0 }
