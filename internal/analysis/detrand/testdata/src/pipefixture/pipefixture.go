// Package pipefixture models the streaming block-DSP pipeline under the
// detrand rules: stage timing must route through the obs clock (never a
// raw wall-clock read on the swept sample path), and per-stage results
// keyed by name must be collected in a deterministic order.
package pipefixture

import (
	"sort"
	"time"

	"obs"
)

type stage struct{ name string }

func (s *stage) process(block []complex128) []complex128 { return block }

// timedProcessWallClock times a stage with a raw wall-clock read — the
// pattern the pipeline package must avoid on the swept path.
func timedProcessWallClock(s *stage, block []complex128) []complex128 {
	start := time.Now() // want `wall-clock call time.Now`
	out := s.process(block)
	_ = time.Since(start) // want `wall-clock call time.Since`
	return out
}

// timedProcessViaObs routes stage timing through the obs clock, the way
// pipeline.Chain does: monotonic nanos from the observability layer, so
// the sample path itself never touches the wall clock.
func timedProcessViaObs(s *stage, block []complex128) []complex128 {
	start := obs.NowNanos()
	out := s.process(block)
	_ = obs.NowNanos() - start
	return out
}

// stageLatenciesUnsorted aggregates per-stage latency accounting from a
// map in iteration order — schedule-dependent output.
func stageLatenciesUnsorted(byStage map[string]int) []string {
	var order []string
	for name := range byStage {
		order = append(order, name) // want `append into order inside range over map`
	}
	return order
}

// stageLatenciesSorted is the allowed collect-then-sort form.
func stageLatenciesSorted(byStage map[string]int) []string {
	order := make([]string, 0, len(byStage))
	for name := range byStage {
		order = append(order, name) // collect-then-sort: deterministic, allowed
	}
	sort.Strings(order)
	return order
}
