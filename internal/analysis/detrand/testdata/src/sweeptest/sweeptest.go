// Package sweeptest exercises every detrand rule: wall-clock reads,
// global math/rand draws, and order-sensitive map iteration, plus the
// allowed forms of each.
package sweeptest

import (
	"math/rand"
	"sort"
	"time"

	"obs"
)

func wallClock() int64 {
	t := time.Now() // want `wall-clock call time.Now`
	return t.UnixNano()
}

func wallClockValue() func() time.Time {
	return time.Now // want `wall-clock call time.Now`
}

func wallClockAllowed() time.Time {
	// The annotated escape hatch: reason text is part of the syntax.
	return time.Now() //fflint:allow detrand fixture demonstrating a documented wall-clock site
}

func globalRand() float64 {
	return rand.Float64() // want `global math/rand draw rand.Float64`
}

func seededRandOK() float64 {
	r := rand.New(rand.NewSource(42)) // constructors are fine: seeded local stream
	return r.Float64()
}

func mapAppendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append into out inside range over map`
	}
	return out
}

func mapAppendSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // collect-then-sort: deterministic, allowed
	}
	sort.Strings(out)
	return out
}

func mapFloatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map`
	}
	return sum
}

func mapIntAccumulate(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // integer addition is order-independent: allowed
	}
	return n
}

func mapGaugeSet(r *obs.Registry, m map[string]float64) {
	g := r.Gauge("x", "u")
	for _, v := range m {
		g.Set(v) // want `obs.Gauge set inside range over map`
	}
}

func mapHistogramOK(r *obs.Registry, m map[string]float64) {
	h := r.Histogram("x", "u", nil)
	for _, v := range m {
		h.Observe(0, v) // histograms merge order-independently: allowed
	}
}

func mapToMapOK(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v // map writes are order-independent: allowed
	}
	return out
}
