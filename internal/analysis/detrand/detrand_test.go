package detrand_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	a := detrand.New(detrand.Config{
		SweepPackages: []string{"sweeptest", "pipefixture"},
		WallClock:     []string{"clockok"},
	})
	analysistest.Run(t, "testdata", a, "sweeptest", "clockok", "pipefixture")
}
