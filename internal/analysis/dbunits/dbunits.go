// Package dbunits tracks the repository's dB/linear naming convention
// through expressions and call boundaries. The paper's Sec 3.5
// amplification rule (A = min(C − margin, a − 3 dB) and its
// residual-aware variant) mixes logarithmic and linear quantities that
// Go's type system cannot tell apart — both are float64 — so one missed
// math.Pow(10, x/10) corrupts results silently. The convention is the
// type system we do have: names suffixed DB/DBm carry decibels, names
// suffixed Lin carry linear power ratios.
//
// The analyzer flags, for expressions of floating-point type:
//
//   - additive combination or ordered/equality comparison of a dB-named
//     value with a linear-named one (dB+dB and lin*lin are the legal
//     idioms; dB+lin is always a bug);
//   - assigning a value of one unit class to a variable named for the
//     other;
//   - passing a value of one unit class to a parameter named for the
//     other (parameter names survive export data, so this works across
//     package boundaries);
//   - returning a value of one unit class from a function whose name
//     promises the other.
//
// Multiplication and division are deliberately exempt: scaling a dB
// value by a dimensionless factor (x/2, 10*math.Log10(v)) is routine and
// unit-preserving or unit-creating. Unknown-named operands never flag —
// the analyzer only acts when both sides declare a unit.
package dbunits

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

type unit int

const (
	unitUnknown unit = iota
	unitDB
	unitLin
)

func (u unit) String() string {
	switch u {
	case unitDB:
		return "dB"
	case unitLin:
		return "linear"
	}
	return "unknown"
}

// New returns the dbunits analyzer (it has no configuration: the naming
// convention is the interface).
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "dbunits",
		Doc:  "flag mixing of dB-named and linear-named float quantities across operators, assignments, calls, and returns",
		Run: func(pass *analysis.Pass) error {
			run(pass)
			return nil
		},
	}
}

// Default mirrors the other analyzers' constructor shape.
func Default() *analysis.Analyzer { return New() }

// unitOfName classifies an identifier by suffix. dBm (absolute power in
// log domain) counts as the dB family: adding dB to dBm is legal log
// arithmetic, adding either to a linear ratio is not. Conversion
// functions named XFromY ("WattsFromDBm") promise X, not Y: the part
// before "From" is what the value is, the part after is what it was.
func unitOfName(name string) unit {
	if i := strings.Index(name, "From"); i > 0 {
		return unitOfName(name[:i])
	}
	switch {
	case strings.HasSuffix(name, "DB"), strings.HasSuffix(name, "Db"),
		strings.HasSuffix(name, "DBm"), strings.HasSuffix(name, "Dbm"),
		name == "dB", name == "dBm", name == "db", name == "dbm":
		return unitDB
	case strings.HasSuffix(name, "Lin"), strings.HasSuffix(name, "Linear"),
		name == "lin", name == "linear":
		return unitLin
	}
	return unitUnknown
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ValueSpec:
				checkValueSpec(pass, n)
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			}
			return true
		})
		// Return-vs-function-name checks walk each declaration separately
		// so a func literal's returns are never attributed to the
		// enclosing declaration's name contract.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncReturns(pass, fn)
		}
	}
}

// checkFuncReturns applies checkReturn to every return statement directly
// inside fn (descending into blocks but not into nested func literals).
func checkFuncReturns(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			checkReturn(pass, fn, n)
		}
		return true
	})
}

// isFloat reports whether the expression's type is a floating-point (or
// untyped numeric) value — the only domain where the dB/linear
// distinction is meaningful.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return true // missing info: don't let it silence a name conflict
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsUntyped) != 0
}

// classify walks an expression and derives its unit from the names it is
// built of.
func classify(pass *analysis.Pass, e ast.Expr) unit {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		return classify(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return classify(pass, e.X)
		}
	case *ast.CallExpr:
		// Type conversions are transparent: float64(xDB) is still dB.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return classify(pass, e.Args[0])
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return unitOfName(fun.Name)
		case *ast.SelectorExpr:
			return unitOfName(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			lu, ru := classify(pass, e.X), classify(pass, e.Y)
			if lu == unitUnknown {
				return ru
			}
			if ru == unitUnknown || ru == lu {
				return lu
			}
			// Conflicting operands: checkBinary reports at the operator;
			// the combined value has no trustworthy unit.
			return unitUnknown
		}
	}
	return unitUnknown
}

func conflict(a, b unit) bool {
	return a != unitUnknown && b != unitUnknown && a != b
}

func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if !isFloat(pass, e.X) || !isFloat(pass, e.Y) {
		return
	}
	lu, ru := classify(pass, e.X), classify(pass, e.Y)
	if conflict(lu, ru) {
		pass.Reportf(e.OpPos, "%s-named value %s %s %s-named value: convert explicitly (10*math.Log10(lin) or math.Pow(10, db/10)) before combining", lu, exprString(e.X), e.Op, ru)
	}
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lu := classify(pass, lhs)
		if lu == unitUnknown || !isFloat(pass, as.Rhs[i]) {
			continue
		}
		ru := classify(pass, as.Rhs[i])
		if conflict(lu, ru) {
			pass.Reportf(as.Pos(), "assigning %s-named value to %s-named %s", ru, lu, exprString(lhs))
		}
	}
}

func checkValueSpec(pass *analysis.Pass, vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		lu := unitOfName(name.Name)
		if lu == unitUnknown || !isFloat(pass, vs.Values[i]) {
			continue
		}
		ru := classify(pass, vs.Values[i])
		if conflict(lu, ru) {
			pass.Reportf(vs.Pos(), "assigning %s-named value to %s-named %s", ru, lu, name.Name)
		}
	}
}

// checkCallArgs matches argument units against parameter names — these
// survive gc export data, so cross-package calls are covered too.
func checkCallArgs(pass *analysis.Pass, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || tv.IsType() {
		return // conversion (or no info)
	}
	tv := pass.TypesInfo.Types[call.Fun]
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
			break
		}
		p := params.At(i)
		pu := unitOfName(p.Name())
		if pu == unitUnknown || !isFloat(pass, arg) {
			continue
		}
		au := classify(pass, arg)
		if conflict(pu, au) {
			pass.Reportf(arg.Pos(), "passing %s-named value %s to %s-named parameter %s", au, exprString(arg), pu, p.Name())
		}
	}
}

// checkReturn holds a function to its own name: FooDB must not return a
// linear-named value and vice versa. Only single-result float functions
// participate; multi-result functions name their results instead.
func checkReturn(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	fu := unitOfName(fn.Name.Name)
	if fu == unitUnknown || len(ret.Results) != 1 {
		return
	}
	if fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
		return
	}
	if !isFloat(pass, ret.Results[0]) {
		return
	}
	ru := classify(pass, ret.Results[0])
	if conflict(fu, ru) {
		pass.Reportf(ret.Pos(), "function %s returns a %s-named value; its name promises %s", fn.Name.Name, ru, fu)
	}
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.BinaryExpr:
		return exprString(e.X) + " " + e.Op.String() + " " + exprString(e.Y)
	}
	return "expression"
}
