// Package dbtest exercises the dbunits rules: dB-named and linear-named
// floats must not mix across operators, assignments, calls, or returns
// without an explicit conversion.
package dbtest

import "math"

func operators(gainDB, powerLin float64) {
	_ = gainDB + powerLin // want `dB-named value gainDB \+ linear-named value`
	_ = gainDB < powerLin // want `dB-named value gainDB < linear-named value`
	_ = gainDB - 3        // dB minus dimensionless margin: allowed
	_ = gainDB / 2        // scaling is exempt: allowed
	_ = powerLin * 2      // allowed
}

func assignments(gainDB, powerLin float64) {
	var thresholdDB float64
	thresholdDB = powerLin // want `assigning linear-named value to dB-named thresholdDB`
	_ = thresholdDB

	ratioLin := gainDB // want `assigning dB-named value to linear-named ratioLin`
	_ = ratioLin

	var marginDB = powerLin // want `assigning linear-named value to dB-named marginDB`
	_ = marginDB

	convertedLin := math.Pow(10, gainDB/10) // explicit conversion: allowed
	backDB := 10 * math.Log10(convertedLin) // scaling product has no unit claim: allowed
	_ = backDB
}

func combine(attenDB, noiseLin float64) float64 {
	return attenDB + 10*math.Log10(noiseLin) // converted before combining: allowed
}

func sink(levelDB, floorLin float64) {}

func callArguments(gainDB, powerLin float64) {
	sink(powerLin, gainDB) // want `passing linear-named value powerLin to dB-named parameter levelDB` `passing dB-named value gainDB to linear-named parameter floorLin`
	sink(gainDB, powerLin) // units line up: allowed
}

func ThresholdDB(powerLin float64) float64 {
	return powerLin // want `function ThresholdDB returns a linear-named value`
}

// WattsFromDBm is the regression fixture for the conversion-function
// false positive the initial repo sweep surfaced: XFromY names promise
// X (linear watts), not the Y they convert from.
func WattsFromDBm(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10) // conversion function returning linear: allowed
}

// DBFromLinear converts the other way; returning a log-domain expression
// built from a dB-named call is consistent with the name.
func DBFromLinear(ratioLin float64) float64 {
	return 10 * math.Log10(ratioLin)
}

func allowlisted(gainDB, powerLin float64) float64 {
	return gainDB + powerLin //fflint:allow dbunits fixture demonstrating a documented unit-mixing site
}

func BudgetDB(powerLin float64) func() float64 {
	// A func literal inside a DB-named function has no name contract of
	// its own; its linear return must not inherit BudgetDB's promise.
	return func() float64 { return powerLin }
}
