package dbunits_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/dbunits"
)

func TestDBUnits(t *testing.T) {
	analysistest.Run(t, "testdata", dbunits.Default(), "dbtest")
}
