// Package wirecodes pins the wire protocol's registry: REFUSE-code and
// frame-type literals must come from the protocol.go constants
// (relayd.Refuse*, relayd.Frame*), and the registry must cross-validate
// both ways against the OPERATIONS.md troubleshooting table and wire
// protocol section — the same discipline obsmetrics applies to
// METRICS.txt.
//
// In any package that declares or imports the registry:
//
//   - a string literal equal to a declared refuse-code value is a
//     finding ("budget" written where RefuseBudget belongs);
//   - an integer literal in byte context equal to a declared frame type
//     is a finding (3 written where FrameRefuse belongs).
//
// When analyzing the registry package itself, OPERATIONS.md (resolved
// against Pass.ModuleDir) is cross-validated:
//
//   - every declared refuse code must appear in a troubleshooting
//     "code `X`" phrase, and every documented "code `X`" must be
//     declared;
//   - every declared frame type must appear as NAME(value) in the wire
//     protocol section with the matching value, and every documented
//     NAME(value) must be declared.
package wirecodes

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// RegistryPackages are import-path suffixes of the package declaring
	// the Refuse* and Frame* constants.
	RegistryPackages []string
	// OperationsFile is the runbook path relative to the module root.
	OperationsFile string
}

var defaultRegistry = []string{"internal/relayd"}

const defaultOperationsFile = "OPERATIONS.md"

// New returns the wirecodes analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.RegistryPackages == nil {
		cfg.RegistryPackages = defaultRegistry
	}
	if cfg.OperationsFile == "" {
		cfg.OperationsFile = defaultOperationsFile
	}
	return &analysis.Analyzer{
		Name: "wirecodes",
		Doc:  "refuse-code and frame-type literals come from the protocol.go registry; the registry cross-validates against OPERATIONS.md",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// registry is the extracted protocol constant table.
type registry struct {
	codes  map[string]string // value -> constant name ("budget" -> "RefuseBudget")
	frames map[int64]string  // value -> constant name (3 -> "FrameRefuse")
}

func run(pass *analysis.Pass, cfg Config) {
	var regPkg *types.Package
	self := pathMatches(pass.Pkg.Path(), cfg.RegistryPackages)
	if self {
		regPkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if pathMatches(imp.Path(), cfg.RegistryPackages) {
				regPkg = imp
				break
			}
		}
	}
	if regPkg == nil {
		return
	}
	reg := extract(regPkg)
	if len(reg.codes) == 0 && len(reg.frames) == 0 {
		return
	}
	for _, f := range pass.Files {
		checkLiterals(pass, f, reg, self)
	}
	if self && pass.ModuleDir != "" {
		crossValidate(pass, cfg, reg)
	}
}

// extract pulls the Refuse* string and Frame* integer constants out of
// the registry package's scope.
func extract(pkg *types.Package) registry {
	reg := registry{codes: map[string]string{}, frames: map[int64]string{}}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(name, "Refuse") && c.Val().Kind() == constant.String:
			reg.codes[constant.StringVal(c.Val())] = name
		case strings.HasPrefix(name, "Frame") && c.Val().Kind() == constant.Int:
			if v, ok := constant.Int64Val(c.Val()); ok {
				reg.frames[v] = name
			}
		}
	}
	return reg
}

// checkLiterals flags raw literals that shadow registry constants. In
// the registry package itself, the declaring const specs are exempt.
func checkLiterals(pass *analysis.Pass, f *ast.File, reg registry, self bool) {
	var declSpans []ast.Node
	if self {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, n := range vs.Names {
					if strings.HasPrefix(n.Name, "Refuse") || strings.HasPrefix(n.Name, "Frame") {
						declSpans = append(declSpans, vs)
						break
					}
				}
			}
		}
	}
	inDecl := func(n ast.Node) bool {
		for _, s := range declSpans {
			if s.Pos() <= n.Pos() && n.End() <= s.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return true
		}
		switch lit.Kind {
		case token.STRING:
			v, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			name, isCode := reg.codes[v]
			if isCode && !inDecl(lit) {
				pass.Reportf(lit.Pos(), "refuse code literal %q: use the %s constant from the protocol registry", v, name)
			}
		case token.INT:
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || (b.Kind() != types.Uint8 && b.Kind() != types.Byte) {
				return true
			}
			if tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				if name, isFrame := reg.frames[v]; isFrame && !inDecl(lit) {
					pass.Reportf(lit.Pos(), "frame-type literal %d: use the %s constant from the protocol registry", v, name)
				}
			}
		}
		return true
	})
}

// codePhraseRE matches the troubleshooting table's "code `X`" phrases.
var codePhraseRE = regexp.MustCompile("code `([a-z_]+)`")

// framePhraseRE matches the wire protocol section's NAME(value) frames.
var framePhraseRE = regexp.MustCompile(`([A-Z]{2,})\((\d+)`)

// crossValidate checks the registry against OPERATIONS.md both ways.
func crossValidate(pass *analysis.Pass, cfg Config, reg registry) {
	pos := pass.Files[0].Pos()
	path := filepath.Join(pass.ModuleDir, cfg.OperationsFile)
	data, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(pos, "cannot read %s to cross-validate the wire-code registry: %v", cfg.OperationsFile, err)
		return
	}
	doc := string(data)

	// Declared codes must be documented in a troubleshooting phrase.
	documented := map[string]bool{}
	for _, m := range codePhraseRE.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	for _, v := range sortedKeys(reg.codes) {
		if !documented[v] {
			pass.Reportf(pos, "refuse code %q (%s) missing from the %s troubleshooting table: add a \"code `%s`\" row", v, reg.codes[v], cfg.OperationsFile, v)
		}
	}
	// Documented codes must be declared.
	for _, v := range sortedKeys(documented) {
		if _, ok := reg.codes[v]; !ok {
			pass.Reportf(pos, "%s documents refuse code %q that the protocol registry does not declare", cfg.OperationsFile, v)
		}
	}

	// Frames: declared must appear as NAME(value); documented NAME(value)
	// must be declared with the same value.
	docFrames := map[string]int64{}
	for _, m := range framePhraseRE.FindAllStringSubmatch(doc, -1) {
		var v int64
		fmt.Sscanf(m[2], "%d", &v)
		docFrames[m[1]] = v
	}
	declFrames := map[string]int64{}
	for v, name := range reg.frames {
		declFrames[strings.ToUpper(strings.TrimPrefix(name, "Frame"))] = v
	}
	for _, name := range sortedKeys(declFrames) {
		v := declFrames[name]
		dv, ok := docFrames[name]
		switch {
		case !ok:
			pass.Reportf(pos, "frame type %s(%d) missing from the %s wire protocol section", name, v, cfg.OperationsFile)
		case dv != v:
			pass.Reportf(pos, "%s documents frame %s(%d) but the protocol registry declares %s(%d)", cfg.OperationsFile, name, dv, name, v)
		}
	}
	for _, name := range sortedKeys(docFrames) {
		if _, ok := declFrames[name]; !ok {
			pass.Reportf(pos, "%s documents frame %s(%d) that the protocol registry does not declare", cfg.OperationsFile, name, docFrames[name])
		}
	}
}

// sortedKeys returns map keys sorted, for deterministic diagnostics.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
