package wirecodes_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/wirecodes"
)

func TestWirecodes(t *testing.T) {
	a := wirecodes.New(wirecodes.Config{
		RegistryPackages: []string{"wirereg", "wireregbad"},
	})
	analysistest.Run(t, "testdata", a, "wirereg", "wireuse", "wireregbad")
}
