// Package wireuse imports the registry and must spell refuse codes and
// frame types with its constants, never raw literals.
package wireuse

import "wirereg"

// refuse matches against a raw code string — the finding shape that bit
// the fleet sweep before the registry constants existed.
func refuse(code string) bool {
	return code == "busy" // want `refuse code literal "busy": use the RefuseBusy constant`
}

func refuseOK(code string) bool {
	return code == wirereg.RefuseTimeout
}

func frame(t byte) bool {
	return t == 4 // want `frame-type literal 4: use the FrameData constant`
}

func frameOK(t byte) bool {
	return t == wirereg.FrameHello
}

// unrelated: values outside the registry stay legal, as do registry
// strings in non-byte/non-registry contexts.
func unrelated(t byte, s string) bool {
	return t == 9 || s == "draining"
}

func allowed(code string) bool {
	return code == "timeout" //fflint:allow wirecodes fixture exercises the suppression path
}
