// Package wireregbad is a drifted registry fixture: the sibling
// OPERATIONS.md misses a declared code, documents an undeclared code,
// disagrees on a frame value, and documents a phantom frame. The missing
// troubleshooting row pins the real finding: the relayd registry declared
// RefuseProtocol but the runbook had no "code `protocol`" row.
package wireregbad // want `refuse code "quota" \(RefuseQuota\) missing` `documents refuse code "stale" that the protocol registry does not declare` `documents frame HELLO\(9\) but the protocol registry declares HELLO\(1\)` `documents frame EXTRA\(8\) that the protocol registry does not declare`

// Refusal codes carried by REFUSE frames.
const (
	RefuseBusy  = "busy"
	RefuseQuota = "quota"
)

// Frame types on the wire.
const (
	FrameHello byte = 1
	FrameDone  byte = 6
)
