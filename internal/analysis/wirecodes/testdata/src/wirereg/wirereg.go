// Package wirereg is a clean protocol registry fixture: every refuse
// code and frame type is documented in the sibling OPERATIONS.md, so
// wirecodes reports nothing here.
package wirereg

// Refusal codes carried by REFUSE frames.
const (
	RefuseBusy    = "busy"
	RefuseTimeout = "timeout"
)

// Frame types on the wire.
const (
	FrameHello byte = 1
	FrameData  byte = 4
)
