// Package lockscope polices the service layer's mutex discipline. The
// daemon's contract (DESIGN.md §10, OPERATIONS.md) is that admission and
// bookkeeping critical sections are pure in-memory work: a relay that
// blocks while holding a lock stalls every session sharing that lock,
// which is exactly the control-plane-stalls-the-sample-path failure the
// transparent-relay framing forbids.
//
// Three rules, all per function body (nested function literals are
// separate bodies), using a linear source-order scan:
//
//  1. No blocking operation while any sync.Mutex/RWMutex is held:
//     channel sends/receives (including `range ch` and `select` without
//     a default), time.Sleep, net.Conn Read/Write/Close,
//     net.Listener.Accept, sync.WaitGroup.Wait, and
//     pipeline.Batch.Process/ProcessSome.
//
//  2. Every Lock/RLock must be released on every path: a `return`
//     reached while a mutex is held with no deferred unlock is a
//     finding, as is a body that ends without unlocking.
//
//  3. Lock ordering: types named in Config.LockOrder form a strict
//     outermost-to-innermost order (fleet.Pool → relayd.Server →
//     relayd.Gate → relayd.tokenBucket). While holding a leveled type's
//     lock, acquiring a lock of — or calling any method on — a type
//     further *out* in the order is an inversion.
//
// The scan is linear, not path-sensitive: it deliberately trades a
// branch-local false positive (rare; annotate with
// `//fflint:allow lockscope <reason>`) for zero tolerance on the
// straight-line patterns the daemon actually uses.
package lockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// LockOrder lists lock-owning types outermost first, as
	// "pkgbase.TypeName" entries. Holding a lock of entry i while
	// acquiring or calling into entry j < i is an inversion.
	LockOrder []string
}

var defaultLockOrder = []string{
	"fleet.Pool", "relayd.Server", "relayd.Gate", "relayd.tokenBucket",
}

// blockingMethods maps "pkgbase.Type.Method" to true for method calls
// that may block. Receiver packages match on their final path element so
// fixtures can stub net or pipeline.
var blockingMethods = map[string]bool{
	"net.Conn.Read":              true,
	"net.Conn.Write":             true,
	"net.Conn.Close":             true,
	"net.Listener.Accept":        true,
	"sync.WaitGroup.Wait":        true,
	"pipeline.Batch.Process":     true,
	"pipeline.Batch.ProcessSome": true,
}

// New returns the lockscope analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.LockOrder == nil {
		cfg.LockOrder = defaultLockOrder
	}
	return &analysis.Analyzer{
		Name: "lockscope",
		Doc:  "no blocking operations or lock-order inversions while a mutex is held; every lock released on every path",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func run(pass *analysis.Pass, cfg Config) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, cfg, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, cfg, n.Body)
			}
			return true
		})
	}
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evReturn
	evBlock
	evLeveled
)

// event is one lock-relevant site in a function body, in source order.
type event struct {
	kind     eventKind
	pos      token.Pos
	key      string // mutex expression, e.g. "s.mu"
	deferred bool   // unlock registered via defer
	level    int    // LockOrder index of the owner (lock) or callee (leveled); -1 if none
	desc     string // human description for block/leveled events
}

// checkBody runs the linear scan over one function body. Nested function
// literals are skipped (they are scanned as their own bodies), except
// that a `defer func() { ... mu.Unlock() ... }()` contributes its
// unlocks as deferred unlocks of the enclosing body.
func checkBody(pass *analysis.Pass, cfg Config, body *ast.BlockStmt) {
	var events []event
	// selectComms holds the Comm statements of blocking selects, whose
	// channel operations are reported once via the select itself.
	selectComms := map[ast.Node]bool{}
	var deferredLits []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n == body {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate body; scanned on its own
		case *ast.DeferStmt:
			if op, key, _, ok := mutexOp(pass, cfg, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				events = append(events, event{kind: evUnlock, pos: n.Pos(), key: key, deferred: true})
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferredLits = append(deferredLits, lit)
				// Still skipped below when the FuncLit is visited.
			}
			return true
		case *ast.ReturnStmt:
			events = append(events, event{kind: evReturn, pos: n.Pos()})
		case *ast.SendStmt:
			if !selectComms[n] {
				events = append(events, event{kind: evBlock, pos: n.Pos(), desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideExemptComm(selectComms, n) {
				events = append(events, event{kind: evBlock, pos: n.Pos(), desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					events = append(events, event{kind: evBlock, pos: n.Pos(), desc: "range over channel"})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					selectComms[cc.Comm] = true
				}
			}
			if !hasDefault {
				events = append(events, event{kind: evBlock, pos: n.Pos(), desc: "select without default"})
			}
		case *ast.CallExpr:
			events = append(events, callEvents(pass, cfg, n)...)
		}
		return true
	})

	// Deferred closures run at return time with the body's locks already
	// released or about to be: their unlocks count as deferred unlocks of
	// this body.
	for _, lit := range deferredLits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, key, _, ok := mutexOp(pass, cfg, call); ok && (op == "Unlock" || op == "RUnlock") {
				events = append(events, event{kind: evUnlock, pos: lit.Pos(), key: key, deferred: true})
			}
			return true
		})
	}

	scan(pass, cfg, events)
}

// insideExemptComm reports whether the receive expression belongs to a
// select comm statement already accounted for by its select.
func insideExemptComm(comms map[ast.Node]bool, n ast.Node) bool {
	for c := range comms {
		if c.Pos() <= n.Pos() && n.End() <= c.End() {
			return true
		}
	}
	return false
}

// callEvents classifies one call expression into lock, unlock, blocking,
// or leveled-call events.
func callEvents(pass *analysis.Pass, cfg Config, call *ast.CallExpr) []event {
	if op, key, owner, ok := mutexOp(pass, cfg, call); ok {
		level := levelOf(cfg, owner)
		switch op {
		case "Lock", "RLock":
			return []event{{kind: evLock, pos: call.Pos(), key: key, level: level}}
		default:
			return []event{{kind: evUnlock, pos: call.Pos(), key: key}}
		}
	}
	if path, name := pkgFunc(pass, call); path == "time" && name == "Sleep" {
		return []event{{kind: evBlock, pos: call.Pos(), desc: "time.Sleep"}}
	}
	if fn, recv := methodRecv(pass, call); fn != nil && recv != nil {
		full := pkgBase(recv.Obj().Pkg().Path()) + "." + recv.Obj().Name() + "." + fn.Name()
		if blockingMethods[full] {
			return []event{{kind: evBlock, pos: call.Pos(), desc: full}}
		}
		if lvl := levelOf(cfg, recv); lvl >= 0 {
			return []event{{kind: evLeveled, pos: call.Pos(), level: lvl, desc: recv.Obj().Name() + "." + fn.Name()}}
		}
	}
	return nil
}

// held is the state of one currently-held mutex during the scan.
type held struct {
	key      string
	pos      token.Pos
	level    int
	deferred bool // a deferred unlock covers it to end of function
}

// scan replays the body's events in source order against a held-lock set.
func scan(pass *analysis.Pass, cfg Config, events []event) {
	var stack []held // insertion order; small
	reportedLeak := map[string]bool{}

	find := func(key string) int {
		for i, h := range stack {
			if h.key == key {
				return i
			}
		}
		return -1
	}

	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if find(ev.key) >= 0 {
				pass.Reportf(ev.pos, "%s locked while already held in this function (self-deadlock)", ev.key)
			}
			for _, h := range stack {
				if h.level >= 0 && ev.level >= 0 && ev.level < h.level {
					pass.Reportf(ev.pos, "lock ordering inversion: acquiring %s (%s) while holding %s (%s); the order is %s",
						ev.key, cfg.LockOrder[ev.level], h.key, cfg.LockOrder[h.level], strings.Join(cfg.LockOrder, " -> "))
				}
			}
			stack = append(stack, held{key: ev.key, pos: ev.pos, level: ev.level})
		case evUnlock:
			if i := find(ev.key); i >= 0 {
				if ev.deferred {
					stack[i].deferred = true
				} else {
					stack = append(stack[:i], stack[i+1:]...)
				}
			}
		case evReturn:
			for _, h := range stack {
				if !h.deferred && !reportedLeak[h.key] {
					reportedLeak[h.key] = true
					pass.Reportf(ev.pos, "return while %s is held: no unlock or deferred unlock before this return", h.key)
				}
			}
		case evBlock:
			// A deferred unlock does not excuse blocking while held.
			if len(stack) > 0 {
				pass.Reportf(ev.pos, "blocking operation (%s) while %s is held: critical sections must be pure in-memory work", ev.desc, stack[0].key)
			}
		case evLeveled:
			for _, h := range stack {
				if h.level >= 0 && ev.level < h.level {
					pass.Reportf(ev.pos, "lock ordering inversion: call to %s (%s) while holding %s (%s); the order is %s",
						ev.desc, cfg.LockOrder[ev.level], h.key, cfg.LockOrder[h.level], strings.Join(cfg.LockOrder, " -> "))
				}
			}
		}
	}
	for _, h := range stack {
		if !h.deferred && !reportedLeak[h.key] {
			pass.Reportf(h.pos, "%s is locked here but never unlocked in this function", h.key)
		}
	}
}

// mutexOp matches `<expr>.Lock/RLock/Unlock/RUnlock()` calls whose
// method receiver is sync.Mutex or sync.RWMutex (directly or through
// embedding) and returns the op name, the mutex expression key, and the
// named type owning the mutex (for lock ordering), if any.
func mutexOp(pass *analysis.Pass, cfg Config, call *ast.CallExpr) (op, key string, owner *types.Named, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", nil, false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", "", nil, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", nil, false
	}
	rn := namedOf(sig.Recv().Type())
	if rn == nil || rn.Obj().Pkg() == nil || rn.Obj().Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	if n := rn.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", nil, false
	}
	key = exprString(sel.X)
	// Owner: for `s.mu.Lock()` the owner is s's type; for an embedded
	// mutex (`t.Lock()`), sel.X itself is the owner.
	if xn := namedOf(typeOf(pass, sel.X)); xn != nil && !(xn.Obj().Pkg() != nil && xn.Obj().Pkg().Path() == "sync") {
		owner = xn
	} else if inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
		owner = namedOf(typeOf(pass, inner.X))
	}
	return sel.Sel.Name, key, owner, true
}

// methodRecv resolves a method call to its *types.Func and the named
// receiver type, or nils for non-method calls.
func methodRecv(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, *types.Named) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return nil, nil
	}
	return fn, named
}

// levelOf returns the LockOrder index of the named type, or -1.
func levelOf(cfg Config, n *types.Named) int {
	if n == nil || n.Obj().Pkg() == nil {
		return -1
	}
	full := pkgBase(n.Obj().Pkg().Path()) + "." + n.Obj().Name()
	for i, entry := range cfg.LockOrder {
		if entry == full {
			return i
		}
	}
	return -1
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedOf unwraps pointers and returns the named type, including named
// interface types (net.Conn).
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// pkgFunc resolves a call target to (package path, func name) for
// package-level functions.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return fmt.Sprintf("%T", e)
}
