// Package lockfixture exercises lockscope: blocking operations under a
// held mutex, early returns that leak a lock, and lock-order inversions
// across the Pool -> Server -> Gate hierarchy (the fixture mirror of
// fleet.Pool -> relayd.Server -> relayd.Gate).
package lockfixture

import (
	"net"
	"pipeline"
	"sync"
	"time"
)

type Gate struct {
	mu     sync.Mutex
	active int
}

type Server struct {
	mu    sync.Mutex
	gate  *Gate
	conns map[net.Conn]bool
	batch *pipeline.Batch
	ch    chan int
}

type Pool struct{ relays []int }

func (p *Pool) Len() int { return len(p.relays) }

// Admit is the clean lock-then-defer idiom: no findings.
func (g *Gate) Admit() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.active++
	return true
}

func (s *Server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation \(time\.Sleep\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *Server) sendHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `blocking operation \(channel send\) while s\.mu is held`
}

func (s *Server) recvHeld() int {
	s.mu.Lock()
	v := <-s.ch // want `blocking operation \(channel receive\) while s\.mu is held`
	s.mu.Unlock()
	return v
}

// closeConnsHeld is the pinned real finding: internal/relayd's closeConns
// once force-closed every tracked conn while still holding the server
// mutex (fixed in the same PR that added this analyzer).
func (s *Server) closeConnsHeld() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // want `blocking operation \(net\.Conn\.Close\) while s\.mu is held`
	}
	s.mu.Unlock()
}

// closeConnsFixed is the corrected shape: snapshot under the lock, close
// outside it.
func (s *Server) closeConnsFixed() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) batchHeld(n int) {
	s.mu.Lock()
	s.batch.ProcessSome(n) // want `blocking operation \(pipeline\.Batch\.ProcessSome\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *Server) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking operation \(select without default\) while s\.mu is held`
	case v := <-s.ch:
		_ = v
	}
}

// selectDefaultOK: a select with a default clause cannot block.
func (s *Server) selectDefaultOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *Server) rangeChanHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `blocking operation \(range over channel\) while s\.mu is held`
		_ = v
	}
}

func (s *Server) earlyReturnLeak(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want `return while s\.mu is held`
	}
	s.mu.Unlock()
	return 1
}

func (s *Server) neverUnlocked() {
	s.mu.Lock() // want `s\.mu is locked here but never unlocked`
	s.gate.Admit()
}

// deferClosureUnlockOK: an unlock inside a deferred closure covers every
// return path.
func (s *Server) deferClosureUnlockOK() {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	s.gate.Admit()
}

// badOrderCall holds the innermost lock (Gate) and calls out to the
// outermost type (Pool): an inversion.
func badOrderCall(p *Pool, g *Gate) int {
	g.mu.Lock()
	n := p.Len() // want `lock ordering inversion: call to Pool\.Len`
	g.mu.Unlock()
	return n
}

func badOrderAcquire(s *Server, g *Gate) {
	g.mu.Lock()
	s.mu.Lock() // want `lock ordering inversion: acquiring s\.mu`
	s.mu.Unlock()
	g.mu.Unlock()
}

// goodOrder acquires outer-to-inner, which is the sanctioned direction.
func goodOrder(s *Server, g *Gate) {
	s.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	s.mu.Unlock()
}

func doubleLock(g *Gate) {
	g.mu.Lock()
	g.mu.Lock() // want `g\.mu locked while already held`
	g.mu.Unlock()
	g.mu.Unlock()
}

// unheldOK: all of these block, but nothing is held.
func (s *Server) unheldOK(c net.Conn) {
	time.Sleep(time.Millisecond)
	s.ch <- 1
	c.Close()
}

// allowedHeld carries a written justification.
func (s *Server) allowedHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) //fflint:allow lockscope fixture exercises the suppression path
}
