// Package pipeline is a fixture stub of internal/pipeline: just the
// Batch surface lockscope treats as blocking.
package pipeline

type Batch struct{ n int }

func (b *Batch) Process()              {}
func (b *Batch) ProcessSome(n int) int { return n }
func (b *Batch) Add(id uint64) bool    { return true }
