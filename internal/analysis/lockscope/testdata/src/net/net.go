// Package net is a fixture stub of the standard library's net package:
// just enough surface for the lockscope fixtures. The analyzers match
// the receiver package by its final path element, so this stub stands in
// for the real thing.
package net

import "time"

type Addr interface{ String() string }

type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
	LocalAddr() Addr
	RemoteAddr() Addr
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() Addr
}
