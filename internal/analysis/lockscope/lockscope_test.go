package lockscope_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	a := lockscope.New(lockscope.Config{
		LockOrder: []string{"lockfixture.Pool", "lockfixture.Server", "lockfixture.Gate"},
	})
	analysistest.Run(t, "testdata", a, "lockfixture")
}
