// Package racelist guards the Makefile's `race:` target against drift.
// The race detector only sees what the race target runs, and the target
// is a hand-maintained package list — so a new concurrent package (or a
// quiet package growing its first goroutine) silently escapes coverage.
//
// The rule: every package that has tests AND whose sources carry a
// concurrency marker — a `go` statement, a select statement, channel
// types or operations, an import of sync, or a fan-out through
// internal/par — must appear in the race target's recipe. Extra entries
// are fine (a package can be race-tested for its callers' sake, as
// internal/pipeline is); missing ones fail `make check` via
// cmd/racecheck.
package racelist

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// parImportSuffix marks the in-repo parallel sweep engine: importing it
// means the package fans work out across goroutines.
const parImportSuffix = "internal/par"

// Concurrent walks the module rooted at root and returns, for each
// package directory (module-relative, slash-separated) that both has
// tests and uses concurrency, the list of markers that make it
// concurrent. Directories named testdata and hidden directories are
// skipped.
func Concurrent(root string) (map[string][]string, error) {
	type pkgState struct {
		markers  map[string]bool
		hasTests bool
	}
	pkgs := map[string]*pkgState{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		st := pkgs[rel]
		if st == nil {
			st = &pkgState{markers: map[string]bool{}}
			pkgs[rel] = st
		}
		if strings.HasSuffix(path, "_test.go") {
			st.hasTests = true
		}
		for _, m := range fileMarkers(path) {
			st.markers[m] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for rel, st := range pkgs {
		if !st.hasTests || len(st.markers) == 0 {
			continue
		}
		ms := make([]string, 0, len(st.markers))
		for m := range st.markers {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		out[rel] = ms
	}
	return out, nil
}

// fileMarkers parses one file and collects its concurrency markers. A
// file that fails to parse contributes none (the build catches it).
func fileMarkers(path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil
	}
	set := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if p == "sync" {
			set["imports sync"] = true
		}
		if p == parImportSuffix || strings.HasSuffix(p, "/"+parImportSuffix) {
			set["fans out via internal/par"] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			set["spawns goroutines"] = true
		case *ast.SelectStmt:
			set["uses select"] = true
		case *ast.ChanType, *ast.SendStmt:
			set["uses channels"] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				set["uses channels"] = true
			}
		}
		return true
	})
	var out []string
	for m := range set {
		out = append(out, m)
	}
	return out
}

// pkgTokenRE pulls ./-prefixed package paths out of a recipe line.
var pkgTokenRE = regexp.MustCompile(`\./([A-Za-z0-9_./-]+)`)

// RaceTested parses the Makefile at path and returns the set of
// module-relative package paths named anywhere in the `race:` target's
// recipe lines.
func RaceTested(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tested := map[string]bool{}
	inRace := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "race:"):
			inRace = true
		case inRace && strings.HasPrefix(line, "\t"):
			for _, m := range pkgTokenRE.FindAllStringSubmatch(line, -1) {
				tested[strings.TrimSuffix(m[1], "/...")] = true
			}
		case inRace:
			inRace = false
		}
	}
	if len(tested) == 0 {
		return nil, fmt.Errorf("racelist: no race target with package paths found in %s", path)
	}
	return tested, nil
}

// Missing returns the concurrent, tested packages under root that the
// Makefile's race target does not cover, sorted.
func Missing(root, makefile string) ([]string, map[string][]string, error) {
	concurrent, err := Concurrent(root)
	if err != nil {
		return nil, nil, err
	}
	tested, err := RaceTested(makefile)
	if err != nil {
		return nil, nil, err
	}
	var missing []string
	for pkg := range concurrent {
		if !tested[pkg] {
			missing = append(missing, pkg)
		}
	}
	sort.Strings(missing)
	return missing, concurrent, nil
}
