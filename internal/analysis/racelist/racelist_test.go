package racelist_test

import (
	"os"
	"path/filepath"
	"testing"

	"fastforward/internal/analysis/racelist"
)

// writeTree lays out a fake module: paths map to file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const makefileCoveringOther = `build:
	go build ./...

race:
	go test -race ./internal/other
	go test -race -short ./internal/also
	go test -race -run 'Parallel|Slot' ./internal/filtered

check: race
`

func TestMissingFlagsUncoveredConcurrentPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile": makefileCoveringOther,
		// Concurrent (go statement) with tests: must be race-listed.
		"internal/foo/foo.go":      "package foo\n\nfunc F() { go func() {}() }\n",
		"internal/foo/foo_test.go": "package foo\n",
		// Pure in every way: never flagged.
		"internal/quiet/quiet.go":      "package quiet\n\nfunc Q() int { return 1 }\n",
		"internal/quiet/quiet_test.go": "package quiet\n",
		// Concurrent but untested: the race detector has nothing to run.
		"internal/notests/notests.go": "package notests\n\nimport \"sync\"\n\nvar m sync.Mutex\n",
		// Concurrent via par import, with tests, covered by the -short line.
		"internal/also/also.go":      "package also\n\nimport \"example.com/m/internal/par\"\n\nvar _ = par.X\n",
		"internal/also/also_test.go": "package also\n",
		// Fixture trees under testdata never count.
		"internal/foo/testdata/src/bad/bad.go": "package bad\n\nfunc B() { go func() {}() }\n",
	})
	missing, concurrent, err := racelist.Missing(root, filepath.Join(root, "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "internal/foo" {
		t.Fatalf("missing = %v, want [internal/foo]", missing)
	}
	if _, ok := concurrent["internal/quiet"]; ok {
		t.Error("quiet package reported as concurrent")
	}
	if _, ok := concurrent["internal/notests"]; ok {
		t.Error("untested package reported: nothing for the race detector to run")
	}
	if _, ok := concurrent["internal/also"]; !ok {
		t.Error("par-importing package not reported as concurrent")
	}
}

func TestRaceTestedParsesRecipeVariants(t *testing.T) {
	root := writeTree(t, map[string]string{"Makefile": makefileCoveringOther})
	tested, err := racelist.RaceTested(filepath.Join(root, "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"internal/other", "internal/also", "internal/filtered"} {
		if !tested[want] {
			t.Errorf("race target should cover %s; got %v", want, tested)
		}
	}
	if tested["..."] || len(tested) != 3 {
		t.Errorf("unexpected entries in %v", tested)
	}
}

func TestRaceTestedRejectsMakefileWithoutRaceTarget(t *testing.T) {
	root := writeTree(t, map[string]string{"Makefile": "build:\n\tgo build ./...\n"})
	if _, err := racelist.RaceTested(filepath.Join(root, "Makefile")); err == nil {
		t.Fatal("expected an error for a Makefile with no race target")
	}
}

// TestRepositoryRaceListIsCurrent is the drift guard run against the
// real repository: every concurrent package must be race-listed.
func TestRepositoryRaceListIsCurrent(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	missing, _, err := racelist.Missing(root, filepath.Join(root, "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("concurrent packages missing from the Makefile race target: %v", missing)
	}
}
