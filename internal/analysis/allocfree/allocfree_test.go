package allocfree_test

import (
	"testing"

	"fastforward/internal/analysis/allocfree"
	"fastforward/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	a := allocfree.New(allocfree.Config{
		HotPackages: []string{"allocfixture"},
	})
	analysistest.Run(t, "testdata", a, "allocfixture", "coldpkg")
}
