// Package allocfixture exercises the allocfree rules: per-block hot
// paths (Process/ProcessInto and friends) must not make slices outside a
// grow-once guard or call the allocating dsp helpers.
package allocfixture

import "dsp"

type stage struct {
	est []complex128
	ref []complex128
}

// Process is a hot path: bare makes and allocating helpers are findings.
func (s *stage) Process(block []complex128) []complex128 {
	tmp := make([]complex128, len(block)) // want `slice make in per-block hot path Process`
	copy(tmp, block)
	out := dsp.Add(tmp, s.ref) // want `allocating dsp.Add in per-block hot path Process`
	return dsp.ScaleC(out, 2)  // want `allocating dsp.ScaleC in per-block hot path Process`
}

// ProcessInto shows the legal forms: the grow-once guard and the
// InPlace/Into helper variants amortize to zero allocations.
func (s *stage) ProcessInto(dst, block []complex128) {
	if cap(s.est) < len(block) {
		s.est = make([]complex128, len(block)) // grow-once: allowed
	}
	est := s.est[:len(block)]
	copy(est, block)
	dsp.SubInPlace(est, s.ref)
	dsp.ScaleCInPlace(est, 2)
	copy(dst, est)
}

// PushPair is per-sample hot: even a small make is a finding.
func (s *stage) PushPair(tx, rx complex128) complex128 {
	pair := make([]complex128, 2) // want `slice make in per-block hot path PushPair`
	pair[0], pair[1] = tx, rx
	return rx - complex(dsp.Power(pair), 0)
}

// ProcessAllowed demonstrates the escape hatch: an intentional per-call
// allocation documents itself and is suppressed. (The function name
// keeps it outside the hot set; the annotation form is what matters.)
func (s *stage) Process2(block []complex128) []complex128 { return block }

// Process with a documented intentional allocation.
func (s *stage) ProcessM(blocks [][]complex128) [][]complex128 {
	out := make([][]complex128, len(blocks)) // want `slice make in per-block hot path ProcessM`
	copy(out, blocks)
	kept := make([][]complex128, 0, len(blocks)) //fflint:allow allocfree characterization path, runs once per placement
	return append(kept, out...)
}

// setup is not a hot path: allocation is fine here.
func (s *stage) setup(n int) {
	s.ref = make([]complex128, n)
	s.est = dsp.Clone(s.ref)
}
