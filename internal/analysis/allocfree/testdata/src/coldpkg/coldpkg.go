// Package coldpkg is outside the hot-package set: Process here may
// allocate freely (the analyzer scopes to the signal-path packages).
package coldpkg

func Process(block []complex128) []complex128 {
	out := make([]complex128, len(block)) // outside HotPackages: allowed
	copy(out, block)
	return out
}
