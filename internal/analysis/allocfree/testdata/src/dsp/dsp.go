// Package dsp is a stub of fastforward/internal/dsp for allocfree
// fixtures: the allocating helpers and their zero-allocation variants.
package dsp

func Scale(x []complex128, g float64) []complex128 { return append([]complex128(nil), x...) }

func ScaleC(x []complex128, g complex128) []complex128 { return append([]complex128(nil), x...) }

func Add(a, b []complex128) []complex128 { return append([]complex128(nil), a...) }

func Sub(a, b []complex128) []complex128 { return append([]complex128(nil), a...) }

func Mul(a, b []complex128) []complex128 { return append([]complex128(nil), a...) }

func Conj(x []complex128) []complex128 { return append([]complex128(nil), x...) }

func Clone(x []complex128) []complex128 { return append([]complex128(nil), x...) }

func AddInPlace(a, b []complex128) {}

func SubInPlace(a, b []complex128) {}

func ScaleCInPlace(x []complex128, g complex128) {}

func MulInto(dst, a, b []complex128) {}

func Power(x []complex128) float64 { return 0 }
