// Package allocfree forbids per-block heap allocation in the streaming
// hot paths. The real-time budget of the relay chain (50 ns/sample at
// 20 MHz) has no room for allocator or GC work, so every Process /
// ProcessInto body in the signal-path packages must run allocation-free
// at steady state — the invariant `make bench-allocs` measures and this
// analyzer makes visible at the line that breaks it.
//
// Two rules, applied inside hot-path function bodies (Process,
// ProcessInto, ProcessAll, ProcessM, Push, PushPair) of the signal-path
// packages:
//
//  1. Slice make: `make([]T, ...)` allocates per call unless it sits
//     behind the grow-once idiom — a surrounding `if cap(buf) < n`
//     guard, which amortizes to zero at steady state and is the pattern
//     the pipeline's scratch buffers use.
//
//  2. Allocating dsp helpers: dsp.Scale, ScaleC, Add, Sub, Mul, Conj,
//     Clone and friends return freshly allocated slices by design (they
//     serve the setup paths). Hot paths use their Into/InPlace variants
//     instead, which write caller-owned buffers.
//
// A site that allocates intentionally — a characterization path that
// runs once per placement, a tap stage that records by design —
// documents itself with `//fflint:allow allocfree <reason>`.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// HotPackages are import-path suffixes whose hot-path functions are
	// checked (the packages on the per-block signal path).
	HotPackages []string
	// HotFuncs are the function/method names treated as per-block hot
	// paths.
	HotFuncs []string
}

var defaultHotPackages = []string{
	"internal/dsp", "internal/pipeline", "internal/sic", "internal/relay",
	"internal/cnf", "internal/channel", "internal/impair",
}

var defaultHotFuncs = []string{
	"Process", "ProcessInto", "ProcessAll", "ProcessM", "Push", "PushPair",
}

// allocHelpers maps each allocating dsp helper to the zero-allocation
// variant the diagnostic suggests.
var allocHelpers = map[string]string{
	"Scale":          "ScaleInPlace or ScaleInto",
	"ScaleC":         "ScaleCInPlace or ScaleCInto",
	"Add":            "AddInPlace or AddInto",
	"Sub":            "SubInPlace or SubInto",
	"Mul":            "MulInto",
	"Conj":           "ConjInto",
	"Clone":          "copy into reused scratch",
	"Delay":          "a dsp.DelayLine pushed per block",
	"Convolve":       "a dsp.FIR (or the pipeline FIRStage fast paths)",
	"Rotate":         "ScaleCInPlace with a precomputed phasor",
	"ApplyCFO":       "a pipeline.CFOStage (fast path armed)",
	"CrossCorrelate": "a preallocated correlator scratch",
}

// New returns the allocfree analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.HotPackages == nil {
		cfg.HotPackages = defaultHotPackages
	}
	if cfg.HotFuncs == nil {
		cfg.HotFuncs = defaultHotFuncs
	}
	return &analysis.Analyzer{
		Name: "allocfree",
		Doc:  "forbid per-block allocation (slice make, allocating dsp helpers) in Process/ProcessInto hot paths",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, cfg Config) {
	if !pathMatches(pass.Pkg.Path(), cfg.HotPackages) {
		return
	}
	hot := map[string]bool{}
	for _, n := range cfg.HotFuncs {
		hot[n] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hot[fd.Name.Name] {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

// checkHotBody flags per-call allocations in one hot-path function.
// Function literals nested inside are part of the same per-block path
// (they run when the body runs), so the walk descends into them.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	guards := growGuards(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSliceMake(pass, call) && !insideGuard(guards, call) {
			pass.Reportf(call.Pos(),
				"slice make in per-block hot path %s: allocates every call; grow once behind an `if cap(buf) < n` guard or reuse caller-owned scratch",
				fd.Name.Name)
			return true
		}
		if name, alt, ok := dspAllocHelper(pass, call); ok {
			pass.Reportf(call.Pos(),
				"allocating dsp.%s in per-block hot path %s: returns a fresh slice every call; use %s",
				name, fd.Name.Name, alt)
		}
		return true
	})
}

// growGuards collects the if statements whose condition compares cap(...)
// — the grow-once idiom. A make inside such a body amortizes to zero
// allocations at steady state.
func growGuards(pass *analysis.Pass, body ast.Node) []*ast.IfStmt {
	var guards []*ast.IfStmt
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if ok && condComparesCap(pass, ifs.Cond) {
			guards = append(guards, ifs)
		}
		return true
	})
	return guards
}

// condComparesCap reports whether the condition contains an ordered
// comparison with a builtin cap() call on either side (possibly joined
// with || / && for multi-buffer guards).
func condComparesCap(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		default:
			return true
		}
		if isCapCall(pass, be.X) || isCapCall(pass, be.Y) {
			found = true
		}
		return !found
	})
	return found
}

func isCapCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "cap" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func insideGuard(guards []*ast.IfStmt, n ast.Node) bool {
	for _, g := range guards {
		if g.Body.Pos() <= n.Pos() && n.End() <= g.Body.End() {
			return true
		}
	}
	return false
}

// isSliceMake matches `make([]T, ...)` (slice results only: making maps
// or channels in a hot path is a design smell detrand and review catch;
// the per-block allocator churn this analyzer targets is slices).
func isSliceMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// dspAllocHelper resolves a call to one of the allocating dsp package
// helpers, returning its name and the suggested replacement. The dsp
// package is matched by import-path suffix so fixtures can stub it.
func dspAllocHelper(pass *analysis.Pass, call *ast.CallExpr) (name, alt string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false
	}
	path := fn.Pkg().Path()
	if path != "dsp" && !strings.HasSuffix(path, "/dsp") {
		return "", "", false
	}
	alt, ok = allocHelpers[fn.Name()]
	return fn.Name(), alt, ok
}
