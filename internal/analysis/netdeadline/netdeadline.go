// Package netdeadline enforces the daemon's deadline discipline on
// net.Conn I/O: inside the configured packages (internal/relayd), every
// conn Read/Write — direct, or through a helper the conn is passed to —
// must be reachable only after a Set{Read,Write}Deadline on the same
// conn in the same function, and the error a deadline setter returns
// must not be discarded (a conn whose setter fails is already dead, and
// ignoring it turns the next I/O into an unbounded block).
//
// The analyzer classifies every function in the package by what it does
// with each parameter, to a fixpoint: a function that arms a deadline on
// its conn parameter before any I/O (relayd's setWriteDeadline,
// readSessionFrame, handleConn) counts as arming it at the call site; a
// function that performs I/O on a parameter without arming it first
// requires the caller to have armed the conn — such helpers must declare
// the parameter io.Writer/io.Reader (writeFrame, readFrame: framing is
// transport-agnostic by design), because unarmed I/O directly on a
// net.Conn parameter is itself flagged. Methods that arm a
// deadline on a receiver field (Client.armDeadline on c.conn) arm that
// field for the caller. Passing a conn to an unknown or external
// function (io.ReadFull) counts as I/O.
//
// The scan is linear within each function body, the same deliberate
// trade as lockscope: a branch-local false positive is annotated with
// `//fflint:allow netdeadline <reason>`, and the straight-line handler
// states the daemon actually uses are covered exactly.
package netdeadline

import (
	"go/ast"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// Packages are import-path suffixes subject to the deadline rules
	// (the packages doing deadline-bounded conn I/O).
	Packages []string
}

var defaultPackages = []string{"internal/relayd"}

var setterNames = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// neutralConnMethods neither arm nor perform deadline-bounded I/O.
var neutralConnMethods = map[string]bool{
	"Close": true, "LocalAddr": true, "RemoteAddr": true, "String": true,
}

// New returns the netdeadline analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.Packages == nil {
		cfg.Packages = defaultPackages
	}
	return &analysis.Analyzer{
		Name: "netdeadline",
		Doc:  "conn I/O only after a deadline is armed on the same conn; deadline-setter errors must be checked",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// paramKind classifies what a function does with one parameter.
type paramKind int

const (
	kindNeutral paramKind = iota // no deadline-relevant use
	kindArms                     // arms a deadline before any I/O
	kindIO                       // performs I/O with no (or later) arming
)

// funcInfo is the per-function classification.
type funcInfo struct {
	decl   *ast.FuncDecl
	params []*ast.Ident // in signature order, nil for unnamed/_
	kinds  []paramKind
	// armsField is the receiver field (e.g. "conn") this method arms a
	// deadline on, or "" — Client.armDeadline arms c.conn for its caller.
	armsField string
	recvName  string // receiver ident name, for field matching
}

func run(pass *analysis.Pass, cfg Config) {
	if !pathMatches(pass.Pkg.Path(), cfg.Packages) {
		return
	}
	infos := classify(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, infos, fd)
			}
		}
	}
}

// classify computes every package function's per-parameter kind and
// receiver-field arming, iterating to a fixpoint so helper chains
// (refuse -> setWriteDeadline) classify transitively.
func classify(pass *analysis.Pass) map[*types.Func]*funcInfo {
	infos := map[*types.Func]*funcInfo{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					fi.params = append(fi.params, name)
					fi.kinds = append(fi.kinds, kindNeutral)
				}
				if len(field.Names) == 0 {
					fi.params = append(fi.params, nil)
					fi.kinds = append(fi.kinds, kindNeutral)
				}
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				fi.recvName = fd.Recv.List[0].Names[0].Name
			}
			infos[obj] = fi
		}
	}
	for round := 0; round < 5; round++ {
		changed := false
		for _, fi := range infos {
			if classifyOne(pass, infos, fi) {
				changed = true
			}
		}
		if !changed {
			return infos
		}
	}
	return infos
}

// classifyOne recomputes one function's classification against the
// current state of every other function's, reporting whether it changed.
func classifyOne(pass *analysis.Pass, infos map[*types.Func]*funcInfo, fi *funcInfo) bool {
	// Track, per parameter, the first arming and first I/O position.
	setterAt := make([]int, len(fi.params))
	ioAt := make([]int, len(fi.params))
	order := 0
	var fieldArm string

	paramIndex := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return -1
		}
		for i, p := range fi.params {
			if p != nil && obj == pass.TypesInfo.ObjectOf(p) {
				return i
			}
		}
		return -1
	}
	recvField := func(e ast.Expr) string {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || fi.recvName == "" {
			return ""
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == fi.recvName {
			return sel.Sel.Name
		}
		return ""
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		order++
		// Direct method calls on a parameter or receiver field.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if i := paramIndex(sel.X); i >= 0 {
				switch {
				case setterNames[sel.Sel.Name]:
					if setterAt[i] == 0 {
						setterAt[i] = order
					}
				case neutralConnMethods[sel.Sel.Name]:
				default:
					if ioAt[i] == 0 {
						ioAt[i] = order
					}
				}
				return true
			}
			if f := recvField(sel.X); f != "" && setterNames[sel.Sel.Name] && fieldArm == "" {
				fieldArm = f
			}
		}
		// Parameters or receiver fields passed as arguments.
		callee := calleeInfo(pass, infos, call)
		for argPos, arg := range call.Args {
			if i := paramIndex(arg); i >= 0 {
				switch argKind(pass, callee, call, argPos) {
				case kindArms:
					if setterAt[i] == 0 {
						setterAt[i] = order
					}
				case kindIO:
					if ioAt[i] == 0 {
						ioAt[i] = order
					}
				}
			}
			if f := recvField(arg); f != "" && fieldArm == "" {
				if argKind(pass, callee, call, argPos) == kindArms {
					fieldArm = f
				}
			}
		}
		return true
	})

	changed := false
	for i := range fi.params {
		k := kindNeutral
		switch {
		case setterAt[i] > 0 && (ioAt[i] == 0 || setterAt[i] < ioAt[i]):
			k = kindArms
		case ioAt[i] > 0:
			k = kindIO
		}
		if fi.kinds[i] != k {
			fi.kinds[i] = k
			changed = true
		}
	}
	if fieldArm != fi.armsField {
		fi.armsField = fieldArm
		changed = true
	}
	return changed
}

// calleeInfo resolves a call to a same-package function's classification,
// or nil for external, builtin, and unresolvable callees.
func calleeInfo(pass *analysis.Pass, infos map[*types.Func]*funcInfo, call *ast.CallExpr) *funcInfo {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	return infos[fn]
}

// argKind reports what the callee does with the argument at argPos:
// same-package callees answer from their classification, builtins and
// conversions are neutral, and anything external counts as I/O (the
// conservative reading of handing a conn to io.ReadFull).
func argKind(pass *analysis.Pass, callee *funcInfo, call *ast.CallExpr, argPos int) paramKind {
	if callee != nil {
		if argPos < len(callee.kinds) {
			return callee.kinds[argPos]
		}
		return kindNeutral
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return kindNeutral
	}
	switch pass.TypesInfo.Uses[id].(type) {
	case *types.Builtin:
		return kindNeutral
	case *types.TypeName:
		return kindNeutral // conversion
	case *types.Func:
		return kindIO
	}
	if _, isType := pass.TypesInfo.Types[call.Fun]; isType {
		return kindNeutral
	}
	return kindNeutral
}

// isConn reports whether t is (or points to) the named interface
// net.Conn; the package matches on its final path element so fixtures
// can stub net.
func isConn(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Name() != "Conn" {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "net" || strings.HasSuffix(path, "/net")
}

// checkFunc runs the linear armed-deadline scan over one function body
// and flags discarded deadline-setter errors.
func checkFunc(pass *analysis.Pass, infos map[*types.Func]*funcInfo, fd *ast.FuncDecl) {
	armed := map[string]bool{}
	// fieldArmers: method receiver type -> method name -> armed field.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := discardedSetter(pass, call); name != "" {
					pass.Reportf(call.Pos(), "%s result discarded: a failed deadline setter means the conn is already dead — check it, count it, close the conn", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && allBlank(n.Lhs) {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if name := discardedSetter(pass, call); name != "" {
						pass.Reportf(call.Pos(), "%s result discarded: a failed deadline setter means the conn is already dead — check it, count it, close the conn", name)
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, infos, n, armed)
		}
		return true
	})
}

// checkCall updates and checks the armed set for one call expression.
func checkCall(pass *analysis.Pass, infos map[*types.Func]*funcInfo, call *ast.CallExpr, armed map[string]bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Direct method call on a conn-typed expression.
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isConn(tv.Type) {
			key := exprString(sel.X)
			switch {
			case setterNames[sel.Sel.Name]:
				armed[key] = true
			case neutralConnMethods[sel.Sel.Name]:
			default:
				if !armed[key] {
					pass.Reportf(call.Pos(), "%s.%s without a deadline armed on %s in this function: unbounded block on a stuck peer (arm a Set{Read,Write}Deadline first)", key, sel.Sel.Name, key)
				}
			}
			return
		}
		// Method call that arms a deadline on a receiver field
		// (c.armDeadline() arms c.conn).
		if fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func); fn != nil {
			if fi := infos[fn]; fi != nil && fi.armsField != "" {
				armed[exprString(sel.X)+"."+fi.armsField] = true
			}
		}
	}
	// Conn-typed arguments handed to callees.
	callee := calleeInfo(pass, infos, call)
	for argPos, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isConn(tv.Type) {
			continue
		}
		key := exprString(arg)
		switch argKind(pass, callee, call, argPos) {
		case kindArms:
			armed[key] = true
		case kindIO:
			if !armed[key] {
				pass.Reportf(call.Pos(), "conn %s passed to I/O without a deadline armed in this function: unbounded block on a stuck peer (arm a Set{Read,Write}Deadline first)", key)
			}
		}
	}
}

// discardedSetter returns "<expr>.<SetXDeadline>" when call is a deadline
// setter on a conn whose error result is being discarded, else "".
func discardedSetter(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !setterNames[sel.Sel.Name] {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isConn(tv.Type) {
		return ""
	}
	return exprString(sel.X) + "." + sel.Sel.Name
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "conn"
}
