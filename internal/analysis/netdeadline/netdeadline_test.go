package netdeadline_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/netdeadline"
)

func TestNetdeadline(t *testing.T) {
	a := netdeadline.New(netdeadline.Config{Packages: []string{"deadfixture"}})
	analysistest.Run(t, "testdata", a, "deadfixture")
}
