// Package deadfixture exercises netdeadline: direct and helper-mediated
// conn I/O with and without an armed deadline, discarded setter errors,
// and receiver-field arming (the Client.armDeadline shape).
package deadfixture

import (
	"io"
	"net"
	"time"
)

// writeRaw performs I/O without arming a deadline: the caller must arm.
// It declares io.Writer, not net.Conn — the convention for
// caller-arms-the-deadline helpers (the writeFrame/readFrame shape;
// framing is transport-agnostic by design). A helper doing unarmed I/O
// on a net.Conn parameter is itself a finding.
func writeRaw(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

// armWrite arms a deadline on its conn parameter and checks the error:
// calling it counts as arming at the call site.
func armWrite(c net.Conn) error {
	return c.SetWriteDeadline(time.Now().Add(time.Second))
}

func sendUnarmed(c net.Conn, b []byte) {
	c.Write(b) // want `c\.Write without a deadline armed on c`
}

func sendViaHelperUnarmed(c net.Conn, b []byte) {
	writeRaw(c, b) // want `conn c passed to I/O without a deadline armed`
}

func sendArmed(c net.Conn, b []byte) error {
	if err := armWrite(c); err != nil {
		return err
	}
	return writeRaw(c, b)
}

func readArmedDirect(c net.Conn, b []byte) error {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Read(b)
	return err
}

func externalIOUnarmed(c net.Conn) {
	io.ReadFull(c, make([]byte, 4)) // want `conn c passed to I/O without a deadline armed`
}

func externalIOArmed(c net.Conn) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := io.ReadFull(c, make([]byte, 4))
	return err
}

// setWriteDeadlineOld is the pinned real finding: internal/relayd's
// setWriteDeadline discarded the setter's error (relayd.go:345 before
// the fix), leaving the next write unbounded on a conn that was already
// dead.
func setWriteDeadlineOld(c net.Conn, timeout time.Duration) {
	if timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(timeout)) // want `c\.SetWriteDeadline result discarded`
	}
}

func blankedSetter(c net.Conn) {
	_ = c.SetReadDeadline(time.Now().Add(time.Second)) // want `c\.SetReadDeadline result discarded`
}

// refuseLike arms through one helper, then does I/O through another:
// transitively clean, and callers passing a conn to it count as armed.
func refuseLike(c net.Conn) {
	if armWrite(c) == nil {
		writeRaw(c, nil)
	}
}

func callerOfRefuseLike(c net.Conn, b []byte) error {
	refuseLike(c)
	return writeRaw(c, b)
}

// closeOnly: Close and address reads are neutral, no deadline needed.
func closeOnly(c net.Conn) {
	defer c.Close()
	c.RemoteAddr()
}

type client struct {
	conn net.Conn
}

// arm arms a deadline on the receiver's conn field: calling it arms
// c.conn for the caller (the relayd Client.armDeadline shape).
func (c *client) arm() error {
	return c.conn.SetDeadline(time.Now().Add(time.Second))
}

func (c *client) roundTripOK(b []byte) error {
	if err := c.arm(); err != nil {
		return err
	}
	_, err := c.conn.Write(b)
	return err
}

func (c *client) roundTripBad(b []byte) error {
	_, err := c.conn.Write(b) // want `c\.conn\.Write without a deadline armed`
	return err
}

// allowedUnarmed carries a written justification.
func allowedUnarmed(c net.Conn, b []byte) {
	c.Write(b) //fflint:allow netdeadline fixture exercises the suppression path
}
