// Package par is a stub of fastforward/internal/par for seedflow
// fixtures.
package par

func ForEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

func FlatMap[T any](n, workers int, fn func(i int) []T) []T {
	var out []T
	for _, p := range Map(n, workers, fn) {
		out = append(out, p...)
	}
	return out
}
