// Package pipefixture models pipeline-chain construction inside parallel
// sweep items under the seedflow rule: each item's chain state (noise
// stages, impairment draws) must be seeded through rng.ItemSeed so block
// processing stays bit-identical for any worker count.
package pipefixture

import (
	"par"
	"rng"
)

type chain struct{ src *rng.Source }

func newChain(src *rng.Source) *chain { return &chain{src: src} }

func (c *chain) process(block []float64) []float64 {
	for i := range block {
		block[i] += c.src.Float64()
	}
	return block
}

// sweepChainsOK builds one chain per work item from an ItemSeed-derived
// source — the pattern the relay/testbed sweeps use.
func sweepChainsOK(base int64, n int) [][]float64 {
	return par.Map(n, 0, func(i int) []float64 {
		c := newChain(rng.New(rng.ItemSeed(base, i)))
		return c.process(make([]float64, 8))
	})
}

// sweepChainsRawIndex seeds a chain from the raw loop index: the stream
// then depends on grid geometry instead of the mixed seed.
func sweepChainsRawIndex(n int) {
	par.ForEach(n, 0, func(i int) {
		c := newChain(rng.New(int64(i))) // want `seed not derived from rng.ItemSeed`
		_ = c.process(make([]float64, 8))
	})
}

// sweepChainsSharedFork forks a shared source inside the item body:
// schedule-dependent even though each item gets its "own" source.
func sweepChainsSharedFork(base int64, n int) {
	shared := rng.New(base)
	par.ForEach(n, 0, func(i int) {
		c := newChain(shared.Fork()) // want `Fork of a source declared outside the par work-item body`
		_ = c.process(make([]float64, 8))
	})
}
