// Package rng is a stub of fastforward/internal/rng for seedflow
// fixtures.
package rng

type Source struct{ seed int64 }

func New(seed int64) *Source { return &Source{seed: seed} }

func ItemSeed(base int64, i int) int64 { return base ^ int64(i) }

func (s *Source) Fork() *Source { return &Source{seed: s.seed + 1} }

func (s *Source) Float64() float64 { return 0 }
