// Package seedtest exercises the seedflow rules: every rng constructed
// inside a par work-item body must be seeded through rng.ItemSeed, and
// sources shared across items must not be Fork()ed from inside one.
package seedtest

import (
	"math/rand"

	"par"
	"rng"
)

func directSeedOK(base int64, n int) {
	par.ForEach(n, 0, func(i int) {
		s := rng.New(rng.ItemSeed(base, i)) // seeded via ItemSeed: allowed
		_ = s.Float64()
	})
}

func flowedSeedOK(base int64, n int) []float64 {
	return par.Map(n, 0, func(i int) float64 {
		seed := rng.ItemSeed(base, i)
		derived := seed + 1 // taint survives arithmetic
		s := rng.New(derived)
		return s.Float64()
	})
}

func rawIndexSeed(n int) {
	par.ForEach(n, 0, func(i int) {
		s := rng.New(int64(i)) // want `seed not derived from rng.ItemSeed`
		_ = s.Float64()
	})
}

func constantSeed(n int) {
	par.ForEach(n, 0, func(i int) {
		src := rand.NewSource(42) // want `seed not derived from rng.ItemSeed`
		_ = rand.New(src)
	})
}

func sharedFork(base int64, n int) {
	shared := rng.New(base)
	par.ForEach(n, 0, func(i int) {
		s := shared.Fork() // want `Fork of a source declared outside the par work-item body`
		_ = s.Float64()
	})
}

func localForkOK(base int64, n int) {
	par.ForEach(n, 0, func(i int) {
		mine := rng.New(rng.ItemSeed(base, i))
		sub := mine.Fork() // forking an item-local source: allowed
		_ = sub.Float64()
	})
}

func allowlisted(n int) {
	par.ForEach(n, 0, func(i int) {
		s := rng.New(7) //fflint:allow seedflow fixture demonstrating a documented constant-seed site
		_ = s.Float64()
	})
}

func outsideParOK(seed int64) {
	// Constructions outside work-item bodies are out of scope.
	s := rng.New(seed)
	_ = s.Float64()
}
