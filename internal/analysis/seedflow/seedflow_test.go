package seedflow_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "testdata", seedflow.Default(), "seedtest", "pipefixture")
}
