// Package seedflow enforces rule 1 of the internal/par contract: every
// random source constructed inside a parallel work-item body must be
// seeded from rng.ItemSeed(base, i), the location-derived mixer that
// makes each item's stream independent of execution order. A source
// seeded any other way inside a par.ForEach / par.Map / par.FlatMap
// closure — from a raw loop index, a constant, or by Fork()ing a source
// shared across items — reintroduces schedule-dependent randomness that
// the serial-vs-parallel determinism tests then catch only probabilistically.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes package recognition for tests; the zero value matches this
// repository (packages named par and rng).
type Config struct {
	// ParSuffixes / RngSuffixes are import-path suffixes identifying the
	// parallel-execution and rng packages.
	ParSuffixes []string
	RngSuffixes []string
}

// parEntryPoints are the fan-out functions whose closure arguments are
// work-item bodies.
var parEntryPoints = map[string]bool{"ForEach": true, "Map": true, "FlatMap": true}

// New returns the seedflow analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.ParSuffixes == nil {
		cfg.ParSuffixes = []string{"par"}
	}
	if cfg.RngSuffixes == nil {
		cfg.RngSuffixes = []string{"rng"}
	}
	return &analysis.Analyzer{
		Name: "seedflow",
		Doc:  "require rngs constructed inside par work-item bodies to be seeded via rng.ItemSeed",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func run(pass *analysis.Pass, cfg Config) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(pass, call.Fun, cfg.ParSuffixes, parEntryPoints) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkWorkBody(pass, lit, cfg)
				}
			}
			return true
		})
	}
}

// checkWorkBody inspects one work-item closure.
func checkWorkBody(pass *analysis.Pass, lit *ast.FuncLit, cfg Config) {
	tainted := itemSeedTainted(pass, lit, cfg)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Source constructors whose seed argument must derive from
		// ItemSeed: rng.New(seed) and math/rand's NewSource(seed).
		if isRngConstructor(pass, call, cfg) && len(call.Args) > 0 {
			if !exprTainted(pass, call.Args[0], tainted, cfg) {
				pass.Reportf(call.Pos(), "rng constructed inside a par work-item body with a seed not derived from rng.ItemSeed: results become schedule-dependent (seed with rng.ItemSeed(base, i))")
			}
		}
		// Fork() on a source shared across items draws from one
		// sequential stream in work-item order.
		if recv, ok := forkReceiver(pass, call, cfg); ok {
			if declaredOutside(pass, recv, lit) {
				pass.Reportf(call.Pos(), "Fork of a source declared outside the par work-item body: forks consume a shared sequential stream in schedule order; construct rng.New(rng.ItemSeed(base, i)) instead")
			}
		}
		return true
	})
}

// itemSeedTainted computes the set of objects inside lit that
// (transitively) hold a value derived from rng.ItemSeed.
func itemSeedTainted(pass *analysis.Pass, lit *ast.FuncLit, cfg Config) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if taintIdent(pass, id, n.Rhs[i], tainted, cfg) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, id := range n.Names {
					if taintIdent(pass, id, n.Values[i], tainted, cfg) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// taintIdent marks id tainted when rhs is; reports whether the set grew.
func taintIdent(pass *analysis.Pass, id *ast.Ident, rhs ast.Expr, tainted map[types.Object]bool, cfg Config) bool {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil || tainted[obj] {
		return false
	}
	if exprTainted(pass, rhs, tainted, cfg) {
		tainted[obj] = true
		return true
	}
	return false
}

// exprTainted reports whether expr contains a call to rng.ItemSeed or a
// use of an already-tainted object.
func exprTainted(pass *analysis.Pass, expr ast.Expr, tainted map[types.Object]bool, cfg Config) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(pass, n.Fun, cfg.RngSuffixes, map[string]bool{"ItemSeed": true}) {
				found = true
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRngConstructor matches rng.New(seed) (the repo's Source constructor)
// and math/rand NewSource(seed).
func isRngConstructor(pass *analysis.Pass, call *ast.CallExpr, cfg Config) bool {
	if isPkgFunc(pass, call.Fun, cfg.RngSuffixes, map[string]bool{"New": true}) {
		return true
	}
	path, name := resolvePkgFunc(pass, call.Fun)
	return (path == "math/rand" || path == "math/rand/v2") && (name == "NewSource" || name == "NewPCG" || name == "NewChaCha8")
}

// forkReceiver matches (rng.Source).Fork() calls and returns the receiver
// expression.
func forkReceiver(pass *analysis.Pass, call *ast.CallExpr, cfg Config) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Fork" {
		return nil, false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if !pathMatches(fn.Pkg().Path(), cfg.RngSuffixes) {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	return sel.X, true
}

// declaredOutside reports whether the root identifier of expr was
// declared outside lit.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			return false // fresh value from a call: not a shared outer source
		default:
			return false
		}
	}
}

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether fun resolves to a package-level function in a
// package matching one of the path suffixes with a name in names.
func isPkgFunc(pass *analysis.Pass, fun ast.Expr, suffixes []string, names map[string]bool) bool {
	path, name := resolvePkgFunc(pass, fun)
	return path != "" && pathMatches(path, suffixes) && names[name]
}

func resolvePkgFunc(pass *analysis.Pass, fun ast.Expr) (string, string) {
	var id *ast.Ident
	switch f := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.Ident:
		id = f
	case *ast.IndexExpr: // generic instantiation par.Map[T]
		return resolvePkgFunc(pass, f.X)
	case *ast.IndexListExpr:
		return resolvePkgFunc(pass, f.X)
	default:
		return "", ""
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
