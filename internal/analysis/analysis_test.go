package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"fastforward/internal/analysis"
)

// The suppression contract: a trailing `//fflint:allow <name> <reason>`
// suppresses its own line; a standalone allow comment suppresses the
// line below; an allow without a reason suppresses nothing; an allow for
// a different analyzer suppresses nothing; a trailing allow never leaks
// onto the next line.
const suppressionSrc = `package p

func a() {}
func b() {} //fflint:allow testcheck documented reason
//fflint:allow testcheck standalone comment above
func c() {}
func d() {} //fflint:allow testcheck
func e() {} //fflint:allow othercheck documented reason
func f() {} //fflint:allow testcheck trailing allow must not leak down
func g() {}
`

func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(suppressionSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	reportFuncs := &analysis.Analyzer{
		Name: "testcheck",
		Doc:  "reports every function declaration by name",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "%s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := analysis.RunAnalyzers(analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{file},
		Pkg:       types.NewPackage("p", "p"),
		TypesInfo: &types.Info{},
	}, []*analysis.Analyzer{reportFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"a", "d", "e", "g"}
	if len(got) != len(want) {
		t.Fatalf("surviving diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving diagnostics = %v, want %v", got, want)
		}
	}
}
