package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastforward/internal/analysis"
)

// The suppression contract: a trailing `//fflint:allow <name> <reason>`
// suppresses its own line; a standalone allow comment suppresses the
// line below; an allow without a reason suppresses nothing; an allow for
// a different analyzer suppresses nothing; a trailing allow never leaks
// onto the next line.
const suppressionSrc = `package p

func a() {}
func b() {} //fflint:allow testcheck documented reason
//fflint:allow testcheck standalone comment above
func c() {}
func d() {} //fflint:allow testcheck
func e() {} //fflint:allow othercheck documented reason
func f() {} //fflint:allow testcheck trailing allow must not leak down
func g() {}
`

func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(suppressionSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	reportFuncs := &analysis.Analyzer{
		Name: "testcheck",
		Doc:  "reports every function declaration by name",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "%s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, used, err := analysis.RunAnalyzers(analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{file},
		Pkg:       types.NewPackage("p", "p"),
		TypesInfo: &types.Info{},
	}, []*analysis.Analyzer{reportFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"a", "d", "e", "g"}
	if len(got) != len(want) {
		t.Fatalf("surviving diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving diagnostics = %v, want %v", got, want)
		}
	}

	// The three effective allows (trailing on b, standalone above c,
	// trailing on f) must be reported as used; the reasonless allow on d
	// and the mismatched one on e must not.
	wantUsed := []analysis.AllowUse{
		{File: path, Line: 4, Analyzer: "testcheck"},
		{File: path, Line: 5, Analyzer: "testcheck"},
		{File: path, Line: 9, Analyzer: "testcheck"},
	}
	if len(used) != len(wantUsed) {
		t.Fatalf("used allows = %+v, want %+v", used, wantUsed)
	}
	for i := range wantUsed {
		if used[i] != wantUsed[i] {
			t.Fatalf("used allows = %+v, want %+v", used, wantUsed)
		}
	}
}

// The directive grammar: standalone and trailing allows parse with their
// reasons; a marker with no reason, and an empty name in the analyzer
// list, are malformed-allow diagnostics; prose that mentions the marker
// mid-comment is not a directive.
const collectSrc = `package p

// The syntax is //fflint:allow <analyzer> <reason> (prose, not a directive).
func a() {} //fflint:allow testcheck,othercheck shared justification
//fflint:allow testcheck standalone reason
func b() {}
func c() {} //fflint:allow testcheck
//fflint:allow ,testcheck empty first name
func d() {}
`

func TestCollectAllows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(collectSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := analysis.CollectAllows(fset, []*ast.File{file})

	if len(allows) != 2 {
		t.Fatalf("allows = %+v, want 2 entries", allows)
	}
	if allows[0].Line != 4 || len(allows[0].Analyzers) != 2 || allows[0].Analyzers[1] != "othercheck" {
		t.Errorf("first allow = %+v, want line 4 naming testcheck,othercheck", allows[0])
	}
	if allows[0].Reason != "shared justification" {
		t.Errorf("first allow reason = %q, want %q", allows[0].Reason, "shared justification")
	}
	if allows[1].Line != 5 || allows[1].Reason != "standalone reason" {
		t.Errorf("second allow = %+v, want line 5 with standalone reason", allows[1])
	}

	if len(malformed) != 2 {
		t.Fatalf("malformed = %+v, want 2 diagnostics", malformed)
	}
	if malformed[0].Pos.Line != 7 || !strings.Contains(malformed[0].Message, "non-empty reason") {
		t.Errorf("first malformed = %+v, want reasonless-allow diagnostic on line 7", malformed[0])
	}
	if malformed[1].Pos.Line != 8 || !strings.Contains(malformed[1].Message, "empty analyzer name") {
		t.Errorf("second malformed = %+v, want empty-name diagnostic on line 8", malformed[1])
	}
}
