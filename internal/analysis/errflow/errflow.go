// Package errflow forbids dropped error returns on the service paths:
// protocol encode/decode, admission, and the status endpoint. In the
// configured packages, a call whose results include an error must not be
// discarded — not as a bare expression statement, not behind a blank
// assignment, and not behind a `go` statement (a goroutine's error
// vanishes with it).
//
// Two idioms stay legal: `defer ...` statements (the defer-Close shape,
// where the error genuinely has nowhere to go), and calls to methods
// named Close or to anything in package fmt (Printf to a terminal is not
// a service path). Sites where dropping is the documented contract carry
// `//fflint:allow errflow <reason>`.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"fastforward/internal/analysis"
)

// Config tunes the analyzer for tests; the zero value is the production
// configuration for this repository.
type Config struct {
	// Packages are import-path suffixes subject to the rule (the wire
	// protocol, admission, and status surfaces).
	Packages []string
}

var defaultPackages = []string{
	"internal/relayd", "internal/fleet", "internal/relay", "cmd/ffrelayd",
}

// New returns the errflow analyzer.
func New(cfg Config) *analysis.Analyzer {
	if cfg.Packages == nil {
		cfg.Packages = defaultPackages
	}
	return &analysis.Analyzer{
		Name: "errflow",
		Doc:  "no dropped error returns on protocol, admission, and status paths",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// Default is the production-configured analyzer.
func Default() *analysis.Analyzer { return New(Config{}) }

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, cfg Config) {
	if !pathMatches(pass.Pkg.Path(), cfg.Packages) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false // defer-Close idiom: the error has nowhere to go
			case *ast.GoStmt:
				if idx := errorResults(pass, n.Call); len(idx) > 0 && !excluded(pass, n.Call) {
					pass.Reportf(n.Pos(), "error from %s dropped by go statement: a goroutine's error vanishes with it — wrap it and report the error", calleeName(n.Call))
				}
				return true
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := errorResults(pass, call); len(idx) > 0 && !excluded(pass, call) {
					pass.Reportf(call.Pos(), "error from %s dropped: handle it, count it, or annotate //fflint:allow errflow <reason>", calleeName(call))
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
}

// checkAssign flags blank-discarded error results in `x, _ := f()` and
// `_ = f()` forms (single call on the right-hand side).
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || excluded(pass, call) {
		return
	}
	idx := errorResults(pass, call)
	for _, i := range idx {
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			pass.Reportf(as.Pos(), "error from %s discarded into _: handle it, count it, or annotate //fflint:allow errflow <reason>", calleeName(call))
			return
		}
	}
}

// errorResults returns the result indexes of call that have type error.
func errorResults(pass *analysis.Pass, call *ast.CallExpr) []int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var idx []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				idx = append(idx, i)
			}
		}
		return idx
	default:
		if types.Identical(tv.Type, errType) {
			return []int{0}
		}
	}
	return nil
}

// excluded reports callees whose dropped error is idiomatic: methods
// named Close and anything from package fmt.
func excluded(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() == "Close" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return exprString(fun.X) + "." + fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "expr"
}
