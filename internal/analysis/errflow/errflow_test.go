package errflow_test

import (
	"testing"

	"fastforward/internal/analysis/analysistest"
	"fastforward/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	a := errflow.New(errflow.Config{Packages: []string{"errfixture"}})
	analysistest.Run(t, "testdata", a, "errfixture")
}
