// Package errfixture exercises errflow: dropped errors as expression
// statements, blank assignments, and go statements; the legal defer,
// Close, and fmt idioms; and the suppression path.
package errfixture

import (
	"errors"
	"fmt"
)

func encode() error               { return errors.New("encode") }
func write(b []byte) (int, error) { return len(b), nil }
func value() int                  { return 1 }

type conn struct{}

func (conn) Close() error { return nil }

// statusWrite is the pinned real finding: the daemon's /healthz and
// /status handlers dropped every w.Write and enc.Encode error
// (internal/relayd/status.go before the fix).
func statusWrite(b []byte) {
	write(b) // want `error from write dropped`
}

func dropped() {
	encode() // want `error from encode dropped`
}

func blanked() {
	_ = encode() // want `error from encode discarded into _`
}

func blankedSecond(b []byte) {
	n, _ := write(b) // want `error from write discarded into _`
	_ = n
}

func goDropped() {
	go encode() // want `error from encode dropped by go statement`
}

func handled() error {
	if err := encode(); err != nil {
		return err
	}
	n, err := write(nil)
	_ = n
	return err
}

// deferClose and explicit Close are the idiomatic drops.
func closers(c conn) {
	defer c.Close()
	c.Close()
}

// fmtOK: terminal printf is not a service path.
func fmtOK() {
	fmt.Println("status: ok")
}

// valueOK: non-error results may be discarded freely.
func valueOK() {
	value()
}

func allowed() {
	encode() //fflint:allow errflow fixture exercises the suppression path
}
