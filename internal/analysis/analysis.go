// Package analysis is a minimal, dependency-free core for the fflint
// static-analysis suite. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, the
// analysistest fixture layout) so the domain analyzers can migrate onto
// the real framework by swapping import paths once the module is allowed
// a dependency on x/tools — this repository builds fully offline, so the
// framework is vendored in spirit rather than in go.mod (see DESIGN.md
// §7).
//
// The suppression mechanism is the one x/tools lacks and domain lint
// needs: a `//fflint:allow <analyzer> <reason>` comment on the flagged
// line (or the line above it) suppresses that analyzer's diagnostics for
// the line. The reason text is mandatory — an allowlist entry without a
// written justification is itself a finding.
package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name used in diagnostics and
// allowlist comments, documentation, and the Run function applied to each
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModuleDir is the filesystem root of the module under analysis (the
	// directory holding go.mod). Analyzers that consult checked-in
	// registries (obsmetrics) resolve them against this. Empty in fixture
	// runs unless the harness sets it.
	ModuleDir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional
// file:line:col: analyzer: message compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowUse identifies one fflint:allow comment that suppressed at least
// one diagnostic during a RunAnalyzers call: the file and line the
// comment lives on, and the analyzer it suppressed. The driver compares
// these against CollectAllows to find stale allows.
type AllowUse struct {
	File     string
	Line     int
	Analyzer string
}

// RunAnalyzers applies each analyzer to the package described by the pass
// template and returns the findings sorted by position, with allowlisted
// lines removed. The second result lists the allow comments that earned
// their keep by suppressing something. The caller fills every Pass field
// except Analyzer and the diagnostic sink.
func RunAnalyzers(base Pass, analyzers []*Analyzer) ([]Diagnostic, []AllowUse, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := base
		pass.Analyzer = a
		pass.diags = &diags
		if err := a.Run(&pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %v", base.Pkg.Path(), a.Name, err)
		}
	}
	diags, used := filterSuppressed(diags)
	SortDiagnostics(diags)
	return diags, used, nil
}

// SortDiagnostics orders diags by file, line, column, then message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// allowRE matches `//fflint:allow <analyzer> <reason>`; the reason is
// required so every allowlist entry documents why the site is legitimate.
var allowRE = regexp.MustCompile(`//fflint:allow\s+([a-z,]+)\s+\S`)

// filterSuppressed drops diagnostics whose line (or the line above)
// carries a matching fflint:allow comment, and records which allow
// comment (by file and line) did the suppressing.
func filterSuppressed(diags []Diagnostic) ([]Diagnostic, []AllowUse) {
	lines := map[string][]string{} // filename -> lines
	seen := map[AllowUse]bool{}
	var used []AllowUse
	out := diags[:0]
	for _, d := range diags {
		ls, ok := lines[d.Pos.Filename]
		if !ok {
			ls = readLines(d.Pos.Filename)
			lines[d.Pos.Filename] = ls
		}
		allowLine := 0
		switch {
		case lineAllows(ls, d.Pos.Line, d.Analyzer, false):
			allowLine = d.Pos.Line
		case lineAllows(ls, d.Pos.Line-1, d.Analyzer, true):
			allowLine = d.Pos.Line - 1
		}
		if allowLine > 0 {
			u := AllowUse{File: d.Pos.Filename, Line: allowLine, Analyzer: d.Analyzer}
			if !seen[u] {
				seen[u] = true
				used = append(used, u)
			}
			continue
		}
		out = append(out, d)
	}
	return out, used
}

// lineAllows reports whether 1-based line n of ls allowlists analyzer
// name. With commentOnly (the line-above case), only a pure comment line
// counts, so an allow comment trailing statement N never leaks onto
// statement N+1.
func lineAllows(ls []string, n int, name string, commentOnly bool) bool {
	if n < 1 || n > len(ls) {
		return false
	}
	line := ls[n-1]
	if commentOnly && !strings.HasPrefix(strings.TrimSpace(line), "//") {
		return false
	}
	m := allowRE.FindStringSubmatch(line)
	if m == nil {
		return false
	}
	for _, an := range strings.Split(m[1], ",") {
		if an == name {
			return true
		}
	}
	return false
}

// Allow is one parsed fflint:allow directive comment: the file and line
// it lives on, the analyzers it names, and the written reason.
type Allow struct {
	File      string
	Line      int
	Analyzers []string
	Reason    string
}

// AuditName is the analyzer name under which allow-audit findings
// (malformed, unknown-analyzer, and stale allows) are reported. It is not
// itself suppressible — an allow comment cannot excuse its own rot.
const AuditName = "allowaudit"

// strictAllowRE is the full directive grammar: the marker, a comma-
// separated analyzer list, and a non-empty reason.
var strictAllowRE = regexp.MustCompile(`^//fflint:allow\s+([A-Za-z0-9_,-]+)\s+\S`)

// CollectAllows parses every fflint:allow directive in files. A comment
// whose text begins with the `//fflint:allow` marker but does not parse —
// missing reason, empty or malformed analyzer list — is returned as a
// diagnostic rather than silently ignored, so a typo cannot masquerade as
// a suppression. Prose that merely mentions the marker mid-comment (docs,
// examples) is not a directive and is skipped.
func CollectAllows(fset *token.FileSet, files []*ast.File) ([]Allow, []Diagnostic) {
	var allows []Allow
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//fflint:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := strictAllowRE.FindStringSubmatch(c.Text)
				if m == nil {
					malformed = append(malformed, Diagnostic{
						Analyzer: AuditName,
						Pos:      pos,
						Message:  "malformed fflint:allow: want `//fflint:allow <analyzer>[,<analyzer>] <reason>` with a non-empty reason",
					})
					continue
				}
				names := strings.Split(m[1], ",")
				bad := false
				for _, n := range names {
					if n == "" {
						bad = true
					}
				}
				if bad {
					malformed = append(malformed, Diagnostic{
						Analyzer: AuditName,
						Pos:      pos,
						Message:  "malformed fflint:allow: empty analyzer name in list",
					})
					continue
				}
				reason := strings.TrimSpace(c.Text[len(m[0])-1:])
				allows = append(allows, Allow{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: names,
					Reason:    reason,
				})
			}
		}
	}
	return allows, malformed
}

func readLines(filename string) []string {
	f, err := os.Open(filename)
	if err != nil {
		return nil
	}
	defer f.Close()
	var ls []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ls = append(ls, sc.Text())
	}
	return ls
}
