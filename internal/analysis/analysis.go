// Package analysis is a minimal, dependency-free core for the fflint
// static-analysis suite. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, the
// analysistest fixture layout) so the domain analyzers can migrate onto
// the real framework by swapping import paths once the module is allowed
// a dependency on x/tools — this repository builds fully offline, so the
// framework is vendored in spirit rather than in go.mod (see DESIGN.md
// §7).
//
// The suppression mechanism is the one x/tools lacks and domain lint
// needs: a `//fflint:allow <analyzer> <reason>` comment on the flagged
// line (or the line above it) suppresses that analyzer's diagnostics for
// the line. The reason text is mandatory — an allowlist entry without a
// written justification is itself a finding.
package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name used in diagnostics and
// allowlist comments, documentation, and the Run function applied to each
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModuleDir is the filesystem root of the module under analysis (the
	// directory holding go.mod). Analyzers that consult checked-in
	// registries (obsmetrics) resolve them against this. Empty in fixture
	// runs unless the harness sets it.
	ModuleDir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional
// file:line:col: analyzer: message compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzers applies each analyzer to the package described by the pass
// template and returns the findings sorted by position, with allowlisted
// lines removed. The caller fills every Pass field except Analyzer and
// the diagnostic sink.
func RunAnalyzers(base Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := base
		pass.Analyzer = a
		pass.diags = &diags
		if err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", base.Pkg.Path(), a.Name, err)
		}
	}
	diags = filterSuppressed(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// allowRE matches `//fflint:allow <analyzer> <reason>`; the reason is
// required so every allowlist entry documents why the site is legitimate.
var allowRE = regexp.MustCompile(`//fflint:allow\s+([a-z,]+)\s+\S`)

// filterSuppressed drops diagnostics whose line (or the line above)
// carries a matching fflint:allow comment.
func filterSuppressed(diags []Diagnostic) []Diagnostic {
	lines := map[string][]string{} // filename -> lines
	out := diags[:0]
	for _, d := range diags {
		ls, ok := lines[d.Pos.Filename]
		if !ok {
			ls = readLines(d.Pos.Filename)
			lines[d.Pos.Filename] = ls
		}
		if lineAllows(ls, d.Pos.Line, d.Analyzer, false) || lineAllows(ls, d.Pos.Line-1, d.Analyzer, true) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// lineAllows reports whether 1-based line n of ls allowlists analyzer
// name. With commentOnly (the line-above case), only a pure comment line
// counts, so an allow comment trailing statement N never leaks onto
// statement N+1.
func lineAllows(ls []string, n int, name string, commentOnly bool) bool {
	if n < 1 || n > len(ls) {
		return false
	}
	line := ls[n-1]
	if commentOnly && !strings.HasPrefix(strings.TrimSpace(line), "//") {
		return false
	}
	m := allowRE.FindStringSubmatch(line)
	if m == nil {
		return false
	}
	for _, an := range strings.Split(m[1], ",") {
		if an == name {
			return true
		}
	}
	return false
}

func readLines(filename string) []string {
	f, err := os.Open(filename)
	if err != nil {
		return nil
	}
	defer f.Close()
	var ls []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ls = append(ls, sc.Text())
	}
	return ls
}
