// Package analysistest runs fflint analyzers over small fixture packages
// and checks their diagnostics against `// want "regexp"` comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest so
// fixtures survive a future migration to the real framework unchanged.
//
// Fixtures live under <testdata>/src/<importpath>/ — GOPATH layout, like
// the x/tools harness. Fixture imports resolve against <testdata>/src
// first (letting fixtures carry tiny stubs of internal packages such as
// `par` or `rng`), then fall back to the standard library, type-checked
// from GOROOT source so the harness needs no network and no pre-built
// export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"fastforward/internal/analysis"
)

// Run loads each fixture package and applies the analyzer, failing t on
// any mismatch between reported and wanted diagnostics. It returns the
// surviving diagnostics for optional further assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) []analysis.Diagnostic {
	t.Helper()
	var all []analysis.Diagnostic
	for _, path := range pkgpaths {
		all = append(all, runOne(t, testdata, a, path)...)
	}
	return all
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		root: filepath.Join(testdata, "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*entry{},
	}
	pkg, files, info, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, _, err := analysis.RunAnalyzers(analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		ModuleDir: filepath.Join(testdata, "src", pkgpath),
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, fset, files, diags)
	return diags
}

// wantRE pulls the quoted regexps out of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantArgRE accepts both x/tools-style backquoted regexps and
// double-quoted ones.
var wantArgRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					raw := arg[1]
					if raw == "" {
						raw = strings.ReplaceAll(arg[2], `\"`, `"`)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// entry caches one fixture package load (or marks it in progress to catch
// import cycles).
type entry struct {
	pkg     *types.Package
	loading bool
}

type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*entry
}

// load parses and type-checks the fixture package at root/path, returning
// the package, its files, and type info. Non-fixture imports fall back to
// the standard library importer.
func (l *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// Import implements types.Importer over the fixture tree with stdlib
// fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
		return e.pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		l.pkgs[path] = &entry{loading: true}
		pkg, _, _, err := l.load(path)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = &entry{pkg: pkg}
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = &entry{pkg: pkg}
	return pkg, nil
}
