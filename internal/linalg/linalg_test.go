package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rows, cols int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func matApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestIdentityMul(t *testing.T) {
	m := randMatrix(3, 3, 1)
	if !matApprox(m.Mul(Identity(3)), m, 1e-12) {
		t.Error("m·I != m")
	}
	if !matApprox(Identity(3).Mul(m), m, 1e-12) {
		t.Error("I·m != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]complex128{{2, 1}, {4, 3}})
	if !matApprox(c, want, 1e-12) {
		t.Errorf("got\n%v", c)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 1i}, {2, 0}})
	v := a.MulVec([]complex128{1, 1})
	if v[0] != 1+1i || v[1] != 2 {
		t.Errorf("MulVec = %v", v)
	}
}

func TestAdjoint(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3i, 4 - 1i}, {0, 5}})
	h := a.Adjoint()
	if h.Rows != 2 || h.Cols != 3 {
		t.Fatal("adjoint shape wrong")
	}
	if h.At(0, 0) != 1-1i || h.At(1, 1) != 4+1i || h.At(0, 1) != -3i {
		t.Errorf("adjoint values wrong:\n%v", h)
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if d := a.Det(); cmplx.Abs(d-(-2)) > 1e-12 {
		t.Errorf("det = %v, want -2", d)
	}
	// Complex case: det [[i,0],[0,i]] = -1.
	b := FromRows([][]complex128{{1i, 0}, {0, 1i}})
	if d := b.Det(); cmplx.Abs(d-(-1)) > 1e-12 {
		t.Errorf("det = %v, want -1", d)
	}
	// Singular.
	c := FromRows([][]complex128{{1, 2}, {2, 4}})
	if d := c.Det(); cmplx.Abs(d) > 1e-12 {
		t.Errorf("det of singular = %v, want 0", d)
	}
}

func TestDetOfProduct(t *testing.T) {
	a := randMatrix(4, 4, 2)
	b := randMatrix(4, 4, 3)
	lhs := a.Mul(b).Det()
	rhs := a.Det() * b.Det()
	if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(rhs)) {
		t.Errorf("det(AB)=%v != det(A)det(B)=%v", lhs, rhs)
	}
}

func TestInverse(t *testing.T) {
	a := randMatrix(4, 4, 5)
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !matApprox(a.Mul(inv), Identity(4), 1e-9) {
		t.Error("A·A⁻¹ != I")
	}
	if !matApprox(inv.Mul(a), Identity(4), 1e-9) {
		t.Error("A⁻¹·A != I")
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]complex128{{2, 0}, {0, 4}})
	x, err := a.Solve([]complex128{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[1]-2) > 1e-12 {
		t.Errorf("Solve = %v", x)
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// Diagonal matrix: singular values are |diagonal|, sorted.
	a := FromRows([][]complex128{{3i, 0}, {0, -4}})
	sv := a.SingularValues()
	if math.Abs(sv[0]-4) > 1e-9 || math.Abs(sv[1]-3) > 1e-9 {
		t.Errorf("sv = %v, want [4 3]", sv)
	}
}

func TestSingularValuesRankOne(t *testing.T) {
	// Outer product u·vᴴ has exactly one nonzero singular value |u||v|.
	u := []complex128{1, 2i}
	v := []complex128{3, 4}
	a := NewMatrix(2, 2)
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*cmplx.Conj(v[j]))
		}
	}
	sv := a.SingularValues()
	wantTop := math.Sqrt(5) * 5 // |u|=sqrt(5), |v|=5
	if math.Abs(sv[0]-wantTop) > 1e-9 {
		t.Errorf("top sv = %v, want %v", sv[0], wantTop)
	}
	if sv[1] > 1e-9 {
		t.Errorf("second sv = %v, want 0", sv[1])
	}
	if a.Rank(0) != 1 {
		t.Errorf("rank = %d, want 1", a.Rank(0))
	}
}

func TestSingularValuesVsFrobenius(t *testing.T) {
	// sum of squared singular values == squared Frobenius norm.
	a := randMatrix(3, 5, 8)
	sv := a.SingularValues()
	var sum float64
	for _, s := range sv {
		sum += s * s
	}
	fn := a.FrobeniusNorm()
	if math.Abs(sum-fn*fn) > 1e-8*(1+fn*fn) {
		t.Errorf("sum sv² = %v, ||A||F² = %v", sum, fn*fn)
	}
}

func TestEffectiveRank(t *testing.T) {
	a := FromRows([][]complex128{{1, 0}, {0, 0.01}})
	// Second stream is 40 dB (amplitude 100x) below: not usable at 20 dB.
	if r := a.EffectiveRank(20); r != 1 {
		t.Errorf("EffectiveRank(20dB) = %d, want 1", r)
	}
	if r := a.EffectiveRank(60); r != 2 {
		t.Errorf("EffectiveRank(60dB) = %d, want 2", r)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system recovers x exactly.
	A := randMatrix(10, 3, 11)
	xTrue := []complex128{1 + 1i, -2, 0.5i}
	b := A.MulVec(xTrue)
	x, err := LeastSquares(A, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if cmplx.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// Residual of the LS solution must be orthogonal to the column space.
	A := randMatrix(12, 4, 13)
	r := rand.New(rand.NewSource(14))
	b := make([]complex128, 12)
	for i := range b {
		b[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	x, err := LeastSquares(A, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	Ax := A.MulVec(x)
	res := make([]complex128, len(b))
	for i := range b {
		res[i] = b[i] - Ax[i]
	}
	// Aᴴ·res should be ~0.
	proj := A.Adjoint().MulVec(res)
	for i, v := range proj {
		if cmplx.Abs(v) > 1e-8 {
			t.Errorf("residual not orthogonal: component %d = %v", i, v)
		}
	}
}

func TestProjectUnitary(t *testing.T) {
	m := randMatrix(3, 3, 17)
	u, err := m.ProjectUnitary()
	if err != nil {
		t.Fatal(err)
	}
	if !matApprox(u.Mul(u.Adjoint()), Identity(3), 1e-9) {
		t.Error("projection is not unitary")
	}
	// Projecting a unitary matrix is (nearly) a no-op.
	u2, err := u.ProjectUnitary()
	if err != nil {
		t.Fatal(err)
	}
	if !matApprox(u, u2, 1e-9) {
		t.Error("projection of unitary changed it")
	}
}

func TestConditionNumber(t *testing.T) {
	a := FromRows([][]complex128{{10, 0}, {0, 1}})
	if c := a.ConditionNumber(); math.Abs(c-10) > 1e-9 {
		t.Errorf("cond = %v, want 10", c)
	}
	b := FromRows([][]complex128{{1, 1}, {1, 1}})
	if !math.IsInf(b.ConditionNumber(), 1) {
		t.Error("singular matrix should have Inf condition number")
	}
}

func TestQuickDetUnitaryInvariance(t *testing.T) {
	// |det(U·A)| == |det(A)| for unitary U (here: permutation-free rotations
	// built by projecting a random matrix).
	f := func(seed int64) bool {
		a := randMatrix(3, 3, seed)
		u, err := randMatrix(3, 3, seed+1).ProjectUnitary()
		if err != nil {
			return true // singular random matrix: skip
		}
		lhs := cmplx.Abs(u.Mul(a).Det())
		rhs := cmplx.Abs(a.Det())
		return math.Abs(lhs-rhs) < 1e-7*(1+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVDScaling(t *testing.T) {
	// Singular values scale linearly with |scalar|.
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		scale = math.Mod(math.Abs(scale), 10) + 0.1
		a := randMatrix(2, 3, seed)
		sv1 := a.SingularValues()
		sv2 := a.Scale(scale).SingularValues()
		for i := range sv1 {
			if math.Abs(sv2[i]-scale*sv1[i]) > 1e-7*(1+scale*sv1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
