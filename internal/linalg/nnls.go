package linalg

// NNLS solves min ||A·x − b||₂ subject to x ≥ 0 with the classical
// active-set algorithm (Lawson & Hanson 1974), with a ridge penalty on the
// passive-set solves. A is row-major dense; intended for small systems.
func NNLS(A [][]float64, b []float64, ridge float64) ([]float64, bool) {
	rows := len(A)
	if rows == 0 {
		return nil, false
	}
	cols := len(A[0])
	x := make([]float64, cols)
	passive := make([]bool, cols)
	resid := make([]float64, rows)
	grad := make([]float64, cols)
	// Scale-aware tolerance.
	var bn float64
	for _, v := range b {
		bn += v * v
	}
	tol := 1e-10 * (1 + bn)

	solvePassive := func() ([]float64, bool) {
		p := make([]int, 0, cols)
		for j, on := range passive {
			if on {
				p = append(p, j)
			}
		}
		if len(p) == 0 {
			return nil, true
		}
		M := NewMatrix(rows, len(p))
		rb := make([]complex128, rows)
		for r := 0; r < rows; r++ {
			rb[r] = complex(b[r], 0)
			for ji, j := range p {
				M.Set(r, ji, complex(A[r][j], 0))
			}
		}
		// A light ridge discourages the huge opposing-gain solutions the
		// unregularized fit produces when extrapolating delay slopes; those
		// saturate the couplers and collapse after quantization.
		sol, err := LeastSquares(M, rb, ridge)
		if err != nil {
			return nil, false
		}
		z := make([]float64, cols)
		for ji, j := range p {
			z[j] = real(sol[ji])
		}
		return z, true
	}

	for outer := 0; outer < 3*cols+10; outer++ {
		// Gradient w = Aᵀ(b − A·x).
		for r := 0; r < rows; r++ {
			s := b[r]
			for j := 0; j < cols; j++ {
				s -= A[r][j] * x[j]
			}
			resid[r] = s
		}
		for j := 0; j < cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += A[r][j] * resid[r]
			}
			grad[j] = s
		}
		// Pick the most promising zero-set variable.
		best, bj := tol, -1
		for j := 0; j < cols; j++ {
			if !passive[j] && grad[j] > best {
				best, bj = grad[j], j
			}
		}
		if bj < 0 {
			return x, true // KKT satisfied
		}
		passive[bj] = true
		// Inner loop: keep the passive solution feasible.
		for inner := 0; inner < 3*cols+10; inner++ {
			z, ok := solvePassive()
			if !ok {
				return x, false
			}
			if z == nil {
				break
			}
			negFound := false
			alpha := 1.0
			for j := 0; j < cols; j++ {
				if passive[j] && z[j] <= 0 {
					negFound = true
					if d := x[j] - z[j]; d > 0 {
						if a := x[j] / d; a < alpha {
							alpha = a
						}
					}
				}
			}
			if !negFound {
				copy(x, z)
				break
			}
			for j := 0; j < cols; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= 1e-14 {
						x[j] = 0
						passive[j] = false
					}
				}
			}
		}
	}
	return x, true
}
