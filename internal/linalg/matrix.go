// Package linalg implements the dense complex-valued linear algebra the
// MIMO parts of FastForward need: determinants (the CNF objective is
// det(Hsd + Hrd·F·A·Hsr)), singular values (MIMO rank and per-stream SNR),
// inverses and least-squares solves (cancellation filter estimation).
//
// Matrices are small (antenna counts and filter tap counts), so the
// implementations favour clarity and numerical robustness over asymptotic
// speed: LU with partial pivoting, Householder QR, and one-sided Jacobi SVD.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense complex matrix with row-major storage.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: non-positive dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices (all equal length, copied).
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty rows")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%8.4f%+8.4fi ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.checkSame(o)
	r := m.Clone()
	for i := range r.Data {
		r.Data[i] += o.Data[i]
	}
	return r
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.checkSame(o)
	r := m.Clone()
	for i := range r.Data {
		r.Data[i] -= o.Data[i]
	}
	return r
}

// ScaleC returns m scaled by a complex scalar.
func (m *Matrix) ScaleC(s complex128) *Matrix {
	r := m.Clone()
	for i := range r.Data {
		r.Data[i] *= s
	}
	return r
}

// Scale returns m scaled by a real scalar.
func (m *Matrix) Scale(s float64) *Matrix { return m.ScaleC(complex(s, 0)) }

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*r.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return r
}

// MulVec returns m·v for a column vector v (len == Cols).
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if len(v) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Adjoint returns the conjugate transpose mᴴ.
func (m *Matrix) Adjoint() *Matrix {
	r := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return r
}

// Transpose returns mᵀ (no conjugation).
func (m *Matrix) Transpose() *Matrix {
	r := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, m.At(i, j))
		}
	}
	return r
}

// FrobeniusNorm returns sqrt(sum |m_ij|^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// Det returns the determinant of a square matrix via LU decomposition with
// partial pivoting.
func (m *Matrix) Det() complex128 {
	if m.Rows != m.Cols {
		panic("linalg: Det of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	det := complex(1, 0)
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in the column at or below the diagonal.
		piv, pmax := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax == 0 {
			return 0
		}
		if piv != col {
			a.swapRows(piv, col)
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
		}
	}
	return det
}

// Inverse returns m⁻¹ (Gauss-Jordan with partial pivoting) or an error for
// singular matrices.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		piv, pmax := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix")
		}
		if piv != col {
			a.swapRows(piv, col)
			inv.swapRows(piv, col)
		}
		p := a.At(col, col)
		for c := 0; c < n; c++ {
			a.Set(col, c, a.At(col, c)/p)
			inv.Set(col, c, inv.At(col, c)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
				inv.Set(r, c, inv.At(r, c)-f*inv.At(col, c))
			}
		}
	}
	return inv, nil
}

// Solve solves m·x = b for x, where b is a column vector.
func (m *Matrix) Solve(b []complex128) ([]complex128, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) checkSame(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols))
	}
}
