package linalg

import (
	"math"
	"math/cmplx"
	"sort"
)

// SingularValues returns the singular values of m in descending order,
// computed with a one-sided Jacobi iteration on the columns of m (applied to
// the taller orientation for stability). Singular values drive MIMO rank and
// per-stream SNR computation.
func (m *Matrix) SingularValues() []float64 {
	a := m
	if a.Rows < a.Cols {
		a = a.Adjoint()
	}
	// One-sided Jacobi: orthogonalize column pairs of a working copy.
	w := a.Clone()
	n := w.Cols
	const maxSweeps = 60
	tol := 1e-13 * w.FrobeniusNorm() * w.FrobeniusNorm()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq float64
				var apq complex128
				for i := 0; i < w.Rows; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				if cmplx.Abs(apq) <= tol || cmplx.Abs(apq) < 1e-300 {
					continue
				}
				converged = false
				// Complex Jacobi rotation zeroing the off-diagonal of the
				// 2x2 Gram matrix [[app, apq],[conj(apq), aqq]].
				absApq := cmplx.Abs(apq)
				phase := apq / complex(absApq, 0)
				tau := (aqq - app) / (2 * absApq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				cs := complex(c, 0)
				sn := complex(s, 0) * phase
				for i := 0; i < w.Rows; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					w.Set(i, p, cs*cp-cmplx.Conj(sn)*cq)
					w.Set(i, q, sn*cp+cs*cq)
				}
			}
		}
		if converged {
			break
		}
	}
	// Column norms are the singular values.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < w.Rows; i++ {
			v := w.At(i, j)
			s += real(v)*real(v) + imag(v)*imag(v)
		}
		sv[j] = math.Sqrt(s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// Rank returns the numerical rank of m: the number of singular values above
// tol times the largest singular value. A tol of 0 uses a default of 1e-9.
func (m *Matrix) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-9
	}
	sv := m.SingularValues()
	if len(sv) == 0 || sv[0] == 0 {
		return 0
	}
	r := 0
	for _, s := range sv {
		if s > tol*sv[0] {
			r++
		}
	}
	return r
}

// EffectiveRank counts singular values within thresholdDB (power) of the
// strongest one — the "number of usable MIMO streams" notion used in the
// paper's Fig 2 heatmap, where weak eigen-channels don't support a stream.
func (m *Matrix) EffectiveRank(thresholdDB float64) int {
	sv := m.SingularValues()
	if len(sv) == 0 || sv[0] == 0 {
		return 0
	}
	ratio := math.Pow(10, -thresholdDB/20) // amplitude threshold
	r := 0
	for _, s := range sv {
		if s >= sv[0]*ratio {
			r++
		}
	}
	return r
}

// ConditionNumber returns σ_max/σ_min (Inf when singular).
func (m *Matrix) ConditionNumber() float64 {
	sv := m.SingularValues()
	if len(sv) == 0 {
		return math.Inf(1)
	}
	min := sv[len(sv)-1]
	if min == 0 {
		return math.Inf(1)
	}
	return sv[0] / min
}

// LeastSquares solves min_x ||A·x - b||₂ via the normal equations with
// Tikhonov regularization lambda (pass 0 for none; a tiny lambda guards
// against ill-conditioned tap-estimation problems in the canceller).
func LeastSquares(A *Matrix, b []complex128, lambda float64) ([]complex128, error) {
	if len(b) != A.Rows {
		panic("linalg: LeastSquares dimension mismatch")
	}
	At := A.Adjoint()
	AtA := At.Mul(A)
	if lambda > 0 {
		for i := 0; i < AtA.Rows; i++ {
			AtA.Set(i, i, AtA.At(i, i)+complex(lambda, 0))
		}
	}
	Atb := At.MulVec(b)
	return AtA.Solve(Atb)
}

// ProjectUnitary returns the closest unitary matrix to m in Frobenius norm,
// computed via the polar decomposition using Newton's iteration
// X_{k+1} = (X_k + X_k^{-H})/2. Used by the CNF optimizer to keep the MIMO
// constructive filter F on the rotation-matrix manifold.
func (m *Matrix) ProjectUnitary() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("linalg: ProjectUnitary needs square matrix")
	}
	x := m.Clone()
	for iter := 0; iter < 100; iter++ {
		invH, err := x.Adjoint().Inverse()
		if err != nil {
			return nil, err
		}
		next := x.Add(invH).Scale(0.5)
		diff := next.Sub(x).FrobeniusNorm()
		x = next
		if diff < 1e-12 {
			break
		}
	}
	return x, nil
}
