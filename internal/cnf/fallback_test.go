package cnf

import (
	"math"
	"testing"

	"fastforward/internal/impair"
	"fastforward/internal/rng"
)

func TestFilterTrackerHoldsLastKnownGood(t *testing.T) {
	tr := &FilterTracker{MaxStaleIntervals: 3}
	if _, ok := tr.Current(); ok {
		t.Fatal("fresh tracker should have no filter")
	}
	f1 := []complex128{1, 2}
	tr.Update(f1)
	if got, ok := tr.Current(); !ok || &got[0] != &f1[0] {
		t.Fatal("Update did not install the filter")
	}
	if tr.StaleIntervals() != 0 {
		t.Error("fresh filter reports staleness")
	}
	tr.Miss()
	tr.Miss()
	if got, ok := tr.Current(); !ok || &got[0] != &f1[0] {
		t.Fatal("tracker dropped last-known-good on tolerable misses")
	}
	if tr.StaleIntervals() != 2 {
		t.Errorf("staleness %d, want 2", tr.StaleIntervals())
	}
	// rho^stale
	if got := tr.StalenessRho(0.9); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("StalenessRho = %v, want 0.81", got)
	}
	tr.Miss() // stale = 3, still within MaxStaleIntervals
	if _, ok := tr.Current(); !ok {
		t.Fatal("filter dropped at staleness == MaxStaleIntervals")
	}
	tr.Miss() // stale = 4 > 3: invalidate
	if _, ok := tr.Current(); ok {
		t.Fatal("filter survived past MaxStaleIntervals")
	}
	if tr.Invalidations != 1 || tr.Misses != 4 || tr.Updates != 1 {
		t.Errorf("counters = %+v", *tr)
	}
	// The 4th miss reaches staleness 4 and that is what triggers the
	// invalidation, so the deepest staleness recorded is 4.
	if tr.WorstStaleIntervals != 4 {
		t.Errorf("WorstStaleIntervals = %d, want 4", tr.WorstStaleIntervals)
	}
	// Recovery: a successful round restores service.
	tr.Update([]complex128{3})
	if _, ok := tr.Current(); !ok || tr.StaleIntervals() != 0 {
		t.Fatal("tracker did not recover on Update")
	}
}

func TestFilterTrackerAdvance(t *testing.T) {
	lossy, _ := impair.ByName("lost-sounding")
	src := rng.New(21)
	tr := &FilterTracker{MaxStaleIntervals: 5}
	computes := 0
	rounds := 200
	for i := 0; i < rounds; i++ {
		tr.Advance(lossy.DrawSounding(src), func() []complex128 {
			computes++
			return []complex128{complex(float64(i), 0)}
		})
	}
	if computes != tr.Updates {
		t.Errorf("compute callback ran %d times, Updates = %d", computes, tr.Updates)
	}
	if tr.Updates+tr.Misses != rounds {
		t.Errorf("updates %d + misses %d != %d rounds", tr.Updates, tr.Misses, rounds)
	}
	// lost-sounding has 25% total fault probability: both outcomes occur.
	if tr.Misses == 0 || tr.Updates == 0 {
		t.Errorf("degenerate outcome mix: %+v", *tr)
	}
	// With MaxStaleIntervals 5 and p(fault) = 0.25, invalidation is a
	// ~1e-4/round event; 200 rounds should essentially never invalidate,
	// i.e. graceful degradation holds the filter through burst losses.
	if tr.Invalidations > 1 {
		t.Errorf("too many invalidations: %d", tr.Invalidations)
	}
}

func TestFilterTrackerNeverGiveUp(t *testing.T) {
	tr := &FilterTracker{} // MaxStaleIntervals <= 0: hold forever
	tr.Update([]complex128{1})
	for i := 0; i < 100; i++ {
		tr.Miss()
	}
	if _, ok := tr.Current(); !ok {
		t.Fatal("unbounded tracker dropped its filter")
	}
	if tr.StaleIntervals() != 100 {
		t.Errorf("staleness %d, want 100", tr.StaleIntervals())
	}
}
