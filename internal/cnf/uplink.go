package cnf

import "fastforward/internal/linalg"

// Sec 4.2: "once the relay computes the constructive filter to use in the
// downlink direction for a particular AP-client pair, it can use the same
// filter in the uplink direction for the same client-AP pair" — by channel
// reciprocity the uplink channels are the transposes of the downlink ones,
// and the cascade through the relay transposes accordingly.
//
// For SISO links the scalars commute, so the downlink filter is literally
// reused. For MIMO, the uplink effective channel is the transpose of the
// downlink's when the relay applies Fᵀ:
//
//	(Hsd + Hrd·F·Hsr)ᵀ = Hsdᵀ + Hsrᵀ·Fᵀ·Hrdᵀ
//
// and a matrix and its transpose share singular values and determinant, so
// the uplink link quality equals the downlink's — no re-optimization
// needed. The amplification, however, is recomputed per direction (the
// paper's footnote 1): the noise rule depends on the relay→destination
// attenuation, which differs between directions.

// UplinkFilter returns the uplink constructive filter for a downlink
// filter FA: its transpose.
func UplinkFilter(FA *linalg.Matrix) *linalg.Matrix {
	return FA.Transpose()
}

// UplinkFilters maps UplinkFilter over a per-subcarrier slice.
func UplinkFilters(FA []*linalg.Matrix) []*linalg.Matrix {
	out := make([]*linalg.Matrix, len(FA))
	for i, f := range FA {
		out[i] = f.Transpose()
	}
	return out
}

// UplinkAmplificationDB recomputes the amplification bound for the uplink
// direction: cancellation is symmetric, but the relay→destination hop is
// now relay→AP, so the noise rule uses that attenuation.
func UplinkAmplificationDB(cancellationDB, relayToAPAttenDB float64) float64 {
	return AmplificationLimitDB(cancellationDB, relayToAPAttenDB)
}

// EffectiveUplinkMIMO computes the uplink effective channel for
// reciprocity-derived channels: Hds = Hsdᵀ (client→AP direct), Hdr = Hrdᵀ
// (client→relay), Hra = Hsrᵀ (relay→AP), with the transposed filter.
func EffectiveUplinkMIMO(Hsd, Hsr, Hrd, FA []*linalg.Matrix) []*linalg.Matrix {
	out := make([]*linalg.Matrix, len(Hsd))
	for i := range Hsd {
		out[i] = Hsd[i].Transpose().Add(
			Hsr[i].Transpose().Mul(FA[i].Transpose()).Mul(Hrd[i].Transpose()))
	}
	return out
}
