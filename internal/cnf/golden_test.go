package cnf

import (
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/golden"
	"fastforward/internal/ofdm"
	"fastforward/internal/rng"
)

// TestSynthesisGolden pins the CNF pipeline on a seed-fixed three-channel
// draw: the desired per-subcarrier filter, its synthesized implementation's
// tap energy and fit error, and a sample of the realized response. Filter
// or synthesis changes re-baseline with -update; anything else is a
// regression at 1e-9.
func TestSynthesisGolden(t *testing.T) {
	p := ofdm.Default20MHz()
	carriers := p.DataCarriers
	hsd := channel.NewRayleigh(rng.New(101), 6, 0.4, 1.0).ResponseVector(carriers, p.NFFT)
	hsr := channel.NewRayleigh(rng.New(102), 4, 0.3, 2.0).ResponseVector(carriers, p.NFFT)
	hrd := channel.NewRayleigh(rng.New(103), 5, 0.5, 1.5).ResponseVector(carriers, p.NFFT)

	got := map[string]float64{}
	for _, ampDB := range []float64{20, 40} {
		desired := DesiredSISO(hsd, hsr, hrd, ampDB)
		impl := Synthesize(desired, carriers, p.NFFT, p.SampleRate)
		realized := impl.ApplyImplementation(carriers, p.NFFT, p.SampleRate)
		got[golden.Key("cnf", ampDB, "tap_energy")] = impl.TapEnergy()
		got[golden.Key("cnf", ampDB, "fit_error_db")] = impl.FitErrorDB
		// Spot-check the realized response at a few carriers: fit metrics
		// alone can stay flat while the response rotates.
		for _, i := range []int{0, len(carriers) / 2, len(carriers) - 1} {
			got[golden.Key("cnf", ampDB, "re", i)] = real(realized[i])
			got[golden.Key("cnf", ampDB, "im", i)] = imag(realized[i])
		}
	}
	golden.Check(t, "testdata/synthesis_golden.json", got)
}
