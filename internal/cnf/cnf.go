// Package cnf implements FastForward's construct-and-forward filtering
// (Secs 3.2 and 3.4), the paper's headline contribution. Given the three
// channels around the relay — source→destination (hsd), source→relay (hsr)
// and relay→destination (hrd) — it computes the filter F and amplification
// A that make the relayed signal combine *coherently* with the direct
// signal at the destination:
//
//	SISO:  maximize |hsd + hrd·F·A·hsr|      (closed-form phase rotation)
//	MIMO:  maximize det(Hsd + Hrd·F·A·Hsr)   (projected gradient on the
//	                                          unitary manifold, Eq. 2)
//
// subject to A ≤ Amax, where Amax is bounded both by the achieved
// self-interference cancellation (feedback stability, Fig 7) and by the
// noise-amplification rule of Sec 3.5 (relay noise must land below the
// destination's noise floor).
//
// It also synthesizes the implementable form of the filter: a 4-tap
// digital pre-filter at 80 Msps (50 ns delay budget) cascaded with the
// 4-line/100 ps analog rotation filter of Fig 10, via alternating least
// squares — the sequential-convex-programming split of Sec 3.4.
//
// Synthesized filters report their realization quality — FitErrorDB and
// TapEnergy — which the evaluation harness records as the cnf.* run
// metrics (see OBSERVABILITY.md) alongside the coherence gain actually
// achieved at the destination.
package cnf

import (
	"math"
	"math/cmplx"

	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/rng"
)

// Margins used by the amplification rule.
const (
	// StabilityMarginDB keeps amplification safely below cancellation so
	// the TX→RX feedback loop stays stable (Fig 7).
	StabilityMarginDB = 3.0
	// NoiseMarginDB is the extra back-off of Sec 3.5 that puts amplified
	// relay noise below the destination noise floor.
	NoiseMarginDB = 3.0
)

// AmplificationLimitDB returns the maximum relay power amplification in dB
// given the achieved self-interference cancellation and the
// relay→destination path attenuation (positive dB). It implements
// A = min(C − 3, a − 3): the first term is the feedback-stability bound,
// the second the noise rule of Sec 3.5.
func AmplificationLimitDB(cancellationDB, rdAttenuationDB float64) float64 {
	a := cancellationDB - StabilityMarginDB
	b := rdAttenuationDB - NoiseMarginDB
	if b < a {
		a = b
	}
	if a < 0 {
		a = 0
	}
	return a
}

// DesiredSISO returns the ideal per-subcarrier constructive filter
// response Hc for a SISO relay: a pure rotation aligning the relayed path
// with the direct path, scaled by the amplitude gain corresponding to
// ampDB (power dB). Subcarriers where the relayed path is dead get zero.
func DesiredSISO(hsd, hsr, hrd []complex128, ampDB float64) []complex128 {
	if len(hsd) != len(hsr) || len(hsr) != len(hrd) {
		panic("cnf: channel vector length mismatch")
	}
	amp := dsp.AmplitudeFromDB(ampDB)
	hc := make([]complex128, len(hsd))
	for i := range hsd {
		relayed := hrd[i] * hsr[i]
		if relayed == 0 {
			continue
		}
		theta := cmplx.Phase(hsd[i]) - cmplx.Phase(relayed)
		if hsd[i] == 0 {
			// No direct path: any phase works; use zero rotation.
			theta = 0
		}
		hc[i] = cmplx.Rect(amp, theta)
	}
	return hc
}

// EffectiveSISO returns the per-subcarrier effective channel seen by the
// destination: hsd + hrd·Hc·hsr (Eq. 1's numerator).
func EffectiveSISO(hsd, hsr, hrd, hc []complex128) []complex128 {
	out := make([]complex128, len(hsd))
	for i := range hsd {
		out[i] = hsd[i] + hrd[i]*hc[i]*hsr[i]
	}
	return out
}

// LinkBudget describes one direction of a relayed link for SNR accounting.
type LinkBudget struct {
	// TxPowerMW is the source transmit power per stream (mW).
	TxPowerMW float64
	// NoiseFloorMW is the destination (and relay) noise power (mW).
	NoiseFloorMW float64
	// RelayNoiseMW is the relay receiver's own noise power (mW); usually
	// equal to NoiseFloorMW.
	RelayNoiseMW float64
}

// DestSNRdB evaluates Eq. 1 per subcarrier: the destination SNR including
// the relay-amplified noise term N_total = n_d + hrd·Hc·n_r.
func DestSNRdB(hsd, hsr, hrd, hc []complex128, b LinkBudget) []float64 {
	out := make([]float64, len(hsd))
	for i := range hsd {
		heff := hsd[i] + hrd[i]*hc[i]*hsr[i]
		sig := b.TxPowerMW * absSq(heff)
		noise := b.NoiseFloorMW + b.RelayNoiseMW*absSq(hrd[i]*hc[i])
		if noise <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = dsp.DB(sig / noise)
	}
	return out
}

// MeanSNRdB averages per-subcarrier SNRs in the power domain (the
// effective SNR a rate controller would use).
func MeanSNRdB(snrs []float64) float64 {
	if len(snrs) == 0 {
		return math.Inf(-1)
	}
	var acc float64
	for _, s := range snrs {
		acc += dsp.Linear(s)
	}
	return dsp.DB(acc / float64(len(snrs)))
}

func absSq(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}

// DesiredMIMO solves Eq. 2 per subcarrier: F maximizing
// |det(Hsd + Hrd·F·A·Hsr)| over unitary K×K matrices F, with A fixed at
// the amplitude corresponding to ampDB. It uses projected gradient ascent
// on the unitary manifold with multiple restarts (the "non-linear
// optimization technique" of Sec 3.2). The returned slice holds F·A (the
// combined filter, as the paper solves for) per subcarrier.
func DesiredMIMO(Hsd, Hsr, Hrd []*linalg.Matrix, ampDB float64, src *rng.Source) []*linalg.Matrix {
	if len(Hsd) != len(Hsr) || len(Hsr) != len(Hrd) {
		panic("cnf: channel matrix count mismatch")
	}
	amp := dsp.AmplitudeFromDB(ampDB)
	out := make([]*linalg.Matrix, len(Hsd))
	var warm *linalg.Matrix
	for i := range Hsd {
		// Warm-start from the previous subcarrier's solution: channels are
		// smooth in frequency, and keeping the optimizer on one solution
		// branch keeps F(f) smooth — which is what makes the filter
		// implementable by the short digital+analog cascade (Sec 3.4).
		out[i] = optimizeF(Hsd[i], Hsr[i], Hrd[i], amp, src, warm)
		warm = out[i].Scale(1 / amp)
	}
	return out
}

// optimizeF maximizes |det(Hsd + A·Hrd·F·Hsr)| over unitary F. A non-nil
// warm start is tried first and, when it converges to a competitive value,
// preferred (it keeps per-subcarrier solutions on one smooth branch).
func optimizeF(Hsd, Hsr, Hrd *linalg.Matrix, amp float64, src *rng.Source, warm *linalg.Matrix) *linalg.Matrix {
	k := Hrd.Cols // relay antenna count
	if Hsr.Rows != k {
		panic("cnf: relay antenna dimension mismatch")
	}
	objective := func(F *linalg.Matrix) float64 {
		M := Hsd.Add(Hrd.Mul(F).Mul(Hsr).Scale(amp))
		return cmplx.Abs(M.Det())
	}
	var starts []*linalg.Matrix
	if warm != nil {
		starts = append(starts, warm)
	}
	starts = append(starts, linalg.Identity(k))
	if src != nil {
		n := 4
		if warm != nil {
			n = 1 // cold restarts only as a safety net once warm
		}
		for r := 0; r < n; r++ {
			starts = append(starts, linalg.FromRows(src.RandomUnitary(k)))
		}
	}
	var bestF *linalg.Matrix
	bestVal := math.Inf(-1)
	warmVal := math.Inf(-1)
	for si, F0 := range starts {
		F := F0.Clone()
		val := objective(F)
		step := 0.5
		for iter := 0; iter < 200 && step > 1e-6; iter++ {
			M := Hsd.Add(Hrd.Mul(F).Mul(Hsr).Scale(amp))
			Minv, err := M.Inverse()
			if err != nil {
				// Singular effective channel: nudge F randomly.
				if src != nil {
					F = linalg.FromRows(src.RandomUnitary(k))
					val = objective(F)
					continue
				}
				break
			}
			// Gradient of log|det M| w.r.t. conj(F): A·Hrdᴴ·M⁻ᴴ·Hsrᴴ.
			G := Hrd.Adjoint().Mul(Minv.Adjoint()).Mul(Hsr.Adjoint()).Scale(amp)
			cand := F.Add(G.Scale(step))
			proj, err := cand.ProjectUnitary()
			if err != nil {
				step /= 2
				continue
			}
			if v := objective(proj); v > val {
				F = proj
				val = v
			} else {
				step /= 2
			}
		}
		if warm != nil && si == 0 {
			warmVal = val
		}
		if val > bestVal {
			bestVal = val
			bestF = F
		}
	}
	// Prefer the warm branch when it is within 1% of the best restart:
	// the smoothness benefit outweighs a marginal det difference.
	if warm != nil && warmVal >= 0.99*bestVal {
		// Re-run the warm ascent result: it was starts[0]; recompute it.
		// (bestF may already be the warm one; this keeps the invariant.)
		F := warm.Clone()
		val := objective(F)
		step := 0.5
		for iter := 0; iter < 200 && step > 1e-6; iter++ {
			M := Hsd.Add(Hrd.Mul(F).Mul(Hsr).Scale(amp))
			Minv, err := M.Inverse()
			if err != nil {
				break
			}
			G := Hrd.Adjoint().Mul(Minv.Adjoint()).Mul(Hsr.Adjoint()).Scale(amp)
			cand := F.Add(G.Scale(step))
			proj, err := cand.ProjectUnitary()
			if err != nil {
				step /= 2
				continue
			}
			if v := objective(proj); v > val {
				F = proj
				val = v
			} else {
				step /= 2
			}
		}
		return F.Scale(amp)
	}
	return bestF.Scale(amp)
}

// EffectiveMIMO returns the per-subcarrier effective MIMO channel
// Hsd + Hrd·FA·Hsr for a filter slice produced by DesiredMIMO.
func EffectiveMIMO(Hsd, Hsr, Hrd, FA []*linalg.Matrix) []*linalg.Matrix {
	out := make([]*linalg.Matrix, len(Hsd))
	for i := range Hsd {
		out[i] = Hsd[i].Add(Hrd[i].Mul(FA[i]).Mul(Hsr[i]))
	}
	return out
}
