package cnf

import (
	"math"
	"math/cmplx"

	"fastforward/internal/linalg"
)

// Analog rotation filter geometry (Fig 10): four delay lines a quarter
// carrier period apart, i.e. 100 ps steps at 2.45 GHz, spanning 360°.
const (
	CarrierHz        = 2.45e9
	AnalogTapSpacing = 100e-12
	AnalogTaps       = 4
	// AnalogFilterDelayS is the analog filter's processing delay (Sec 3.4
	// quotes ~3 ns including routing).
	AnalogFilterDelayS = 3e-9
	// PreFilterRate is the digital pre-filter's sampling rate (80 Msps).
	PreFilterRate = 80e6
	// PreFilterTaps is the pre-filter length: 4 taps × 12.5 ns = 50 ns,
	// the paper's digital delay budget.
	PreFilterTaps = 4
	// ConverterDelayS models ADC+DAC latency (Sec 3.3: ~50 ns).
	ConverterDelayS = 50e-9
)

// FilterImpl is the implementable constructive filter: a short complex
// digital pre-filter cascaded with the 4-line analog rotation filter.
type FilterImpl struct {
	// DigitalTaps are the pre-filter coefficients at PreFilterRate.
	DigitalTaps []complex128
	// AnalogGains are the non-negative gains on the four analog delay
	// lines (0, 100, 200, 300 ps).
	AnalogGains []float64
	// FitErrorDB is the residual of the synthesis relative to the desired
	// response power (lower/more negative is better).
	FitErrorDB float64
}

// DigitalResponse evaluates the pre-filter at baseband frequency f.
func (fi *FilterImpl) DigitalResponse(f float64) complex128 {
	var acc complex128
	for n, h := range fi.DigitalTaps {
		acc += h * cmplx.Exp(complex(0, -2*math.Pi*f*float64(n)/PreFilterRate))
	}
	return acc
}

// AnalogResponse evaluates the analog rotation filter at baseband
// frequency f (phases computed at RF, which is what makes 100 ps lines a
// 90° rotator).
func (fi *FilterImpl) AnalogResponse(f float64) complex128 {
	var acc complex128
	for k, g := range fi.AnalogGains {
		tau := float64(k) * AnalogTapSpacing
		acc += complex(g, 0) * cmplx.Exp(complex(0, -2*math.Pi*(CarrierHz+f)*tau))
	}
	return acc
}

// Response is the cascade Hp(f)·Ha(f).
func (fi *FilterImpl) Response(f float64) complex128 {
	return fi.DigitalResponse(f) * fi.AnalogResponse(f)
}

// LatencyS returns the filter's worst-case processing delay: the full
// digital tap span plus the analog filter delay (converters are accounted
// separately by the relay).
func (fi *FilterImpl) LatencyS() float64 {
	return float64(len(fi.DigitalTaps)-1)/PreFilterRate + AnalogFilterDelayS
}

// TapEnergy returns the total energy Σ|h|² of the digital pre-filter taps
// — the manifest metric cnf.tap_energy. A synthesis that needs huge
// opposing taps to hit its target is fragile (quantization- and
// staleness-sensitive), so tap energy drifting up flags a degrading fit
// even while FitErrorDB still looks healthy.
func (fi *FilterImpl) TapEnergy() float64 {
	var e float64
	for _, h := range fi.DigitalTaps {
		e += real(h)*real(h) + imag(h)*imag(h)
	}
	return e
}

// Synthesize splits a desired per-subcarrier response Hc across the
// digital pre-filter and the analog rotation filter by alternating least
// squares (the SCP of Sec 3.4): holding one stage fixed, the other's fit
// is convex. carriers/nfft/sampleRate define the subcarrier frequencies of
// the desired response.
func Synthesize(desired []complex128, carriers []int, nfft int, sampleRate float64) *FilterImpl {
	return SynthesizeWithBudget(desired, carriers, nfft, sampleRate, PreFilterTaps)
}

// SynthesizeWithBudget is Synthesize with an explicit digital pre-filter
// tap budget (each tap costs 12.5 ns of delay at 80 Msps); used by the
// tap-budget ablation.
func SynthesizeWithBudget(desired []complex128, carriers []int, nfft int, sampleRate float64, nTaps int) *FilterImpl {
	if len(desired) != len(carriers) {
		panic("cnf: Synthesize length mismatch")
	}
	if nTaps < 1 {
		nTaps = 1
	}
	n := len(desired)
	freqs := make([]float64, n)
	for i, k := range carriers {
		freqs[i] = float64(k) * sampleRate / float64(nfft)
	}
	impl := &FilterImpl{
		DigitalTaps: make([]complex128, nTaps),
		AnalogGains: make([]float64, AnalogTaps),
	}
	// Initialize: all rotation in the analog stage, unit impulse digital.
	impl.DigitalTaps[0] = 1

	analogBasis := func(f float64, k int) complex128 {
		tau := float64(k) * AnalogTapSpacing
		return cmplx.Exp(complex(0, -2*math.Pi*(CarrierHz+f)*tau))
	}
	digitalBasis := func(f float64, m int) complex128 {
		return cmplx.Exp(complex(0, -2*math.Pi*f*float64(m)/PreFilterRate))
	}

	for iter := 0; iter < 12; iter++ {
		// Stage 1: fit analog gains (non-negative reals) to
		// desired/Hp per frequency, weighted by |Hp|.
		A := make([][]float64, 2*n)
		b := make([]float64, 2*n)
		for i, f := range freqs {
			hp := impl.DigitalResponse(f)
			A[i] = make([]float64, AnalogTaps)
			A[n+i] = make([]float64, AnalogTaps)
			t := desired[i]
			for k := 0; k < AnalogTaps; k++ {
				phi := analogBasis(f, k) * hp
				A[i][k] = real(phi)
				A[n+i][k] = imag(phi)
			}
			b[i] = real(t)
			b[n+i] = imag(t)
		}
		if g, ok := linalg.NNLS(A, b, 1e-9); ok {
			copy(impl.AnalogGains, g)
		}
		// Stage 2: fit digital taps (complex LS) to desired/Ha.
		M := linalg.NewMatrix(n, nTaps)
		rb := make([]complex128, n)
		for i, f := range freqs {
			ha := impl.AnalogResponse(f)
			rb[i] = desired[i]
			for m := 0; m < nTaps; m++ {
				M.Set(i, m, digitalBasis(f, m)*ha)
			}
		}
		if sol, err := linalg.LeastSquares(M, rb, 1e-12); err == nil {
			copy(impl.DigitalTaps, sol)
		}
	}
	// Fit quality.
	var sig, res float64
	for i, f := range freqs {
		d := desired[i]
		r := d - impl.Response(f)
		sig += absSq(d)
		res += absSq(r)
	}
	if sig > 0 && res > 0 {
		impl.FitErrorDB = 10 * math.Log10(res/sig)
	} else if res == 0 {
		impl.FitErrorDB = math.Inf(-1)
	}
	return impl
}

// ApplyImplementation returns the per-subcarrier response of the
// synthesized filter at the given carriers — the Hc actually delivered,
// for plugging into EffectiveSISO/DestSNRdB in place of the ideal filter.
func (fi *FilterImpl) ApplyImplementation(carriers []int, nfft int, sampleRate float64) []complex128 {
	out := make([]complex128, len(carriers))
	for i, k := range carriers {
		out[i] = fi.Response(float64(k) * sampleRate / float64(nfft))
	}
	return out
}
