package cnf

import (
	"testing"

	"fastforward/internal/rng"
)

func soundingBudget() LinkBudget {
	return LinkBudget{TxPowerMW: 100, NoiseFloorMW: 1e-9, RelayNoiseMW: 1e-9}
}

func TestStalenessFreshBeatsStale(t *testing.T) {
	src := rng.New(1)
	res := StalenessStudy(src, SoundingConfig{
		CoherenceMs:        300,
		SoundingIntervalMs: 50,
		AmpDB:              55,
		Budget:             soundingBudget(),
	})
	if res.FreshGainDB <= 0 {
		t.Fatalf("fresh constructive gain %v should be positive", res.FreshGainDB)
	}
	if res.LossDB < 0 {
		t.Errorf("stale filter cannot beat the fresh one: loss %v", res.LossDB)
	}
}

func TestStalenessPaper50msIsCheap(t *testing.T) {
	// The design point the paper chose: at pedestrian coherence times
	// (~300 ms), a 50 ms sounding interval costs well under 2 dB of the
	// constructive gain.
	src := rng.New(2)
	res := StalenessStudy(src, SoundingConfig{
		CoherenceMs:        300,
		SoundingIntervalMs: 50,
		AmpDB:              55,
		Budget:             soundingBudget(),
	})
	if res.LossDB > 2 {
		t.Errorf("50 ms sounding loses %v dB at 300 ms coherence, want < 2", res.LossDB)
	}
}

func TestStalenessGrowsWithInterval(t *testing.T) {
	loss := func(intervalMs float64) float64 {
		src := rng.New(3)
		return StalenessStudy(src, SoundingConfig{
			CoherenceMs:        200,
			SoundingIntervalMs: intervalMs,
			AmpDB:              55,
			Budget:             soundingBudget(),
		}).LossDB
	}
	l50 := loss(50)
	l400 := loss(400)
	if l400 <= l50 {
		t.Errorf("staleness loss should grow with the interval: %v @50ms vs %v @400ms", l50, l400)
	}
	// At intervals far beyond coherence, the held filter is useless: the
	// loss approaches the entire coherent-combination benefit.
	l2000 := loss(2000)
	if l2000 < l400 {
		t.Errorf("loss should keep growing: %v @400ms vs %v @2000ms", l400, l2000)
	}
}

func TestStalenessFastChannelsNeedFasterSounding(t *testing.T) {
	// With a short coherence time (vehicular-ish), even 50 ms is too slow.
	slowLoss := StalenessStudy(rng.New(4), SoundingConfig{
		CoherenceMs: 300, SoundingIntervalMs: 50, AmpDB: 55, Budget: soundingBudget(),
	}).LossDB
	fastLoss := StalenessStudy(rng.New(4), SoundingConfig{
		CoherenceMs: 20, SoundingIntervalMs: 50, AmpDB: 55, Budget: soundingBudget(),
	}).LossDB
	if fastLoss <= slowLoss {
		t.Errorf("faster channels should suffer more staleness: %v vs %v", fastLoss, slowLoss)
	}
}
