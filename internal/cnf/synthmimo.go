package cnf

import "fastforward/internal/linalg"

// The 2×2 prototype needs one analog construct-and-forward board per
// antenna pair (Sec 5: "we require four RF analog construct-and-forward
// boards") plus a digital pre-filter per pair. SynthesizeMIMO realizes a
// per-subcarrier K×K filter as that matrix of digital+analog cascades.

// MIMOFilterImpl is the implementable K×K constructive filter: one
// FilterImpl per (output antenna, input antenna) pair.
type MIMOFilterImpl struct {
	// Pairs[out][in] is the cascade filtering input antenna `in` into
	// output antenna `out`.
	Pairs [][]*FilterImpl
}

// SynthesizeMIMO fits each entry of the desired per-subcarrier filter
// matrices (FA[s].At(i,j) across subcarriers s) with a digital+analog
// cascade, exactly as the SISO synthesis does per pair.
func SynthesizeMIMO(FA []*linalg.Matrix, carriers []int, nfft int, sampleRate float64) *MIMOFilterImpl {
	if len(FA) == 0 {
		return &MIMOFilterImpl{}
	}
	if len(FA) != len(carriers) {
		panic("cnf: SynthesizeMIMO length mismatch")
	}
	rows, cols := FA[0].Rows, FA[0].Cols
	impl := &MIMOFilterImpl{Pairs: make([][]*FilterImpl, rows)}
	for i := 0; i < rows; i++ {
		impl.Pairs[i] = make([]*FilterImpl, cols)
		for j := 0; j < cols; j++ {
			desired := make([]complex128, len(FA))
			for s := range FA {
				desired[s] = FA[s].At(i, j)
			}
			impl.Pairs[i][j] = Synthesize(desired, carriers, nfft, sampleRate)
		}
	}
	return impl
}

// ApplyImplementation returns the per-subcarrier matrix response of the
// synthesized K×K filter at the given carriers.
func (m *MIMOFilterImpl) ApplyImplementation(carriers []int, nfft int, sampleRate float64) []*linalg.Matrix {
	if len(m.Pairs) == 0 {
		return nil
	}
	rows := len(m.Pairs)
	cols := len(m.Pairs[0])
	out := make([]*linalg.Matrix, len(carriers))
	for s, k := range carriers {
		f := float64(k) * sampleRate / float64(nfft)
		mat := linalg.NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				mat.Set(i, j, m.Pairs[i][j].Response(f))
			}
		}
		out[s] = mat
	}
	return out
}

// WorstFitErrorDB returns the worst per-pair synthesis residual in dB.
func (m *MIMOFilterImpl) WorstFitErrorDB() float64 {
	worst := -300.0
	for _, row := range m.Pairs {
		for _, f := range row {
			if f.FitErrorDB > worst {
				worst = f.FitErrorDB
			}
		}
	}
	return worst
}

// LatencyS returns the worst-case pair latency (all pairs share the same
// structure, so this equals any single pair's latency).
func (m *MIMOFilterImpl) LatencyS() float64 {
	var worst float64
	for _, row := range m.Pairs {
		for _, f := range row {
			if l := f.LatencyS(); l > worst {
				worst = l
			}
		}
	}
	return worst
}

// TapEnergy returns the summed digital-tap energy across all antenna
// pairs (see FilterImpl.TapEnergy) — the MIMO form of cnf.tap_energy.
func (m *MIMOFilterImpl) TapEnergy() float64 {
	var e float64
	for _, row := range m.Pairs {
		for _, f := range row {
			e += f.TapEnergy()
		}
	}
	return e
}
