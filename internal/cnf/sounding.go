package cnf

import (
	"math"

	"fastforward/internal/rng"
)

// Sec 4.2: the relay cannot measure the source→destination channel itself;
// it learns it by snooping explicit channel feedback — the 802.11n/ac VHT
// sounding exchange, which the paper makes the AP run every 50 ms. The
// channels the relay *can* measure directly (source→relay from any AP
// packet, relay→destination from snooped ACKs) refresh at packet rate.
//
// Between refreshes the channels drift, so the constructive filter goes
// stale. StalenessStudy quantifies the resulting SNR-gain loss as a
// function of the sounding interval — the knob the paper fixes at 50 ms.

// SoundingConfig parameterizes the staleness study.
type SoundingConfig struct {
	// CoherenceMs is the channel's 50% coherence time in milliseconds
	// (indoor pedestrian-speed channels: a few hundred ms).
	CoherenceMs float64
	// SoundingIntervalMs is the refresh period of the direct-channel
	// estimate the relay snoops (the paper: 50 ms).
	SoundingIntervalMs float64
	// Subcarriers is the number of evaluated subcarriers.
	Subcarriers int
	// AmpDB is the relay amplification.
	AmpDB float64
	// Budget is the link budget for SNR accounting.
	Budget LinkBudget
}

// StalenessResult reports the SNR gain achieved with fresh vs stale
// filters, averaged over the sounding interval.
type StalenessResult struct {
	// FreshGainDB is the constructive SNR gain with a per-instant filter.
	FreshGainDB float64
	// StaleGainDB is the gain with the filter computed at the start of
	// each sounding interval and held.
	StaleGainDB float64
	// LossDB = FreshGainDB - StaleGainDB.
	LossDB float64
}

// StalenessStudy simulates Gauss-Markov channel drift and measures the
// constructive-gain loss from holding the CNF filter for a sounding
// interval. Determinism follows the source.
func StalenessStudy(src *rng.Source, cfg SoundingConfig) StalenessResult {
	n := cfg.Subcarriers
	if n <= 0 {
		n = 13
	}
	// Gauss-Markov per-step correlation: step = 1 ms; rho chosen so the
	// autocorrelation halves after CoherenceMs steps.
	steps := int(cfg.SoundingIntervalMs)
	if steps < 1 {
		steps = 1
	}
	rho := 1.0
	if cfg.CoherenceMs > 0 {
		rho = math.Pow(0.5, 1/cfg.CoherenceMs)
	}
	innov := 1 - rho*rho

	// Initial channels: direct weak, hops strong.
	hsd := make([]complex128, n)
	hsr := make([]complex128, n)
	hrd := make([]complex128, n)
	for i := 0; i < n; i++ {
		hsd[i] = src.ComplexGaussian(1e-9)
		hsr[i] = src.ComplexGaussian(1e-6)
		hrd[i] = src.ComplexGaussian(1e-7)
	}
	baseSNR := func(hc []complex128) float64 {
		return MeanSNRdB(DestSNRdB(hsd, hsr, hrd, hc, cfg.Budget))
	}
	zero := make([]complex128, n)

	var freshAcc, staleAcc, directAcc float64
	const intervals = 20
	for iv := 0; iv < intervals; iv++ {
		held := DesiredSISO(hsd, hsr, hrd, cfg.AmpDB)
		for s := 0; s < steps; s++ {
			// Drift all three channels.
			drift(src, hsd, rho, innov, 1e-9)
			drift(src, hsr, rho, innov, 1e-6)
			drift(src, hrd, rho, innov, 1e-7)
			fresh := DesiredSISO(hsd, hsr, hrd, cfg.AmpDB)
			freshAcc += baseSNR(fresh)
			staleAcc += baseSNR(held)
			directAcc += baseSNR(zero)
		}
	}
	total := float64(intervals * steps)
	fresh := freshAcc/total - directAcc/total
	stale := staleAcc/total - directAcc/total
	return StalenessResult{
		FreshGainDB: fresh,
		StaleGainDB: stale,
		LossDB:      fresh - stale,
	}
}

// drift applies one Gauss-Markov step with stationary power p.
func drift(src *rng.Source, h []complex128, rho, innov, p float64) {
	r := complex(rho, 0)
	for i := range h {
		h[i] = r*h[i] + src.ComplexGaussian(innov*p)
	}
}
