package cnf

import (
	"fastforward/internal/impair"
)

// FilterTracker implements the relay's graceful-degradation policy for the
// CNF filter when sounding rounds are lost or corrupted (Sec 4.2 learns
// the source→destination channel only from snooped sounding feedback, so
// a lost exchange leaves the relay blind for a full interval): hold the
// last-known-good filter and account its growing staleness, rather than
// forwarding with no filter or a garbage one.
//
// The tracker is pure bookkeeping — it does not synthesize filters — so
// any representation works: frequency-domain taps here, FilterImpl
// elsewhere.
type FilterTracker struct {
	// MaxStaleIntervals is how many consecutive missed refreshes the relay
	// tolerates before declaring the filter unusable (Invalidate); <= 0
	// means never give up.
	MaxStaleIntervals int

	// Misses counts refreshes that were lost or corrupted.
	Misses int
	// Updates counts successful refreshes.
	Updates int
	// Invalidations counts times staleness exceeded MaxStaleIntervals and
	// the filter was dropped entirely.
	Invalidations int
	// WorstStaleIntervals is the deepest staleness reached.
	WorstStaleIntervals int

	filter []complex128
	stale  int
	valid  bool
}

// Update installs a freshly computed filter (a successful sounding round):
// staleness resets to zero.
func (t *FilterTracker) Update(filter []complex128) {
	t.filter = filter
	t.stale = 0
	t.valid = true
	t.Updates++
}

// Miss records a lost or corrupted sounding round: the last-known-good
// filter is held one interval longer. When staleness passes
// MaxStaleIntervals the filter is invalidated — the relay falls back to
// plain amplify-and-forward (a nil filter) rather than constructing with
// fiction.
func (t *FilterTracker) Miss() {
	t.Misses++
	if !t.valid {
		return
	}
	t.stale++
	if t.stale > t.WorstStaleIntervals {
		t.WorstStaleIntervals = t.stale
	}
	if t.MaxStaleIntervals > 0 && t.stale > t.MaxStaleIntervals {
		t.Invalidate()
	}
}

// Invalidate drops the held filter entirely.
func (t *FilterTracker) Invalidate() {
	t.filter = nil
	t.valid = false
	t.stale = 0
	t.Invalidations++
}

// Current returns the filter the relay should apply right now and whether
// one is available at all. A false return means amplify-and-forward only.
func (t *FilterTracker) Current() ([]complex128, bool) {
	return t.filter, t.valid
}

// StaleIntervals reports how many refresh intervals the current filter has
// been held past its computation (0 = fresh).
func (t *FilterTracker) StaleIntervals() int {
	if !t.valid {
		return 0
	}
	return t.stale
}

// StalenessRho returns the Gauss-Markov correlation between the held
// filter's CSI and the true channel, given the per-interval correlation
// rhoPerInterval: rho^stale, 1 when fresh or invalid.
func (t *FilterTracker) StalenessRho(rhoPerInterval float64) float64 {
	if !t.valid || t.stale == 0 || rhoPerInterval >= 1 {
		return 1
	}
	rho := 1.0
	for i := 0; i < t.stale; i++ {
		rho *= rhoPerInterval
	}
	return rho
}

// Advance plays one sounding round drawn from the impairment profile
// through the tracker: on SoundingOK the provided compute callback is
// invoked to synthesize a fresh filter, otherwise the round is a Miss.
// It returns the outcome so callers can record per-outcome metrics. The
// compute callback runs only on OK rounds, preserving rng stream
// stability for the fault draws themselves (one variate per round, see
// impair.DrawSounding).
func (t *FilterTracker) Advance(outcome impair.SoundingOutcome, compute func() []complex128) impair.SoundingOutcome {
	if outcome == impair.SoundingOK {
		t.Update(compute())
	} else {
		t.Miss()
	}
	return outcome
}
