package cnf

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/rng"
)

func randChannels(src *rng.Source, n int) (hsd, hsr, hrd []complex128) {
	hsd = make([]complex128, n)
	hsr = make([]complex128, n)
	hrd = make([]complex128, n)
	for i := 0; i < n; i++ {
		hsd[i] = src.ComplexGaussian(1e-8) // weak direct (-80 dB)
		hsr[i] = src.ComplexGaussian(1e-6) // source->relay (-60 dB)
		hrd[i] = src.ComplexGaussian(1e-7) // relay->dest (-70 dB)
	}
	return
}

func TestAmplificationLimit(t *testing.T) {
	// Cancellation-bound: 110 dB cancellation, 80 dB path loss -> 77 dB.
	if got := AmplificationLimitDB(110, 80); got != 77 {
		t.Errorf("got %v, want 77", got)
	}
	// Stability-bound: 60 dB cancellation, 100 dB path loss -> 57 dB.
	if got := AmplificationLimitDB(60, 100); got != 57 {
		t.Errorf("got %v, want 57", got)
	}
	// Never negative.
	if got := AmplificationLimitDB(2, 1); got != 0 {
		t.Errorf("got %v, want 0", got)
	}
}

func TestDesiredSISOAligns(t *testing.T) {
	src := rng.New(1)
	hsd, hsr, hrd := randChannels(src, 52)
	hc := DesiredSISO(hsd, hsr, hrd, 60)
	for i := range hsd {
		// The relayed term must be phase-aligned with the direct term.
		relayed := hrd[i] * hc[i] * hsr[i]
		if hsd[i] == 0 || relayed == 0 {
			continue
		}
		dphi := cmplx.Phase(relayed) - cmplx.Phase(hsd[i])
		for dphi > math.Pi {
			dphi -= 2 * math.Pi
		}
		for dphi < -math.Pi {
			dphi += 2 * math.Pi
		}
		if math.Abs(dphi) > 1e-9 {
			t.Fatalf("subcarrier %d: phase misalignment %v rad", i, dphi)
		}
		// Magnitude of the filter equals the amplification.
		if math.Abs(cmplx.Abs(hc[i])-dsp.AmplitudeFromDB(60)) > 1e-9 {
			t.Fatalf("subcarrier %d: |Hc| = %v", i, cmplx.Abs(hc[i]))
		}
	}
}

func TestConstructiveBeatsBlindAndDestructive(t *testing.T) {
	// The core claim of Fig 5: with the CNF filter the combined channel
	// magnitude is |hsd| + |hrd·A·hsr| (fully coherent), which beats any
	// other phase choice.
	src := rng.New(2)
	hsd, hsr, hrd := randChannels(src, 52)
	ampDB := 60.0
	hc := DesiredSISO(hsd, hsr, hrd, ampDB)
	heff := EffectiveSISO(hsd, hsr, hrd, hc)
	amp := dsp.AmplitudeFromDB(ampDB)
	for i := range heff {
		want := cmplx.Abs(hsd[i]) + amp*cmplx.Abs(hrd[i]*hsr[i])
		if math.Abs(cmplx.Abs(heff[i])-want) > 1e-12*want {
			t.Fatalf("subcarrier %d: |heff| = %v, want coherent sum %v",
				i, cmplx.Abs(heff[i]), want)
		}
		// Blind forwarding (no rotation) cannot beat it.
		blind := hsd[i] + hrd[i]*complex(amp, 0)*hsr[i]
		if cmplx.Abs(blind) > cmplx.Abs(heff[i])+1e-12 {
			t.Fatalf("blind beat constructive at %d", i)
		}
	}
}

func TestDestSNRIncludesRelayNoise(t *testing.T) {
	// With huge amplification, the relay noise term must cap the SNR.
	hsd := []complex128{1e-5}
	hsr := []complex128{1e-3}
	hrd := []complex128{1e-3}
	b := LinkBudget{TxPowerMW: 100, NoiseFloorMW: 1e-9, RelayNoiseMW: 1e-9}
	modest := DestSNRdB(hsd, hsr, hrd, DesiredSISO(hsd, hsr, hrd, 50), b)
	huge := DestSNRdB(hsd, hsr, hrd, DesiredSISO(hsd, hsr, hrd, 120), b)
	// At 120 dB amplification the relay noise dominates: SNR approaches
	// |heff|²·P/(|hrd·Hc|²·Nr) which is bounded; it must not be 70 dB above
	// the modest case.
	if huge[0] > modest[0]+70 {
		t.Errorf("relay noise not accounted: modest %v dB, huge %v dB", modest[0], huge[0])
	}
}

func TestNoiseRuleKeepsRelayNoiseBelowFloor(t *testing.T) {
	// Sec 3.5's worked example: relay->destination attenuation 80 dB,
	// amplification 77 dB: relay noise arrives 3 dB below the floor.
	rdLossDB := 80.0
	ampDB := AmplificationLimitDB(110, rdLossDB)
	if ampDB != 77 {
		t.Fatalf("amp = %v", ampDB)
	}
	relayNoiseAtDest := channel.NoiseFloorMW() * dsp.Linear(ampDB) * dsp.Linear(-rdLossDB)
	// The margin is exactly 3 dB: the arriving relay noise must sit at
	// −93 dBm, i.e. 3 dB (within rounding) below the −90 dBm floor.
	if relayNoiseAtDest > channel.NoiseFloorMW()*dsp.Linear(-2.99) {
		t.Errorf("relay noise at destination %v not >=3 dB below the floor %v",
			relayNoiseAtDest, channel.NoiseFloorMW())
	}
}

func TestMeanSNR(t *testing.T) {
	if got := MeanSNRdB([]float64{10, 10, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("uniform mean = %v", got)
	}
	// Power-domain averaging: one strong subcarrier dominates.
	got := MeanSNRdB([]float64{30, 0, 0})
	if got < 24 || got > 26 {
		t.Errorf("mean of {30,0,0} dB = %v, want ~25.2", got)
	}
}

func mimoChannels(src *rng.Source, n, k int, gsd, gsr, grd float64) (Hsd, Hsr, Hrd []*linalg.Matrix) {
	mk := func(rows, cols int, g float64) *linalg.Matrix {
		m := linalg.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = src.ComplexGaussian(g)
		}
		return m
	}
	for i := 0; i < n; i++ {
		Hsd = append(Hsd, mk(2, 2, gsd))
		Hsr = append(Hsr, mk(k, 2, gsr))
		Hrd = append(Hrd, mk(2, k, grd))
	}
	return
}

func TestDesiredMIMOImprovesDet(t *testing.T) {
	src := rng.New(3)
	Hsd, Hsr, Hrd := mimoChannels(src, 8, 2, 1e-8, 1e-6, 1e-7)
	ampDB := 55.0
	FA := DesiredMIMO(Hsd, Hsr, Hrd, ampDB, src)
	amp := dsp.AmplitudeFromDB(ampDB)
	for i := range Hsd {
		opt := cmplx.Abs(Hsd[i].Add(Hrd[i].Mul(FA[i]).Mul(Hsr[i])).Det())
		// Must beat the no-relay determinant.
		direct := cmplx.Abs(Hsd[i].Det())
		if opt < direct {
			t.Errorf("subcarrier %d: optimized det %v below direct %v", i, opt, direct)
		}
		// Must beat (or match) naive identity forwarding at equal power.
		naiveF := linalg.Identity(2).Scale(amp)
		naive := cmplx.Abs(Hsd[i].Add(Hrd[i].Mul(naiveF).Mul(Hsr[i])).Det())
		if opt < naive-1e-12 {
			t.Errorf("subcarrier %d: optimized det %v below naive %v", i, opt, naive)
		}
	}
}

func TestDesiredMIMOFilterIsScaledUnitary(t *testing.T) {
	src := rng.New(4)
	Hsd, Hsr, Hrd := mimoChannels(src, 3, 2, 1e-8, 1e-6, 1e-7)
	ampDB := 40.0
	FA := DesiredMIMO(Hsd, Hsr, Hrd, ampDB, src)
	amp := dsp.AmplitudeFromDB(ampDB)
	for _, fa := range FA {
		// FA/amp must be unitary: (FA)(FA)ᴴ = amp²·I.
		prod := fa.Mul(fa.Adjoint())
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				want := complex(0, 0)
				if i == j {
					want = complex(amp*amp, 0)
				}
				if cmplx.Abs(prod.At(i, j)-want) > 1e-6*amp*amp {
					t.Fatalf("FA not a scaled rotation: %v", prod)
				}
			}
		}
	}
}

func TestMIMORankRestoration(t *testing.T) {
	// A pinhole direct channel (rank 1) plus a full-rank relay path must
	// yield an effective channel with two usable streams.
	src := rng.New(5)
	pin := channel.NewPinhole(src, 2, 2, 1, 0.5, 1e-8)
	Hsd := []*linalg.Matrix{pin.FrequencyResponse(5, 64)}
	rich1 := channel.NewRichScattering(src, 2, 2, 1, 0.5, 1e-6)
	rich2 := channel.NewRichScattering(src, 2, 2, 1, 0.5, 1e-7)
	Hsr := []*linalg.Matrix{rich1.FrequencyResponse(5, 64)}
	Hrd := []*linalg.Matrix{rich2.FrequencyResponse(5, 64)}

	if got := Hsd[0].EffectiveRank(25); got != 1 {
		t.Fatalf("pinhole direct rank = %d, want 1", got)
	}
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 55, src)
	heff := EffectiveMIMO(Hsd, Hsr, Hrd, FA)
	if got := heff[0].EffectiveRank(25); got != 2 {
		sv := heff[0].SingularValues()
		t.Errorf("effective rank = %d (sv %v), want 2", got, sv)
	}
}

func TestSynthesizeRecoversSmoothResponse(t *testing.T) {
	// A desired response that is a pure rotation with mild frequency slope
	// (the typical CNF target) must be realizable to within a few percent.
	carriers := make([]int, 0, 52)
	for k := -26; k <= 26; k++ {
		if k != 0 {
			carriers = append(carriers, k)
		}
	}
	desired := make([]complex128, len(carriers))
	for i, k := range carriers {
		theta := 2.1 + 0.01*float64(k) // slowly varying phase
		desired[i] = cmplx.Rect(1.0, theta)
	}
	impl := Synthesize(desired, carriers, 64, 20e6)
	if impl.FitErrorDB > -20 {
		t.Errorf("fit error %v dB, want <= -20", impl.FitErrorDB)
	}
	got := impl.ApplyImplementation(carriers, 64, 20e6)
	for i := range desired {
		if cmplx.Abs(got[i]-desired[i]) > 0.15 {
			t.Fatalf("carrier %d: synthesized %v vs desired %v", carriers[i], got[i], desired[i])
		}
	}
}

func TestSynthesizeAnalogGainsNonNegative(t *testing.T) {
	src := rng.New(6)
	carriers := []int{-20, -10, -1, 1, 10, 20}
	desired := make([]complex128, len(carriers))
	for i := range desired {
		desired[i] = src.UniformPhase()
	}
	impl := Synthesize(desired, carriers, 64, 20e6)
	for k, g := range impl.AnalogGains {
		if g < 0 {
			t.Errorf("analog gain %d is negative: %v", k, g)
		}
	}
}

func TestSynthesizeLatencyBudget(t *testing.T) {
	// Digital 4 taps at 80 Msps = 37.5 ns span + 3 ns analog: under the
	// 50 ns pre-filter budget plus margin, and with converters (~50 ns)
	// the total stays under 100 ns — the Sec 3.2 requirement.
	impl := &FilterImpl{DigitalTaps: make([]complex128, PreFilterTaps), AnalogGains: make([]float64, AnalogTaps)}
	lat := impl.LatencyS()
	if lat > 50e-9 {
		t.Errorf("filter latency %v exceeds 50 ns budget", lat)
	}
	if total := lat + ConverterDelayS; total > 100e-9 {
		t.Errorf("total processing latency %v exceeds 100 ns", total)
	}
}

func TestAnalogRotatorCoversFullCircle(t *testing.T) {
	// Fig 10: with four 100 ps lines the analog filter must realize any
	// phase at band center with near-unit magnitude.
	for _, theta := range []float64{0, 0.7, 1.6, 2.9, -2.2, -0.9} {
		desired := []complex128{cmplx.Rect(1, theta)}
		impl := Synthesize(desired, []int{1}, 64, 20e6)
		got := impl.Response(20e6 / 64)
		if cmplx.Abs(got-desired[0]) > 0.02 {
			t.Errorf("theta %v: synthesized %v", theta, got)
		}
	}
}

func TestSynthesizedFilterStillConstructive(t *testing.T) {
	// End-to-end: ideal CNF vs its synthesized implementation over a
	// realistic frequency-selective set of channels — the SNR loss from
	// implementation constraints should be modest (< 3 dB).
	src := rng.New(7)
	carriers := make([]int, 0, 52)
	for k := -26; k <= 26; k++ {
		if k != 0 {
			carriers = append(carriers, k)
		}
	}
	mkChan := func(gain float64, taps int) []complex128 {
		c := channel.NewRayleigh(src, taps, 0.5, gain)
		return c.ResponseVector(carriers, 64)
	}
	hsd := mkChan(1e-9, 3)
	hsr := mkChan(1e-6, 3)
	hrd := mkChan(1e-7, 3)
	ampDB := 55.0
	ideal := DesiredSISO(hsd, hsr, hrd, ampDB)
	impl := Synthesize(ideal, carriers, 64, 20e6)
	got := impl.ApplyImplementation(carriers, 64, 20e6)

	b := LinkBudget{TxPowerMW: 100, NoiseFloorMW: 1e-9, RelayNoiseMW: 1e-9}
	idealSNR := MeanSNRdB(DestSNRdB(hsd, hsr, hrd, ideal, b))
	implSNR := MeanSNRdB(DestSNRdB(hsd, hsr, hrd, got, b))
	direct := MeanSNRdB(DestSNRdB(hsd, hsr, hrd, make([]complex128, len(hsd)), b))
	if idealSNR-implSNR > 3 {
		t.Errorf("implementation loses %.2f dB vs ideal (ideal %.1f, impl %.1f)",
			idealSNR-implSNR, idealSNR, implSNR)
	}
	if implSNR < direct+3 {
		t.Errorf("synthesized filter not constructive: impl %.1f dB vs direct %.1f dB",
			implSNR, direct)
	}
}

func BenchmarkDesiredMIMOPerSubcarrier(b *testing.B) {
	src := rng.New(8)
	Hsd, Hsr, Hrd := mimoChannels(src, 1, 2, 1e-8, 1e-6, 1e-7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DesiredMIMO(Hsd, Hsr, Hrd, 55, src)
	}
}

func BenchmarkSynthesize52Carriers(b *testing.B) {
	src := rng.New(9)
	carriers := make([]int, 0, 52)
	for k := -26; k <= 26; k++ {
		if k != 0 {
			carriers = append(carriers, k)
		}
	}
	desired := make([]complex128, len(carriers))
	for i := range desired {
		desired[i] = src.UniformPhase()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(desired, carriers, 64, 20e6)
	}
}
