package cnf

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/rng"
)

func TestUplinkReciprocitySISO(t *testing.T) {
	// SISO: scalars commute, so the same filter gives the identical
	// effective channel in both directions.
	src := rng.New(1)
	hsd, hsr, hrd := randChannels(src, 20)
	hc := DesiredSISO(hsd, hsr, hrd, 55)
	down := EffectiveSISO(hsd, hsr, hrd, hc)
	// Uplink: client->AP direct is hsd (reciprocal), client->relay is hrd,
	// relay->AP is hsr; same scalar filter.
	up := EffectiveSISO(hsd, hrd, hsr, hc)
	for i := range down {
		if cmplx.Abs(down[i]-up[i]) > 1e-15 {
			t.Fatalf("SISO reciprocity broken at %d: %v vs %v", i, down[i], up[i])
		}
	}
}

func TestUplinkReciprocityMIMO(t *testing.T) {
	// MIMO: with the transposed filter, the uplink effective channel is
	// the transpose of the downlink's — same determinant magnitude and
	// singular values, hence the same link quality.
	src := rng.New(2)
	Hsd, Hsr, Hrd := mimoChannels(src, 6, 2, 1e-8, 1e-6, 1e-7)
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 55, src)
	down := EffectiveMIMO(Hsd, Hsr, Hrd, FA)
	up := EffectiveUplinkMIMO(Hsd, Hsr, Hrd, FA)
	for i := range down {
		dDet := cmplx.Abs(down[i].Det())
		uDet := cmplx.Abs(up[i].Det())
		if math.Abs(dDet-uDet) > 1e-12*(1+dDet) {
			t.Fatalf("subcarrier %d: det mismatch %v vs %v", i, dDet, uDet)
		}
		dsv := down[i].SingularValues()
		usv := up[i].SingularValues()
		for s := range dsv {
			if math.Abs(dsv[s]-usv[s]) > 1e-9*(1+dsv[s]) {
				t.Fatalf("subcarrier %d: singular value %d mismatch", i, s)
			}
		}
	}
}

func TestUplinkFilterIsTranspose(t *testing.T) {
	src := rng.New(3)
	Hsd, Hsr, Hrd := mimoChannels(src, 2, 2, 1e-8, 1e-6, 1e-7)
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 40, src)
	up := UplinkFilters(FA)
	for i := range FA {
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				if FA[i].At(r, c) != up[i].At(c, r) {
					t.Fatal("UplinkFilters is not the per-subcarrier transpose")
				}
			}
		}
	}
	single := UplinkFilter(FA[0])
	if single.At(0, 1) != FA[0].At(1, 0) {
		t.Fatal("UplinkFilter is not the transpose")
	}
}

func TestUplinkAmplificationAsymmetry(t *testing.T) {
	// Footnote 1: the amplification differs per direction because the
	// noise rule depends on the relay→destination attenuation of *that*
	// direction.
	downAmp := AmplificationLimitDB(110, 80) // relay→client 80 dB
	upAmp := UplinkAmplificationDB(110, 60)  // relay→AP 60 dB
	if downAmp != 77 || upAmp != 57 {
		t.Errorf("asymmetric amplification wrong: down %v up %v", downAmp, upAmp)
	}
}
