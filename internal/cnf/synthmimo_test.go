package cnf

import (
	"math/cmplx"
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/linalg"
	"fastforward/internal/ofdm"
	"fastforward/internal/phyrate"
	"fastforward/internal/rng"
)

func mimoCarrierSet() []int {
	carriers := make([]int, 0, 13)
	for k := -26; k <= 26; k += 4 {
		if k != 0 {
			carriers = append(carriers, k)
		}
	}
	return carriers
}

func TestSynthesizeMIMOShape(t *testing.T) {
	src := rng.New(1)
	carriers := mimoCarrierSet()
	Hsd, Hsr, Hrd := mimoChannels(src, len(carriers), 2, 1e-8, 1e-6, 1e-7)
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 50, src)
	impl := SynthesizeMIMO(FA, carriers, 64, 20e6)
	if len(impl.Pairs) != 2 || len(impl.Pairs[0]) != 2 {
		t.Fatal("expected a 2x2 filter matrix")
	}
	got := impl.ApplyImplementation(carriers, 64, 20e6)
	if len(got) != len(carriers) {
		t.Fatal("implementation response length wrong")
	}
	// Latency within the CP budget.
	if l := impl.LatencyS(); l > 50e-9 {
		t.Errorf("MIMO filter latency %v exceeds the 50 ns pre-filter budget", l)
	}
}

func TestSynthesizeMIMOPreservesRankExpansion(t *testing.T) {
	// The implemented (constrained) filter must still restore the second
	// stream of a pinhole channel — fidelity loss should not undo the
	// paper's headline MIMO mechanism.
	src := rng.New(2)
	carriers := mimoCarrierSet()
	pin := channel.NewPinhole(src, 2, 2, 1, 0.5, 1e-8)
	sr := channel.NewRichScattering(src, 2, 2, 2, 0.5, 1e-6)
	rd := channel.NewRichScattering(src, 2, 2, 2, 0.5, 1e-7)
	Hsd := make([]*linalg.Matrix, len(carriers))
	Hsr := make([]*linalg.Matrix, len(carriers))
	Hrd := make([]*linalg.Matrix, len(carriers))
	for i, k := range carriers {
		Hsd[i] = pin.FrequencyResponse(k, 64)
		Hsr[i] = sr.FrequencyResponse(k, 64)
		Hrd[i] = rd.FrequencyResponse(k, 64)
	}
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 55, src)
	impl := SynthesizeMIMO(FA, carriers, 64, 20e6)
	FAimpl := impl.ApplyImplementation(carriers, 64, 20e6)

	idealEff := EffectiveMIMO(Hsd, Hsr, Hrd, FA)
	implEff := EffectiveMIMO(Hsd, Hsr, Hrd, FAimpl)

	txMW, n0 := 1.0, 1e-9
	params := ofdm.Default20MHz()
	ideal := phyrate.MIMORateMbps(params, idealEff, nil, txMW, n0)
	got := phyrate.MIMORateMbps(params, implEff, nil, txMW, n0)
	if got.UsableStreams < 2 {
		t.Errorf("implemented filter lost the second stream (usable=%d)", got.UsableStreams)
	}
	if got.RateMbps < 0.7*ideal.RateMbps {
		t.Errorf("implemented rate %v too far below ideal %v", got.RateMbps, ideal.RateMbps)
	}
}

func TestSynthesizeMIMOFitQuality(t *testing.T) {
	// Physically smooth channels (tapped delay lines): the desired filter
	// varies smoothly in frequency and the short cascade can track it. An
	// i.i.d.-per-subcarrier channel would be unfittable by construction.
	src := rng.New(3)
	carriers := mimoCarrierSet()
	sd := channel.NewRichScattering(src, 2, 2, 2, 0.5, 1e-8)
	sr := channel.NewRichScattering(src, 2, 2, 2, 0.5, 1e-6)
	rd := channel.NewRichScattering(src, 2, 2, 2, 0.5, 1e-7)
	Hsd := make([]*linalg.Matrix, len(carriers))
	Hsr := make([]*linalg.Matrix, len(carriers))
	Hrd := make([]*linalg.Matrix, len(carriers))
	for i, k := range carriers {
		Hsd[i] = sd.FrequencyResponse(k, 64)
		Hsr[i] = sr.FrequencyResponse(k, 64)
		Hrd[i] = rd.FrequencyResponse(k, 64)
	}
	FA := DesiredMIMO(Hsd, Hsr, Hrd, 50, src)
	impl := SynthesizeMIMO(FA, carriers, 64, 20e6)
	if w := impl.WorstFitErrorDB(); w > -3 {
		t.Errorf("worst pair fit %v dB too poor", w)
	}
	// Implemented responses track the desired ones.
	got := impl.ApplyImplementation(carriers, 64, 20e6)
	var sig, res float64
	for s := range FA {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				d := FA[s].At(i, j)
				r := d - got[s].At(i, j)
				sig += real(d)*real(d) + imag(d)*imag(d)
				res += real(r)*real(r) + imag(r)*imag(r)
			}
		}
	}
	if res > sig/2 {
		t.Errorf("aggregate implementation error too large: %v vs %v", res, sig)
	}
	_ = cmplx.Abs
}
