// Package golden is the regression harness for seed-fixed scalar outputs:
// a test computes a flat map of named float64 results, and Check diffs it
// against a committed testdata vector at 1e-9 absolute tolerance. Any
// intentional behavior change is re-baselined with
//
//	go test ./<pkg>/ -run <Test> -update
//
// which rewrites the golden file from the current values. JSON storage
// uses Go's shortest round-trip float encoding, so baselines are exact and
// diffs in review show the full drift.
package golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current values")

// Tolerance is the absolute diff beyond which a value is a regression.
const Tolerance = 1e-9

// Check compares got against the golden file at path (conventionally
// testdata/<name>.json relative to the calling package). With -update it
// rewrites the file instead and passes.
func Check(t *testing.T, path string, got map[string]float64) {
	t.Helper()
	for k, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("golden value %q = %v: only finite values can be baselined", k, v)
		}
	}
	if *update {
		if err := write(path, got); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: rewrote %s with %d values", path, len(got))
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file %s unreadable (baseline with -update): %v", path, err)
	}
	var want map[string]float64
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("golden file %s corrupt: %v", path, err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("golden key %q no longer produced", k)
			continue
		}
		if d := math.Abs(g - want[k]); d > Tolerance {
			t.Errorf("golden %q: got %.17g, want %.17g (|diff| %.3g > %g)",
				k, g, want[k], d, Tolerance)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("new value %q not in golden file (re-baseline with -update)", k)
		}
	}
}

func write(path string, vals map[string]float64) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(vals, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Key builds a dotted metric-style key from parts, the naming convention
// golden vectors share with the run manifest.
func Key(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "."
		}
		s += fmt.Sprint(p)
	}
	return s
}
