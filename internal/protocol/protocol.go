// Package protocol closes the loop the paper describes in Sec 4.2: the
// relay never gets genie channel knowledge — it *measures* the
// source→relay channel from AP packets it overhears, measures the
// client→relay channel (= relay→client by reciprocity) from client
// transmissions it snoops, and learns the direct AP→client channel from
// the client's explicit sounding feedback, which the AP solicits every
// 50 ms and the relay decodes off the air.
//
// Everything here runs at the waveform level through the wifi codec: the
// sounding frame, the compressed feedback frame (quantized per-subcarrier
// channel estimates, as in 802.11's compressed beamforming report), the
// relay's own preamble-based channel estimation, and finally the data
// phase through the streaming relay configured from those estimates.
//
// The exchange requires the client to hear the sounding frame directly
// (edge clients at a few dB of SNR qualify; packets are detectable well
// below the lowest data MCS). A client in a *complete* dead zone cannot
// feed back its channel until the relay bootstraps it with blind
// forwarding — a deployment detail the paper leaves implicit.
package protocol

import (
	"fmt"
	"math"
	"math/cmplx"

	"fastforward/internal/channel"
	"fastforward/internal/cnf"
	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/ofdm"
	"fastforward/internal/relay"
	"fastforward/internal/rng"
	"fastforward/internal/wifi"
)

// Feedback quantization: 802.11-style compressed reports use a handful of
// bits per angle; we quantize I/Q to int8 against a per-report scale.
const feedbackBitsPerComponent = 8

// EncodeFeedback serializes a per-subcarrier channel estimate into a
// compressed feedback payload: a common scale exponent followed by
// int8-quantized I/Q pairs.
func EncodeFeedback(h []complex128) []byte {
	var maxAbs float64
	for _, v := range h {
		if a := math.Max(math.Abs(real(v)), math.Abs(imag(v))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	// Scale so the largest component maps to 127; store the scale as a
	// float32 bit pattern. Extreme estimates (components below ~1e-37 or
	// above ~1e45) would overflow or underflow the float32 scale into a
	// value the decoder must reject, so clamp to the finite float32 range
	// and quantize with the exact scale that gets stored.
	s32 := float32(127 / maxAbs)
	if math.IsInf(float64(s32), 1) {
		s32 = math.MaxFloat32
	}
	if s32 <= 0 {
		s32 = math.SmallestNonzeroFloat32
	}
	scale := float64(s32)
	out := make([]byte, 0, 4+2*len(h))
	bits := math.Float32bits(s32)
	out = append(out, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	q := func(x float64) byte {
		v := math.Round(x * scale)
		if v > 127 {
			v = 127
		}
		if v < -127 {
			v = -127
		}
		return byte(int8(v))
	}
	for _, v := range h {
		out = append(out, q(real(v)), q(imag(v)))
	}
	return out
}

// DecodeFeedback inverts EncodeFeedback. n is the expected subcarrier
// count.
func DecodeFeedback(payload []byte, n int) ([]complex128, error) {
	if len(payload) < 4+2*n {
		return nil, fmt.Errorf("protocol: feedback payload too short (%d bytes for %d carriers)", len(payload), n)
	}
	bits := uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
	scale := float64(math.Float32frombits(bits))
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("protocol: bad feedback scale")
	}
	h := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := float64(int8(payload[4+2*i])) / scale
		im := float64(int8(payload[5+2*i])) / scale
		h[i] = complex(re, im)
	}
	return h, nil
}

// Session wires an AP, an FF relay and one client through waveform-level
// channels and runs the paper's control loop.
type Session struct {
	Params *ofdm.Params
	Codec  *wifi.Codec

	// Physical channels (ground truth, used only to propagate waveforms).
	ChSD, ChSR, ChRD *channel.SISO

	// Powers.
	TxPowerMW, NoiseMW float64

	// CancellationDB bounds the relay amplification.
	CancellationDB float64
	// RelayMaxTxDBm is the relay PA limit.
	RelayMaxTxDBm float64

	src *rng.Source

	// Relay-side state learned over the air.
	hsrEst, hrdEst, hsdEst []complex128
	ampDB                  float64
	filterTaps             []complex128
}

// NewSession builds a session over the given physical channels.
func NewSession(src *rng.Source, chSD, chSR, chRD *channel.SISO, txPowerDBm, noiseFigureDB float64) *Session {
	p := ofdm.Default20MHz()
	return &Session{
		Params:         p,
		Codec:          wifi.NewCodec(p),
		ChSD:           chSD,
		ChSR:           chSR,
		ChRD:           chRD,
		TxPowerMW:      dsp.WattsFromDBm(txPowerDBm) * 1000,
		NoiseMW:        channel.NoiseFloorMW() * dsp.Linear(noiseFigureDB),
		CancellationDB: 110,
		RelayMaxTxDBm:  txPowerDBm,
		src:            src,
	}
}

// transmit scales a frame to the TX power, propagates it over ch, and adds
// receiver noise.
func (s *Session) transmit(frame []complex128, ch *channel.SISO) []complex128 {
	wave := dsp.Scale(frame, math.Sqrt(s.TxPowerMW))
	wave = append(wave, make([]complex128, 64)...)
	rx := ch.Apply(wave)
	return channel.AWGN(s.src, rx, s.NoiseMW)
}

// estimateAt runs packet detection + CFO + LTF channel estimation at a
// receiver. The codec normalizes transmitted frames to unit power, so the
// raw LTF-based estimate carries an unknown common scale; it is calibrated
// against the *measured* receive power (what a real radio's RSSI reports)
// so the returned estimate is absolute. The measured frame power in mW is
// returned alongside.
func (s *Session) estimateAt(rx []complex128) ([]complex128, float64, error) {
	pre := ofdm.NewPreamble(s.Params)
	start, ok := ofdm.DetectPacket(rx, pre)
	if !ok {
		return nil, 0, fmt.Errorf("protocol: packet not detected")
	}
	frame := rx[start:]
	end := len(frame)
	if end > 2000 {
		end = 2000
	}
	rxPowerMW := dsp.Power(frame[:end])
	cfo := ofdm.EstimateCFO(frame, pre)
	frame = ofdm.CorrectCFO(frame, cfo, s.Params.SampleRate)
	h := ofdm.EstimateChannel(frame, pre)
	if h == nil {
		return nil, 0, fmt.Errorf("protocol: preamble truncated")
	}
	out := make([]complex128, len(s.Params.DataCarriers))
	var rawGain float64
	for i, k := range s.Params.DataCarriers {
		out[i] = ofdm.ChannelAt(h, k, s.Params.NFFT)
		rawGain += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
	}
	rawGain /= float64(len(out))
	if rawGain <= 0 {
		return nil, 0, fmt.Errorf("protocol: empty channel estimate")
	}
	// Calibrate: the true mean power gain is rxPower/txPower.
	cal := complex(math.Sqrt(rxPowerMW/s.TxPowerMW/rawGain), 0)
	for i := range out {
		out[i] *= cal
	}
	return out, rxPowerMW, nil
}

// RunSoundingExchange performs one full Sec 4.2 control round:
//
//  1. The AP transmits a sounding frame. The client estimates the direct
//     channel from its preamble; the relay estimates the AP→relay channel
//     from its own copy.
//  2. The client transmits the compressed feedback frame. The AP is the
//     addressee, but the relay snoops it: decoding the payload gives the
//     direct-channel estimate, and the frame's preamble gives the
//     client→relay channel — which by reciprocity is relay→client.
//  3. The relay computes the amplification bound and the CNF filter from
//     those estimates alone.
func (s *Session) RunSoundingExchange() error {
	mcs := wifi.MCSList()[0] // control traffic at the most robust rate
	// Sounding repeats every 50 ms, so a noise-faded attempt simply waits
	// for the next round; allow a few rounds before giving up.
	const rounds = 4

	// 1. Sounding frame, heard by client and relay.
	sounding, err := s.Codec.Encode([]byte("FF-NDP-sounding-frame"), mcs)
	if err != nil {
		return err
	}
	hsdAtClient, _, err := retryEstimate(rounds, func() ([]complex128, float64, error) {
		return s.estimateAt(s.transmit(sounding, s.ChSD))
	})
	if err != nil {
		return fmt.Errorf("client sounding estimate: %w", err)
	}
	var rxAtRelayMW float64
	s.hsrEst, rxAtRelayMW, err = retryEstimate(rounds, func() ([]complex128, float64, error) {
		return s.estimateAt(s.transmit(sounding, s.ChSR))
	})
	if err != nil {
		return fmt.Errorf("relay hsr estimate: %w", err)
	}

	// 2. Client feedback, snooped by the relay through the client→relay
	// channel (reciprocal of relay→client).
	fb, err := s.Codec.Encode(EncodeFeedback(hsdAtClient), mcs)
	if err != nil {
		return err
	}
	var decoded []byte
	for attempt := 0; attempt < rounds; attempt++ {
		atRelayFB := s.transmit(fb, s.ChRD) // reciprocity: same taps both ways
		h, _, errE := s.estimateAt(atRelayFB)
		if errE != nil {
			err = errE
			continue
		}
		res, errD := s.Codec.Decode(atRelayFB)
		if errD != nil || !res.FCSOK {
			err = fmt.Errorf("relay failed to decode snooped feedback: %v", errD)
			continue
		}
		s.hrdEst = h
		decoded = res.Payload
		err = nil
		break
	}
	if err != nil {
		return err
	}
	s.hsdEst, err = DecodeFeedback(decoded, len(s.Params.DataCarriers))
	if err != nil {
		return err
	}

	// 3. Amplification and filter from estimates. The receive power at the
	// relay is measured directly (RSSI) rather than inferred from the
	// channel estimate.
	rdGain := meanGainDB(s.hrdEst)
	s.ampDB = cnf.AmplificationLimitDB(s.CancellationDB, -rdGain)
	rxAtRelayDBm := dsp.DBm(rxAtRelayMW / 1000)
	if pa := s.RelayMaxTxDBm - rxAtRelayDBm; pa < s.ampDB {
		s.ampDB = pa
	}
	if s.ampDB < 0 {
		s.ampDB = 0
	}
	// Denoise the estimates by projecting onto the physical channel
	// manifold (a few delay-domain taps): estimation noise is white across
	// subcarriers, the true channel is not. Without this, the noisy
	// per-subcarrier phases of the weak direct-link estimate make the
	// filter target jagged and the 4-tap fit rips the passband.
	s.hsdEst = denoise(s.hsdEst, s.Params.DataCarriers, s.Params.NFFT, 8)
	s.hsrEst = denoise(s.hsrEst, s.Params.DataCarriers, s.Params.NFFT, 8)
	s.hrdEst = denoise(s.hrdEst, s.Params.DataCarriers, s.Params.NFFT, 8)
	ideal := cnf.DesiredSISO(s.hsdEst, s.hsrEst, s.hrdEst, s.ampDB)
	// 3 taps at 20 Msps plus a 1-sample pipeline keeps the relayed path's
	// delay spread comfortably inside the CP, mirroring the paper's
	// <100 ns processing budget.
	s.filterTaps = fitPreFilter(ideal, s.Params.DataCarriers, s.Params.NFFT, 3)
	return nil
}

// denoise projects a per-subcarrier channel estimate onto a short
// delay-domain model by least squares and reconstructs it — the standard
// delay-truncation smoother for OFDM channel estimates. The basis spans a
// few *negative* delays too: timing acquisition can settle a couple of
// samples after the channel's first arrival, which shifts estimate energy
// to negative delays that a causal-only basis would destroy.
func denoise(h []complex128, carriers []int, nfft, nTaps int) []complex128 {
	const lead = 4
	total := nTaps + lead
	A := linalg.NewMatrix(len(carriers), total)
	for i, k := range carriers {
		f := float64(k) / float64(nfft)
		for d := 0; d < total; d++ {
			A.Set(i, d, cmplx.Exp(complex(0, -2*math.Pi*f*float64(d-lead))))
		}
	}
	taps, err := linalg.LeastSquares(A, h, 1e-9)
	if err != nil {
		return h
	}
	return A.MulVec(taps)
}

// AmplificationDB returns the relay's learned amplification (valid after
// RunSoundingExchange).
func (s *Session) AmplificationDB() float64 { return s.ampDB }

// EstimatedChannels returns the relay's learned channel estimates.
func (s *Session) EstimatedChannels() (hsd, hsr, hrd []complex128) {
	return s.hsdEst, s.hsrEst, s.hrdEst
}

// DeliverData sends trials data frames at the given MCS through the
// configured relay (withRelay) or directly, returning the count decoded.
func (s *Session) DeliverData(payload []byte, mcs wifi.MCS, trials int, withRelay bool) (int, error) {
	if withRelay && s.filterTaps == nil {
		return 0, fmt.Errorf("protocol: run the sounding exchange first")
	}
	ok := 0
	for t := 0; t < trials; t++ {
		frame, err := s.Codec.Encode(payload, mcs)
		if err != nil {
			return ok, err
		}
		wave := dsp.Scale(frame, math.Sqrt(s.TxPowerMW))
		wave = append(wave, make([]complex128, 64)...)
		rx := s.ChSD.Apply(wave)
		if withRelay {
			ff := relay.New(relay.Config{
				SampleRate:           s.Params.SampleRate,
				AmplificationDB:      0, // gain folded into the filter taps
				PipelineDelaySamples: 1,
				PreFilterTaps:        s.filterTaps,
				RxNoiseMW:            s.NoiseMW,
				NoiseSource:          s.src.Fork(),
			})
			dsp.AddInPlace(rx, s.ChRD.Apply(ff.Process(s.ChSR.Apply(wave))))
		}
		rx = channel.AWGN(s.src, rx, s.NoiseMW)
		if res, err := s.Codec.Decode(rx); err == nil && res.FCSOK {
			ok++
		}
	}
	return ok, nil
}

// retryEstimate runs fn up to n times, returning the first success.
func retryEstimate(n int, fn func() ([]complex128, float64, error)) ([]complex128, float64, error) {
	var err error
	for i := 0; i < n; i++ {
		var h []complex128
		var p float64
		if h, p, err = fn(); err == nil {
			return h, p, nil
		}
	}
	return nil, 0, err
}

// meanGainDB is the average power gain of a channel estimate in dB.
func meanGainDB(h []complex128) float64 {
	var g float64
	for _, v := range h {
		g += real(v)*real(v) + imag(v)*imag(v)
	}
	if len(h) == 0 || g == 0 {
		return math.Inf(-1)
	}
	return dsp.DB(g / float64(len(h)))
}

// fitPreFilter least-squares fits the desired per-subcarrier response onto
// an nTaps causal FIR at the PHY rate. The target's phase typically
// carries a bulk slope the FIR can only realize as internal group delay,
// so the fit searches over a few whole-sample delays of the target and
// keeps the best: this keeps the filter's magnitude flat (no passband
// ripple) at the cost of a slightly later relayed copy — still far inside
// the CP.
func fitPreFilter(desired []complex128, carriers []int, nfft, nTaps int) []complex128 {
	A := linalg.NewMatrix(len(carriers), nTaps)
	for i, k := range carriers {
		f := float64(k) / float64(nfft)
		for n := 0; n < nTaps; n++ {
			A.Set(i, n, cmplx.Exp(complex(0, -2*math.Pi*f*float64(n))))
		}
	}
	var best []complex128
	bestRes := math.Inf(1)
	for m := 0; m < nTaps; m++ {
		b := make([]complex128, len(carriers))
		for i, k := range carriers {
			rot := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(m)/float64(nfft)))
			b[i] = desired[i] * rot
		}
		taps, err := linalg.LeastSquares(A, b, 1e-9)
		if err != nil {
			continue
		}
		fit := A.MulVec(taps)
		var res float64
		for i := range fit {
			d := fit[i] - b[i]
			res += real(d)*real(d) + imag(d)*imag(d)
		}
		if res < bestRes {
			bestRes = res
			best = taps
		}
	}
	if best == nil {
		panic("protocol: pre-filter fit failed")
	}
	return best
}
