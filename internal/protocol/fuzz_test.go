package protocol

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzDecodeFeedback parses attacker-shaped compressed CSI reports: the
// decoder must reject malformed payloads with an error, and anything it
// accepts must be finite, the right length, and re-encodable — the
// invariant the sounding exchange relies on when feedback frames arrive
// corrupted (the impair layer injects exactly that).
func FuzzDecodeFeedback(f *testing.F) {
	h := make([]complex128, 52)
	for i := range h {
		h[i] = complex(math.Sin(float64(i)), math.Cos(2*float64(i)))
	}
	f.Add(EncodeFeedback(h), 52)
	f.Add(EncodeFeedback(h[:4]), 4)
	f.Add(EncodeFeedback(make([]complex128, 8)), 8) // zero channel
	f.Add([]byte{0, 0, 0, 0}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2}, 1) // NaN scale bits

	f.Fuzz(func(t *testing.T, payload []byte, n int) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		got, err := DecodeFeedback(payload, n)
		if err != nil {
			return
		}
		if len(got) != n {
			t.Fatalf("decoded %d carriers, asked for %d", len(got), n)
		}
		for i, v := range got {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				t.Fatalf("carrier %d decoded to %v", i, v)
			}
		}
		// Round-trip: every accepted estimate must survive re-encoding.
		if _, err := DecodeFeedback(EncodeFeedback(got), n); err != nil {
			t.Fatalf("accepted estimate failed re-encode round trip: %v", err)
		}
	})
}
