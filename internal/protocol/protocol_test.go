package protocol

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/dsp"
	"fastforward/internal/rng"
	"fastforward/internal/wifi"
)

func TestFeedbackRoundTrip(t *testing.T) {
	src := rng.New(1)
	h := make([]complex128, 52)
	for i := range h {
		h[i] = src.ComplexGaussian(1e-7)
	}
	payload := EncodeFeedback(h)
	got, err := DecodeFeedback(payload, 52)
	if err != nil {
		t.Fatal(err)
	}
	// int8 quantization against the max component: relative error per
	// component bounded by ~1/127 of the largest.
	var maxAbs float64
	for _, v := range h {
		if a := cmplx.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for i := range h {
		if cmplx.Abs(got[i]-h[i]) > maxAbs/40 {
			t.Fatalf("carrier %d: %v vs %v", i, got[i], h[i])
		}
	}
}

func TestFeedbackRejectsShortPayload(t *testing.T) {
	if _, err := DecodeFeedback([]byte{1, 2, 3}, 52); err == nil {
		t.Error("short payload accepted")
	}
}

func TestFeedbackZeroChannel(t *testing.T) {
	h := make([]complex128, 8)
	got, err := DecodeFeedback(EncodeFeedback(h), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero channel must decode to zero")
		}
	}
}

func newTestSession(seed int64) *Session {
	src := rng.New(seed)
	// Edge client: ~7 dB direct SNR — enough to hear sounding frames, far
	// too little for useful data rates.
	chSD := channel.NewRayleigh(src, 3, 0.5, dsp.Linear(-75))
	chSR := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-52))
	chRD := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-58))
	return NewSession(src, chSD, chSR, chRD, 0, 8)
}

func TestSoundingExchangeLearnsChannels(t *testing.T) {
	s := newTestSession(2)
	if err := s.RunSoundingExchange(); err != nil {
		t.Fatal(err)
	}
	hsdEst, hsrEst, hrdEst := s.EstimatedChannels()

	check := func(name string, est []complex128, truth *channel.SISO, tolDB float64) {
		want := truth.ResponseVector(s.Params.DataCarriers, s.Params.NFFT)
		var sig float64
		for i := range want {
			sig += real(want[i])*real(want[i]) + imag(want[i])*imag(want[i])
		}
		// Timing acquisition may settle a sample or two away from the
		// channel's first tap; score against the best integer shift.
		best := math.Inf(1)
		for shift := -2; shift <= 2; shift++ {
			var errP float64
			for i, k := range s.Params.DataCarriers {
				rot := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(shift)/float64(s.Params.NFFT)))
				d := est[i]*rot - want[i]
				errP += real(d)*real(d) + imag(d)*imag(d)
			}
			if errP < best {
				best = errP
			}
		}
		if best == 0 {
			return
		}
		nmse := dsp.DB(best / sig)
		if nmse > tolDB {
			t.Errorf("%s estimate NMSE %.1f dB, want <= %.1f", name, nmse, tolDB)
		}
	}
	// Receiver timing acquisition can settle a sample away from the
	// channel's first tap, which shows up as a phase ramp across
	// subcarriers; compare magnitudes (and the ramp-invariant shape) by
	// allowing the best integer-delay alignment before scoring.
	// hsr/hrd estimated from strong links: clean up to timing. hsd travels
	// through the client's noisy estimate plus int8 feedback quantization,
	// and the direct link sits at single-digit SNR, so its NMSE is loose.
	check("hsr", hsrEst, s.ChSR, -15)
	check("hrd", hrdEst, s.ChRD, -15)
	check("hsd", hsdEst, s.ChSD, 0)

	if s.AmplificationDB() <= 0 {
		t.Error("relay learned no amplification headroom")
	}
}

func TestClosedLoopRelayingImprovesDelivery(t *testing.T) {
	// The whole point: with channels learned purely over the air, the
	// relay lifts an edge client from barely-BPSK to 16-QAM rates.
	s := newTestSession(3)
	if err := s.RunSoundingExchange(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 80)
	mcs := wifi.MCSList()[4] // 16-QAM 3/4: needs ~15 dB, the client has ~7
	direct, err := s.DeliverData(payload, mcs, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	relayed, err := s.DeliverData(payload, mcs, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if direct > 1 {
		t.Errorf("edge client decoded %d/5 at MCS4 directly; test premise broken", direct)
	}
	if relayed < 4 {
		t.Errorf("closed-loop relay delivered only %d/5 frames at MCS4", relayed)
	}
}

func TestDeliverDataRequiresSounding(t *testing.T) {
	s := newTestSession(4)
	if _, err := s.DeliverData(make([]byte, 10), wifi.MCSList()[0], 1, true); err == nil {
		t.Error("relaying without a sounding exchange should fail")
	}
}

func TestSoundingFailsWhenRelayCannotHearAP(t *testing.T) {
	src := rng.New(5)
	chSD := channel.NewRayleigh(src, 3, 0.5, dsp.Linear(-105))
	chSR := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-140)) // dead AP->relay
	chRD := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-58))
	s := NewSession(src, chSD, chSR, chRD, 0, 8)
	if err := s.RunSoundingExchange(); err == nil {
		t.Error("sounding should fail when the relay cannot hear the AP")
	}
}

func TestAmplificationRespectsPACap(t *testing.T) {
	// With a very strong AP->relay link, the PA cap binds: amplification
	// cannot push the relay beyond its max TX power.
	src := rng.New(6)
	chSD := channel.NewRayleigh(src, 3, 0.5, dsp.Linear(-75))
	chSR := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-30)) // very strong
	chRD := channel.NewRayleigh(src, 2, 0.5, dsp.Linear(-58))
	s := NewSession(src, chSD, chSR, chRD, 0, 8)
	if err := s.RunSoundingExchange(); err != nil {
		t.Fatal(err)
	}
	// rx at relay ~ -30 dBm, PA 0 dBm: amp <= ~30 dB.
	if s.AmplificationDB() > 35 {
		t.Errorf("amplification %v dB exceeds the PA cap regime", s.AmplificationDB())
	}
	if math.IsNaN(s.AmplificationDB()) {
		t.Error("amplification NaN")
	}
}
