package ident

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/dsp"
	"fastforward/internal/rng"
	"fastforward/internal/stats"
)

func TestPNSignatureProperties(t *testing.T) {
	sig := PNSignature(1, 80)
	if len(sig) != 80 {
		t.Fatal("length wrong")
	}
	// BPSK values only.
	for _, v := range sig {
		if v != 1 && v != -1 {
			t.Fatalf("non-BPSK value %v", v)
		}
	}
	// Deterministic per client.
	again := PNSignature(1, 80)
	for i := range sig {
		if sig[i] != again[i] {
			t.Fatal("signature not deterministic")
		}
	}
	// Distinct clients get distinct, weakly-correlated sequences.
	other := PNSignature(2, 80)
	c := dsp.Dot(sig, other)
	if cmplx.Abs(c)/80 > 0.35 {
		t.Errorf("client signatures too correlated: %v", cmplx.Abs(c)/80)
	}
}

func TestSignatureWaveformRepeatsTwice(t *testing.T) {
	w := SignatureWaveform(3, 80, 2.0)
	if len(w) != 160 {
		t.Fatal("waveform length wrong")
	}
	for i := 0; i < 80; i++ {
		if w[i] != w[80+i] {
			t.Fatal("second repetition differs")
		}
	}
	if cmplx.Abs(w[0]) != 2.0 {
		t.Errorf("amplitude %v, want 2", cmplx.Abs(w[0]))
	}
}

func TestDetectorFindsRightClient(t *testing.T) {
	src := rng.New(1)
	ids := []int{1, 2, 3, 4}
	det := NewDetector(ids, 80, 0.6)
	for _, want := range ids {
		sig := PNSignature(want, 80)
		// Channel: complex gain + delay + noise at 15 dB.
		rx := make([]complex128, 50)
		rx = append(rx, dsp.ScaleC(sig, 0.5i)...)
		rx = append(rx, make([]complex128, 30)...)
		rx = dsp.Add(rx, src.NoiseVector(len(rx), 0.25/dsp.Linear(15)))
		got, off, ok := det.Detect(rx)
		if !ok {
			t.Fatalf("client %d not detected", want)
		}
		if got != want {
			t.Fatalf("detected client %d, want %d", got, want)
		}
		if off < 48 || off > 52 {
			t.Errorf("offset %d, want ~50", off)
		}
	}
}

func TestDetectorRejectsNoise(t *testing.T) {
	src := rng.New(2)
	det := NewDetector([]int{1, 2, 3, 4}, 80, 0.6)
	misses := 0
	for i := 0; i < 20; i++ {
		rx := src.NoiseVector(400, 1)
		if _, _, ok := det.Detect(rx); ok {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/20 false detections on pure noise", misses)
	}
}

func TestDetectorRejectsForeignSignature(t *testing.T) {
	// A packet from a *different network's* client (unknown PN) must not
	// match — the design requirement that FF only relays its own network.
	src := rng.New(3)
	det := NewDetector([]int{1, 2, 3}, 80, 0.6)
	foreign := PNSignature(99, 80)
	rx := dsp.Add(foreign, src.NoiseVector(80, 0.01))
	if id, _, ok := det.Detect(rx); ok {
		t.Errorf("foreign signature matched client %d", id)
	}
}

func TestFingerprintDistancePhaseInvariant(t *testing.T) {
	src := rng.New(4)
	a := make(Fingerprint, 10)
	for i := range a {
		a[i] = src.ComplexGaussian(1)
	}
	b := make(Fingerprint, 10)
	rot := cmplx.Exp(complex(0, 1.234))
	for i := range b {
		b[i] = a[i] * rot
	}
	if d := a.Distance(b); d > 1e-6 {
		t.Errorf("phase-rotated copy should have zero distance, got %v", d)
	}
}

func TestFingerprintDistanceDiscriminates(t *testing.T) {
	src := rng.New(5)
	a := make(Fingerprint, 10)
	b := make(Fingerprint, 10)
	for i := range a {
		a[i] = src.ComplexGaussian(1)
		b[i] = src.ComplexGaussian(1)
	}
	ua, ub := a.Unit(), b.Unit()
	if d := ua.Distance(ub); d < 0.5 {
		t.Errorf("independent fingerprints too close: %v", d)
	}
}

func TestClassifierBasic(t *testing.T) {
	src := rng.New(6)
	cls := NewClassifier(AggressiveThreshold)
	chans := make([][]complex128, 4)
	carriers := stfCarriers(10)
	for c := 0; c < 4; c++ {
		ch := channel.NewRayleigh(src, 4, 0.5, 1)
		chans[c] = ch.ResponseVector(carriers, 64)
		cls.Enroll(c, Fingerprint(chans[c]))
	}
	// Clean re-measurement: classify correctly.
	for c := 0; c < 4; c++ {
		got, ok := cls.Classify(Fingerprint(chans[c]))
		if !ok || got != c {
			t.Fatalf("client %d misclassified as %d (ok=%v)", c, got, ok)
		}
	}
	// Unknown channel: reject.
	unknown := channel.NewRayleigh(src, 4, 0.5, 1).ResponseVector(carriers, 64)
	if got, ok := cls.Classify(Fingerprint(unknown)); ok {
		t.Errorf("unknown sender matched client %d", got)
	}
}

func TestClassifierScaleInvariant(t *testing.T) {
	src := rng.New(7)
	cls := NewClassifier(AggressiveThreshold)
	carriers := stfCarriers(10)
	ch := channel.NewRayleigh(src, 4, 0.5, 1).ResponseVector(carriers, 64)
	cls.Enroll(0, Fingerprint(ch))
	// Same channel 40 dB weaker (client moved the TX power, or AGC).
	weak := dsp.Scale(ch, 0.01)
	got, ok := cls.Classify(Fingerprint(weak))
	if !ok || got != 0 {
		t.Errorf("scale variation broke classification (ok=%v id=%d)", ok, got)
	}
}

func TestClassifierForget(t *testing.T) {
	src := rng.New(9)
	cls := NewClassifier(AggressiveThreshold)
	carriers := STFCarriers(10)
	chans := make([][]complex128, 4)
	for c := 0; c < 4; c++ {
		ch := channel.NewRayleigh(src, 4, 0.5, 1)
		chans[c] = ch.ResponseVector(carriers, 64)
		cls.Enroll(c, Fingerprint(chans[c]))
	}
	if n := cls.Enrolled(); n != 4 {
		t.Fatalf("Enrolled() = %d, want 4", n)
	}
	if !cls.Forget(2) {
		t.Fatal("Forget(2) = false for enrolled client")
	}
	if cls.Forget(2) {
		t.Fatal("Forget(2) = true after removal")
	}
	if n := cls.Enrolled(); n != 3 {
		t.Fatalf("Enrolled() = %d after Forget, want 3", n)
	}
	// The departed client no longer matches; the survivors still do.
	if got, ok := cls.Classify(Fingerprint(chans[2])); ok {
		t.Errorf("forgotten client still classifies as %d", got)
	}
	for _, c := range []int{0, 1, 3} {
		got, ok := cls.Classify(Fingerprint(chans[c]))
		if !ok || got != c {
			t.Errorf("client %d misclassified after Forget (ok=%v id=%d)", c, ok, got)
		}
	}
	// Re-enrollment brings the client back.
	cls.Enroll(2, Fingerprint(chans[2]))
	if got, ok := cls.Classify(Fingerprint(chans[2])); !ok || got != 2 {
		t.Errorf("re-enrolled client misclassified (ok=%v id=%d)", ok, got)
	}
}

func TestSTFCarriersMatchesStudy(t *testing.T) {
	for _, n := range []int{1, 10, 12, 20} {
		pub, priv := STFCarriers(n), stfCarriers(n)
		if len(pub) != len(priv) {
			t.Fatalf("STFCarriers(%d) length %d != stfCarriers %d", n, len(pub), len(priv))
		}
		for i := range pub {
			if pub[i] != priv[i] {
				t.Fatalf("STFCarriers(%d)[%d] = %d, want %d", n, i, pub[i], priv[i])
			}
		}
	}
	if got := len(STFCarriers(20)); got != 12 {
		t.Fatalf("STFCarriers(20) length %d, want clamp to 12", got)
	}
}

func TestStudyAggressiveVsPassive(t *testing.T) {
	// Fig 21's headline: the aggressive threshold has ~zero false
	// positives with a ~5% false-negative rate; the passive threshold
	// trades FPs for FNs.
	src := rng.New(8)
	cfg := DefaultStudyConfig(AggressiveThreshold)
	cfg.NLocations = 20
	cfg.PacketsPerClient = 150
	agg := RunStudy(src, cfg)

	src2 := rng.New(8)
	cfgP := cfg
	cfgP.Threshold = PassiveThreshold
	pas := RunStudy(src2, cfgP)

	aggFP := stats.NewCDF(agg.FalsePositivePct).Mean()
	aggFN := stats.NewCDF(agg.FalseNegativePct).Mean()
	pasFP := stats.NewCDF(pas.FalsePositivePct).Mean()
	pasFN := stats.NewCDF(pas.FalseNegativePct).Mean()

	if aggFP > 0.5 {
		t.Errorf("aggressive FP rate %v%%, want ~0", aggFP)
	}
	if aggFN > 25 || aggFN < 0.1 {
		t.Errorf("aggressive FN rate %v%%, want small but nonzero (~5%%)", aggFN)
	}
	if pasFN >= aggFN {
		t.Errorf("passive FN (%v%%) should be below aggressive FN (%v%%)", pasFN, aggFN)
	}
	if pasFP < aggFP {
		t.Errorf("passive FP (%v%%) should be >= aggressive FP (%v%%)", pasFP, aggFP)
	}
	_ = math.Inf // keep math import stable under edits
}
