package ident

import (
	"testing"

	"fastforward/internal/rng"
)

// RunStudy forks one rng stream per location up front, so the parallel
// fan-out must be bit-identical to the serial path.
func TestRunStudyParallelMatchesSerial(t *testing.T) {
	base := DefaultStudyConfig(AggressiveThreshold)
	base.NLocations = 8
	base.PacketsPerClient = 60

	serial := base
	serial.Workers = 1
	a := RunStudy(rng.New(42), serial)

	parallel := base
	parallel.Workers = 8
	b := RunStudy(rng.New(42), parallel)

	for i := 0; i < base.NLocations; i++ {
		if a.FalsePositivePct[i] != b.FalsePositivePct[i] ||
			a.FalseNegativePct[i] != b.FalseNegativePct[i] {
			t.Errorf("location %d differs: serial FP/FN %v/%v, parallel %v/%v",
				i, a.FalsePositivePct[i], a.FalseNegativePct[i],
				b.FalsePositivePct[i], b.FalseNegativePct[i])
		}
	}
}
