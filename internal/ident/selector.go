package ident

// Selector ties identification to filter selection: the relay keeps one
// constructive filter per client (Sec 6) and must pick the right one from
// the downlink signature (or uplink fingerprint) *before* the PHY header
// arrives. A packet that matches no client is not relayed at all — FF
// "should only constructively relay the packets from its own network".
type Selector[F any] struct {
	det     *Detector
	filters map[int]F
}

// NewSelector builds a selector over the network's client IDs with the
// given signature length and correlation threshold.
func NewSelector[F any](clientIDs []int, sigLen int, threshold float64) *Selector[F] {
	return &Selector[F]{
		det:     NewDetector(clientIDs, sigLen, threshold),
		filters: make(map[int]F),
	}
}

// SetFilter installs (or replaces) the constructive filter for a client.
func (s *Selector[F]) SetFilter(clientID int, f F) {
	s.filters[clientID] = f
}

// Select scans the start of a packet for a client signature and returns
// the client's filter. ok is false when no signature matches or the
// matched client has no installed filter — the relay then stays silent.
func (s *Selector[F]) Select(rx []complex128) (clientID int, filter F, ok bool) {
	var zero F
	id, _, found := s.det.Detect(rx)
	if !found {
		return 0, zero, false
	}
	f, have := s.filters[id]
	if !have {
		return id, zero, false
	}
	return id, f, true
}
