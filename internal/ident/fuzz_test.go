package ident

import (
	"testing"
)

func fuzzSamples(data []byte) []complex128 {
	n := len(data) / 4
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := int16(uint16(data[4*i]) | uint16(data[4*i+1])<<8)
		im := int16(uint16(data[4*i+2]) | uint16(data[4*i+3])<<8)
		out[i] = complex(float64(re)/8192, float64(im)/8192)
	}
	return out
}

func fuzzBytes(x []complex128) []byte {
	out := make([]byte, 4*len(x))
	for i, v := range x {
		re := int16(real(v) * 8192)
		im := int16(imag(v) * 8192)
		out[4*i] = byte(uint16(re))
		out[4*i+1] = byte(uint16(re) >> 8)
		out[4*i+2] = byte(uint16(im))
		out[4*i+3] = byte(uint16(im) >> 8)
	}
	return out
}

// FuzzDetect drives the PN-signature correlator with arbitrary waveforms:
// no panic, and any claimed detection must name a registered client at an
// in-range offset — the contract the relay's client-identification path
// assumes when impaired receivers hand it distorted captures.
func FuzzDetect(f *testing.F) {
	const sigLen = 127
	ids := []int{1, 2, 7}
	d := NewDetector(ids, sigLen, 0.5)
	// Seeds: a genuine signature (offset and clean), a foreign client's
	// signature, and silence.
	f.Add(fuzzBytes(append(make([]complex128, 33), SignatureWaveform(1, sigLen, 1.0)...)))
	f.Add(fuzzBytes(SignatureWaveform(5, sigLen, 1.0)))
	f.Add(make([]byte, 4*2*sigLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<15 {
			data = data[:1<<15]
		}
		rx := fuzzSamples(data)
		id, off, ok := d.Detect(rx)
		if !ok {
			return
		}
		if off < 0 || off >= len(rx) {
			t.Fatalf("detection offset %d outside [0,%d)", off, len(rx))
		}
		found := false
		for _, want := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("detected unregistered client %d", id)
		}
	})
}
