package ident

import (
	"math"

	"fastforward/internal/channel"
	"fastforward/internal/dsp"
	"fastforward/internal/obs"
	"fastforward/internal/par"
	"fastforward/internal/rng"
)

// This file implements the Sec 6.1 identification study behind Fig 21:
// clients at many locations, ≥1000 packets per client over an extended
// period (modeled as slow channel drift plus per-packet estimation noise),
// measuring false-positive and false-negative rates of the uplink
// fingerprint classifier for a given threshold.

// StudyConfig parameterizes the Fig 21 experiment.
type StudyConfig struct {
	// NClients per location (the paper uses 4).
	NClients int
	// NLocations of independent client placements (the paper uses 100).
	NLocations int
	// PacketsPerClient per location (the paper uses ≥1000).
	PacketsPerClient int
	// Threshold is the classifier threshold (Aggressive/PassiveThreshold).
	Threshold float64
	// SNRdB of the fingerprint measurement at the relay.
	SNRdB float64
	// DriftStd is the per-packet relative channel drift (Gaussian,
	// cumulative over the observation window).
	DriftStd float64
	// ReenrollEvery refreshes the relay's fingerprint database every this
	// many packets (0 = never). The relay learns fingerprints on the fly
	// from ongoing traffic (Sec 6), so the database tracks slow drift.
	ReenrollEvery int
	// Subcarriers is the fingerprint dimension (10 STF subcarriers).
	Subcarriers int
	// Workers bounds the sweep engine's worker pool for the per-location
	// Monte-Carlo fan-out: 1 forces the serial reference path, 0 means one
	// worker per CPU. Results are identical for every value.
	Workers int
	// Obs, when non-nil, receives the ident.* run metrics (per-location
	// classification decisions; see OBSERVABILITY.md). Recording is
	// order-independent, so metric values are identical for any Workers.
	Obs *obs.Registry
}

// DefaultStudyConfig mirrors the paper's setup.
func DefaultStudyConfig(threshold float64) StudyConfig {
	return StudyConfig{
		NClients:         4,
		NLocations:       100,
		PacketsPerClient: 1000,
		Threshold:        threshold,
		SNRdB:            20,
		DriftStd:         0.008,
		ReenrollEvery:    250,
		Subcarriers:      10,
	}
}

// StudyResult holds per-location FP and FN percentages.
type StudyResult struct {
	// FalsePositivePct[i] is the percentage of packets at location i
	// attributed to the wrong client.
	FalsePositivePct []float64
	// FalseNegativePct[i] is the percentage of packets at location i with
	// no identification.
	FalseNegativePct []float64
}

// RunStudy executes the experiment. Determinism follows the source: each
// location gets its own stream forked serially from src up front, so the
// per-location results are independent of execution order and the
// parallel fan-out (cfg.Workers) is bit-identical to the serial path.
func RunStudy(src *rng.Source, cfg StudyConfig) StudyResult {
	res := StudyResult{
		FalsePositivePct: make([]float64, cfg.NLocations),
		FalseNegativePct: make([]float64, cfg.NLocations),
	}
	defer cfg.Obs.Stage("ident.run_study")()
	locations := cfg.Obs.Counter("ident.locations", "locations")
	packets := cfg.Obs.Counter("ident.packets", "packets")
	falsePos := cfg.Obs.Counter("ident.false_positives", "packets")
	falseNeg := cfg.Obs.Counter("ident.false_negatives", "packets")
	fpPct := cfg.Obs.Histogram("ident.fp_pct", "%", obs.LinearBuckets(0, 1, 21))
	fnPct := cfg.Obs.Histogram("ident.fn_pct", "%", obs.LinearBuckets(0, 1, 21))

	carriers := stfCarriers(cfg.Subcarriers)
	srcs := make([]*rng.Source, cfg.NLocations)
	for i := range srcs {
		srcs[i] = src.Fork()
	}
	par.ForEach(cfg.NLocations, cfg.Workers, func(loc int) {
		src := srcs[loc]
		cls := NewClassifier(cfg.Threshold)
		// Per-client true channels and enrollment. Clients in the same
		// room see partially-correlated channels (shared dominant paths),
		// which is what makes false positives possible at loose
		// thresholds.
		shared := channel.NewRayleigh(src, 4, 0.5, 1).ResponseVector(carriers, 64)
		// Correlation varies by placement: tightly clustered clients (e.g.
		// on the same desk) share most of their propagation paths, which
		// is what produces false positives at loose thresholds.
		rho := 0.3 + 0.68*src.Float64()
		cs := complex(math.Sqrt(rho), 0)
		co := complex(math.Sqrt(1-rho), 0)
		chans := make([][]complex128, cfg.NClients)
		for c := 0; c < cfg.NClients; c++ {
			ch := channel.NewRayleigh(src, 4, 0.5, 1)
			own := ch.ResponseVector(carriers, 64)
			v := make([]complex128, len(own))
			for i := range v {
				v[i] = cs*shared[i] + co*own[i]
			}
			chans[c] = v
			// Enroll from a noisy measurement (the relay's DB comes from
			// real packets too).
			cls.Enroll(c, measure(src, chans[c], cfg.SNRdB))
		}
		var fp, fn, total int
		for c := 0; c < cfg.NClients; c++ {
			state := append([]complex128(nil), chans[c]...)
			for p := 0; p < cfg.PacketsPerClient; p++ {
				// Slow drift: random walk on the channel vector.
				for i := range state {
					state[i] += src.ComplexGaussian(cfg.DriftStd * cfg.DriftStd)
				}
				if cfg.ReenrollEvery > 0 && p%cfg.ReenrollEvery == cfg.ReenrollEvery-1 {
					cls.Enroll(c, measure(src, state, cfg.SNRdB))
				}
				got, ok := cls.Classify(measure(src, state, cfg.SNRdB))
				total++
				switch {
				case !ok:
					fn++
				case got != c:
					fp++
				}
			}
		}
		res.FalsePositivePct[loc] = 100 * float64(fp) / float64(total)
		res.FalseNegativePct[loc] = 100 * float64(fn) / float64(total)

		shard := obs.ShardForSeed(int64(loc))
		locations.Inc(shard)
		packets.Add(shard, uint64(total))
		falsePos.Add(shard, uint64(fp))
		falseNeg.Add(shard, uint64(fn))
		fpPct.Observe(shard, res.FalsePositivePct[loc])
		fnPct.Observe(shard, res.FalseNegativePct[loc])
	})
	return res
}

// STFCarriers returns the n measured STF subcarrier indices in the order
// the study samples them (the fleet layer fingerprints clients on the
// same comb so its identifiability matches RunStudy's). n above 12 is
// clamped; the paper's technique uses 10.
func STFCarriers(n int) []int { return stfCarriers(n) }

// Measure returns a noisy fingerprint of the channel vector at the given
// measurement SNR: per-subcarrier complex Gaussian noise scaled so the
// mean subcarrier power sits snrDB above the noise variance.
func Measure(src *rng.Source, ch []complex128, snrDB float64) Fingerprint {
	return measure(src, ch, snrDB)
}

// measure returns a noisy fingerprint of the channel vector at the given
// measurement SNR.
func measure(src *rng.Source, ch []complex128, snrDB float64) Fingerprint {
	var sig float64
	for _, v := range ch {
		sig += real(v)*real(v) + imag(v)*imag(v)
	}
	sig /= float64(len(ch))
	noiseVar := sig / dsp.Linear(snrDB)
	fp := make(Fingerprint, len(ch))
	for i, v := range ch {
		fp[i] = v + src.ComplexGaussian(noiseVar)
	}
	return fp
}

// stfCarriers returns the n measured STF subcarrier indices; the STF
// occupies every 4th subcarrier (±4, ±8, …, ±24), of which the paper's
// technique uses 10.
func stfCarriers(n int) []int {
	all := []int{-24, -20, -16, -12, -8, 8, 12, 16, 20, 24, -4, 4}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
