// Package ident implements FastForward's source/destination
// identification (Sec 6): the relay must pick the right constructive
// filter *before* the PHY header arrives, so it cannot wait for the MAC
// header. Downlink: the AP prepends a per-client pseudo-random signature
// (4 µs, repeated twice) that the relay detects by correlation. Uplink:
// clients cannot be modified, so the relay fingerprints the known STF
// preamble through each client's channel and classifies by
// phase-compensated minimum distance against its channel database.
//
// RunStudy reproduces the Sec 6.1/Fig 21 identification experiment; with
// StudyConfig.Obs set it records the ident.* run metrics of
// OBSERVABILITY.md (per-location classification outcomes), recorded
// order-independently so results match for any worker count.
package ident

import (
	"math"
	"math/cmplx"

	"fastforward/internal/dsp"
)

// PNSignature generates the deterministic per-client pseudo-random BPSK
// signature: an m-sequence from a 10-bit LFSR seeded by the client ID,
// mapped to ±1 samples. length is in samples (80 at 20 Msps for the 4 µs
// signature); the transmitted signature is the sequence repeated twice
// (Sec 6, Fig 19).
func PNSignature(clientID, length int) []complex128 {
	// Galois LFSR x^10 + x^7 + 1; seed mixed from the client ID, never 0.
	state := uint16(clientID*2654435761+0x1d) & 0x3ff
	if state == 0 {
		state = 0x2aa
	}
	out := make([]complex128, length)
	for i := range out {
		bit := state & 1
		state >>= 1
		if bit == 1 {
			state ^= 0x240 // taps at 10 and 7
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// SignatureWaveform returns the on-air downlink prefix: the signature
// repeated twice, scaled to the given amplitude.
func SignatureWaveform(clientID, length int, amplitude float64) []complex128 {
	sig := PNSignature(clientID, length)
	wave := make([]complex128, 0, 2*length)
	wave = append(wave, sig...)
	wave = append(wave, sig...)
	dsp.ScaleInPlace(wave, amplitude)
	return wave
}

// Detector matches incoming samples against a set of client signatures.
type Detector struct {
	sigLen int
	ids    []int
	sigs   [][]complex128
	// Threshold is the minimum normalized correlation (0..1) to declare a
	// match; the paper tunes this aggressively to keep false positives at
	// zero.
	Threshold float64
}

// NewDetector builds a correlation detector over the given client IDs.
func NewDetector(clientIDs []int, sigLen int, threshold float64) *Detector {
	d := &Detector{sigLen: sigLen, Threshold: threshold}
	for _, id := range clientIDs {
		d.ids = append(d.ids, id)
		d.sigs = append(d.sigs, PNSignature(id, sigLen))
	}
	return d
}

// Detect scans rx for any client signature and returns the matched client
// ID, the sample offset of the signature start and true; or (0,0,false).
// The match uses normalized correlation so it is amplitude- and
// channel-phase-invariant.
func (d *Detector) Detect(rx []complex128) (clientID, offset int, ok bool) {
	bestCorr := d.Threshold
	found := false
	for i, sig := range d.sigs {
		idx, peak := dsp.NormalizedCorrelationPeak(rx, sig)
		if idx < 0 {
			continue
		}
		if peak > bestCorr {
			bestCorr = peak
			clientID = d.ids[i]
			offset = idx
			found = true
		}
	}
	if !found {
		return 0, 0, false
	}
	return clientID, offset, true
}

// Fingerprint is a channel fingerprint: the complex channel gains measured
// on the pilot subcarriers of the STF (10 subcarriers in the paper).
type Fingerprint []complex128

// Distance returns the phase-compensated Euclidean distance between two
// fingerprints: min over φ of ||a − e^{jφ}·b||, which equals
// sqrt(||a||² + ||b||² − 2|⟨a,b⟩|). Phase compensation makes the metric
// invariant to packet-to-packet carrier phase (Sec 6, Fig 20).
func (a Fingerprint) Distance(b Fingerprint) float64 {
	if len(a) != len(b) {
		panic("ident: fingerprint length mismatch")
	}
	var ea, eb float64
	var dot complex128
	for i := range a {
		ea += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		eb += real(b[i])*real(b[i]) + imag(b[i])*imag(b[i])
		dot += a[i] * cmplx.Conj(b[i])
	}
	v := ea + eb - 2*cmplx.Abs(dot)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Unit returns the fingerprint scaled to unit norm (nil for a zero
// fingerprint). Comparing unit fingerprints makes the distance invariant
// to path loss as well as carrier phase, so one threshold works across the
// whole coverage area.
func (a Fingerprint) Unit() Fingerprint {
	var e float64
	for i := range a {
		e += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	if e == 0 {
		return nil
	}
	s := complex(1/math.Sqrt(e), 0)
	out := make(Fingerprint, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// Classifier identifies uplink senders by fingerprint matching.
type Classifier struct {
	ids []int
	db  []Fingerprint
	// Threshold is the maximum accepted normalized distance. The
	// "aggressive" setting of Fig 21 uses a small threshold: near-zero
	// false positives at the cost of ~5% false negatives.
	Threshold float64
	// AmbiguityMargin rejects a match whose runner-up is within this
	// distance of the best candidate — mistaking one client for another
	// (a false positive) applies the wrong CNF filter and can hurt SNR,
	// so ambiguous packets are better dropped (a harmless false
	// negative). This is how the aggressive tuning reaches ~zero FP.
	AmbiguityMargin float64
}

// Thresholds matching the two curves of Fig 21.
const (
	// AggressiveThreshold yields ≈zero false positives.
	AggressiveThreshold = 0.25
	// PassiveThreshold accepts more, trading false positives for fewer
	// false negatives.
	PassiveThreshold = 0.60
)

// NewClassifier builds a classifier from the relay's channel database.
// The aggressive threshold enables ambiguity rejection; the passive one
// accepts any in-threshold match.
func NewClassifier(threshold float64) *Classifier {
	c := &Classifier{Threshold: threshold}
	if threshold <= AggressiveThreshold {
		c.AmbiguityMargin = 0.15
	}
	return c
}

// Enroll records (or updates) a client's fingerprint (stored unit-
// normalized).
func (c *Classifier) Enroll(clientID int, fp Fingerprint) {
	u := fp.Unit()
	for i, id := range c.ids {
		if id == clientID {
			c.db[i] = u
			return
		}
	}
	c.ids = append(c.ids, clientID)
	c.db = append(c.db, u)
}

// Forget removes a client's fingerprint from the database, reporting
// whether it was enrolled. The fleet scheduler calls this when a client
// migrates to another relay: the paper's relays only forward packets for
// clients of their own network, so a departed client must stop matching
// here (and would otherwise shadow near-identical fingerprints as an
// ambiguity rejection). Removal preserves enrollment order, keeping
// Classify deterministic.
func (c *Classifier) Forget(clientID int) bool {
	for i, id := range c.ids {
		if id == clientID {
			c.ids = append(c.ids[:i], c.ids[i+1:]...)
			c.db = append(c.db[:i], c.db[i+1:]...)
			return true
		}
	}
	return false
}

// Enrolled returns the number of clients in the database.
func (c *Classifier) Enrolled() int { return len(c.ids) }

// Classify returns the best-matching enrolled client and true, or
// (0, false) if no client is within the threshold (a false negative when
// the sender was enrolled — harmless, the relay just doesn't forward).
// Distances are computed between unit-normalized fingerprints, so they
// range in [0, 2] regardless of signal strength.
func (c *Classifier) Classify(fp Fingerprint) (clientID int, ok bool) {
	u := fp.Unit()
	if u == nil {
		return 0, false
	}
	best, second := math.Inf(1), math.Inf(1)
	bestID := 0
	for i, ref := range c.db {
		if ref == nil {
			continue
		}
		d := u.Distance(ref)
		if d < best {
			second = best
			best = d
			bestID = c.ids[i]
		} else if d < second {
			second = d
		}
	}
	if best > c.Threshold {
		return 0, false
	}
	if second-best < c.AmbiguityMargin {
		return 0, false // ambiguous: drop rather than risk the wrong filter
	}
	return bestID, true
}
