package modulation

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64, QAM256}

func TestBitsPerSymbol(t *testing.T) {
	want := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6, QAM256: 8}
	for s, n := range want {
		if s.BitsPerSymbol() != n {
			t.Errorf("%v BitsPerSymbol = %d, want %d", s, s.BitsPerSymbol(), n)
		}
	}
}

func TestMapDemapRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range allSchemes {
		bits := make([]byte, 240*s.BitsPerSymbol()/8*8)
		// ensure multiple of bps
		bits = bits[:len(bits)/s.BitsPerSymbol()*s.BitsPerSymbol()]
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, err := Map(s, bits)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got := HardDemap(s, syms)
		if len(got) != len(bits) {
			t.Fatalf("%v: length mismatch", s)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit %d flipped on clean roundtrip", s, i)
			}
		}
	}
}

func TestUnitAveragePower(t *testing.T) {
	// Map all possible symbols for each scheme; average power must be 1.
	for _, s := range allSchemes {
		bps := s.BitsPerSymbol()
		count := 1 << bps
		bits := make([]byte, 0, count*bps)
		for v := 0; v < count; v++ {
			for k := bps - 1; k >= 0; k-- {
				bits = append(bits, byte(v>>k&1))
			}
		}
		syms, err := Map(s, bits)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for _, y := range syms {
			p += real(y)*real(y) + imag(y)*imag(y)
		}
		p /= float64(len(syms))
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("%v: average power %v, want 1", s, p)
		}
	}
}

func TestAllConstellationPointsDistinct(t *testing.T) {
	for _, s := range allSchemes {
		bps := s.BitsPerSymbol()
		count := 1 << bps
		seen := make(map[complex128]int)
		for v := 0; v < count; v++ {
			bits := make([]byte, bps)
			for k := 0; k < bps; k++ {
				bits[k] = byte(v >> (bps - 1 - k) & 1)
			}
			syms, _ := Map(s, bits)
			if prev, dup := seen[syms[0]]; dup {
				t.Fatalf("%v: bit patterns %b and %b map to same point", s, prev, v)
			}
			seen[syms[0]] = v
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// In a Gray-coded PAM axis, adjacent amplitude levels differ in exactly
	// one bit. Verify for the 16-level axis of 256-QAM.
	const bits = 4
	prev := -1
	for level := 0; level < 16; level++ {
		gray := level ^ (level >> 1)
		if prev >= 0 {
			diff := gray ^ prev
			if diff == 0 || diff&(diff-1) != 0 {
				t.Fatalf("levels %d,%d gray codes differ in != 1 bit", level-1, level)
			}
		}
		prev = gray
	}
}

func TestMapRejectsBadLength(t *testing.T) {
	if _, err := Map(QAM16, []byte{1, 0, 1}); err == nil {
		t.Error("expected error for bit count not multiple of 4")
	}
}

func TestSoftDemapSignsMatchHard(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, s := range allSchemes {
		bits := make([]byte, 60*s.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, _ := Map(s, bits)
		llrs := SoftDemap(s, syms, 0.1)
		for i, l := range llrs {
			hard := byte(0)
			if l > 0 {
				hard = 1
			}
			if hard != bits[i] {
				t.Fatalf("%v: LLR sign at %d disagrees with transmitted bit (llr=%v bit=%d)",
					s, i, l, bits[i])
			}
		}
	}
}

func TestSoftDemapNoiseScaling(t *testing.T) {
	// Lower noise variance should yield larger-magnitude LLRs.
	syms, _ := Map(QAM16, []byte{1, 0, 1, 1})
	hi := SoftDemap(QAM16, syms, 0.01)
	lo := SoftDemap(QAM16, syms, 1.0)
	for i := range hi {
		if math.Abs(hi[i]) <= math.Abs(lo[i]) {
			t.Fatalf("LLR magnitude should grow as noise shrinks: %v vs %v", hi[i], lo[i])
		}
	}
}

func TestHardDemapNoisyNearestNeighbor(t *testing.T) {
	// With noise below half the minimum distance, demap must be exact.
	r := rand.New(rand.NewSource(3))
	for _, s := range allSchemes {
		bits := make([]byte, 120*s.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, _ := Map(s, bits)
		maxNoise := MinDistance(s) / 2 * 0.9
		for i := range syms {
			angle := 2 * math.Pi * r.Float64()
			syms[i] += cmplx.Rect(maxNoise*r.Float64(), angle)
		}
		got := HardDemap(s, syms)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit error with sub-threshold noise", s)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, schemeIdx uint8) bool {
		s := allSchemes[int(schemeIdx)%len(allSchemes)]
		bps := s.BitsPerSymbol()
		bits := make([]byte, len(raw)/bps*bps)
		for i := range bits {
			bits[i] = raw[i] & 1
		}
		if len(bits) == 0 {
			return true
		}
		syms, err := Map(s, bits)
		if err != nil {
			return false
		}
		got := HardDemap(s, syms)
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
