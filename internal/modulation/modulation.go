// Package modulation implements the constellation mappings of the 802.11
// OFDM PHY: BPSK, QPSK, 16-QAM, 64-QAM and 256-QAM with Gray coding and the
// standard per-constellation normalization so that average symbol power is 1.
// It provides hard-decision and soft (approximate log-likelihood ratio)
// demapping; the soft outputs feed the Viterbi decoder.
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a constellation.
type Scheme int

// Supported constellations, in increasing spectral efficiency.
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
	QAM256
)

// String returns the constellation name.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	case QAM256:
		return "256-QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns the number of bits carried per constellation symbol.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case QAM256:
		return 8
	}
	panic("modulation: unknown scheme")
}

// norm returns the amplitude normalization factor (1/sqrt(E_avg)) for the
// square constellation so the mapped symbols have unit average power.
func (s Scheme) norm() float64 {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt(2)
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	case QAM256:
		return 1 / math.Sqrt(170)
	}
	panic("modulation: unknown scheme")
}

// pamLevels returns the per-axis PAM order (sqrt of constellation size).
func (s Scheme) pamLevels() int {
	switch s {
	case BPSK:
		return 0 // special-cased: real axis only
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 8
	case QAM256:
		return 16
	}
	panic("modulation: unknown scheme")
}

// grayToPAM maps a Gray-coded index of b bits to the PAM amplitude
// {-(2^b-1), ..., -1, +1, ..., +(2^b-1)} following the 802.11 convention
// (bit pattern 0..0 maps to the most negative level).
func grayToPAM(gray, bits int) float64 {
	// Convert Gray code to binary.
	bin := gray
	for shift := 1; shift < bits; shift <<= 1 {
		bin ^= bin >> shift
	}
	return float64(2*bin - ((1 << bits) - 1))
}

// pamToGray inverts grayToPAM for hard decisions: nearest level, then
// binary→Gray.
func pamToGray(v float64, bits int) int {
	levels := 1 << bits
	// level index = round((v + (levels-1)) / 2), clamped.
	idx := int(math.Round((v + float64(levels-1)) / 2))
	if idx < 0 {
		idx = 0
	}
	if idx >= levels {
		idx = levels - 1
	}
	return idx ^ (idx >> 1) // binary to Gray
}

// Map modulates bits (values 0/1) into constellation symbols. The bit count
// must be a multiple of BitsPerSymbol.
func Map(s Scheme, bits []byte) ([]complex128, error) {
	bps := s.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("modulation: %d bits not a multiple of %d", len(bits), bps)
	}
	syms := make([]complex128, len(bits)/bps)
	if s == BPSK {
		for i, b := range bits {
			if b == 0 {
				syms[i] = -1
			} else {
				syms[i] = 1
			}
		}
		return syms, nil
	}
	half := bps / 2
	n := s.norm()
	for i := range syms {
		chunk := bits[i*bps : (i+1)*bps]
		var gi, gq int
		for k := 0; k < half; k++ {
			gi = gi<<1 | int(chunk[k])
			gq = gq<<1 | int(chunk[half+k])
		}
		re := grayToPAM(gi, half)
		im := grayToPAM(gq, half)
		syms[i] = complex(re*n, im*n)
	}
	return syms, nil
}

// HardDemap makes hard decisions on received symbols and returns the bits.
func HardDemap(s Scheme, syms []complex128) []byte {
	bps := s.BitsPerSymbol()
	bits := make([]byte, 0, len(syms)*bps)
	if s == BPSK {
		for _, y := range syms {
			if real(y) >= 0 {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
		return bits
	}
	half := bps / 2
	n := s.norm()
	for _, y := range syms {
		gi := pamToGray(real(y)/n, half)
		gq := pamToGray(imag(y)/n, half)
		for k := half - 1; k >= 0; k-- {
			bits = append(bits, byte(gi>>k&1))
		}
		for k := half - 1; k >= 0; k-- {
			bits = append(bits, byte(gq>>k&1))
		}
	}
	return bits
}

// SoftDemap computes per-bit log-likelihood ratios (positive = bit 1 more
// likely) using the max-log approximation, scaled by 1/noiseVar. These LLRs
// feed the soft-decision Viterbi decoder. noiseVar must be positive.
func SoftDemap(s Scheme, syms []complex128, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	bps := s.BitsPerSymbol()
	llrs := make([]float64, 0, len(syms)*bps)
	if s == BPSK {
		for _, y := range syms {
			llrs = append(llrs, 4*real(y)/noiseVar)
		}
		return llrs
	}
	half := bps / 2
	n := s.norm()
	levels := 1 << half
	// Precompute PAM amplitudes per Gray index.
	amps := make([]float64, levels)
	for g := 0; g < levels; g++ {
		amps[g] = grayToPAM(g, half) * n
	}
	axisLLR := func(v float64) []float64 {
		out := make([]float64, half)
		for bit := 0; bit < half; bit++ {
			min0, min1 := math.Inf(1), math.Inf(1)
			for g := 0; g < levels; g++ {
				d := v - amps[g]
				d2 := d * d
				if g>>(half-1-bit)&1 == 1 {
					if d2 < min1 {
						min1 = d2
					}
				} else {
					if d2 < min0 {
						min0 = d2
					}
				}
			}
			out[bit] = (min0 - min1) / noiseVar
		}
		return out
	}
	for _, y := range syms {
		llrs = append(llrs, axisLLR(real(y))...)
		llrs = append(llrs, axisLLR(imag(y))...)
	}
	return llrs
}

// MinDistance returns the minimum Euclidean distance between distinct
// constellation points — useful for analytic SNR thresholds.
func MinDistance(s Scheme) float64 {
	if s == BPSK {
		return 2
	}
	return 2 * s.norm()
}
