// Package rng provides deterministic, seedable random sources for the
// simulation: complex Gaussian noise (thermal noise, transmitter noise),
// Rayleigh/Rician multipath tap generation, random bits, and random unitary
// matrices for MIMO channel synthesis. Every experiment in the harness is
// reproducible because all randomness flows through a seeded Source.
package rng

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Source is a deterministic random source for simulation components.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent Source from this one; useful for giving each
// simulated device its own stream while keeping the experiment reproducible.
func (s *Source) Fork() *Source {
	return New(s.r.Int63())
}

// ItemSeed derives a decorrelated seed for work item i of an experiment
// seeded with base. Parallel sweeps (internal/par) give every item its own
// Source seeded this way instead of drawing from a shared sequential
// stream, which makes results independent of execution order — and hence
// bit-identical for any worker count. The mixer is splitmix64's
// finalizer, so neighboring (base, i) pairs map to well-separated streams.
func ItemSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Keep the seed non-negative so it round-trips through APIs that
	// treat seeds as int63.
	return int64(z >> 1)
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Norm returns a standard normal sample.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// Bits returns n uniformly random bits as a byte slice of 0/1 values.
func (s *Source) Bits(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(s.r.Intn(2))
	}
	return b
}

// ComplexGaussian returns one circularly-symmetric complex Gaussian sample
// with total variance (power) sigma2: real and imaginary parts each have
// variance sigma2/2.
func (s *Source) ComplexGaussian(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// NoiseVector returns n complex Gaussian noise samples with average power
// sigma2 per sample.
func (s *Source) NoiseVector(n int, sigma2 float64) []complex128 {
	v := make([]complex128, n)
	sd := math.Sqrt(sigma2 / 2)
	for i := range v {
		v[i] = complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
	}
	return v
}

// RayleighTap returns a zero-mean complex Gaussian tap with average power p
// — the classical Rayleigh-fading multipath coefficient.
func (s *Source) RayleighTap(p float64) complex128 {
	return s.ComplexGaussian(p)
}

// RicianTap returns a Rician-fading tap with average power p and K-factor k
// (ratio of line-of-sight power to scattered power). The LOS component gets
// a uniformly random phase.
func (s *Source) RicianTap(p, k float64) complex128 {
	losP := p * k / (1 + k)
	scatP := p / (1 + k)
	los := cmplx.Rect(math.Sqrt(losP), 2*math.Pi*s.r.Float64())
	return los + s.ComplexGaussian(scatP)
}

// UniformPhase returns exp(jθ) with θ uniform in [0,2π).
func (s *Source) UniformPhase() complex128 {
	return cmplx.Exp(complex(0, 2*math.Pi*s.r.Float64()))
}

// RandomUnitary returns an n×n Haar-ish random unitary matrix (via
// Gram-Schmidt on a complex Gaussian matrix), flattened row-major. It is
// used to synthesize rich-scattering MIMO channels and to seed the CNF
// filter optimizer with random rotations.
func (s *Source) RandomUnitary(n int) [][]complex128 {
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		for j := range m[i] {
			m[i][j] = s.ComplexGaussian(1)
		}
	}
	// Gram-Schmidt over rows.
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			var proj complex128
			for j := 0; j < n; j++ {
				proj += m[i][j] * cmplx.Conj(m[k][j])
			}
			for j := 0; j < n; j++ {
				m[i][j] -= proj * m[k][j]
			}
		}
		var norm float64
		for j := 0; j < n; j++ {
			norm += real(m[i][j])*real(m[i][j]) + imag(m[i][j])*imag(m[i][j])
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// Degenerate (probability zero); fall back to a basis vector.
			m[i][i] = 1
			continue
		}
		inv := complex(1/norm, 0)
		for j := 0; j < n; j++ {
			m[i][j] *= inv
		}
	}
	return m
}

// Shuffle shuffles a slice of ints in place.
func (s *Source) Shuffle(v []int) {
	s.r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
}
