package rng

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.ComplexGaussian(1) != b.ComplexGaussian(1) {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(1)
	f := a.Fork()
	// Fork is deterministic given the parent's state.
	b := New(1)
	g := b.Fork()
	for i := 0; i < 10; i++ {
		if f.Float64() != g.Float64() {
			t.Fatal("forks of identical parents must match")
		}
	}
}

func TestComplexGaussianPower(t *testing.T) {
	s := New(7)
	const n = 200000
	var p float64
	for i := 0; i < n; i++ {
		v := s.ComplexGaussian(2.5)
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= n
	if math.Abs(p-2.5) > 0.05 {
		t.Errorf("average power %v, want 2.5", p)
	}
}

func TestNoiseVector(t *testing.T) {
	s := New(3)
	v := s.NoiseVector(100000, 0.5)
	var p float64
	for _, x := range v {
		p += real(x)*real(x) + imag(x)*imag(x)
	}
	p /= float64(len(v))
	if math.Abs(p-0.5) > 0.02 {
		t.Errorf("noise power %v, want 0.5", p)
	}
}

func TestRicianTapKFactor(t *testing.T) {
	s := New(11)
	const n = 100000
	k := 10.0
	var mean complex128
	var p float64
	for i := 0; i < n; i++ {
		v := s.RicianTap(1, k)
		mean += v
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= n
	if math.Abs(p-1) > 0.03 {
		t.Errorf("Rician power %v, want 1", p)
	}
	// With random LOS phase the mean should be near zero even with high K.
	if cmplx.Abs(mean)/n > 0.02 {
		t.Errorf("Rician mean %v should be near 0", cmplx.Abs(mean)/n)
	}
}

func TestUniformPhaseUnitMagnitude(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if math.Abs(cmplx.Abs(s.UniformPhase())-1) > 1e-12 {
			t.Fatal("UniformPhase must have unit magnitude")
		}
	}
}

func TestRandomUnitary(t *testing.T) {
	s := New(9)
	for _, n := range []int{1, 2, 4} {
		u := s.RandomUnitary(n)
		// U·U* = I
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot complex128
				for k := 0; k < n; k++ {
					dot += u[i][k] * cmplx.Conj(u[j][k])
				}
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(dot-want) > 1e-10 {
					t.Fatalf("n=%d: row dot (%d,%d) = %v, want %v", n, i, j, dot, want)
				}
			}
		}
	}
}

func TestBits(t *testing.T) {
	s := New(2)
	b := s.Bits(1000)
	ones := 0
	for _, v := range b {
		if v != 0 && v != 1 {
			t.Fatal("bits must be 0/1")
		}
		ones += int(v)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("bit balance off: %d ones of 1000", ones)
	}
}
