package ofdm

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
)

func TestLTEParams(t *testing.T) {
	p := LTE20MHz()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Normal CP: 144 samples at 30.72 Msps = 4.6875 µs (the paper quotes
	// 4.69 µs).
	if got := p.CPDuration(); math.Abs(got-4.6875e-6) > 1e-12 {
		t.Errorf("LTE CP %v, want 4.6875us", got)
	}
	// 15 kHz subcarrier spacing.
	if got := p.SubcarrierSpacing(); math.Abs(got-15e3) > 1e-9 {
		t.Errorf("subcarrier spacing %v, want 15 kHz", got)
	}
	if p.NumUsed() != 1200 {
		t.Errorf("used subcarriers %d, want 1200", p.NumUsed())
	}
	// The paper's ~5000 ft delay-spread budget.
	if ft := p.GuardFeet(); ft < 4400 || ft > 5000 {
		t.Errorf("guard distance %v ft, want ~4600-4700", ft)
	}
}

func TestLTERelayLatencyBudget(t *testing.T) {
	// The same 100 ns relay that barely fits WiFi's 400 ns CP has over
	// 4.5 µs of headroom in LTE: a relayed copy delayed 1 µs still causes
	// no ISI.
	wifi := Default20MHz()
	lte := LTE20MHz()
	const relayDelay = 1e-6
	if relayDelay < wifi.MaxDelaySpreadSeconds() {
		t.Fatal("test premise broken: 1us should exceed the WiFi CP")
	}
	if relayDelay > lte.MaxDelaySpreadSeconds() {
		t.Fatal("1us should be well within the LTE CP")
	}
}

func TestLTECPAbsorbsLongMultipath(t *testing.T) {
	// Waveform-level: a reflection delayed 100 samples (3.3 µs! far beyond
	// WiFi's CP) is absorbed by the LTE CP with no ISI.
	p := LTE20MHz()
	mod := NewModulator(p)
	dem := NewDemodulator(p)
	data1 := make([]complex128, p.NumData())
	data2 := make([]complex128, p.NumData())
	for i := range data1 {
		if i%2 == 0 {
			data1[i], data2[i] = 1, -1
		} else {
			data1[i], data2[i] = -1, 1
		}
	}
	burst, err := mod.Burst(append(append([]complex128{}, data1...), data2...))
	if err != nil {
		t.Fatal(err)
	}
	const delay = 100
	rx := dsp.Add(burst, dsp.Scale(dsp.Delay(burst, delay), 0.5))
	got, _, err := dem.Symbol(rx[p.SymbolLen():])
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range p.DataCarriers[:200] {
		h := 1 + 0.5*cmplx.Exp(complex(0, -2*math.Pi*float64(k)*delay/float64(p.NFFT)))
		want := data2[i] * h
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("subcarrier %d: ISI despite LTE CP (got %v want %v)", k, got[i], want)
		}
	}
}
