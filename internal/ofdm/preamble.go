package ofdm

import (
	"math"

	"fastforward/internal/fft"
)

// The 802.11 legacy training sequences. The short training field (STF)
// occupies 12 subcarriers and produces a time-domain signal with period 16
// samples; ten repetitions fill 160 samples (8 µs at 20 Msps). The long
// training field (LTF) occupies 52 subcarriers, is known at the receiver,
// and drives both fine CFO estimation and channel estimation.

// stfBins returns the frequency-domain STF: subcarriers ±4,±8,…,±24 with
// the standard QPSK values, scaled so the time signal has roughly unit
// average power.
func stfBins(nfft int) []complex128 {
	bins := make([]complex128, nfft)
	s := complex(math.Sqrt(13.0/6.0), 0)
	set := func(k int, v complex128) {
		if k >= 0 {
			bins[k] = v * s
		} else {
			bins[nfft+k] = v * s
		}
	}
	plus := complex(1, 1)
	minus := complex(-1, -1)
	set(-24, plus)
	set(-20, minus)
	set(-16, plus)
	set(-12, minus)
	set(-8, minus)
	set(-4, plus)
	set(4, minus)
	set(8, minus)
	set(12, plus)
	set(16, plus)
	set(20, plus)
	set(24, plus)
	return bins
}

// ltfSequence is the 802.11 long training symbol, subcarriers -26..26.
var ltfSequence = []int{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, // -26..-1
	0,                                                                                         // DC
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1, // 1..26
}

// ltfBins returns the frequency-domain LTF over nfft bins. Beyond the
// legacy ±26 span it adds the 802.11n HT-LTF edge subcarriers (±27, ±28) so
// the full 56-subcarrier PHY of the paper's prototype can be channel-sounded
// from the preamble.
func ltfBins(nfft int) []complex128 {
	bins := make([]complex128, nfft)
	for i, v := range ltfSequence {
		k := i - 26
		if v == 0 {
			continue
		}
		bins[binIndex(k, nfft)] = complex(float64(v), 0)
	}
	// HT extension: values from the 802.11n HT-LTF (20 MHz).
	bins[binIndex(-28, nfft)] = 1
	bins[binIndex(-27, nfft)] = 1
	bins[binIndex(27, nfft)] = -1
	bins[binIndex(28, nfft)] = -1
	return bins
}

func binIndex(k, nfft int) int {
	if k >= 0 {
		return k
	}
	return nfft + k
}

// Preamble holds the waveform and metadata of the legacy training fields.
type Preamble struct {
	p *Params
	// STF is 160 samples: 10 repetitions of the 16-sample short symbol.
	STF []complex128
	// LTF is 160 samples: a 32-sample CP followed by two 64-sample long
	// training symbols.
	LTF []complex128
	// LTFBins is the known frequency-domain LTF used for channel estimation.
	LTFBins []complex128
	// ShortPeriod is the STF repetition period in samples (16).
	ShortPeriod int
}

// NewPreamble builds the training fields for the given numerology (which
// must be 64-point for the standard sequences).
func NewPreamble(p *Params) *Preamble {
	stfTD := fft.Inverse(stfBins(p.NFFT))
	// Ten repetitions of the first quarter (period NFFT/4 = 16).
	period := p.NFFT / 4
	stf := make([]complex128, 0, 10*period)
	for r := 0; r < 10; r++ {
		stf = append(stf, stfTD[:period]...)
	}
	lb := ltfBins(p.NFFT)
	ltfTD := fft.Inverse(lb)
	ltf := make([]complex128, 0, p.NFFT/2+2*p.NFFT)
	ltf = append(ltf, ltfTD[p.NFFT/2:]...) // 32-sample double-length CP
	ltf = append(ltf, ltfTD...)
	ltf = append(ltf, ltfTD...)
	return &Preamble{
		p:           p,
		STF:         stf,
		LTF:         ltf,
		LTFBins:     lb,
		ShortPeriod: period,
	}
}

// Samples returns the concatenated STF+LTF waveform (320 samples, 16 µs).
func (pr *Preamble) Samples() []complex128 {
	out := make([]complex128, 0, len(pr.STF)+len(pr.LTF))
	out = append(out, pr.STF...)
	out = append(out, pr.LTF...)
	return out
}

// Len returns the preamble length in samples.
func (pr *Preamble) Len() int { return len(pr.STF) + len(pr.LTF) }

// LTFSymbolOffsets returns the offsets (relative to preamble start) of the
// two clean 64-sample LTF training symbols.
func (pr *Preamble) LTFSymbolOffsets() (int, int) {
	base := len(pr.STF) + pr.p.NFFT/2
	return base, base + pr.p.NFFT
}
