package ofdm

import (
	"fmt"

	"fastforward/internal/fft"
)

// Modulator converts data symbols to OFDM time-domain waveforms.
type Modulator struct {
	p *Params
}

// NewModulator returns a modulator for the given numerology.
func NewModulator(p *Params) *Modulator { return &Modulator{p: p} }

// Symbol maps one OFDM symbol's data constellation points (len == NumData,
// ordered by ascending subcarrier index in DataCarriers) plus the standard
// pilots into a CP-prefixed time-domain symbol of SymbolLen samples.
func (m *Modulator) Symbol(data []complex128) ([]complex128, error) {
	p := m.p
	if len(data) != p.NumData() {
		return nil, fmt.Errorf("ofdm: got %d data symbols, want %d", len(data), p.NumData())
	}
	bins := make([]complex128, p.NFFT)
	for i, k := range p.DataCarriers {
		bins[p.bin(k)] = data[i]
	}
	for i, k := range p.PilotCarriers {
		bins[p.bin(k)] = p.PilotValues[i]
	}
	td := fft.Inverse(bins)
	return addCP(td, p.CPLen), nil
}

// SymbolFromBins maps a full set of NFFT frequency bins (caller-controlled,
// e.g. for preambles) to a CP-prefixed time symbol.
func (m *Modulator) SymbolFromBins(bins []complex128) ([]complex128, error) {
	if len(bins) != m.p.NFFT {
		return nil, fmt.Errorf("ofdm: got %d bins, want %d", len(bins), m.p.NFFT)
	}
	td := fft.Inverse(bins)
	return addCP(td, m.p.CPLen), nil
}

// Burst modulates a sequence of OFDM symbols back to back. data must hold a
// multiple of NumData constellation points.
func (m *Modulator) Burst(data []complex128) ([]complex128, error) {
	nd := m.p.NumData()
	if len(data)%nd != 0 {
		return nil, fmt.Errorf("ofdm: burst of %d symbols is not a whole number of OFDM symbols", len(data))
	}
	nSym := len(data) / nd
	out := make([]complex128, 0, nSym*m.p.SymbolLen())
	for s := 0; s < nSym; s++ {
		sym, err := m.Symbol(data[s*nd : (s+1)*nd])
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}

func addCP(td []complex128, cp int) []complex128 {
	out := make([]complex128, 0, len(td)+cp)
	out = append(out, td[len(td)-cp:]...)
	out = append(out, td...)
	return out
}

// Demodulator recovers subcarrier values from time-domain OFDM symbols.
type Demodulator struct {
	p *Params
}

// NewDemodulator returns a demodulator for the given numerology.
func NewDemodulator(p *Params) *Demodulator { return &Demodulator{p: p} }

// Symbol demodulates one CP-prefixed symbol (SymbolLen samples) and returns
// the raw (unequalized) data-subcarrier values and pilot-subcarrier values.
func (d *Demodulator) Symbol(samples []complex128) (data, pilots []complex128, err error) {
	p := d.p
	if len(samples) < p.SymbolLen() {
		return nil, nil, fmt.Errorf("ofdm: symbol needs %d samples, got %d", p.SymbolLen(), len(samples))
	}
	bins := fft.Forward(samples[p.CPLen : p.CPLen+p.NFFT])
	data = make([]complex128, p.NumData())
	for i, k := range p.DataCarriers {
		data[i] = bins[p.bin(k)]
	}
	pilots = make([]complex128, len(p.PilotCarriers))
	for i, k := range p.PilotCarriers {
		pilots[i] = bins[p.bin(k)]
	}
	return data, pilots, nil
}

// Bins demodulates one symbol and returns all NFFT frequency bins.
func (d *Demodulator) Bins(samples []complex128) ([]complex128, error) {
	p := d.p
	if len(samples) < p.SymbolLen() {
		return nil, fmt.Errorf("ofdm: symbol needs %d samples, got %d", p.SymbolLen(), len(samples))
	}
	return fft.Forward(samples[p.CPLen : p.CPLen+p.NFFT]), nil
}
