package ofdm

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

func defaultSetup() (*Params, *Modulator, *Demodulator, *Preamble) {
	p := Default20MHz()
	return p, NewModulator(p), NewDemodulator(p), NewPreamble(p)
}

func randQPSK(n int, seed int64) []complex128 {
	s := rng.New(seed)
	v := make([]complex128, n)
	vals := []complex128{
		complex(1/math.Sqrt2, 1/math.Sqrt2),
		complex(1/math.Sqrt2, -1/math.Sqrt2),
		complex(-1/math.Sqrt2, 1/math.Sqrt2),
		complex(-1/math.Sqrt2, -1/math.Sqrt2),
	}
	for i := range v {
		v[i] = vals[s.Intn(4)]
	}
	return v
}

func TestParams(t *testing.T) {
	p := Default20MHz()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumData() != 52 {
		t.Errorf("data subcarriers = %d, want 52", p.NumData())
	}
	if p.NumUsed() != 56 {
		t.Errorf("used subcarriers = %d, want 56", p.NumUsed())
	}
	if p.SymbolLen() != 72 {
		t.Errorf("symbol length = %d, want 72", p.SymbolLen())
	}
	if got := p.CPDuration(); math.Abs(got-400e-9) > 1e-15 {
		t.Errorf("CP duration = %v, want 400ns", got)
	}
	if got := p.SymbolDuration(); math.Abs(got-3.6e-6) > 1e-15 {
		t.Errorf("symbol duration = %v, want 3.6us", got)
	}
	if got := p.SubcarrierSpacing(); math.Abs(got-312500) > 1e-9 {
		t.Errorf("subcarrier spacing = %v, want 312.5kHz", got)
	}
	// CP distance budget ~400 feet (paper Sec 3.1).
	if ft := p.GuardFeet(); ft < 380 || ft > 420 {
		t.Errorf("guard distance %v ft, want ~400", ft)
	}
}

func TestParamsValidateCatchesErrors(t *testing.T) {
	p := Default20MHz()
	p.NFFT = 60
	if p.Validate() == nil {
		t.Error("non-power-of-two NFFT not caught")
	}
	p = Default20MHz()
	p.DataCarriers[0] = p.DataCarriers[1] // duplicate
	if p.Validate() == nil {
		t.Error("duplicate subcarrier not caught")
	}
	p = Default20MHz()
	p.CPLen = 64
	if p.Validate() == nil {
		t.Error("CP >= NFFT not caught")
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	p, mod, dem, _ := defaultSetup()
	data := randQPSK(p.NumData(), 1)
	td, err := mod.Symbol(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(td) != p.SymbolLen() {
		t.Fatalf("symbol length %d", len(td))
	}
	got, pilots, err := dem.Symbol(td)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("data subcarrier %d: %v vs %v", i, got[i], data[i])
		}
	}
	for i := range pilots {
		if cmplx.Abs(pilots[i]-p.PilotValues[i]) > 1e-9 {
			t.Fatalf("pilot %d corrupted", i)
		}
	}
}

func TestCyclicPrefixIsCyclic(t *testing.T) {
	p, mod, _, _ := defaultSetup()
	td, _ := mod.Symbol(randQPSK(p.NumData(), 2))
	for i := 0; i < p.CPLen; i++ {
		if cmplx.Abs(td[i]-td[p.NFFT+i]) > 1e-12 {
			t.Fatalf("CP sample %d does not match symbol tail", i)
		}
	}
}

func TestCPAbsorbsMultipath(t *testing.T) {
	// Key OFDM property the paper leans on (Fig 4): a delayed copy within
	// the CP only multiplies each subcarrier by a phase — no ISI.
	p, mod, dem, _ := defaultSetup()
	data1 := randQPSK(p.NumData(), 3)
	data2 := randQPSK(p.NumData(), 4)
	burst, err := mod.Burst(append(append([]complex128{}, data1...), data2...))
	if err != nil {
		t.Fatal(err)
	}
	// Two-path channel: direct + copy delayed by 5 samples (< CP=8).
	delayed := dsp.Delay(burst, 5)
	rx := dsp.Add(burst, dsp.Scale(delayed, 0.5))

	// Demodulate the SECOND symbol; with ISI it would be corrupted by the
	// first symbol's tail.
	got, _, err := dem.Symbol(rx[p.SymbolLen():])
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-subcarrier channel: 1 + 0.5·exp(-j2πk·5/64).
	for i, k := range p.DataCarriers {
		h := 1 + 0.5*cmplx.Exp(complex(0, -2*math.Pi*float64(k)*5/float64(p.NFFT)))
		want := data2[i] * h
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("subcarrier %d: got %v want %v — CP failed to absorb in-CP multipath", k, got[i], want)
		}
	}
}

func TestDelayBeyondCPCausesISI(t *testing.T) {
	// Complement: a delay beyond the CP must corrupt the flat-channel model.
	p, mod, dem, _ := defaultSetup()
	data1 := randQPSK(p.NumData(), 5)
	data2 := randQPSK(p.NumData(), 6)
	burst, _ := mod.Burst(append(append([]complex128{}, data1...), data2...))
	delayed := dsp.Delay(burst, 20) // > CP of 8
	rx := dsp.Add(burst, dsp.Scale(delayed, 0.7))
	got, _, _ := dem.Symbol(rx[p.SymbolLen():])
	var worst float64
	for i, k := range p.DataCarriers {
		h := 1 + 0.7*cmplx.Exp(complex(0, -2*math.Pi*float64(k)*20/float64(p.NFFT)))
		want := data2[i] * h
		if e := cmplx.Abs(got[i] - want); e > worst {
			worst = e
		}
	}
	if worst < 0.05 {
		t.Errorf("expected visible ISI for delay > CP, worst deviation %v", worst)
	}
}

func TestPreambleStructure(t *testing.T) {
	p, _, _, pr := defaultSetup()
	if len(pr.STF) != 160 {
		t.Errorf("STF length %d, want 160", len(pr.STF))
	}
	if len(pr.LTF) != 160 {
		t.Errorf("LTF length %d, want 160", len(pr.LTF))
	}
	// STF periodicity: period 16.
	for i := 0; i+16 < len(pr.STF); i++ {
		if cmplx.Abs(pr.STF[i]-pr.STF[i+16]) > 1e-12 {
			t.Fatal("STF is not 16-periodic")
		}
	}
	// LTF symbols identical.
	o1, o2 := pr.LTFSymbolOffsets()
	rel1 := o1 - len(pr.STF)
	rel2 := o2 - len(pr.STF)
	for i := 0; i < p.NFFT; i++ {
		if cmplx.Abs(pr.LTF[rel1+i]-pr.LTF[rel2+i]) > 1e-12 {
			t.Fatal("LTF symbols differ")
		}
	}
	// LTF guard is the tail of the long symbol (cyclic).
	for i := 0; i < p.NFFT/2; i++ {
		if cmplx.Abs(pr.LTF[i]-pr.LTF[p.NFFT/2+p.NFFT/2+i]) > 1e-12 {
			t.Fatal("LTF guard is not cyclic")
		}
	}
}

func TestDetectPacket(t *testing.T) {
	_, _, _, pr := defaultSetup()
	noise := rng.New(7)
	pad := 333
	rx := noise.NoiseVector(pad, 1e-6)
	rx = append(rx, pr.Samples()...)
	rx = append(rx, noise.NoiseVector(200, 1e-6)...)
	idx, ok := DetectPacket(rx, pr)
	if !ok {
		t.Fatal("packet not detected")
	}
	if idx != pad {
		t.Errorf("detected at %d, want %d", idx, pad)
	}
}

func TestDetectPacketNoiseOnly(t *testing.T) {
	_, _, _, pr := defaultSetup()
	noise := rng.New(8)
	rx := noise.NoiseVector(1000, 1)
	if _, ok := DetectPacket(rx, pr); ok {
		t.Error("false detection on pure noise")
	}
}

func TestDetectPacketWithNoiseAndCFO(t *testing.T) {
	_, _, _, pr := defaultSetup()
	noise := rng.New(9)
	pad := 217
	sig := pr.Samples()
	sig, _ = dsp.ApplyCFO(sig, 80e3, 20e6, 0.4)
	sigPow := dsp.Power(sig)
	rx := noise.NoiseVector(pad, sigPow/100) // 20 dB SNR
	rx = append(rx, dsp.Add(sig, noise.NoiseVector(len(sig), sigPow/100))...)
	rx = append(rx, noise.NoiseVector(100, sigPow/100)...)
	idx, ok := DetectPacket(rx, pr)
	if !ok {
		t.Fatal("packet not detected at 20dB SNR with CFO")
	}
	if d := idx - pad; d < -2 || d > 2 {
		t.Errorf("detected at %d, want %d±2", idx, pad)
	}
}

func TestCFOEstimation(t *testing.T) {
	p, _, _, pr := defaultSetup()
	for _, cfo := range []float64{-200e3, -31e3, 0, 12e3, 137e3, 300e3} {
		tx := pr.Samples()
		rx, _ := dsp.ApplyCFO(tx, cfo, p.SampleRate, 0)
		got := EstimateCFO(rx, pr)
		if math.Abs(got-cfo) > 50 {
			t.Errorf("CFO %v: estimated %v (err %v Hz)", cfo, got, got-cfo)
		}
	}
}

func TestCFOEstimationUnderNoise(t *testing.T) {
	p, _, _, pr := defaultSetup()
	noise := rng.New(10)
	cfo := 93e3
	tx := pr.Samples()
	rx, _ := dsp.ApplyCFO(tx, cfo, p.SampleRate, 0)
	rx = dsp.Add(rx, noise.NoiseVector(len(rx), dsp.Power(tx)/1000)) // 30 dB
	got := EstimateCFO(rx, pr)
	if math.Abs(got-cfo) > 500 {
		t.Errorf("CFO estimate %v, want %v", got, cfo)
	}
}

func TestCorrectCFOInvertsApply(t *testing.T) {
	p, _, _, pr := defaultSetup()
	tx := pr.Samples()
	rx, _ := dsp.ApplyCFO(tx, 150e3, p.SampleRate, 0)
	fixed := CorrectCFO(rx, 150e3, p.SampleRate)
	for i := range tx {
		if cmplx.Abs(fixed[i]-tx[i]) > 1e-9 {
			t.Fatalf("CFO correction failed at %d", i)
		}
	}
}

func TestChannelEstimationFlat(t *testing.T) {
	p, _, _, pr := defaultSetup()
	g := complex(0.6, -0.3)
	rx := dsp.ScaleC(pr.Samples(), g)
	h := EstimateChannel(rx, pr)
	for _, k := range p.UsedCarriers() {
		if k < -26 || k > 26 {
			continue // legacy LTF spans ±26 only
		}
		if cmplx.Abs(ChannelAt(h, k, p.NFFT)-g) > 1e-9 {
			t.Fatalf("flat channel estimate wrong at subcarrier %d: %v", k, ChannelAt(h, k, p.NFFT))
		}
	}
}

func TestChannelEstimationMultipath(t *testing.T) {
	p, _, _, pr := defaultSetup()
	taps := []complex128{0.8, 0, 0.4i, 0, 0, -0.2}
	rx := dsp.FilterSame(pr.Samples(), taps)
	h := EstimateChannel(rx, pr)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		var want complex128
		for d, tap := range taps {
			want += tap * cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(d)/float64(p.NFFT)))
		}
		if cmplx.Abs(ChannelAt(h, k, p.NFFT)-want) > 1e-9 {
			t.Fatalf("multipath estimate wrong at %d: %v vs %v", k, ChannelAt(h, k, p.NFFT), want)
		}
	}
}

func TestEqualizerRecoversData(t *testing.T) {
	p, mod, dem, pr := defaultSetup()
	data := randQPSK(p.NumData(), 11)
	sym, _ := mod.Symbol(data)
	tx := append(pr.Samples(), sym...)
	taps := []complex128{0.9, 0.3i, -0.1}
	rx := dsp.FilterSame(tx, taps)

	h := EstimateChannel(rx, pr)
	// The legacy LTF only sounds ±26; extend the estimate to ±28 by copying
	// the edge (adequate for smooth channels; wifi layer restricts to ±26).
	for _, k := range []int{27, 28} {
		h[binIndex(k, p.NFFT)] = h[binIndex(26, p.NFFT)]
		h[binIndex(-k, p.NFFT)] = h[binIndex(-26, p.NFFT)]
	}
	eq := NewEqualizer(p, h)
	raw, pilots, err := dem.Symbol(rx[pr.Len():])
	if err != nil {
		t.Fatal(err)
	}
	got := eq.Symbol(raw, pilots)
	for i, k := range p.DataCarriers {
		if k > 26 || k < -26 {
			continue
		}
		if cmplx.Abs(got[i]-data[i]) > 1e-6 {
			t.Fatalf("equalized subcarrier %d: %v vs %v", k, got[i], data[i])
		}
	}
}

func TestEqualizerTracksResidualPhase(t *testing.T) {
	// A small residual CFO shows up as a common phase rotation; pilots must
	// remove it.
	p, mod, dem, pr := defaultSetup()
	data := randQPSK(p.NumData(), 12)
	sym, _ := mod.Symbol(data)
	tx := append(pr.Samples(), sym...)
	rot := cmplx.Exp(complex(0, 0.22)) // common phase error on the data symbol
	rx := append(dsp.Clone(tx[:pr.Len()]), dsp.ScaleC(tx[pr.Len():], rot)...)

	h := EstimateChannel(rx, pr)
	eq := NewEqualizer(p, h)
	raw, pilots, _ := dem.Symbol(rx[pr.Len():])
	got := eq.Symbol(raw, pilots)
	for i, k := range p.DataCarriers {
		if k > 26 || k < -26 {
			continue
		}
		if cmplx.Abs(got[i]-data[i]) > 1e-6 {
			t.Fatalf("CPE not removed at subcarrier %d: %v vs %v", k, got[i], data[i])
		}
	}
}

func TestBurstLength(t *testing.T) {
	p, mod, _, _ := defaultSetup()
	data := randQPSK(p.NumData()*5, 13)
	b, err := mod.Burst(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 5*p.SymbolLen() {
		t.Errorf("burst length %d, want %d", len(b), 5*p.SymbolLen())
	}
	if _, err := mod.Burst(data[:10]); err == nil {
		t.Error("expected error for partial symbol")
	}
}
