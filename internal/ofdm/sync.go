package ofdm

import (
	"math"
	"math/cmplx"

	"fastforward/internal/fft"
)

// DetectPacket locates a packet start in rx using Schmidl-Cox style
// autocorrelation over the STF's repetition period, then refines the
// estimate by cross-correlating against the known STF start. Returns the
// index of the first preamble sample and true, or (0, false) if no packet
// crosses the detection threshold.
func DetectPacket(rx []complex128, pr *Preamble) (int, bool) {
	period := pr.ShortPeriod
	window := len(pr.STF) / 2
	if len(rx) < len(pr.STF)+period {
		return 0, false
	}
	// Autocorrelation metric M(d) = |P(d)|²/R(d)² with running sums, plus
	// the window energy R(d). Pure-noise windows can fluke a high M, so
	// detection requires both M above threshold and meaningful energy.
	limit := len(rx) - window - period
	metric := make([]float64, limit+1)
	energy := make([]float64, limit+1)
	var p complex128
	var r float64
	var rmax float64
	for d := 0; d <= limit; d++ {
		if d == 0 {
			for i := 0; i < window; i++ {
				p += rx[i+period] * cmplx.Conj(rx[i])
				r += sq(rx[i+period])
			}
		} else {
			i := d - 1
			p -= rx[i+period] * cmplx.Conj(rx[i])
			r -= sq(rx[i+period])
			j := d + window - 1
			p += rx[j+period] * cmplx.Conj(rx[j])
			r += sq(rx[j+period])
		}
		energy[d] = r
		if r > rmax {
			rmax = r
		}
		if r > 1e-30 {
			metric[d] = cmplx.Abs(p) * cmplx.Abs(p) / (r * r)
		}
	}
	if rmax <= 0 {
		return 0, false
	}
	// Find the first sustained plateau: M > 0.5 with significant energy for
	// half an STF period's worth of consecutive positions. The analytic
	// plateau height is (S/(S+N))², so 0.5 admits packets down to ~5 dB
	// SNR; the 8-sample run and the energy gate keep noise from fluking it.
	const need = 8
	plateau := -1
	run := 0
	for d := 0; d <= limit; d++ {
		if metric[d] > 0.5 && energy[d] > 0.1*rmax {
			run++
			if run >= need {
				plateau = d - need + 1
				break
			}
		} else {
			run = 0
		}
	}
	if plateau < 0 {
		return 0, false
	}
	// The STF's 16-sample periodicity makes STF cross-correlation ambiguous,
	// and CFO decorrelates long coherent sums. So: (1) estimate a coarse CFO
	// from the autocorrelation phase in the middle of the plateau (CFO shows
	// up as exactly this phase and the estimate is timing-invariant), (2)
	// locally derotate, (3) locate the non-repetitive 160-sample LTF.
	mid := plateau + window/2
	if mid > limit {
		mid = limit
	}
	var pm complex128
	for i := mid; i < mid+window && i+period < len(rx); i++ {
		pm += rx[i+period] * cmplx.Conj(rx[i])
	}
	coarseCFO := cmplx.Phase(pm) / (2 * math.Pi * float64(period)) * pr.p.SampleRate

	// Search for the LTF start around the plateau. At threshold 0.5 the
	// plateau can trigger while the window only partially overlaps the STF
	// (up to ~2 periods early), so search generously on both sides.
	lo := plateau - period
	if lo < 0 {
		lo = 0
	}
	hi := plateau + len(pr.STF) + 4*period
	ltfRef := pr.LTF
	if hi+len(ltfRef) > len(rx) {
		hi = len(rx) - len(ltfRef)
	}
	if hi < lo {
		return 0, false
	}
	// Derotate the search region once.
	region := CorrectCFO(rx[lo:minI(hi+len(ltfRef), len(rx))], coarseCFO, pr.p.SampleRate)
	ltfE := energyOf(ltfRef)
	bestC := -1.0
	ltfPos := -1
	for d := 0; d+len(ltfRef) <= len(region); d++ {
		var c complex128
		for i, v := range ltfRef {
			c += region[d+i] * cmplx.Conj(v)
		}
		e := energyOf(region[d : d+len(ltfRef)])
		if e <= 0 {
			continue
		}
		m := cmplx.Abs(c) / math.Sqrt(e*ltfE)
		if m > bestC {
			bestC = m
			ltfPos = lo + d
		}
	}
	if ltfPos < 0 || bestC < 0.4 {
		return 0, false
	}
	start := ltfPos - len(pr.STF)
	if start < 0 {
		start = 0
	}
	return start, true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sq(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}

func energyOf(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// EstimateCFO estimates the carrier frequency offset in Hz from a received
// preamble that starts at rx[0]. It combines the coarse STF estimate
// (period-16 autocorrelation, wide range) with the fine LTF estimate
// (period-64 autocorrelation, 4x finer). Estimation range is ±SampleRate/32
// (±625 kHz at 20 Msps) which covers practical oscillator offsets.
func EstimateCFO(rx []complex128, pr *Preamble) float64 {
	p := pr.p
	period := pr.ShortPeriod
	// Coarse from STF: correlate segments one period apart, skipping the
	// first two periods (AGC settling in real hardware; keeps symmetry).
	// A capture shorter than the STF bounds the correlation to what's
	// there (zero samples yields phase 0 — no offset evidence).
	stfLen := len(pr.STF)
	if len(rx) < stfLen {
		stfLen = len(rx)
	}
	var acc complex128
	for i := 2 * period; i+period < stfLen; i++ {
		acc += rx[i+period] * cmplx.Conj(rx[i])
	}
	coarse := cmplx.Phase(acc) / (2 * math.Pi * float64(period)) * p.SampleRate

	// Fine from LTF: the two long symbols are NFFT apart.
	o1, o2 := pr.LTFSymbolOffsets()
	if o2+p.NFFT > len(rx) {
		return coarse
	}
	var acc2 complex128
	for i := 0; i < p.NFFT; i++ {
		acc2 += rx[o2+i] * cmplx.Conj(rx[o1+i])
	}
	fine := cmplx.Phase(acc2) / (2 * math.Pi * float64(p.NFFT)) * p.SampleRate
	// Fine has range ±SampleRate/(2·NFFT); unwrap it near the coarse value.
	rangeFine := p.SampleRate / float64(p.NFFT)
	n := math.Round((coarse - fine) / rangeFine)
	return fine + n*rangeFine
}

// CorrectCFO removes a CFO of cfoHz from rx (starting at phase 0 at rx[0]).
func CorrectCFO(rx []complex128, cfoHz float64, sampleRate float64) []complex128 {
	out := make([]complex128, len(rx))
	step := -2 * math.Pi * cfoHz / sampleRate
	ph := 0.0
	for i, v := range rx {
		out[i] = v * cmplx.Exp(complex(0, ph))
		ph += step
	}
	return out
}

// EstimateChannel computes the per-subcarrier channel estimate from the two
// LTF symbols of a synchronized, CFO-corrected preamble starting at rx[0].
// It returns H over all NFFT bins (zero where the LTF has no energy).
func EstimateChannel(rx []complex128, pr *Preamble) []complex128 {
	p := pr.p
	o1, o2 := pr.LTFSymbolOffsets()
	if o2+p.NFFT > len(rx) {
		return nil
	}
	b1 := fft.Forward(rx[o1 : o1+p.NFFT])
	b2 := fft.Forward(rx[o2 : o2+p.NFFT])
	h := make([]complex128, p.NFFT)
	for i := 0; i < p.NFFT; i++ {
		ref := pr.LTFBins[i]
		if ref == 0 {
			continue
		}
		h[i] = (b1[i] + b2[i]) / (2 * ref)
	}
	return h
}

// ChannelAt returns the channel estimate for logical subcarrier k from an
// NFFT-length estimate vector.
func ChannelAt(h []complex128, k, nfft int) complex128 {
	return h[binIndex(k, nfft)]
}

// Equalizer applies per-subcarrier zero-forcing equalization with
// pilot-based common-phase-error (CPE) tracking, the standard receiver
// structure for 802.11 OFDM.
type Equalizer struct {
	p *Params
	h []complex128 // channel estimate over NFFT bins
}

// NewEqualizer builds an equalizer from an NFFT-length channel estimate.
func NewEqualizer(p *Params, h []complex128) *Equalizer {
	return &Equalizer{p: p, h: h}
}

// Symbol equalizes one demodulated symbol's raw data and pilot subcarrier
// values. It estimates the residual common phase from the pilots and
// removes it, returning equalized data symbols.
func (e *Equalizer) Symbol(data, pilots []complex128) []complex128 {
	p := e.p
	// CPE estimate: average phase of pilot / (H·expected).
	var acc complex128
	for i, k := range p.PilotCarriers {
		hk := e.h[p.bin(k)]
		if hk == 0 {
			continue
		}
		acc += (pilots[i] / hk) * cmplx.Conj(p.PilotValues[i])
	}
	cpe := complex(1, 0)
	if acc != 0 {
		cpe = acc / complex(cmplx.Abs(acc), 0)
	}
	out := make([]complex128, len(data))
	for i, k := range p.DataCarriers {
		hk := e.h[p.bin(k)]
		if hk == 0 {
			out[i] = 0
			continue
		}
		out[i] = data[i] / hk / cpe
	}
	return out
}

// SNREstimate returns the per-subcarrier post-equalization SNR estimate in
// dB given the channel estimate and the post-FFT per-subcarrier noise
// variance (NFFT times the per-sample noise power for white noise).
func (e *Equalizer) SNREstimate(noiseVar float64) []float64 {
	p := e.p
	out := make([]float64, p.NumData())
	for i, k := range p.DataCarriers {
		hk := e.h[p.bin(k)]
		g := real(hk)*real(hk) + imag(hk)*imag(hk)
		if noiseVar <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = 10 * math.Log10(g/noiseVar)
	}
	return out
}
