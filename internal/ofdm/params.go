// Package ofdm implements the 20 MHz OFDM physical layer that both the
// simulated WiFi endpoints and the FastForward analyses are built on: a
// 64-point FFT with a 400 ns (8-sample) cyclic prefix and 56 used
// subcarriers (52 data + 4 pilots), matching the paper's prototype PHY
// (Sec 4.3). It provides symbol modulation/demodulation, the 802.11
// short/long training fields, packet detection, carrier-frequency-offset
// estimation and correction, LTF channel estimation and pilot-tracked
// equalization.
package ofdm

import "math"

// Params describes the OFDM numerology. All lengths are in samples at
// SampleRate.
type Params struct {
	// NFFT is the FFT length (subcarrier count including unused bins).
	NFFT int
	// CPLen is the cyclic prefix length in samples.
	CPLen int
	// SampleRate in samples/second (equals the channel bandwidth for
	// critically sampled OFDM).
	SampleRate float64
	// DataCarriers lists the logical subcarrier indices (negative and
	// positive, excluding DC) that carry data symbols.
	DataCarriers []int
	// PilotCarriers lists the subcarrier indices carrying pilots.
	PilotCarriers []int
	// PilotValues holds the BPSK pilot symbol for each pilot carrier.
	PilotValues []complex128
}

// Default20MHz returns the paper's PHY: 20 Msps, 64-point FFT, 8-sample
// (400 ns) cyclic prefix, 56 used subcarriers of which 4 are pilots
// (±7, ±21, as in 802.11).
func Default20MHz() *Params {
	p := &Params{
		NFFT:          64,
		CPLen:         8,
		SampleRate:    20e6,
		PilotCarriers: []int{-21, -7, 7, 21},
		PilotValues:   []complex128{1, 1, 1, -1},
	}
	for k := -28; k <= 28; k++ {
		if k == 0 || k == -21 || k == -7 || k == 7 || k == 21 {
			continue
		}
		p.DataCarriers = append(p.DataCarriers, k)
	}
	return p
}

// LTE20MHz returns an LTE-like numerology: 30.72 Msps, 2048-point FFT
// (15 kHz subcarrier spacing), 1200 used subcarriers and a 144-sample
// (4.69 µs) normal cyclic prefix. The paper's constructive relaying is
// OFDM-generic (Sec 1: "applicable to any OFDM based standard"); the long
// LTE CP gives the relay more than ten times WiFi's latency budget.
func LTE20MHz() *Params {
	p := &Params{
		NFFT:       2048,
		CPLen:      144,
		SampleRate: 30.72e6,
	}
	// Cell-specific reference signals stand in for pilots: every 50th
	// subcarrier.
	for k := -600; k <= 600; k++ {
		if k == 0 {
			continue
		}
		if k%50 == 0 {
			p.PilotCarriers = append(p.PilotCarriers, k)
			p.PilotValues = append(p.PilotValues, 1)
			continue
		}
		p.DataCarriers = append(p.DataCarriers, k)
	}
	return p
}

// NumData returns the number of data subcarriers per OFDM symbol.
func (p *Params) NumData() int { return len(p.DataCarriers) }

// NumUsed returns the total used (data+pilot) subcarrier count.
func (p *Params) NumUsed() int { return len(p.DataCarriers) + len(p.PilotCarriers) }

// SymbolLen returns the length of one OFDM symbol with CP, in samples.
func (p *Params) SymbolLen() int { return p.NFFT + p.CPLen }

// SymbolDuration returns the duration of one OFDM symbol (with CP) in
// seconds.
func (p *Params) SymbolDuration() float64 {
	return float64(p.SymbolLen()) / p.SampleRate
}

// CPDuration returns the cyclic prefix duration in seconds (400 ns for the
// default PHY).
func (p *Params) CPDuration() float64 {
	return float64(p.CPLen) / p.SampleRate
}

// SubcarrierSpacing returns the spacing between adjacent subcarriers in Hz.
func (p *Params) SubcarrierSpacing() float64 {
	return p.SampleRate / float64(p.NFFT)
}

// bin maps a logical subcarrier index (…,-2,-1,1,2,…) to an FFT bin.
func (p *Params) bin(k int) int {
	if k >= 0 {
		return k
	}
	return p.NFFT + k
}

// SubcarrierFrequency returns the baseband frequency of logical subcarrier
// k in Hz (negative for negative subcarriers).
func (p *Params) SubcarrierFrequency(k int) float64 {
	return float64(k) * p.SubcarrierSpacing()
}

// UsedCarriers returns all used subcarrier indices (data then pilots),
// sorted ascending.
func (p *Params) UsedCarriers() []int {
	out := make([]int, 0, p.NumUsed())
	out = append(out, p.DataCarriers...)
	out = append(out, p.PilotCarriers...)
	sortInts(out)
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// MaxDelaySpreadSeconds returns the largest extra multipath delay the CP
// absorbs without inter-symbol interference.
func (p *Params) MaxDelaySpreadSeconds() float64 { return p.CPDuration() }

// Validate checks internal consistency of the parameters.
func (p *Params) Validate() error {
	switch {
	case p.NFFT <= 0 || p.NFFT&(p.NFFT-1) != 0:
		return errParams("NFFT must be a positive power of two")
	case p.CPLen < 0 || p.CPLen >= p.NFFT:
		return errParams("CPLen must be in [0, NFFT)")
	case p.SampleRate <= 0:
		return errParams("SampleRate must be positive")
	case len(p.PilotCarriers) != len(p.PilotValues):
		return errParams("pilot carriers and values must align")
	}
	seen := map[int]bool{0: true}
	for _, k := range p.UsedCarriers() {
		if k <= -p.NFFT/2 || k >= p.NFFT/2 {
			return errParams("subcarrier index out of range")
		}
		if seen[k] {
			return errParams("duplicate subcarrier index")
		}
		seen[k] = true
	}
	return nil
}

type errParams string

func (e errParams) Error() string { return "ofdm: " + string(e) }

// GuardFeet converts the CP duration to the equivalent propagation distance
// in feet (c = 983,571,056 ft/s); the paper quotes ~400 ft for WiFi.
func (p *Params) GuardFeet() float64 {
	const feetPerSecond = 983571056.4
	return p.CPDuration() * feetPerSecond
}

// Ceil returns the least integer >= x as an int.
func Ceil(x float64) int { return int(math.Ceil(x)) }
