package ofdm

import (
	"testing"
)

// fuzzSamples reinterprets fuzz bytes as int16 I/Q pairs scaled to ~unit
// power — the convention all waveform fuzz targets in this repo share, so
// corpus entries look like plausible baseband instead of ±1e300 garbage.
func fuzzSamples(data []byte) []complex128 {
	n := len(data) / 4
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := int16(uint16(data[4*i]) | uint16(data[4*i+1])<<8)
		im := int16(uint16(data[4*i+2]) | uint16(data[4*i+3])<<8)
		out[i] = complex(float64(re)/8192, float64(im)/8192)
	}
	return out
}

func fuzzBytes(x []complex128) []byte {
	out := make([]byte, 4*len(x))
	for i, v := range x {
		re := int16(real(v) * 8192)
		im := int16(imag(v) * 8192)
		out[4*i] = byte(uint16(re))
		out[4*i+1] = byte(uint16(re) >> 8)
		out[4*i+2] = byte(uint16(im))
		out[4*i+3] = byte(uint16(im) >> 8)
	}
	return out
}

// FuzzDetectPacket drives the STF autocorrelation sync with arbitrary
// waveforms: it must never panic, never report a start outside the buffer,
// and must still fire on the genuine preamble embedded in a seed.
func FuzzDetectPacket(f *testing.F) {
	p := Default20MHz()
	pre := NewPreamble(p)
	// Seeds: the real preamble (padded), pure silence, a truncated STF, and
	// a DC-offset ramp that defeats naive normalization.
	clean := append(make([]complex128, 100), pre.Samples()...)
	clean = append(clean, make([]complex128, 100)...)
	f.Add(fuzzBytes(clean))
	f.Add(make([]byte, 2048))
	f.Add(fuzzBytes(pre.Samples()[:len(pre.STF)/2]))
	ramp := make([]complex128, 512)
	for i := range ramp {
		ramp[i] = complex(float64(i%17)/17, 0.5)
	}
	f.Add(fuzzBytes(ramp))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		rx := fuzzSamples(data)
		start, ok := DetectPacket(rx, pre)
		if ok && (start < 0 || start >= len(rx)) {
			t.Fatalf("DetectPacket start %d outside [0,%d)", start, len(rx))
		}
	})
}

// FuzzEstimateCFO exercises the LTF-based CFO estimator on arbitrary
// input: finite estimate, no panic, even on buffers shorter than the LTF.
func FuzzEstimateCFO(f *testing.F) {
	p := Default20MHz()
	pre := NewPreamble(p)
	f.Add(fuzzBytes(pre.Samples()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<15 {
			data = data[:1<<15]
		}
		cfo := EstimateCFO(fuzzSamples(data), pre)
		if cfo != cfo {
			t.Fatal("EstimateCFO returned NaN")
		}
	})
}
