package relayd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"fastforward/internal/obs"
	"fastforward/internal/relay"
	"fastforward/internal/rng"
)

// testParams is a comfortably-admissible session: strong cancellation
// keeps its residual weight tiny, so the PA headroom binds.
func testParams(seed int64) SessionParams {
	return SessionParams{
		SampleRateHz: 20e6, BlockSamples: 256, CancelTaps: 24, CNFTaps: 16,
		CFOHz: 1500, Seed: seed,
		CancellationDB: 85, RDAttenDB: 50, PAHeadroomDB: 40, RxOverNoiseDB: 30,
	}
}

// noisyParams is a session whose residual dominates its own floor
// (β = 0.5): a handful of them exhaust the shared budget.
func noisyParams(seed int64) SessionParams {
	p := testParams(seed)
	p.CancellationDB, p.RxOverNoiseDB = 55, 52
	return p
}

func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.New()
	}
	srv := New(cfg)
	t.Cleanup(srv.Close)
	return srv, cfg.Registry
}

// pipeSession opens an in-process session against srv over net.Pipe.
func pipeSession(srv *Server, p SessionParams) (*Client, error) {
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	return NewClientConn(cs, p)
}

// runVerifiedSession streams nBlocks through the daemon and compares
// every output block bit-for-bit against a solo reference chain built
// from the same seed and the daemon's granted amplification.
func runVerifiedSession(srv *Server, seed int64, nBlocks int) error {
	p := testParams(seed)
	c, err := pipeSession(srv, p)
	if err != nil {
		return err
	}
	ref, refCancel := BuildSessionChain(p, c.Accept().AmpDB)
	src := rng.New(seed ^ 0x77)
	n := p.BlockSamples
	tx := src.NoiseVector(nBlocks*n, 1)
	rx := src.NoiseVector(nBlocks*n, 1)
	out := make([]complex128, n)
	want := make([]complex128, n)
	for b := 0; b < nBlocks; b++ {
		off := b * n
		if err := c.Process(out, rx[off:off+n], tx[off:off+n]); err != nil {
			return fmt.Errorf("block %d: %w", b, err)
		}
		copy(want, rx[off:off+n])
		refCancel.SetReference(tx[off : off+n])
		ref.Process(want)
		for j := range want {
			if out[j] != want[j] {
				return fmt.Errorf("seed %d block %d sample %d: daemon %v, solo %v (bit-exact required)",
					seed, b, j, out[j], want[j])
			}
		}
	}
	st, err := c.Close()
	if err != nil {
		return err
	}
	if st.Blocks != uint64(nBlocks) || st.Samples != uint64(nBlocks*n) {
		return fmt.Errorf("stats = %+v, want %d blocks / %d samples", st, nBlocks, nBlocks*n)
	}
	return nil
}

// TestConcurrentSessionsBitIdentical is the daemon's core correctness
// property: N concurrent sessions share one batch executor, and every
// session's output is bit-identical to its own solo chain. Runs under
// -race via the Makefile race target.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	const nSessions, nBlocks = 4, 6
	srv, reg := newTestServer(t, DefaultConfig())
	errc := make(chan error, nSessions)
	for i := 0; i < nSessions; i++ {
		go func(seed int64) { errc <- runVerifiedSession(srv, seed, nBlocks) }(int64(100 + i))
	}
	for i := 0; i < nSessions; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// The daemon releases before it writes STATS (the wire Release
	// contract), so the client can return from Close before the handler
	// has counted the STATS frame; wait for the handlers to unwind before
	// reading terminal counters.
	waitFor(t, "all sessions to release", func() bool { return srv.Sessions() == 0 })
	waitFor(t, "all completions to be counted", func() bool {
		return reg.Counter("relayd.sessions_completed", "sessions").Value() == nSessions
	})
	waitFor(t, "all stats frames to be counted", func() bool {
		return reg.Counter("relayd.frames_out", "frames").Value() == nSessions*(nBlocks+1)
	})
	checks := []struct {
		name string
		want uint64
	}{
		{"relayd.sessions_admitted", nSessions},
		{"relayd.sessions_completed", nSessions},
		{"relayd.frames_in", nSessions * (nBlocks + 1)},  // DATA + DONE
		{"relayd.frames_out", nSessions * (nBlocks + 1)}, // OUT + STATS
	}
	for _, c := range checks {
		if got := reg.Counter(c.name, "x").Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestAdmissionRefusalAtResidualBudgetBoundary mirrors the daemon's
// admissions into a local relay.BudgetAccount fed the same sessions in
// the same order: the daemon must refuse at exactly the admission the
// account refuses, with the budget refusal code, and releasing one
// admitted session must reopen exactly one slot.
func TestAdmissionRefusalAtResidualBudgetBoundary(t *testing.T) {
	alone := relay.ChooseAmplificationResidualDB(55, 50, 40, 52, true)
	cfg := DefaultConfig()
	cfg.MaxSessions = 0 // only the physics gate refuses
	cfg.MinAmpDB = alone.AmpDB - 2
	srv, reg := newTestServer(t, cfg)
	mirror := relay.NewBudgetAccount(cfg.MinAmpDB)

	var clients []*Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	refusedAt := -1
	for i := 0; i < 64; i++ {
		key := strconv.Itoa(i)
		dec, mirrorErr := mirror.Admit(key, noisyParams(int64(i)).budget())
		c, err := pipeSession(srv, noisyParams(int64(i)))
		if mirrorErr == nil {
			if err != nil {
				t.Fatalf("admission %d: mirror admitted at %.3f dB, daemon refused: %v", i, dec.AmpDB, err)
			}
			if c.Accept().AmpDB != dec.AmpDB {
				t.Fatalf("admission %d: daemon granted %v dB, mirror %v dB (must be bit-exact)",
					i, c.Accept().AmpDB, dec.AmpDB)
			}
			clients = append(clients, c)
			continue
		}
		// The mirror refused: the daemon must too, with the budget code.
		if err == nil {
			t.Fatalf("admission %d: mirror refused (%v), daemon accepted", i, mirrorErr)
		}
		var ref *RefusedError
		if !errors.As(err, &ref) || ref.Code != RefuseBudget {
			t.Fatalf("admission %d: want RefusedError code %q, got %v", i, RefuseBudget, err)
		}
		refusedAt = i
		break
	}
	if refusedAt < 1 {
		t.Fatalf("budget never refused within 64 identical noisy sessions (refusedAt=%d)", refusedAt)
	}
	if got := reg.Counter("relayd.sessions_refused.budget", "sessions").Value(); got != 1 {
		t.Fatalf("relayd.sessions_refused.budget = %d, want 1", got)
	}

	// Release the last admitted session on both sides: the same candidate
	// must now be admitted, with the mirror's grant.
	last := len(clients) - 1
	if _, err := clients[last].Close(); err != nil {
		t.Fatalf("closing admitted session: %v", err)
	}
	clients = clients[:last]
	mirror.Release(strconv.Itoa(last))
	waitFor(t, "released session to leave the daemon", func() bool { return srv.Sessions() == last })

	dec, err := mirror.Admit("retry", noisyParams(999).budget())
	if err != nil {
		t.Fatalf("mirror refused the retry after release: %v", err)
	}
	c, err := pipeSession(srv, noisyParams(999))
	if err != nil {
		t.Fatalf("daemon refused the retry after release: %v", err)
	}
	if c.Accept().AmpDB != dec.AmpDB {
		t.Fatalf("retry granted %v dB, mirror %v dB", c.Accept().AmpDB, dec.AmpDB)
	}
	clients = append(clients, c)
}

// TestDegradeMode checks the soft admission policy end to end: the
// daemon's (grant, degraded) pair must bit-match a mirrored
// relay.BudgetAccount.AdmitDegraded sequence, and degraded admissions
// must be flagged in the ACCEPT frame and the metrics.
func TestDegradeMode(t *testing.T) {
	alone := relay.ChooseAmplificationResidualDB(55, 50, 40, 52, true)
	cfg := DefaultConfig()
	cfg.Degrade = true
	cfg.MinAmpDB = alone.AmpDB - 6 // room for degraded grants
	srv, reg := newTestServer(t, cfg)
	mirror := relay.NewBudgetAccount(cfg.MinAmpDB)

	degradedSeen := uint64(0)
	var clients []*Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		dec, degraded, mirrorErr := mirror.AdmitDegraded(strconv.Itoa(i), noisyParams(int64(i)).budget())
		c, err := pipeSession(srv, noisyParams(int64(i)))
		if mirrorErr != nil {
			if err == nil {
				t.Fatalf("admission %d: mirror refused (%v), daemon accepted", i, mirrorErr)
			}
			break
		}
		if err != nil {
			t.Fatalf("admission %d: mirror admitted, daemon refused: %v", i, err)
		}
		acc := c.Accept()
		if acc.AmpDB != dec.AmpDB || acc.Degraded != degraded {
			t.Fatalf("admission %d: daemon (%v dB, degraded=%v), mirror (%v dB, degraded=%v)",
				i, acc.AmpDB, acc.Degraded, dec.AmpDB, degraded)
		}
		if degraded {
			degradedSeen++
			if acc.AmpBound != "budget" {
				t.Fatalf("degraded grant reports bound %q, want \"budget\"", acc.AmpBound)
			}
		}
		clients = append(clients, c)
	}
	if degradedSeen == 0 {
		t.Skip("degrade policy never engaged for this parameter set")
	}
	if got := reg.Counter("relayd.sessions_degraded", "sessions").Value(); got != degradedSeen {
		t.Fatalf("relayd.sessions_degraded = %d, want %d", got, degradedSeen)
	}
}

// TestGracefulDrain pins the drain contract: draining refuses new
// sessions, in-flight sessions keep processing (bit-exact) until they
// finish, and a flushed session is accounted.
func TestGracefulDrain(t *testing.T) {
	srv, reg := newTestServer(t, DefaultConfig())
	p := testParams(7)
	c, err := pipeSession(srv, p)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	ref, refCancel := BuildSessionChain(p, c.Accept().AmpDB)
	src := rng.New(7 ^ 0x77)
	n := p.BlockSamples
	tx := src.NoiseVector(4*n, 1)
	rx := src.NoiseVector(4*n, 1)
	out := make([]complex128, n)
	want := make([]complex128, n)
	process := func(b int) {
		t.Helper()
		off := b * n
		if err := c.Process(out, rx[off:off+n], tx[off:off+n]); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		copy(want, rx[off:off+n])
		refCancel.SetReference(tx[off : off+n])
		ref.Process(want)
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("block %d sample %d: daemon %v, solo %v", b, j, out[j], want[j])
			}
		}
	}
	process(0)
	process(1)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, "daemon to enter draining", srv.Draining)

	// New sessions are refused with the draining code.
	if _, err := pipeSession(srv, testParams(8)); err == nil {
		t.Fatal("daemon admitted a session while draining")
	} else {
		var refz *RefusedError
		if !errors.As(err, &refz) || refz.Code != RefuseDraining {
			t.Fatalf("want RefusedError code %q, got %v", RefuseDraining, err)
		}
	}

	// The in-flight session still processes, bit-exact, and completes.
	process(2)
	process(3)
	st, err := c.Close()
	if err != nil {
		t.Fatalf("close during drain: %v", err)
	}
	if st.Blocks != 4 {
		t.Fatalf("stats blocks = %d, want 4", st.Blocks)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	if got := reg.Counter("relayd.drain_flushed_sessions", "sessions").Value(); got != 1 {
		t.Fatalf("relayd.drain_flushed_sessions = %d, want 1", got)
	}
	if got := reg.Counter("relayd.sessions_refused.draining", "sessions").Value(); got != 1 {
		t.Fatalf("relayd.sessions_refused.draining = %d, want 1", got)
	}
}

// TestDrainDeadlineForceCloses covers the other drain arm: a session that
// never finishes is force-closed once the drain context expires.
func TestDrainDeadlineForceCloses(t *testing.T) {
	srv, _ := newTestServer(t, DefaultConfig())
	if _, err := pipeSession(srv, testParams(11)); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline exceeded", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("Sessions() = %d after forced drain, want 0", srv.Sessions())
	}
}

// TestIdleTimeoutEviction: a session that goes quiet longer than
// IdleTimeout is evicted and accounted.
func TestIdleTimeoutEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 50 * time.Millisecond
	srv, reg := newTestServer(t, cfg)
	if _, err := pipeSession(srv, testParams(3)); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	evicted := reg.Counter("relayd.sessions_evicted_idle", "sessions")
	waitFor(t, "idle session to be evicted", func() bool { return evicted.Value() == 1 })
	if srv.Sessions() != 0 {
		t.Fatalf("Sessions() = %d after eviction, want 0", srv.Sessions())
	}
}

// TestSessionLimitRefusal: the cap refuses with the session_limit code
// and does not touch the physics budget.
func TestSessionLimitRefusal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSessions = 2
	srv, reg := newTestServer(t, cfg)
	var clients []*Client
	for i := 0; i < 2; i++ {
		c, err := pipeSession(srv, testParams(int64(20+i)))
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	_, err := pipeSession(srv, testParams(30))
	var ref *RefusedError
	if !errors.As(err, &ref) || ref.Code != RefuseSessionLimit {
		t.Fatalf("want RefusedError code %q, got %v", RefuseSessionLimit, err)
	}
	if got := reg.Counter("relayd.sessions_refused.limit", "sessions").Value(); got != 1 {
		t.Fatalf("relayd.sessions_refused.limit = %d, want 1", got)
	}
	for _, c := range clients {
		c.Close()
	}
}

// TestThrottleEngages: a tight session rate forces at least one throttle
// wait without corrupting the stream.
func TestThrottleEngages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SessionRate = 50e3 // 256-sample blocks at ~195 blocks/s
	cfg.BurstSamples = 256
	srv, reg := newTestServer(t, cfg)
	if err := runVerifiedSession(srv, 41, 4); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("relayd.throttle_waits", "waits").Value(); got == 0 {
		t.Fatal("relayd.throttle_waits = 0, want > 0 at 3 blocks over burst")
	}
}

// waitFor polls cond until it holds or the deadline passes. The daemon's
// terminal transitions are asynchronous (handler goroutines unwind after
// the client sees its last frame), so tests poll rather than assume.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
