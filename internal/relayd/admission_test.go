package relayd

import (
	"testing"
	"time"
)

// TestTokenBucketRefill drives the bucket with synthetic monotonic nanos:
// refill must follow the rate exactly, and refusals must quote the time
// until the deficit refills.
func TestTokenBucketRefill(t *testing.T) {
	tb := newTokenBucket(1000, 500) // 1000 samples/s, 500-sample burst
	now := int64(1e9)
	if ok, _ := tb.take(500, now); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, waitNs := tb.take(250, now)
	if ok {
		t.Fatal("empty bucket granted 250 samples")
	}
	if want := int64(250e6); waitNs != want {
		t.Fatalf("waitNs = %d, want %d (250 tokens at 1000/s)", waitNs, want)
	}
	now += waitNs
	if ok, _ := tb.take(250, now); !ok {
		t.Fatal("bucket refused after quoted refill elapsed")
	}
	// Refill is capped at the burst.
	now += int64(3600e9)
	if ok, _ := tb.take(500, now); !ok {
		t.Fatal("bucket refused its burst after a long idle")
	}
	if ok, _ := tb.take(1, now); ok {
		t.Fatal("refill exceeded the burst cap")
	}
}

// TestTokenBucketOverdraw covers withdrawals larger than the burst: they
// are granted when the bucket is full, charging the excess to the future.
func TestTokenBucketOverdraw(t *testing.T) {
	tb := newTokenBucket(1000, 100)
	now := int64(1e9)
	if ok, _ := tb.take(250, now); !ok {
		t.Fatal("full bucket refused an over-burst block")
	}
	// The bucket is now 150 tokens in debt; a 1-token take must wait for
	// the debt plus itself.
	ok, waitNs := tb.take(1, now)
	if ok {
		t.Fatal("indebted bucket granted a take")
	}
	if want := int64(151e6); waitNs != want {
		t.Fatalf("waitNs = %d, want %d", waitNs, want)
	}
}

func TestTokenBucketNilAndDisabled(t *testing.T) {
	if tb := newTokenBucket(0, 100); tb != nil {
		t.Fatal("rate 0 should build a nil (unlimited) bucket")
	}
	var tb *tokenBucket
	if ok, _ := tb.take(1e12, 5); !ok {
		t.Fatal("nil bucket refused a take")
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next() #%d = %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("Next() after Reset = %v, want Min", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	first := b.Next()
	if first != 100*time.Millisecond {
		t.Fatalf("zero-value first delay = %v, want 100ms", first)
	}
	for i := 0; i < 20; i++ {
		if d := b.Next(); d > 5*time.Second {
			t.Fatalf("delay %v exceeded the 5s default cap", d)
		}
	}
}
