package relayd

import (
	"sync"
)

// tokenBucket is the throughput-admission primitive: a classic leaky
// token bucket measured in samples. Each DATA block must withdraw its
// sample count from the session's bucket and the shared global bucket
// before it is swept; an empty bucket tells the handler how long to
// sleep. Time is passed in (monotonic nanoseconds from obs.NowNanos), so
// the refill math is unit-testable without a clock.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64 // bucket capacity
	tokens float64
	lastNs int64
}

// newTokenBucket builds a bucket that starts full. rate <= 0 yields a
// nil bucket: unlimited, every take succeeds.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take attempts to withdraw n tokens at monotonic time nowNs. On refusal
// it returns the nanoseconds until the deficit refills. Withdrawals
// larger than the burst are granted once the bucket is full (the bucket
// cannot otherwise ever grant them); they overdraw the bucket, charging
// the excess against future refill. Nil-safe: a nil bucket always
// grants.
func (tb *tokenBucket) take(n float64, nowNs int64) (ok bool, waitNs int64) {
	if tb == nil || n <= 0 {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.lastNs != 0 && nowNs > tb.lastNs {
		tb.tokens += tb.rate * float64(nowNs-tb.lastNs) / 1e9
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.lastNs = nowNs
	need := n
	if need > tb.burst {
		need = tb.burst // overdraw path: full bucket suffices
	}
	if tb.tokens >= need {
		tb.tokens -= n
		return true, 0
	}
	deficit := need - tb.tokens
	return false, int64(deficit / tb.rate * 1e9)
}
