package relayd

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is one side of a relay session: it performs the HELLO handshake,
// streams DATA blocks, and collects the final STATS. A Client is not safe
// for concurrent use; it mirrors the daemon's one-block-in-flight
// discipline.
type Client struct {
	conn    net.Conn
	params  SessionParams
	accept  Accept
	buf     []byte
	data    []byte
	blocks  uint64
	timeout time.Duration
}

// armConnDeadline arms (timeout > 0) or clears (timeout == 0) the conn's
// combined read/write deadline ahead of a frame exchange.
func armConnDeadline(conn net.Conn, timeout time.Duration) error {
	var t time.Time
	if timeout > 0 {
		t = time.Now().Add(timeout)
	}
	return conn.SetDeadline(t)
}

// armDeadline arms the client's configured deadline before each round
// trip, so a stuck daemon surfaces as a timeout instead of a hang.
func (c *Client) armDeadline() error {
	return armConnDeadline(c.conn, c.timeout)
}

// NewClientConn runs the handshake over an established connection with no
// I/O timeout. On refusal it returns a *RefusedError and closes the
// connection.
func NewClientConn(conn net.Conn, params SessionParams) (*Client, error) {
	return NewClientConnTimeout(conn, params, 0)
}

// NewClientConnTimeout is NewClientConn with a per-exchange I/O timeout
// (zero means block indefinitely); the handshake itself and every later
// Process/Close round trip are bounded by it.
func NewClientConnTimeout(conn net.Conn, params SessionParams, timeout time.Duration) (*Client, error) {
	if err := armConnDeadline(conn, timeout); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeJSONFrame(conn, FrameHello, params); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, buf, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch typ {
	case FrameAccept:
		c := &Client{conn: conn, params: params, buf: buf,
			data:    make([]byte, 2*params.BlockSamples*SampleBytes),
			timeout: timeout}
		if err := json.Unmarshal(payload, &c.accept); err != nil {
			conn.Close()
			return nil, err
		}
		return c, nil
	case FrameRefuse:
		var ref Refuse
		if err := json.Unmarshal(payload, &ref); err != nil {
			conn.Close()
			return nil, err
		}
		conn.Close()
		return nil, &RefusedError{Code: ref.Code, Detail: ref.Detail}
	default:
		conn.Close()
		return nil, fmt.Errorf("relayd: unexpected handshake frame type %d", typ)
	}
}

// Dial connects to a daemon with reconnect backoff and no I/O timeout:
// transient dial errors retry up to attempts times, but a refusal from
// the daemon is terminal — the admission verdict will not change by
// retrying.
func Dial(addr string, params SessionParams, bo *Backoff, attempts int) (*Client, error) {
	return DialTimeout(addr, params, bo, attempts, 0)
}

// DialTimeout is Dial with a per-exchange I/O timeout applied to the
// handshake and every later round trip (zero means block indefinitely).
func DialTimeout(addr string, params SessionParams, bo *Backoff, attempts int, timeout time.Duration) (*Client, error) {
	if bo == nil {
		bo = &Backoff{}
	}
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(bo.Next())
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := NewClientConnTimeout(conn, params, timeout)
		if err != nil {
			var ref *RefusedError
			if asRefused(err, &ref) {
				return nil, err
			}
			lastErr = err
			continue
		}
		bo.Reset()
		return c, nil
	}
	return nil, fmt.Errorf("relayd: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

func asRefused(err error, ref **RefusedError) bool {
	r, ok := err.(*RefusedError)
	if ok {
		*ref = r
	}
	return ok
}

// Accept returns the daemon's admission grant for this session.
func (c *Client) Accept() Accept { return c.accept }

// SetTimeout changes the per-exchange I/O timeout for subsequent round
// trips (zero disables it).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Process sends one block round trip: rx and the transmit reference go
// out in a DATA frame, and the daemon's processed block is written back
// into out (which may alias rx). All three slices must hold exactly
// BlockSamples samples.
func (c *Client) Process(out, rx, ref []complex128) error {
	n := c.params.BlockSamples
	if len(rx) != n || len(ref) != n || len(out) != n {
		return fmt.Errorf("relayd: Process slices must hold %d samples", n)
	}
	samplesToBytes(c.data[:n*SampleBytes], rx)
	samplesToBytes(c.data[n*SampleBytes:], ref)
	if err := c.armDeadline(); err != nil {
		c.conn.Close()
		return err
	}
	if err := writeFrame(c.conn, FrameData, c.data); err != nil {
		return err
	}
	typ, payload, buf, err := readFrame(c.conn, c.buf)
	c.buf = buf
	if err != nil {
		return err
	}
	switch typ {
	case FrameOut:
		if len(payload) != n*SampleBytes {
			return fmt.Errorf("relayd: OUT frame carries %d bytes, want %d", len(payload), n*SampleBytes)
		}
		bytesToSamples(out, payload)
		c.blocks++
		return nil
	case FrameRefuse:
		var ref Refuse
		if err := json.Unmarshal(payload, &ref); err != nil {
			return err
		}
		return &RefusedError{Code: ref.Code, Detail: ref.Detail}
	default:
		return fmt.Errorf("relayd: unexpected frame type %d mid-stream", typ)
	}
}

// InfoClient is a control connection to a daemon: it issues QUERY frames
// and reads back INFO snapshots of the admission state. Like Client it is
// not safe for concurrent use — one query in flight at a time.
type InfoClient struct {
	conn    net.Conn
	buf     []byte
	timeout time.Duration
}

// DialInfo opens a control connection with a per-exchange I/O timeout
// (zero means block indefinitely). No frame is exchanged until Query.
func DialInfo(addr string, timeout time.Duration) (*InfoClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &InfoClient{conn: conn, timeout: timeout}, nil
}

// NewInfoClientConn wraps an established connection as a control
// connection (net.Pipe in tests).
func NewInfoClientConn(conn net.Conn, timeout time.Duration) *InfoClient {
	return &InfoClient{conn: conn, timeout: timeout}
}

// Query performs one QUERY/INFO round trip.
func (c *InfoClient) Query() (Info, error) {
	var info Info
	if err := armConnDeadline(c.conn, c.timeout); err != nil {
		c.conn.Close()
		return info, err
	}
	if err := writeFrame(c.conn, FrameQuery, nil); err != nil {
		return info, err
	}
	typ, payload, buf, err := readFrame(c.conn, c.buf)
	c.buf = buf
	if err != nil {
		return info, err
	}
	switch typ {
	case FrameInfo:
		err = json.Unmarshal(payload, &info)
		return info, err
	case FrameRefuse:
		var ref Refuse
		if err := json.Unmarshal(payload, &ref); err != nil {
			return info, err
		}
		return info, &RefusedError{Code: ref.Code, Detail: ref.Detail}
	default:
		return info, fmt.Errorf("relayd: unexpected frame type %d on query connection", typ)
	}
}

// Close closes the control connection.
func (c *InfoClient) Close() error { return c.conn.Close() }

// Close ends the stream with DONE, returns the daemon's final Stats, and
// closes the connection.
func (c *Client) Close() (Stats, error) {
	defer c.conn.Close()
	var st Stats
	if err := c.armDeadline(); err != nil {
		return st, err
	}
	if err := writeFrame(c.conn, FrameDone, nil); err != nil {
		return st, err
	}
	typ, payload, _, err := readFrame(c.conn, c.buf)
	if err != nil {
		return st, err
	}
	if typ != FrameStats {
		return st, fmt.Errorf("relayd: expected STATS, got frame type %d", typ)
	}
	err = json.Unmarshal(payload, &st)
	return st, err
}
