package relayd

import (
	"strconv"
	"sync"
	"testing"

	"fastforward/internal/relay"
)

// gateBudget is a comfortable Sec 3.5 budget: high cancellation, strong
// R->D attenuation, generous PA headroom.
func gateBudget() relay.SessionBudget {
	return relay.SessionBudget{
		CancellationDB: 110,
		RDAttenDB:      60,
		PAHeadroomDB:   40,
		RxOverNoiseDB:  30,
	}
}

// TestGateMirrorsBudgetAccount replays a Gate admission sequence against
// a bare relay.BudgetAccount and requires identical grants: the Gate must
// be a pure wrapper, not a second policy.
func TestGateMirrorsBudgetAccount(t *testing.T) {
	g := NewGate(0, 0, false)
	ref := relay.NewBudgetAccount(0)
	for i := 0; i < 8; i++ {
		id := strconv.Itoa(i)
		dec, degraded, refz := g.Admit(id, gateBudget())
		want, err := ref.Admit(id, gateBudget())
		if (refz != nil) != (err != nil) {
			t.Fatalf("session %d: gate refuse %v, account err %v", i, refz, err)
		}
		if refz != nil {
			continue
		}
		if degraded {
			t.Fatalf("session %d: degraded grant from strict gate", i)
		}
		if dec != want {
			t.Fatalf("session %d: gate grant %+v, account grant %+v", i, dec, want)
		}
	}
	if g.Active() != ref.Len() {
		t.Fatalf("active %d, account len %d", g.Active(), ref.Len())
	}
	if g.ResidualLoad() != ref.ResidualLoad() {
		t.Fatalf("residual load %v, account %v", g.ResidualLoad(), ref.ResidualLoad())
	}
}

// TestGateSessionLimit checks the cap refusal code and that Release
// reopens the slot.
func TestGateSessionLimit(t *testing.T) {
	g := NewGate(2, 0, false)
	for i := 0; i < 2; i++ {
		if _, _, ref := g.Admit(strconv.Itoa(i), gateBudget()); ref != nil {
			t.Fatalf("session %d refused: %+v", i, ref)
		}
	}
	_, _, ref := g.Admit("2", gateBudget())
	if ref == nil || ref.Code != RefuseSessionLimit {
		t.Fatalf("over-cap admit: got %+v, want code %q", ref, RefuseSessionLimit)
	}
	if !g.Release("0") {
		t.Fatal("Release(0) = false for admitted session")
	}
	if _, _, ref := g.Admit("2", gateBudget()); ref != nil {
		t.Fatalf("admit after release refused: %+v", ref)
	}
	if g.Active() != 2 {
		t.Fatalf("Active() = %d, want 2", g.Active())
	}
}

// tightSession is a marginal budget whose grants load the shared floor
// heavily; with minAmpDB pinned 2 dB under its solo grant, a strict gate
// refuses after four admissions and degrade rescues exactly one more
// (same shape as the BudgetAccount boundary tests).
func tightSession() (relay.SessionBudget, float64) {
	s := relay.SessionBudget{CancellationDB: 70, RDAttenDB: 60, PAHeadroomDB: 40, RxOverNoiseDB: 40}
	alone := relay.ChooseAmplificationResidualDB(s.CancellationDB, s.RDAttenDB, s.PAHeadroomDB, s.RxOverNoiseDB, true)
	return s, alone.AmpDB - 2
}

// TestGateBudgetRefusal drives the aggregate budget to refusal with
// marginal sessions and checks the wire code.
func TestGateBudgetRefusal(t *testing.T) {
	tight, minAmp := tightSession()
	g := NewGate(0, minAmp, false)
	refused := false
	for i := 0; i < 64 && !refused; i++ {
		_, _, ref := g.Admit(strconv.Itoa(i), tight)
		if ref != nil {
			if ref.Code != RefuseBudget {
				t.Fatalf("refusal code %q, want %q (detail %q)", ref.Code, RefuseBudget, ref.Detail)
			}
			refused = true
		}
	}
	if !refused {
		t.Fatal("64 marginal sessions all admitted; budget refusal never hit")
	}
}

// TestGateDegrade checks the degrade policy admits past the strict
// refusal point with shrunken grants.
func TestGateDegrade(t *testing.T) {
	tight, minAmp := tightSession()
	strict := NewGate(0, minAmp, false)
	soft := NewGate(0, minAmp, true)
	strictAdmits := 0
	for i := 0; i < 64; i++ {
		if _, _, ref := strict.Admit(strconv.Itoa(i), tight); ref != nil {
			break
		}
		strictAdmits++
	}
	softAdmits, sawDegraded := 0, false
	for i := 0; i < 64; i++ {
		_, degraded, ref := soft.Admit(strconv.Itoa(i), tight)
		if ref != nil {
			break
		}
		softAdmits++
		sawDegraded = sawDegraded || degraded
	}
	if softAdmits <= strictAdmits {
		t.Fatalf("degrade admits %d <= strict admits %d", softAdmits, strictAdmits)
	}
	if !sawDegraded {
		t.Fatal("degrade gate never reported a degraded grant")
	}
}

// TestGateConcurrent hammers one gate from several goroutines under
// -race: admissions must stay within the cap and every grant must be
// retrievable until released.
func TestGateConcurrent(t *testing.T) {
	const cap = 8
	g := NewGate(cap, 0, false)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				id := strconv.Itoa(w*32 + i)
				if _, _, ref := g.Admit(id, gateBudget()); ref == nil {
					if _, ok := g.Decision(id); !ok {
						t.Errorf("admitted %s has no decision", id)
					}
					if n := g.Active(); n > cap {
						t.Errorf("active %d exceeds cap %d", n, cap)
					}
					g.Release(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Active(); n != 0 {
		t.Fatalf("Active() = %d after all releases, want 0", n)
	}
}
