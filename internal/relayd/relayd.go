// Package relayd implements a long-running FastForward relay daemon.
//
// The daemon accepts concurrent IQ streams (length-prefixed frames over
// any net.Conn — TCP in production, net.Pipe in tests), instantiates one
// pipeline session chain per stream, and sweeps all active sessions
// through a shared dynamic pipeline.Batch so concurrent streams cost one
// stage-major pass, not N independent pipelines. Output is bit-identical
// to running each session through its own solo chain.
//
// Admission is physics-aware: every HELLO declares its Sec 3.5 link
// budget (cancellation, R→D attenuation, PA headroom, RX-over-noise) and
// the daemon admits it only if the aggregate residual rule still holds
// for every already-admitted session (relay.BudgetAccount). Grants are
// sticky: an admitted session keeps its amplification for its lifetime.
// Throughput is bounded by per-session and global token buckets measured
// in samples.
//
// Lifecycle: sessions idle out (IdleTimeout), reads and writes carry
// deadlines, and SIGTERM-style drain stops admitting while in-flight
// blocks flush. The status endpoint (see status.go) exposes the obs
// snapshot and per-session state as JSON.
package relayd

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fastforward/internal/obs"
	"fastforward/internal/pipeline"
)

// Config tunes one Server. The zero value of a limit disables it; start
// from DefaultConfig for production-shaped defaults.
type Config struct {
	// MaxSessions caps concurrently admitted sessions (<= 0: unlimited).
	MaxSessions int
	// MinAmpDB is the least useful amplification grant; candidates whose
	// shared-floor grant falls below it are refused (relay.BudgetAccount).
	MinAmpDB float64
	// Degrade selects the soft admission policy: instead of refusing a
	// candidate that would violate an admitted session's sticky grant,
	// bisect the candidate's own amplification down until everyone fits
	// (relay.BudgetAccount.AdmitDegraded).
	Degrade bool
	// SessionRate / GlobalRate bound throughput in samples per second,
	// per session and across all sessions (<= 0: unlimited).
	SessionRate float64
	GlobalRate  float64
	// BurstSamples sizes the token buckets (default: one max block).
	BurstSamples int
	// IdleTimeout evicts a session that sends no frame for this long
	// (<= 0: never). ReadTimeout bounds reading one frame's payload once
	// its header arrived; WriteTimeout bounds each outbound frame
	// (<= 0: unbounded).
	IdleTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Registry receives the relayd.* metrics; nil gets a private one.
	Registry *obs.Registry
}

// DefaultConfig is the documented production-shaped starting point.
func DefaultConfig() Config {
	return Config{
		MaxSessions:  16,
		MinAmpDB:     0,
		BurstSamples: 1 << 16,
		IdleTimeout:  30 * time.Second,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
}

// metrics holds the daemon's obs handles; every name here is registered
// in internal/obs/METRICS.txt and documented in OBSERVABILITY.md.
type metrics struct {
	admitted        *obs.Counter
	degraded        *obs.Counter
	completed       *obs.Counter
	evictedIdle     *obs.Counter
	refusedBudget   *obs.Counter
	refusedLimit    *obs.Counter
	refusedDraining *obs.Counter
	refusedBadHello *obs.Counter
	ioErrors        *obs.Counter
	deadlineErrors  *obs.Counter
	statusErrors    *obs.Counter
	framesIn        *obs.Counter
	framesOut       *obs.Counter
	infoQueries     *obs.Counter
	throttleWaits   *obs.Counter
	drainFlushed    *obs.Counter
	active          *obs.Gauge
	residualLoad    *obs.Gauge
	draining        *obs.Gauge
	ampGrantedDB    *obs.Histogram
	sessionBlocks   *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		admitted:        reg.Counter("relayd.sessions_admitted", "sessions"),
		degraded:        reg.Counter("relayd.sessions_degraded", "sessions"),
		completed:       reg.Counter("relayd.sessions_completed", "sessions"),
		evictedIdle:     reg.Counter("relayd.sessions_evicted_idle", "sessions"),
		refusedBudget:   reg.Counter("relayd.sessions_refused.budget", "sessions"),
		refusedLimit:    reg.Counter("relayd.sessions_refused.limit", "sessions"),
		refusedDraining: reg.Counter("relayd.sessions_refused.draining", "sessions"),
		refusedBadHello: reg.Counter("relayd.sessions_refused.bad_hello", "sessions"),
		ioErrors:        reg.Counter("relayd.io_errors", "errors"),
		deadlineErrors:  reg.Counter("relayd.deadline_errors", "errors"),
		statusErrors:    reg.Counter("relayd.status_errors", "errors"),
		framesIn:        reg.Counter("relayd.frames_in", "frames"),
		framesOut:       reg.Counter("relayd.frames_out", "frames"),
		infoQueries:     reg.Counter("relayd.info_queries", "queries"),
		throttleWaits:   reg.Counter("relayd.throttle_waits", "waits"),
		drainFlushed:    reg.Counter("relayd.drain_flushed_sessions", "sessions"),
		active:          reg.Gauge("relayd.active_sessions", "sessions"),
		residualLoad:    reg.Gauge("relayd.residual_load", "load"),
		draining:        reg.Gauge("relayd.draining", "bool"),
		ampGrantedDB:    reg.Histogram("relayd.amp_granted_db", "dB", obs.LinearBuckets(0, 5, 12)),
		sessionBlocks:   reg.Histogram("relayd.session_blocks", "blocks", obs.LinearBuckets(0, 64, 16)),
	}
}

// execReq asks the executor to sweep one session block. The handler has
// already staged the cancel reference; block is processed in place and
// done receives exactly one value when it is ready.
type execReq struct {
	sess  *Session
	block []complex128
	done  chan struct{}
}

// Server is the relay daemon: admission control, the shared batch
// executor, and per-connection session handlers.
type Server struct {
	cfg Config
	reg *obs.Registry
	m   metrics

	mu        sync.Mutex
	sessions  map[uint64]*Session
	conns     map[net.Conn]struct{}
	listeners []net.Listener
	nextID    uint64
	gate      *Gate
	batch     *pipeline.Batch

	global *tokenBucket

	draining atomic.Bool
	execCh   chan *execReq
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	startNs  int64
}

// New builds a Server and starts its batch executor. Callers then feed it
// connections via Serve (a listener's accept loop) or ServeConn (one
// connection, e.g. a net.Pipe end in tests), and shut down with Drain
// and/or Close.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.New()
	}
	if cfg.BurstSamples <= 0 {
		cfg.BurstSamples = 1 << 16
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		m:        newMetrics(cfg.Registry),
		sessions: make(map[uint64]*Session),
		conns:    make(map[net.Conn]struct{}),
		gate:     NewGate(cfg.MaxSessions, cfg.MinAmpDB, cfg.Degrade),
		batch:    pipeline.NewDynamicBatch("relayd", pipeline.SessionStageNames()...),
		global:   newTokenBucket(cfg.GlobalRate, float64(cfg.BurstSamples)),
		execCh:   make(chan *execReq),
		stop:     make(chan struct{}),
		startNs:  obs.NowNanos(),
	}
	// The daemon deliberately leaves chain fast paths unarmed: they are
	// 1e-9-close, not bit-exact, and the daemon's contract is bit-identical
	// output versus the plain solo chain a client rebuilds from the seed.
	s.batch.Instrument(pipeline.NewObs(cfg.Registry), 0)
	go s.executor()
	return s
}

// Registry returns the registry the daemon's metrics live in.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Sessions returns the number of currently admitted sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// executor is the single goroutine that owns the shared batch sweep. It
// gathers every request ready right now and runs them as one stage-major
// ProcessSome pass; per-session ordering holds because each handler keeps
// at most one block in flight.
func (s *Server) executor() {
	reqs := make([]*execReq, 0, 16)
	chains := make([]*pipeline.Chain, 0, 16)
	blocks := make([][]complex128, 0, 16)
	for {
		select {
		case r := <-s.execCh:
			reqs = append(reqs[:0], r)
		gather:
			for {
				select {
				case r2 := <-s.execCh:
					reqs = append(reqs, r2)
				default:
					break gather
				}
			}
			chains, blocks = chains[:0], blocks[:0]
			for _, r := range reqs {
				chains = append(chains, r.sess.chain)
				blocks = append(blocks, r.block)
			}
			s.batch.ProcessSome(chains, blocks)
			for _, r := range reqs {
				r.done <- struct{}{}
			}
		case <-s.stop:
			return
		}
	}
}

// Serve accepts connections from ln until the listener is closed (by
// Close, or externally), spawning one handler per connection. Transient
// accept errors back off exponentially; a closed listener returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	var bo Backoff
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(bo.Next())
				continue
			}
			return err
		}
		bo.Reset()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// ServeConn runs one connection's session synchronously: handshake,
// stream, cleanup. It is the in-process transport for tests (net.Pipe)
// and is exactly the path Serve runs per accepted connection.
func (s *Server) ServeConn(conn net.Conn) {
	s.wg.Add(1)
	defer s.wg.Done()
	s.handleConn(conn)
}

// Drain stops admitting sessions (new HELLOs are refused with code
// "draining") and waits for every in-flight session to finish its stream.
// If ctx expires first, remaining connections are force-closed and
// ctx.Err() is returned once their handlers unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.m.draining.Set(1)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close shuts the daemon down: listeners and connections close, handlers
// unwind, and the batch executor stops. Safe after Drain and idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.m.draining.Set(1)
	s.mu.Lock()
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.listeners = nil
	s.mu.Unlock()
	s.closeConns()
	s.wg.Wait()
	s.stopOnce.Do(func() { close(s.stop) })
}

func (s *Server) closeConns() {
	// Snapshot under the lock, close outside it: conn.Close can block on
	// a wedged peer, and nothing that shares s.mu should wait on that.
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) trackConn(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// refuse emits a REFUSE frame. The session is over either way, but a
// failed write is still counted so a flapping peer shows up in metrics.
func (s *Server) refuse(conn net.Conn, code, detail string) {
	if !s.setWriteDeadline(conn) {
		return
	}
	if err := writeJSONFrame(conn, FrameRefuse, Refuse{Code: code, Detail: detail}); err != nil {
		s.m.ioErrors.Inc(0)
	}
}

// setWriteDeadline arms the write deadline and reports whether the conn
// is still usable. A setter error means the conn is already dead: count
// it, close the conn, and have the caller bail instead of writing into
// an unbounded block.
func (s *Server) setWriteDeadline(conn net.Conn) bool {
	if s.cfg.WriteTimeout <= 0 {
		return true
	}
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		s.m.deadlineErrors.Inc(0)
		conn.Close()
		return false
	}
	return true
}

// armReadDeadline is the read-side twin of setWriteDeadline: a zero time
// clears the deadline, and a setter error closes the conn and counts.
func (s *Server) armReadDeadline(conn net.Conn, t time.Time) bool {
	if err := conn.SetReadDeadline(t); err != nil {
		s.m.deadlineErrors.Inc(0)
		conn.Close()
		return false
	}
	return true
}

// admit runs the admission path under the server lock: drain state, then
// the extracted Gate (session cap + aggregate Sec 3.5 residual budget).
// On success the session is registered, its chain joins the shared batch,
// and the post-admission residual load is returned for the ACCEPT frame.
func (s *Server) admit(p SessionParams, remote string) (*Session, float64, *Refuse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, 0, &Refuse{Code: RefuseDraining, Detail: "daemon is draining"}
	}
	id := s.nextID
	s.nextID++
	key := strconv.FormatUint(id, 10)
	dec, degraded, ref := s.gate.Admit(key, p.budget())
	if ref != nil {
		return nil, 0, ref
	}
	sess := &Session{
		ID:       id,
		Remote:   remote,
		Params:   p,
		Grant:    dec,
		Degraded: degraded,
		shard:    obs.ShardForSeed(p.Seed),
		startNs:  obs.NowNanos(),
	}
	sess.lastActiveNs.Store(sess.startNs)
	sess.chain, sess.cancel = BuildSessionChain(p, dec.AmpDB)
	s.batch.Add(sess.chain)
	s.sessions[id] = sess
	s.m.admitted.Inc(sess.shard)
	if degraded {
		s.m.degraded.Inc(sess.shard)
	}
	s.m.ampGrantedDB.Observe(sess.shard, dec.AmpDB)
	s.m.active.Set(float64(len(s.sessions)))
	load := s.gate.ResidualLoad()
	s.m.residualLoad.Set(load)
	return sess, load, nil
}

// release unwinds admission: the session leaves the batch, its budget
// slot reopens, and its terminal state is accounted. Idempotent: the
// DONE path releases before writing STATS (so a client that saw the
// STATS frame knows the slot is already free), and the handler's
// unconditional cleanup call then finds the session gone.
func (s *Server) release(sess *Session, completed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sess.ID]; !ok {
		return
	}
	sess.state.Store(int32(StateClosed))
	delete(s.sessions, sess.ID)
	s.batch.Remove(sess.chain)
	s.gate.Release(strconv.FormatUint(sess.ID, 10))
	s.m.active.Set(float64(len(s.sessions)))
	s.m.residualLoad.Set(s.gate.ResidualLoad())
	s.m.sessionBlocks.Observe(sess.shard, float64(sess.Blocks()))
	if completed {
		s.m.completed.Inc(sess.shard)
		if s.draining.Load() {
			s.m.drainFlushed.Inc(sess.shard)
		}
	}
}

// errDeadline reports a failed deadline arm; the conn is already closed
// and counted by the time a caller sees it.
var errDeadline = errors.New("relayd: failed to arm conn deadline")

// readSessionFrame reads one frame with the two-phase deadline: the idle
// timeout governs waiting for the 5-byte header (expiry means the peer
// went quiet — idle=true), the read timeout governs the payload once the
// header landed (expiry is an I/O error).
func (s *Server) readSessionFrame(conn net.Conn, buf []byte) (typ byte, payload, newBuf []byte, idle bool, err error) {
	idleBy := time.Time{}
	if s.cfg.IdleTimeout > 0 {
		idleBy = time.Now().Add(s.cfg.IdleTimeout)
	}
	if !s.armReadDeadline(conn, idleBy) {
		return 0, nil, buf, false, errDeadline
	}
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, buf, isTimeout(err), err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n > MaxFramePayload {
		return 0, nil, buf, false, errors.New("relayd: frame payload exceeds limit")
	}
	if s.cfg.ReadTimeout > 0 {
		if !s.armReadDeadline(conn, time.Now().Add(s.cfg.ReadTimeout)) {
			return 0, nil, buf, false, errDeadline
		}
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err = io.ReadFull(conn, payload); err != nil {
		return 0, nil, buf, false, err
	}
	return hdr[4], payload, buf, false, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleConn runs one connection end to end: HELLO, admission, the DATA
// stream, DONE/STATS, cleanup. Every exit path releases whatever was
// admitted.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	s.trackConn(conn, true)
	defer s.trackConn(conn, false)

	// HELLO must arrive within the read timeout.
	if s.cfg.ReadTimeout > 0 {
		if !s.armReadDeadline(conn, time.Now().Add(s.cfg.ReadTimeout)) {
			return
		}
	}
	typ, payload, buf, err := readFrame(conn, nil)
	if err != nil {
		s.m.ioErrors.Inc(0)
		return
	}
	if typ == FrameQuery {
		s.serveQuery(conn, buf)
		return
	}
	if typ != FrameHello {
		s.m.ioErrors.Inc(0)
		return
	}
	var p SessionParams
	if err := json.Unmarshal(payload, &p); err != nil {
		s.m.refusedBadHello.Inc(0)
		s.refuse(conn, RefuseBadHello, "hello is not valid JSON: "+err.Error())
		return
	}
	if err := p.Validate(); err != nil {
		s.m.refusedBadHello.Inc(0)
		s.refuse(conn, RefuseBadHello, err.Error())
		return
	}

	sess, load, ref := s.admit(p, conn.RemoteAddr().String())
	if ref != nil {
		switch ref.Code {
		case RefuseDraining:
			s.m.refusedDraining.Inc(0)
		case RefuseSessionLimit:
			s.m.refusedLimit.Inc(0)
		default:
			s.m.refusedBudget.Inc(0)
		}
		s.refuse(conn, ref.Code, ref.Detail)
		return
	}

	if !s.setWriteDeadline(conn) {
		s.release(sess, false)
		return
	}
	if err := writeJSONFrame(conn, FrameAccept, Accept{
		SessionID:           sess.ID,
		AmpDB:               sess.Grant.AmpDB,
		AmpBound:            sess.Grant.Bound.String(),
		StabilityHeadroomDB: sess.Grant.StabilityHeadroomDB,
		Degraded:            sess.Degraded,
		ResidualLoad:        load,
	}); err != nil {
		s.m.ioErrors.Inc(sess.shard)
		s.release(sess, false)
		return
	}

	completed := s.streamSession(conn, sess, buf)
	s.release(sess, completed)
}

// serveQuery runs a control connection: every QUERY frame is answered
// with one INFO snapshot of the admission state, and the connection stays
// open for further queries (the fleet scheduler polls residual load over
// one long-lived conn). The idle timeout governs the wait for the next
// QUERY exactly as it governs a session's next DATA frame; any other
// frame type is a protocol violation.
func (s *Server) serveQuery(conn net.Conn, buf []byte) {
	for {
		if !s.answerQuery(conn) {
			return
		}
		typ, _, nbuf, idle, err := s.readSessionFrame(conn, buf)
		buf = nbuf
		if err != nil {
			if !idle {
				s.m.ioErrors.Inc(0)
			}
			return
		}
		if typ != FrameQuery {
			s.refuse(conn, RefuseProtocol, "unexpected frame type "+strconv.Itoa(int(typ))+" on query connection")
			s.m.ioErrors.Inc(0)
			return
		}
	}
}

// answerQuery writes one INFO frame and reports whether the conn is still
// usable.
func (s *Server) answerQuery(conn net.Conn) bool {
	info := Info{
		Active:       s.gate.Active(),
		MaxSessions:  s.gate.MaxSessions(),
		MinAmpDB:     s.gate.MinAmpDB(),
		ResidualLoad: s.gate.ResidualLoad(),
		Draining:     s.draining.Load(),
	}
	if !s.setWriteDeadline(conn) {
		return false
	}
	if err := writeJSONFrame(conn, FrameInfo, info); err != nil {
		s.m.ioErrors.Inc(0)
		return false
	}
	s.m.infoQueries.Inc(0)
	s.m.framesOut.Inc(0)
	return true
}

// streamSession runs the admitted session's frame loop and reports
// whether the stream ended cleanly with DONE.
func (s *Server) streamSession(conn net.Conn, sess *Session, buf []byte) bool {
	n := sess.Params.BlockSamples
	rx := make([]complex128, n)
	refSamples := make([]complex128, n)
	out := make([]byte, n*SampleBytes)
	req := &execReq{sess: sess, done: make(chan struct{}, 1)}
	bucket := newTokenBucket(s.cfg.SessionRate, float64(s.cfg.BurstSamples))

	for {
		typ, payload, nbuf, idle, err := s.readSessionFrame(conn, buf)
		buf = nbuf
		if err != nil {
			if idle {
				s.m.evictedIdle.Inc(sess.shard)
			} else {
				s.m.ioErrors.Inc(sess.shard)
			}
			return false
		}
		s.m.framesIn.Inc(sess.shard)
		switch typ {
		case FrameData:
			if len(payload) != 2*n*SampleBytes {
				s.refuse(conn, RefuseProtocol,
					"data frame carries "+strconv.Itoa(len(payload))+
						" bytes, want "+strconv.Itoa(2*n*SampleBytes))
				s.m.ioErrors.Inc(sess.shard)
				return false
			}
			s.throttle(bucket, float64(n), sess)
			bytesToSamples(rx, payload[:n*SampleBytes])
			bytesToSamples(refSamples, payload[n*SampleBytes:])
			sess.cancel.SetReference(refSamples)
			sess.state.Store(int32(StateStreaming))
			req.block = rx
			s.execCh <- req
			<-req.done
			samplesToBytes(out, rx)
			if !s.setWriteDeadline(conn) {
				return false
			}
			if err := writeFrame(conn, FrameOut, out); err != nil {
				s.m.ioErrors.Inc(sess.shard)
				return false
			}
			s.m.framesOut.Inc(sess.shard)
			sess.blocks.Add(1)
			sess.samples.Add(uint64(n))
			sess.lastActiveNs.Store(obs.NowNanos())
		case FrameDone:
			// Release BEFORE answering: a client that has read the STATS
			// frame must be able to rely on the budget slot being free —
			// the fleet's make-before-break accounting over the wire needs
			// Release to be synchronous, not racing the handler teardown.
			s.release(sess, true)
			if !s.setWriteDeadline(conn) {
				return false
			}
			if err := writeJSONFrame(conn, FrameStats, Stats{
				SessionID: sess.ID,
				Blocks:    sess.Blocks(),
				Samples:   sess.Samples(),
				AmpDB:     sess.Grant.AmpDB,
			}); err != nil {
				s.m.ioErrors.Inc(sess.shard)
				return false
			}
			s.m.framesOut.Inc(sess.shard)
			return true
		default:
			s.refuse(conn, RefuseProtocol, "unexpected frame type "+strconv.Itoa(int(typ)))
			s.m.ioErrors.Inc(sess.shard)
			return false
		}
	}
}

// throttle charges one block of samples to the session and global token
// buckets, sleeping out any deficit. Each sleep counts one throttle wait.
func (s *Server) throttle(session *tokenBucket, samples float64, sess *Session) {
	for _, tb := range [2]*tokenBucket{session, s.global} {
		for {
			ok, waitNs := tb.take(samples, obs.NowNanos())
			if ok {
				break
			}
			s.m.throttleWaits.Inc(sess.shard)
			time.Sleep(time.Duration(waitNs))
		}
	}
}
