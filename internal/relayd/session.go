package relayd

import (
	"math"
	"sync/atomic"

	"fastforward/internal/pipeline"
	"fastforward/internal/relay"
	"fastforward/internal/rng"
)

// SessionState is the lifecycle FSM of one admitted session:
//
//	Admitted --first DATA--> Streaming --DONE--> Closed (completed)
//	    |                        |
//	    +--idle timeout----------+--> Closed (evicted)
//	    |                        |
//	    +--drain force-close-----+--> Closed (flushed or aborted)
//
// Refused connections never become sessions; they are counted and
// dropped before a Session exists.
type SessionState int32

const (
	// StateAdmitted: HELLO accepted, no DATA seen yet.
	StateAdmitted SessionState = iota
	// StateStreaming: at least one DATA block processed.
	StateStreaming
	// StateClosed: the session left the daemon (completed, evicted, or
	// errored); its budget and batch slot are released.
	StateClosed
)

// String names the state for the status endpoint.
func (s SessionState) String() string {
	switch s {
	case StateAdmitted:
		return "admitted"
	case StateStreaming:
		return "streaming"
	case StateClosed:
		return "closed"
	}
	return "unknown"
}

// Session is one admitted IQ stream: its chain, its sticky amplification
// grant, and its accounting. All mutable fields are atomics — the status
// endpoint reads them concurrently with the handler.
type Session struct {
	// ID is the daemon-assigned session id (monotonic, never reused).
	ID uint64
	// Remote describes the peer (transport address, or "pipe" in tests).
	Remote string
	// Params echoes the admitted HELLO.
	Params SessionParams
	// Grant is the sticky amplification decision admission produced.
	Grant relay.AmpDecision
	// Degraded reports the grant came from the degrade policy.
	Degraded bool

	chain  *pipeline.Chain
	cancel *pipeline.CancelStage
	shard  int

	state        atomic.Int32
	blocks       atomic.Uint64
	samples      atomic.Uint64
	startNs      int64
	lastActiveNs atomic.Int64
}

// State returns the session's current FSM state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// Blocks returns the number of processed blocks.
func (s *Session) Blocks() uint64 { return s.blocks.Load() }

// Samples returns the number of processed samples.
func (s *Session) Samples() uint64 { return s.samples.Load() }

// budget maps the session's declared physics to the admission currency.
func (p SessionParams) budget() relay.SessionBudget {
	return relay.SessionBudget{
		CancellationDB: p.CancellationDB,
		RDAttenDB:      p.RDAttenDB,
		PAHeadroomDB:   p.PAHeadroomDB,
		RxOverNoiseDB:  p.RxOverNoiseDB,
	}
}

// chainSpec maps the admitted HELLO plus the granted amplification to
// the shared session-chain spec. The grant is a power gain; the amp
// stage applies its amplitude square root.
func chainSpec(p SessionParams, ampDB float64) pipeline.SessionChainSpec {
	return pipeline.SessionChainSpec{
		CancelTaps: p.CancelTaps,
		CNFTaps:    p.CNFTaps,
		CFOStepRad: 2 * math.Pi * p.CFOHz / p.SampleRateHz,
		AmpGain:    complex(math.Pow(10, ampDB/20), 0),
	}
}

// BuildSessionChain constructs the exact chain the daemon runs for an
// admitted session: pipeline.NewSessionChain over the HELLO's sizes and
// seed with the granted amplification. Exported so clients and tests can
// build the single-session reference path and assert the daemon's output
// is bit-identical to it.
func BuildSessionChain(p SessionParams, ampDB float64) (*pipeline.Chain, *pipeline.CancelStage) {
	return pipeline.NewSessionChain(chainSpec(p, ampDB), rng.New(p.Seed))
}
