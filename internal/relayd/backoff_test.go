package relayd

import (
	"testing"
	"time"
)

// TestBackoffNext pins the jitter-free schedule: geometric growth from
// Min by Factor, clamped at Max, with defaults filled on first use.
func TestBackoffNext(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		want []time.Duration
	}{
		{
			name: "defaults double from 100ms to the 5s cap",
			b:    Backoff{},
			want: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
				800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
				5 * time.Second, 5 * time.Second,
			},
		},
		{
			name: "custom min, max and factor",
			b:    Backoff{Min: time.Second, Max: 10 * time.Second, Factor: 3},
			want: []time.Duration{
				time.Second, 3 * time.Second, 9 * time.Second,
				10 * time.Second, 10 * time.Second,
			},
		},
		{
			name: "factor below one falls back to doubling",
			b:    Backoff{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 0.5},
			want: []time.Duration{
				50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
				400 * time.Millisecond, 400 * time.Millisecond,
			},
		},
		{
			name: "min at max pins every delay",
			b:    Backoff{Min: 2 * time.Second, Max: 2 * time.Second},
			want: []time.Duration{2 * time.Second, 2 * time.Second, 2 * time.Second},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, want := range tc.want {
				if got := tc.b.Next(); got != want {
					t.Fatalf("Next() call %d = %v, want %v", i+1, got, want)
				}
			}
		})
	}
}

// TestBackoffReset rewinds the schedule to Min, exactly as after a
// successful attempt.
func TestBackoffReset(t *testing.T) {
	var b Backoff
	for i := 0; i < 4; i++ {
		b.Next()
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("Next() after Reset = %v, want 100ms", got)
	}
	if got := b.Next(); got != 200*time.Millisecond {
		t.Fatalf("second Next() after Reset = %v, want 200ms", got)
	}
}

// TestBackoffOverflowClamps drives the multiplication past the int64
// range of time.Duration: the wraparound guard must clamp to Max rather
// than going negative.
func TestBackoffOverflowClamps(t *testing.T) {
	b := Backoff{Min: 1 << 62, Max: 1<<63 - 1, Factor: 4}
	first := b.Next()
	if first != 1<<62 {
		t.Fatalf("first Next() = %v, want Min", first)
	}
	got := b.Next()
	if got != b.Max {
		t.Fatalf("overflowing Next() = %v, want Max %v", got, b.Max)
	}
	if got <= 0 {
		t.Fatalf("overflowing Next() went non-positive: %v", got)
	}
}
