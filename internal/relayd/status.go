package relayd

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sort"

	"fastforward/internal/obs"
)

// SessionStatus is one session's row in the /status document.
type SessionStatus struct {
	ID       uint64  `json:"id"`
	Remote   string  `json:"remote"`
	State    string  `json:"state"`
	AmpDB    float64 `json:"amp_db"`
	AmpBound string  `json:"amp_bound"`
	Degraded bool    `json:"degraded"`
	Blocks   uint64  `json:"blocks"`
	Samples  uint64  `json:"samples"`
	AgeS     float64 `json:"age_s"`
	IdleS    float64 `json:"idle_s"`
}

// AdmissionStatus summarizes the gate's configuration and occupancy.
type AdmissionStatus struct {
	Active       int     `json:"active"`
	MaxSessions  int     `json:"max_sessions"`
	MinAmpDB     float64 `json:"min_amp_db"`
	Policy       string  `json:"policy"` // "refuse" or "degrade"
	ResidualLoad float64 `json:"residual_load"`
}

// Status is the /status JSON document: daemon state, per-session rows
// (sorted by id), the admission gate, and the full obs snapshot.
type Status struct {
	State     string                        `json:"state"` // "serving" or "draining"
	UptimeS   float64                       `json:"uptime_s"`
	Sessions  []SessionStatus               `json:"sessions"`
	Admission AdmissionStatus               `json:"admission"`
	Metrics   map[string]obs.MetricSnapshot `json:"metrics"`
}

// Status assembles the current status document.
func (s *Server) Status() Status {
	now := obs.NowNanos()
	st := Status{
		State:   "serving",
		UptimeS: float64(now-s.startNs) / 1e9,
	}
	if s.draining.Load() {
		st.State = "draining" //fflint:allow wirecodes daemon state name, not a REFUSE code; they share a word by design (OPERATIONS.md documents both)
	}
	s.mu.Lock()
	st.Sessions = make([]SessionStatus, 0, len(s.sessions))
	for _, sess := range s.sessions {
		st.Sessions = append(st.Sessions, SessionStatus{
			ID:       sess.ID,
			Remote:   sess.Remote,
			State:    sess.State().String(),
			AmpDB:    sess.Grant.AmpDB,
			AmpBound: sess.Grant.Bound.String(),
			Degraded: sess.Degraded,
			Blocks:   sess.Blocks(),
			Samples:  sess.Samples(),
			AgeS:     float64(now-sess.startNs) / 1e9,
			IdleS:    float64(now-sess.lastActiveNs.Load()) / 1e9,
		})
	}
	policy := "refuse"
	if s.cfg.Degrade {
		policy = "degrade"
	}
	st.Admission = AdmissionStatus{
		Active:       len(s.sessions),
		MaxSessions:  s.cfg.MaxSessions,
		MinAmpDB:     s.gate.MinAmpDB(),
		Policy:       policy,
		ResidualLoad: s.gate.ResidualLoad(),
	}
	s.mu.Unlock()
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	st.Metrics = s.reg.Snapshot().Metrics
	return st
}

// StatusHandler serves the daemon's HTTP surface:
//
//	GET /healthz — 200 "ok" while serving, 503 "draining" while draining
//	GET /status  — the Status document as JSON
func (s *Server) StatusHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte("draining\n")); err != nil {
				s.m.statusErrors.Inc(0)
			}
			return
		}
		if _, err := w.Write([]byte("ok\n")); err != nil {
			s.m.statusErrors.Inc(0)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Status()); err != nil {
			s.m.statusErrors.Inc(0)
		}
	})
	return mux
}

// ServeStatus serves the status endpoint on ln until the listener closes.
func (s *Server) ServeStatus(ln net.Listener) error {
	srv := &http.Server{Handler: s.StatusHandler()}
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) {
		// Close shuts the listener out from under the http.Server (the
		// daemon drains its own conns; there is nothing to Shutdown), so
		// a closed-listener accept error is the clean-exit path here.
		return nil
	}
	return err
}
