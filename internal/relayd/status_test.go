package relayd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestStatusEndpoint exercises the HTTP surface against a live daemon:
// /healthz flips with drain state and /status reports sessions, the
// admission gate, and the metric snapshot.
func TestStatusEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, DefaultConfig())
	h := srv.StatusHandler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}

	if err := runVerifiedSession(srv, 900, 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completed session to release", func() bool { return srv.Sessions() == 0 })
	c, err := pipeSession(srv, testParams(901))
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}

	rec := get("/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("/status = %d, want 200", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if st.State != "serving" {
		t.Fatalf("state = %q, want serving", st.State)
	}
	if st.UptimeS <= 0 {
		t.Fatalf("uptime_s = %v, want > 0", st.UptimeS)
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("sessions = %d rows, want 1 (completed session must not linger)", len(st.Sessions))
	}
	row := st.Sessions[0]
	if row.State != "admitted" || row.Blocks != 0 || row.AmpDB != c.Accept().AmpDB {
		t.Fatalf("session row %+v inconsistent with live session (amp %v)", row, c.Accept().AmpDB)
	}
	if st.Admission.Active != 1 || st.Admission.Policy != "refuse" ||
		st.Admission.MaxSessions != DefaultConfig().MaxSessions {
		t.Fatalf("admission block %+v inconsistent with config", st.Admission)
	}
	if m, ok := st.Metrics["relayd.sessions_admitted"]; !ok || m.Type != "counter" {
		t.Fatalf("metrics snapshot missing relayd.sessions_admitted (got %+v)", m)
	}

	if _, err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitFor(t, "session row to clear", func() bool { return srv.Sessions() == 0 })
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining = %d, want 503", rec.Code)
	}
	var drained Status
	if rec := get("/status"); json.Unmarshal(rec.Body.Bytes(), &drained) != nil || drained.State != "draining" {
		t.Fatalf("/status while draining reports %q, want draining", drained.State)
	}
}
