package relayd

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"testing"

	"fastforward/internal/rng"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	params := SessionParams{
		SampleRateHz: 20e6, BlockSamples: 64, CancelTaps: 8, CNFTaps: 4,
		CFOHz: 100, Seed: 7,
		CancellationDB: 60, RDAttenDB: 50, PAHeadroomDB: 40, RxOverNoiseDB: 30,
	}
	if err := writeJSONFrame(&wire, FrameHello, params); err != nil {
		t.Fatalf("writeJSONFrame: %v", err)
	}
	if err := writeFrame(&wire, FrameDone, nil); err != nil {
		t.Fatalf("writeFrame(DONE): %v", err)
	}

	typ, payload, buf, err := readFrame(&wire, nil)
	if err != nil || typ != FrameHello {
		t.Fatalf("readFrame = type %d, err %v; want HELLO", typ, err)
	}
	var got SessionParams
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatalf("unmarshal hello: %v", err)
	}
	if got != params {
		t.Fatalf("hello round trip: got %+v, want %+v", got, params)
	}
	typ, payload, _, err = readFrame(&wire, buf)
	if err != nil || typ != FrameDone || len(payload) != 0 {
		t.Fatalf("readFrame = type %d, %d bytes, err %v; want empty DONE", typ, len(payload), err)
	}
}

func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, FrameData}
	if _, _, _, err := readFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("readFrame accepted a 4 GiB frame header")
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	if err := writeFrame(io.Discard, FrameData, make([]byte, MaxFramePayload+1)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
}

// TestSamplesRoundTripBitExact pins the bit-transparency of the sample
// encoding, including signed zero and subnormals: the daemon must return
// exactly the floats the chain computed.
func TestSamplesRoundTripBitExact(t *testing.T) {
	src := rng.New(42)
	in := src.NoiseVector(61, 1)
	in = append(in,
		complex(math.Copysign(0, -1), 0),
		complex(5e-324, -5e-324),
		complex(math.MaxFloat64, -math.MaxFloat64),
	)
	raw := make([]byte, len(in)*SampleBytes)
	samplesToBytes(raw, in)
	out := make([]complex128, len(in))
	bytesToSamples(out, raw)
	for i := range in {
		if math.Float64bits(real(in[i])) != math.Float64bits(real(out[i])) ||
			math.Float64bits(imag(in[i])) != math.Float64bits(imag(out[i])) {
			t.Fatalf("sample %d: %v round-tripped to %v (bit-exact required)", i, in[i], out[i])
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good := SessionParams{
		SampleRateHz: 20e6, BlockSamples: 64, CancelTaps: 8, CNFTaps: 4,
		CancellationDB: 60, RDAttenDB: 50, PAHeadroomDB: 40, RxOverNoiseDB: 30,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := map[string]func(*SessionParams){
		"zero rate":        func(p *SessionParams) { p.SampleRateHz = 0 },
		"nan rate":         func(p *SessionParams) { p.SampleRateHz = math.NaN() },
		"zero block":       func(p *SessionParams) { p.BlockSamples = 0 },
		"huge block":       func(p *SessionParams) { p.BlockSamples = MaxFramePayload },
		"zero taps":        func(p *SessionParams) { p.CancelTaps = 0 },
		"huge cnf":         func(p *SessionParams) { p.CNFTaps = 1 << 20 },
		"inf cfo":          func(p *SessionParams) { p.CFOHz = math.Inf(1) },
		"nan cancel":       func(p *SessionParams) { p.CancellationDB = math.NaN() },
		"inf rd":           func(p *SessionParams) { p.RDAttenDB = math.Inf(1) },
		"-inf headroom":    func(p *SessionParams) { p.PAHeadroomDB = math.Inf(-1) },
		"+inf rxovernoise": func(p *SessionParams) { p.RxOverNoiseDB = math.Inf(1) },
	}
	for name, mutate := range mutations {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
}

// FuzzReadFrame asserts the frame reader never panics and never
// over-allocates on arbitrary wire bytes.
func FuzzReadFrame(f *testing.F) {
	var wire bytes.Buffer
	writeFrame(&wire, FrameData, []byte{1, 2, 3, 4})
	f.Add(wire.Bytes())
	f.Add([]byte{0, 0, 0, 0, FrameDone})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		var buf []byte
		for {
			_, payload, nbuf, err := readFrame(r, buf)
			buf = nbuf
			if err != nil {
				return
			}
			if len(payload) > MaxFramePayload {
				t.Fatalf("payload %d exceeds cap", len(payload))
			}
		}
	})
}
