package relayd

import "time"

// Backoff is the reconnect discipline clients (and the daemon's accept
// loop, after transient errors) apply between attempts: exponential
// growth from Min to Max, reset on success. Deliberately jitter-free —
// retry schedules stay reproducible, and the daemon is not a thundering-
// herd target at the scales this repo simulates.
type Backoff struct {
	// Min is the first delay (default 100 ms); Max caps growth (default
	// 5 s); Factor multiplies per attempt (default 2).
	Min, Max time.Duration
	Factor   float64
	cur      time.Duration
}

// Next returns the delay to sleep before the upcoming attempt and
// advances the schedule.
func (b *Backoff) Next() time.Duration {
	if b.Min <= 0 {
		b.Min = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.cur == 0 {
		b.cur = b.Min
		return b.cur
	}
	next := time.Duration(float64(b.cur) * b.Factor)
	if next > b.Max || next < b.cur {
		next = b.Max
	}
	b.cur = next
	return b.cur
}

// Reset rewinds the schedule to Min; call it after a successful attempt.
func (b *Backoff) Reset() { b.cur = 0 }
