package relayd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Wire protocol: length-prefixed frames over any byte stream (TCP in
// production, net.Pipe in tests — the transport is opaque to the
// framing). Every frame is
//
//	[4-byte big-endian payload length][1-byte type][payload]
//
// A session opens with HELLO (JSON SessionParams), is answered by ACCEPT
// (JSON Accept) or REFUSE (JSON Refuse, then close), then streams DATA
// frames — each carrying one block of received samples followed by the
// same number of transmit-reference samples — and receives one OUT frame
// of processed samples per DATA frame. DONE ends the stream; the daemon
// answers with STATS (JSON Stats) and closes. Samples travel as raw
// little-endian IEEE-754 float64 (re, im) pairs, 16 bytes per sample, so
// the daemon path is bit-transparent: what the chain computed is what
// the client reads back, exactly.

// Frame types.
const (
	// FrameHello opens a session: JSON SessionParams.
	FrameHello byte = 1
	// FrameAccept admits it: JSON Accept.
	FrameAccept byte = 2
	// FrameRefuse rejects it (or a DATA violation): JSON Refuse.
	FrameRefuse byte = 3
	// FrameData carries one block: n rx samples then n reference samples
	// (payload length divisible by 32).
	FrameData byte = 4
	// FrameOut returns the processed block: n samples.
	FrameOut byte = 5
	// FrameDone ends the stream cleanly (empty payload).
	FrameDone byte = 6
	// FrameStats closes the session: JSON Stats.
	FrameStats byte = 7
	// FrameQuery asks for the daemon's admission state (empty payload).
	// It opens a control connection instead of a session: the daemon
	// answers each QUERY with one INFO and keeps the connection open for
	// further queries, so a fleet scheduler polls residual load without
	// scraping the HTTP status JSON.
	FrameQuery byte = 8
	// FrameInfo answers a QUERY: JSON Info.
	FrameInfo byte = 9
)

// MaxFramePayload caps any frame's payload (16 MiB: a 512k-sample block
// with its reference). Oversized frames poison the connection and are
// treated as protocol errors.
const MaxFramePayload = 16 << 20

// frameHeaderLen is the fixed prefix: 4-byte length + 1-byte type.
const frameHeaderLen = 5

// SampleBytes is the wire size of one complex sample: two float64s.
const SampleBytes = 16

// SessionParams is the HELLO payload: everything the daemon needs to
// build the session's chain (deterministically, from Seed) and to price
// its admission against the aggregate Sec 3.5 budget.
type SessionParams struct {
	// SampleRateHz is the session's nominal sample rate; it scales the
	// CFO step and is the throughput the rate limiter charges against.
	SampleRateHz float64 `json:"sample_rate_hz"`
	// BlockSamples is the block size every DATA frame must carry.
	BlockSamples int `json:"block_samples"`
	// CancelTaps / CNFTaps size the session chain's two filters.
	CancelTaps int `json:"cancel_taps"`
	CNFTaps    int `json:"cnf_taps"`
	// CFOHz is the carrier-frequency offset the chain corrects.
	CFOHz float64 `json:"cfo_hz"`
	// Seed draws the synthetic chain taps; the same seed and sizes yield
	// the same chain on daemon and client (bit-identical verification).
	Seed int64 `json:"seed"`
	// CancellationDB, RDAttenDB, PAHeadroomDB, RxOverNoiseDB are the
	// session's Sec 3.5 admission physics (relay.SessionBudget).
	CancellationDB float64 `json:"cancellation_db"`
	RDAttenDB      float64 `json:"rd_atten_db"`
	PAHeadroomDB   float64 `json:"pa_headroom_db"`
	RxOverNoiseDB  float64 `json:"rx_over_noise_db"`
}

// Validate bounds-checks a HELLO before any resource is committed.
func (p SessionParams) Validate() error {
	switch {
	case !(p.SampleRateHz > 0) || math.IsInf(p.SampleRateHz, 0):
		return fmt.Errorf("sample_rate_hz %v out of range", p.SampleRateHz)
	case p.BlockSamples <= 0 || p.BlockSamples > MaxFramePayload/(2*SampleBytes):
		return fmt.Errorf("block_samples %d out of range", p.BlockSamples)
	case p.CancelTaps <= 0 || p.CancelTaps > 4096:
		return fmt.Errorf("cancel_taps %d out of range", p.CancelTaps)
	case p.CNFTaps <= 0 || p.CNFTaps > 4096:
		return fmt.Errorf("cnf_taps %d out of range", p.CNFTaps)
	case math.IsNaN(p.CFOHz) || math.IsInf(p.CFOHz, 0):
		return fmt.Errorf("cfo_hz %v out of range", p.CFOHz)
	case math.IsNaN(p.CancellationDB) || math.IsInf(p.CancellationDB, -1):
		return fmt.Errorf("cancellation_db %v out of range", p.CancellationDB)
	case math.IsNaN(p.RDAttenDB) || math.IsInf(p.RDAttenDB, 0):
		return fmt.Errorf("rd_atten_db %v out of range", p.RDAttenDB)
	case math.IsNaN(p.PAHeadroomDB) || math.IsInf(p.PAHeadroomDB, 0):
		return fmt.Errorf("pa_headroom_db %v out of range", p.PAHeadroomDB)
	case math.IsNaN(p.RxOverNoiseDB) || math.IsInf(p.RxOverNoiseDB, 1):
		return fmt.Errorf("rx_over_noise_db %v out of range", p.RxOverNoiseDB)
	}
	return nil
}

// Accept is the ACCEPT payload: the admission grant.
type Accept struct {
	SessionID uint64 `json:"session_id"`
	// AmpDB is the granted relay amplification; the session chain's amp
	// stage is built from it.
	AmpDB float64 `json:"amp_db"`
	// AmpBound names the binding constraint (relay.AmpBound.String()).
	AmpBound string `json:"amp_bound"`
	// StabilityHeadroomDB is the grant's margin to positive feedback
	// (relay.AmpDecision.StabilityHeadroomDB); carrying it on the wire
	// makes the full admission decision reconstructible client-side.
	StabilityHeadroomDB float64 `json:"stability_headroom_db"`
	// Degraded reports the grant was bisected below the strict bound by
	// the degrade admission policy.
	Degraded bool `json:"degraded"`
	// ResidualLoad echoes the aggregate budget load after this admission.
	ResidualLoad float64 `json:"residual_load"`
}

// Refuse codes, stable for clients and the troubleshooting table.
const (
	// RefuseBadHello: malformed or out-of-range HELLO.
	RefuseBadHello = "bad_hello"
	// RefuseDraining: the daemon is draining and admits nothing.
	RefuseDraining = "draining"
	// RefuseSessionLimit: MaxSessions reached.
	RefuseSessionLimit = "session_limit"
	// RefuseBudget: the Sec 3.5 aggregate residual budget refused it.
	RefuseBudget = "budget"
	// RefuseProtocol: a frame violated the protocol mid-session.
	RefuseProtocol = "protocol"
	// RefuseUnreachable is client-side only: the daemon could not be
	// dialed or died mid-handshake. No daemon ever sends it; the fleet
	// scheduler synthesizes it so a transport failure maps onto the same
	// spill decision a live refusal would.
	RefuseUnreachable = "unreachable"
)

// Refuse is the REFUSE payload.
type Refuse struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// Stats is the STATS payload: the session's final accounting.
type Stats struct {
	SessionID uint64  `json:"session_id"`
	Blocks    uint64  `json:"blocks"`
	Samples   uint64  `json:"samples"`
	AmpDB     float64 `json:"amp_db"`
}

// Info is the INFO payload: the admission state a QUERY observes. It is
// the wire twin of AdmissionStatus (status.go) minus the policy echo —
// exactly what a fleet scheduler needs to rank and bound a relay.
type Info struct {
	// Active is the number of sessions currently holding grants.
	Active int `json:"active"`
	// MaxSessions is the configured cap (0 = uncapped).
	MaxSessions int `json:"max_sessions"`
	// MinAmpDB is the admission threshold.
	MinAmpDB float64 `json:"min_amp_db"`
	// ResidualLoad is the aggregate Sec 3.5 residual load Σ β_i·A_i.
	ResidualLoad float64 `json:"residual_load"`
	// Draining reports the daemon refuses all new sessions.
	Draining bool `json:"draining"`
}

// RefusedError is returned by the client when the daemon refused the
// session (or mid-session on a protocol violation).
type RefusedError struct {
	Code   string
	Detail string
}

// Error formats the refusal.
func (e *RefusedError) Error() string {
	return fmt.Sprintf("relayd: refused (%s): %s", e.Code, e.Detail)
}

// writeFrame emits one frame. The payload is borrowed for the call.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("relayd: frame payload %d exceeds %d", len(payload), MaxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Never write empty: the reader side never issues a zero-byte
		// Read, and synchronous transports (net.Pipe) block empty writes
		// until one arrives.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// writeJSONFrame marshals v and emits it as a frame of the given type.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, buf)
}

// readFrame reads one frame, reusing buf when it has capacity. The
// returned payload aliases the (possibly grown) buffer: valid until the
// next call with the same buffer.
func readFrame(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n > MaxFramePayload {
		return 0, nil, buf, fmt.Errorf("relayd: frame payload %d exceeds %d", n, MaxFramePayload)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	return hdr[4], payload, buf, nil
}

// samplesToBytes serializes samples as little-endian float64 (re, im)
// pairs into dst, which must hold SampleBytes·len(s) bytes.
func samplesToBytes(dst []byte, s []complex128) {
	for i, v := range s {
		binary.LittleEndian.PutUint64(dst[i*SampleBytes:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(dst[i*SampleBytes+8:], math.Float64bits(imag(v)))
	}
}

// bytesToSamples is the exact inverse of samplesToBytes; len(src) must be
// SampleBytes·len(dst).
func bytesToSamples(dst []complex128, src []byte) {
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(src[i*SampleBytes:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(src[i*SampleBytes+8:]))
		dst[i] = complex(re, im)
	}
}
