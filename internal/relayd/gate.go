package relayd

import (
	"strconv"
	"sync"

	"fastforward/internal/relay"
)

// Gate is one relay front-end's admission domain, extracted from the
// daemon so other layers (the fleet scheduler in internal/fleet, tests)
// can run the exact admission policy a live ffrelayd applies: the
// session-count cap, then the aggregate Sec 3.5 residual budget
// (relay.BudgetAccount), with the strict-or-degrade grant policy.
//
// The daemon's remaining refusal causes — drain state, malformed HELLOs,
// token-bucket throttling — are lifecycle and transport concerns and stay
// in Server; the Gate is the physics-and-capacity core that makes one
// relay "full". Refusals are reported with the same stable Refuse codes
// the wire protocol uses, so a fleet-level spill decision and a REFUSE
// frame are driven by the same value.
//
// A Gate is safe for concurrent use; the daemon calls it under its own
// lock as well, which keeps cap check and budget admission atomic with
// session registration.
type Gate struct {
	mu          sync.Mutex
	maxSessions int
	degrade     bool
	budget      *relay.BudgetAccount
}

// NewGate builds an admission gate. maxSessions <= 0 leaves the session
// count uncapped; minAmpDB is the least useful amplification grant
// (relay.NewBudgetAccount); degrade selects AdmitDegraded instead of the
// strict Admit policy.
func NewGate(maxSessions int, minAmpDB float64, degrade bool) *Gate {
	return &Gate{
		maxSessions: maxSessions,
		degrade:     degrade,
		budget:      relay.NewBudgetAccount(minAmpDB),
	}
}

// Admit runs the admission decision for one candidate session: the cap
// first, then the budget under the configured policy. On success the
// grant is sticky until Release(id). degraded reports that the degrade
// policy bisected the grant below the candidate's own bound. On refusal
// the returned Refuse carries the stable wire code (RefuseSessionLimit
// or RefuseBudget) plus a human-readable detail.
func (g *Gate) Admit(id string, sb relay.SessionBudget) (dec relay.AmpDecision, degraded bool, ref *Refuse) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxSessions > 0 && g.budget.Len() >= g.maxSessions {
		return relay.AmpDecision{}, false, &Refuse{Code: RefuseSessionLimit,
			Detail: "max_sessions=" + strconv.Itoa(g.maxSessions) + " reached"}
	}
	var err error
	if g.degrade {
		dec, degraded, err = g.budget.AdmitDegraded(id, sb)
	} else {
		dec, err = g.budget.Admit(id, sb)
	}
	if err != nil {
		return dec, false, &Refuse{Code: RefuseBudget, Detail: err.Error()}
	}
	return dec, degraded, nil
}

// Release frees an admitted session's budget slot. Reports whether the
// id was admitted.
func (g *Gate) Release(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget.Release(id)
}

// Active returns the number of sessions currently holding grants.
func (g *Gate) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget.Len()
}

// ResidualLoad returns the admitted sessions' aggregate residual load
// L = Σ β_i·A_i (relay.BudgetAccount.ResidualLoad).
func (g *Gate) ResidualLoad() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget.ResidualLoad()
}

// Decision returns the sticky grant of an admitted session.
func (g *Gate) Decision(id string) (relay.AmpDecision, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget.Decision(id)
}

// MinAmpDB returns the configured admission threshold.
func (g *Gate) MinAmpDB() float64 { return g.budget.MinAmpDB() }

// MaxSessions returns the configured session cap (0 = uncapped).
func (g *Gate) MaxSessions() int { return g.maxSessions }
