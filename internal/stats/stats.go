// Package stats provides the summary statistics used by the evaluation
// harness: empirical CDFs, percentiles, medians, and simple fixed-width
// table rendering for reproducing the paper's figures as printed series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (which are copied and sorted).
// NaN samples are dropped.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the empirical CDF value P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func (c *CDF) Percentile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(50) }

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}

// Points returns up to n evenly spaced (value, probability) points of the
// CDF, suitable for plotting or printing a figure series.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		if n == 1 {
			idx = len(c.sorted) - 1
		}
		pts[i] = Point{
			X: c.sorted[idx],
			Y: float64(idx+1) / float64(len(c.sorted)),
		}
	}
	return pts
}

// Point is an (x, y) pair in a printed series.
type Point struct {
	X, Y float64
}

// Median returns the median of samples without building a CDF.
func Median(samples []float64) float64 {
	return NewCDF(samples).Median()
}

// Percentile returns the p-th percentile of samples.
func Percentile(samples []float64, p float64) float64 {
	return NewCDF(samples).Percentile(p)
}

// Table renders rows of labeled values as an aligned fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v, floats with %.3g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
