package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("min/max wrong: %v %v", c.Min(), c.Max())
	}
	if c.Median() != 3 {
		t.Errorf("median = %v", c.Median())
	}
	if c.Mean() != 3 {
		t.Errorf("mean = %v", c.Mean())
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
}

func TestCDFDropsNaN(t *testing.T) {
	c := NewCDF([]float64{1, math.NaN(), 2})
	if c.N() != 2 {
		t.Errorf("NaN not dropped: N=%d", c.N())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if got := c.Percentile(50); got != 5 {
		t.Errorf("50th pct of {0,10} = %v, want 5", got)
	}
	if got := c.Percentile(25); got != 2.5 {
		t.Errorf("25th pct = %v, want 2.5", got)
	}
	if got := c.Percentile(0); got != 0 {
		t.Errorf("0th pct = %v", got)
	}
	if got := c.Percentile(100); got != 10 {
		t.Errorf("100th pct = %v", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	for _, v := range []float64{c.Median(), c.Min(), c.Max(), c.Mean(), c.At(1)} {
		if !math.IsNaN(v) {
			t.Error("empty CDF stats should be NaN")
		}
	}
	if pts := c.Points(5); pts != nil {
		t.Error("empty CDF points should be nil")
	}
}

func TestPoints(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 99 {
		t.Errorf("endpoints wrong: %v %v", pts[0], pts[len(pts)-1])
	}
	// Y must be nondecreasing and in (0,1].
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points must be nondecreasing")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last Y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("median", 3.14159)
	tb.AddRow("count", 7)
	out := tb.String()
	if !strings.Contains(out, "median") || !strings.Contains(out, "3.142") {
		t.Errorf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "----") {
		t.Errorf("table missing separator:\n%s", out)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		c := NewCDF(vals)
		return c.Percentile(p1) <= c.Percentile(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMedianIsOrderStatistic(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		m := Median(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return m >= sorted[0] && m <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
