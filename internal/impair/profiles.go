package impair

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Named profiles form the severity ladder the degradation scenarios sweep.
// Magnitudes are chosen so the cancellation floors are strictly ordered
// (ideal > mild > moderate > severe > harsh) — the monotonicity the
// degradation acceptance test pins — and sit in the ranges the transceiver
// literature reports for consumer-grade radios.
var named = map[string]Profile{
	"ideal": {Name: "ideal"},
	// CFO values are *residual* offsets after the transceiver's own
	// correction (Sec 4.1 removal/restoration); raw oscillator offsets are
	// kHz-scale but the canceller only sees what correction leaves behind.
	// Resulting cancellation floors: mild ≈49, moderate ≈37, severe ≈28,
	// harsh ≈21 dB (see TestSeverityLadderFloorsMonotone).
	"mild": {
		Name:             "mild",
		CFOHz:            2,
		PhaseNoiseRadRMS: 2e-5,
		IQGainMismatchDB: 0.02,
		IQPhaseErrorDeg:  0.1,
		ADCBits:          12,
		ADCClipBackoffDB: 14,
		PAInputBackoffDB: 12,
		PASmoothness:     3,
		CSIAgeMs:         25,
		CoherenceMs:      400,
		SoundingLossProb: 0.02,
	},
	"moderate": {
		Name:                "moderate",
		CFOHz:               8,
		PhaseNoiseRadRMS:    5e-5,
		IQGainMismatchDB:    0.05,
		IQPhaseErrorDeg:     0.3,
		ADCBits:             10,
		ADCClipBackoffDB:    12,
		PAInputBackoffDB:    12,
		PASmoothness:        2,
		CSIAgeMs:            50,
		CoherenceMs:         300,
		SoundingLossProb:    0.05,
		SoundingCorruptProb: 0.05,
	},
	"severe": {
		Name:                "severe",
		CFOHz:               25,
		PhaseNoiseRadRMS:    2e-4,
		IQGainMismatchDB:    0.2,
		IQPhaseErrorDeg:     1.0,
		ADCBits:             8,
		ADCClipBackoffDB:    10,
		PAInputBackoffDB:    9,
		PASmoothness:        2,
		CSIAgeMs:            100,
		CoherenceMs:         200,
		SoundingLossProb:    0.15,
		SoundingCorruptProb: 0.1,
	},
	"harsh": {
		Name:                "harsh",
		CFOHz:               50,
		PhaseNoiseRadRMS:    5e-4,
		IQGainMismatchDB:    0.4,
		IQPhaseErrorDeg:     2.0,
		ADCBits:             6,
		ADCClipBackoffDB:    8,
		PAInputBackoffDB:    6,
		PASmoothness:        2,
		CSIAgeMs:            200,
		CoherenceMs:         150,
		SoundingLossProb:    0.3,
		SoundingCorruptProb: 0.2,
	},
	// Single-axis profiles isolate one impairment at "severe" strength for
	// attribution sweeps.
	"cfo":        {Name: "cfo", CFOHz: 25},
	"phasenoise": {Name: "phasenoise", PhaseNoiseRadRMS: 2e-4},
	"iq":         {Name: "iq", IQGainMismatchDB: 0.2, IQPhaseErrorDeg: 1.0},
	"adc":        {Name: "adc", ADCBits: 8, ADCClipBackoffDB: 10},
	"pa":         {Name: "pa", PAInputBackoffDB: 9, PASmoothness: 2},
	"stale-csi":  {Name: "stale-csi", CSIAgeMs: 100, CoherenceMs: 200},
	"lost-sounding": {Name: "lost-sounding",
		SoundingLossProb: 0.15, SoundingCorruptProb: 0.1,
		CSIAgeMs: 50, CoherenceMs: 300},
}

// SeverityLadder returns the composite profiles ordered from ideal to
// worst — the default degradation sweep.
func SeverityLadder() []Profile {
	out := make([]Profile, 0, len(severityOrder))
	for _, n := range severityOrder {
		out = append(out, named[n])
	}
	return out
}

// severityOrder names the ladder rungs from ideal (0) to harsh (4).
var severityOrder = []string{"ideal", "mild", "moderate", "severe", "harsh"}

// SeverityRank returns a profile name's position on the severity ladder
// (0 = ideal … 4 = harsh) and true, or (0, false) for names that are not
// ladder rungs (including the single-axis attribution profiles). The
// fleet layer uses ranks as relay health states, so hysteresis thresholds
// compare ranks, never strings.
func SeverityRank(name string) (int, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for i, n := range severityOrder {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// SeverityName returns the ladder rung name for a rank (clamped to the
// ladder's ends), the inverse of SeverityRank.
func SeverityName(rank int) string {
	if rank < 0 {
		rank = 0
	}
	if rank >= len(severityOrder) {
		rank = len(severityOrder) - 1
	}
	return severityOrder[rank]
}

// Names lists every named profile, sorted.
func Names() []string {
	out := make([]string, 0, len(named))
	for n := range named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	p, ok := named[strings.ToLower(strings.TrimSpace(name))]
	return p, ok
}

// Parse resolves a -impair flag value: either a profile name ("moderate")
// or a comma-separated key=value list overlaid on a base profile
// ("severe,cfo_hz=500,csi_age_ms=80"). An empty string is the ideal
// profile.
func Parse(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return named["ideal"], nil
	}
	parts := strings.Split(s, ",")
	base := named["ideal"]
	custom := false
	if p, ok := ByName(parts[0]); ok {
		base = p
		parts = parts[1:]
	}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Profile{}, fmt.Errorf("impair: %q is neither a profile name (%s) nor key=value", part, strings.Join(Names(), ", "))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return Profile{}, fmt.Errorf("impair: bad value in %q: %v", part, err)
		}
		custom = true
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "cfo_hz":
			base.CFOHz = v
		case "phase_noise_rad":
			base.PhaseNoiseRadRMS = v
		case "iq_gain_db":
			base.IQGainMismatchDB = v
		case "iq_phase_deg":
			base.IQPhaseErrorDeg = v
		case "adc_bits":
			base.ADCBits = int(v)
		case "adc_clip_db":
			base.ADCClipBackoffDB = v
		case "pa_backoff_db":
			base.PAInputBackoffDB = v
		case "pa_smoothness":
			base.PASmoothness = v
		case "csi_age_ms":
			base.CSIAgeMs = v
		case "coherence_ms":
			base.CoherenceMs = v
		case "sounding_loss":
			base.SoundingLossProb = v
		case "sounding_corrupt":
			base.SoundingCorruptProb = v
		default:
			return Profile{}, fmt.Errorf("impair: unknown key %q", kv[0])
		}
	}
	if custom {
		base.Name = s
	}
	return base, nil
}
