package impair

import (
	"math"
	"math/cmplx"

	"fastforward/internal/rng"
)

// Stream applies a profile's impairments one sample at a time, for the
// streaming relay pipeline where signals are processed with per-sample
// state (fastforward's Fig 3 loop) rather than in blocks.
//
// Block-mode ApplyWaveform measures the signal RMS to set the ADC full
// scale and PA saturation point; a streaming front end cannot look ahead,
// so Stream takes an AGC reference RMS at construction — the level the
// receive/transmit chain was levelled to — and keeps it fixed, exactly how
// a real AGC-then-ADC chain behaves between gain updates.
type Stream struct {
	p   *Profile
	src *rng.Source

	// RX-chain state.
	rx        bool
	phase     float64 // CFO accumulator
	phaseStep float64
	pnPhase   float64 // phase-noise random walk
	alpha     complex128
	beta      complex128
	iq        bool
	fullScale float64 // ADC clip point (amplitude per rail); 0 = no ADC
	quantStep float64

	// TX-chain state.
	tx   bool
	asat float64 // PA saturation amplitude; 0 = linear
	s2   float64 // 2·smoothness
}

// NewRxStream builds the receive front-end chain (CFO, phase noise, IQ
// imbalance, ADC) of the profile. src draws the phase-noise walk; it is
// only consumed when the profile configures phase noise, so toggling other
// impairments never shifts the stream. refRMS is the AGC reference
// amplitude (per complex sample) the ADC full scale is set against.
func NewRxStream(p *Profile, src *rng.Source, sampleRate, refRMS float64) *Stream {
	st := &Stream{p: p, src: src, rx: true}
	if p == nil || p.IsZero() {
		return st
	}
	st.phaseStep = 2 * math.Pi * p.CFOHz / sampleRate
	if p.IQGainMismatchDB != 0 || p.IQPhaseErrorDeg != 0 {
		g := math.Pow(10, p.IQGainMismatchDB/20)
		phi := p.IQPhaseErrorDeg * math.Pi / 180
		st.alpha = complex((1+g*math.Cos(phi))/2, g*math.Sin(phi)/2)
		st.beta = complex((1-g*math.Cos(phi))/2, g*math.Sin(phi)/2)
		st.iq = true
	}
	if p.ADCBits > 0 && refRMS > 0 {
		perRail := refRMS / math.Sqrt2
		st.fullScale = perRail * math.Pow(10, p.ADCClipBackoffDB/20)
		st.quantStep = st.fullScale / float64(int64(1)<<uint(p.ADCBits-1))
	}
	return st
}

// NewTxStream builds the transmit chain (PA compression only) of the
// profile. refRMS anchors the saturation point: asat = refRMS ·
// 10^(backoff/20), matching block-mode ApplyPA on a signal levelled to
// refRMS.
func NewTxStream(p *Profile, refRMS float64) *Stream {
	st := &Stream{p: p, tx: true}
	if p == nil || p.PAInputBackoffDB <= 0 || math.IsInf(p.PAInputBackoffDB, 1) || refRMS <= 0 {
		return st
	}
	s := p.PASmoothness
	if s <= 0 {
		s = 2
	}
	st.asat = refRMS * math.Pow(10, p.PAInputBackoffDB/20)
	st.s2 = 2 * s
	return st
}

// Push passes one sample through the chain.
func (st *Stream) Push(v complex128) complex128 {
	if st.rx {
		if st.p != nil && (st.phaseStep != 0 || st.p.PhaseNoiseRadRMS > 0) {
			if st.p.PhaseNoiseRadRMS > 0 {
				st.pnPhase += st.p.PhaseNoiseRadRMS * st.src.Norm()
			}
			v *= cmplx.Exp(complex(0, st.phase+st.pnPhase))
			st.phase += st.phaseStep
		}
		if st.iq {
			v = st.alpha*v + st.beta*cmplx.Conj(v)
		}
		if st.quantStep > 0 {
			v = complex(st.quantize(real(v)), st.quantize(imag(v)))
		}
	}
	if st.tx && st.asat > 0 {
		a := cmplx.Abs(v)
		if a > 0 {
			g := a / math.Pow(1+math.Pow(a/st.asat, st.s2), 1/st.s2)
			v *= complex(g/a, 0)
		}
	}
	return v
}

func (st *Stream) quantize(v float64) float64 {
	if v > st.fullScale {
		v = st.fullScale
	}
	if v < -st.fullScale {
		v = -st.fullScale
	}
	return (math.Floor(v/st.quantStep) + 0.5) * st.quantStep
}

// Process applies Push over a block, returning a new slice.
func (st *Stream) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x)) //fflint:allow allocfree allocating convenience form; the relay feedback loop drives Push per sample
	for i, v := range x {
		out[i] = st.Push(v)
	}
	return out
}

// Reset clears the accumulated CFO and phase-noise state (not the
// configuration).
func (st *Stream) Reset() {
	st.phase = 0
	st.pnPhase = 0
}
