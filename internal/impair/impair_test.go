package impair

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

// The severity ladder's cancellation floors must be strictly ordered —
// this is what makes the testbed's degradation sweeps monotone by
// construction, which the acceptance test in internal/testbed pins.
func TestSeverityLadderFloorsMonotone(t *testing.T) {
	ladder := SeverityLadder()
	prev := math.Inf(1)
	for _, p := range ladder {
		floor := p.CancellationFloorDB()
		if p.Name == "ideal" {
			if !math.IsInf(floor, 1) {
				t.Fatalf("ideal profile has finite floor %v", floor)
			}
			continue
		}
		if !(floor < prev) {
			t.Errorf("floor not strictly decreasing at %q: %.2f !< %.2f", p.Name, floor, prev)
		}
		if floor < 15 || floor > 100 {
			t.Errorf("%q floor %.2f dB outside plausible range", p.Name, floor)
		}
		prev = floor
	}
	// Aging must tighten (rho decrease) down the ladder too.
	prevRho := 1.0
	for _, p := range ladder[1:] {
		if rho := p.AgingRho(); rho >= prevRho {
			t.Errorf("aging rho not decreasing at %q: %v >= %v", p.Name, rho, prevRho)
		} else {
			prevRho = rho
		}
	}
}

func TestEffectiveCancellationCaps(t *testing.T) {
	p, _ := ByName("severe")
	floor := p.CancellationFloorDB()
	if got := p.EffectiveCancellationDB(110); got != floor {
		t.Errorf("110 dB budget should cap at floor %.2f, got %.2f", floor, got)
	}
	if got := p.EffectiveCancellationDB(floor - 10); got != floor-10 {
		t.Errorf("budget below floor must pass through: got %.2f", got)
	}
	var ideal Profile
	if got := ideal.EffectiveCancellationDB(110); got != 110 {
		t.Errorf("ideal profile must not cap: got %.2f", got)
	}
}

// Waveform impairments must be deterministic given the ItemSeed-derived
// source — the property that keeps impaired sweeps bit-identical across
// worker counts.
func TestWaveformDeterminism(t *testing.T) {
	p, _ := ByName("severe")
	x := rng.New(42).NoiseVector(512, 1)
	a := p.ApplyWaveform(Source(7, 3), x, 20e6)
	b := p.ApplyWaveform(Source(7, 3), x, 20e6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between identically-seeded runs", i)
		}
	}
	c := p.ApplyWaveform(Source(7, 4), x, 20e6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different item seeds produced identical impairments")
	}
}

func TestApplyCFORotates(t *testing.T) {
	const fs = 20e6
	const cfo = 1000.0
	n := 2000
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	y := ApplyCFO(x, cfo, fs)
	// Phase advance per sample must be 2π·cfo/fs.
	want := 2 * math.Pi * cfo / fs
	got := cmplx.Phase(y[1] * cmplx.Conj(y[0]))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("per-sample phase %v, want %v", got, want)
	}
}

func TestIQImbalanceImagePower(t *testing.T) {
	// For a pure tone, the image-to-signal ratio must match the standard
	// |beta/alpha|² model.
	const gainDB, phaseDeg = 0.6, 3.0
	g := math.Pow(10, gainDB/20)
	phi := phaseDeg * math.Pi / 180
	alpha := complex((1+g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	beta := complex((1-g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	wantIRR := dsp.DB(absSq(beta) / absSq(alpha))

	n := 4096
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * 5 * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ph))
	}
	y := ApplyIQImbalance(x, gainDB, phaseDeg)
	// Correlate against the tone and its image.
	var sig, img complex128
	for i := range y {
		ph := 2 * math.Pi * 5 * float64(i) / float64(n)
		sig += y[i] * cmplx.Exp(complex(0, -ph))
		img += y[i] * cmplx.Exp(complex(0, ph))
	}
	gotIRR := dsp.DB(absSq(img) / absSq(sig))
	if math.Abs(gotIRR-wantIRR) > 0.1 {
		t.Errorf("image rejection %.2f dB, want %.2f dB", gotIRR, wantIRR)
	}
}

func TestQuantizeADCSQNR(t *testing.T) {
	src := rng.New(1)
	x := src.NoiseVector(1<<14, 1)
	// At 16 dB back-off the Gaussian clip tail is negligible, so the SQNR
	// must match the loaded-quantizer formula 6.02·bits + 4.77 − backoff.
	for _, bits := range []int{6, 8, 10, 12} {
		y := QuantizeADC(x, bits, 16)
		nse := dsp.Power(dsp.Sub(y, x))
		snr := dsp.DB(dsp.Power(x) / nse)
		want := 6.02*float64(bits) + 4.77 - 16
		if math.Abs(snr-want) > 2 {
			t.Errorf("%d bits: SQNR %.1f dB, want ≈%.1f", bits, snr, want)
		}
	}
	// More bits must always quantize less noisily.
	prev := -math.Inf(1)
	for _, bits := range []int{4, 6, 8, 10} {
		y := QuantizeADC(x, bits, 16)
		snr := dsp.DB(dsp.Power(x) / dsp.Power(dsp.Sub(y, x)))
		if snr <= prev {
			t.Errorf("SQNR not increasing with bits at %d: %.1f <= %.1f", bits, snr, prev)
		}
		prev = snr
	}
	// At aggressive loading the clip tail dominates and the budget model's
	// quant+clip closed form must track the waveform within 3 dB.
	p := Profile{ADCBits: 8, ADCClipBackoffDB: 8}
	y := QuantizeADC(x, 8, 8)
	meas := dsp.DB(dsp.Power(x) / dsp.Power(dsp.Sub(y, x)))
	if model := p.CancellationFloorDB(); math.Abs(meas-model) > 3 {
		t.Errorf("clip-dominated floor: measured %.1f dB, model %.1f dB", meas, model)
	}
}

func TestApplyPACompressesPeaks(t *testing.T) {
	src := rng.New(2)
	x := src.NoiseVector(4096, 1)
	y := ApplyPA(x, 3, 2)
	if dsp.MaxAbs(y) >= dsp.MaxAbs(x) {
		t.Error("PA did not compress the peak")
	}
	// Small signals pass almost linearly.
	for i, v := range x {
		if cmplx.Abs(v) < 0.1 {
			if r := cmplx.Abs(y[i]) / cmplx.Abs(v); r < 0.98 || r > 1.0+1e-12 {
				t.Fatalf("small-signal gain %v out of range", r)
			}
			break
		}
	}
	// Deep back-off must be transparent to 1e-3.
	lin := ApplyPA(x, 40, 2)
	if evm := dsp.Power(dsp.Sub(lin, x)) / dsp.Power(x); evm > 1e-3 {
		t.Errorf("40 dB back-off EVM² %v too high", evm)
	}
}

func TestAgeCSICorrelation(t *testing.T) {
	src := rng.New(3)
	n := 20000
	h := src.NoiseVector(n, 1)
	const rho = 0.8
	aged := AgeCSI(src, h, rho)
	var dot complex128
	var pw float64
	for i := range h {
		dot += aged[i] * cmplx.Conj(h[i])
		pw += absSq(h[i])
	}
	got := real(dot) / pw
	if math.Abs(got-rho) > 0.02 {
		t.Errorf("measured correlation %.3f, want %.3f", got, rho)
	}
	// Power must be preserved in expectation.
	var agedPw float64
	for _, v := range aged {
		agedPw += absSq(v)
	}
	if r := agedPw / pw; r < 0.9 || r > 1.1 {
		t.Errorf("aged power ratio %.3f, want ≈1", r)
	}
	// rho >= 1 is the identity.
	if same := AgeCSI(src, h, 1); &same[0] != &h[0] {
		t.Error("rho=1 should return h unchanged")
	}
}

// DrawSounding must consume exactly one variate whatever the outcome, so
// toggling fault injection cannot shift any other draw in the stream.
func TestDrawSoundingStreamStability(t *testing.T) {
	lossy, _ := ByName("lost-sounding")
	var ideal Profile
	a := rng.New(9)
	b := rng.New(9)
	for i := 0; i < 100; i++ {
		lossy.DrawSounding(a)
		ideal.DrawSounding(b)
	}
	if a.Float64() != b.Float64() {
		t.Error("profiles consumed different variate counts")
	}
	// Outcomes are deterministic per seed.
	c, d := rng.New(11), rng.New(11)
	for i := 0; i < 200; i++ {
		if lossy.DrawSounding(c) != lossy.DrawSounding(d) {
			t.Fatal("outcome not deterministic")
		}
	}
	// With the configured probabilities all three outcomes occur.
	seen := map[SoundingOutcome]int{}
	e := rng.New(13)
	for i := 0; i < 500; i++ {
		seen[lossy.DrawSounding(e)]++
	}
	for _, o := range []SoundingOutcome{SoundingOK, SoundingLost, SoundingCorrupt} {
		if seen[o] == 0 {
			t.Errorf("outcome %s never drawn", o)
		}
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("moderate")
	if err != nil || p.Name != "moderate" || p.CFOHz != 8 {
		t.Fatalf("Parse(moderate) = %+v, %v", p, err)
	}
	p, err = Parse("severe,cfo_hz=500,csi_age_ms=80")
	if err != nil || p.CFOHz != 500 || p.CSIAgeMs != 80 || p.ADCBits != 8 {
		t.Fatalf("overlay parse = %+v, %v", p, err)
	}
	if p.Name != "severe,cfo_hz=500,csi_age_ms=80" {
		t.Errorf("custom profile name %q", p.Name)
	}
	if _, err := Parse("nonsense"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Parse("mild,bogus_key=1"); err == nil {
		t.Error("unknown key accepted")
	}
	p, err = Parse("")
	if err != nil || !p.IsZero() {
		t.Errorf("empty parse = %+v, %v", p, err)
	}
	for _, n := range Names() {
		if _, ok := ByName(n); !ok {
			t.Errorf("Names() lists %q but ByName misses it", n)
		}
	}
}

func TestSeverityRank(t *testing.T) {
	ladder := SeverityLadder()
	for i, p := range ladder {
		rank, ok := SeverityRank(p.Name)
		if !ok || rank != i {
			t.Errorf("SeverityRank(%q) = %d, %v; want %d, true", p.Name, rank, ok, i)
		}
		if got := SeverityName(i); got != p.Name {
			t.Errorf("SeverityName(%d) = %q, want %q", i, got, p.Name)
		}
	}
	if rank, ok := SeverityRank(" Severe "); !ok || rank != 3 {
		t.Errorf("SeverityRank with case/space = %d, %v; want 3, true", rank, ok)
	}
	for _, n := range []string{"cfo", "stale-csi", "nonsense", ""} {
		if _, ok := SeverityRank(n); ok {
			t.Errorf("SeverityRank(%q) accepted a non-ladder name", n)
		}
	}
	if got := SeverityName(-3); got != "ideal" {
		t.Errorf("SeverityName(-3) = %q, want ideal", got)
	}
	if got := SeverityName(99); got != "harsh" {
		t.Errorf("SeverityName(99) = %q, want harsh", got)
	}
}

func absSq(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}
