// Package impair is the hardware-impairment and fault-injection layer:
// it models the ways a real relay front-end deviates from the ideal one
// the rest of the simulation assumes — carrier frequency offset, oscillator
// phase noise, IQ imbalance, ADC quantization and clipping, power-amplifier
// compression — plus the control-plane faults that age or destroy channel
// state (stale CSI, dropped or corrupted sounding frames).
//
// The paper's 110 dB cancellation budget and constructive-combining gains
// assume tuned analog taps and fresh CSI; filter-and-forward and coupling-
// wave-canceler work (see PAPERS.md) shows both collapse under exactly
// these impairments. This package makes that collapse injectable and
// *measurable*: every signal path in the pipeline can be threaded through
// a Profile, and every sweep stays bit-identical across worker counts
// because all randomness flows through rng.ItemSeed-derived sources.
//
// Two operating levels, matching how the rest of the repo models signals:
//
//   - Waveform level (ApplyWaveform and the individual Apply* functions):
//     sample-domain transforms for the streaming relay and codec paths.
//
//   - Budget level (CancellationFloorDB, EffectiveCancellationDB, AgingRho,
//     AgeCSI): closed-form first-order penalties for the frequency-domain
//     testbed, deterministic in the profile so degradation sweeps are
//     monotone by construction.
package impair

import (
	"math"
	"math/cmplx"

	"fastforward/internal/rng"
)

// EstimationBlockSamples is the reference block length over which the
// digital canceller's FIR estimate is assumed coherent (the Characterize
// probe length). Time-varying impairments decohere the estimate over this
// horizon, which is what turns a phase drift into a cancellation floor.
const EstimationBlockSamples = 8000

// Profile is one impairment scenario. The zero value is the ideal
// front-end: every Apply* becomes the identity and every budget penalty
// is zero, so a nil or zero Profile costs nothing and changes nothing.
type Profile struct {
	// Name labels the profile in flags, metrics and reports.
	Name string

	// CFOHz is the residual carrier frequency offset between the relay's
	// downconversion and upconversion chains (after the Sec 4.1 removal/
	// restoration, a real radio keeps a residual from oscillator drift).
	CFOHz float64
	// PhaseNoiseRadRMS is the per-sample random-walk step of the oscillator
	// phase in radians (Wiener phase noise).
	PhaseNoiseRadRMS float64
	// IQGainMismatchDB is the gain imbalance between the I and Q rails.
	IQGainMismatchDB float64
	// IQPhaseErrorDeg is the quadrature skew away from 90 degrees.
	IQPhaseErrorDeg float64
	// ADCBits is the converter resolution per rail; 0 means ideal (no
	// quantization).
	ADCBits int
	// ADCClipBackoffDB is the converter full-scale headroom above the
	// signal's RMS amplitude; samples beyond it clip. Only meaningful with
	// ADCBits > 0.
	ADCClipBackoffDB float64
	// PAInputBackoffDB is the power back-off from the PA's saturation
	// point (Rapp model); +Inf or 0-with-zero-profile means linear.
	// Smaller back-off = harder compression.
	PAInputBackoffDB float64
	// PASmoothness is the Rapp knee sharpness (typical SSPA: 2–3).
	PASmoothness float64

	// CSIAgeMs is how stale the sounding-derived CSI is when the filter is
	// applied (the paper refreshes every 50 ms; drift between refreshes is
	// governed by CoherenceMs).
	CSIAgeMs float64
	// CoherenceMs is the channel's 50% coherence time.
	CoherenceMs float64
	// SoundingLossProb is the probability that a sounding round is lost
	// outright (frame undetected), forcing the relay onto its last-known-
	// good filter for another interval.
	SoundingLossProb float64
	// SoundingCorruptProb is the probability that the sounding frame is
	// received but fails its FCS — detected corruption, same graceful
	// fallback.
	SoundingCorruptProb float64
}

// IsZero reports whether the profile injects nothing (ideal front-end).
func (p *Profile) IsZero() bool {
	if p == nil {
		return true
	}
	return p.CFOHz == 0 && p.PhaseNoiseRadRMS == 0 &&
		p.IQGainMismatchDB == 0 && p.IQPhaseErrorDeg == 0 &&
		p.ADCBits == 0 && p.PAInputBackoffDB == 0 &&
		p.CSIAgeMs == 0 && p.SoundingLossProb == 0 && p.SoundingCorruptProb == 0
}

// Source derives the deterministic random source for work item i of a
// sweep seeded with base. Impairment draws must never share a stream with
// channel synthesis (results would shift when impairments toggle) and must
// not depend on execution order (parallel sweeps), so every consumer gets
// its own ItemSeed-derived source through here.
func Source(base int64, i int) *rng.Source {
	// A fixed tag decorrelates the impairment stream from the channel
	// stream that is seeded from the same (base, i) pair.
	const impairTag = 0x1337
	return rng.New(rng.ItemSeed(rng.ItemSeed(base, i), impairTag))
}

// ApplyWaveform passes x through the receive-side front-end chain: CFO
// rotation, phase-noise random walk, IQ imbalance, then ADC quantization
// and clipping. It returns a new slice (x is untouched) unless the profile
// is ideal, in which case x is returned as-is.
func (p *Profile) ApplyWaveform(src *rng.Source, x []complex128, sampleRate float64) []complex128 {
	if p.IsZero() {
		return x
	}
	y := x
	if p.CFOHz != 0 {
		y = ApplyCFO(y, p.CFOHz, sampleRate)
	}
	if p.PhaseNoiseRadRMS > 0 {
		y = ApplyPhaseNoise(src, y, p.PhaseNoiseRadRMS)
	}
	if p.IQGainMismatchDB != 0 || p.IQPhaseErrorDeg != 0 {
		y = ApplyIQImbalance(y, p.IQGainMismatchDB, p.IQPhaseErrorDeg)
	}
	if p.ADCBits > 0 {
		y = QuantizeADC(y, p.ADCBits, p.ADCClipBackoffDB)
	}
	// A profile with only control-plane faults configured has no waveform
	// stage; x comes back unchanged, which is correct.
	return y
}

// ApplyCFO rotates x by a carrier offset of cfoHz at sampleRate, starting
// at phase zero.
func ApplyCFO(x []complex128, cfoHz, sampleRate float64) []complex128 {
	y := make([]complex128, len(x))
	step := 2 * math.Pi * cfoHz / sampleRate
	ph := 0.0
	for i, v := range x {
		y[i] = v * cmplx.Exp(complex(0, ph))
		ph += step
	}
	return y
}

// ApplyPhaseNoise applies a Wiener (random-walk) phase-noise process with
// per-sample step standard deviation sigmaRad.
func ApplyPhaseNoise(src *rng.Source, x []complex128, sigmaRad float64) []complex128 {
	y := make([]complex128, len(x))
	ph := 0.0
	for i, v := range x {
		ph += sigmaRad * src.Norm()
		y[i] = v * cmplx.Exp(complex(0, ph))
	}
	return y
}

// ApplyIQImbalance applies a receive IQ imbalance of gainDB between the
// rails and phaseDeg of quadrature skew. In the standard image model the
// output is alpha·x + beta·conj(x); the image power |beta|²/|alpha|² is
// what leaks through any linear canceller.
func ApplyIQImbalance(x []complex128, gainDB, phaseDeg float64) []complex128 {
	g := math.Pow(10, gainDB/20)
	phi := phaseDeg * math.Pi / 180
	alpha := complex((1+g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	beta := complex((1-g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	y := make([]complex128, len(x))
	for i, v := range x {
		y[i] = alpha*v + beta*cmplx.Conj(v)
	}
	return y
}

// QuantizeADC quantizes each rail of x to bits of resolution with the
// full scale set clipBackoffDB above the signal RMS amplitude, clipping
// anything beyond full scale — a mid-rise uniform converter.
func QuantizeADC(x []complex128, bits int, clipBackoffDB float64) []complex128 {
	if bits <= 0 || len(x) == 0 {
		return x
	}
	var pw float64
	for _, v := range x {
		pw += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(pw / float64(2*len(x))) // per-rail RMS
	if rms == 0 {
		return append([]complex128(nil), x...)
	}
	full := rms * math.Pow(10, clipBackoffDB/20)
	levels := float64(int64(1) << uint(bits-1)) // per polarity
	step := full / levels
	q := func(v float64) float64 {
		if v > full {
			v = full
		}
		if v < -full {
			v = -full
		}
		// Mid-rise: levels at ±(k+0.5)·step.
		return (math.Floor(v/step) + 0.5) * step
	}
	y := make([]complex128, len(x))
	for i, v := range x {
		y[i] = complex(q(real(v)), q(imag(v)))
	}
	return y
}

// ApplyPA passes x through a Rapp-model power amplifier with the
// saturation amplitude set backoffDB (power) above the signal RMS and
// knee sharpness s. The AM/AM curve is g(a) = a / (1+(a/Asat)^{2s})^{1/2s};
// phase is preserved (SSPA AM/PM is second-order).
func ApplyPA(x []complex128, backoffDB, s float64) []complex128 {
	if len(x) == 0 || math.IsInf(backoffDB, 1) {
		return x
	}
	if s <= 0 {
		s = 2
	}
	var pw float64
	for _, v := range x {
		pw += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(pw / float64(len(x)))
	if rms == 0 {
		return append([]complex128(nil), x...)
	}
	asat := rms * math.Pow(10, backoffDB/20)
	y := make([]complex128, len(x))
	for i, v := range x {
		a := cmplx.Abs(v)
		if a == 0 {
			continue
		}
		g := a / math.Pow(1+math.Pow(a/asat, 2*s), 1/(2*s))
		y[i] = v * complex(g/a, 0)
	}
	return y
}

// evm2 accumulates the first-order error-vector power (relative to signal
// power) each front-end impairment leaves behind a linear canceller or
// equalizer. These are the standard small-error expansions from the
// transceiver-impairment literature; each term is monotone in its knob, so
// profiles ordered by severity produce monotone budgets by construction.
func (p *Profile) evm2() float64 {
	var e float64
	// CFO: a linear phase ramp across the estimation block. The canceller
	// fits one coherent FIR; the mean-square residual of a phase ramp of
	// total excursion theta (after the fit absorbs the mean) is theta²/12.
	if p.CFOHz != 0 {
		theta := 2 * math.Pi * math.Abs(p.CFOHz) * EstimationBlockSamples / 20e6
		e += theta * theta / 12
	}
	// Wiener phase noise: phase variance grows as sigma²·n; averaged over
	// the block the mean-square error is sigma²·N/2.
	if p.PhaseNoiseRadRMS > 0 {
		e += p.PhaseNoiseRadRMS * p.PhaseNoiseRadRMS * EstimationBlockSamples / 2
	}
	// IQ imbalance: the conjugate image at power ((g−1)/2)² + (phi/2)² is
	// invisible to a linear-in-x canceller.
	if p.IQGainMismatchDB != 0 || p.IQPhaseErrorDeg != 0 {
		g := math.Pow(10, p.IQGainMismatchDB/20)
		phi := p.IQPhaseErrorDeg * math.Pi / 180
		e += (g-1)*(g-1)/4 + phi*phi/4
	}
	// ADC: Gaussian-loaded uniform quantizer. Quantization floor is
	// 6.02·bits + 4.77 − backoff dB; the clipping tail adds the closed-form
	// overload noise (1+a²)Q(a) − a·φ(a) at clip point a = 10^(backoff/20)
	// per-rail sigmas. Matches the QuantizeADC waveform within ~3 dB across
	// 6–12 bits (see calibration in impair_test.go).
	if p.ADCBits > 0 {
		quant := math.Pow(10, -(6.02*float64(p.ADCBits)+4.77-p.ADCClipBackoffDB)/10)
		a := math.Pow(10, p.ADCClipBackoffDB/20)
		clip := (1+a*a)*0.5*math.Erfc(a/math.Sqrt2) -
			a*math.Exp(-a*a/2)/math.Sqrt(2*math.Pi)
		if clip < 0 { // cancellation of the two tiny tail terms at high back-off
			clip = 0
		}
		e += quant + clip
	}
	// PA compression: the uncorrelated Rapp distortion (after a linear
	// canceller absorbs the gain compression) fits
	// floor_dB ≈ 1.1·s·backoff + 12 across s ∈ {2,3}, backoff ∈ [3,12] dB
	// (calibrated against ApplyPA on Gaussian input, within ~1 dB).
	if p.PAInputBackoffDB > 0 && !math.IsInf(p.PAInputBackoffDB, 1) {
		s := p.PASmoothness
		if s <= 0 {
			s = 2
		}
		e += math.Pow(10, -(1.1*s*p.PAInputBackoffDB+12)/10)
	}
	return e
}

// CancellationFloorDB returns the ceiling the front-end impairments impose
// on self-interference cancellation: the canceller subtracts a *linear,
// time-invariant* model of the transmitted signal, so every nonlinear or
// time-varying error term stays as residual. The floor is
// −10·log10(EVM²_total); an ideal profile returns +Inf (no floor).
func (p *Profile) CancellationFloorDB() float64 {
	if p == nil {
		return math.Inf(1)
	}
	e := p.evm2()
	if e <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(e)
}

// EffectiveCancellationDB caps an ideal cancellation budget by the
// profile's floor: the achieved cancellation under impairments.
func (p *Profile) EffectiveCancellationDB(idealDB float64) float64 {
	floor := p.CancellationFloorDB()
	if floor < idealDB {
		return floor
	}
	return idealDB
}

// AgingRho returns the Gauss-Markov correlation between the CSI the relay
// holds and the channel it is applied to, given the profile's CSI age and
// coherence time: 0.5^(age/coherence), 1 when no aging is configured.
func (p *Profile) AgingRho() float64 {
	if p == nil || p.CSIAgeMs <= 0 || p.CoherenceMs <= 0 {
		return 1
	}
	return math.Pow(0.5, p.CSIAgeMs/p.CoherenceMs)
}

// AgeCSI returns an aged copy of a per-subcarrier channel estimate: each
// element decorrelates to correlation rho with an innovation matching its
// own power, the Gauss-Markov model the staleness study (cnf.sounding)
// uses. rho >= 1 returns h unchanged.
func AgeCSI(src *rng.Source, h []complex128, rho float64) []complex128 {
	if rho >= 1 {
		return h
	}
	innov := 1 - rho*rho
	out := make([]complex128, len(h))
	r := complex(rho, 0)
	for i, v := range h {
		pw := real(v)*real(v) + imag(v)*imag(v)
		out[i] = r*v + src.ComplexGaussian(innov*pw)
	}
	return out
}

// SoundingOutcome is the fate of one sounding round under the profile.
type SoundingOutcome int

const (
	// SoundingOK: the round succeeded; CSI refreshes.
	SoundingOK SoundingOutcome = iota
	// SoundingLost: the frame was never detected; the relay holds its
	// last-known-good filter.
	SoundingLost
	// SoundingCorrupt: the frame was received but failed its FCS; detected
	// corruption, same fallback.
	SoundingCorrupt
)

// String names the outcome for metrics.
func (o SoundingOutcome) String() string {
	switch o {
	case SoundingOK:
		return "ok"
	case SoundingLost:
		return "lost"
	case SoundingCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// DrawSounding draws the fate of one sounding round. Exactly one uniform
// variate is consumed regardless of the configured probabilities, so
// enabling or disabling loss injection never shifts the rest of the
// stream.
func (p *Profile) DrawSounding(src *rng.Source) SoundingOutcome {
	u := src.Float64()
	if p == nil {
		return SoundingOK
	}
	if u < p.SoundingLossProb {
		return SoundingLost
	}
	if u < p.SoundingLossProb+p.SoundingCorruptProb {
		return SoundingCorrupt
	}
	return SoundingOK
}
