package relay

import (
	"fmt"
	"math"

	"fastforward/internal/cnf"
)

// This file is the admission-control face of the Sec 3.5 amplification
// rule. A single relay front-end serving several concurrent full-duplex
// sessions shares one receiver noise floor: every admitted session's
// residual self-interference (rx·A/C, the part its canceller leaves
// behind) raises the floor that every *other* session's amplifier then
// forwards toward its destination. The per-session residual rule of
// ChooseAmplificationResidualDB,
//
//	(n0 + rx·A/C) · A / a  ≤  n0 / margin,
//
// therefore generalizes to a shared-floor form with an external residual
// load L = Σ_j β_j·A_j contributed by the other sessions (β = rx/(n0·C)
// per unit of linear amplification):
//
//	β·A² + (1+L)·A  ≤  target,   target = 10^((a − margin)/10).
//
// BudgetAccount tracks the admitted sessions' contributions and answers
// the daemon's admission question: can a new session be granted a useful
// amplification without pushing any already-granted session past its own
// recomputed bound? With L = 0 the bound reduces bit-exactly to
// ChooseAmplificationResidualDB, so the account is a strict superset of
// the single-session rule.

// SessionBudget is the physics a session declares at admission time: the
// inputs of the Sec 3.5 amplification rule for that session.
type SessionBudget struct {
	// CancellationDB is the session's self-interference cancellation C
	// (+Inf models an ideal canceller: no residual contribution).
	CancellationDB float64
	// RDAttenDB is the relay→destination path attenuation a (positive dB).
	RDAttenDB float64
	// PAHeadroomDB is maxTxPower − rxPowerAtRelay in dB.
	PAHeadroomDB float64
	// RxOverNoiseDB is the received signal-to-thermal-noise ratio rx/n0.
	RxOverNoiseDB float64
}

// betaOf returns β = rx/(n0·C): the session's residual weight relative to
// thermal noise per unit of linear amplification. 0 for an ideal
// canceller.
func betaOf(s SessionBudget) float64 {
	return math.Pow(10, (s.RxOverNoiseDB-s.CancellationDB)/10)
}

// noiseBoundShared solves the shared-floor noise rule for the largest
// admissible linear amplification: the positive root of
// β·A² + (1+L)·A − target, in the rationalized form that stays stable as
// β → 0 (see ChooseAmplificationResidualDB). extLoad is L, the other
// sessions' aggregate residual load.
func noiseBoundShared(beta, extLoad, target float64) float64 {
	ext := 1 + extLoad
	if beta <= 0 {
		return target / ext
	}
	return 2 * target / (ext + math.Sqrt(ext*ext+4*beta*target))
}

// decisionUnderLoad applies the full amplification rule for one session
// whose receiver floor carries an external residual load. extLoad 0
// reproduces ChooseAmplificationResidualDB bit-exactly (the same guard,
// the same rationalized root).
func decisionUnderLoad(s SessionBudget, extLoad float64) AmpDecision {
	noiseBound := s.RDAttenDB - cnf.NoiseMarginDB
	beta := betaOf(s)
	if extLoad > 0 || (beta > 0 && !math.IsInf(s.CancellationDB, 1)) {
		target := math.Pow(10, noiseBound/10)
		a := noiseBoundShared(beta, extLoad, target)
		noiseBound = 10 * math.Log10(a)
	}
	return chooseAmp(s.CancellationDB, noiseBound, s.PAHeadroomDB, true)
}

// ampSlackDB absorbs float noise when a member's granted amplification is
// compared against its recomputed bound: a violation must exceed this to
// count. Far below any physically meaningful margin.
const ampSlackDB = 1e-9

// AdmissionError reports why BudgetAccount refused a session.
type AdmissionError struct {
	// Reason is a stable machine-readable cause:
	// "duplicate_id", "below_min_amp", or "member_violation".
	Reason string
	// Session names the session the refusal protects: the candidate for
	// below_min_amp, the already-admitted member whose granted
	// amplification the candidate would invalidate for member_violation.
	Session string
	// AmpDB is the amplification at the refusal point: the candidate's
	// infeasible grant, or the violated member's recomputed bound.
	AmpDB float64
}

// Error formats the refusal for logs and refuse frames.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("relay budget: %s (session %q, amp %.3f dB)", e.Reason, e.Session, e.AmpDB)
}

// budgetMember is one admitted session's sticky grant.
type budgetMember struct {
	id   string
	sb   SessionBudget
	dec  AmpDecision
	beta float64
	// load is β·A (linear): this member's residual contribution to the
	// shared floor.
	load float64
}

// BudgetAccount is the aggregate Sec 3.5 amplification/cancellation
// budget of one relay front-end. Admitted sessions hold their granted
// amplification until released (grants are sticky — a running session's
// gain is not re-tuned under it); admission of a new session succeeds
// only if every sticky grant remains within its recomputed shared-floor
// bound. Members are kept in admission order, so all accounting is
// deterministic. Not safe for concurrent use; the daemon serializes
// access under its own lock.
type BudgetAccount struct {
	minAmpDB float64
	members  []budgetMember
}

// NewBudgetAccount creates an empty account. minAmpDB is the smallest
// amplification worth granting: a session whose bound falls below it
// (or hits the 0 dB floor) is refused rather than admitted uselessly.
func NewBudgetAccount(minAmpDB float64) *BudgetAccount {
	return &BudgetAccount{minAmpDB: minAmpDB}
}

// MinAmpDB returns the configured admission threshold.
func (b *BudgetAccount) MinAmpDB() float64 { return b.minAmpDB }

// Len returns the number of admitted sessions.
func (b *BudgetAccount) Len() int { return len(b.members) }

// ResidualLoad returns the aggregate residual load L = Σ β_i·A_i (linear,
// relative to thermal noise) of all admitted sessions.
func (b *BudgetAccount) ResidualLoad() float64 {
	var l float64
	for i := range b.members {
		l += b.members[i].load
	}
	return l
}

// loadExcluding sums every member's residual load except index skip
// (-1 sums all).
func (b *BudgetAccount) loadExcluding(skip int) float64 {
	var l float64
	for i := range b.members {
		if i != skip {
			l += b.members[i].load
		}
	}
	return l
}

// admissible reports whether a decision clears the account's threshold:
// a positive grant of at least minAmpDB that did not hit the floor clamp.
func (b *BudgetAccount) admissible(dec AmpDecision) bool {
	return dec.Bound != AmpBoundFloor && dec.AmpDB >= b.minAmpDB
}

// violatedMember recomputes every member's shared-floor bound with the
// candidate contributing candLoad and returns the first member whose
// sticky grant exceeds it (admission order), or -1 when all grants hold.
func (b *BudgetAccount) violatedMember(candLoad float64) int {
	for i := range b.members {
		ext := b.loadExcluding(i) + candLoad
		bound := decisionUnderLoad(b.members[i].sb, ext)
		if b.members[i].dec.AmpDB > bound.AmpDB+ampSlackDB {
			return i
		}
	}
	return -1
}

// Preview evaluates the strict admission decision for a candidate without
// admitting it: the amplification it would be granted and whether
// admission would succeed.
func (b *BudgetAccount) Preview(s SessionBudget) (AmpDecision, bool) {
	dec := decisionUnderLoad(s, b.ResidualLoad())
	if !b.admissible(dec) {
		return dec, false
	}
	candLoad := betaOf(s) * math.Pow(10, dec.AmpDB/10)
	return dec, b.violatedMember(candLoad) < 0
}

// Admit applies the strict policy: the candidate is granted the full
// shared-floor bound or refused. Refusal returns an *AdmissionError
// (below_min_amp when the candidate's own bound is too small to help,
// member_violation when granting it would push an admitted session past
// its recomputed bound) and leaves the account unchanged.
func (b *BudgetAccount) Admit(id string, s SessionBudget) (AmpDecision, error) {
	if b.find(id) >= 0 {
		return AmpDecision{}, &AdmissionError{Reason: "duplicate_id", Session: id}
	}
	dec := decisionUnderLoad(s, b.ResidualLoad())
	if !b.admissible(dec) {
		return dec, &AdmissionError{Reason: "below_min_amp", Session: id, AmpDB: dec.AmpDB}
	}
	beta := betaOf(s)
	candLoad := beta * math.Pow(10, dec.AmpDB/10)
	if i := b.violatedMember(candLoad); i >= 0 {
		m := &b.members[i]
		bound := decisionUnderLoad(m.sb, b.loadExcluding(i)+candLoad)
		return dec, &AdmissionError{Reason: "member_violation", Session: m.id, AmpDB: bound.AmpDB}
	}
	b.members = append(b.members, budgetMember{id: id, sb: s, dec: dec, beta: beta, load: candLoad})
	return dec, nil
}

// degradeIterations bounds the bisection of AdmitDegraded; 64 halvings
// drive the bracket below any representable dB difference.
const degradeIterations = 64

// AdmitDegraded applies the degrade policy: when the strict grant would
// violate an admitted member, the candidate's amplification is bisected
// down (members' sticky grants are never touched) to the largest value
// every member tolerates. The returned bool reports whether the grant
// was degraded below the strict bound. Refusal (*AdmissionError) happens
// only when even minAmpDB is intolerable or the candidate's own bound is
// below the threshold.
func (b *BudgetAccount) AdmitDegraded(id string, s SessionBudget) (AmpDecision, bool, error) {
	if b.find(id) >= 0 {
		return AmpDecision{}, false, &AdmissionError{Reason: "duplicate_id", Session: id}
	}
	dec := decisionUnderLoad(s, b.ResidualLoad())
	if !b.admissible(dec) {
		return dec, false, &AdmissionError{Reason: "below_min_amp", Session: id, AmpDB: dec.AmpDB}
	}
	beta := betaOf(s)
	strictLin := math.Pow(10, dec.AmpDB/10)
	if b.violatedMember(beta*strictLin) < 0 {
		b.members = append(b.members, budgetMember{id: id, sb: s, dec: dec, beta: beta, load: beta * strictLin})
		return dec, false, nil
	}
	// β = 0 contributes no load, so a violation cannot be the candidate's
	// doing; the strict check above would not have failed.
	minLin := math.Pow(10, b.minAmpDB/10)
	if b.violatedMember(beta*minLin) >= 0 {
		i := b.violatedMember(beta * minLin)
		m := &b.members[i]
		bound := decisionUnderLoad(m.sb, b.loadExcluding(i)+beta*minLin)
		return dec, false, &AdmissionError{Reason: "member_violation", Session: m.id, AmpDB: bound.AmpDB}
	}
	// Bisect the largest tolerable grant in [minLin, strictLin]: load is
	// monotone in the grant, so feasibility is monotone too.
	lo, hi := minLin, strictLin
	for k := 0; k < degradeIterations; k++ {
		mid := lo + (hi-lo)/2
		if b.violatedMember(beta*mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	granted := AmpDecision{
		AmpDB:               10 * math.Log10(lo),
		Bound:               AmpBoundBudget,
		StabilityHeadroomDB: s.CancellationDB - 10*math.Log10(lo),
	}
	b.members = append(b.members, budgetMember{id: id, sb: s, dec: granted, beta: beta, load: beta * lo})
	return granted, true, nil
}

// Release removes an admitted session, returning its residual
// contribution to the shared pool. Reports whether the id was admitted.
func (b *BudgetAccount) Release(id string) bool {
	i := b.find(id)
	if i < 0 {
		return false
	}
	b.members = append(b.members[:i], b.members[i+1:]...)
	return true
}

// Decision returns the sticky grant of an admitted session.
func (b *BudgetAccount) Decision(id string) (AmpDecision, bool) {
	if i := b.find(id); i >= 0 {
		return b.members[i].dec, true
	}
	return AmpDecision{}, false
}

// find returns the member index of id, or -1. Linear scan: accounts hold
// tens of sessions, and the slice keeps admission order deterministic.
func (b *BudgetAccount) find(id string) int {
	for i := range b.members {
		if b.members[i].id == id {
			return i
		}
	}
	return -1
}
