package relay

import (
	"testing"

	"fastforward/internal/golden"
)

// TestAmpDecisionGolden pins the amplification rule across its operating
// regimes — each bound binding, the floor clamp, degraded cancellation,
// and the residual-aware noise rule — so a change to margins or the
// bound ordering is caught bit-level. Re-baseline with -update.
func TestAmpDecisionGolden(t *testing.T) {
	type c struct {
		name           string
		cDB, aDB, paDB float64
		rxOverN0DB     float64 // <0: plain rule
		noiseRule      bool
	}
	cases := []c{
		{"cancellation_bound", 40, 80, 60, -1, true},
		{"noise_rule_bound", 110, 50, 60, -1, true},
		{"pa_bound", 110, 80, 30, -1, true},
		{"floor_clamp", 2, 1, 1, -1, true},
		{"no_noise_rule", 110, 50, 60, -1, false},
		{"degraded_c", 28, 60, 60, -1, true},
		{"residual_mild", 48, 60, 60, 45, true},
		{"residual_severe", 28, 60, 60, 45, true},
		{"residual_ideal_c", 110, 60, 60, 45, true},
	}
	got := map[string]float64{}
	for _, tc := range cases {
		var d AmpDecision
		if tc.rxOverN0DB >= 0 {
			d = ChooseAmplificationResidualDB(tc.cDB, tc.aDB, tc.paDB, tc.rxOverN0DB, tc.noiseRule)
		} else {
			d = ChooseAmplificationDB(tc.cDB, tc.aDB, tc.paDB, tc.noiseRule)
		}
		got[golden.Key("amp", tc.name, "db")] = d.AmpDB
		got[golden.Key("amp", tc.name, "bound")] = float64(d.Bound)
		got[golden.Key("amp", tc.name, "headroom_db")] = d.StabilityHeadroomDB
	}
	golden.Check(t, "testdata/amp_golden.json", got)
}
