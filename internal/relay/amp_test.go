package relay

import (
	"testing"

	"fastforward/internal/cnf"
)

func TestChooseAmplificationDB(t *testing.T) {
	cases := []struct {
		name                    string
		cancel, rdAtten, paHead float64
		noiseRule               bool
		wantAmp                 float64
		wantBound               AmpBound
	}{
		{"cancellation binds", 60, 100, 100, true, 57, AmpBoundCancellation},
		{"noise rule binds", 110, 80, 100, true, 77, AmpBoundNoiseRule},
		{"noise rule disabled", 110, 80, 200, false, 107, AmpBoundCancellation},
		{"pa binds", 110, 100, 50, true, 50, AmpBoundPALimit},
		{"floor clamp", 2, 1, 100, true, 0, AmpBoundFloor},
	}
	for _, c := range cases {
		got := ChooseAmplificationDB(c.cancel, c.rdAtten, c.paHead, c.noiseRule)
		if got.AmpDB != c.wantAmp || got.Bound != c.wantBound {
			t.Errorf("%s: got amp %.1f bound %s, want %.1f %s",
				c.name, got.AmpDB, got.Bound, c.wantAmp, c.wantBound)
		}
		if want := c.cancel - got.AmpDB; got.StabilityHeadroomDB != want {
			t.Errorf("%s: headroom %.1f, want %.1f", c.name, got.StabilityHeadroomDB, want)
		}
	}
}

// TestChooseAmplificationMatchesCNFRule: with no PA constraint the device
// rule must reduce to cnf.AmplificationLimitDB (the paper's
// A = min(C−3, a−3)). Guarded here so the two layers cannot drift apart.
func TestChooseAmplificationMatchesCNFRule(t *testing.T) {
	for _, c := range []struct{ cancel, rdAtten float64 }{
		{110, 80}, {60, 100}, {2, 1}, {95, 95},
	} {
		got := ChooseAmplificationDB(c.cancel, c.rdAtten, 1e9, true).AmpDB
		want := cnf.AmplificationLimitDB(c.cancel, c.rdAtten)
		if got != want {
			t.Errorf("ChooseAmplificationDB(%v,%v) = %v, want cnf rule %v",
				c.cancel, c.rdAtten, got, want)
		}
	}
}
