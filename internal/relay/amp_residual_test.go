package relay

import (
	"math"
	"testing"

	"fastforward/internal/cnf"
)

// TestResidualBoundUnitDiscipline pins the dB/linear unit discipline of
// the self-interference-aware noise bound. Every row states its inputs
// in dB (power dB throughout: x dB ⇔ 10^(x/10) linear, never the
// amplitude 20·log10 convention); the test recomputes the bound
// independently in the linear domain and requires the two to agree, and
// checks the vanishing-residual limit: as the residual weight β → 0 the
// quadratic-root bound must collapse to the plain a − 3 dB rule, both in
// dB and after conversion to linear power ratios.
func TestResidualBoundUnitDiscipline(t *testing.T) {
	const paHead = 500.0 // never binding: isolates the noise rule

	cases := []struct {
		name            string
		cancellationDB  float64
		rdAttenDB       float64
		rxOverNoiseDB   float64
		wantPlain       bool    // residual bound must equal plain a − 3 dB
		plainTolDB      float64 // tolerance for the wantPlain comparison
		wantBound       AmpBound
		wantBackoffOver float64 // minimum back-off below plain rule, dB
	}{
		{
			name:           "infinite cancellation is the exact plain rule",
			cancellationDB: math.Inf(1), rdAttenDB: 60, rxOverNoiseDB: 60,
			wantPlain: true, plainTolDB: 0, wantBound: AmpBoundNoiseRule,
		},
		{
			name:           "large finite C approximates the plain rule",
			cancellationDB: 200, rdAttenDB: 60, rxOverNoiseDB: 40,
			// β = 10^((40−200)/10) = 1e-16; first-order back-off is
			// 10·log10(1+β·target) ≈ 4.3e-4·β·target dB — far below 1e-6.
			wantPlain: true, plainTolDB: 1e-6, wantBound: AmpBoundNoiseRule,
		},
		{
			name:           "signal far below noise floor approximates the plain rule",
			cancellationDB: 90, rdAttenDB: 60, rxOverNoiseDB: -120,
			wantPlain: true, plainTolDB: 1e-6, wantBound: AmpBoundNoiseRule,
		},
		{
			name:           "degraded cancellation backs off below the plain rule",
			cancellationDB: 55, rdAttenDB: 60, rxOverNoiseDB: 50,
			wantPlain: false, wantBound: AmpBoundNoiseRule, wantBackoffOver: 1,
		},
		{
			name:           "strong residual halves the bound in dB terms",
			cancellationDB: 40, rdAttenDB: 60, rxOverNoiseDB: 55,
			// β·target ≫ 1, so A ≈ √(target/β): the dB bound tends to
			// (a − 3 − (rx − C))/2, a full unit-convention witness — an
			// amplitude-dB (20·log10) slip anywhere doubles or halves it.
			wantPlain: false, wantBound: AmpBoundNoiseRule, wantBackoffOver: 10,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ChooseAmplificationResidualDB(tc.cancellationDB, tc.rdAttenDB, paHead, tc.rxOverNoiseDB, true)
			if got.Bound != tc.wantBound {
				t.Fatalf("bound = %s, want %s", got.Bound, tc.wantBound)
			}
			plain := tc.rdAttenDB - cnf.NoiseMarginDB

			// Independent linear-domain recomputation: solve
			// β·A² + A − target = 0 by bisection on the monotone LHS,
			// sharing no algebra with the closed form under test.
			aLin := math.Pow(10, got.AmpDB/10)
			if !math.IsInf(tc.cancellationDB, 1) {
				beta := math.Pow(10, (tc.rxOverNoiseDB-tc.cancellationDB)/10)
				target := math.Pow(10, plain/10)
				lo, hi := 0.0, target
				for i := 0; i < 200; i++ {
					mid := (lo + hi) / 2
					if beta*mid*mid+mid < target {
						lo = mid
					} else {
						hi = mid
					}
				}
				ref := (lo + hi) / 2
				if math.Abs(aLin-ref)/ref > 1e-9 {
					t.Errorf("linear root mismatch: closed form %.9g, bisection %.9g", aLin, ref)
				}
			}

			if tc.wantPlain {
				if diff := math.Abs(got.AmpDB - plain); diff > tc.plainTolDB {
					t.Errorf("AmpDB = %.12f dB, want plain rule %.12f dB (|diff| %.3g > %.3g)",
						got.AmpDB, plain, diff, tc.plainTolDB)
				}
				// Same limit stated in linear power ratios: A → a/2
				// (the −3 dB margin is a factor of 10^0.3, not 2 exactly,
				// so compare against the margin constant, not a literal).
				wantLin := math.Pow(10, tc.rdAttenDB/10) / math.Pow(10, cnf.NoiseMarginDB/10)
				linTol := wantLin * (math.Pow(10, tc.plainTolDB/10) - 1 + 1e-12)
				if diff := math.Abs(aLin - wantLin); diff > linTol {
					t.Errorf("linear amplification %.9g, want %.9g (|diff| %.3g > %.3g)",
						aLin, wantLin, diff, linTol)
				}
			} else {
				if backoff := plain - got.AmpDB; backoff < tc.wantBackoffOver {
					t.Errorf("back-off below plain rule = %.3f dB, want > %.3f dB",
						backoff, tc.wantBackoffOver)
				}
			}
		})
	}
}
