package relay

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

func basicMIMOConfig() MIMOConfig {
	return MIMOConfig{
		SampleRate:           20e6,
		AmplificationDB:      0,
		PipelineDelaySamples: 2,
	}
}

func TestMIMORelayIdentityForwarding(t *testing.T) {
	r, err := NewMIMO(basicMIMOConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := [][]complex128{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}}
	out := r.Process(in)
	for s := 0; s < 2; s++ {
		for i := range in[s] {
			want := complex128(0)
			if i >= 2 {
				want = in[s][i-2]
			}
			if cmplx.Abs(out[s][i]-want) > 1e-12 {
				t.Fatalf("stream %d sample %d: %v, want %v", s, i, out[s][i], want)
			}
		}
	}
}

func TestMIMORelayPreFilterMatrix(t *testing.T) {
	// A swap matrix: output 0 carries input 1 and vice versa.
	cfg := basicMIMOConfig()
	cfg.PreFilter = [][][]complex128{
		{{0}, {1}},
		{{1}, {0}},
	}
	r, err := NewMIMO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Process([][]complex128{{1, 0, 0}, {2i, 0, 0}})
	if cmplx.Abs(out[0][2]-2i) > 1e-12 || cmplx.Abs(out[1][2]-1) > 1e-12 {
		t.Fatalf("swap filter broken: %v %v", out[0][2], out[1][2])
	}
}

func TestMIMORelayRejectsBadConfig(t *testing.T) {
	cfg := basicMIMOConfig()
	cfg.PipelineDelaySamples = 0
	if _, err := NewMIMO(cfg); err == nil {
		t.Error("zero pipeline delay accepted")
	}
	cfg = basicMIMOConfig()
	cfg.RxNoiseMW = 1
	if _, err := NewMIMO(cfg); err == nil {
		t.Error("noise without source accepted")
	}
	cfg = basicMIMOConfig()
	cfg.SampleRate = 0
	if _, err := NewMIMO(cfg); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestMIMOCrossTalkCancellation(t *testing.T) {
	// With the full 2x2 SI matrix (including cross talk) and a matching
	// canceller, the relayed signal must be a clean delayed copy. With
	// only the diagonal cancelled, the cross talk residue corrupts it —
	// the reason Fig 8's architecture has cross-talk taps.
	src := rng.New(1)
	si := TypicalMIMOSI(src, -30)
	in := [][]complex128{src.NoiseVector(3000, 1e-6), src.NoiseVector(3000, 1e-6)}

	full := basicMIMOConfig()
	full.AmplificationDB = 40
	full.SITaps = si
	full.CancelTaps = si
	rFull, err := NewMIMO(full)
	if err != nil {
		t.Fatal(err)
	}
	outFull := rFull.Process(in)

	diagOnly := full
	diagOnly.CancelTaps = [][][]complex128{
		{si[0][0], nil},
		{nil, si[1][1]},
	}
	rDiag, err := NewMIMO(diagOnly)
	if err != nil {
		t.Fatal(err)
	}
	outDiag := rDiag.Process(in)

	amp := dsp.AmplitudeFromDB(40)
	var errFull, errDiag float64
	for s := 0; s < 2; s++ {
		want := dsp.Scale(dsp.Delay(in[s], 2), amp)
		errFull += dsp.Power(dsp.Sub(outFull[s][100:], want[100:]))
		errDiag += dsp.Power(dsp.Sub(outDiag[s][100:], want[100:]))
	}
	sig := dsp.Power(in[0]) * amp * amp
	if errFull > sig*1e-6 {
		t.Errorf("full cancellation residual too high: %v vs signal %v", errFull, sig)
	}
	if errDiag < errFull*100 {
		t.Errorf("diagonal-only cancellation should leave cross-talk residue: %v vs %v",
			errDiag, errFull)
	}
}

func TestMIMOFeedbackStability(t *testing.T) {
	// Same Fig 7 physics in the MIMO loop: amplification above the SI
	// isolation diverges; below it stays bounded.
	src := rng.New(2)
	si := TypicalMIMOSI(src, -40)
	isolation := -SelfInterferencePowerDB(si)
	in := [][]complex128{src.NoiseVector(2000, 1), src.NoiseVector(2000, 1)}

	stable := basicMIMOConfig()
	stable.AmplificationDB = isolation - 8
	stable.SITaps = si
	rs, _ := NewMIMO(stable)
	outS := rs.Process(in)
	ps := dsp.Power(outS[0][1500:]) + dsp.Power(outS[1][1500:])
	if math.IsNaN(ps) || math.IsInf(ps, 1) {
		t.Fatal("stable MIMO loop diverged")
	}

	unstable := stable
	unstable.AmplificationDB = isolation + 6
	ru, _ := NewMIMO(unstable)
	outU := ru.Process(in)
	pu := dsp.Power(outU[0][1500:]) + dsp.Power(outU[1][1500:])
	if !(pu > ps*1e3) && !math.IsInf(pu, 1) && !math.IsNaN(pu) {
		t.Errorf("expected MIMO divergence when A exceeds isolation: %v vs %v", pu, ps)
	}
}

func TestTypicalMIMOSILevels(t *testing.T) {
	src := rng.New(3)
	var level float64
	const trials = 300
	for i := 0; i < trials; i++ {
		si := TypicalMIMOSI(src, -30)
		level += SelfInterferencePowerDB(si)
	}
	level /= trials
	// Diagonals at -30 dB plus weaker cross talk: aggregate within a few
	// dB of the nominal level.
	if level < -33 || level > -25 {
		t.Errorf("mean SI level %v dB, want ~-29", level)
	}
}

func BenchmarkMIMORelayStep(b *testing.B) {
	src := rng.New(4)
	si := TypicalMIMOSI(src, -30)
	cfg := basicMIMOConfig()
	cfg.SITaps = si
	cfg.CancelTaps = si
	cfg.AmplificationDB = 20
	r, _ := NewMIMO(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step([2]complex128{1, 1i})
	}
}
