package relay

// The paper's comparison points (Secs 2 and 5): the half-duplex
// decode-and-forward mesh router (Apple Airport Express style) and the
// blind amplify-and-forward repeater. The mesh router operates at packet
// granularity, so it is modeled as a rate combinator rather than a sample
// pipeline; the blind repeater is an FFRelay with a unit pre-filter and
// cancellation-limited amplification.

// HalfDuplexMeshRate returns the end-to-end PHY throughput of a two-hop
// half-duplex relay under the paper's idealized MAC: the AP and the mesh
// router transmit in perfectly scheduled alternating slots, so forwarding
// R1 (AP→relay) and R2 (relay→client) combine as the harmonic mean
// R1·R2/(R1+R2) — each packet consumes airtime on both hops.
func HalfDuplexMeshRate(r1, r2 float64) float64 {
	if r1 <= 0 || r2 <= 0 {
		return 0
	}
	return r1 * r2 / (r1 + r2)
}

// BestHalfDuplexRate models the paper's "AP is smart enough to figure out
// when it should use the half-duplex router": the max of the direct rate
// and the two-hop rate.
func BestHalfDuplexRate(direct, r1, r2 float64) float64 {
	two := HalfDuplexMeshRate(r1, r2)
	if direct > two {
		return direct
	}
	return two
}

// NewAmplifyForward builds the blind repeater baseline of Sec 5.5: the
// same full-duplex pipeline with no constructive filter and amplification
// pushed to the cancellation limit (no noise-aware back-off).
func NewAmplifyForward(cfg Config) *FFRelay {
	cfg.PreFilterTaps = []complex128{1}
	return New(cfg)
}
