// Package relay implements the FastForward relay device as a streaming
// sample processor, plus the baseline relays the paper compares against.
//
// The FFRelay models the full Layer-1 pipeline of Fig 3 at baseband sample
// resolution: the physical TX→RX self-interference feedback path, causal
// digital cancellation, CFO removal and restoration (Sec 4.1), the CNF
// digital pre-filter, amplification, known-noise injection for cancellation
// tuning, and an explicit pipeline delay (ADC/DAC and any buffering) — the
// knob the latency experiment (Fig 16) sweeps. Because the transmitted
// signal feeds back into the received signal, the simulation exhibits the
// positive-feedback instability of Fig 7 mechanically when amplification
// exceeds isolation.
//
// ChooseAmplificationDB centralizes the device's amplification rule —
// A = min(C − stability margin, a − noise margin, PA headroom) — and
// reports which bound was active (AmpDecision), the quantity behind the
// relay.amp_db / relay.amp_bound.* run metrics of OBSERVABILITY.md.
// BudgetAccount extends the rule to many concurrent sessions sharing one
// receiver noise floor — the admission gate of the relay daemon
// (internal/relayd, OPERATIONS.md).
package relay

import (
	"math"

	"fastforward/internal/dsp"
	"fastforward/internal/impair"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
	"fastforward/internal/sic"
)

// Config parameterizes an FFRelay.
type Config struct {
	// SampleRate in samples/second (20 Msps for the paper's PHY).
	SampleRate float64
	// AmplificationDB is the power amplification applied to the cleaned
	// received signal.
	AmplificationDB float64
	// PipelineDelaySamples is the processing latency through the relay in
	// whole samples (ADC+DAC ≈ 1 sample at 20 Msps, plus any buffering).
	// Must be at least 1: the transmitted sample cannot depend on the
	// received sample of the same instant.
	PipelineDelaySamples int
	// PreFilterTaps is the CNF digital pre-filter at SampleRate (already
	// including any analog-stage rotation folded in). Defaults to a unit
	// impulse (pure amplify-and-forward).
	PreFilterTaps []complex128
	// CFOHz is the relay's carrier offset relative to the source. The
	// relay removes it before filtering and restores it before
	// transmission so the destination sees the source's CFO unchanged.
	CFOHz float64
	// SIChannelTaps is the *physical* residual self-interference channel
	// (after analog cancellation) at sample spacing.
	SIChannelTaps []complex128
	// CancelTaps is the digital canceller's estimate of SIChannelTaps.
	CancelTaps []complex128
	// InjectNoiseMW, when positive, continuously adds known Gaussian noise
	// of this power to the transmission (the tuning probe of Sec 3.3).
	InjectNoiseMW float64
	// NoiseSource supplies receiver and injection noise; required when
	// RxNoiseMW or InjectNoiseMW is positive.
	NoiseSource *rng.Source
	// RxNoiseMW is the relay receiver's thermal noise power.
	RxNoiseMW float64
	// Impair is the relay's hardware impairment profile (nil = ideal).
	// The receive chain (CFO, phase noise, IQ, ADC) distorts what the
	// digital canceller sees, so cancellation erodes toward the profile's
	// floor; the transmit chain (PA compression) distorts what feeds back.
	Impair *impair.Profile
	// ImpairSource draws the impairment randomness (phase-noise walk);
	// keep it separate from NoiseSource so toggling impairments never
	// shifts the noise stream. Required when Impair configures phase noise.
	ImpairSource *rng.Source
	// ImpairRefRMS is the AGC reference amplitude the impairment streams
	// level against (ADC full scale, PA saturation). Defaults to the RMS
	// of a unit-power signal (1.0) when zero.
	ImpairRefRMS float64
}

// FFRelay is a streaming full-duplex relay. Internally the forward path
// is a pipeline.Chain — SI-cancel → CFO remove → CNF filter → CFO restore
// → amp → pipeline delay — driven one sample per Step through the
// physical feedback loop; the same chain shape carries the per-stage
// latency accounting behind the ≤100 ns processing-delay claim.
type FFRelay struct {
	cfg Config
	// si is the physical TX→RX leakage channel (outside the device).
	si        *dsp.FIR
	canceller *sic.DigitalCanceller
	cancel    *pipeline.CancelStage
	// fwd is the device's forward signal path as a declared chain.
	fwd *pipeline.Chain
	// tx is the transmit-side impairment chain (nil when ideal).
	tx     *pipeline.Chain
	ampLin float64 // amplitude gain
	// pending is the chain's output from the previous Step: the sample the
	// handoff register releases to the antenna next instant.
	pending complex128
	// lastInjected holds the most recent injected-noise sample, exposed for
	// tuning procedures that correlate against the known probe.
	lastInjected complex128
	// refBuf/rxBuf/txBuf are 1-sample scratch blocks for the per-sample
	// drive of the block chain (no per-Step allocation).
	refBuf [1]complex128
	rxBuf  [1]complex128
	txBuf  [1]complex128
}

// New builds the relay. It panics on nonsensical configurations (zero
// sample rate, pipeline delay < 1).
func New(cfg Config) *FFRelay {
	if cfg.SampleRate <= 0 {
		panic("relay: SampleRate must be positive")
	}
	if cfg.PipelineDelaySamples < 1 {
		panic("relay: PipelineDelaySamples must be >= 1 (no zero-delay loop)")
	}
	pre := cfg.PreFilterTaps
	if len(pre) == 0 {
		pre = []complex128{1}
	}
	si := cfg.SIChannelTaps
	if len(si) == 0 {
		si = []complex128{0}
	}
	canc := cfg.CancelTaps
	if len(canc) == 0 {
		canc = make([]complex128, len(si))
	}
	if (cfg.RxNoiseMW > 0 || cfg.InjectNoiseMW > 0) && cfg.NoiseSource == nil {
		panic("relay: NoiseSource required when noise powers are set")
	}
	var rxImp, txImp *impair.Stream
	if !cfg.Impair.IsZero() {
		if cfg.Impair.PhaseNoiseRadRMS > 0 && cfg.ImpairSource == nil {
			panic("relay: ImpairSource required when Impair configures phase noise")
		}
		ref := cfg.ImpairRefRMS
		if ref <= 0 {
			ref = 1
		}
		rxImp = impair.NewRxStream(cfg.Impair, cfg.ImpairSource, cfg.SampleRate, ref)
		txImp = impair.NewTxStream(cfg.Impair, ref)
	}
	canceller := sic.NewDigitalCanceller(canc)
	r := &FFRelay{
		cfg:       cfg,
		si:        dsp.NewFIR(si),
		canceller: canceller,
		cancel:    canceller.Stage(),
		ampLin:    dsp.AmplitudeFromDB(cfg.AmplificationDB),
	}
	phaseStep := 2 * math.Pi * cfg.CFOHz / cfg.SampleRate
	stages := make([]pipeline.Stage, 0, 8)
	if rxImp != nil {
		// Receive-chain impairments distort what the canceller observes,
		// while its reference (tx) stays clean — the mismatch a linear
		// canceller cannot subtract, eroding cancellation to the profile's
		// floor.
		stages = append(stages, pipeline.NewPusherStage("rx_impair", 0, rxImp))
	}
	stages = append(stages,
		r.cancel,
		pipeline.NewCFOStage("cfo_remove", -phaseStep),
		pipeline.NewFIRStage("cnf_pre", pre),
		pipeline.NewCFOStage("cfo_restore", phaseStep),
		pipeline.NewGainStage("amp", complex(r.ampLin, 0)),
		// The pending-sample handoff contributes one sample of delay, so
		// the delay line holds the remainder; the marker declares the
		// handoff register's sample so LatencySamples reports the full
		// configured pipeline delay.
		pipeline.NewDelayStage("pipe", cfg.PipelineDelaySamples-1),
		pipeline.NewLatencyMarker("handoff", 1),
	)
	r.fwd = pipeline.NewChain("relay.fwd", stages...)
	if txImp != nil {
		// PA compression acts on the physically transmitted waveform.
		r.tx = pipeline.NewChain("relay.tx", pipeline.NewPusherStage("pa", 0, txImp))
	}
	return r
}

// Chain returns the relay's forward signal path for inspection or
// instrumentation.
func (r *FFRelay) Chain() *pipeline.Chain { return r.fwd }

// LatencySamples returns the chain-accounted pipeline latency in samples.
func (r *FFRelay) LatencySamples() int { return r.fwd.LatencySamples() }

// Instrument attaches pipeline.* metrics and per-stage timers to the
// relay's chains on the given shard.
func (r *FFRelay) Instrument(o *pipeline.Obs, shard int) {
	r.fwd.Instrument(o, shard)
	if r.tx != nil {
		r.tx.Instrument(o, shard)
	}
}

// EnableFastPath arms the opt-in fast paths on the forward chain (the
// CFO incremental rotator dominates the per-sample win; the filter fast
// paths engage only on block-driven stages). Output stays within 1e-9 of
// the direct form; golden-pinned runs must not call this.
func (r *FFRelay) EnableFastPath() {
	r.fwd.EnableFastPath()
	if r.tx != nil {
		r.tx.EnableFastPath()
	}
}

// ProcessingDelayS returns the relay's pipeline latency in seconds, as
// accounted by the forward chain.
func (r *FFRelay) ProcessingDelayS() float64 {
	return float64(r.fwd.LatencySamples()) / r.cfg.SampleRate
}

// Step advances the relay by one sample: incoming is the signal arriving
// over the air from the source (without self-interference — the relay adds
// that internally). It returns the sample the relay transmits this instant.
//
// The forward chain runs on a one-sample block per Step because the
// physical feedback loop closes every sample: tx[n] leaks into rx[n]
// through the SI channel, so the chain cannot be driven in larger blocks
// without breaking causality. Chain state makes this bit-identical to any
// other segmentation of the same sample stream.
func (r *FFRelay) Step(incoming complex128) complex128 {
	// 1. The sample leaving the pipeline is transmitted now.
	var inj complex128
	if r.cfg.InjectNoiseMW > 0 {
		inj = r.cfg.NoiseSource.ComplexGaussian(r.cfg.InjectNoiseMW)
	}
	r.lastInjected = inj

	// The chain output computed last Step leaves the handoff register now;
	// with the in-chain delay of PipelineDelaySamples−1 this makes tx[n]
	// depend on rx[n−d], never on rx[n]. Add the injection probe.
	tx := r.pending + inj
	if r.tx != nil {
		r.txBuf[0] = tx
		r.tx.Process(r.txBuf[:])
		tx = r.txBuf[0]
	}

	// 2. Physical reception: incoming + self-interference + thermal noise.
	var noise complex128
	if r.cfg.RxNoiseMW > 0 {
		noise = r.cfg.NoiseSource.ComplexGaussian(r.cfg.RxNoiseMW)
	}
	rx := incoming + r.si.Push(tx) + noise

	// 3–5. The forward chain: receive impairments, causal digital
	// cancellation against this instant's tx, CFO removal, CNF
	// pre-filtering, CFO restoration, amplification, pipeline delay.
	r.refBuf[0] = tx
	r.cancel.SetReference(r.refBuf[:])
	r.rxBuf[0] = rx
	out := r.fwd.Process(r.rxBuf[:])
	r.pending = out[0]
	return tx
}

// Process runs the relay over a block of incoming samples and returns the
// transmitted samples.
func (r *FFRelay) Process(incoming []complex128) []complex128 {
	out := make([]complex128, len(incoming)) //fflint:allow allocfree allocating convenience wrapper; hot paths call ProcessInto with caller-owned buffers
	r.ProcessInto(out, incoming)
	return out
}

// ProcessInto runs the relay over a block of incoming samples into a
// caller-owned output buffer (no per-call allocation). out and incoming
// may alias.
func (r *FFRelay) ProcessInto(out, incoming []complex128) {
	if len(out) != len(incoming) {
		panic("relay: ProcessInto length mismatch")
	}
	for i, v := range incoming {
		out[i] = r.Step(v)
	}
}

// LastInjected returns the most recent injected-noise sample (the known
// tuning probe).
func (r *FFRelay) LastInjected() complex128 { return r.lastInjected }

// Reset clears all filter and pipeline state.
func (r *FFRelay) Reset() {
	r.si.Reset()
	r.fwd.Reset()
	if r.tx != nil {
		r.tx.Reset()
	}
	r.pending = 0
}
