// Package relay implements the FastForward relay device as a streaming
// sample processor, plus the baseline relays the paper compares against.
//
// The FFRelay models the full Layer-1 pipeline of Fig 3 at baseband sample
// resolution: the physical TX→RX self-interference feedback path, causal
// digital cancellation, CFO removal and restoration (Sec 4.1), the CNF
// digital pre-filter, amplification, known-noise injection for cancellation
// tuning, and an explicit pipeline delay (ADC/DAC and any buffering) — the
// knob the latency experiment (Fig 16) sweeps. Because the transmitted
// signal feeds back into the received signal, the simulation exhibits the
// positive-feedback instability of Fig 7 mechanically when amplification
// exceeds isolation.
//
// ChooseAmplificationDB centralizes the device's amplification rule —
// A = min(C − stability margin, a − noise margin, PA headroom) — and
// reports which bound was active (AmpDecision), the quantity behind the
// relay.amp_db / relay.amp_bound.* run metrics of OBSERVABILITY.md.
package relay

import (
	"math"
	"math/cmplx"

	"fastforward/internal/dsp"
	"fastforward/internal/impair"
	"fastforward/internal/rng"
	"fastforward/internal/sic"
)

// Config parameterizes an FFRelay.
type Config struct {
	// SampleRate in samples/second (20 Msps for the paper's PHY).
	SampleRate float64
	// AmplificationDB is the power amplification applied to the cleaned
	// received signal.
	AmplificationDB float64
	// PipelineDelaySamples is the processing latency through the relay in
	// whole samples (ADC+DAC ≈ 1 sample at 20 Msps, plus any buffering).
	// Must be at least 1: the transmitted sample cannot depend on the
	// received sample of the same instant.
	PipelineDelaySamples int
	// PreFilterTaps is the CNF digital pre-filter at SampleRate (already
	// including any analog-stage rotation folded in). Defaults to a unit
	// impulse (pure amplify-and-forward).
	PreFilterTaps []complex128
	// CFOHz is the relay's carrier offset relative to the source. The
	// relay removes it before filtering and restores it before
	// transmission so the destination sees the source's CFO unchanged.
	CFOHz float64
	// SIChannelTaps is the *physical* residual self-interference channel
	// (after analog cancellation) at sample spacing.
	SIChannelTaps []complex128
	// CancelTaps is the digital canceller's estimate of SIChannelTaps.
	CancelTaps []complex128
	// InjectNoiseMW, when positive, continuously adds known Gaussian noise
	// of this power to the transmission (the tuning probe of Sec 3.3).
	InjectNoiseMW float64
	// NoiseSource supplies receiver and injection noise; required when
	// RxNoiseMW or InjectNoiseMW is positive.
	NoiseSource *rng.Source
	// RxNoiseMW is the relay receiver's thermal noise power.
	RxNoiseMW float64
	// Impair is the relay's hardware impairment profile (nil = ideal).
	// The receive chain (CFO, phase noise, IQ, ADC) distorts what the
	// digital canceller sees, so cancellation erodes toward the profile's
	// floor; the transmit chain (PA compression) distorts what feeds back.
	Impair *impair.Profile
	// ImpairSource draws the impairment randomness (phase-noise walk);
	// keep it separate from NoiseSource so toggling impairments never
	// shifts the noise stream. Required when Impair configures phase noise.
	ImpairSource *rng.Source
	// ImpairRefRMS is the AGC reference amplitude the impairment streams
	// level against (ADC full scale, PA saturation). Defaults to the RMS
	// of a unit-power signal (1.0) when zero.
	ImpairRefRMS float64
}

// FFRelay is a streaming full-duplex relay.
type FFRelay struct {
	cfg       Config
	si        *dsp.FIR
	canceller *sic.DigitalCanceller
	pre       *dsp.FIR
	pipe      *dsp.DelayLine
	ampLin    float64 // amplitude gain
	phase     float64 // CFO phase accumulator
	phaseStep float64
	// pending is the sample entering the transmit pipeline this instant
	// (filtered, amplified, CFO-restored).
	pending complex128
	// lastInjected holds the most recent injected-noise sample, exposed for
	// tuning procedures that correlate against the known probe.
	lastInjected complex128
	// rxImp/txImp are the hardware impairment chains (nil when ideal).
	rxImp *impair.Stream
	txImp *impair.Stream
}

// New builds the relay. It panics on nonsensical configurations (zero
// sample rate, pipeline delay < 1).
func New(cfg Config) *FFRelay {
	if cfg.SampleRate <= 0 {
		panic("relay: SampleRate must be positive")
	}
	if cfg.PipelineDelaySamples < 1 {
		panic("relay: PipelineDelaySamples must be >= 1 (no zero-delay loop)")
	}
	pre := cfg.PreFilterTaps
	if len(pre) == 0 {
		pre = []complex128{1}
	}
	si := cfg.SIChannelTaps
	if len(si) == 0 {
		si = []complex128{0}
	}
	canc := cfg.CancelTaps
	if len(canc) == 0 {
		canc = make([]complex128, len(si))
	}
	if (cfg.RxNoiseMW > 0 || cfg.InjectNoiseMW > 0) && cfg.NoiseSource == nil {
		panic("relay: NoiseSource required when noise powers are set")
	}
	var rxImp, txImp *impair.Stream
	if !cfg.Impair.IsZero() {
		if cfg.Impair.PhaseNoiseRadRMS > 0 && cfg.ImpairSource == nil {
			panic("relay: ImpairSource required when Impair configures phase noise")
		}
		ref := cfg.ImpairRefRMS
		if ref <= 0 {
			ref = 1
		}
		rxImp = impair.NewRxStream(cfg.Impair, cfg.ImpairSource, cfg.SampleRate, ref)
		txImp = impair.NewTxStream(cfg.Impair, ref)
	}
	return &FFRelay{
		cfg:       cfg,
		si:        dsp.NewFIR(si),
		canceller: sic.NewDigitalCanceller(canc),
		pre:       dsp.NewFIR(pre),
		// The pending-sample handoff contributes one sample of delay, so
		// the delay line holds the remainder.
		pipe:      dsp.NewDelayLine(cfg.PipelineDelaySamples - 1),
		ampLin:    dsp.AmplitudeFromDB(cfg.AmplificationDB),
		phaseStep: 2 * math.Pi * cfg.CFOHz / cfg.SampleRate,
		rxImp:     rxImp,
		txImp:     txImp,
	}
}

// ProcessingDelayS returns the relay's pipeline latency in seconds.
func (r *FFRelay) ProcessingDelayS() float64 {
	return float64(r.cfg.PipelineDelaySamples) / r.cfg.SampleRate
}

// Step advances the relay by one sample: incoming is the signal arriving
// over the air from the source (without self-interference — the relay adds
// that internally). It returns the sample the relay transmits this instant.
func (r *FFRelay) Step(incoming complex128) complex128 {
	// 1. The sample leaving the pipeline is transmitted now.
	var inj complex128
	if r.cfg.InjectNoiseMW > 0 {
		inj = r.cfg.NoiseSource.ComplexGaussian(r.cfg.InjectNoiseMW)
	}
	r.lastInjected = inj

	// The pipeline output was enqueued PipelineDelaySamples ago; it already
	// includes filtering and amplification. Add the injection probe.
	// The transmitted sample left the pipeline PipelineDelaySamples after
	// it was computed; `pending` (from the previous Step) enters now. A
	// delay of d thus means tx[n] depends on rx[n-d], never on rx[n].
	tx := r.pipe.Push(r.pending) + inj
	if r.txImp != nil {
		// PA compression acts on the physically transmitted waveform.
		tx = r.txImp.Push(tx)
	}

	// 2. Physical reception: incoming + self-interference + thermal noise.

	var noise complex128
	if r.cfg.RxNoiseMW > 0 {
		noise = r.cfg.NoiseSource.ComplexGaussian(r.cfg.RxNoiseMW)
	}
	rx := incoming + r.si.Push(tx) + noise
	if r.rxImp != nil {
		// Receive-chain impairments distort what the canceller observes,
		// while its reference (tx) stays clean — the mismatch a linear
		// canceller cannot subtract, eroding cancellation to the profile's
		// floor.
		rx = r.rxImp.Push(rx)
	}

	// 3. Causal digital cancellation (zero added latency): uses the TX
	// samples up to and including this instant.
	clean := r.canceller.Push(tx, rx)

	// 4. CFO removal, CNF pre-filtering, amplification, CFO restoration.
	derot := clean * cmplx.Exp(complex(0, -r.phase))
	filtered := r.pre.Push(derot)
	rerot := filtered * cmplx.Exp(complex(0, r.phase))
	r.phase += r.phaseStep

	// 5. Enqueue for transmission after the pipeline delay.
	r.pending = rerot * complex(r.ampLin, 0)
	return tx
}

// Process runs the relay over a block of incoming samples and returns the
// transmitted samples.
func (r *FFRelay) Process(incoming []complex128) []complex128 {
	out := make([]complex128, len(incoming))
	for i, v := range incoming {
		out[i] = r.Step(v)
	}
	return out
}

// LastInjected returns the most recent injected-noise sample (the known
// tuning probe).
func (r *FFRelay) LastInjected() complex128 { return r.lastInjected }

// Reset clears all filter and pipeline state.
func (r *FFRelay) Reset() {
	r.si.Reset()
	r.canceller.Reset()
	r.pre.Reset()
	r.pipe.Reset()
	r.phase = 0
	r.pending = 0
	if r.rxImp != nil {
		r.rxImp.Reset()
	}
	if r.txImp != nil {
		r.txImp.Reset()
	}
}
