package relay

import (
	"math"

	"fastforward/internal/cnf"
)

// AmpBound names which constraint of the Sec 3.5 amplification rule
//
//	A = min(C − stability margin, a − noise margin, PA headroom)
//
// was the binding one — the quantity a run manifest records so a
// regression in any single bound (e.g. the analog tuner degrading C) is
// visible even when the end-to-end throughput barely moves.
type AmpBound int

const (
	// AmpBoundCancellation: the feedback-stability bound C − margin was
	// active (Fig 7 — amplifying past isolation oscillates).
	AmpBoundCancellation AmpBound = iota
	// AmpBoundNoiseRule: the Sec 3.5 noise rule a − 3 dB was active (relay
	// noise must land below the destination's noise floor).
	AmpBoundNoiseRule
	// AmpBoundPALimit: the relay's transmit power amplifier cap was active.
	AmpBoundPALimit
	// AmpBoundFloor: every bound was negative, so amplification clamps to
	// 0 dB (the relay cannot help at this placement).
	AmpBoundFloor
	// AmpBoundBudget: the aggregate multi-session admission budget was
	// active — the grant was bisected below the session's own bounds so
	// already-admitted sessions keep theirs (BudgetAccount.AdmitDegraded).
	AmpBoundBudget
)

// String names the bound for metrics and manifests.
func (b AmpBound) String() string {
	switch b {
	case AmpBoundCancellation:
		return "cancellation"
	case AmpBoundNoiseRule:
		return "noise_rule"
	case AmpBoundPALimit:
		return "pa_limit"
	case AmpBoundFloor:
		return "floor"
	case AmpBoundBudget:
		return "budget"
	}
	return "unknown"
}

// ParseAmpBound inverts String: it maps a bound's wire name (as carried
// in an ACCEPT frame or a manifest) back to the enum value, reporting
// whether the name is known.
func ParseAmpBound(s string) (AmpBound, bool) {
	switch s {
	case "cancellation":
		return AmpBoundCancellation, true
	case "noise_rule":
		return AmpBoundNoiseRule, true
	case "pa_limit":
		return AmpBoundPALimit, true
	case "floor":
		return AmpBoundFloor, true
	case "budget":
		return AmpBoundBudget, true
	}
	return 0, false
}

// AmpDecision is the outcome of the relay's amplification choice.
type AmpDecision struct {
	// AmpDB is the chosen power amplification (>= 0).
	AmpDB float64
	// Bound identifies which term of the min() produced AmpDB.
	Bound AmpBound
	// StabilityHeadroomDB is cancellation − AmpDB: the margin to the
	// positive-feedback instability of Fig 7. Never below the configured
	// stability margin unless the floor clamp raised it.
	StabilityHeadroomDB float64
}

// ChooseAmplificationDB applies the full device-level amplification rule:
// the cancellation-bounded stability term and Sec 3.5 noise rule of
// cnf.AmplificationLimitDB, plus the power-amplifier cap that hardware
// adds on top. rdAttenDB is the relay→destination path attenuation
// (positive dB); paHeadroomDB is maxTxPower − rxPowerAtRelay in dB (how
// much gain the PA allows before clipping); noiseRule false disables the
// Sec 3.5 back-off (the blind repeater of Sec 5.5 amplifies to the
// maximum extent).
func ChooseAmplificationDB(cancellationDB, rdAttenDB, paHeadroomDB float64, noiseRule bool) AmpDecision {
	return chooseAmp(cancellationDB, rdAttenDB-cnf.NoiseMarginDB, paHeadroomDB, noiseRule)
}

// ChooseAmplificationResidualDB is ChooseAmplificationDB with the noise
// rule made self-interference-aware: with finite cancellation the relay's
// receiver noise is not just thermal but n0 + rx·A/C (the residual its own
// transmission leaves behind the canceller), and that elevated floor is
// what gets amplified toward the destination. The Sec 3.5 condition
// "injected noise ≥ 3 dB below the destination floor" then reads
//
//	(n0 + rx·A/C) · A / a  ≤  n0 / margin
//
// whose positive root replaces the plain a − 3 dB bound. rxOverNoiseDB is
// the relay's received signal-to-thermal-noise ratio (rx/n0 in dB). As
// C → ∞ the residual term vanishes and the bound reduces exactly to
// a − 3 dB, so this only backs off further when cancellation has degraded —
// the graceful-degradation path uses it; the ideal path keeps the
// closed-form rule.
func ChooseAmplificationResidualDB(cancellationDB, rdAttenDB, paHeadroomDB, rxOverNoiseDB float64, noiseRule bool) AmpDecision {
	noiseBound := rdAttenDB - cnf.NoiseMarginDB
	// beta = rx/(n0·C): the residual's weight relative to thermal noise per
	// unit of (linear) amplification.
	beta := math.Pow(10, (rxOverNoiseDB-cancellationDB)/10)
	if beta > 0 && !math.IsInf(cancellationDB, 1) {
		target := math.Pow(10, noiseBound/10)
		// Positive root of βA² + A − target, in the rationalized form that
		// stays numerically stable as β → 0 (the naive (√(1+4βt)−1)/(2β)
		// cancels catastrophically there and collapses to zero gain).
		a := 2 * target / (1 + math.Sqrt(1+4*beta*target))
		noiseBound = 10 * math.Log10(a)
	}
	return chooseAmp(cancellationDB, noiseBound, paHeadroomDB, noiseRule)
}

// chooseAmp is the shared min() core; noiseBoundDB is the already-margined
// noise-rule term.
func chooseAmp(cancellationDB, noiseBoundDB, paHeadroomDB float64, noiseRule bool) AmpDecision {
	amp := cancellationDB - cnf.StabilityMarginDB
	bound := AmpBoundCancellation
	if noiseRule {
		if noiseBoundDB < amp {
			amp = noiseBoundDB
			bound = AmpBoundNoiseRule
		}
	}
	if paHeadroomDB < amp {
		amp = paHeadroomDB
		bound = AmpBoundPALimit
	}
	if amp < 0 {
		amp = 0
		bound = AmpBoundFloor
	}
	return AmpDecision{
		AmpDB:               amp,
		Bound:               bound,
		StabilityHeadroomDB: cancellationDB - amp,
	}
}
