package relay

import (
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/impair"
	"fastforward/internal/rng"
)

// impairLoopCfg builds a relay whose digital canceller perfectly matches
// the physical SI channel, so with an ideal front end the re-transmitted
// residual is essentially zero and anything that leaks through is the
// impairment-induced cancellation erosion.
func impairLoopCfg(p *impair.Profile) Config {
	si := []complex128{0.1, 0.03i, -0.01}
	canc := append([]complex128(nil), si...)
	return Config{
		SampleRate:           20e6,
		AmplificationDB:      0,
		PipelineDelaySamples: 4,
		SIChannelTaps:        si,
		CancelTaps:           canc,
		InjectNoiseMW:        1,
		NoiseSource:          rng.New(31),
		Impair:               p,
		ImpairSource:         impair.Source(31, 0),
	}
}

// residualPower runs the loop and measures the power the relay re-emits
// beyond its injected probe: amplified residual self-interference.
func residualPower(cfg Config, n int) float64 {
	r := New(cfg)
	var acc float64
	for i := 0; i < n; i++ {
		tx := r.Step(0)
		d := tx - r.LastInjected()
		acc += real(d)*real(d) + imag(d)*imag(d)
	}
	return acc / float64(n)
}

func TestRelayImpairmentErodesCancellation(t *testing.T) {
	const n = 4000
	ideal := residualPower(impairLoopCfg(nil), n)

	// An rx-chain-only profile (no PA, so tx − LastInjected isolates the
	// canceller residual) at severe strength.
	p := impair.Profile{Name: "rx-severe", CFOHz: 25, PhaseNoiseRadRMS: 2e-4,
		IQGainMismatchDB: 0.2, IQPhaseErrorDeg: 1.0, ADCBits: 8, ADCClipBackoffDB: 10}
	impaired := residualPower(impairLoopCfg(&p), n)

	if impaired < 10*ideal {
		t.Errorf("severe rx impairments residual %.3e not clearly above ideal %.3e",
			impaired, ideal)
	}
	// Bounded: the loop must remain stable — residual far below the
	// injected probe power (1 mW), not growing without bound.
	if impaired > 0.1 {
		t.Errorf("impaired residual %.3e suggests feedback instability", impaired)
	}
	// And consistent with the profile's cancellation floor: residual SI
	// power ≈ |si|²·probe·EVM², i.e. floor dB below the raw SI power.
	rawSI := (0.1*0.1 + 0.03*0.03 + 0.01*0.01) * 1.0
	gotCancel := dsp.DB(rawSI / impaired)
	floor := p.CancellationFloorDB()
	if gotCancel < floor-12 || gotCancel > floor+15 {
		t.Errorf("streaming cancellation %.1f dB vs budget floor %.1f dB — models diverged",
			gotCancel, floor)
	}
}

func TestRelayImpairmentDeterministic(t *testing.T) {
	p, _ := impair.ByName("moderate")
	run := func() []complex128 {
		r := New(impairLoopCfg(&p))
		out := make([]complex128, 512)
		for i := range out {
			out[i] = r.Step(complex(float64(i%7), 0))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identically-seeded runs", i)
		}
	}
}

func TestRelayIdealProfileBitIdentical(t *testing.T) {
	// A nil profile and a zero profile must not change the relay's output
	// relative to a config without impairment fields at all.
	base := impairLoopCfg(nil)
	zero := impairLoopCfg(&impair.Profile{})
	ra, rb := New(base), New(zero)
	for i := 0; i < 256; i++ {
		in := complex(float64(i), float64(-i))
		if ra.Step(in) != rb.Step(in) {
			t.Fatalf("zero profile changed relay output at sample %d", i)
		}
	}
}
