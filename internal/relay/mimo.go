package relay

import (
	"fmt"
	"math"

	"fastforward/internal/dsp"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// MIMOConfig parameterizes the 2×2 full-duplex relay of Fig 8. The
// self-interference environment is a full matrix: each transmit antenna
// leaks into each receive antenna (the off-diagonal terms are the
// "cross talk" the paper's analog boards add taps for), and the digital
// canceller mirrors that structure with one causal FIR per TX/RX pair —
// the "2×2 causal digital cancellation" block of the figure.
type MIMOConfig struct {
	// SampleRate in samples/second.
	SampleRate float64
	// AmplificationDB is the per-stream power amplification.
	AmplificationDB float64
	// PipelineDelaySamples is the processing latency (≥1).
	PipelineDelaySamples int
	// PreFilter is the K×K CNF filter as per-pair FIR taps:
	// PreFilter[out][in] filters input stream `in` into output `out`.
	// Nil entries mean zero; a nil matrix means identity forwarding.
	PreFilter [][][]complex128
	// SITaps[rx][tx] is the physical residual SI channel from transmit
	// antenna tx into receive antenna rx (after analog cancellation).
	SITaps [][][]complex128
	// CancelTaps[rx][tx] is the digital canceller's estimate of SITaps.
	CancelTaps [][][]complex128
	// RxNoiseMW is per-antenna receiver noise power.
	RxNoiseMW float64
	// NoiseSource supplies receiver noise; required if RxNoiseMW > 0.
	NoiseSource *rng.Source
}

// MIMORelay is a streaming 2×2 full-duplex relay. Like FFRelay, the
// forward path is a declared pipeline chain — 2×2 SI-cancel → K×K CNF
// mix → per-stream amp → per-stream pipeline delay — driven one sample
// per Step through the physical feedback loop.
type MIMORelay struct {
	cfg MIMOConfig
	// si is the physical TX→RX leakage matrix (outside the device).
	si      [2][2]*dsp.FIR
	cancel  *pipeline.MIMOCancelStage
	fwd     *pipeline.MIMOChain
	pending [2]complex128
	ampLin  float64
	// refArr/inArr back the persistent 1-sample-per-stream views the chain
	// is driven with (no per-Step allocation).
	refArr  [2][1]complex128
	inArr   [2][1]complex128
	refView [2][]complex128
	inView  [2][]complex128
}

// NewMIMO builds the 2×2 relay. Tap matrices may be nil (zero SI /
// identity forwarding).
func NewMIMO(cfg MIMOConfig) (*MIMORelay, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("relay: SampleRate must be positive")
	}
	if cfg.PipelineDelaySamples < 1 {
		return nil, fmt.Errorf("relay: PipelineDelaySamples must be >= 1")
	}
	if cfg.RxNoiseMW > 0 && cfg.NoiseSource == nil {
		return nil, fmt.Errorf("relay: NoiseSource required with RxNoiseMW")
	}
	r := &MIMORelay{cfg: cfg, ampLin: dsp.AmplitudeFromDB(cfg.AmplificationDB)}
	taps := func(m [][][]complex128, i, j int, identity bool) []complex128 {
		if m != nil && i < len(m) && j < len(m[i]) && len(m[i][j]) > 0 {
			return m[i][j]
		}
		if identity && i == j {
			return []complex128{1}
		}
		return []complex128{0}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.si[i][j] = dsp.NewFIR(taps(cfg.SITaps, i, j, false))
		}
		r.refView[i] = r.refArr[i][:]
		r.inView[i] = r.inArr[i][:]
	}
	g := complex(r.ampLin, 0)
	r.cancel = pipeline.NewMIMOCancelStage("si_cancel", 2, cfg.CancelTaps)
	r.fwd = pipeline.NewMIMOChain("relay.mimo_fwd",
		r.cancel,
		pipeline.NewMIMOMixStage("cnf_pre", 2, cfg.PreFilter, true),
		pipeline.NewMIMOEachStage("amp",
			pipeline.NewGainStage("amp0", g),
			pipeline.NewGainStage("amp1", g)),
		// The pending-sample handoff contributes one sample of delay per
		// stream; the delay lines hold the remainder.
		pipeline.NewMIMOEachStage("pipe",
			pipeline.NewDelayStage("pipe0", cfg.PipelineDelaySamples-1),
			pipeline.NewDelayStage("pipe1", cfg.PipelineDelaySamples-1)),
		pipeline.NewMIMOLatencyMarker("handoff", 1),
	)
	return r, nil
}

// Chain returns the relay's forward signal path for inspection or
// instrumentation.
func (r *MIMORelay) Chain() *pipeline.MIMOChain { return r.fwd }

// LatencySamples returns the chain-accounted pipeline latency in samples.
func (r *MIMORelay) LatencySamples() int { return r.fwd.LatencySamples() }

// Instrument attaches pipeline.* metrics and per-stage timers to the
// relay's chain on the given shard.
func (r *MIMORelay) Instrument(o *pipeline.Obs, shard int) { r.fwd.Instrument(o, shard) }

// Step advances one sample: incoming holds the over-the-air signal at each
// receive antenna (without self-interference); the return value is what
// each transmit antenna radiates this instant. The chain is driven one
// sample per Step because the SI feedback loop closes every sample.
func (r *MIMORelay) Step(incoming [2]complex128) [2]complex128 {
	// Transmit the samples the handoff registers release this instant.
	tx := r.pending
	// Physical reception with the full SI matrix + noise.
	var rx [2]complex128
	for i := 0; i < 2; i++ {
		rx[i] = incoming[i]
		for j := 0; j < 2; j++ {
			rx[i] += r.si[i][j].Push(tx[j])
		}
		if r.cfg.RxNoiseMW > 0 {
			rx[i] += r.cfg.NoiseSource.ComplexGaussian(r.cfg.RxNoiseMW)
		}
	}
	// The forward chain: 2×2 cancellation against this instant's tx, K×K
	// CNF mix, amplification, pipeline delay.
	for i := 0; i < 2; i++ {
		r.refArr[i][0] = tx[i]
		r.inArr[i][0] = rx[i]
	}
	r.cancel.SetReference(r.refView[:])
	out := r.fwd.ProcessM(r.inView[:])
	r.pending[0] = out[0][0]
	r.pending[1] = out[1][0]
	return tx
}

// Process runs a block of per-antenna samples (2 equal-length streams).
func (r *MIMORelay) Process(incoming [][]complex128) [][]complex128 {
	if len(incoming) != 2 || len(incoming[0]) != len(incoming[1]) {
		panic("relay: MIMORelay needs 2 equal-length streams")
	}
	out := [][]complex128{
		make([]complex128, len(incoming[0])), //fflint:allow allocfree allocating convenience wrapper; hot paths call ProcessInto
		make([]complex128, len(incoming[0])), //fflint:allow allocfree allocating convenience wrapper; hot paths call ProcessInto
	}
	r.ProcessInto(out, incoming)
	return out
}

// ProcessInto runs a block of per-antenna samples into caller-owned
// buffers (no per-call allocation). out and incoming may alias.
func (r *MIMORelay) ProcessInto(out, incoming [][]complex128) {
	if len(incoming) != 2 || len(incoming[0]) != len(incoming[1]) {
		panic("relay: MIMORelay needs 2 equal-length streams")
	}
	if len(out) != 2 || len(out[0]) != len(incoming[0]) || len(out[1]) != len(incoming[0]) {
		panic("relay: ProcessInto length mismatch")
	}
	n := len(incoming[0])
	for k := 0; k < n; k++ {
		tx := r.Step([2]complex128{incoming[0][k], incoming[1][k]})
		out[0][k] = tx[0]
		out[1][k] = tx[1]
	}
}

// Reset clears all state.
func (r *MIMORelay) Reset() {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.si[i][j].Reset()
		}
		r.pending[i] = 0
	}
	r.fwd.Reset()
}

// TypicalMIMOSI synthesizes a residual 2×2 SI tap set: stronger same-
// antenna leakage on the diagonals, weaker cross-talk off-diagonal, all
// already reduced by analog cancellation to the given residual level (dB
// relative to the transmitted signal).
func TypicalMIMOSI(src *rng.Source, residualDB float64) [][][]complex128 {
	amp := math.Pow(10, residualDB/20)
	mk := func(scale float64) []complex128 {
		t := make([]complex128, 4)
		for d := 1; d < 4; d++ {
			t[d] = src.ComplexGaussian(scale * scale / 3)
		}
		return t
	}
	return [][][]complex128{
		{mk(amp), mk(amp * 0.3)},
		{mk(amp * 0.3), mk(amp)},
	}
}

// SelfInterferencePowerDB measures the relay's open-loop SI power for a
// unit-power transmission: the aggregate gain of the SI matrix in dB.
func SelfInterferencePowerDB(si [][][]complex128) float64 {
	var g float64
	for i := range si {
		for j := range si[i] {
			for _, t := range si[i][j] {
				g += real(t)*real(t) + imag(t)*imag(t)
			}
		}
	}
	if g <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(g/2) // per receive antenna
}
