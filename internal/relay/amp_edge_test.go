package relay

import (
	"math"
	"testing"

	"fastforward/internal/cnf"
)

// TestAmpBoundTieAttribution pins the tie-breaking of the min() core: each
// comparison is strict, so an exact tie keeps the earlier bound in the
// evaluation order (cancellation, then noise rule, then PA). Manifests key
// regressions off the bound name, so ties must attribute deterministically.
func TestAmpBoundTieAttribution(t *testing.T) {
	cases := []struct {
		name                    string
		cancel, rdAtten, paHead float64
		noiseRule               bool
		wantAmp                 float64
		wantBound               AmpBound
	}{
		// cancel−3 == rdAtten−3: strict < keeps cancellation.
		{"cancel ties noise rule", 60, 60, 100, true, 57, AmpBoundCancellation},
		// noise bound == PA headroom: strict < keeps noise rule.
		{"noise rule ties pa", 110, 60, 57, true, 57, AmpBoundNoiseRule},
		// cancel−3 == paHead with noise rule off: cancellation wins.
		{"cancel ties pa no noise rule", 60, 0, 57, false, 57, AmpBoundCancellation},
		// All three bounds land on the same value.
		{"triple tie", 60, 60, 57, true, 57, AmpBoundCancellation},
		// A bound of exactly 0 dB is a valid decision, not a floor clamp:
		// the floor only fires on strictly negative amplification.
		{"exactly zero is not floor", 3, 100, 100, true, 0, AmpBoundCancellation},
		{"zero pa is not floor", 110, 100, 0, true, 0, AmpBoundPALimit},
		// Infinitesimally below zero clamps and re-attributes to floor.
		{"barely negative floors", 2.9999, 100, 100, true, 0, AmpBoundFloor},
	}
	for _, c := range cases {
		got := ChooseAmplificationDB(c.cancel, c.rdAtten, c.paHead, c.noiseRule)
		if got.AmpDB != c.wantAmp || got.Bound != c.wantBound {
			t.Errorf("%s: got amp %.4f bound %s, want %.4f %s",
				c.name, got.AmpDB, got.Bound, c.wantAmp, c.wantBound)
		}
	}
}

// TestAmpDegradedCancellationTransition walks cancellation down the way the
// impairment ladder does and checks the regime change: a healthy canceller
// leaves the noise rule binding; once C − stability margin drops below the
// noise bound, attribution flips to cancellation and tracks C linearly;
// below the stability margin the floor clamps. Amplification must be
// non-increasing throughout and stability headroom never dips below the
// margin until the floor raises it.
func TestAmpDegradedCancellationTransition(t *testing.T) {
	const rdAtten, paHead = 60.0, 100.0
	noiseBound := rdAtten - cnf.NoiseMarginDB
	prev := math.Inf(1)
	sawNoise, sawCancel, sawFloor := false, false, false
	for c := 110.0; c >= 0; c -= 0.5 {
		got := ChooseAmplificationDB(c, rdAtten, paHead, true)
		if got.AmpDB > prev {
			t.Fatalf("C=%.1f: amp %.4f increased from %.4f as cancellation degraded", c, got.AmpDB, prev)
		}
		prev = got.AmpDB
		switch {
		case c-cnf.StabilityMarginDB > noiseBound:
			sawNoise = true
			if got.Bound != AmpBoundNoiseRule || got.AmpDB != noiseBound {
				t.Fatalf("C=%.1f: want noise_rule at %.1f dB, got %s at %.4f", c, noiseBound, got.Bound, got.AmpDB)
			}
		case c-cnf.StabilityMarginDB >= 0:
			sawCancel = true
			// Tie at the crossover attributes to cancellation (strict <).
			if got.Bound != AmpBoundCancellation || got.AmpDB != c-cnf.StabilityMarginDB {
				t.Fatalf("C=%.1f: want cancellation at %.4f dB, got %s at %.4f",
					c, c-cnf.StabilityMarginDB, got.Bound, got.AmpDB)
			}
			if got.StabilityHeadroomDB != cnf.StabilityMarginDB {
				t.Fatalf("C=%.1f: headroom %.4f, want the %.0f dB margin", c, got.StabilityHeadroomDB, cnf.StabilityMarginDB)
			}
		default:
			sawFloor = true
			if got.Bound != AmpBoundFloor || got.AmpDB != 0 {
				t.Fatalf("C=%.1f: want floor at 0 dB, got %s at %.4f", c, got.Bound, got.AmpDB)
			}
			if got.StabilityHeadroomDB != c {
				t.Fatalf("C=%.1f: floored headroom %.4f, want full C", c, got.StabilityHeadroomDB)
			}
		}
	}
	if !sawNoise || !sawCancel || !sawFloor {
		t.Fatalf("sweep missed a regime: noise=%v cancel=%v floor=%v", sawNoise, sawCancel, sawFloor)
	}
}

// TestResidualRuleProperties checks the self-interference-aware noise rule
// against its defining limits: it reduces exactly to the plain rule when
// cancellation is infinite or the received signal vanishes (beta → 0),
// never amplifies more than the plain rule, backs off monotonically as
// cancellation erodes or the received signal grows, and still satisfies
// the Sec 3.5 condition (n0 + rx·A/C)·A/a ≤ n0/margin with equality when
// it binds.
func TestResidualRuleProperties(t *testing.T) {
	const rdAtten, paHead = 60.0, 200.0

	// C = +Inf: the residual term vanishes identically.
	plain := ChooseAmplificationDB(math.Inf(1), rdAtten, paHead, true)
	resid := ChooseAmplificationResidualDB(math.Inf(1), rdAtten, paHead, 60, true)
	if resid != plain {
		t.Errorf("C=+Inf: residual rule %+v differs from plain %+v", resid, plain)
	}

	// beta → 0 (signal far below thermal noise): converges to the plain rule.
	plain = ChooseAmplificationDB(110, rdAtten, paHead, true)
	resid = ChooseAmplificationResidualDB(110, rdAtten, paHead, -300, true)
	if math.Abs(resid.AmpDB-plain.AmpDB) > 1e-9 || resid.Bound != plain.Bound {
		t.Errorf("beta->0: residual %.12f/%s, plain %.12f/%s",
			resid.AmpDB, resid.Bound, plain.AmpDB, plain.Bound)
	}

	// Never exceeds the plain rule, and is monotone in both arguments.
	prevRx := math.Inf(1)
	for _, rx := range []float64{-20, 0, 20, 40, 60, 80} {
		r := ChooseAmplificationResidualDB(80, rdAtten, paHead, rx, true)
		p := ChooseAmplificationDB(80, rdAtten, paHead, true)
		if r.AmpDB > p.AmpDB+1e-12 {
			t.Errorf("rx=%v: residual %.6f exceeds plain %.6f", rx, r.AmpDB, p.AmpDB)
		}
		if r.AmpDB > prevRx+1e-12 {
			t.Errorf("rx=%v: back-off not monotone in received power", rx)
		}
		prevRx = r.AmpDB
	}
	prevC := 0.0
	for _, c := range []float64{20, 40, 60, 80, 100, 120} {
		r := ChooseAmplificationResidualDB(c, rdAtten, paHead, 45, true)
		if r.AmpDB < prevC-1e-12 {
			t.Errorf("C=%v: amplification fell as cancellation improved", c)
		}
		prevC = r.AmpDB
	}

	// When the residual-aware noise bound binds, the Sec 3.5 condition holds
	// with equality: (1 + rx·A/(n0·C)) · A = a/margin in linear terms.
	const c, rx = 50.0, 45.0
	r := ChooseAmplificationResidualDB(c, rdAtten, paHead, rx, true)
	if r.Bound != AmpBoundNoiseRule {
		t.Fatalf("expected noise_rule to bind, got %s", r.Bound)
	}
	a := math.Pow(10, r.AmpDB/10)
	beta := math.Pow(10, (rx-c)/10)
	lhs := (1 + beta*a) * a
	rhs := math.Pow(10, (rdAtten-cnf.NoiseMarginDB)/10)
	if math.Abs(lhs-rhs)/rhs > 1e-9 {
		t.Errorf("Sec 3.5 condition not tight: (1+βA)A = %.6g, want %.6g", lhs, rhs)
	}

	// noiseRule=false ignores the residual bound entirely.
	off := ChooseAmplificationResidualDB(c, rdAtten, paHead, rx, false)
	want := ChooseAmplificationDB(c, rdAtten, paHead, false)
	if off != want {
		t.Errorf("noiseRule=false: residual %+v, plain %+v", off, want)
	}
}
