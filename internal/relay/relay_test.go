package relay

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

func basicConfig() Config {
	return Config{
		SampleRate:           20e6,
		AmplificationDB:      20,
		PipelineDelaySamples: 2,
	}
}

func TestPipelineDelayExact(t *testing.T) {
	// With no SI and a unit pre-filter, the relay output is the amplified
	// input delayed by exactly PipelineDelaySamples.
	for _, d := range []int{1, 2, 5, 8} {
		cfg := basicConfig()
		cfg.PipelineDelaySamples = d
		cfg.AmplificationDB = 0
		r := New(cfg)
		in := []complex128{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		out := r.Process(in)
		for i := range in {
			want := complex128(0)
			if i >= d {
				want = in[i-d]
			}
			if cmplx.Abs(out[i]-want) > 1e-12 {
				t.Fatalf("delay %d: out[%d] = %v, want %v", d, i, out[i], want)
			}
		}
	}
}

func TestAmplification(t *testing.T) {
	cfg := basicConfig()
	cfg.AmplificationDB = 20 // 10x amplitude
	r := New(cfg)
	out := r.Process([]complex128{1, 0, 0, 0, 0})
	if cmplx.Abs(out[2]-10) > 1e-9 {
		t.Errorf("amplified impulse = %v, want 10", out[2])
	}
}

func TestRejectsZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for PipelineDelaySamples=0")
		}
	}()
	cfg := basicConfig()
	cfg.PipelineDelaySamples = 0
	New(cfg)
}

func TestPreFilterApplied(t *testing.T) {
	cfg := basicConfig()
	cfg.AmplificationDB = 0
	cfg.PreFilterTaps = []complex128{0.5i}
	r := New(cfg)
	out := r.Process([]complex128{1, 0, 0, 0})
	if cmplx.Abs(out[2]-0.5i) > 1e-12 {
		t.Errorf("pre-filtered impulse = %v, want 0.5i", out[2])
	}
}

func TestFeedbackStability(t *testing.T) {
	// Fig 7: amplification above isolation destabilizes the loop;
	// below isolation it stays bounded. SI residual at -40 dB.
	si := []complex128{0, 0.01} // -40 dB residual, one-sample echo
	src := rng.New(1)
	in := src.NoiseVector(4000, 1)

	stable := Config{
		SampleRate:           20e6,
		AmplificationDB:      34, // A(34) < C(40)
		PipelineDelaySamples: 1,
		SIChannelTaps:        si,
	}
	rs := New(stable)
	outS := rs.Process(in)
	if p := dsp.Power(outS[2000:]); math.IsInf(p, 1) || math.IsNaN(p) || p > 1e9 {
		t.Errorf("stable configuration diverged: power %v", p)
	}

	unstable := stable
	unstable.AmplificationDB = 46 // A(46) > C(40)
	ru := New(unstable)
	outU := ru.Process(in)
	pu := dsp.Power(outU[3500:])
	ps := dsp.Power(outS[3500:])
	if pu < ps*1e4 {
		t.Errorf("expected divergence when A>C: unstable %v vs stable %v", pu, ps)
	}
}

func TestCancellationStabilizesHighAmplification(t *testing.T) {
	// Same SI, same amplification — but with a digital canceller matching
	// the SI channel, the loop gain collapses and the relay stays stable.
	si := []complex128{0, 0.01}
	src := rng.New(2)
	in := src.NoiseVector(4000, 1)
	cfg := Config{
		SampleRate:           20e6,
		AmplificationDB:      46,
		PipelineDelaySamples: 1,
		SIChannelTaps:        si,
		CancelTaps:           si, // perfect estimate
	}
	r := New(cfg)
	out := r.Process(in)
	p := dsp.Power(out[3000:])
	want := dsp.Power(in) * dsp.Linear(46)
	if p > want*3 {
		t.Errorf("cancelled loop power %v far above open-loop %v", p, want)
	}
}

func TestRelayedSignalFidelity(t *testing.T) {
	// With cancellation on, the relayed signal must be a clean delayed,
	// amplified copy of the input.
	si := []complex128{0, 0.02, 0.005i}
	src := rng.New(3)
	in := src.NoiseVector(2000, 1e-6)
	cfg := Config{
		SampleRate:           20e6,
		AmplificationDB:      40,
		PipelineDelaySamples: 2,
		SIChannelTaps:        si,
		CancelTaps:           si,
	}
	r := New(cfg)
	out := r.Process(in)
	want := dsp.Scale(dsp.Delay(in, 2), dsp.AmplitudeFromDB(40))
	// Compare after warmup.
	err := dsp.Power(dsp.Sub(out[100:], want[100:]))
	sig := dsp.Power(want[100:])
	if err > sig*1e-6 {
		t.Errorf("relayed signal distorted: error %v vs signal %v", err, sig)
	}
}

func TestCFORemoveRestore(t *testing.T) {
	// Sec 4.1: the relay corrects its CFO internally but restores it on
	// transmit, so the relayed signal keeps the source's offset. With a
	// unit pre-filter the remove/restore must cancel exactly.
	cfg := basicConfig()
	cfg.AmplificationDB = 0
	cfg.CFOHz = 137e3
	r := New(cfg)
	src := rng.New(4)
	in := src.NoiseVector(500, 1)
	out := r.Process(in)
	for i := 2; i < len(in); i++ {
		if cmplx.Abs(out[i]-in[i-2]) > 1e-9 {
			t.Fatalf("CFO restore broken at %d: %v vs %v", i, out[i], in[i-2])
		}
	}
}

func TestCFOInteractsWithMultiTapFilter(t *testing.T) {
	// With a multi-tap pre-filter, removing CFO before filtering and
	// restoring after is NOT the same as filtering the rotated signal —
	// which is exactly why the relay does the remove/restore dance. Verify
	// the relay's output equals rotate(filter(derotate(x))), delayed.
	cfg := basicConfig()
	cfg.AmplificationDB = 0
	cfg.CFOHz = 200e3
	taps := []complex128{0.7, 0.3i, -0.1}
	cfg.PreFilterTaps = taps
	r := New(cfg)
	src := rng.New(5)
	in := src.NoiseVector(300, 1)
	out := r.Process(in)

	// Reference computation.
	derot, _ := dsp.ApplyCFO(in, -200e3, 20e6, 0)
	filt := dsp.FilterSame(derot, taps)
	rerot, _ := dsp.ApplyCFO(filt, 200e3, 20e6, 0)
	want := dsp.Delay(rerot, 2)
	for i := 50; i < len(in); i++ {
		if cmplx.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("CFO+filter mismatch at %d: %v vs %v", i, out[i], want[i])
		}
	}
}

func TestInjectedNoisePresent(t *testing.T) {
	cfg := basicConfig()
	cfg.AmplificationDB = 0
	cfg.InjectNoiseMW = 0.25
	cfg.NoiseSource = rng.New(6)
	r := New(cfg)
	zero := make([]complex128, 10000)
	out := r.Process(zero)
	if p := dsp.Power(out); math.Abs(p-0.25) > 0.02 {
		t.Errorf("injected noise power %v, want 0.25", p)
	}
}

func TestHalfDuplexMeshRate(t *testing.T) {
	// Equal hops halve the rate.
	if got := HalfDuplexMeshRate(100, 100); math.Abs(got-50) > 1e-12 {
		t.Errorf("equal hops: %v, want 50", got)
	}
	// Bottleneck dominates.
	if got := HalfDuplexMeshRate(1000, 10); got >= 10 {
		t.Errorf("two-hop rate %v must be below bottleneck 10", got)
	}
	if HalfDuplexMeshRate(0, 100) != 0 {
		t.Error("dead hop must give zero")
	}
}

func TestBestHalfDuplexPrefersDirectWhenGood(t *testing.T) {
	// Sec 2: "for clients with decent SNRs to the AP, the half-duplex mesh
	// router is a bad option" — the combinator must fall back to direct.
	if got := BestHalfDuplexRate(80, 100, 100); got != 80 {
		t.Errorf("got %v, want direct 80", got)
	}
	if got := BestHalfDuplexRate(10, 100, 100); got != 50 {
		t.Errorf("got %v, want two-hop 50", got)
	}
}

func TestAmplifyForwardHasUnitFilter(t *testing.T) {
	cfg := basicConfig()
	cfg.PreFilterTaps = []complex128{0.1, 0.9} // must be overridden
	cfg.AmplificationDB = 0
	r := NewAmplifyForward(cfg)
	out := r.Process([]complex128{1, 0, 0, 0})
	if cmplx.Abs(out[2]-1) > 1e-12 {
		t.Errorf("amplify-forward impulse = %v, want 1 (unit filter)", out[2])
	}
}

func TestProcessingDelayS(t *testing.T) {
	cfg := basicConfig()
	cfg.PipelineDelaySamples = 4
	r := New(cfg)
	if got := r.ProcessingDelayS(); math.Abs(got-200e-9) > 1e-15 {
		t.Errorf("delay %v, want 200ns", got)
	}
}

func TestReset(t *testing.T) {
	cfg := basicConfig()
	cfg.SIChannelTaps = []complex128{0, 0.5}
	r := New(cfg)
	r.Process([]complex128{5, 5, 5, 5})
	r.Reset()
	out := r.Process([]complex128{0, 0, 0})
	for i, v := range out {
		if v != 0 {
			t.Fatalf("state leaked after reset at %d: %v", i, v)
		}
	}
}

func BenchmarkRelayStep(b *testing.B) {
	src := rng.New(7)
	cfg := Config{
		SampleRate:           20e6,
		AmplificationDB:      40,
		PipelineDelaySamples: 2,
		SIChannelTaps:        src.NoiseVector(16, 1e-4),
		CancelTaps:           src.NoiseVector(120, 1e-4),
		PreFilterTaps:        src.NoiseVector(4, 1),
	}
	r := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(complex(1, 1))
	}
}
