package relay

import (
	"errors"
	"math"
	"testing"
)

// referenceSession is a mid-range placement: finite cancellation, enough
// path loss for the noise rule to bind before the PA does.
var referenceSession = SessionBudget{
	CancellationDB: 80,
	RDAttenDB:      60,
	PAHeadroomDB:   40,
	RxOverNoiseDB:  50,
}

// TestBudgetSingleSessionMatchesResidualRule pins the account to the
// device-level rule: the first admission into an empty account must be
// bit-identical to ChooseAmplificationResidualDB — the shared-floor bound
// with zero external load IS the Sec 3.5 residual rule.
func TestBudgetSingleSessionMatchesResidualRule(t *testing.T) {
	cases := []SessionBudget{
		referenceSession,
		{CancellationDB: 60, RDAttenDB: 70, PAHeadroomDB: 25, RxOverNoiseDB: 65},
		{CancellationDB: math.Inf(1), RDAttenDB: 55, PAHeadroomDB: 30, RxOverNoiseDB: 40}, // ideal canceller: β = 0
		{CancellationDB: 95, RDAttenDB: 40, PAHeadroomDB: 10, RxOverNoiseDB: 30},          // PA-bound
		{CancellationDB: 20, RDAttenDB: 80, PAHeadroomDB: 50, RxOverNoiseDB: 60},          // cancellation-bound
	}
	for i, s := range cases {
		want := ChooseAmplificationResidualDB(s.CancellationDB, s.RDAttenDB, s.PAHeadroomDB, s.RxOverNoiseDB, true)
		b := NewBudgetAccount(0)
		got, err := b.Admit("s0", s)
		if err != nil {
			if want.Bound == AmpBoundFloor || want.AmpDB < 0 {
				continue // both refuse useless placements
			}
			t.Fatalf("case %d: unexpected refusal: %v", i, err)
		}
		if got != want {
			t.Errorf("case %d: single-session admit = %+v, ChooseAmplificationResidualDB = %+v", i, got, want)
		}
	}
}

// TestBudgetLoadMonotonicity admits identical sessions one after another
// and checks the physics: every later grant is no larger than the one
// before (each admission raises the shared floor), and the residual load
// strictly grows. Strict admission may refuse before the loop ends —
// sticky earlier grants become infeasible as the floor rises — which is
// the policy working, not a failure; at least two must fit first.
func TestBudgetLoadMonotonicity(t *testing.T) {
	b := NewBudgetAccount(0)
	prevAmp := math.Inf(1)
	prevLoad := -1.0
	admitted := 0
	for i := 0; i < 8; i++ {
		dec, err := b.Admit(id(i), referenceSession)
		if err != nil {
			var ae *AdmissionError
			if !errors.As(err, &ae) || ae.Reason != "member_violation" {
				t.Fatalf("admit %d: %v", i, err)
			}
			break
		}
		admitted++
		if dec.AmpDB > prevAmp+ampSlackDB {
			t.Fatalf("admit %d granted %.6f dB > previous %.6f dB: floor load must not raise grants", i, dec.AmpDB, prevAmp)
		}
		if l := b.ResidualLoad(); l <= prevLoad {
			t.Fatalf("admit %d: residual load %.6g did not grow from %.6g", i, l, prevLoad)
		} else {
			prevLoad = l
		}
		prevAmp = dec.AmpDB
	}
	if admitted < 2 {
		t.Fatalf("only %d sessions admitted; the reference placement should share the floor at least once", admitted)
	}
}

// TestBudgetRefusalAtBoundary raises the admission threshold so the
// account fills after a few sessions, asserts the typed refusal, and
// checks a Release reopens exactly one slot.
func TestBudgetRefusalAtBoundary(t *testing.T) {
	// A noisy session: high rx/n0 against modest cancellation gives a
	// large β, so each admission eats the budget quickly.
	s := SessionBudget{CancellationDB: 55, RDAttenDB: 50, PAHeadroomDB: 40, RxOverNoiseDB: 52}
	alone := ChooseAmplificationResidualDB(s.CancellationDB, s.RDAttenDB, s.PAHeadroomDB, s.RxOverNoiseDB, true)
	// Refuse anything more than 2 dB below the solo grant.
	b := NewBudgetAccount(alone.AmpDB - 2)
	admitted := 0
	var refusal *AdmissionError
	for i := 0; i < 64; i++ {
		_, err := b.Admit(id(i), s)
		if err != nil {
			if !errors.As(err, &refusal) {
				t.Fatalf("refusal is %T, want *AdmissionError", err)
			}
			break
		}
		admitted++
	}
	if refusal == nil {
		t.Fatal("64 identical noisy sessions all admitted; expected a budget refusal")
	}
	if admitted == 0 {
		t.Fatal("first session refused; threshold should admit at least one")
	}
	if refusal.Reason != "below_min_amp" && refusal.Reason != "member_violation" {
		t.Fatalf("refusal reason %q, want below_min_amp or member_violation", refusal.Reason)
	}
	if b.Len() != admitted {
		t.Fatalf("Len = %d, want %d", b.Len(), admitted)
	}
	// Releasing one member reopens exactly one slot for the same session.
	if !b.Release(id(0)) {
		t.Fatal("Release of admitted session reported false")
	}
	if _, err := b.Admit("reopened", s); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if _, err := b.Admit("overflow", s); err == nil {
		t.Fatal("admission past the released slot should refuse again")
	}
}

// TestBudgetMemberProtection checks the strict policy refuses a candidate
// whose residual would invalidate an existing grant, and that the refusal
// names the protected member.
func TestBudgetMemberProtection(t *testing.T) {
	b := NewBudgetAccount(0)
	first, err := b.Admit("first", referenceSession)
	if err != nil {
		t.Fatalf("admit first: %v", err)
	}
	// A pathological candidate: enormous residual per amp unit.
	monster := SessionBudget{CancellationDB: 10, RDAttenDB: 90, PAHeadroomDB: 60, RxOverNoiseDB: 70}
	_, err = b.Admit("monster", monster)
	var ae *AdmissionError
	if err == nil || !errors.As(err, &ae) {
		t.Fatalf("monster admission: err = %v, want *AdmissionError", err)
	}
	if ae.Reason == "member_violation" && ae.Session != "first" {
		t.Fatalf("member_violation names %q, want first", ae.Session)
	}
	// The refusal left the account unchanged.
	if got, ok := b.Decision("first"); !ok || got != first {
		t.Fatalf("first member's grant changed after refusal: %+v vs %+v", got, first)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after refusal, want 1", b.Len())
	}
}

// TestBudgetDegradeMode checks AdmitDegraded grants a reduced, feasible
// amplification where the strict policy refuses, marks it degraded with
// AmpBoundBudget, and still refuses when even the minimum is intolerable.
func TestBudgetDegradeMode(t *testing.T) {
	s := SessionBudget{CancellationDB: 55, RDAttenDB: 50, PAHeadroomDB: 40, RxOverNoiseDB: 52}
	alone := ChooseAmplificationResidualDB(s.CancellationDB, s.RDAttenDB, s.PAHeadroomDB, s.RxOverNoiseDB, true)
	strict := NewBudgetAccount(alone.AmpDB - 2)
	soft := NewBudgetAccount(alone.AmpDB - 2)
	// Fill the strict account to its refusal point; mirror on soft.
	n := 0
	for ; n < 64; n++ {
		if _, err := strict.Admit(id(n), s); err != nil {
			break
		}
		if _, deg, err := soft.AdmitDegraded(id(n), s); err != nil || deg {
			t.Fatalf("soft admit %d should match strict while feasible (deg=%v err=%v)", n, deg, err)
		}
	}
	dec, degraded, err := soft.AdmitDegraded("extra", s)
	if err != nil {
		// Degrading cannot always rescue the candidate (β may be too big
		// even at the threshold); in that case both policies refuse and
		// there is nothing more to assert.
		t.Skipf("degrade could not rescue the boundary session: %v", err)
	}
	if !degraded {
		t.Fatal("strict policy refused but AdmitDegraded reported no degradation")
	}
	if dec.Bound != AmpBoundBudget {
		t.Fatalf("degraded bound = %v, want AmpBoundBudget", dec.Bound)
	}
	if dec.AmpDB < soft.MinAmpDB()-ampSlackDB {
		t.Fatalf("degraded grant %.6f dB below MinAmpDB %.6f", dec.AmpDB, soft.MinAmpDB())
	}
	// Every prior member's sticky grant must still hold.
	if v := soft.violatedMember(0); v >= 0 {
		t.Fatalf("member %d violated after degraded admission", v)
	}
}

// TestBudgetPreview checks Preview agrees with Admit without mutating.
func TestBudgetPreview(t *testing.T) {
	b := NewBudgetAccount(0)
	pdec, ok := b.Preview(referenceSession)
	if !ok {
		t.Fatal("preview refused a clean session")
	}
	adec, err := b.Admit("s", referenceSession)
	if err != nil {
		t.Fatalf("admit after preview: %v", err)
	}
	if pdec != adec {
		t.Fatalf("preview %+v != admit %+v", pdec, adec)
	}
	if _, ok := b.Preview(referenceSession); !ok {
		t.Fatal("second preview refused; account should still have headroom")
	}
}

func id(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}
