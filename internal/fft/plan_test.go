package fft

import (
	"sync"
	"testing"
)

// The plan cache must be invisible: repeated transforms of the same length
// reuse cached tables and still match the naive DFT, for both radix-2 and
// Bluestein lengths, including under concurrent use by the sweep engine.

func TestCachedPlanParity(t *testing.T) {
	for _, n := range []int{2, 8, 64, 128, 3, 5, 12, 52, 100} {
		// Two rounds: the first builds the plan, the second hits the cache.
		for round := 0; round < 2; round++ {
			x := randSignal(n, int64(10*n+round))
			want := naiveDFT(x)
			if e := maxErr(Forward(x), want); e > 1e-8 {
				t.Errorf("n=%d round %d: forward error %v vs naive DFT", n, round, e)
			}
			if e := maxErr(Inverse(Forward(x)), x); e > 1e-9 {
				t.Errorf("n=%d round %d: roundtrip error %v", n, round, e)
			}
		}
	}
}

func TestCachedPlanDeterministic(t *testing.T) {
	// The same input must give bit-identical output on every call — the
	// property the parallel sweep determinism guarantee rests on.
	for _, n := range []int{64, 52} {
		x := randSignal(n, int64(n))
		a := Forward(x)
		b := Forward(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: bin %d differs between calls: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

func TestConcurrentTransformsShareCache(t *testing.T) {
	// Many goroutines transforming the same lengths concurrently (as the
	// parallel testbed does) must all agree with the serial result.
	lengths := []int{64, 52, 100, 128}
	want := make([][]complex128, len(lengths))
	for i, n := range lengths {
		want[i] = Forward(randSignal(n, int64(n)))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, n := range lengths {
				got := Forward(randSignal(n, int64(n)))
				for k := range got {
					if got[k] != want[i][k] {
						errs <- "concurrent transform diverged from serial result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func benchTransform(b *testing.B, n int) {
	x := randSignal(n, int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

// BenchmarkForward52Bluestein covers the arbitrary-length (chirp-z) path;
// BenchmarkForward64/1024 in fft_test.go cover the radix-2 path.
func BenchmarkForward52Bluestein(b *testing.B) { benchTransform(b, 52) }

// BenchmarkForward2048 is the LTE-scale numerology.
func BenchmarkForward2048(b *testing.B) { benchTransform(b, 2048) }
