// Package fft implements the fast Fourier transform used by the OFDM
// modem and frequency-domain channel analysis. It supports power-of-two
// lengths with an iterative radix-2 algorithm and arbitrary lengths via
// Bluestein's chirp-z transform.
//
// The modem calls fixed-length transforms millions of times per
// evaluation sweep, so all per-length precomputation — bit-reversal
// permutations, twiddle-factor tables, and Bluestein chirp/convolution
// kernels — is memoized in a process-wide plan cache. Forward and Inverse
// use cached plans transparently; the cache is safe for concurrent use by
// the parallel sweep engine (internal/par).
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// Forward computes the discrete Fourier transform of x and returns a new
// slice: X[k] = sum_n x[n]·exp(-j2πkn/N).
func Forward(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	transform(y, false)
	return y
}

// Inverse computes the inverse DFT of X (with 1/N normalization):
// x[n] = (1/N)·sum_k X[k]·exp(+j2πkn/N).
func Inverse(X []complex128) []complex128 {
	y := make([]complex128, len(X))
	copy(y, X)
	transform(y, true)
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

// ForwardInPlace computes the DFT of x in place, avoiding the copy that
// Forward makes. Block-convolution inner loops (overlap-save) call this
// once per segment, so the savings compound.
func ForwardInPlace(x []complex128) {
	transform(x, false)
}

// InverseInPlace computes the inverse DFT of x in place, with the same
// 1/N normalization as Inverse.
func InverseInPlace(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// transform performs an in-place DFT (inverse=false) or unnormalized inverse
// DFT (inverse=true).
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	p := planFor(n)
	if p.isPow2() {
		p.radix2(x, inverse)
		return
	}
	p.bluestein(x, inverse)
}

// plan holds every quantity a length-n transform needs that depends only
// on n: the radix-2 bit-reversal permutation and twiddle tables for
// power-of-two lengths, plus the Bluestein chirp and pre-transformed
// convolution kernels for everything else. Plans are immutable after
// construction and shared between goroutines.
type plan struct {
	n int

	// Power-of-two state (nil/empty for Bluestein lengths).
	rev []int        // bit-reversal permutation
	twF []complex128 // forward twiddles, stage-major: exp(-j2πk/size)
	twI []complex128 // inverse twiddles (exact conjugates of twF)

	// Bluestein state (nil for power-of-two lengths).
	chirp []complex128 // forward chirp exp(-jπi²/n); inverse uses the conjugate
	kerF  []complex128 // FFT of the forward convolution kernel, length m
	kerI  []complex128 // FFT of the inverse convolution kernel, length m
	sub   *plan        // power-of-two plan for the length-m convolution
	buf   sync.Pool    // scratch length-m buffers for the convolution
}

func (p *plan) isPow2() bool { return p.rev != nil }

// plans caches one immutable plan per transform length. sync.Map fits the
// access pattern exactly: written once per length, then read millions of
// times from many goroutines.
var plans sync.Map // map[int]*plan

// planFor returns the cached plan for length n, building it on first use.
// Concurrent first calls may both build; LoadOrStore keeps one winner, so
// every caller shares the same tables afterwards.
func planFor(n int) *plan {
	if v, ok := plans.Load(n); ok {
		return v.(*plan)
	}
	p := newPlan(n)
	v, _ := plans.LoadOrStore(n, p)
	return v.(*plan)
}

func newPlan(n int) *plan {
	if n&(n-1) == 0 {
		return newPow2Plan(n)
	}
	return newBluesteinPlan(n)
}

func newPow2Plan(n int) *plan {
	p := &plan{n: n}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	// Stage-major twiddles: for each butterfly size (2, 4, ..., n) the
	// half-size roots exp(-j2πk/size), evaluated directly per index rather
	// than by repeated multiplication — both faster at run time and free of
	// the accumulated rounding drift of the w *= wstep recurrence. The
	// inverse table holds the exact conjugates, so the inverse transform's
	// inner loop stays branch-free and inverse∘forward round-trips to
	// machine precision.
	p.twF = make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		for k := 0; k < half; k++ {
			p.twF = append(p.twF, cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(size))))
		}
	}
	p.twI = make([]complex128, len(p.twF))
	for i, w := range p.twF {
		p.twI[i] = cmplx.Conj(w)
	}
	return p
}

func newBluesteinPlan(n int) *plan {
	p := &plan{n: n}
	// chirp[i] = exp(-jπ·i²/n); i*i may overflow for huge n, modulo 2n
	// keeps the angle exact.
	p.chirp = make([]complex128, n)
	for i := 0; i < n; i++ {
		k := (int64(i) * int64(i)) % int64(2*n)
		p.chirp[i] = cmplx.Exp(complex(0, -math.Pi*float64(k)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.sub = planFor(m)
	p.buf.New = func() interface{} { return make([]complex128, m) }
	// Convolution kernels, pre-transformed once: b[i] = conj(chirp[i])
	// mirrored into the tail, for both chirp signs.
	kernel := func(chirpConj func(i int) complex128) []complex128 {
		b := make([]complex128, m)
		for i := 0; i < n; i++ {
			b[i] = chirpConj(i)
		}
		for i := 1; i < n; i++ {
			b[m-i] = chirpConj(i)
		}
		p.sub.radix2(b, false)
		return b
	}
	p.kerF = kernel(func(i int) complex128 { return cmplx.Conj(p.chirp[i]) })
	p.kerI = kernel(func(i int) complex128 { return p.chirp[i] })
	return p
}

// radix2 runs the in-place iterative radix-2 transform using the plan's
// cached permutation and twiddle tables.
func (p *plan) radix2(x []complex128, inverse bool) {
	n := p.n
	for i, j := range p.rev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	twiddles := p.twF
	if inverse {
		twiddles = p.twI
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := twiddles[off : off+half]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tw[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
		off += half
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform
// using the plan's cached chirp and pre-transformed convolution kernel.
func (p *plan) bluestein(x []complex128, inverse bool) {
	n, m := p.n, p.sub.n
	ker := p.kerF
	if inverse {
		ker = p.kerI
	}
	a := p.buf.Get().([]complex128)
	defer p.buf.Put(a)
	for i := 0; i < n; i++ {
		c := p.chirp[i]
		if inverse {
			c = cmplx.Conj(c)
		}
		a[i] = x[i] * c
	}
	for i := n; i < m; i++ {
		a[i] = 0
	}
	p.sub.radix2(a, false)
	for i := range a {
		a[i] *= ker[i]
	}
	p.sub.radix2(a, true)
	scale := complex(1/float64(m), 0)
	for i := 0; i < n; i++ {
		c := p.chirp[i]
		if inverse {
			c = cmplx.Conj(c)
		}
		x[i] = a[i] * scale * c
	}
}

// Shift rearranges FFT output so the zero-frequency bin is centered
// (equivalent to fftshift). For odd lengths the extra bin lands in the
// second half, matching the usual convention.
func Shift(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	half := (n + 1) / 2
	copy(y, x[half:])
	copy(y[n-half:], x[:half])
	return y
}

// FrequencyResponse evaluates the frequency response of FIR taps h at the
// normalized frequency f (cycles per sample, -0.5..0.5):
// H(f) = sum_k h[k]·exp(-j2πfk).
func FrequencyResponse(h []complex128, f float64) complex128 {
	var acc complex128
	for k, v := range h {
		acc += v * cmplx.Exp(complex(0, -2*math.Pi*f*float64(k)))
	}
	return acc
}
