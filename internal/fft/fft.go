// Package fft implements the fast Fourier transform used by the OFDM
// modem and frequency-domain channel analysis. It supports power-of-two
// lengths with an iterative radix-2 algorithm and arbitrary lengths via
// Bluestein's chirp-z transform.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes the discrete Fourier transform of x and returns a new
// slice: X[k] = sum_n x[n]·exp(-j2πkn/N).
func Forward(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	transform(y, false)
	return y
}

// Inverse computes the inverse DFT of X (with 1/N normalization):
// x[n] = (1/N)·sum_k X[k]·exp(+j2πkn/N).
func Inverse(X []complex128) []complex128 {
	y := make([]complex128, len(X))
	copy(y, X)
	transform(y, true)
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

// transform performs an in-place DFT (inverse=false) or unnormalized inverse
// DFT (inverse=true).
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform using
// a power-of-two convolution.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[i] = exp(sign·jπ·i²/n)
	chirp := make([]complex128, n)
	for i := 0; i < n; i++ {
		// i*i may overflow for huge n; modulo 2n keeps the angle exact.
		k := (int64(i) * int64(i)) % int64(2*n)
		chirp[i] = cmplx.Exp(complex(0, sign*math.Pi*float64(k)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for i := 0; i < n; i++ {
		a[i] = x[i] * chirp[i]
		b[i] = cmplx.Conj(chirp[i])
	}
	for i := 1; i < n; i++ {
		b[m-i] = cmplx.Conj(chirp[i])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for i := 0; i < n; i++ {
		x[i] = a[i] * scale * chirp[i]
	}
}

// Shift rearranges FFT output so the zero-frequency bin is centered
// (equivalent to fftshift). For odd lengths the extra bin lands in the
// second half, matching the usual convention.
func Shift(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	half := (n + 1) / 2
	copy(y, x[half:])
	copy(y[n-half:], x[:half])
	return y
}

// FrequencyResponse evaluates the frequency response of FIR taps h at the
// normalized frequency f (cycles per sample, -0.5..0.5):
// H(f) = sum_k h[k]·exp(-j2πfk).
func FrequencyResponse(h []complex128, f float64) complex128 {
	var acc complex128
	for k, v := range h {
		acc += v * cmplx.Exp(complex(0, -2*math.Pi*f*float64(k)))
	}
	return acc
}
