package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for i := 0; i < n; i++ {
			s += x[i] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*i)/float64(n)))
		}
		y[k] = s
	}
	return y
}

func randSignal(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 56, 100} {
		x := randSignal(n, int64(n))
		got := Forward(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 64, 128, 56, 63, 100} {
		x := randSignal(n, int64(1000+n))
		y := Inverse(Forward(x))
		if e := maxErr(x, y); e > 1e-9 {
			t.Errorf("n=%d: roundtrip error %v", n, e)
		}
	}
}

func TestImpulse(t *testing.T) {
	// DFT of an impulse is all ones.
	x := make([]complex128, 64)
	x[0] = 1
	y := Forward(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestSingleTone(t *testing.T) {
	// A complex tone at bin 5 should produce energy only at bin 5.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/n))
	}
	y := Forward(x)
	for k, v := range y {
		want := complex128(0)
		if k == 5 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestParseval(t *testing.T) {
	x := randSignal(128, 7)
	y := Forward(x)
	var ex, ey float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	ey /= float64(len(x))
	if math.Abs(ex-ey) > 1e-8*(1+ex) {
		t.Errorf("Parseval violated: %v vs %v", ex, ey)
	}
}

func TestShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	y := Shift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Shift even = %v", y)
		}
	}
	x = []complex128{0, 1, 2, 3, 4}
	y = Shift(x)
	want = []complex128{3, 4, 0, 1, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Shift odd = %v", y)
		}
	}
}

func TestFrequencyResponse(t *testing.T) {
	// A pure one-sample delay has response exp(-j2πf).
	h := []complex128{0, 1}
	for _, f := range []float64{-0.4, -0.1, 0, 0.2, 0.5} {
		got := FrequencyResponse(h, f)
		want := cmplx.Exp(complex(0, -2*math.Pi*f))
		if cmplx.Abs(got-want) > 1e-12 {
			t.Errorf("H(%v) = %v, want %v", f, got, want)
		}
	}
	// FrequencyResponse at bin centers matches the DFT.
	taps := randSignal(8, 3)
	dft := Forward(taps)
	for k := 0; k < 8; k++ {
		got := FrequencyResponse(taps, float64(k)/8)
		if cmplx.Abs(got-dft[k]) > 1e-9 {
			t.Errorf("bin %d: %v vs %v", k, got, dft[k])
		}
	}
}

func TestQuickLinearity(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a := randSignal(64, seed1)
		b := randSignal(64, seed2)
		sum := make([]complex128, 64)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		lhs := Forward(sum)
		fa, fb := Forward(a), Forward(b)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(fa[i]+fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickConvolutionTheorem(t *testing.T) {
	// Circular convolution in time == multiplication in frequency.
	f := func(seed int64) bool {
		const n = 32
		a := randSignal(n, seed)
		b := randSignal(n, seed+99)
		// circular convolution
		c := make([]complex128, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c[(i+j)%n] += a[i] * b[j]
			}
		}
		fa, fb, fc := Forward(a), Forward(b), Forward(c)
		for i := 0; i < n; i++ {
			if cmplx.Abs(fc[i]-fa[i]*fb[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward64(b *testing.B) {
	x := randSignal(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForward1024(b *testing.B) {
	x := randSignal(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
