package coding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

// hardToSoft converts hard bits to strong LLRs.
func hardToSoft(bits []byte) []float64 {
	soft := make([]float64, len(bits))
	for i, b := range bits {
		if b == 1 {
			soft[i] = 4
		} else {
			soft[i] = -4
		}
	}
	return soft
}

func addTail(bits []byte) []byte {
	return append(append([]byte{}, bits...), make([]byte, 6)...)
}

func TestConvEncodeKnownVector(t *testing.T) {
	// The all-zeros input produces all-zeros output (linear code).
	out := ConvEncode(make([]byte, 10))
	for _, b := range out {
		if b != 0 {
			t.Fatal("all-zero input must give all-zero output")
		}
	}
	// A single 1 produces the generator impulse response 133/171 (octal).
	out = ConvEncode([]byte{1, 0, 0, 0, 0, 0, 0})
	// g0 = 133 octal = 1011011 binary: taps at delays 0,2,3,5,6.
	// g1 = 171 octal = 1111001 binary: taps at delays 0,1,2,3,6.
	wantA := []byte{1, 0, 1, 1, 0, 1, 1}
	wantB := []byte{1, 1, 1, 1, 0, 0, 1}
	for i := 0; i < 7; i++ {
		if out[2*i] != wantA[i] || out[2*i+1] != wantB[i] {
			t.Fatalf("impulse response wrong at %d: got (%d,%d) want (%d,%d)",
				i, out[2*i], out[2*i+1], wantA[i], wantB[i])
		}
	}
}

func TestViterbiCleanDecode(t *testing.T) {
	data := randBits(200, 1)
	padded := addTail(data)
	coded := ConvEncode(padded)
	dec := ViterbiDecode(hardToSoft(coded), len(padded), true)
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("clean Viterbi decode failed at bit %d", i)
		}
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	data := randBits(300, 2)
	padded := addTail(data)
	coded := ConvEncode(padded)
	soft := hardToSoft(coded)
	// Flip ~4% of coded bits, spread out (free distance is 10: isolated
	// errors well apart are always correctable).
	r := rand.New(rand.NewSource(3))
	flips := 0
	for i := 0; i < len(soft); i += 25 {
		j := i + r.Intn(10)
		if j < len(soft) {
			soft[j] = -soft[j]
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("test broken: no flips")
	}
	dec := ViterbiDecode(soft, len(padded), true)
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("Viterbi failed to correct %d spread errors (bit %d)", flips, i)
		}
	}
}

func TestViterbiErasures(t *testing.T) {
	// Zero-LLR erasures (as produced by depuncturing) must be tolerated.
	data := randBits(120, 4)
	padded := addTail(data)
	coded := ConvEncode(padded)
	soft := hardToSoft(coded)
	for i := 3; i < len(soft); i += 6 {
		soft[i] = 0
	}
	dec := ViterbiDecode(soft, len(padded), true)
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("Viterbi failed with erasures at bit %d", i)
		}
	}
}

func TestPunctureRates(t *testing.T) {
	// Verify output lengths match the nominal rates.
	nData := 120 // divisible by 2,3,5
	coded := ConvEncode(randBits(nData, 5))
	for _, r := range []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6} {
		p := Puncture(coded, r)
		want := int(float64(nData) / r.Fraction())
		if len(p) != want {
			t.Errorf("rate %v: punctured length %d, want %d", r, len(p), want)
		}
	}
}

func TestPuncturedRoundTrip(t *testing.T) {
	for _, r := range []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6} {
		data := randBits(240, 6)
		padded := addTail(data)
		coded := EncodePunctured(padded, r)
		dec := DecodePunctured(hardToSoft(coded), r, len(padded), true)
		for i := range data {
			if dec[i] != data[i] {
				t.Fatalf("rate %v: punctured roundtrip failed at bit %d", r, i)
			}
		}
	}
}

func TestPuncturedErrorCorrection(t *testing.T) {
	// Even at rate 3/4 a few well-separated errors must be correctable.
	data := randBits(300, 7)
	padded := addTail(data)
	coded := EncodePunctured(padded, Rate3_4)
	soft := hardToSoft(coded)
	for _, idx := range []int{20, 120, 260, 350} {
		if idx < len(soft) {
			soft[idx] = -soft[idx]
		}
	}
	dec := DecodePunctured(soft, Rate3_4, len(padded), true)
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("rate 3/4 failed to correct isolated errors at bit %d", i)
		}
	}
}

func TestScrambleInvolution(t *testing.T) {
	bits := randBits(500, 8)
	s := Scramble(bits, 93)
	d := Scramble(s, 93)
	for i := range bits {
		if d[i] != bits[i] {
			t.Fatal("scramble twice must be identity")
		}
	}
	// Scrambling actually changes the data.
	same := 0
	for i := range bits {
		if s[i] == bits[i] {
			same++
		}
	}
	if same == len(bits) {
		t.Error("scrambler did nothing")
	}
}

func TestScrambleZeroSeedHandled(t *testing.T) {
	bits := randBits(64, 9)
	s := Scramble(bits, 0) // must not lock up in all-zero state
	diff := 0
	for i := range bits {
		if s[i] != bits[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("zero seed should be remapped, not produce identity")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	// 20MHz OFDM: 48 or 52 data subcarriers; test several nBPSC values.
	cases := []struct{ nCBPS, nBPSC int }{
		{48, 1}, {96, 2}, {192, 4}, {288, 6}, {208, 4}, {312, 6}, {416, 8},
	}
	for _, c := range cases {
		bits := randBits(c.nCBPS, int64(c.nCBPS))
		il := Interleave(bits, c.nCBPS, c.nBPSC)
		de := Deinterleave(il, c.nCBPS, c.nBPSC)
		for i := range bits {
			if de[i] != bits[i] {
				t.Fatalf("nCBPS=%d nBPSC=%d roundtrip failed at %d", c.nCBPS, c.nBPSC, i)
			}
		}
		// Interleaving must be a permutation (all positions hit).
		seen := make([]bool, c.nCBPS)
		mark := make([]byte, c.nCBPS)
		for i := range mark {
			mark[i] = byte(i % 2)
		}
		perm := Interleave(mark, c.nCBPS, c.nBPSC)
		ones := 0
		for _, v := range perm {
			ones += int(v)
		}
		wantOnes := 0
		for _, v := range mark {
			wantOnes += int(v)
		}
		if ones != wantOnes {
			t.Fatalf("interleave is not a permutation for nCBPS=%d", c.nCBPS)
		}
		_ = seen
	}
}

func TestDeinterleaveSoftMatchesHard(t *testing.T) {
	const nCBPS, nBPSC = 192, 4
	bits := randBits(nCBPS, 12)
	il := Interleave(bits, nCBPS, nBPSC)
	soft := make([]float64, nCBPS)
	for i, b := range il {
		if b == 1 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	deSoft := DeinterleaveSoft(soft, nCBPS, nBPSC)
	for i, b := range bits {
		got := byte(0)
		if deSoft[i] > 0 {
			got = 1
		}
		if got != b {
			t.Fatalf("soft deinterleave mismatch at %d", i)
		}
	}
}

func TestQuickCodeLinearity(t *testing.T) {
	// Convolutional codes are linear: enc(a) XOR enc(b) == enc(a XOR b).
	f := func(raw1, raw2 []byte) bool {
		n := len(raw1)
		if len(raw2) < n {
			n = len(raw2)
		}
		if n == 0 {
			return true
		}
		if n > 64 {
			n = 64
		}
		a := make([]byte, n)
		b := make([]byte, n)
		x := make([]byte, n)
		for i := 0; i < n; i++ {
			a[i] = raw1[i] & 1
			b[i] = raw2[i] & 1
			x[i] = a[i] ^ b[i]
		}
		ea, eb, ex := ConvEncode(a), ConvEncode(b), ConvEncode(x)
		for i := range ex {
			if ea[i]^eb[i] != ex[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickViterbiRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		if n > 128 {
			n = 128
		}
		data := make([]byte, n)
		for i := 0; i < n; i++ {
			data[i] = raw[i] & 1
		}
		padded := addTail(data)
		dec := ViterbiDecode(hardToSoft(ConvEncode(padded)), len(padded), true)
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkViterbi1000Bits(b *testing.B) {
	data := randBits(1000, 1)
	padded := addTail(data)
	soft := hardToSoft(ConvEncode(padded))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ViterbiDecode(soft, len(padded), true)
	}
}
