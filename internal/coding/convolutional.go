// Package coding implements the 802.11 OFDM PHY bit-level processing chain:
// the self-synchronizing scrambler, the industry-standard rate-1/2 K=7
// convolutional code (generators 133/171 octal) with puncturing to rates
// 2/3, 3/4 and 5/6, a soft-decision Viterbi decoder, and the per-symbol
// block interleaver. The FastForward relay never decodes (it is a Layer-1
// device) — this chain exists so the simulated clients can measure real
// packet error rates over relayed channels.
package coding

import (
	"fmt"
	"math"
)

// Constraint length and generator polynomials of the 802.11 code.
const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	genA          = 0o133
	genB          = 0o171
)

// parity returns the parity bit of v.
func parity(v int) byte {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}

// ConvEncode encodes bits with the rate-1/2 K=7 convolutional code. The
// encoder starts in the all-zero state; callers append 6 tail bits if they
// need termination (wifi frames do). Output has 2 bits per input bit:
// the generator-A bit then the generator-B bit.
func ConvEncode(bits []byte) []byte {
	out := make([]byte, 0, 2*len(bits))
	state := 0
	for _, b := range bits {
		reg := state | int(b&1)<<(constraintLen-1)
		out = append(out, parity(reg&genA), parity(reg&genB))
		state = reg >> 1
	}
	return out
}

// Rate identifies a puncturing pattern / code rate.
type Rate int

// Code rates supported by the 802.11 PHY.
const (
	Rate1_2 Rate = iota
	Rate2_3
	Rate3_4
	Rate5_6
)

// String names the rate.
func (r Rate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	case Rate5_6:
		return "5/6"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the code rate as a float (data bits / coded bits).
func (r Rate) Fraction() float64 {
	switch r {
	case Rate1_2:
		return 0.5
	case Rate2_3:
		return 2.0 / 3
	case Rate3_4:
		return 0.75
	case Rate5_6:
		return 5.0 / 6
	}
	panic("coding: unknown rate")
}

// puncturePattern returns the keep-mask over one puncturing period of the
// rate-1/2 mother code output (A0 B0 A1 B1 ...). true = transmit.
func (r Rate) puncturePattern() []bool {
	switch r {
	case Rate1_2:
		return []bool{true, true}
	case Rate2_3:
		// 802.11: period 2 input bits -> keep A0 B0 A1 (drop B1)
		return []bool{true, true, true, false}
	case Rate3_4:
		// period 3 input bits -> keep A0 B0 A1 B2 (drop B1 A2)
		return []bool{true, true, true, false, false, true}
	case Rate5_6:
		// period 5 input bits -> A0 B0 A1 B2 A3 B4
		return []bool{true, true, true, false, false, true, true, false, false, true}
	}
	panic("coding: unknown rate")
}

// Puncture removes coded bits according to the rate's pattern.
func Puncture(coded []byte, r Rate) []byte {
	pat := r.puncturePattern()
	out := make([]byte, 0, len(coded))
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// Depuncture re-inserts neutral soft values (0 = erased) where bits were
// punctured, returning soft values aligned to the mother-code output.
// codedLen is the mother-code output length (2× the number of data bits).
func Depuncture(soft []float64, r Rate, codedLen int) []float64 {
	pat := r.puncturePattern()
	out := make([]float64, codedLen)
	si := 0
	for i := 0; i < codedLen; i++ {
		if pat[i%len(pat)] {
			if si < len(soft) {
				out[i] = soft[si]
				si++
			}
		}
	}
	return out
}

// ViterbiDecode performs soft-decision maximum-likelihood decoding of the
// rate-1/2 mother code. soft holds one LLR per coded bit (positive = bit 1),
// in A,B order; its length must be even. nBits is the number of data bits to
// recover (including any tail bits the caller added). The trellis is assumed
// to start in state 0; if terminated is true the path is traced back from
// state 0 (use with 6 zero tail bits), otherwise from the best end state.
func ViterbiDecode(soft []float64, nBits int, terminated bool) []byte {
	if len(soft) < 2*nBits {
		padded := make([]float64, 2*nBits)
		copy(padded, soft)
		soft = padded
	}
	// Precompute per-state output bits for input 0 and 1.
	type trans struct {
		next int
		outA byte
		outB byte
	}
	table := make([][2]trans, numStates)
	for s := 0; s < numStates; s++ {
		for in := 0; in <= 1; in++ {
			reg := s | in<<(constraintLen-1)
			table[s][in] = trans{
				next: reg >> 1,
				outA: parity(reg & genA),
				outB: parity(reg & genB),
			}
		}
	}

	neg := math.Inf(-1)
	metric := make([]float64, numStates)
	for i := range metric {
		metric[i] = neg
	}
	metric[0] = 0
	// prevState[t][state] packs the surviving predecessor state (low 7 bits)
	// and the input bit (high bit) for the transition into state at time t.
	prevState := make([][]uint8, nBits)
	newMetric := make([]float64, numStates)

	for t := 0; t < nBits; t++ {
		la := soft[2*t]
		lb := soft[2*t+1]
		for i := range newMetric {
			newMetric[i] = neg
		}
		row := make([]uint8, numStates)
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if math.IsInf(m, -1) {
				continue
			}
			for in := 0; in <= 1; in++ {
				tr := table[s][in]
				// Branch metric: correlation of expected bits with LLRs.
				bm := m
				if tr.outA == 1 {
					bm += la
				} else {
					bm -= la
				}
				if tr.outB == 1 {
					bm += lb
				} else {
					bm -= lb
				}
				if bm > newMetric[tr.next] {
					newMetric[tr.next] = bm
					row[tr.next] = uint8(s) | uint8(in)<<7
				}
			}
		}
		prevState[t] = row
		copy(metric, newMetric)
	}

	// Traceback.
	end := 0
	if !terminated {
		best := neg
		for s, m := range metric {
			if m > best {
				best = m
				end = s
			}
		}
	}
	bits := make([]byte, nBits)
	state := end
	for t := nBits - 1; t >= 0; t-- {
		packed := prevState[t][state]
		bits[t] = byte(packed >> 7)
		state = int(packed & 0x7f)
	}
	return bits
}

// DecodePunctured is the full soft decode path: depuncture then Viterbi.
// nBits includes tail bits; terminated should be true for 802.11 frames.
func DecodePunctured(soft []float64, r Rate, nBits int, terminated bool) []byte {
	full := Depuncture(soft, r, 2*nBits)
	return ViterbiDecode(full, nBits, terminated)
}

// EncodePunctured is the full encode path: convolutional encode then
// puncture to rate r.
func EncodePunctured(bits []byte, r Rate) []byte {
	return Puncture(ConvEncode(bits), r)
}
