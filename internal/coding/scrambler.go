package coding

// Scramble applies the 802.11 frame-synchronous scrambler with the
// polynomial x^7 + x^4 + 1, starting from the 7-bit seed (1..127).
// Scrambling is its own inverse, so the same function descrambles.
func Scramble(bits []byte, seed byte) []byte {
	state := int(seed & 0x7f)
	if state == 0 {
		state = 0x7f // the standard forbids the all-zero state
	}
	out := make([]byte, len(bits))
	for i, b := range bits {
		fb := (state >> 6 & 1) ^ (state >> 3 & 1)
		out[i] = b ^ byte(fb)
		state = (state<<1 | fb) & 0x7f
	}
	return out
}

// permTable builds the interleaver permutation for one OFDM symbol:
// perm[k] = j means input coded bit k lands at position j. It applies the
// standard two permutations: the first spreads adjacent coded bits across
// nonadjacent subcarriers (NCOL columns), the second rotates bit positions
// within a subcarrier so long runs of low-reliability constellation bits
// are avoided. NCOL is 16 for 48-data-subcarrier symbols (802.11a/g) and 13
// for 52-data-subcarrier symbols (802.11n 20 MHz); the a/g formula is not a
// bijection at 52 subcarriers.
func permTable(nCBPS, nBPSC int) []int {
	nSubc := nCBPS / nBPSC
	nCol := 16
	if nSubc%16 != 0 {
		if nSubc%13 == 0 {
			nCol = 13
		} else {
			panic("coding: unsupported subcarrier count for interleaver")
		}
	}
	s := nBPSC / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, nCBPS)
	seen := make([]bool, nCBPS)
	for k := 0; k < nCBPS; k++ {
		i := (nCBPS/nCol)*(k%nCol) + k/nCol
		j := s*(i/s) + (i+nCBPS-(nCol*i)/nCBPS)%s
		perm[k] = j
		if seen[j] {
			panic("coding: interleaver permutation collision")
		}
		seen[j] = true
	}
	return perm
}

// Interleave applies the per-OFDM-symbol block interleaver to nCBPS coded
// bits with nBPSC bits per subcarrier. The input length must equal nCBPS.
func Interleave(bits []byte, nCBPS, nBPSC int) []byte {
	if len(bits) != nCBPS {
		panic("coding: Interleave input must be one OFDM symbol")
	}
	perm := permTable(nCBPS, nBPSC)
	out := make([]byte, nCBPS)
	for k, j := range perm {
		out[j] = bits[k]
	}
	return out
}

// Deinterleave inverts Interleave.
func Deinterleave(bits []byte, nCBPS, nBPSC int) []byte {
	if len(bits) != nCBPS {
		panic("coding: Deinterleave input must be one OFDM symbol")
	}
	perm := permTable(nCBPS, nBPSC)
	out := make([]byte, nCBPS)
	for k, j := range perm {
		out[k] = bits[j]
	}
	return out
}

// DeinterleaveSoft inverts Interleave on soft values (LLRs).
func DeinterleaveSoft(soft []float64, nCBPS, nBPSC int) []float64 {
	if len(soft) != nCBPS {
		panic("coding: DeinterleaveSoft input must be one OFDM symbol")
	}
	perm := permTable(nCBPS, nBPSC)
	out := make([]float64, nCBPS)
	for k, j := range perm {
		out[k] = soft[j]
	}
	return out
}
