package floorplan

// This file defines the indoor scenarios of the paper's evaluation (Sec 5):
// the ~2000 sq ft home of Fig 1 plus the open office, L-shaped corridor and
// wide-room testbed settings. Positions are in meters with the origin at
// the bottom-left corner.

// Home returns the Fig-1 floor plan: a ~14 m × 13 m (≈2000 sq ft) home with
// a living room at the bottom (AP in its corner), two bedrooms at the top
// reached through a central corridor, and the relay position at the
// corridor mouth in the middle of the home.
func Home() *Plan {
	w, h := 14.0, 13.0
	p := &Plan{Width: w, Height: h}
	ext := ExteriorWall
	// Outer shell.
	p.addRect(Point{0, 0}, Point{w, h}, ext)
	// Living room: bottom half, y in [0, 5.5]. Wall along y=5.5 with a
	// corridor opening x in [6, 8].
	p.wall(Point{0, 5.5}, Point{6, 5.5}, Drywall)
	p.wall(Point{8, 5.5}, Point{w, 5.5}, Drywall)
	// Corridor: x in [6,8], y in [5.5, 9]. Side walls.
	p.wall(Point{6, 5.5}, Point{6, 9}, Drywall)
	p.wall(Point{8, 5.5}, Point{8, 9}, Drywall)
	// Bedroom floor divider at y=9 with two door openings.
	p.wall(Point{0, 9}, Point{2.5, 9}, Drywall) // door at [2.5,3.5]
	p.wall(Point{3.5, 9}, Point{6, 9}, Drywall)
	p.wall(Point{8, 9}, Point{10.5, 9}, Drywall) // door at [10.5,11.5]
	p.wall(Point{11.5, 9}, Point{w, 9}, Drywall)
	// Wall between the two bedrooms.
	p.wall(Point{7, 9}, Point{7, h}, Drywall)
	// A partial wall inside the living room (kitchen divider).
	p.wall(Point{9.5, 0}, Point{9.5, 3.5}, Drywall)
	return p
}

// HomeAP returns the paper's AP position: the corner of the living room.
func HomeAP() Point { return Point{1.0, 1.0} }

// HomeRelay returns the relay position at the corridor mouth mid-home.
func HomeRelay() Point { return Point{7.0, 6.2} }

// OpenOffice returns a 20 m × 15 m office with cubicle partition rows and
// a glass-walled meeting area — "open" relative to a home, but obstructed
// enough that coverage degrades away from the AP as in any real office.
func OpenOffice() *Plan {
	w, h := 20.0, 15.0
	p := &Plan{Width: w, Height: h}
	p.addRect(Point{0, 0}, Point{w, h}, ExteriorWall)
	// Cubicle rows (drywall-grade partitions) with aisle gaps.
	p.wall(Point{4, 3}, Point{4, 7}, Drywall)
	p.wall(Point{4, 9}, Point{4, 13}, Drywall)
	p.wall(Point{8, 2}, Point{8, 6}, Drywall)
	p.wall(Point{8, 8}, Point{8, 12}, Drywall)
	p.wall(Point{13, 3}, Point{13, 7}, Drywall)
	p.wall(Point{13, 9}, Point{13, 13}, Drywall)
	// A metal storage row and a glass meeting room.
	p.wall(Point{16, 2}, Point{16, 8}, MetalPartition)
	p.wall(Point{8, 12}, Point{16, 12}, Glass)
	p.wall(Point{2, 7}, Point{7, 7}, Drywall)
	p.wall(Point{10, 7}, Point{15, 7}, Drywall)
	return p
}

// OpenOfficeAP returns the AP corner position for the open office.
func OpenOfficeAP() Point { return Point{1.5, 1.5} }

// OpenOfficeRelay returns the relay position for the open office, placed
// with line of sight to the AP (not behind the metal partition).
func OpenOfficeRelay() Point { return Point{9.0, 7.2} }

// LCorridor returns a corridor-plus-wide-room plan, the pinhole geometry
// of Sec 1: a corridor runs along the bottom, and the rooms above are
// reached only through a single door gap — the corridor and door act as
// the RF pinhole between the AP and room clients.
func LCorridor() *Plan {
	w, h := 16.0, 10.0
	p := &Plan{Width: w, Height: h}
	p.addRect(Point{0, 0}, Point{w, h}, ExteriorWall)
	// Corridor along the bottom (y in [0,2.5]); door gap at x in [7,9].
	p.wall(Point{0, 2.5}, Point{7, 2.5}, Brick)
	p.wall(Point{9, 2.5}, Point{w, 2.5}, Brick)
	// Divider splitting the upper space into two rooms, with its own door
	// near the bottom (gap y in [2.5,4.5]).
	p.wall(Point{8, 4.5}, Point{8, h}, Drywall)
	return p
}

// LCorridorAP returns the AP position at the corridor's end.
func LCorridorAP() Point { return Point{1.0, 1.2} }

// LCorridorRelay returns the relay position: in the corridor just below
// the door gap, with line of sight to the AP and first-bounce coverage of
// the rooms through the doorway.
func LCorridorRelay() Point { return Point{8.2, 1.8} }

// TwoWideRooms returns two large rooms separated by a single concrete wall
// with one door.
func TwoWideRooms() *Plan {
	w, h := 16.0, 10.0
	p := &Plan{Width: w, Height: h}
	p.addRect(Point{0, 0}, Point{w, h}, ExteriorWall)
	p.wall(Point{8, 0}, Point{8, 4}, Concrete) // door at y in [4,5.2]
	p.wall(Point{8, 5.2}, Point{8, h}, Concrete)
	return p
}

// TwoWideRoomsAP returns the AP position in the left room.
func TwoWideRoomsAP() Point { return Point{2.0, 5.0} }

// TwoWideRoomsRelay returns the relay position near the door.
func TwoWideRoomsRelay() Point { return Point{7.2, 4.7} }

// Scenario couples a plan with its AP and relay placements.
type Scenario struct {
	Name  string
	Plan  *Plan
	AP    Point
	Relay Point
}

// Scenarios returns the four evaluation scenarios of Sec 5.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "home", Plan: Home(), AP: HomeAP(), Relay: HomeRelay()},
		{Name: "open-office", Plan: OpenOffice(), AP: OpenOfficeAP(), Relay: OpenOfficeRelay()},
		{Name: "l-corridor", Plan: LCorridor(), AP: LCorridorAP(), Relay: LCorridorRelay()},
		{Name: "two-wide-rooms", Plan: TwoWideRooms(), AP: TwoWideRoomsAP(), Relay: TwoWideRoomsRelay()},
	}
}

func (p *Plan) wall(a, b Point, m Material) {
	p.Walls = append(p.Walls, Wall{A: a, B: b, Material: m})
}

func (p *Plan) addRect(lo, hi Point, m Material) {
	p.wall(Point{lo.X, lo.Y}, Point{hi.X, lo.Y}, m)
	p.wall(Point{hi.X, lo.Y}, Point{hi.X, hi.Y}, m)
	p.wall(Point{hi.X, hi.Y}, Point{lo.X, hi.Y}, m)
	p.wall(Point{lo.X, hi.Y}, Point{lo.X, lo.Y}, m)
}

// Grid returns measurement points on a regular grid with the given spacing
// (meters), inset from the exterior by margin.
func (p *Plan) Grid(spacing, margin float64) []Point {
	var pts []Point
	for y := margin; y <= p.Height-margin; y += spacing {
		for x := margin; x <= p.Width-margin; x += spacing {
			pts = append(pts, Point{x, y})
		}
	}
	return pts
}

// Contains reports whether the point is inside the plan bounds.
func (p *Plan) Contains(pt Point) bool {
	return pt.X >= 0 && pt.X <= p.Width && pt.Y >= 0 && pt.Y <= p.Height
}
