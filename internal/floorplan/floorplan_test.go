package floorplan

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/channel"
)

func TestGeometryBasics(t *testing.T) {
	p := Point{3, 4}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if a := (Point{0, 1}).Angle(); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Errorf("Angle = %v", a)
	}
}

func TestSegmentIntersection(t *testing.T) {
	// Crossing segments.
	tt, ok := segmentIntersection(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0})
	if !ok || math.Abs(tt-0.5) > 1e-12 {
		t.Errorf("intersection t=%v ok=%v", tt, ok)
	}
	// Parallel.
	if _, ok := segmentIntersection(Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}); ok {
		t.Error("parallel segments should not intersect")
	}
	// Disjoint.
	if _, ok := segmentIntersection(Point{0, 0}, Point{1, 1}, Point{5, 5}, Point{6, 4}); ok {
		t.Error("disjoint segments should not intersect")
	}
}

func TestMirror(t *testing.T) {
	w := Wall{A: Point{0, 0}, B: Point{10, 0}} // x axis
	m := mirror(Point{3, 4}, w)
	if math.Abs(m.X-3) > 1e-12 || math.Abs(m.Y+4) > 1e-12 {
		t.Errorf("mirror = %v", m)
	}
}

func TestDirectPathFreeSpace(t *testing.T) {
	p := &Plan{Width: 100, Height: 100} // no walls
	paths := p.Trace(Point{10, 10}, Point{20, 10}, 0)
	if len(paths) != 1 {
		t.Fatalf("%d paths, want 1", len(paths))
	}
	// Unobstructed path: free space plus 0.3 dB/m clutter beyond 3 m.
	want := 40.05 + 20*math.Log10(10.0) + 0.3*7
	if math.Abs(paths[0].LossDB-want) > 0.01 {
		t.Errorf("loss %v, want %v", paths[0].LossDB, want)
	}
	wantDelay := 10.0 / SpeedOfLight
	if math.Abs(paths[0].DelayS-wantDelay) > 1e-12 {
		t.Errorf("delay %v, want %v", paths[0].DelayS, wantDelay)
	}
}

func TestWallPenetrationAddsLoss(t *testing.T) {
	p := &Plan{Width: 20, Height: 20}
	p.wall(Point{5, 0}, Point{5, 20}, Concrete)
	free := (&Plan{Width: 20, Height: 20}).Trace(Point{1, 10}, Point{9, 10}, 0)[0]
	blocked := p.Trace(Point{1, 10}, Point{9, 10}, 0)[0]
	// Crossing the wall adds its penetration loss plus the obstructed-path
	// propagation penalty (steeper slope and heavier clutter).
	d := 8.0
	obstructedExtra := 20*math.Log10(d/3) + 1.0*(d-3) - 0.3*(d-3)
	want := Concrete.PenetrationLossDB + obstructedExtra
	if diff := blocked.LossDB - free.LossDB; math.Abs(diff-want) > 0.01 {
		t.Errorf("wall added %v dB, want %v", diff, want)
	}
}

func TestFirstOrderReflection(t *testing.T) {
	// Single wall along y=10; tx and rx below it. Reflection path length is
	// the image distance.
	p := &Plan{Width: 20, Height: 20}
	p.wall(Point{0, 10}, Point{20, 10}, Drywall)
	tx, rx := Point{5, 5}, Point{15, 5}
	paths := p.Trace(tx, rx, 1)
	if len(paths) != 2 {
		t.Fatalf("%d paths, want 2 (direct + reflection)", len(paths))
	}
	refl := paths[1]
	// Image of tx across y=10 is (5,15); distance to rx = sqrt(100+100).
	wantDist := math.Hypot(10, 10)
	if math.Abs(refl.DistanceM-wantDist) > 1e-9 {
		t.Errorf("reflection distance %v, want %v", refl.DistanceM, wantDist)
	}
	if refl.Reflections != 1 {
		t.Error("reflection count wrong")
	}
	if refl.LossDB <= paths[0].LossDB {
		t.Error("reflected path should be weaker than direct")
	}
}

func TestReflectionRequiresSegmentHit(t *testing.T) {
	// Wall too short for the mirror geometry: no reflection path.
	p := &Plan{Width: 40, Height: 20}
	p.wall(Point{0, 10}, Point{2, 10}, Drywall) // far to the left
	paths := p.Trace(Point{20, 5}, Point{30, 5}, 1)
	if len(paths) != 1 {
		t.Fatalf("%d paths, want only direct", len(paths))
	}
}

func TestSecondOrderReflection(t *testing.T) {
	// Two parallel walls: a double bounce exists.
	p := &Plan{Width: 20, Height: 20}
	p.wall(Point{0, 0}, Point{20, 0}, Drywall)
	p.wall(Point{0, 10}, Point{20, 10}, Drywall)
	paths := p.Trace(Point{5, 5}, Point{15, 5}, 2)
	found := false
	for _, pp := range paths {
		if pp.Reflections == 2 {
			found = true
			if pp.DistanceM <= 10 {
				t.Error("double bounce cannot be shorter than direct")
			}
		}
	}
	if !found {
		t.Error("no second-order path found between parallel walls")
	}
}

func TestHomeLayoutSNRTopology(t *testing.T) {
	// The key qualitative property of Fig 1: coverage degrades from the AP
	// corner toward the far bedrooms.
	plan := Home()
	ap := HomeAP()
	near := plan.Trace(ap, Point{3, 2}, 2)
	mid := plan.Trace(ap, Point{7, 7}, 2)
	far := plan.Trace(ap, Point{12, 12}, 2)
	gNear := AveragePowerGainDB(near)
	gMid := AveragePowerGainDB(mid)
	gFar := AveragePowerGainDB(far)
	if !(gNear > gMid && gMid > gFar) {
		t.Errorf("gain not monotone: near %v mid %v far %v", gNear, gMid, gFar)
	}
	// With 20 dBm TX and -90 dBm floor, the far bedroom should be in the
	// poor-SNR regime the paper shows (<15 dB), the near zone rich (>35 dB).
	snrNear := channel.TxPowerDBm - (-gNear) - channel.NoiseFloorDBm
	snrFar := channel.TxPowerDBm - (-gFar) - channel.NoiseFloorDBm
	if snrNear < 35 {
		t.Errorf("near SNR %v dB too low", snrNear)
	}
	if snrFar > 25 {
		t.Errorf("far SNR %v dB too high for a dead-ish zone", snrFar)
	}
}

func TestScenariosWellFormed(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Plan == nil || len(sc.Plan.Walls) < 4 {
			t.Errorf("%s: missing walls", sc.Name)
		}
		if !sc.Plan.Contains(sc.AP) || !sc.Plan.Contains(sc.Relay) {
			t.Errorf("%s: AP or relay outside plan", sc.Name)
		}
		// AP-relay link must be usable (relay placement sanity).
		paths := sc.Plan.Trace(sc.AP, sc.Relay, 2)
		g := AveragePowerGainDB(paths)
		snr := channel.TxPowerDBm + g - channel.NoiseFloorDBm
		if snr < 15 {
			t.Errorf("%s: AP-relay SNR %v dB too poor for a relay deployment", sc.Name, snr)
		}
	}
}

func TestSISOChannelFromPaths(t *testing.T) {
	paths := []Path{
		{DistanceM: 3, LossDB: 50, DelayS: 10e-9},
		{DistanceM: 30, LossDB: 70, DelayS: 100e-9},
	}
	c := SISOChannel(paths, 20e6, 0)
	// 10ns -> tap 0; 100ns -> tap 2.
	if len(c.Taps) != 3 {
		t.Fatalf("taps = %d, want 3", len(c.Taps))
	}
	if cmplx.Abs(c.Taps[0]) == 0 || cmplx.Abs(c.Taps[2]) == 0 {
		t.Error("taps not populated at binned delays")
	}
	wantG := math.Pow(10, -5) + math.Pow(10, -7)
	if math.Abs(c.Gain()-wantG) > 1e-9 {
		t.Errorf("gain %v, want %v", c.Gain(), wantG)
	}
}

func TestMIMOChannelRankFollowsGeometry(t *testing.T) {
	// Two paths with well-separated angles -> rank 2; a single path -> rank 1.
	rich := []Path{
		{LossDB: 50, DelayS: 10e-9, AoDRad: 0.3, AoARad: -0.7},
		{LossDB: 51, DelayS: 15e-9, AoDRad: -1.1, AoARad: 1.2},
	}
	m := MIMOChannel(rich, 2, 2, 20e6)
	h := m.FrequencyResponse(5, 64)
	sv := h.SingularValues()
	if sv[1]/sv[0] < 0.05 {
		t.Errorf("angle-diverse paths should give usable rank 2: sv=%v", sv)
	}

	pinhole := []Path{{LossDB: 50, DelayS: 10e-9, AoDRad: 0.4, AoARad: 0.9}}
	m2 := MIMOChannel(pinhole, 2, 2, 20e6)
	h2 := m2.FrequencyResponse(5, 64)
	sv2 := h2.SingularValues()
	if sv2[1]/sv2[0] > 1e-9 {
		t.Errorf("single path must be rank one: sv=%v", sv2)
	}
}

func TestCorridorCreatesPinhole(t *testing.T) {
	// In the L-corridor scenario, a client deep in the walled room reached
	// mainly through the doorway should have a much more rank-deficient
	// channel than a line-of-sight client.
	plan := LCorridor()
	ap := LCorridorAP()
	losClient := Point{6, 1.2}  // same corridor as AP
	roomClient := Point{5, 7.0} // inside the concrete-walled room
	losPaths := plan.Trace(ap, losClient, 2)
	roomPaths := plan.Trace(ap, roomClient, 2)
	mLos := MIMOChannel(losPaths, 2, 2, 20e6)
	mRoom := MIMOChannel(roomPaths, 2, 2, 20e6)
	condLos := mLos.FrequencyResponse(3, 64).ConditionNumber()
	condRoom := mRoom.FrequencyResponse(3, 64).ConditionNumber()
	// The room client's matrix should be clearly worse conditioned.
	if condRoom < condLos {
		t.Errorf("expected corridor pinhole to degrade conditioning: LOS cond=%v room cond=%v",
			condLos, condRoom)
	}
}

func TestGrid(t *testing.T) {
	p := &Plan{Width: 10, Height: 5}
	pts := p.Grid(1, 0.5)
	if len(pts) == 0 {
		t.Fatal("no grid points")
	}
	for _, pt := range pts {
		if pt.X < 0.5 || pt.X > 9.5 || pt.Y < 0.5 || pt.Y > 4.5 {
			t.Fatalf("grid point %v outside margins", pt)
		}
	}
}

func TestPathAmplitudeGain(t *testing.T) {
	p := Path{LossDB: 60, DelayS: 33e-9}
	g := p.AmplitudeGain()
	if math.Abs(cmplx.Abs(g)-1e-3) > 1e-12 {
		t.Errorf("|gain| = %v, want 1e-3", cmplx.Abs(g))
	}
}
