package floorplan

import (
	"math"
	"math/cmplx"

	"fastforward/internal/channel"
	"fastforward/internal/rng"
)

// Physical constants.
const (
	// SpeedOfLight in meters/second.
	SpeedOfLight = 299792458.0
	// CarrierHz is the 2.45 GHz ISM carrier used throughout.
	CarrierHz = 2.45e9
	// fsplAt1m is the free-space path loss at 1 m for 2.45 GHz.
	fsplAt1m = 40.05
)

// Path is one propagation path between two points.
type Path struct {
	// DistanceM is the total geometric path length in meters.
	DistanceM float64
	// LossDB is the total path loss (free space + penetration +
	// reflection) in dB.
	LossDB float64
	// DelayS is the propagation delay in seconds.
	DelayS float64
	// AoDRad and AoARad are the departure/arrival angles (radians) for
	// array steering.
	AoDRad, AoARad float64
	// Reflections counts specular bounces (0 = direct path).
	Reflections int
}

// AmplitudeGain returns the linear amplitude gain of the path, with the
// carrier phase of its exact delay.
func (p Path) AmplitudeGain() complex128 {
	amp := math.Pow(10, -p.LossDB/20)
	phase := -2 * math.Pi * CarrierHz * p.DelayS
	return cmplx.Rect(amp, math.Mod(phase, 2*math.Pi))
}

// Plan is a floor plan: a bounding box plus interior and exterior walls.
type Plan struct {
	// Width and Height are the plan extents in meters (origin bottom-left).
	Width, Height float64
	// Walls are all wall segments.
	Walls []Wall
}

// Trace enumerates propagation paths from tx to rx with up to maxRefl
// specular reflections (0, 1 or 2). Paths weaker than minGainDB below the
// strongest are discarded.
func (pl *Plan) Trace(tx, rx Point, maxRefl int) []Path {
	var paths []Path

	direct := pl.directPath(tx, rx)
	paths = append(paths, direct)

	if maxRefl >= 1 {
		for wi := range pl.Walls {
			if p, ok := pl.firstOrderPath(tx, rx, wi); ok {
				paths = append(paths, p)
			}
		}
	}
	if maxRefl >= 2 {
		for wi := range pl.Walls {
			for wj := range pl.Walls {
				if wi == wj {
					continue
				}
				if p, ok := pl.secondOrderPath(tx, rx, wi, wj); ok {
					paths = append(paths, p)
				}
			}
		}
	}
	// Prune paths more than 40 dB below the strongest.
	best := math.Inf(1)
	for _, p := range paths {
		if p.LossDB < best {
			best = p.LossDB
		}
	}
	pruned := paths[:0]
	for _, p := range paths {
		if p.LossDB <= best+40 {
			pruned = append(pruned, p)
		}
	}
	return pruned
}

// fspl is the distance-dependent loss per path. Line-of-sight paths decay
// near free space with light clutter; obstructed paths (any wall crossed)
// additionally follow the steep exponent-4 dual-slope fit of obstructed
// indoor propagation at 2.4 GHz, representing the floor/ceiling scatter,
// furniture and people a 2-D wall model cannot see. Wall penetration and
// reflection losses are added separately by the tracer.
func fspl(d float64, obstructed bool) float64 {
	const breakpoint = 3.0
	if d < 0.3 {
		d = 0.3
	}
	loss := fsplAt1m + 20*math.Log10(d)
	if d > breakpoint {
		if obstructed {
			// Extra slope to exponent 4 plus 1.0 dB/m clutter.
			loss += 20*math.Log10(d/breakpoint) + 1.0*(d-breakpoint)
		} else {
			loss += 0.3 * (d - breakpoint)
		}
	}
	return loss
}

func (pl *Plan) directPath(tx, rx Point) Path {
	d := tx.Dist(rx)
	crossed := crossings(pl.Walls, tx, rx, nil)
	loss := fspl(d, len(crossed) > 0)
	for _, wi := range crossed {
		loss += pl.Walls[wi].Material.PenetrationLossDB
	}
	dir := rx.Sub(tx)
	return Path{
		DistanceM: d,
		LossDB:    loss,
		DelayS:    d / SpeedOfLight,
		AoDRad:    dir.Angle(),
		AoARad:    dir.Angle(),
	}
}

func (pl *Plan) firstOrderPath(tx, rx Point, wi int) (Path, bool) {
	w := pl.Walls[wi]
	img := mirror(tx, w)
	rp, ok := reflectionPoint(img, rx, w)
	if !ok {
		return Path{}, false
	}
	d := tx.Dist(rp) + rp.Dist(rx)
	skip := map[int]bool{wi: true}
	c1 := crossings(pl.Walls, tx, rp, skip)
	c2 := crossings(pl.Walls, rp, rx, skip)
	loss := fspl(d, len(c1)+len(c2) > 0) + w.Material.ReflectionLossDB
	for _, ci := range c1 {
		loss += pl.Walls[ci].Material.PenetrationLossDB
	}
	for _, ci := range c2 {
		loss += pl.Walls[ci].Material.PenetrationLossDB
	}
	return Path{
		DistanceM:   d,
		LossDB:      loss,
		DelayS:      d / SpeedOfLight,
		AoDRad:      rp.Sub(tx).Angle(),
		AoARad:      rx.Sub(rp).Angle(),
		Reflections: 1,
	}, true
}

func (pl *Plan) secondOrderPath(tx, rx Point, wi, wj int) (Path, bool) {
	w1, w2 := pl.Walls[wi], pl.Walls[wj]
	img1 := mirror(tx, w1)
	img2 := mirror(img1, w2)
	// Find reflection point on w2 (from img2 toward rx), then on w1.
	rp2, ok := reflectionPoint(img2, rx, w2)
	if !ok {
		return Path{}, false
	}
	rp1, ok := reflectionPoint(img1, rp2, w1)
	if !ok {
		return Path{}, false
	}
	d := tx.Dist(rp1) + rp1.Dist(rp2) + rp2.Dist(rx)
	skip1 := map[int]bool{wi: true}
	skipBoth := map[int]bool{wi: true, wj: true}
	skip2 := map[int]bool{wj: true}
	c1 := crossings(pl.Walls, tx, rp1, skip1)
	c2 := crossings(pl.Walls, rp1, rp2, skipBoth)
	c3 := crossings(pl.Walls, rp2, rx, skip2)
	loss := fspl(d, len(c1)+len(c2)+len(c3) > 0) +
		w1.Material.ReflectionLossDB + w2.Material.ReflectionLossDB
	for _, ci := range c1 {
		loss += pl.Walls[ci].Material.PenetrationLossDB
	}
	for _, ci := range c2 {
		loss += pl.Walls[ci].Material.PenetrationLossDB
	}
	for _, ci := range c3 {
		loss += pl.Walls[ci].Material.PenetrationLossDB
	}
	return Path{
		DistanceM:   d,
		LossDB:      loss,
		DelayS:      d / SpeedOfLight,
		AoDRad:      rp1.Sub(tx).Angle(),
		AoARad:      rx.Sub(rp2).Angle(),
		Reflections: 2,
	}, true
}

// SISOChannel converts traced paths into a tapped-delay-line channel at
// sampleRate, binning each path's delay to the nearest sample (indoor
// delays are mostly sub-sample at 20 Msps) and preserving its carrier
// phase. extraDelayS adds bulk delay (e.g. to place two hops on a common
// timeline).
func SISOChannel(paths []Path, sampleRate, extraDelayS float64) *channel.SISO {
	if len(paths) == 0 {
		return channel.NewFlat(0)
	}
	maxTap := 0
	for _, p := range paths {
		tap := int(math.Round((p.DelayS + extraDelayS) * sampleRate))
		if tap > maxTap {
			maxTap = tap
		}
	}
	taps := make([]complex128, maxTap+1)
	for _, p := range paths {
		tap := int(math.Round((p.DelayS + extraDelayS) * sampleRate))
		taps[tap] += p.AmplitudeGain()
	}
	return &channel.SISO{Taps: taps}
}

// MIMOChannel builds an nRx×nTx MIMO channel from traced paths using λ/2
// uniform linear arrays at both ends. Each path contributes a rank-one
// steering outer product; geometric angle diversity (or its absence, in a
// corridor) determines the resulting rank.
func MIMOChannel(paths []Path, nRx, nTx int, sampleRate float64) *channel.MIMO {
	return MIMOChannelDiffuse(paths, nRx, nTx, sampleRate, nil, 0)
}

// MIMOChannelDiffuse is MIMOChannel plus a diffuse (dense multipath)
// component: i.i.d. Rayleigh energy amounting to diffuseFrac of the total
// specular path power, spread over the first taps. A 2-D specular tracer
// under-represents the rich 3-D scatter (floor/ceiling, furniture) real
// 2.4 GHz channels always carry; ~3% (−15 dB) diffuse power restores the
// weak second eigen-channel observed indoors without materially changing
// link budgets. src may be nil for a purely specular channel.
func MIMOChannelDiffuse(paths []Path, nRx, nTx int, sampleRate float64, src *rng.Source, diffuseFrac float64) *channel.MIMO {
	m := channel.NewMIMO(nRx, nTx)
	maxTap := 0
	for _, p := range paths {
		tap := int(math.Round(p.DelayS * sampleRate))
		if tap > maxTap {
			maxTap = tap
		}
	}
	for r := 0; r < nRx; r++ {
		for t := 0; t < nTx; t++ {
			m.Links[r][t] = &channel.SISO{Taps: make([]complex128, maxTap+1)}
		}
	}
	var totalPow float64
	for _, p := range paths {
		tap := int(math.Round(p.DelayS * sampleRate))
		g := p.AmplitudeGain()
		totalPow += math.Pow(10, -p.LossDB/10)
		for r := 0; r < nRx; r++ {
			ar := steer(p.AoARad, r)
			for t := 0; t < nTx; t++ {
				at := steer(p.AoDRad, t)
				m.Links[r][t].Taps[tap] += g * ar * at
			}
		}
	}
	if src != nil && diffuseFrac > 0 && totalPow > 0 {
		// Spread the diffuse energy over up to the first three taps.
		nTaps := maxTap + 1
		if nTaps > 3 {
			nTaps = 3
		}
		perTap := diffuseFrac * totalPow / float64(nTaps)
		for r := 0; r < nRx; r++ {
			for t := 0; t < nTx; t++ {
				link := m.Links[r][t]
				for d := 0; d < nTaps && d < len(link.Taps); d++ {
					link.Taps[d] += src.ComplexGaussian(perTap)
				}
			}
		}
	}
	return m
}

// steer returns the phase of array element idx of a λ/2-spaced linear
// array for a wave at angle theta.
func steer(theta float64, idx int) complex128 {
	return cmplx.Exp(complex(0, -math.Pi*float64(idx)*math.Sin(theta)))
}

// GainDB returns the aggregate power gain over all paths in dB (coherent
// sum at the carrier — what a narrowband measurement would see).
func GainDB(paths []Path) float64 {
	var acc complex128
	for _, p := range paths {
		acc += p.AmplitudeGain()
	}
	g := real(acc)*real(acc) + imag(acc)*imag(acc)
	if g <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(g)
}

// AveragePowerGainDB returns the incoherent (average over small-scale
// fading) power gain: the sum of per-path powers. Less pessimistic than
// coherent summing for coverage maps.
func AveragePowerGainDB(paths []Path) float64 {
	var g float64
	for _, p := range paths {
		g += math.Pow(10, -p.LossDB/10)
	}
	if g <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(g)
}
