// Package floorplan provides a 2-D indoor propagation model: floor plans
// made of walls with material-dependent losses, image-method ray tracing
// with up to second-order specular reflections, and conversion of traced
// paths into the tapped-delay-line channels of the channel package —
// including MIMO channels built from per-path angles of departure/arrival
// and λ/2 antenna arrays, which makes corridor "pinhole" rank collapse an
// emergent geometric effect exactly as Sec 1 of the paper describes.
//
// It stands in for the commercial ray-propagation software (Remcom
// Wireless InSite) the paper used for its Fig 1/2 coverage maps.
package floorplan

import "math"

// Point is a 2-D position in meters.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the distance between two points.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Angle returns the direction of the vector in radians.
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Material describes a wall's RF properties at 2.4 GHz.
type Material struct {
	// Name is a human-readable label.
	Name string
	// PenetrationLossDB is the loss for passing through the wall.
	PenetrationLossDB float64
	// ReflectionLossDB is the loss on specular reflection.
	ReflectionLossDB float64
}

// Common materials with typical 2.4 GHz losses.
var (
	Drywall        = Material{Name: "drywall", PenetrationLossDB: 6, ReflectionLossDB: 10}
	Concrete       = Material{Name: "concrete", PenetrationLossDB: 15, ReflectionLossDB: 5}
	Brick          = Material{Name: "brick", PenetrationLossDB: 11, ReflectionLossDB: 6}
	Glass          = Material{Name: "glass", PenetrationLossDB: 2, ReflectionLossDB: 12}
	ExteriorWall   = Material{Name: "exterior", PenetrationLossDB: 15, ReflectionLossDB: 4}
	MetalPartition = Material{Name: "metal", PenetrationLossDB: 26, ReflectionLossDB: 1}
)

// Wall is a line segment with a material.
type Wall struct {
	A, B     Point
	Material Material
}

// Length returns the wall length in meters.
func (w Wall) Length() float64 { return w.A.Dist(w.B) }

// segmentIntersection finds the intersection of segments p1-p2 and q1-q2.
// It returns the parameter t along p1-p2 (0..1) and ok.
func segmentIntersection(p1, p2, q1, q2 Point) (t float64, ok bool) {
	r := p2.Sub(p1)
	s := q2.Sub(q1)
	denom := r.X*s.Y - r.Y*s.X
	if math.Abs(denom) < 1e-12 {
		return 0, false // parallel
	}
	qp := q1.Sub(p1)
	t = (qp.X*s.Y - qp.Y*s.X) / denom
	u := (qp.X*r.Y - qp.Y*r.X) / denom
	const eps = 1e-9
	if t < eps || t > 1-eps || u < -eps || u > 1+eps {
		return 0, false
	}
	return t, true
}

// crossings returns the walls crossed by the open segment a-b, excluding
// any wall in the skip set (reflecting walls are not "penetrated" at their
// own reflection point).
func crossings(walls []Wall, a, b Point, skip map[int]bool) []int {
	var out []int
	for i, w := range walls {
		if skip != nil && skip[i] {
			continue
		}
		if _, ok := segmentIntersection(a, b, w.A, w.B); ok {
			out = append(out, i)
		}
	}
	return out
}

// mirror reflects point p across the infinite line through wall w.
func mirror(p Point, w Wall) Point {
	d := w.B.Sub(w.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return p
	}
	t := p.Sub(w.A).Dot(d) / n2
	proj := w.A.Add(d.Scale(t))
	return proj.Add(proj.Sub(p))
}

// reflectionPoint finds where the ray from src (mirrored) to dst crosses
// wall w, returning the point and ok.
func reflectionPoint(img, dst Point, w Wall) (Point, bool) {
	t, ok := segmentIntersection(img, dst, w.A, w.B)
	if !ok {
		return Point{}, false
	}
	dir := dst.Sub(img)
	return img.Add(dir.Scale(t)), true
}
