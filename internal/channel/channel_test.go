package channel

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

func TestFlatChannel(t *testing.T) {
	c := NewFlat(0.5i)
	x := []complex128{1, 2, 3}
	y := c.Apply(x)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]*0.5i) > 1e-12 {
			t.Fatalf("flat channel wrong at %d", i)
		}
	}
	if math.Abs(c.Gain()-0.25) > 1e-12 {
		t.Errorf("gain %v, want 0.25", c.Gain())
	}
	if math.Abs(c.GainDB()-(-6.0206)) > 1e-3 {
		t.Errorf("gainDB %v", c.GainDB())
	}
}

func TestRayleighNormalization(t *testing.T) {
	src := rng.New(1)
	var g float64
	const n = 2000
	for i := 0; i < n; i++ {
		g += NewRayleigh(src, 6, 0.5, 2.0).Gain()
	}
	g /= n
	if math.Abs(g-2.0) > 0.15 {
		t.Errorf("average Rayleigh gain %v, want 2.0", g)
	}
}

func TestFrequencyResponseMatchesApply(t *testing.T) {
	// Passing a subcarrier tone through the channel must multiply it by the
	// frequency response.
	src := rng.New(2)
	c := NewRayleigh(src, 5, 0.6, 1)
	const nfft = 64
	k := 7
	n := 256
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(i)/nfft))
	}
	y := c.Apply(tone)
	h := c.FrequencyResponse(k, nfft)
	// Skip the filter transient.
	for i := 20; i < n; i++ {
		if cmplx.Abs(y[i]-tone[i]*h) > 1e-9 {
			t.Fatalf("response mismatch at %d: %v vs %v", i, y[i], tone[i]*h)
		}
	}
}

func TestBulkDelayPhaseRamp(t *testing.T) {
	c := &SISO{Taps: []complex128{1}, Delay: 3}
	const nfft = 64
	for _, k := range []int{-10, 1, 20} {
		h := c.FrequencyResponse(k, nfft)
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*3/nfft))
		if cmplx.Abs(h-want) > 1e-12 {
			t.Errorf("k=%d: %v want %v", k, h, want)
		}
	}
}

func TestMaxDelay(t *testing.T) {
	c := &SISO{Taps: []complex128{1, 0, 0, 0.2}, Delay: 5}
	if d := c.MaxDelay(); d != 8 {
		t.Errorf("MaxDelay = %d, want 8", d)
	}
}

func TestPathLoss(t *testing.T) {
	// Free space at 1m, 2.45 GHz is ~40 dB.
	if pl := PathLossDB(1, 2); math.Abs(pl-40.05) > 0.01 {
		t.Errorf("PL(1m) = %v", pl)
	}
	// Doubling distance with exponent 2 adds ~6 dB.
	d := PathLossDB(20, 2) - PathLossDB(10, 2)
	if math.Abs(d-6.02) > 0.01 {
		t.Errorf("doubling delta = %v, want ~6", d)
	}
	// Monotone in exponent.
	if PathLossDB(10, 3) <= PathLossDB(10, 2) {
		t.Error("higher exponent must lose more")
	}
	// Clamp below 0.1 m.
	if PathLossDB(0, 2) != PathLossDB(0.1, 2) {
		t.Error("distance clamp missing")
	}
}

func TestNoiseFloor(t *testing.T) {
	// -90 dBm = 1e-12 W = 1e-9 mW.
	if nf := NoiseFloorMW(); math.Abs(nf-1e-9) > 1e-15 {
		t.Errorf("noise floor %v mW", nf)
	}
}

func TestAWGNPower(t *testing.T) {
	src := rng.New(3)
	x := make([]complex128, 100000)
	y := AWGN(src, x, 0.25)
	if p := dsp.Power(y); math.Abs(p-0.25) > 0.01 {
		t.Errorf("noise power %v, want 0.25", p)
	}
}

func TestMIMOShape(t *testing.T) {
	m := NewMIMO(2, 3)
	if m.NRx() != 2 || m.NTx() != 3 {
		t.Fatal("shape wrong")
	}
	h := m.FrequencyResponse(5, 64)
	if h.Rows != 2 || h.Cols != 3 {
		t.Fatal("response shape wrong")
	}
	// Flat unit links: all entries 1.
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if cmplx.Abs(h.At(i, j)-1) > 1e-12 {
				t.Fatal("unit channel response wrong")
			}
		}
	}
}

func TestRichScatteringFullRank(t *testing.T) {
	src := rng.New(4)
	fullRank := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		m := NewRichScattering(src, 2, 2, 3, 0.5, 1)
		h := m.FrequencyResponse(10, 64)
		if h.Rank(1e-6) == 2 {
			fullRank++
		}
	}
	if fullRank < trials-1 {
		t.Errorf("rich scattering full rank in %d/%d trials", fullRank, trials)
	}
}

func TestPinholeRankOne(t *testing.T) {
	src := rng.New(5)
	for i := 0; i < 20; i++ {
		m := NewPinhole(src, 2, 2, 4, 0.5, 1)
		for _, k := range []int{-20, 1, 15} {
			h := m.FrequencyResponse(k, 64)
			sv := h.SingularValues()
			if sv[0] > 0 && sv[1]/sv[0] > 1e-9 {
				t.Fatalf("pinhole channel is not rank one at subcarrier %d: sv=%v", k, sv)
			}
		}
	}
}

func TestPinholeGainNormalization(t *testing.T) {
	src := rng.New(6)
	var g float64
	const n = 500
	for i := 0; i < n; i++ {
		g += NewPinhole(src, 2, 2, 3, 0.5, 0.7).AverageGain()
	}
	g /= n
	if math.Abs(g-0.7) > 0.1 {
		t.Errorf("pinhole average link gain %v, want 0.7", g)
	}
}

func TestMIMOApplySuperposition(t *testing.T) {
	src := rng.New(7)
	m := NewRichScattering(src, 2, 2, 3, 0.5, 1)
	x1 := src.NoiseVector(50, 1)
	x2 := src.NoiseVector(50, 1)
	zero := make([]complex128, 50)
	both := m.Apply([][]complex128{x1, x2})
	only1 := m.Apply([][]complex128{x1, zero})
	only2 := m.Apply([][]complex128{zero, x2})
	for r := 0; r < 2; r++ {
		sum := dsp.Add(only1[r], only2[r])
		for i := range sum {
			if cmplx.Abs(both[r][i]-sum[i]) > 1e-9 {
				t.Fatalf("superposition violated at rx %d sample %d", r, i)
			}
		}
	}
}

func TestReciprocal(t *testing.T) {
	src := rng.New(8)
	m := NewRichScattering(src, 2, 3, 4, 0.5, 1)
	r := m.Reciprocal()
	if r.NRx() != 3 || r.NTx() != 2 {
		t.Fatal("reciprocal shape wrong")
	}
	h := m.FrequencyResponse(9, 64)
	g := r.FrequencyResponse(9, 64)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if cmplx.Abs(h.At(i, j)-g.At(j, i)) > 1e-12 {
				t.Fatal("reciprocal is not the transpose")
			}
		}
	}
}

func TestScale(t *testing.T) {
	c := NewFlat(1)
	c.Scale(0.1)
	if math.Abs(c.GainDB()-(-20)) > 1e-9 {
		t.Errorf("scaled gain %v dB, want -20", c.GainDB())
	}
	m := NewMIMO(2, 2)
	m.Scale(0.5)
	if math.Abs(m.AverageGain()-0.25) > 1e-12 {
		t.Errorf("MIMO scaled gain %v", m.AverageGain())
	}
}

func TestQuickFrequencyResponseLinearInTaps(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		a := NewRayleigh(src, 4, 0.5, 1)
		b := NewRayleigh(src, 4, 0.5, 1)
		sum := &SISO{Taps: dsp.Add(a.Taps, b.Taps)}
		for _, k := range []int{-5, 3, 17} {
			lhs := sum.FrequencyResponse(k, 64)
			rhs := a.FrequencyResponse(k, 64) + b.FrequencyResponse(k, 64)
			if cmplx.Abs(lhs-rhs) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
