package channel

import (
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/impair"
	"fastforward/internal/rng"
)

// An ideal Front must be exactly Apply+AWGN — same samples bit for bit —
// so threading the receive chain through Front never perturbs existing
// results when impairments are off.
func TestFrontIdealMatchesApplyAWGN(t *testing.T) {
	ch := NewRayleigh(rng.New(1), 4, 0.5, 1)
	x := rng.New(2).NoiseVector(256, 1)

	f := &Front{Channel: ch, SampleRate: 20e6, NoiseMW: 1e-3, NoiseSrc: rng.New(3)}
	got := f.Receive(x)
	want := AWGN(rng.New(3), ch.Apply(x), 1e-3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: Front %v != Apply+AWGN %v", i, got[i], want[i])
		}
	}
}

func TestFrontImpairedDeterministicAndDistorting(t *testing.T) {
	p, _ := impair.ByName("severe")
	ch := NewFlat(1)
	x := rng.New(2).NoiseVector(512, 1)
	mk := func() *Front {
		return &Front{
			Channel: ch, Profile: &p, SampleRate: 20e6,
			ImpairSrc: impair.Source(7, 0),
		}
	}
	a := mk().Receive(x)
	b := mk().Receive(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d not deterministic", i)
		}
	}
	// The impaired output must actually deviate from the clean one.
	if evm := dsp.Power(dsp.Sub(a, x)) / dsp.Power(x); evm < 1e-5 {
		t.Errorf("severe profile produced EVM² %v — impairments not applied?", evm)
	}
	// And the noise stream must not shift when impairments toggle: with a
	// shared NoiseSrc seed, ideal vs impaired Fronts draw identical noise.
	na := &Front{Channel: ch, NoiseMW: 1e-3, NoiseSrc: rng.New(9), SampleRate: 20e6}
	nb := &Front{Channel: ch, Profile: &p, NoiseMW: 1e-3, NoiseSrc: rng.New(9),
		ImpairSrc: impair.Source(7, 0), SampleRate: 20e6}
	na.Receive(x)
	nb.Receive(x)
	// The outputs differ (impairments distort), but both chains must have
	// consumed identical noise draws: the next variate from each NoiseSrc
	// is the same.
	if na.NoiseSrc.Float64() != nb.NoiseSrc.Float64() {
		t.Error("impairment toggle shifted the noise stream")
	}
}
