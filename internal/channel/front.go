package channel

import (
	"fastforward/internal/impair"
	"fastforward/internal/rng"
)

// Front is a receive chain: propagation through a SISO channel, additive
// noise at the configured floor, then the hardware front-end impairments
// of a Profile (CFO, phase noise, IQ imbalance, ADC quantization). It is
// the composition every over-the-air hop in the simulator performs, made
// explicit so impairment injection threads through one place.
//
// A nil Profile (or the zero profile) reduces Front to Apply+AWGN exactly:
// the impairment stage is the identity and consumes no randomness from
// Src beyond the noise draw, so enabling impairments never shifts the
// noise stream.
type Front struct {
	// Channel is the propagation path. Nil means an identity channel.
	Channel *SISO
	// Profile is the receive front-end's impairment profile; nil = ideal.
	Profile *impair.Profile
	// SampleRate is the ADC rate, needed to realize CFO rotation.
	SampleRate float64
	// NoiseMW is the additive noise power; 0 adds no noise (useful in
	// tests that want impairments in isolation).
	NoiseMW float64
	// NoiseSrc draws the thermal noise.
	NoiseSrc *rng.Source
	// ImpairSrc draws the impairment randomness (phase-noise walk). Kept
	// separate from NoiseSrc so toggling impairments is stream-stable.
	ImpairSrc *rng.Source
}

// Receive passes x through the chain and returns the impaired baseband
// stream as a new slice (x is untouched).
func (f *Front) Receive(x []complex128) []complex128 {
	y := x
	if f.Channel != nil {
		y = f.Channel.Apply(y)
	}
	if f.NoiseMW > 0 && f.NoiseSrc != nil {
		y = AWGN(f.NoiseSrc, y, f.NoiseMW)
	}
	if f.Profile != nil && !f.Profile.IsZero() {
		y = f.Profile.ApplyWaveform(f.ImpairSrc, y, f.SampleRate)
	}
	return y
}
