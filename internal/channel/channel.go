// Package channel models the wireless propagation substrate of the
// FastForward evaluation: sample-spaced tapped-delay-line multipath
// channels, log-distance path loss with shadowing, additive white Gaussian
// noise at a configurable noise floor, and MIMO channel synthesis including
// the rank-deficient "RF pinhole" channels (Sec 1) that motivate the paper.
//
// Power convention: waveform sample power is measured in milliwatts, so a
// unit-power waveform is 0 dBm, the paper's 20 dBm transmit power is a mean
// sample power of 100, and the −90 dBm noise floor is 1e−9.
package channel

import (
	"math"
	"math/cmplx"

	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/rng"
)

// Standard power constants from the paper's prototype (Sec 3.3).
const (
	// TxPowerDBm is the maximum transmit power.
	TxPowerDBm = 20.0
	// NoiseFloorDBm is the receiver noise floor.
	NoiseFloorDBm = -90.0
)

// SISO is a linear time-invariant single-antenna channel: a tapped delay
// line at sample spacing, plus an optional whole-sample bulk delay.
type SISO struct {
	// Taps is the channel impulse response at sample spacing; Taps[0]
	// multiplies the current sample.
	Taps []complex128
	// Delay is an extra bulk delay in whole samples (propagation distance).
	Delay int
}

// NewFlat returns a single-tap channel with complex gain g.
func NewFlat(g complex128) *SISO {
	return &SISO{Taps: []complex128{g}}
}

// NewRayleigh returns a Rayleigh-fading channel with nTaps taps following
// an exponential power-delay profile with the given decay (power ratio
// between successive taps, e.g. 0.5), normalized to total average power
// gainLin.
func NewRayleigh(src *rng.Source, nTaps int, decay, gainLin float64) *SISO {
	if nTaps < 1 {
		nTaps = 1
	}
	prof := make([]float64, nTaps)
	sum := 0.0
	p := 1.0
	for i := range prof {
		prof[i] = p
		sum += p
		p *= decay
	}
	taps := make([]complex128, nTaps)
	for i := range taps {
		taps[i] = src.RayleighTap(prof[i] / sum * gainLin)
	}
	return &SISO{Taps: taps}
}

// Apply convolves x with the channel (same-length output) and applies the
// bulk delay. No noise is added.
func (c *SISO) Apply(x []complex128) []complex128 {
	y := dsp.FilterSame(x, c.Taps)
	if c.Delay != 0 {
		y = dsp.Delay(y, c.Delay)
	}
	return y
}

// Gain returns the total average power gain sum |tap|².
func (c *SISO) Gain() float64 {
	var g float64
	for _, t := range c.Taps {
		g += real(t)*real(t) + imag(t)*imag(t)
	}
	return g
}

// GainDB returns the channel power gain in dB (negative for attenuation).
func (c *SISO) GainDB() float64 { return dsp.DB(c.Gain()) }

// FrequencyResponse returns the channel gain at logical subcarrier k of an
// nfft-point OFDM system, including the bulk delay's phase ramp.
func (c *SISO) FrequencyResponse(k, nfft int) complex128 {
	f := float64(k) / float64(nfft)
	var acc complex128
	for d, tap := range c.Taps {
		acc += tap * cmplx.Exp(complex(0, -2*math.Pi*f*float64(d+c.Delay)))
	}
	return acc
}

// ResponseVector returns FrequencyResponse over a set of subcarriers.
func (c *SISO) ResponseVector(carriers []int, nfft int) []complex128 {
	out := make([]complex128, len(carriers))
	for i, k := range carriers {
		out[i] = c.FrequencyResponse(k, nfft)
	}
	return out
}

// Scale multiplies all taps by the real amplitude factor a and returns the
// channel for chaining.
func (c *SISO) Scale(a float64) *SISO {
	for i := range c.Taps {
		c.Taps[i] *= complex(a, 0)
	}
	return c
}

// MaxDelay returns the index of the last significant tap plus the bulk
// delay: the channel's delay spread in samples.
func (c *SISO) MaxDelay() int {
	last := 0
	for i, t := range c.Taps {
		if cmplx.Abs(t) > 1e-12 {
			last = i
		}
	}
	return last + c.Delay
}

// AWGN adds complex Gaussian noise with the given average power (mW) to x
// and returns a new slice (x is not modified). The signal adds into the
// freshly drawn noise vector — bit-identical to summing the other way,
// one allocation instead of two.
func AWGN(src *rng.Source, x []complex128, noisePowerMW float64) []complex128 {
	n := src.NoiseVector(len(x), noisePowerMW)
	dsp.AddInPlace(n, x)
	return n
}

// NoiseFloorMW returns the standard noise floor in mW.
func NoiseFloorMW() float64 { return dsp.WattsFromDBm(NoiseFloorDBm) * 1000 }

// PathLossDB computes the log-distance path loss in dB at distance d
// meters: free-space loss at the reference meter for 2.45 GHz (40.05 dB)
// plus 10·exp·log10(d). Indoor WiFi typically uses exp ≈ 3 through walls
// and 2 for line of sight.
func PathLossDB(d, exp float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	const pl0 = 40.05 // free space at 1 m, 2.45 GHz
	return pl0 + 10*exp*math.Log10(d)
}

// MIMO is a matrix of SISO channels: Links[r][t] connects transmit antenna
// t to receive antenna r.
type MIMO struct {
	Links [][]*SISO
}

// NewMIMO allocates an nRx×nTx MIMO channel with flat unit links.
func NewMIMO(nRx, nTx int) *MIMO {
	m := &MIMO{Links: make([][]*SISO, nRx)}
	for r := range m.Links {
		m.Links[r] = make([]*SISO, nTx)
		for t := range m.Links[r] {
			m.Links[r][t] = NewFlat(1)
		}
	}
	return m
}

// NRx returns the number of receive antennas.
func (m *MIMO) NRx() int { return len(m.Links) }

// NTx returns the number of transmit antennas.
func (m *MIMO) NTx() int {
	if len(m.Links) == 0 {
		return 0
	}
	return len(m.Links[0])
}

// NewRichScattering returns an i.i.d. Rayleigh MIMO channel (full rank with
// probability 1) with per-link multipath and total per-link average power
// gainLin.
func NewRichScattering(src *rng.Source, nRx, nTx, nTaps int, decay, gainLin float64) *MIMO {
	m := &MIMO{Links: make([][]*SISO, nRx)}
	for r := 0; r < nRx; r++ {
		m.Links[r] = make([]*SISO, nTx)
		for t := 0; t < nTx; t++ {
			m.Links[r][t] = NewRayleigh(src, nTaps, decay, gainLin)
		}
	}
	return m
}

// NewPinhole returns a keyhole/pinhole MIMO channel: every Tx-Rx antenna
// pair propagates through the same single path (a corridor, door or
// window — Sec 1), making the channel matrix the rank-one outer product
// a·bᵀ at every frequency. gainLin is the average power gain per link.
func NewPinhole(src *rng.Source, nRx, nTx, nTaps int, decay, gainLin float64) *MIMO {
	// Shared propagation path.
	shared := NewRayleigh(src, nTaps, decay, 1)
	// Antenna coupling vectors (unit-magnitude phases, as from closely
	// spaced antennas seeing the same path at different phase offsets).
	a := make([]complex128, nRx)
	for i := range a {
		a[i] = src.UniformPhase()
	}
	b := make([]complex128, nTx)
	for i := range b {
		b[i] = src.UniformPhase()
	}
	amp := complex(math.Sqrt(gainLin), 0)
	m := &MIMO{Links: make([][]*SISO, nRx)}
	for r := 0; r < nRx; r++ {
		m.Links[r] = make([]*SISO, nTx)
		for t := 0; t < nTx; t++ {
			taps := make([]complex128, len(shared.Taps))
			coup := a[r] * b[t] * amp
			for d, tap := range shared.Taps {
				taps[d] = tap * coup
			}
			m.Links[r][t] = &SISO{Taps: taps}
		}
	}
	return m
}

// Apply passes per-antenna transmit streams through the channel, returning
// per-receive-antenna streams (no noise). All streams must share a length.
func (m *MIMO) Apply(tx [][]complex128) [][]complex128 {
	if len(tx) != m.NTx() {
		panic("channel: MIMO Apply stream count mismatch")
	}
	var n int
	for _, s := range tx {
		if n == 0 {
			n = len(s)
		} else if len(s) != n {
			panic("channel: MIMO Apply stream length mismatch")
		}
	}
	out := make([][]complex128, m.NRx())
	for r := 0; r < m.NRx(); r++ {
		acc := make([]complex128, n)
		for t := 0; t < m.NTx(); t++ {
			dsp.AddInPlace(acc, m.Links[r][t].Apply(tx[t]))
		}
		out[r] = acc
	}
	return out
}

// FrequencyResponse returns the nRx×nTx channel matrix at logical
// subcarrier k of an nfft-point system.
func (m *MIMO) FrequencyResponse(k, nfft int) *linalg.Matrix {
	h := linalg.NewMatrix(m.NRx(), m.NTx())
	for r := 0; r < m.NRx(); r++ {
		for t := 0; t < m.NTx(); t++ {
			h.Set(r, t, m.Links[r][t].FrequencyResponse(k, nfft))
		}
	}
	return h
}

// AverageGain returns the mean per-link power gain.
func (m *MIMO) AverageGain() float64 {
	var g float64
	n := 0
	for _, row := range m.Links {
		for _, l := range row {
			g += l.Gain()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return g / float64(n)
}

// Scale multiplies every link by amplitude a and returns m.
func (m *MIMO) Scale(a float64) *MIMO {
	for _, row := range m.Links {
		for _, l := range row {
			l.Scale(a)
		}
	}
	return m
}

// Reciprocal returns the reverse-direction channel (transpose of the link
// matrix, same taps), per the reciprocity the paper exploits in Sec 4.2 to
// reuse downlink CNF filters on the uplink.
func (m *MIMO) Reciprocal() *MIMO {
	r := &MIMO{Links: make([][]*SISO, m.NTx())}
	for t := 0; t < m.NTx(); t++ {
		r.Links[t] = make([]*SISO, m.NRx())
		for rr := 0; rr < m.NRx(); rr++ {
			src := m.Links[rr][t]
			taps := make([]complex128, len(src.Taps))
			copy(taps, src.Taps)
			r.Links[t][rr] = &SISO{Taps: taps, Delay: src.Delay}
		}
	}
	return r
}
