// Package phyrate turns effective channels into the paper's evaluation
// metric: PHY-layer throughput, "the optimal bitrate that can be used at
// any location given the SNR and the MIMO rank" (Sec 5). It selects the
// best MCS and spatial-stream count per link, handling the colored noise a
// relay adds (amplified relay noise arrives through the relay→destination
// channel) by noise whitening.
package phyrate

import (
	"math"

	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/ofdm"
	"fastforward/internal/wifi"
)

// SISORateMbps returns the PHY throughput of a SISO link given
// per-subcarrier effective channel gains, transmit power and a flat noise
// plus an optional per-subcarrier extra noise term (relay noise).
func SISORateMbps(p *ofdm.Params, heff []complex128, txPowerMW, noiseMW float64, extraNoiseMW []float64) float64 {
	if len(heff) == 0 {
		return 0
	}
	var acc float64
	for i, h := range heff {
		n := noiseMW
		if extraNoiseMW != nil {
			n += extraNoiseMW[i]
		}
		if n <= 0 {
			continue
		}
		g := real(h)*real(h) + imag(h)*imag(h)
		acc += g * txPowerMW / n
	}
	snr := dsp.DB(acc / float64(len(heff)))
	return wifi.MaxSupportedRateMbps(p, snr, 1)
}

// NoiseCovariance returns the destination noise covariance for a relayed
// MIMO link: n0·I + nr·(Hrd·FA)(Hrd·FA)ᴴ, where Hrd·FA carries the
// relay's own receiver noise to the destination.
func NoiseCovariance(HrdFA *linalg.Matrix, n0, nr float64) *linalg.Matrix {
	n := HrdFA.Rows
	cov := linalg.Identity(n).Scale(n0)
	if nr > 0 {
		cov = cov.Add(HrdFA.Mul(HrdFA.Adjoint()).Scale(nr))
	}
	return cov
}

// whiten returns N^(-1/2)·H for a Hermitian positive-definite noise
// covariance N, computed via Cholesky-free inverse square root: for the
// 2×2 (or small) matrices here we use the eigendecomposition implied by
// the SVD of the Hermitian matrix.
func whiten(H, N *linalg.Matrix) *linalg.Matrix {
	inv, err := invSqrt(N)
	if err != nil {
		return H
	}
	return inv.Mul(H)
}

// invSqrt computes N^(-1/2) for Hermitian positive-definite N via
// Denman-Beavers iteration on N (sqrt), then inversion. Matrices are tiny
// (antenna count), so the iteration cost is negligible.
func invSqrt(N *linalg.Matrix) (*linalg.Matrix, error) {
	y := N.Clone()
	z := linalg.Identity(N.Rows)
	for iter := 0; iter < 60; iter++ {
		yInv, err := y.Inverse()
		if err != nil {
			return nil, err
		}
		zInv, err := z.Inverse()
		if err != nil {
			return nil, err
		}
		yNext := y.Add(zInv).Scale(0.5)
		zNext := z.Add(yInv).Scale(0.5)
		dy := yNext.Sub(y).FrobeniusNorm()
		y, z = yNext, zNext
		if dy < 1e-14*y.FrobeniusNorm() {
			break
		}
	}
	// y ≈ sqrt(N), z ≈ N^(-1/2).
	return z, nil
}

// MIMORate reports the best rate and stream count for a MIMO link.
type MIMORate struct {
	// RateMbps is the PHY throughput at the best configuration.
	RateMbps float64
	// Streams is the spatial stream count achieving it.
	Streams int
	// UsableStreams counts the streams whose SNR clears the lowest MCS
	// when transmit power is split across all antennas — the "number of
	// MIMO spatial streams possible" of the paper's Fig 2.
	UsableStreams int
	// PerStreamSNRdB holds the post-whitening per-stream SNRs of the best
	// configuration.
	PerStreamSNRdB []float64
}

// MIMORateMbps evaluates a MIMO link: Heff is the per-subcarrier effective
// channel (destination antennas × source antennas), noiseCov the
// per-subcarrier destination noise covariance (nil for white noise of
// power n0). Transmit power txPowerMW is split evenly across streams. The
// function tries every stream count and picks the best sum rate, mapping
// per-stream SNR through the MCS table.
func MIMORateMbps(p *ofdm.Params, Heff []*linalg.Matrix, noiseCov []*linalg.Matrix, txPowerMW, n0 float64) MIMORate {
	if len(Heff) == 0 {
		return MIMORate{}
	}
	nRx := Heff[0].Rows
	nTx := Heff[0].Cols
	maxStreams := nRx
	if nTx < maxStreams {
		maxStreams = nTx
	}
	// Accumulate per-stream SNR (linear) across subcarriers using the
	// singular values of the whitened channel.
	acc := make([]float64, maxStreams)
	for i, H := range Heff {
		W := H
		if noiseCov != nil {
			W = whiten(H, noiseCov[i])
		} else {
			W = H.Scale(1 / math.Sqrt(n0))
		}
		sv := W.SingularValues()
		for s := 0; s < maxStreams && s < len(sv); s++ {
			acc[s] += sv[s] * sv[s]
		}
	}
	for s := range acc {
		acc[s] /= float64(len(Heff))
	}
	best := MIMORate{}
	// Streams "possible": power split across the full antenna count, count
	// eigen-channels clearing the lowest MCS sensitivity.
	mcs0 := wifi.MCSList()[0].MinSNRdB
	for s := 0; s < maxStreams; s++ {
		if dsp.DB(acc[s]*txPowerMW/float64(maxStreams)) >= mcs0 {
			best.UsableStreams++
		}
	}
	for ns := 1; ns <= maxStreams; ns++ {
		perStream := txPowerMW / float64(ns)
		var total float64
		snrs := make([]float64, ns)
		ok := true
		for s := 0; s < ns; s++ {
			snr := dsp.DB(acc[s] * perStream)
			snrs[s] = snr
			r := wifi.MaxSupportedRateMbps(p, snr, 1)
			if r == 0 && s == 0 {
				ok = false
				break
			}
			total += r
		}
		if !ok {
			continue
		}
		if total > best.RateMbps {
			best.RateMbps = total
			best.Streams = ns
			best.PerStreamSNRdB = snrs
		}
	}
	return best
}

// ClientClass buckets clients the way Fig 15 does.
type ClientClass int

// The three Fig 15 categories.
const (
	// LowSNRLowRank: edge of coverage, both SNR and rank poor (Fig 15a).
	LowSNRLowRank ClientClass = iota
	// MediumSNRLowRank: pinhole-limited clients (Fig 15b).
	MediumSNRLowRank
	// HighSNRHighRank: near the AP with rich scattering (Fig 15c).
	HighSNRHighRank
)

// String names the class.
func (c ClientClass) String() string {
	switch c {
	case LowSNRLowRank:
		return "low-SNR/low-rank"
	case MediumSNRLowRank:
		return "medium-SNR/low-rank"
	case HighSNRHighRank:
		return "high-SNR/high-rank"
	}
	return "unknown"
}

// Classify buckets a client from its AP-only link: SNR of the strongest
// stream and number of usable streams.
func Classify(topStreamSNRdB float64, usableStreams int) ClientClass {
	const goodSNR = 15.0
	if topStreamSNRdB < goodSNR && usableStreams <= 1 {
		return LowSNRLowRank
	}
	if usableStreams <= 1 {
		return MediumSNRLowRank
	}
	if topStreamSNRdB >= goodSNR {
		return HighSNRHighRank
	}
	return LowSNRLowRank
}

// RelativeGain returns a/b guarding against zero baselines; the paper's
// relative-throughput metric uses the half-duplex case as baseline
// (Sec 5) precisely because AP-only has zero-throughput dead spots.
func RelativeGain(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
