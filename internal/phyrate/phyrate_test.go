package phyrate

import (
	"math"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/linalg"
	"fastforward/internal/ofdm"
	"fastforward/internal/rng"
	"fastforward/internal/wifi"
)

func TestSISORateMatchesMCSTable(t *testing.T) {
	p := ofdm.Default20MHz()
	// Flat channel with known SNR.
	n := p.NumData()
	heff := make([]complex128, n)
	for i := range heff {
		heff[i] = 1e-4 // -80 dB gain
	}
	// 20 dBm TX, -90 dBm floor: SNR = 20 - 80 + 90 = 30 dB -> MCS8.
	rate := SISORateMbps(p, heff, 100, 1e-9, nil)
	want := wifi.MaxSupportedRateMbps(p, 30, 1)
	if math.Abs(rate-want) > 1e-9 {
		t.Errorf("rate %v, want %v", rate, want)
	}
	if rate == 0 {
		t.Fatal("expected nonzero rate at 30 dB")
	}
}

func TestSISORateExtraNoise(t *testing.T) {
	p := ofdm.Default20MHz()
	n := p.NumData()
	heff := make([]complex128, n)
	extra := make([]float64, n)
	for i := range heff {
		heff[i] = 1e-4
		extra[i] = 9e-9 // 10x the floor
	}
	with := SISORateMbps(p, heff, 100, 1e-9, extra)
	without := SISORateMbps(p, heff, 100, 1e-9, nil)
	if with >= without {
		t.Errorf("extra noise did not reduce rate: %v vs %v", with, without)
	}
}

func TestSISORateDeadLink(t *testing.T) {
	p := ofdm.Default20MHz()
	heff := make([]complex128, p.NumData()) // all zero
	if rate := SISORateMbps(p, heff, 100, 1e-9, nil); rate != 0 {
		t.Errorf("dead link rate %v, want 0", rate)
	}
}

func flatMIMO(g complex128, n int) []*linalg.Matrix {
	out := make([]*linalg.Matrix, n)
	for i := range out {
		m := linalg.NewMatrix(2, 2)
		m.Set(0, 0, g)
		m.Set(1, 1, g)
		out[i] = m
	}
	return out
}

func TestMIMORateTwoStreams(t *testing.T) {
	p := ofdm.Default20MHz()
	// Orthogonal 2x2 channel at high SNR: two streams win.
	heff := flatMIMO(1e-3, 8) // -60 dB per stream
	res := MIMORateMbps(p, heff, nil, 100, 1e-9)
	if res.Streams != 2 {
		t.Errorf("streams = %d, want 2 (per-stream SNRs %v)", res.Streams, res.PerStreamSNRdB)
	}
	// Per-stream SNR: 17 dBm per stream, -60 dB, -90 floor -> 47 dB.
	if math.Abs(res.PerStreamSNRdB[0]-47) > 0.5 {
		t.Errorf("per-stream SNR %v, want ~47", res.PerStreamSNRdB[0])
	}
}

func TestMIMORateRankOneFallsBackToOneStream(t *testing.T) {
	p := ofdm.Default20MHz()
	// Rank-one channel: second stream has zero SNR.
	heff := make([]*linalg.Matrix, 8)
	for i := range heff {
		m := linalg.NewMatrix(2, 2)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				m.Set(r, c, 5e-4) // all-ones structure: rank 1
			}
		}
		heff[i] = m
	}
	res := MIMORateMbps(p, heff, nil, 100, 1e-9)
	if res.Streams != 1 {
		t.Errorf("rank-one channel used %d streams", res.Streams)
	}
}

func TestMIMORateLowSNRZero(t *testing.T) {
	p := ofdm.Default20MHz()
	heff := flatMIMO(1e-6, 4) // -120 dB: below sensitivity
	res := MIMORateMbps(p, heff, nil, 100, 1e-9)
	if res.RateMbps != 0 {
		t.Errorf("below-sensitivity rate %v", res.RateMbps)
	}
}

func TestNoiseCovarianceWhitening(t *testing.T) {
	// Relay noise through a strong Hrd·FA must reduce the achievable rate
	// versus white noise only.
	p := ofdm.Default20MHz()
	src := rng.New(1)
	heff := make([]*linalg.Matrix, 8)
	cov := make([]*linalg.Matrix, 8)
	for i := range heff {
		m := linalg.NewMatrix(2, 2)
		for j := range m.Data {
			m.Data[j] = src.ComplexGaussian(1e-8)
		}
		heff[i] = m
		hrdfa := linalg.NewMatrix(2, 2)
		for j := range hrdfa.Data {
			// Strong relay path: its amplified noise dominates the floor.
			hrdfa.Data[j] = src.ComplexGaussian(10)
		}
		cov[i] = NoiseCovariance(hrdfa, 1e-9, 1e-9)
	}
	withRelayNoise := MIMORateMbps(p, heff, cov, 100, 1e-9)
	whiteOnly := MIMORateMbps(p, heff, nil, 100, 1e-9)
	if withRelayNoise.RateMbps >= whiteOnly.RateMbps {
		t.Errorf("colored relay noise should reduce rate: %v vs %v",
			withRelayNoise.RateMbps, whiteOnly.RateMbps)
	}
}

func TestInvSqrt(t *testing.T) {
	// N^(-1/2)·N·N^(-1/2) = I.
	n := linalg.FromRows([][]complex128{
		{complex(4, 0), complex(1, 0.5)},
		{complex(1, -0.5), complex(3, 0)},
	})
	inv, err := invSqrt(n)
	if err != nil {
		t.Fatal(err)
	}
	prod := inv.Mul(n).Mul(inv)
	id := linalg.Identity(2)
	if prod.Sub(id).FrobeniusNorm() > 1e-9 {
		t.Errorf("invSqrt wrong:\n%v", prod)
	}
}

func TestClassify(t *testing.T) {
	if got := Classify(5, 1); got != LowSNRLowRank {
		t.Errorf("edge client -> %v", got)
	}
	if got := Classify(20, 1); got != MediumSNRLowRank {
		t.Errorf("pinhole client -> %v", got)
	}
	if got := Classify(30, 2); got != HighSNRHighRank {
		t.Errorf("near client -> %v", got)
	}
	if got := Classify(5, 2); got != LowSNRLowRank {
		t.Errorf("weak but rich -> %v", got)
	}
}

func TestRelativeGain(t *testing.T) {
	if RelativeGain(30, 10) != 3 {
		t.Error("3x gain wrong")
	}
	if RelativeGain(0, 0) != 1 {
		t.Error("0/0 should be 1")
	}
	if !math.IsInf(RelativeGain(5, 0), 1) {
		t.Error("x/0 should be Inf")
	}
}

func TestMIMOBeatsSISOAtHighSNR(t *testing.T) {
	// Sanity: an orthogonal 2x2 at high SNR roughly doubles throughput,
	// the "MIMO rank expansion" effect the paper exploits.
	p := ofdm.Default20MHz()
	heff := flatMIMO(1e-3, 4)
	mimo := MIMORateMbps(p, heff, nil, 100, 1e-9)
	sisoH := make([]complex128, 4)
	for i := range sisoH {
		sisoH[i] = 1e-3
	}
	siso := SISORateMbps(p, sisoH, 100, 1e-9, nil)
	if mimo.RateMbps < 1.9*siso {
		t.Errorf("2x2 %v vs SISO %v: expected ~2x", mimo.RateMbps, siso)
	}
}

var _ = dsp.DB // keep dsp import if unused paths change
