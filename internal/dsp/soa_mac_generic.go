//go:build !amd64

package dsp

// firMAC4 accumulates four consecutive taps into yr/yi across the whole
// block; see soa_mac_amd64.go for the contract. This generic body is the
// semantics reference: the assembly version must match it bit for bit.
func firMAC4(yr, yi, xr, xi []float64, h0r, h0i, h1r, h1i, h2r, h2i, h3r, h3i float64) {
	n := len(yr)
	yi = yi[:n]
	x3r, x3i := xr[:n], xi[:n]
	x2r, x2i := xr[1:1+n], xi[1:1+n]
	x1r, x1i := xr[2:2+n], xi[2:2+n]
	x0r, x0i := xr[3:3+n], xi[3:3+n]
	for i := 0; i < n; i++ {
		ar, ai := yr[i], yi[i]
		a, b := x0r[i], x0i[i]
		ar += h0r*a - h0i*b
		ai += h0r*b + h0i*a
		a, b = x1r[i], x1i[i]
		ar += h1r*a - h1i*b
		ai += h1r*b + h1i*a
		a, b = x2r[i], x2i[i]
		ar += h2r*a - h2i*b
		ai += h2r*b + h2i*a
		a, b = x3r[i], x3i[i]
		ar += h3r*a - h3i*b
		ai += h3r*b + h3i*a
		yr[i], yi[i] = ar, ai
	}
}
