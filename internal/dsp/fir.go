package dsp

// FIR is a streaming causal finite-impulse-response filter. It keeps its own
// delay line so that samples can be pushed one at a time, which is how the
// FastForward relay processes IQ streams: output y[n] = sum_k h[k]·x[n-k].
//
// The zero-delay property matters: tap 0 multiplies the *current* input, so a
// FIR with h[0] != 0 contributes to the output in the same sample instant it
// receives the input. This models the paper's causal cancellation filter,
// which adds no buffering delay (Sec 3.3, Fig 9a).
type FIR struct {
	taps []complex128
	// line is the delay line stored twice over (length 2·T): every input
	// is written at pos and pos+T, so line[pos:pos+T] is always the most
	// recent T inputs, newest first, without a wrap branch in the tap
	// loop. The accumulation order is identical to the classic circular
	// buffer, so outputs are bit-exact with it.
	line []complex128
	pos  int
}

// NewFIR creates a streaming FIR with the given taps. The taps slice is
// copied. A nil or empty taps slice yields an all-zero filter with one tap.
func NewFIR(taps []complex128) *FIR {
	if len(taps) == 0 {
		taps = []complex128{0}
	}
	t := make([]complex128, len(taps))
	copy(t, taps)
	return &FIR{
		taps: t,
		line: make([]complex128, 2*len(taps)),
	}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []complex128 {
	t := make([]complex128, len(f.taps))
	copy(t, f.taps)
	return t
}

// NumTaps returns the number of filter taps.
func (f *FIR) NumTaps() int { return len(f.taps) }

// SetTaps replaces the filter coefficients without clearing filter state.
// The new taps must have the same length as the old ones.
func (f *FIR) SetTaps(taps []complex128) {
	if len(taps) != len(f.taps) {
		panic("dsp: SetTaps length mismatch")
	}
	copy(f.taps, taps)
}

// Push feeds one input sample and returns the corresponding output sample.
func (f *FIR) Push(x complex128) complex128 {
	t := len(f.taps)
	f.pos--
	if f.pos < 0 {
		f.pos = t - 1
	}
	f.line[f.pos] = x
	f.line[f.pos+t] = x
	var acc complex128
	win := f.line[f.pos : f.pos+t]
	for k, h := range f.taps {
		acc += h * win[k]
	}
	return acc
}

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.line {
		f.line[i] = 0
	}
	f.pos = 0
}

// Recent writes the most recent len(dst) inputs into dst, oldest first
// (dst[len-1] is the last pushed sample). Positions never pushed read as
// zero, matching the reset state. len(dst) must not exceed NumTaps.
func (f *FIR) Recent(dst []complex128) {
	if len(dst) > len(f.taps) {
		panic("dsp: Recent needs len(dst) <= NumTaps")
	}
	win := f.line[f.pos : f.pos+len(f.taps)]
	for j := 0; j < len(dst); j++ {
		dst[len(dst)-1-j] = win[j]
	}
}

// LoadRecent replaces the delay line with the given input history, newest
// last. len(src) must equal NumTaps. Block-convolution fast paths use
// Recent/LoadRecent to keep the streaming state consistent with the
// direct form across calls.
func (f *FIR) LoadRecent(src []complex128) {
	t := len(f.taps)
	if len(src) != t {
		panic("dsp: LoadRecent needs len(src) == NumTaps")
	}
	f.pos = 0
	for j := 0; j < t; j++ {
		v := src[t-1-j]
		f.line[j] = v
		f.line[j+t] = v
	}
}

// Process filters a whole block, sample by sample, preserving state across
// calls.
func (f *FIR) Process(x []complex128) []complex128 {
	y := make([]complex128, len(x)) //fflint:allow allocfree allocating convenience form; streaming block paths filter in place through pipeline.FIRStage
	for i, v := range x {
		y[i] = f.Push(v)
	}
	return y
}

// DelayLine is a streaming integer-sample delay: y[n] = x[n-d]. A delay of 0
// passes samples straight through. It models fixed pipeline latency such as
// ADC/DAC delays in the relay.
type DelayLine struct {
	buf []complex128
	pos int
}

// NewDelayLine creates a streaming delay of d samples (d >= 0).
func NewDelayLine(d int) *DelayLine {
	if d < 0 {
		panic("dsp: negative delay")
	}
	return &DelayLine{buf: make([]complex128, d)}
}

// Delay returns the configured delay in samples.
func (d *DelayLine) Delay() int { return len(d.buf) }

// Push feeds one sample and returns the sample delayed by the configured
// number of samples.
func (d *DelayLine) Push(x complex128) complex128 {
	if len(d.buf) == 0 {
		return x
	}
	y := d.buf[d.pos]
	d.buf[d.pos] = x
	d.pos++
	if d.pos == len(d.buf) {
		d.pos = 0
	}
	return y
}

// Reset clears the delay buffer.
func (d *DelayLine) Reset() {
	for i := range d.buf {
		d.buf[i] = 0
	}
	d.pos = 0
}
