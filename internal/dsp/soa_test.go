package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randVec(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func split(x []complex128) (re, im []float64) {
	re = make([]float64, len(x))
	im = make([]float64, len(x))
	Deinterleave(re, im, x)
	return re, im
}

func TestInterleaveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 17, 64, 255} {
		x := randVec(r, n)
		re, im := split(x)
		back := make([]complex128, n)
		Interleave(back, re, im)
		for i := range x {
			if back[i] != x[i] {
				t.Fatalf("n=%d: round trip mismatch at %d: %v != %v", n, i, back[i], x[i])
			}
		}
	}
}

// TestFIRFilterSoAMatchesReference is the property test of the SoA MAC
// kernel: across random block lengths and tap counts (odd lengths, single
// taps, zero taps) the planar kernel must match the streaming complex128
// direct form within 1e-9, starting from arbitrary delay-line history.
func TestFIRFilterSoAMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cases := []struct{ taps, n int }{
		{0, 16}, {1, 1}, {1, 17}, {2, 3}, {3, 33}, {7, 101}, {8, 64},
		{15, 255}, {16, 256}, {120, 1024},
	}
	for i := 0; i < 20; i++ {
		cases = append(cases, struct{ taps, n int }{1 + r.Intn(64), 1 + r.Intn(512)})
	}
	for _, tc := range cases {
		taps := randVec(r, tc.taps)
		hist := randVec(r, maxInt(tc.taps-1, 0))
		block := randVec(r, tc.n)

		// Reference: the per-sample direct form with the history pushed in.
		var want []complex128
		if tc.taps == 0 {
			want = make([]complex128, tc.n)
		} else {
			f := NewFIR(taps)
			for _, v := range hist {
				f.Push(v)
			}
			want = f.Process(block)
		}

		hr, hi := split(taps)
		ext := append(append([]complex128{}, hist...), block...)
		xr, xi := split(ext)
		yr := make([]float64, tc.n)
		yi := make([]float64, tc.n)
		if tc.taps == 0 {
			FIRFilterSoA(yr, yi, nil, nil, hr, hi)
		} else {
			FIRFilterSoA(yr, yi, xr, xi, hr, hi)
		}
		got := make([]complex128, tc.n)
		Interleave(got, yr, yi)
		for j := range want {
			if d := cmplx.Abs(got[j] - want[j]); d > 1e-9 {
				t.Fatalf("taps=%d n=%d: |got-want|=%g at %d", tc.taps, tc.n, d, j)
			}
		}
	}
}

func TestSubInPlaceSoAMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randVec(r, 129)
	b := randVec(r, 129)
	want := Sub(a, b)
	ar, ai := split(a)
	br, bi := split(b)
	SubInPlaceSoA(ar, ai, br, bi)
	got := make([]complex128, len(a))
	Interleave(got, ar, ai)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestScaleCSoAMatchesComplexMul(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randVec(r, 77)
	g := complex(r.NormFloat64(), r.NormFloat64())
	want := ScaleC(x, g)
	re, im := split(x)
	ScaleCSoA(re, im, g)
	got := make([]complex128, len(x))
	Interleave(got, re, im)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestRotateSoAMatchesDirect drives blocks long enough to cross several
// phasor resyncs and checks the recurrence stays within the 1e-9
// fast-path tolerance of the per-sample cmplx.Exp form, with the
// returned phase accumulated bit-identically.
func TestRotateSoAMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 255, 256, 257, 4096} {
		x := randVec(r, n)
		step := 2 * math.Pi * 1500 / 20e6
		startPhase := 0.3

		want := make([]complex128, n)
		ph := startPhase
		for i, v := range x {
			want[i] = v * cmplx.Exp(complex(0, ph))
			ph += step
		}

		re, im := split(x)
		end := RotateSoA(re, im, startPhase, step)
		if end != ph {
			t.Fatalf("n=%d: end phase %v != %v", n, end, ph)
		}
		got := make([]complex128, n)
		Interleave(got, re, im)
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("n=%d: |got-want|=%g at %d", n, d, i)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
