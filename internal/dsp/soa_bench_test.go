package dsp_test

import (
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

// BenchmarkFIRKernel isolates the 120-tap MAC inner loop: the per-sample
// direct form (FIR.Process) against the planar SoA kernel, excluding the
// pipeline layer's staging and conversion overhead.
func BenchmarkFIRKernel(b *testing.B) {
	const nTaps, nSamp = 120, 8192
	src := rng.New(1)
	taps := make([]complex128, nTaps)
	for i := range taps {
		taps[i] = src.ComplexGaussian(1.0 / nTaps)
	}
	x := src.NoiseVector(nSamp+nTaps-1, 1)

	b.Run("push", func(b *testing.B) {
		f := dsp.NewFIR(taps)
		out := make([]complex128, nSamp)
		b.ReportAllocs()
		b.SetBytes(nSamp * 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < nSamp; j++ {
				out[j] = f.Push(x[j])
			}
		}
	})
	b.Run("soa", func(b *testing.B) {
		hr := make([]float64, nTaps)
		hi := make([]float64, nTaps)
		dsp.Deinterleave(hr, hi, taps)
		xr := make([]float64, len(x))
		xi := make([]float64, len(x))
		dsp.Deinterleave(xr, xi, x)
		yr := make([]float64, nSamp)
		yi := make([]float64, nSamp)
		b.ReportAllocs()
		b.SetBytes(nSamp * 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dsp.FIRFilterSoA(yr, yi, xr, xi, hr, hi)
		}
	})
}
