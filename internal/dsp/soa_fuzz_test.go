package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSoARoundTrip fuzzes the SoA↔AoS conversion boundary: any byte
// string reinterpreted as float64 components — including NaNs with
// arbitrary payloads, infinities, and unaligned (odd, non-power-of-two)
// lengths — must survive Deinterleave→Interleave bit-for-bit. The
// conversion is the trust boundary of every SoA fast path: if it altered
// even a NaN payload, the fast path could no longer claim the direct
// form's semantics.
func FuzzSoARoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	seed := make([]byte, 5*16)
	binary.LittleEndian.PutUint64(seed[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(seed[8:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(seed[16:], math.Float64bits(math.Inf(-1)))
	binary.LittleEndian.PutUint64(seed[24:], math.Float64bits(0))
	binary.LittleEndian.PutUint64(seed[32:], 0x7ff8dead_beef0001) // NaN payload
	binary.LittleEndian.PutUint64(seed[40:], math.Float64bits(1.5))
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		x := make([]complex128, n)
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
			x[i] = complex(re, im)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		Deinterleave(re, im, x)
		back := make([]complex128, n)
		Interleave(back, re, im)
		for i := range x {
			gr := math.Float64bits(real(back[i]))
			gi := math.Float64bits(imag(back[i]))
			wr := math.Float64bits(real(x[i]))
			wi := math.Float64bits(imag(x[i]))
			if gr != wr || gi != wi {
				t.Fatalf("round trip not bit-identical at %d: got (%#x,%#x) want (%#x,%#x)",
					i, gr, gi, wr, wi)
			}
		}
	})
}
