// Package dsp provides the digital signal processing primitives that the
// FastForward simulation is built on: complex baseband vectors, dB/linear
// conversions, power and SNR measurement, and elementary waveform
// manipulation. All signals are complex128 IQ sample slices at an implicit,
// caller-managed sample rate.
package dsp

import (
	"math"
	"math/cmplx"
)

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 {
	if linear <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(linear)
}

// Linear converts decibels to a linear power ratio.
func Linear(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeDB converts a linear amplitude (voltage) ratio to decibels.
func AmplitudeDB(linear float64) float64 {
	if linear <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(linear)
}

// AmplitudeFromDB converts decibels to a linear amplitude (voltage) ratio.
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 {
	return DB(watts) + 30
}

// WattsFromDBm converts dBm to watts.
func WattsFromDBm(dbm float64) float64 {
	return Linear(dbm - 30)
}

// Power returns the mean squared magnitude of x (average sample power).
// Power of an empty slice is 0.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum / float64(len(x))
}

// Energy returns the total energy (sum of squared magnitudes) of x.
func Energy(x []complex128) float64 {
	var sum float64
	for _, v := range x {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum
}

// PowerDB returns the average sample power of x in dB (relative to unit power).
func PowerDB(x []complex128) float64 { return DB(Power(x)) }

// Scale returns x scaled by the real gain g.
func Scale(x []complex128, g float64) []complex128 {
	y := make([]complex128, len(x))
	c := complex(g, 0)
	for i, v := range x {
		y[i] = v * c
	}
	return y
}

// ScaleC returns x scaled by the complex gain g.
func ScaleC(x []complex128, g complex128) []complex128 {
	y := make([]complex128, len(x))
	for i, v := range x {
		y[i] = v * g
	}
	return y
}

// ScaleInPlace multiplies x by the real gain g in place.
func ScaleInPlace(x []complex128, g float64) {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
}

// ScaleInto writes x scaled by the real gain g into dst (equal lengths,
// may alias). The allocation-free form of Scale for hot paths.
func ScaleInto(dst, x []complex128, g float64) {
	if len(dst) != len(x) {
		panic("dsp: ScaleInto length mismatch")
	}
	c := complex(g, 0)
	for i, v := range x {
		dst[i] = v * c
	}
}

// ScaleCInPlace multiplies x by the complex gain g in place.
func ScaleCInPlace(x []complex128, g complex128) {
	for i := range x {
		x[i] *= g
	}
}

// ScaleCInto writes x scaled by the complex gain g into dst (equal
// lengths, may alias).
func ScaleCInto(dst, x []complex128, g complex128) {
	if len(dst) != len(x) {
		panic("dsp: ScaleCInto length mismatch")
	}
	for i, v := range x {
		dst[i] = v * g
	}
}

// Add returns the elementwise sum of a and b, which must have equal length.
func Add(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: Add length mismatch")
	}
	y := make([]complex128, len(a))
	for i := range a {
		y[i] = a[i] + b[i]
	}
	return y
}

// AddInPlace adds b into a. b may be shorter than a.
func AddInPlace(a, b []complex128) {
	n := len(b)
	if len(a) < n {
		n = len(a)
	}
	for i := 0; i < n; i++ {
		a[i] += b[i]
	}
}

// AddInto writes a+b elementwise into dst (all equal lengths; dst may
// alias either operand).
func AddInto(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("dsp: AddInto length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub returns a-b elementwise; slices must have equal length.
func Sub(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: Sub length mismatch")
	}
	y := make([]complex128, len(a))
	for i := range a {
		y[i] = a[i] - b[i]
	}
	return y
}

// SubInto writes a-b elementwise into dst (all equal lengths; dst may
// alias either operand).
func SubInto(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("dsp: SubInto length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// SubInPlace subtracts b from a in place. b may be shorter than a.
func SubInPlace(a, b []complex128) {
	n := len(b)
	if len(a) < n {
		n = len(a)
	}
	for i := 0; i < n; i++ {
		a[i] -= b[i]
	}
}

// Mul returns the elementwise (Hadamard) product of a and b.
func Mul(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: Mul length mismatch")
	}
	y := make([]complex128, len(a))
	for i := range a {
		y[i] = a[i] * b[i]
	}
	return y
}

// MulInto writes the elementwise product of a and b into dst (all equal
// lengths; dst may alias either operand).
func MulInto(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("dsp: MulInto length mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// Conj returns the elementwise complex conjugate of x.
func Conj(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	for i, v := range x {
		y[i] = cmplx.Conj(v)
	}
	return y
}

// ConjInto writes the elementwise conjugate of x into dst (equal
// lengths, may alias).
func ConjInto(dst, x []complex128) {
	if len(dst) != len(x) {
		panic("dsp: ConjInto length mismatch")
	}
	for i, v := range x {
		dst[i] = cmplx.Conj(v)
	}
}

// Dot returns the inner product sum(a[i] * conj(b[i])).
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("dsp: Dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

// Delay returns x delayed by n whole samples, zero-padded at the front and
// truncated to the original length. A negative n advances the signal.
func Delay(x []complex128, n int) []complex128 {
	y := make([]complex128, len(x))
	if n >= 0 {
		copy(y[minInt(n, len(y)):], x)
	} else {
		if -n < len(x) {
			copy(y, x[-n:])
		}
	}
	return y
}

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). For long signals prefer fft-based convolution;
// this direct form is used for filters with few taps.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	y := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			y[i+j] += xv * hv
		}
	}
	return y
}

// FilterSame convolves x with h and returns the first len(x) samples — the
// causal "same-size" filtering used throughout the relay pipeline.
func FilterSame(x, h []complex128) []complex128 {
	if len(x) == 0 {
		return nil
	}
	y := make([]complex128, len(x))
	for i := range x {
		var acc complex128
		kmax := len(h)
		if kmax > i+1 {
			kmax = i + 1
		}
		for k := 0; k < kmax; k++ {
			acc += h[k] * x[i-k]
		}
		y[i] = acc
	}
	return y
}

// CrossCorrelate returns c[k] = sum_n x[n+k] * conj(ref[n]) for
// k in [0, len(x)-len(ref)]. It is the sliding correlation used by packet
// detection and signature matching. Returns nil if ref is longer than x.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for k := range out {
		var s complex128
		for n, r := range ref {
			s += x[k+n] * cmplx.Conj(r)
		}
		out[k] = s
	}
	return out
}

// NormalizedCorrelationPeak returns the peak index and the normalized peak
// magnitude (0..1) of the correlation of x against ref, where 1 means a
// perfect scaled copy of ref occurs in x at the returned offset.
func NormalizedCorrelationPeak(x, ref []complex128) (idx int, peak float64) {
	c := CrossCorrelate(x, ref)
	if c == nil {
		return -1, 0
	}
	refE := Energy(ref)
	best := -1.0
	for k, v := range c {
		seg := x[k : k+len(ref)]
		e := Energy(seg)
		if e <= 0 || refE <= 0 {
			continue
		}
		m := cmplx.Abs(v) / math.Sqrt(e*refE)
		if m > best {
			best = m
			idx = k
		}
	}
	if best < 0 {
		return -1, 0
	}
	return idx, best
}

// SNRdB computes the signal-to-noise ratio in dB given a clean reference and
// a received copy (equal lengths): the residual received-reference is treated
// as noise. The received signal must already be scaled/aligned.
func SNRdB(reference, received []complex128) float64 {
	if len(reference) != len(received) {
		panic("dsp: SNRdB length mismatch")
	}
	sig := Power(reference)
	res := Power(Sub(received, reference))
	if res == 0 {
		return math.Inf(1)
	}
	return DB(sig / res)
}

// FractionalDelayFilter returns a windowed-sinc FIR approximating a delay of
// d samples (d may be fractional), with the given number of taps. The filter
// is non-causal by design (centered); callers that need causality must absorb
// the (taps-1)/2 group delay. Used to model sub-sample propagation delays.
func FractionalDelayFilter(d float64, taps int) []complex128 {
	if taps < 1 {
		panic("dsp: FractionalDelayFilter needs at least 1 tap")
	}
	h := make([]complex128, taps)
	center := float64(taps-1) / 2
	for n := 0; n < taps; n++ {
		t := float64(n) - center - d
		v := sinc(t)
		// Hamming window to control sidelobes.
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(n)/float64(taps-1))
		if taps == 1 {
			w = 1
		}
		h[n] = complex(v*w, 0)
	}
	return h
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// ApplyCFO applies a carrier frequency offset of cfoHz to x sampled at
// sampleRate Hz, starting from phase startPhase (radians). It returns the
// rotated signal and the phase after the last sample, so successive blocks
// can be rotated continuously.
func ApplyCFO(x []complex128, cfoHz, sampleRate, startPhase float64) (y []complex128, endPhase float64) {
	y = make([]complex128, len(x))
	step := 2 * math.Pi * cfoHz / sampleRate
	ph := startPhase
	for i, v := range x {
		y[i] = v * cmplx.Exp(complex(0, ph))
		ph += step
	}
	return y, ph
}

// PhaseOf returns the phase of z in radians.
func PhaseOf(z complex128) float64 { return cmplx.Phase(z) }

// Rotate returns x with every sample rotated by theta radians.
func Rotate(x []complex128, theta float64) []complex128 {
	return ScaleC(x, cmplx.Exp(complex(0, theta)))
}

// Clone returns a copy of x.
func Clone(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	return y
}

// MaxAbs returns the largest sample magnitude in x.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
