// firMAC4: four-tap planar FIR multiply-accumulate pass, SSE2 packed
// doubles (amd64 baseline). Semantics reference: soa_mac_generic.go —
// this must stay bit-identical to it (per-lane IEEE mul/add/sub, no FMA,
// same accumulation order: tap 0 through tap 3 into a running sum that
// starts from y[i]).
//
// Register plan: X8..X15 hold the eight tap components broadcast to both
// lanes; X0/X1 carry yr/yi pairs; X2..X7 are scratch. Tap j reads the
// input at byte offset (3-j)*8 from the xr/xi base (the base points at
// the window of tap 3, the earliest sample).

#include "textflag.h"

TEXT ·firMAC4(SB), NOSPLIT, $0-160
	MOVQ yr_base+0(FP), DI
	MOVQ yr_len+8(FP), CX
	MOVQ yi_base+24(FP), SI
	MOVQ xr_base+48(FP), R8
	MOVQ xi_base+72(FP), R9

	MOVSD    h0r+96(FP), X8
	UNPCKLPD X8, X8
	MOVSD    h0i+104(FP), X9
	UNPCKLPD X9, X9
	MOVSD    h1r+112(FP), X10
	UNPCKLPD X10, X10
	MOVSD    h1i+120(FP), X11
	UNPCKLPD X11, X11
	MOVSD    h2r+128(FP), X12
	UNPCKLPD X12, X12
	MOVSD    h2i+136(FP), X13
	UNPCKLPD X13, X13
	MOVSD    h3r+144(FP), X14
	UNPCKLPD X14, X14
	MOVSD    h3i+152(FP), X15
	UNPCKLPD X15, X15

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-2, DX

pair:
	CMPQ AX, DX
	JGE  tail
	MOVUPD (DI)(AX*8), X0
	MOVUPD (SI)(AX*8), X1

	// tap 0: y += h0 * x[i+3]
	MOVUPD 24(R8)(AX*8), X2
	MOVUPD 24(R9)(AX*8), X3
	MOVAPD X2, X4
	MULPD  X8, X4
	MOVAPD X3, X5
	MULPD  X9, X5
	SUBPD  X5, X4
	ADDPD  X4, X0
	MOVAPD X3, X6
	MULPD  X8, X6
	MOVAPD X2, X7
	MULPD  X9, X7
	ADDPD  X7, X6
	ADDPD  X6, X1

	// tap 1: y += h1 * x[i+2]
	MOVUPD 16(R8)(AX*8), X2
	MOVUPD 16(R9)(AX*8), X3
	MOVAPD X2, X4
	MULPD  X10, X4
	MOVAPD X3, X5
	MULPD  X11, X5
	SUBPD  X5, X4
	ADDPD  X4, X0
	MOVAPD X3, X6
	MULPD  X10, X6
	MOVAPD X2, X7
	MULPD  X11, X7
	ADDPD  X7, X6
	ADDPD  X6, X1

	// tap 2: y += h2 * x[i+1]
	MOVUPD 8(R8)(AX*8), X2
	MOVUPD 8(R9)(AX*8), X3
	MOVAPD X2, X4
	MULPD  X12, X4
	MOVAPD X3, X5
	MULPD  X13, X5
	SUBPD  X5, X4
	ADDPD  X4, X0
	MOVAPD X3, X6
	MULPD  X12, X6
	MOVAPD X2, X7
	MULPD  X13, X7
	ADDPD  X7, X6
	ADDPD  X6, X1

	// tap 3: y += h3 * x[i]
	MOVUPD (R8)(AX*8), X2
	MOVUPD (R9)(AX*8), X3
	MOVAPD X2, X4
	MULPD  X14, X4
	MOVAPD X3, X5
	MULPD  X15, X5
	SUBPD  X5, X4
	ADDPD  X4, X0
	MOVAPD X3, X6
	MULPD  X14, X6
	MOVAPD X2, X7
	MULPD  X15, X7
	ADDPD  X7, X6
	ADDPD  X6, X1

	MOVUPD X0, (DI)(AX*8)
	MOVUPD X1, (SI)(AX*8)
	ADDQ   $2, AX
	JMP    pair

tail:
	// At most one trailing sample: same sequence in scalar form (the
	// broadcast registers keep the tap values in their low lanes).
	CMPQ AX, CX
	JGE  done
	MOVSD (DI)(AX*8), X0
	MOVSD (SI)(AX*8), X1

	MOVSD  24(R8)(AX*8), X2
	MOVSD  24(R9)(AX*8), X3
	MOVAPD X2, X4
	MULSD  X8, X4
	MOVAPD X3, X5
	MULSD  X9, X5
	SUBSD  X5, X4
	ADDSD  X4, X0
	MOVAPD X3, X6
	MULSD  X8, X6
	MOVAPD X2, X7
	MULSD  X9, X7
	ADDSD  X7, X6
	ADDSD  X6, X1

	MOVSD  16(R8)(AX*8), X2
	MOVSD  16(R9)(AX*8), X3
	MOVAPD X2, X4
	MULSD  X10, X4
	MOVAPD X3, X5
	MULSD  X11, X5
	SUBSD  X5, X4
	ADDSD  X4, X0
	MOVAPD X3, X6
	MULSD  X10, X6
	MOVAPD X2, X7
	MULSD  X11, X7
	ADDSD  X7, X6
	ADDSD  X6, X1

	MOVSD  8(R8)(AX*8), X2
	MOVSD  8(R9)(AX*8), X3
	MOVAPD X2, X4
	MULSD  X12, X4
	MOVAPD X3, X5
	MULSD  X13, X5
	SUBSD  X5, X4
	ADDSD  X4, X0
	MOVAPD X3, X6
	MULSD  X12, X6
	MOVAPD X2, X7
	MULSD  X13, X7
	ADDSD  X7, X6
	ADDSD  X6, X1

	MOVSD  (R8)(AX*8), X2
	MOVSD  (R9)(AX*8), X3
	MOVAPD X2, X4
	MULSD  X14, X4
	MOVAPD X3, X5
	MULSD  X15, X5
	SUBSD  X5, X4
	ADDSD  X4, X0
	MOVAPD X3, X6
	MULSD  X14, X6
	MOVAPD X2, X7
	MULSD  X15, X7
	ADDSD  X7, X6
	ADDSD  X6, X1

	MOVSD X0, (DI)(AX*8)
	MOVSD X1, (SI)(AX*8)

done:
	RET
