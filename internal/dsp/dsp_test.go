package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-90, -30, -3, 0, 3, 10, 20, 110} {
		if got := DB(Linear(db)); !approx(got, db, 1e-9) {
			t.Errorf("DB(Linear(%v)) = %v", db, got)
		}
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(negative) should be -Inf")
	}
}

func TestAmplitudeDB(t *testing.T) {
	// A 10x amplitude gain is 20 dB.
	if got := AmplitudeDB(10); !approx(got, 20, 1e-12) {
		t.Errorf("AmplitudeDB(10) = %v, want 20", got)
	}
	if got := AmplitudeFromDB(20); !approx(got, 10, 1e-12) {
		t.Errorf("AmplitudeFromDB(20) = %v, want 10", got)
	}
}

func TestDBmConversions(t *testing.T) {
	// 20 dBm = 100 mW.
	if got := WattsFromDBm(20); !approx(got, 0.1, 1e-12) {
		t.Errorf("WattsFromDBm(20) = %v, want 0.1", got)
	}
	if got := DBm(0.1); !approx(got, 20, 1e-9) {
		t.Errorf("DBm(0.1) = %v, want 20", got)
	}
}

func TestPowerAndEnergy(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	if got := Power(x); !approx(got, 1, 1e-12) {
		t.Errorf("Power = %v, want 1", got)
	}
	if got := Energy(x); !approx(got, 4, 1e-12) {
		t.Errorf("Energy = %v, want 4", got)
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) should be 0")
	}
}

func TestScaleAddSubMul(t *testing.T) {
	a := []complex128{1 + 1i, 2}
	b := []complex128{3, 4i}
	sum := Add(a, b)
	if sum[0] != 4+1i || sum[1] != 2+4i {
		t.Errorf("Add wrong: %v", sum)
	}
	diff := Sub(a, b)
	if diff[0] != -2+1i || diff[1] != 2-4i {
		t.Errorf("Sub wrong: %v", diff)
	}
	prod := Mul(a, b)
	if prod[0] != 3+3i || prod[1] != 8i {
		t.Errorf("Mul wrong: %v", prod)
	}
	sc := Scale(a, 2)
	if sc[0] != 2+2i || sc[1] != 4 {
		t.Errorf("Scale wrong: %v", sc)
	}
	// originals untouched
	if a[0] != 1+1i {
		t.Error("Scale mutated input")
	}
}

func TestDelay(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := Delay(x, 2)
	want := []complex128{0, 0, 1, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Delay(+2) = %v", y)
		}
	}
	y = Delay(x, -1)
	want = []complex128{2, 3, 4, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Delay(-1) = %v", y)
		}
	}
	// Delay beyond length yields all zeros.
	y = Delay(x, 10)
	for _, v := range y {
		if v != 0 {
			t.Fatalf("Delay(10) should zero everything: %v", y)
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []complex128{1 + 2i, 3, -1i}
	y := Convolve(x, []complex128{1})
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity convolution failed: %v", y)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	// (1 + z)(1 - z) = 1 - z^2
	y := Convolve([]complex128{1, 1}, []complex128{1, -1})
	want := []complex128{1, 0, -1}
	if len(y) != 3 {
		t.Fatalf("length %d", len(y))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Convolve = %v, want %v", y, want)
		}
	}
}

func TestFilterSameMatchesConvolvePrefix(t *testing.T) {
	x := []complex128{1, 2i, 3, -4, 5i, 6}
	h := []complex128{0.5, -0.25i, 0.1}
	full := Convolve(x, h)
	same := FilterSame(x, h)
	if len(same) != len(x) {
		t.Fatalf("FilterSame length %d", len(same))
	}
	for i := range same {
		if cmplx.Abs(same[i]-full[i]) > 1e-12 {
			t.Fatalf("FilterSame[%d] = %v, want %v", i, same[i], full[i])
		}
	}
}

func TestCrossCorrelateFindsOffset(t *testing.T) {
	ref := []complex128{1, -1, 1, 1, -1}
	x := make([]complex128, 20)
	copy(x[7:], ref)
	idx, peak := NormalizedCorrelationPeak(x, ref)
	if idx != 7 {
		t.Errorf("peak at %d, want 7", idx)
	}
	if !approx(peak, 1, 1e-9) {
		t.Errorf("normalized peak %v, want 1", peak)
	}
}

func TestCrossCorrelateRefLongerThanX(t *testing.T) {
	if c := CrossCorrelate([]complex128{1}, []complex128{1, 2}); c != nil {
		t.Error("expected nil for ref longer than x")
	}
}

func TestSNRdB(t *testing.T) {
	ref := []complex128{1, 1, 1, 1}
	rx := []complex128{1.1, 1, 0.9, 1}
	// noise power = (0.01+0+0.01+0)/4 = 0.005, signal = 1 -> 23.01 dB
	if got := SNRdB(ref, rx); !approx(got, 23.0103, 1e-3) {
		t.Errorf("SNRdB = %v", got)
	}
	if !math.IsInf(SNRdB(ref, ref), 1) {
		t.Error("identical signals should be +Inf SNR")
	}
}

func TestFractionalDelayFilter(t *testing.T) {
	// An integer delay through the fractional filter should align a sinusoid
	// with its integer-delayed copy.
	const taps = 31
	h := FractionalDelayFilter(0.5, taps)
	// The filter should have unit DC gain approximately.
	var dc complex128
	for _, v := range h {
		dc += v
	}
	if math.Abs(cmplx.Abs(dc)-1) > 0.05 {
		t.Errorf("DC gain %v, want ~1", cmplx.Abs(dc))
	}

	// Delay a complex tone by 0.5 samples and compare with the analytic shift.
	const n = 256
	freq := 0.05 // cycles/sample, low enough to avoid window edge effects
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*freq*float64(i)))
	}
	y := Convolve(x, h)
	center := (taps - 1) / 2
	// y[center+i] should approximate x shifted by 0.5 sample:
	// exp(j2πf(i-0.5))
	var errsum float64
	for i := 50; i < 200; i++ {
		want := cmplx.Exp(complex(0, 2*math.Pi*freq*(float64(i)-0.5)))
		errsum += cmplx.Abs(y[center+i] - want)
	}
	if avg := errsum / 150; avg > 0.02 {
		t.Errorf("fractional delay error %v too large", avg)
	}
}

func TestApplyCFOContinuity(t *testing.T) {
	x := make([]complex128, 100)
	for i := range x {
		x[i] = 1
	}
	full, _ := ApplyCFO(x, 1000, 20e6, 0)
	a, ph := ApplyCFO(x[:50], 1000, 20e6, 0)
	b, _ := ApplyCFO(x[50:], 1000, 20e6, ph)
	for i := 0; i < 50; i++ {
		if cmplx.Abs(full[i]-a[i]) > 1e-12 {
			t.Fatal("first block mismatch")
		}
		if cmplx.Abs(full[50+i]-b[i]) > 1e-9 {
			t.Fatal("second block not continuous")
		}
	}
}

func TestApplyCFOInverse(t *testing.T) {
	x := []complex128{1 + 1i, 2 - 1i, -3, 4i, 0.5}
	y, _ := ApplyCFO(x, 31250, 20e6, 0.3)
	z, _ := ApplyCFO(y, -31250, 20e6, -0.3)
	for i := range x {
		if cmplx.Abs(x[i]-z[i]) > 1e-12 {
			t.Fatalf("CFO inverse failed at %d: %v vs %v", i, x[i], z[i])
		}
	}
}

func TestFIRStreamingMatchesConvolution(t *testing.T) {
	h := []complex128{1, 0.5i, -0.25, 0.125i}
	x := []complex128{1, 2, 3i, -4, 5, -6i, 7, 8}
	f := NewFIR(h)
	y := f.Process(x)
	want := FilterSame(x, h)
	for i := range y {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("FIR streaming mismatch at %d: %v vs %v", i, y[i], want[i])
		}
	}
}

func TestFIRStatePersistsAcrossBlocks(t *testing.T) {
	h := []complex128{1, -1, 0.5}
	x := []complex128{1, 2, 3, 4, 5, 6}
	f1 := NewFIR(h)
	whole := f1.Process(x)
	f2 := NewFIR(h)
	part := append(f2.Process(x[:2]), f2.Process(x[2:])...)
	for i := range whole {
		if whole[i] != part[i] {
			t.Fatalf("block processing differs at %d", i)
		}
	}
}

func TestFIRZeroDelayTap(t *testing.T) {
	// With h[0]=1 only, the FIR must be a pure pass-through: the current
	// input appears in the current output — the causality property the
	// paper's cancellation design depends on.
	f := NewFIR([]complex128{1})
	for i := 0; i < 10; i++ {
		in := complex(float64(i), -float64(i))
		if out := f.Push(in); out != in {
			t.Fatalf("zero-delay tap broken: in %v out %v", in, out)
		}
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]complex128{0, 1}) // one-sample delay
	f.Push(42)
	f.Reset()
	if out := f.Push(1); out != 0 {
		t.Errorf("after reset, delayed output should be 0, got %v", out)
	}
}

func TestDelayLine(t *testing.T) {
	d := NewDelayLine(3)
	ins := []complex128{1, 2, 3, 4, 5}
	want := []complex128{0, 0, 0, 1, 2}
	for i, in := range ins {
		if out := d.Push(in); out != want[i] {
			t.Fatalf("DelayLine out[%d]=%v want %v", i, out, want[i])
		}
	}
	if d.Delay() != 3 {
		t.Error("Delay() wrong")
	}
	z := NewDelayLine(0)
	if out := z.Push(7); out != 7 {
		t.Error("zero delay line should pass through")
	}
}

func TestRotateAndPhase(t *testing.T) {
	x := []complex128{1}
	y := Rotate(x, math.Pi/2)
	if cmplx.Abs(y[0]-1i) > 1e-12 {
		t.Errorf("Rotate 90deg: %v", y[0])
	}
	if !approx(PhaseOf(1i), math.Pi/2, 1e-12) {
		t.Error("PhaseOf wrong")
	}
}

func TestQuickConvolutionLinearity(t *testing.T) {
	// Property: Convolve(a+b, h) == Convolve(a,h) + Convolve(b,h).
	f := func(re1, im1, re2, im2 []float64) bool {
		n := len(re1)
		for _, s := range [][]float64{im1, re2, im2} {
			if len(s) < n {
				n = len(s)
			}
		}
		if n == 0 {
			return true
		}
		if n > 32 {
			n = 32
		}
		a := make([]complex128, n)
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(clamp(re1[i]), clamp(im1[i]))
			b[i] = complex(clamp(re2[i]), clamp(im2[i]))
		}
		h := []complex128{0.3, -0.2i, 0.1 + 0.1i}
		lhs := Convolve(Add(a, b), h)
		rhs := Add(Convolve(a, h), Convolve(b, h))
		for i := range lhs {
			if cmplx.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickEnergyParseval(t *testing.T) {
	// Property: Energy(Scale(x,g)) == g^2 * Energy(x).
	f := func(res, ims []float64, g float64) bool {
		n := len(res)
		if len(ims) < n {
			n = len(ims)
		}
		if n == 0 {
			return true
		}
		if n > 64 {
			n = 64
		}
		g = clamp(g)
		x := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(clamp(res[i]), clamp(ims[i]))
		}
		lhs := Energy(Scale(x, g))
		rhs := g * g * Energy(x)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// clamp keeps quick-generated float64s in a numerically sane range.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if v > 1e3 {
		return 1e3
	}
	if v < -1e3 {
		return -1e3
	}
	return v
}
