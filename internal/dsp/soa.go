package dsp

import "math"

// SoA (structure-of-arrays) kernels: the hot inner loops of the streaming
// pipeline expressed over planar float64 re/im slices instead of
// []complex128. Splitting the components lets the tap loops stream two
// contiguous float64 arrays with no per-sample branches or calls, which
// is what the real-time multi-session path needs at 20 Msamples/s.
//
// The kernels are pure and `Into`-style: they never allocate, and every
// output buffer is caller-owned. Conversion happens at block ingress and
// egress (Deinterleave/Interleave), so the []complex128 stage API — and
// the golden vectors pinned to it — are untouched.
//
// Numerics: each kernel accumulates in the same order as the complex128
// direct form it replaces (ascending tap index, naive complex-multiply
// expansion), so results are bit-exact on targets without implicit FMA
// contraction and within a few ulps otherwise. RotateSoA advances the
// phasor by a complex recurrence instead of a sin/cos per sample and is
// the one kernel held to the fast-path tolerance (≤1e-9 of the direct
// form, like the overlap-save precedent) rather than bit-exactness.

// Deinterleave splits x into planar re/im components. len(re) and
// len(im) must equal len(x).
func Deinterleave(re, im []float64, x []complex128) {
	if len(re) != len(x) || len(im) != len(x) {
		panic("dsp: Deinterleave length mismatch")
	}
	for i, v := range x {
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Interleave packs planar re/im components into dst. len(re) and len(im)
// must equal len(dst). Interleave(Deinterleave(x)) is bit-identical to x,
// including NaN payloads and infinities (enforced by fuzz).
func Interleave(dst []complex128, re, im []float64) {
	if len(re) != len(dst) || len(im) != len(dst) {
		panic("dsp: Interleave length mismatch")
	}
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}

// FIRFilterSoA is the planar FIR multiply-accumulate: it computes the
// causal convolution y[i] = Σ_k h[k]·x[T−1+i−k] for i in [0, len(yr)),
// where x carries T−1 samples of input history followed by the block
// (len(xr) = len(yr)+T−1). The taps iterate outermost in ascending k, so
// each output accumulates its products in exactly the order of the
// per-sample direct form (FIR.Push).
//
// With zero taps (len(hr) == 0) the output is zeroed and x is ignored.
func FIRFilterSoA(yr, yi, xr, xi, hr, hi []float64) {
	t := len(hr)
	n := len(yr)
	if len(hi) != t || len(yi) != n {
		panic("dsp: FIRFilterSoA component length mismatch")
	}
	yi = yi[:n] // bounds-check elimination in the MAC loops
	for i := range yr {
		yr[i], yi[i] = 0, 0
	}
	if t == 0 || n == 0 {
		return
	}
	if len(xr) != n+t-1 || len(xi) != n+t-1 {
		panic("dsp: FIRFilterSoA needs len(x) == len(y)+taps-1")
	}
	// Four taps per pass: each pass loads and stores every output element
	// once per four taps instead of once per tap (y traffic is where the
	// time goes; the MAC count is fixed), and on amd64 firMAC4 runs the
	// pass with SSE2 packed doubles. Within a pass the accumulator adds
	// taps k, k+1, k+2, k+3 in order, so the ascending-k association is
	// preserved exactly.
	k := 0
	for ; k+4 <= t; k += 4 {
		// Tap k+j reads x[t-1-(k+j)+i]; the pass base is tap k+3's
		// window (the earliest sample), and firMAC4 offsets from there.
		base := t - 4 - k
		firMAC4(yr, yi, xr[base:base+n+3], xi[base:base+n+3],
			hr[k], hi[k], hr[k+1], hi[k+1], hr[k+2], hi[k+2], hr[k+3], hi[k+3])
	}
	for ; k < t; k++ {
		hre, him := hr[k], hi[k]
		xre := xr[t-1-k : t-1-k+n]
		xim := xi[t-1-k : t-1-k+n]
		for i := 0; i < n; i++ {
			a, b := xre[i], xim[i]
			yr[i] += hre*a - him*b
			yi[i] += hre*b + him*a
		}
	}
}

// SubInPlaceSoA is the planar cancel subtract: a[i] -= b[i] on both
// components. All four slices must have equal length.
func SubInPlaceSoA(ar, ai, br, bi []float64) {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("dsp: SubInPlaceSoA length mismatch")
	}
	for i := 0; i < n; i++ {
		ar[i] -= br[i]
		ai[i] -= bi[i]
	}
}

// ScaleCSoA is the planar complex gain: x[i] *= g in place, expanded in
// the same operand order as complex128 multiplication.
func ScaleCSoA(re, im []float64, g complex128) {
	if len(re) != len(im) {
		panic("dsp: ScaleCSoA length mismatch")
	}
	gr, gi := real(g), imag(g)
	for i := range re {
		a, b := re[i], im[i]
		re[i] = a*gr - b*gi
		im[i] = a*gi + b*gr
	}
}

// rotResync is how many recurrence steps RotateSoA (and the CFO stage's
// fast rotator) takes before recomputing the phasor from the exactly
// accumulated phase. Each complex multiply adds a few ulps of error, so
// the drift between resyncs stays below ~1e-12 — comfortably inside the
// 1e-9 fast-path tolerance — while sin/cos cost is paid once per 256
// samples instead of once per sample.
const rotResync = 256

// RotateSoA applies the CFO phase ramp in place: sample i is rotated by
// exp(j·(phase + i·step)). It returns the phase after the last sample,
// accumulated by repeated addition exactly like the per-sample direct
// form, so streaming state carried through it stays consistent. The
// rotation itself advances by a complex recurrence with periodic resync
// (≤1e-9 of the direct form's per-sample cmplx.Exp).
func RotateSoA(re, im []float64, phase, step float64) float64 {
	if len(re) != len(im) {
		panic("dsp: RotateSoA length mismatch")
	}
	sinStep, cosStep := math.Sincos(step)
	wSin, wCos := math.Sincos(phase)
	cnt := 0
	for i := range re {
		a, b := re[i], im[i]
		re[i] = a*wCos - b*wSin
		im[i] = a*wSin + b*wCos
		phase += step
		cnt++
		if cnt == rotResync {
			wSin, wCos = math.Sincos(phase)
			cnt = 0
		} else {
			nc := wCos*cosStep - wSin*sinStep
			ns := wCos*sinStep + wSin*cosStep
			wCos, wSin = nc, ns
		}
	}
	return phase
}
