//go:build amd64

package dsp

// firMAC4 accumulates four consecutive taps into yr/yi across the whole
// block: for each i, yr[i]/yi[i] gain the tap contributions in ascending
// tap order (h0 first), with each contribution computed as
// hr*a − hi*b / hr*b + hi*a exactly like the direct form. xr/xi start at
// the window of the LAST of the four taps (the earliest input sample);
// tap j reads xr[i+3−j]. len(xr) and len(xi) must be ≥ len(yr)+3.
//
// The amd64 implementation is SSE2 (the Go amd64 baseline, so no feature
// detection): two outputs per iteration with packed MULPD/ADDPD/SUBPD,
// which are exact per-lane IEEE ops — no FMA contraction — so the result
// is bit-identical to the generic Go body.
//
//go:noescape
func firMAC4(yr, yi, xr, xi []float64, h0r, h0i, h1r, h1i, h2r, h2i, h3r, h3i float64)
