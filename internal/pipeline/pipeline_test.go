package pipeline_test

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/obs"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// buildChain constructs a representative relay-shaped chain: cancel →
// CFO remove → FIR → CFO restore → gain → delay → handoff marker.
func buildChain(taps, pre []complex128, step float64) (*pipeline.Chain, *pipeline.CancelStage) {
	cancel := pipeline.NewCancelStage("si_cancel", taps)
	ch := pipeline.NewChain("test.fwd",
		cancel,
		pipeline.NewCFOStage("cfo_remove", -step),
		pipeline.NewFIRStage("cnf_pre", pre),
		pipeline.NewCFOStage("cfo_restore", step),
		pipeline.NewGainStage("amp", complex(1.3, 0)),
		pipeline.NewDelayStage("pipe", 2),
		pipeline.NewLatencyMarker("handoff", 1),
	)
	return ch, cancel
}

func testSignal(src *rng.Source, n int) []complex128 {
	return src.NoiseVector(n, 1.0)
}

func randTaps(src *rng.Source, n int) []complex128 {
	t := make([]complex128, n)
	for i := range t {
		t[i] = src.ComplexGaussian(1.0 / float64(n))
	}
	return t
}

// TestBlockSizeInvariance is the segmentation property: blocks of size 1,
// 7, 64, and the whole signal must yield bit-identical output on the
// direct path, and the obs counters must agree modulo block counts.
func TestBlockSizeInvariance(t *testing.T) {
	src := rng.New(41)
	taps := randTaps(src, 24)
	pre := randTaps(src, 5)
	sig := testSignal(src, 1000)
	ref := testSignal(src, 1000)

	run := func(blockSize int, reg *obs.Registry) []complex128 {
		ch, cancel := buildChain(taps, pre, 0.01)
		ch.Instrument(pipeline.NewObs(reg), 0)
		cancel.SetReference(ref)
		out := make([]complex128, len(sig))
		copy(out, sig)
		for start := 0; start < len(out); start += blockSize {
			end := start + blockSize
			if end > len(out) {
				end = len(out)
			}
			ch.Process(out[start:end])
		}
		return out
	}

	whole := run(len(sig), nil)
	for _, bs := range []int{1, 7, 64} {
		reg := obs.New()
		got := run(bs, reg)
		for i := range whole {
			if got[i] != whole[i] {
				t.Fatalf("block size %d: sample %d = %v, want %v (bit-exact)", bs, i, got[i], whole[i])
			}
		}
		// Counters: samples must be exact; blocks counts the segmentation.
		samples := reg.Counter("pipeline.samples", "samples").Value()
		if samples != uint64(len(sig)) {
			t.Fatalf("block size %d: pipeline.samples = %d, want %d", bs, samples, len(sig))
		}
		wantBlocks := uint64((len(sig) + bs - 1) / bs)
		if blocks := reg.Counter("pipeline.blocks", "blocks").Value(); blocks != wantBlocks {
			t.Fatalf("block size %d: pipeline.blocks = %d, want %d", bs, blocks, wantBlocks)
		}
	}
}

// TestFIRStageMatchesDirectForm pins the direct path to dsp.FIR sample
// for sample.
func TestFIRStageMatchesDirectForm(t *testing.T) {
	src := rng.New(7)
	taps := randTaps(src, 120)
	sig := testSignal(src, 500)

	fir := dsp.NewFIR(taps)
	st := pipeline.NewFIRStage("fir", taps)
	got := make([]complex128, len(sig))
	copy(got, sig)
	st.Process(got)
	for i, v := range sig {
		want := fir.Push(v)
		if got[i] != want {
			t.Fatalf("sample %d: %v, want %v (bit-exact)", i, got[i], want)
		}
	}
}

// TestFFTPathMatchesDirect holds the overlap-save fast path to 1e-9 of
// the direct form, across mixed block sizes (so the shared delay-line
// state is exercised in both directions).
func TestFFTPathMatchesDirect(t *testing.T) {
	src := rng.New(11)
	taps := randTaps(src, 120)
	sig := testSignal(src, 4096)

	direct := pipeline.NewFIRStage("direct", taps)
	fast := pipeline.NewFIRStage("fast", taps)
	fast.EnableFFT()
	if !fast.FFTEnabled() {
		t.Fatal("FFT path did not arm for a 120-tap filter")
	}

	// Mixed segmentation: small blocks ride the direct form inside the
	// FFT-armed stage, large blocks take overlap-save.
	splits := []int{64, 1000, 17, 2048, 967}
	want := make([]complex128, len(sig))
	copy(want, sig)
	direct.Process(want)

	got := make([]complex128, len(sig))
	copy(got, sig)
	pos := 0
	for _, n := range splits {
		fast.Process(got[pos : pos+n])
		pos += n
	}
	fast.Process(got[pos:])

	var worst float64
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("FFT path diverges from direct form by %g (budget 1e-9)", worst)
	}
	if worst == 0 {
		t.Log("FFT path happened to be bit-exact on this signal")
	}
}

// TestFFTBlockCounter checks the fast path reports through
// pipeline.fft_blocks.
func TestFFTBlockCounter(t *testing.T) {
	src := rng.New(3)
	taps := randTaps(src, 32)
	sig := testSignal(src, 512)

	st := pipeline.NewFIRStage("fir", taps)
	st.EnableFFT()
	ch := pipeline.NewChain("test.fft", st)
	reg := obs.New()
	ch.Instrument(pipeline.NewObs(reg), 0)

	buf := append([]complex128(nil), sig...)
	ch.Process(buf[:16]) // below minBlock: direct
	ch.Process(buf[16:]) // above: overlap-save
	if got := reg.Counter("pipeline.fft_blocks", "blocks").Value(); got != 1 {
		t.Fatalf("pipeline.fft_blocks = %d, want 1", got)
	}
}

// TestChainLatencyAndBudget checks latency accounting and the soft
// budget check.
func TestChainLatencyAndBudget(t *testing.T) {
	ch, _ := buildChain([]complex128{0.1}, []complex128{1}, 0)
	if got := ch.LatencySamples(); got != 3 {
		t.Fatalf("LatencySamples = %d, want 3 (2 delay + 1 handoff)", got)
	}
	reg := obs.New()
	ch.Instrument(pipeline.NewObs(reg), 0)
	if !ch.CheckBudget(8) {
		t.Fatal("3-sample chain should fit an 8-sample CP budget")
	}
	if ch.CheckBudget(2) {
		t.Fatal("3-sample chain must not fit a 2-sample budget")
	}
	if got := reg.Counter("pipeline.budget_violations", "chains").Value(); got != 1 {
		t.Fatalf("pipeline.budget_violations = %d, want 1", got)
	}
	if got := reg.Histogram("pipeline.latency_samples", "samples", nil).Count(); got != 2 {
		t.Fatalf("latency histogram count = %d, want 2", got)
	}
}

// TestChainReset checks Reset returns the chain to its initial state.
func TestChainReset(t *testing.T) {
	src := rng.New(5)
	taps := randTaps(src, 16)
	pre := randTaps(src, 4)
	sig := testSignal(src, 200)
	ref := testSignal(src, 200)

	ch, cancel := buildChain(taps, pre, 0.02)
	run := func() []complex128 {
		cancel.SetReference(ref)
		out := append([]complex128(nil), sig...)
		return ch.Process(out)
	}
	first := run()
	ch.Reset()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("after Reset, sample %d = %v, want %v", i, second[i], first[i])
		}
	}
}

// TestCancelStagePushPairMatchesProcess pins the per-sample and block
// cancel paths to each other.
func TestCancelStagePushPairMatchesProcess(t *testing.T) {
	src := rng.New(13)
	taps := randTaps(src, 24)
	tx := testSignal(src, 300)
	rx := testSignal(src, 300)

	perSample := pipeline.NewCancelStage("a", taps)
	block := pipeline.NewCancelStage("b", taps)
	block.SetReference(tx)
	out := append([]complex128(nil), rx...)
	block.Process(out)
	for i := range rx {
		want := perSample.PushPair(tx[i], rx[i])
		if out[i] != want {
			t.Fatalf("sample %d: block %v, per-sample %v (bit-exact)", i, out[i], want)
		}
	}
}

// TestMIMOChainBlockInvariance is the segmentation property for the MIMO
// chain shape the 2×2 relay uses.
func TestMIMOChainBlockInvariance(t *testing.T) {
	src := rng.New(17)
	cancelTaps := [][][]complex128{
		{randTaps(src, 4), randTaps(src, 4)},
		{randTaps(src, 4), randTaps(src, 4)},
	}
	preTaps := [][][]complex128{
		{randTaps(src, 3), randTaps(src, 3)},
		{randTaps(src, 3), randTaps(src, 3)},
	}
	n := 600
	sig := [][]complex128{testSignal(src, n), testSignal(src, n)}
	ref := [][]complex128{testSignal(src, n), testSignal(src, n)}

	run := func(blockSize int) [][]complex128 {
		cancel := pipeline.NewMIMOCancelStage("si_cancel", 2, cancelTaps)
		ch := pipeline.NewMIMOChain("test.mimo",
			cancel,
			pipeline.NewMIMOMixStage("cnf_pre", 2, preTaps, true),
			pipeline.NewMIMOEachStage("amp",
				pipeline.NewGainStage("amp0", 1.1),
				pipeline.NewGainStage("amp1", 1.1)),
			pipeline.NewMIMOEachStage("pipe",
				pipeline.NewDelayStage("pipe0", 1),
				pipeline.NewDelayStage("pipe1", 1)),
		)
		out := [][]complex128{
			append([]complex128(nil), sig[0]...),
			append([]complex128(nil), sig[1]...),
		}
		cancel.SetReference([][]complex128{ref[0], ref[1]})
		for start := 0; start < n; start += blockSize {
			end := start + blockSize
			if end > n {
				end = n
			}
			ch.ProcessM([][]complex128{out[0][start:end], out[1][start:end]})
		}
		return out
	}

	whole := run(n)
	for _, bs := range []int{1, 7, 64} {
		got := run(bs)
		for s := 0; s < 2; s++ {
			for i := range whole[s] {
				if got[s][i] != whole[s][i] {
					t.Fatalf("block size %d stream %d sample %d: %v, want %v", bs, s, i, got[s][i], whole[s][i])
				}
			}
		}
	}
}

// TestVecMulAndTap checks the frequency-domain stages compose as the
// testbed uses them: start from hrd, multiply hc (tap), multiply hsr.
func TestVecMulAndTap(t *testing.T) {
	src := rng.New(23)
	n := 52
	hrd := testSignal(src, n)
	hc := testSignal(src, n)
	hsr := testSignal(src, n)

	tap := pipeline.NewTapStage("after_cnf")
	ch := pipeline.NewChain("test.freq",
		pipeline.NewVecMulStage("cnf", hc),
		tap,
		pipeline.NewVecMulStage("hop", hsr),
	)
	out := append([]complex128(nil), hrd...)
	ch.Process(out)
	for i := 0; i < n; i++ {
		if want := hrd[i] * hc[i] * hsr[i]; out[i] != want {
			t.Fatalf("carrier %d: %v, want %v (grouping must be (hrd·hc)·hsr)", i, out[i], want)
		}
		if want := hrd[i] * hc[i]; tap.Samples()[i] != want {
			t.Fatalf("tap %d: %v, want %v", i, tap.Samples()[i], want)
		}
	}
}

// TestPusherStage wraps a stateful per-sample processor and checks
// latency declaration plus reset.
func TestPusherStage(t *testing.T) {
	p := &countingPusher{}
	st := pipeline.NewPusherStage("imp", 0, p)
	ch := pipeline.NewChain("test.push", st)
	ch.Process(make([]complex128, 10))
	if p.n != 10 {
		t.Fatalf("pusher saw %d samples, want 10", p.n)
	}
	ch.Reset()
	if p.n != 0 {
		t.Fatal("reset did not reach the wrapped pusher")
	}
	if ch.LatencySamples() != 0 {
		t.Fatal("memoryless pusher must declare zero latency")
	}
}

type countingPusher struct{ n int }

func (p *countingPusher) Push(v complex128) complex128 { p.n++; return v }
func (p *countingPusher) Reset()                       { p.n = 0 }

// TestCFOStageRoundTrip checks remove∘restore is energy-preserving and
// the accumulated phase matches n·step.
func TestCFOStageRoundTrip(t *testing.T) {
	src := rng.New(29)
	sig := testSignal(src, 256)
	step := 0.037
	remove := pipeline.NewCFOStage("rm", -step)
	restore := pipeline.NewCFOStage("rs", step)
	out := append([]complex128(nil), sig...)
	remove.Process(out)
	restore.Process(out)
	for i := range sig {
		if d := cmplx.Abs(out[i] - sig[i]); d > 1e-12 {
			t.Fatalf("round trip error %g at %d", d, i)
		}
	}
	// One-stage rotation matches the closed form.
	single := pipeline.NewCFOStage("one", step)
	out2 := append([]complex128(nil), sig...)
	single.Process(out2)
	for i := range sig {
		want := sig[i] * cmplx.Exp(complex(0, float64(i)*step))
		if d := cmplx.Abs(out2[i] - want); d > 1e-9 {
			t.Fatalf("accumulated phase drifts from closed form by %g at %d", d, i)
		}
	}
}

// TestOvsaveStateHandoff checks switching direct→FFT→direct mid-stream
// keeps the shared delay line consistent (no seam at the boundaries).
func TestOvsaveStateHandoff(t *testing.T) {
	src := rng.New(31)
	taps := randTaps(src, 64)
	sig := testSignal(src, 1024)

	want := pipeline.NewFIRStage("ref", taps)
	ref := append([]complex128(nil), sig...)
	want.Process(ref)

	st := pipeline.NewFIRStage("mix", taps)
	st.EnableFFT()
	got := append([]complex128(nil), sig...)
	st.Process(got[:10])     // direct (below minBlock)
	st.Process(got[10:700])  // FFT
	st.Process(got[700:710]) // direct again
	st.Process(got[710:])    // FFT
	var worst float64
	for i := range ref {
		if d := cmplx.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 || math.IsNaN(worst) {
		t.Fatalf("mixed direct/FFT processing diverges by %g", worst)
	}
}
