package pipeline

import (
	"fastforward/internal/dsp"
)

// minSoATaps is the filter length below which the planar SoA path is not
// armed: with a handful of taps the per-block conversion passes cost more
// than the branch-free MAC saves.
const minSoATaps = 4

// minSoABlock gates the SoA path per block: shorter blocks (and the
// relay's one-sample feedback drive) stay on the direct form, whose
// per-sample cost is already low at those sizes.
const minSoABlock = 32

// soaFFTCrossoverTaps arbitrates between the two block fast paths when
// both are armed: below this filter length the planar MAC wins, at or
// above it overlap-save does. The SoA kernel's per-sample cost grows
// linearly with the tap count (~0.5 ns/tap on baseline SSE2 hardware)
// while overlap-save stays roughly flat (~35-45 ns/sample, its FFT size
// tracking the filter length), so the measured crossover sits near 80
// taps. The constant is a coarse host-calibrated estimate; both paths
// meet the same ≤1e-9 tolerance, so a miss costs time, not correctness.
const soaFFTCrossoverTaps = 80

// rotResync mirrors dsp's phasor resync interval for the CFO stage's
// incremental rotator: recurrence drift over 256 complex multiplies
// stays orders of magnitude inside the 1e-9 fast-path tolerance.
const rotResync = 256

// soaFIR is the planar (structure-of-arrays) engine behind FIRStage's
// second fast path. Like ovSave it owns no streaming state: each filter
// call reads the direct-form delay line for the T−1 samples of input
// history and writes the new tail back, so direct, FFT, and SoA
// processing interleave freely and a Reset of the FIR resets all paths.
//
// Numerics: the planar MAC accumulates in the direct form's exact order
// (ascending tap index), so it is bit-exact with FIR.Push on targets
// without implicit FMA contraction and within the ≤1e-9 fast-path
// tolerance everywhere (enforced by test and fuzz).
type soaFIR struct {
	hr, hi []float64
	// ext stages history + block in complex form for the delay-line
	// handoff; xr/xi/yr/yi are the planar scratch. All grow once and are
	// reused (zero allocations at steady state).
	ext    []complex128
	xr, xi []float64
	yr, yi []float64
	// minBlock gates the fast path.
	minBlock int
}

func newSoAFIR(taps []complex128) *soaFIR {
	o := &soaFIR{
		hr:       make([]float64, len(taps)),
		hi:       make([]float64, len(taps)),
		minBlock: minSoABlock,
	}
	dsp.Deinterleave(o.hr, o.hi, taps)
	return o
}

// stage grows the scratch for an l-sample block and deinterleaves the
// history+block extended input, returning the planar views. The caller
// must LoadRecent the ext tail afterwards to refresh the delay line.
func (o *soaFIR) stage(f *dsp.FIR, block []complex128) (xr, xi []float64, need int) {
	t := len(o.hr)
	l := len(block)
	need = t - 1 + l
	if cap(o.ext) < need {
		o.ext = make([]complex128, need)
		o.xr = make([]float64, need)
		o.xi = make([]float64, need)
	}
	if cap(o.yr) < l {
		o.yr = make([]float64, l)
		o.yi = make([]float64, l)
	}
	ext := o.ext[:need]
	f.Recent(ext[:t-1])
	copy(ext[t-1:], block)
	xr, xi = o.xr[:need], o.xi[:need]
	dsp.Deinterleave(xr, xi, ext)
	return xr, xi, need
}

// filter runs the planar MAC over block in place, keeping f's delay line
// consistent for the next call on any path.
func (o *soaFIR) filter(f *dsp.FIR, block []complex128) {
	yr, yi := o.filterPlanar(f, block)
	dsp.Interleave(block, yr, yi)
}

// filterPlanar is filter without the egress conversion: it returns the
// planar output views (valid until the next call), which lets the cancel
// stage subtract in the planar domain before converting once.
func (o *soaFIR) filterPlanar(f *dsp.FIR, block []complex128) (yr, yi []float64) {
	t := len(o.hr)
	l := len(block)
	xr, xi, need := o.stage(f, block)
	yr, yi = o.yr[:l], o.yi[:l]
	dsp.FIRFilterSoA(yr, yi, xr, xi, o.hr, o.hi)
	f.LoadRecent(o.ext[need-t : need])
	return yr, yi
}
