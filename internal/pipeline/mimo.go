package pipeline

import (
	"fastforward/internal/dsp"
	"fastforward/internal/obs"
)

// MIMOStage is the K-stream counterpart of Stage: ProcessM transforms one
// block per stream (equal lengths), in place, preserving streaming state
// across calls. The 2×2 relay of Fig 8 composes these.
type MIMOStage interface {
	Name() string
	ProcessM(blocks [][]complex128) [][]complex128
	Reset()
	LatencySamples() int
}

// MIMOChain composes MIMOStages, mirroring Chain: latencies add, blocks
// flow through in order, and instrumentation emits the same pipeline.*
// metrics and per-stage timers.
type MIMOChain struct {
	name   string
	stages []MIMOStage
	o      *Obs
	shard  int
	timers []*obs.StageTimer
}

// NewMIMOChain builds a chain over the given stages.
func NewMIMOChain(name string, stages ...MIMOStage) *MIMOChain {
	return &MIMOChain{name: name, stages: stages}
}

// Name returns the chain name.
func (c *MIMOChain) Name() string { return c.name }

// Stages returns the chain's stages (shared, not a copy).
func (c *MIMOChain) Stages() []MIMOStage { return c.stages }

// LatencySamples sums the stages' latencies.
func (c *MIMOChain) LatencySamples() int {
	total := 0
	for _, st := range c.stages {
		total += st.LatencySamples()
	}
	return total
}

// Instrument attaches pipeline metrics and per-stage timers; see
// Chain.Instrument.
func (c *MIMOChain) Instrument(o *Obs, shard int) {
	c.o = o
	c.shard = shard
	c.timers = nil
	if o == nil || o.reg == nil {
		return
	}
	c.timers = make([]*obs.StageTimer, len(c.stages))
	for i, st := range c.stages {
		c.timers[i] = o.reg.Timer("pipeline." + c.name + "." + st.Name())
	}
}

// ProcessM runs the per-stream blocks through every stage in order.
func (c *MIMOChain) ProcessM(blocks [][]complex128) [][]complex128 {
	if c.o != nil {
		c.o.Blocks.Inc(c.shard)
		n := 0
		for _, b := range blocks {
			n += len(b)
		}
		c.o.Samples.Add(c.shard, uint64(n))
	}
	if c.timers != nil {
		for i, st := range c.stages {
			start := obs.NowNanos()
			blocks = st.ProcessM(blocks)
			c.timers[i].AddNS(obs.NowNanos() - start)
		}
		return blocks
	}
	for _, st := range c.stages {
		blocks = st.ProcessM(blocks)
	}
	return blocks
}

// Reset clears every stage's streaming state.
func (c *MIMOChain) Reset() {
	for _, st := range c.stages {
		st.Reset()
	}
}

// CheckBudget records the chain latency against a sample budget; see
// Chain.CheckBudget.
func (c *MIMOChain) CheckBudget(budgetSamples int) bool {
	lat := c.LatencySamples()
	if c.o != nil {
		c.o.Latency.Observe(c.shard, float64(lat))
		if lat > budgetSamples {
			c.o.Violations.Inc(c.shard)
		}
	}
	return lat <= budgetSamples
}

// mimoBank builds the K×K FIR bank firs[out][in] from a tap matrix.
// Missing entries are zero filters; identity puts a unit impulse on the
// diagonal (identity forwarding).
func mimoBank(k int, taps [][][]complex128, identity bool) [][]*dsp.FIR {
	firs := make([][]*dsp.FIR, k)
	for i := 0; i < k; i++ {
		firs[i] = make([]*dsp.FIR, k)
		for j := 0; j < k; j++ {
			var t []complex128
			if taps != nil && i < len(taps) && j < len(taps[i]) && len(taps[i][j]) > 0 {
				t = taps[i][j]
			} else if identity && i == j {
				t = []complex128{1}
			} else {
				t = []complex128{0}
			}
			firs[i][j] = dsp.NewFIR(t)
		}
	}
	return firs
}

// MIMOMixStage is the K×K FIR mixing stage: out[i] = Σ_j fir[i][j](in[j])
// — the CNF pre-filter block of the 2×2 relay. Accumulation runs j
// ascending per output, matching the per-sample loop it replaced
// bit-exactly.
type MIMOMixStage struct {
	name string
	firs [][]*dsp.FIR
	xs   []complex128
	acc  []complex128
}

// NewMIMOMixStage builds a K-stream mixer from taps[out][in] (nil inner
// entries are zero; a nil matrix with identity=true forwards each stream
// unchanged).
func NewMIMOMixStage(name string, k int, taps [][][]complex128, identity bool) *MIMOMixStage {
	return &MIMOMixStage{
		name: name,
		firs: mimoBank(k, taps, identity),
		xs:   make([]complex128, k),
		acc:  make([]complex128, k),
	}
}

// Name returns the stage name.
func (s *MIMOMixStage) Name() string { return s.name }

// LatencySamples is 0: every pair filter is causal.
func (s *MIMOMixStage) LatencySamples() int { return 0 }

// ProcessM mixes the blocks in place.
func (s *MIMOMixStage) ProcessM(blocks [][]complex128) [][]complex128 {
	k := len(s.firs)
	n := len(blocks[0])
	for t := 0; t < n; t++ {
		for j := 0; j < k; j++ {
			s.xs[j] = blocks[j][t]
		}
		for i := 0; i < k; i++ {
			var acc complex128
			for j := 0; j < k; j++ {
				acc += s.firs[i][j].Push(s.xs[j])
			}
			s.acc[i] = acc
		}
		for i := 0; i < k; i++ {
			blocks[i][t] = s.acc[i]
		}
	}
	return blocks
}

// Reset clears every pair filter.
func (s *MIMOMixStage) Reset() {
	for i := range s.firs {
		for j := range s.firs[i] {
			s.firs[i][j].Reset()
		}
	}
}

// MIMOCancelStage is the 2×2 causal digital cancellation block: each
// receive stream subtracts every transmit stream's estimated leakage,
// out[i] = in[i] − Σ_j fir[i][j](ref[j]), with the subtractions running j
// ascending as in the per-sample loop it replaced. The reference streams
// (the transmitted samples) are consumed incrementally like
// CancelStage's.
type MIMOCancelStage struct {
	name string
	firs [][]*dsp.FIR
	ref  [][]complex128
	rs   []complex128
}

// NewMIMOCancelStage builds the canceller from taps[rx][tx].
func NewMIMOCancelStage(name string, k int, taps [][][]complex128) *MIMOCancelStage {
	return &MIMOCancelStage{
		name: name,
		firs: mimoBank(k, taps, false),
		rs:   make([]complex128, k),
	}
}

// Name returns the stage name.
func (s *MIMOCancelStage) Name() string { return s.name }

// LatencySamples is 0.
func (s *MIMOCancelStage) LatencySamples() int { return 0 }

// SetReference supplies the per-stream transmitted samples the following
// ProcessM calls cancel against. Slice headers are copied; the sample
// data is consumed in place.
func (s *MIMOCancelStage) SetReference(ref [][]complex128) {
	if cap(s.ref) < len(ref) {
		s.ref = make([][]complex128, len(ref))
	}
	s.ref = s.ref[:len(ref)]
	copy(s.ref, ref)
}

// ProcessM cancels the blocks in place, consuming reference samples.
func (s *MIMOCancelStage) ProcessM(blocks [][]complex128) [][]complex128 {
	k := len(s.firs)
	n := len(blocks[0])
	for j := 0; j < k; j++ {
		if len(s.ref[j]) < n {
			panic("pipeline: MIMOCancelStage reference shorter than block")
		}
	}
	for t := 0; t < n; t++ {
		for j := 0; j < k; j++ {
			s.rs[j] = s.ref[j][t]
		}
		for i := 0; i < k; i++ {
			v := blocks[i][t]
			for j := 0; j < k; j++ {
				v -= s.firs[i][j].Push(s.rs[j])
			}
			blocks[i][t] = v
		}
	}
	for j := 0; j < k; j++ {
		s.ref[j] = s.ref[j][n:]
	}
	return blocks
}

// Reset clears the pair filters and drops any unconsumed reference.
func (s *MIMOCancelStage) Reset() {
	for i := range s.firs {
		for j := range s.firs[i] {
			s.firs[i][j].Reset()
		}
	}
	s.ref = nil
}

// MIMOEachStage applies one scalar Stage per stream — per-antenna gain,
// delay, or impairment wrapping. All per-stream stages must declare the
// same latency (streams must stay aligned).
type MIMOEachStage struct {
	name   string
	stages []Stage
}

// NewMIMOEachStage wraps stages[i] around stream i.
func NewMIMOEachStage(name string, stages ...Stage) *MIMOEachStage {
	for _, st := range stages[1:] {
		if st.LatencySamples() != stages[0].LatencySamples() {
			panic("pipeline: MIMOEachStage streams must have equal latency")
		}
	}
	return &MIMOEachStage{name: name, stages: stages}
}

// Name returns the stage name.
func (s *MIMOEachStage) Name() string { return s.name }

// LatencySamples returns the shared per-stream latency.
func (s *MIMOEachStage) LatencySamples() int { return s.stages[0].LatencySamples() }

// ProcessM applies each stream's stage in place.
func (s *MIMOEachStage) ProcessM(blocks [][]complex128) [][]complex128 {
	for i := range s.stages {
		blocks[i] = s.stages[i].Process(blocks[i])
	}
	return blocks
}

// Reset clears every per-stream stage.
func (s *MIMOEachStage) Reset() {
	for _, st := range s.stages {
		st.Reset()
	}
}

// mimoMarker mirrors markerStage for MIMO chains.
type mimoMarker struct {
	name string
	lat  int
}

// NewMIMOLatencyMarker declares out-of-chain latency in a MIMO chain.
func NewMIMOLatencyMarker(name string, samples int) MIMOStage {
	return &mimoMarker{name: name, lat: samples}
}

func (s *mimoMarker) Name() string                                  { return s.name }
func (s *mimoMarker) LatencySamples() int                           { return s.lat }
func (s *mimoMarker) ProcessM(blocks [][]complex128) [][]complex128 { return blocks }
func (s *mimoMarker) Reset()                                        {}
