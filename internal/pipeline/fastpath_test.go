package pipeline_test

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/obs"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

func maxDiff(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestSoAPathMatchesDirect holds the planar SoA fast path to 1e-9 of the
// direct form across mixed block sizes: small blocks fall back to the
// direct form inside the SoA-armed stage, so the shared delay-line state
// hands off in both directions.
func TestSoAPathMatchesDirect(t *testing.T) {
	src := rng.New(19)
	for _, ntaps := range []int{4, 17, 120} {
		taps := randTaps(src, ntaps)
		sig := testSignal(src, 4096)

		direct := pipeline.NewFIRStage("direct", taps)
		fast := pipeline.NewFIRStage("fast", taps)
		fast.EnableSoA()
		if !fast.SoAEnabled() {
			t.Fatalf("SoA path did not arm for a %d-tap filter", ntaps)
		}
		if fast.FFTEnabled() {
			t.Fatal("EnableSoA must not arm the FFT path")
		}

		want := make([]complex128, len(sig))
		copy(want, sig)
		direct.Process(want)

		got := make([]complex128, len(sig))
		copy(got, sig)
		pos := 0
		// 7 and 17 ride the direct form (below minSoABlock); the rest take
		// the planar kernel.
		for _, n := range []int{64, 7, 1000, 17, 2048, 900} {
			fast.Process(got[pos : pos+n])
			pos += n
		}
		fast.Process(got[pos:])

		if worst := maxDiff(got, want); worst > 1e-9 {
			t.Fatalf("%d taps: SoA path diverges from direct form by %g (budget 1e-9)", ntaps, worst)
		}
	}
}

// TestSoABlockCounter checks the planar path reports through
// pipeline.soa_blocks.
func TestSoABlockCounter(t *testing.T) {
	src := rng.New(23)
	taps := randTaps(src, 32)
	sig := testSignal(src, 512)

	st := pipeline.NewFIRStage("fir", taps)
	st.EnableSoA()
	ch := pipeline.NewChain("soa", st)
	reg := obs.New()
	ch.Instrument(pipeline.NewObs(reg), 0)

	ch.Process(sig[:256])    // planar
	ch.Process(sig[256:264]) // below minSoABlock: direct
	ch.Process(sig[264:])    // planar

	if got := reg.Counter("pipeline.soa_blocks", "blocks").Value(); got != 2 {
		t.Fatalf("pipeline.soa_blocks = %d, want 2", got)
	}
}

// TestCancelSoAMatchesDirect exercises the cancel stage's planar branch
// (filter the reference and subtract without leaving the planar domain).
func TestCancelSoAMatchesDirect(t *testing.T) {
	src := rng.New(29)
	taps := randTaps(src, 64)
	sig := testSignal(src, 2000)
	ref := testSignal(src, 2000)

	run := func(soa bool) []complex128 {
		c := pipeline.NewCancelStage("cancel", taps)
		if soa {
			c.EnableSoA()
			if !c.SoAEnabled() {
				t.Fatal("cancel SoA path did not arm")
			}
		}
		c.SetReference(ref)
		out := make([]complex128, len(sig))
		copy(out, sig)
		pos := 0
		for _, n := range []int{512, 9, 700, 41, 500} {
			c.Process(out[pos : pos+n])
			pos += n
		}
		c.Process(out[pos:])
		return out
	}

	want := run(false)
	got := run(true)
	if worst := maxDiff(got, want); worst > 1e-9 {
		t.Fatalf("cancel SoA path diverges by %g (budget 1e-9)", worst)
	}
}

// TestCFOFastRotatorMatchesDirect holds the incremental rotator (with its
// periodic phase resync) to 1e-9 of the per-sample cmplx.Exp form, across
// Reset and mixed segmentation.
func TestCFOFastRotatorMatchesDirect(t *testing.T) {
	step := 2 * math.Pi * 1500 / 20e6
	src := rng.New(31)
	sig := testSignal(src, 3000)

	run := func(fast bool) []complex128 {
		st := pipeline.NewCFOStage("cfo", step)
		if fast {
			st.EnableFastPath()
		}
		out := make([]complex128, len(sig))
		copy(out, sig)
		pos := 0
		for _, n := range []int{1, 255, 256, 257, 1000} {
			st.Process(out[pos : pos+n])
			pos += n
		}
		st.Process(out[pos:])
		// Reset must rewind the phase on both paths.
		st.Reset()
		st.Process(out[:8])
		copy(out[:8], sig[:8])
		return out
	}

	want := run(false)
	got := run(true)
	if worst := maxDiff(got, want); worst > 1e-9 {
		t.Fatalf("fast rotator diverges by %g (budget 1e-9)", worst)
	}
}

// TestChainFastPathMatchesDirect arms every fast path on a relay-shaped
// chain at once and holds the result to 1e-9 of the all-direct chain.
func TestChainFastPathMatchesDirect(t *testing.T) {
	src := rng.New(37)
	taps := randTaps(src, 120)
	pre := randTaps(src, 16)
	sig := testSignal(src, 4096)
	ref := testSignal(src, 4096)

	run := func(fast bool) []complex128 {
		ch, cancel := buildChain(taps, pre, 2*math.Pi*1500/20e6)
		if fast {
			ch.EnableFastPath()
		}
		cancel.SetReference(ref)
		out := make([]complex128, len(sig))
		copy(out, sig)
		for pos := 0; pos < len(out); pos += 1024 {
			ch.Process(out[pos : pos+1024])
		}
		return out
	}

	want := run(false)
	got := run(true)
	if worst := maxDiff(got, want); worst > 1e-9 {
		t.Fatalf("chain fast path diverges by %g (budget 1e-9)", worst)
	}
}

// buildSessions constructs n identical-shape session chains with
// per-session taps, the way the multi-session sweep does.
func buildSessions(seed int64, n, ntaps, npre, blockLen int) ([]*pipeline.Chain, []*pipeline.CancelStage, [][]complex128, [][]complex128) {
	chains := make([]*pipeline.Chain, n)
	cancels := make([]*pipeline.CancelStage, n)
	txs := make([][]complex128, n)
	rxs := make([][]complex128, n)
	for i := 0; i < n; i++ {
		src := rng.New(rng.ItemSeed(seed, i))
		chains[i], cancels[i] = buildChain(randTaps(src, ntaps), randTaps(src, npre), 0.003)
		txs[i] = testSignal(src, blockLen)
		rxs[i] = testSignal(src, blockLen)
	}
	return chains, cancels, txs, rxs
}

// TestBatchMatchesSequential proves the batched executor is bit-identical
// to advancing the same chains one by one: the stage sweep reorders which
// stage runs when across sessions, but each chain's state is private, so
// every sample is computed by the same operations in the same order.
// Runs on both the direct and fast paths, instrumented.
func TestBatchMatchesSequential(t *testing.T) {
	const (
		nSessions = 4
		blockLen  = 256
		nBlocks   = 8
	)
	for _, fast := range []bool{false, true} {
		// Sequential reference.
		seqChains, seqCancels, txs, rxs := buildSessions(97, nSessions, 48, 9, blockLen)
		seqOut := make([][]complex128, nSessions)
		seqReg := obs.New()
		seqObs := pipeline.NewObs(seqReg)
		for i, ch := range seqChains {
			ch.Instrument(seqObs, 0)
			if fast {
				ch.EnableFastPath()
			}
			seqOut[i] = make([]complex128, blockLen)
		}
		// Batched run over identically-seeded chains.
		batChains, batCancels, _, _ := buildSessions(97, nSessions, 48, 9, blockLen)
		batch := pipeline.NewBatch("bat", batChains...)
		batReg := obs.New()
		batch.Instrument(pipeline.NewObs(batReg), 0)
		if fast {
			batch.EnableFastPath()
		}
		blocks := make([][]complex128, nSessions)
		for i := range blocks {
			blocks[i] = make([]complex128, blockLen)
		}

		for blk := 0; blk < nBlocks; blk++ {
			for i := 0; i < nSessions; i++ {
				copy(seqOut[i], rxs[i])
				seqCancels[i].SetReference(txs[i])
				seqChains[i].Process(seqOut[i])

				copy(blocks[i], rxs[i])
				batCancels[i].SetReference(txs[i])
			}
			batch.ProcessAll(blocks)
			for i := 0; i < nSessions; i++ {
				for j := range blocks[i] {
					if blocks[i][j] != seqOut[i][j] {
						t.Fatalf("fast=%v block %d session %d sample %d: batch %v, sequential %v (bit-exact)",
							fast, blk, i, j, blocks[i][j], seqOut[i][j])
					}
				}
			}
		}

		// The batch records the same block/sample totals as the sequential
		// chains, plus its sweep counters.
		for _, m := range []struct {
			name, unit string
			want       uint64
		}{
			{"pipeline.blocks", "blocks", nSessions * nBlocks},
			{"pipeline.samples", "samples", nSessions * nBlocks * blockLen},
			{"pipeline.batch.sweeps", "sweeps", nBlocks},
			{"pipeline.batch.sessions", "blocks", nSessions * nBlocks},
		} {
			if got := batReg.Counter(m.name, m.unit).Value(); got != m.want {
				t.Fatalf("fast=%v: %s = %d, want %d", fast, m.name, got, m.want)
			}
		}
		if got := seqReg.Counter("pipeline.blocks", "blocks").Value(); got != nSessions*nBlocks {
			t.Fatalf("sequential pipeline.blocks = %d, want %d", got, nSessions*nBlocks)
		}
	}
}

// TestBatchStageCountMismatch pins the lockstep precondition.
func TestBatchStageCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatch accepted chains with unequal stage counts")
		}
	}()
	a := pipeline.NewChain("a", pipeline.NewGainStage("g", 1))
	b := pipeline.NewChain("b", pipeline.NewGainStage("g", 1), pipeline.NewGainStage("g2", 1))
	pipeline.NewBatch("bad", a, b)
}

// TestBlockPool checks Get returns zeroed blocks and reuses recycled
// capacity.
func TestBlockPool(t *testing.T) {
	var p pipeline.BlockPool
	b := p.Get(64)
	if len(b) != 64 {
		t.Fatalf("Get(64) len = %d", len(b))
	}
	for i := range b {
		b[i] = complex(1, 1)
	}
	p.Put(b)
	c := p.Get(32)
	if cap(c) < 64 {
		t.Fatal("Get did not reuse the recycled block")
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled block not zeroed at %d: %v", i, v)
		}
	}
}

// TestSessionSweep smoke-tests the real-time search on a tiny config:
// the probe sequence must bracket the answer and the gauge must publish.
func TestSessionSweep(t *testing.T) {
	reg := obs.New()
	res := pipeline.RunSessionSweep(reg, pipeline.SessionConfig{
		BlockSamples:  256,
		CancelTaps:    8,
		CNFTaps:       4,
		Seed:          5,
		WarmSweeps:    1,
		MeasureSweeps: 2,
		MaxSessions:   8,
		FastPath:      true,
	})
	if len(res.Probes) == 0 {
		t.Fatal("sweep recorded no probes")
	}
	if res.Sessions < 0 || res.Sessions > 8 {
		t.Fatalf("Sessions = %d, want 0..8", res.Sessions)
	}
	if res.DeadlineNS != 256/20e6*1e9 {
		t.Fatalf("DeadlineNS = %g", res.DeadlineNS)
	}
	g, ok := reg.Gauge("pipeline.sessions_per_core", "sessions").Value()
	if !ok {
		t.Fatal("pipeline.sessions_per_core gauge not set")
	}
	if g != float64(res.Sessions) {
		t.Fatalf("gauge = %g, want %d", g, res.Sessions)
	}
	for _, p := range res.Probes {
		if p.RealTime != (p.NSPerSweep <= res.DeadlineNS) {
			t.Fatalf("probe %+v inconsistent with deadline %g", p, res.DeadlineNS)
		}
	}
}
