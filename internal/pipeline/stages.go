package pipeline

import (
	"math"
	"math/cmplx"

	"fastforward/internal/dsp"
	"fastforward/internal/obs"
)

// FIRStage is a causal streaming FIR filter stage (zero buffering delay:
// tap 0 applies to the current sample, as the paper's digital canceller
// requires, Fig 9a). The default path is the direct form — bit-identical
// to dsp.FIR.Push. Two opt-in fast paths share the same delay-line state
// and so mix freely with it across calls: EnableFFT arms overlap-save
// FFT convolution (long filters), EnableSoA arms the planar
// structure-of-arrays MAC kernel (short filters, small blocks). When
// both are armed and eligible the cheaper one wins: planar MAC below
// soaFFTCrossoverTaps, overlap-save at or above it.
type FIRStage struct {
	name      string
	fir       *dsp.FIR
	ov        *ovSave
	soa       *soaFIR
	fftBlocks *obs.Counter
	soaBlocks *obs.Counter
	shard     int
}

// NewFIRStage builds a FIR stage with the given taps (copied).
func NewFIRStage(name string, taps []complex128) *FIRStage {
	return &FIRStage{name: name, fir: dsp.NewFIR(taps)}
}

// Name returns the stage name.
func (s *FIRStage) Name() string { return s.name }

// LatencySamples is 0: the filter is causal with an immediate tap 0.
func (s *FIRStage) LatencySamples() int { return 0 }

// NumTaps returns the filter length.
func (s *FIRStage) NumTaps() int { return s.fir.NumTaps() }

// Taps returns a copy of the filter taps.
func (s *FIRStage) Taps() []complex128 { return s.fir.Taps() }

// EnableFFT switches block processing onto the overlap-save fast path.
// Blocks shorter than the filter (and all Push calls) keep the direct
// form. No-op for filters too short to gain from it.
func (s *FIRStage) EnableFFT() {
	if s.ov == nil && s.fir.NumTaps() >= minFFTTaps {
		s.ov = newOvSave(s.fir.Taps())
	}
}

// FFTEnabled reports whether the fast path is armed.
func (s *FIRStage) FFTEnabled() bool { return s.ov != nil }

// EnableSoA arms the planar structure-of-arrays fast path for block
// processing (≤1e-9 of the direct form; see DESIGN.md §9). Blocks
// shorter than minSoABlock, and all Push calls, keep the direct form.
// No-op for filters too short to gain from it.
func (s *FIRStage) EnableSoA() {
	if s.soa == nil && s.fir.NumTaps() >= minSoATaps {
		s.soa = newSoAFIR(s.fir.Taps())
	}
}

// SoAEnabled reports whether the planar fast path is armed.
func (s *FIRStage) SoAEnabled() bool { return s.soa != nil }

// EnableFastPath arms every fast path the filter length supports —
// overlap-save FFT for long filters, the planar SoA kernel otherwise.
func (s *FIRStage) EnableFastPath() {
	s.EnableFFT()
	s.EnableSoA()
}

func (s *FIRStage) setFFTObs(c *obs.Counter, shard int) {
	s.fftBlocks = c
	s.shard = shard
}

func (s *FIRStage) setSoAObs(c *obs.Counter, shard int) {
	s.soaBlocks = c
	s.shard = shard
}

// Push filters one sample through the direct form.
func (s *FIRStage) Push(x complex128) complex128 { return s.fir.Push(x) }

// useFFT decides whether an n-sample block takes the overlap-save path:
// it must be armed and eligible, and when the planar MAC is also armed
// and eligible the filter must be long enough for frequency-domain
// convolution to beat it (soaFFTCrossoverTaps).
func (s *FIRStage) useFFT(n int) bool {
	if s.ov == nil || n < s.ov.minBlock {
		return false
	}
	if s.soa != nil && n >= s.soa.minBlock && s.fir.NumTaps() < soaFFTCrossoverTaps {
		return false
	}
	return true
}

// Process filters the block in place.
func (s *FIRStage) Process(block []complex128) []complex128 {
	if s.useFFT(len(block)) {
		s.ov.filter(s.fir, block)
		if s.fftBlocks != nil {
			s.fftBlocks.Inc(s.shard)
		}
		return block
	}
	if s.soa != nil && len(block) >= s.soa.minBlock {
		s.soa.filter(s.fir, block)
		if s.soaBlocks != nil {
			s.soaBlocks.Inc(s.shard)
		}
		return block
	}
	for i, v := range block {
		block[i] = s.fir.Push(v)
	}
	return block
}

// Reset clears the delay line.
func (s *FIRStage) Reset() { s.fir.Reset() }

// CancelStage subtracts a FIR-filtered reference from the block:
// out[n] = in[n] − Σ_k h[k]·ref[n−k]. This is the causal digital
// self-interference canceller as a stage: the block is the received
// signal, the reference is the known transmitted signal. SetReference
// must supply at least as many reference samples as the blocks that
// follow consume; segmented processing consumes the reference
// incrementally, so one SetReference call covers any block split.
type CancelStage struct {
	name string
	fir  *FIRStage
	ref  []complex128
	est  []complex128
	// br/bi hold the received block in planar form on the SoA path, so
	// the estimate subtracts without leaving the planar domain (one
	// conversion pass each way per block). Grow once, reused.
	br, bi []float64
}

// NewCancelStage builds the canceller from estimated leakage taps.
func NewCancelStage(name string, taps []complex128) *CancelStage {
	return &CancelStage{name: name, fir: NewFIRStage(name+"_fir", taps)}
}

// Name returns the stage name.
func (s *CancelStage) Name() string { return s.name }

// LatencySamples is 0: cancellation buffers no received samples.
func (s *CancelStage) LatencySamples() int { return 0 }

// NumTaps returns the canceller length.
func (s *CancelStage) NumTaps() int { return s.fir.NumTaps() }

// EnableFFT arms the overlap-save fast path of the underlying filter.
func (s *CancelStage) EnableFFT() { s.fir.EnableFFT() }

// FFTEnabled reports whether the fast path is armed.
func (s *CancelStage) FFTEnabled() bool { return s.fir.FFTEnabled() }

// EnableSoA arms the planar fast path: the reference filters through the
// SoA MAC kernel and subtracts from the block in the planar domain.
func (s *CancelStage) EnableSoA() { s.fir.EnableSoA() }

// SoAEnabled reports whether the planar fast path is armed.
func (s *CancelStage) SoAEnabled() bool { return s.fir.SoAEnabled() }

// EnableFastPath arms every fast path the canceller length supports.
func (s *CancelStage) EnableFastPath() { s.fir.EnableFastPath() }

func (s *CancelStage) setFFTObs(c *obs.Counter, shard int) { s.fir.setFFTObs(c, shard) }

func (s *CancelStage) setSoAObs(c *obs.Counter, shard int) { s.fir.setSoAObs(c, shard) }

// SetReference supplies the transmitted samples the following Process
// calls cancel against. The slice is consumed, not copied: keep it alive
// until processed.
func (s *CancelStage) SetReference(tx []complex128) { s.ref = tx }

// PushPair cancels one sample: rx minus the filtered tx reference.
func (s *CancelStage) PushPair(tx, rx complex128) complex128 {
	return rx - s.fir.Push(tx)
}

// Process cancels the block in place, consuming len(block) reference
// samples.
func (s *CancelStage) Process(block []complex128) []complex128 {
	if len(s.ref) < len(block) {
		panic("pipeline: CancelStage reference shorter than block")
	}
	ref := s.ref[:len(block)]
	s.ref = s.ref[len(block):]
	// Planar path: filter the reference through the SoA MAC and subtract
	// before converting back — one interleave round trip for the whole
	// stage. Skipped when the stage's arbitration picks overlap-save
	// (filters past the crossover convolve faster in the frequency
	// domain).
	if o := s.fir.soa; o != nil && len(block) >= o.minBlock && !s.fir.useFFT(len(block)) {
		er, ei := o.filterPlanar(s.fir.fir, ref)
		if cap(s.br) < len(block) {
			s.br = make([]float64, len(block))
			s.bi = make([]float64, len(block))
		}
		br, bi := s.br[:len(block)], s.bi[:len(block)]
		dsp.Deinterleave(br, bi, block)
		dsp.SubInPlaceSoA(br, bi, er, ei)
		dsp.Interleave(block, br, bi)
		if s.fir.soaBlocks != nil {
			s.fir.soaBlocks.Inc(s.fir.shard)
		}
		return block
	}
	if cap(s.est) < len(block) {
		s.est = make([]complex128, len(block))
	}
	est := s.est[:len(block)]
	copy(est, ref)
	s.fir.Process(est)
	for i := range block {
		block[i] -= est[i]
	}
	return block
}

// Reset clears filter state and drops any unconsumed reference.
func (s *CancelStage) Reset() {
	s.fir.Reset()
	s.ref = nil
}

// CFOStage rotates the block by a per-sample phase ramp: y[n] = x[n] ·
// exp(j·n·step), with the phase accumulating across calls. A negative
// step removes a carrier-frequency offset; the positive step restores it
// (Sec 4.1). Accumulating the signed step reproduces the relay's shared
// phase accumulator bit-exactly (IEEE negation distributes over addition).
//
// The default path evaluates cmplx.Exp per sample — the bit-exact
// reference. EnableFastPath arms an incremental phasor: one complex
// multiply per sample with a sin/cos resync every rotResync samples,
// held to ≤1e-9 of the direct form. The phase accumulator advances
// identically on both paths, so they mix freely across calls.
type CFOStage struct {
	name  string
	step  float64
	phase float64
	// fast-rotator state: w = exp(j·phase) for the next sample, rot =
	// exp(j·step), cnt counts recurrence steps since the last resync.
	fast           bool
	wCos, wSin     float64
	rotCos, rotSin float64
	cnt            int
}

// NewCFOStage builds a rotator advancing by stepRad per sample.
func NewCFOStage(name string, stepRad float64) *CFOStage {
	return &CFOStage{name: name, step: stepRad}
}

// Name returns the stage name.
func (s *CFOStage) Name() string { return s.name }

// LatencySamples is 0.
func (s *CFOStage) LatencySamples() int { return 0 }

// EnableFastPath arms the incremental rotator (≤1e-9 of the direct
// form): per-sample cmplx.Exp becomes one complex multiply, the cost
// that dominates the relay's per-sample forward chain.
func (s *CFOStage) EnableFastPath() {
	s.fast = true
	s.rotSin, s.rotCos = math.Sincos(s.step)
	s.resync()
}

// FastEnabled reports whether the incremental rotator is armed.
func (s *CFOStage) FastEnabled() bool { return s.fast }

// resync recomputes the phasor from the exactly accumulated phase,
// zeroing the recurrence drift.
func (s *CFOStage) resync() {
	s.wSin, s.wCos = math.Sincos(s.phase)
	s.cnt = 0
}

// Process rotates the block in place.
func (s *CFOStage) Process(block []complex128) []complex128 {
	if s.fast {
		return s.processFast(block)
	}
	for i := range block {
		block[i] *= cmplx.Exp(complex(0, s.phase))
		s.phase += s.step
	}
	return block
}

func (s *CFOStage) processFast(block []complex128) []complex128 {
	wCos, wSin := s.wCos, s.wSin
	rotCos, rotSin := s.rotCos, s.rotSin
	phase, step := s.phase, s.step
	cnt := s.cnt
	for i := range block {
		a, b := real(block[i]), imag(block[i])
		block[i] = complex(a*wCos-b*wSin, a*wSin+b*wCos)
		phase += step
		cnt++
		if cnt == rotResync {
			wSin, wCos = math.Sincos(phase)
			cnt = 0
		} else {
			nc := wCos*rotCos - wSin*rotSin
			ns := wCos*rotSin + wSin*rotCos
			wCos, wSin = nc, ns
		}
	}
	s.wCos, s.wSin = wCos, wSin
	s.phase = phase
	s.cnt = cnt
	return block
}

// Reset rewinds the phase accumulator (and the fast rotator with it).
func (s *CFOStage) Reset() {
	s.phase = 0
	if s.fast {
		s.resync()
	}
}

// GainStage multiplies every sample by a fixed complex gain.
type GainStage struct {
	name string
	g    complex128
}

// NewGainStage builds an amplification stage.
func NewGainStage(name string, g complex128) *GainStage {
	return &GainStage{name: name, g: g}
}

// Name returns the stage name.
func (s *GainStage) Name() string { return s.name }

// LatencySamples is 0.
func (s *GainStage) LatencySamples() int { return 0 }

// Process scales the block in place.
func (s *GainStage) Process(block []complex128) []complex128 {
	for i := range block {
		block[i] *= s.g
	}
	return block
}

// Reset is a no-op (gain is configuration, not state).
func (s *GainStage) Reset() {}

// DelayStage delays the stream by a fixed number of samples — the
// explicit pipeline latency (ADC/DAC, buffering) the latency experiment
// sweeps.
type DelayStage struct {
	name string
	dl   *dsp.DelayLine
}

// NewDelayStage builds a d-sample delay (d ≥ 0).
func NewDelayStage(name string, d int) *DelayStage {
	return &DelayStage{name: name, dl: dsp.NewDelayLine(d)}
}

// Name returns the stage name.
func (s *DelayStage) Name() string { return s.name }

// LatencySamples returns the configured delay.
func (s *DelayStage) LatencySamples() int { return s.dl.Delay() }

// Process delays the block in place.
func (s *DelayStage) Process(block []complex128) []complex128 {
	for i, v := range block {
		block[i] = s.dl.Push(v)
	}
	return block
}

// Reset clears the delay buffer.
func (s *DelayStage) Reset() { s.dl.Reset() }

// Pusher is any per-sample processor with streaming state — notably
// impair.Stream, whose hardware-impairment profiles become chain stages
// through PusherStage without pipeline depending on the impair package.
type Pusher interface {
	Push(complex128) complex128
	Reset()
}

// PusherStage adapts a Pusher into a Stage.
type PusherStage struct {
	name string
	lat  int
	p    Pusher
}

// NewPusherStage wraps p, declaring its buffering latency (0 for
// memoryless impairment chains).
func NewPusherStage(name string, latencySamples int, p Pusher) *PusherStage {
	return &PusherStage{name: name, lat: latencySamples, p: p}
}

// Name returns the stage name.
func (s *PusherStage) Name() string { return s.name }

// LatencySamples returns the declared latency.
func (s *PusherStage) LatencySamples() int { return s.lat }

// Process pushes the block through in place.
func (s *PusherStage) Process(block []complex128) []complex128 {
	for i, v := range block {
		block[i] = s.p.Push(v)
	}
	return block
}

// Reset resets the wrapped processor.
func (s *PusherStage) Reset() { s.p.Reset() }

// markerStage declares latency that is realized outside the chain's
// Process — e.g. the relay's pending-sample handoff register, which adds
// one sample of delay structurally in the feedback loop. Process is the
// identity; only the latency accounting sees it.
type markerStage struct {
	name string
	lat  int
}

// NewLatencyMarker builds a pass-through stage carrying latency
// accounting for delay realized outside the chain.
func NewLatencyMarker(name string, samples int) Stage {
	return &markerStage{name: name, lat: samples}
}

func (s *markerStage) Name() string                            { return s.name }
func (s *markerStage) LatencySamples() int                     { return s.lat }
func (s *markerStage) Process(block []complex128) []complex128 { return block }
func (s *markerStage) Reset()                                  {}

// VecMulStage multiplies the stream element-wise against a fixed vector,
// advancing a cursor across calls: sample n of the stream is scaled by
// v[n]. This is the frequency-domain analogue of a filter stage — the
// testbed's per-carrier channel and CNF responses compose into declared
// chains with it. Processing more samples than len(v) panics.
type VecMulStage struct {
	name string
	v    []complex128
	pos  int
}

// NewVecMulStage builds the stage over v (not copied).
func NewVecMulStage(name string, v []complex128) *VecMulStage {
	return &VecMulStage{name: name, v: v}
}

// Name returns the stage name.
func (s *VecMulStage) Name() string { return s.name }

// LatencySamples is 0.
func (s *VecMulStage) LatencySamples() int { return 0 }

// Process scales the block in place against the next len(block) vector
// entries.
func (s *VecMulStage) Process(block []complex128) []complex128 {
	if s.pos+len(block) > len(s.v) {
		panic("pipeline: VecMulStage consumed past its vector")
	}
	for i := range block {
		block[i] *= s.v[s.pos]
		s.pos++
	}
	return block
}

// Reset rewinds the cursor.
func (s *VecMulStage) Reset() { s.pos = 0 }

// TapStage records the stream flowing through it (pass-through), exposing
// intermediate chain products — e.g. the relay-filter output whose power
// sets the forwarded-noise gain in the testbed.
type TapStage struct {
	name string
	buf  []complex128
}

// NewTapStage builds an empty tap.
func NewTapStage(name string) *TapStage {
	return &TapStage{name: name}
}

// Name returns the stage name.
func (s *TapStage) Name() string { return s.name }

// LatencySamples is 0.
func (s *TapStage) LatencySamples() int { return 0 }

// Process records and passes the block through unchanged.
func (s *TapStage) Process(block []complex128) []complex128 {
	s.buf = append(s.buf, block...)
	return block
}

// Samples returns everything recorded since the last Reset.
func (s *TapStage) Samples() []complex128 { return s.buf }

// Reset drops the recording.
func (s *TapStage) Reset() { s.buf = s.buf[:0] }
