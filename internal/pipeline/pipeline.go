// Package pipeline is the streaming block-DSP layer: the relay, SIC, and
// CNF sample paths are expressed as chains of composable stages instead of
// hand-written per-sample loops. A Stage transforms one block of complex
// baseband samples at a time while carrying its own streaming state, so
// the same chain produces bit-identical output whether it is driven one
// sample at a time (the relay's feedback loop) or in large blocks (the
// characterization and benchmark paths).
//
// Two properties are contractual:
//
//   - Determinism. Every stage's default path is the direct form — the
//     exact arithmetic, in the exact order, of the per-sample loops it
//     replaced — so golden vectors and the -workers bit-identity guarantee
//     survive the refactor unchanged. The overlap-save FFT fast path of
//     FIRStage is opt-in per stage and held to 1e-9 of the direct form.
//
//   - Latency accounting. Every stage reports LatencySamples and a Chain
//     sums them, making the paper's ≤100 ns processing-delay claim (and
//     the OFDM CP budget it must fit inside, Fig 16) a first-class,
//     monitored quantity: Chain.CheckBudget records the end-to-end latency
//     and counts budget violations through internal/obs.
//
// Chains emit pipeline.* counters/histograms (see OBSERVABILITY.md) and
// per-stage wall-clock timers named pipeline.<chain>.<stage>. Metric
// recording is sharded and order-independent; timers are wall-clock
// diagnostics and live in the manifest's timings section.
package pipeline

import (
	"fastforward/internal/obs"
)

// Stage is one streaming block transform. Process may transform the block
// in place and must return the output block (same length as the input);
// the returned slice is only valid until the next call. State carries
// across calls: feeding a signal in blocks of any size yields the same
// output as one whole-signal call. Reset clears streaming state (not
// configuration). LatencySamples is the stage's buffering delay: 0 for
// causal tap-0 filters, d for a delay line.
type Stage interface {
	Name() string
	Process(block []complex128) []complex128
	Reset()
	LatencySamples() int
}

// Obs bundles the pipeline.* metric handles chains record into. A nil
// *Obs (or one built from a nil registry) disables instrumentation at the
// cost of one branch. All handles aggregate order-independently, so
// instrumented chains stay bit-identical for any worker count when the
// shard is derived from the work item (obs.ShardForSeed).
type Obs struct {
	// Blocks counts Process calls; Samples counts samples through them.
	Blocks  *obs.Counter
	Samples *obs.Counter
	// FFTBlocks counts blocks that took a stage's overlap-save FFT fast
	// path rather than the direct form.
	FFTBlocks *obs.Counter
	// SOABlocks counts blocks that took a stage's planar SoA fast path.
	SOABlocks *obs.Counter
	// Latency distributes chain end-to-end latencies seen by CheckBudget.
	Latency *obs.Histogram
	// Violations counts CheckBudget calls whose chain exceeded the budget.
	Violations *obs.Counter
	// BatchSweeps counts Batch.ProcessAll stage sweeps; BatchSessions
	// counts the session-blocks those sweeps advanced.
	BatchSweeps   *obs.Counter
	BatchSessions *obs.Counter

	reg *obs.Registry
}

// NewObs creates the pipeline metric handles on reg. Returns nil on a nil
// registry; every consumer is nil-safe.
func NewObs(reg *obs.Registry) *Obs {
	if reg == nil {
		return nil
	}
	return &Obs{
		Blocks:        reg.Counter("pipeline.blocks", "blocks"),
		Samples:       reg.Counter("pipeline.samples", "samples"),
		FFTBlocks:     reg.Counter("pipeline.fft_blocks", "blocks"),
		SOABlocks:     reg.Counter("pipeline.soa_blocks", "blocks"),
		Latency:       reg.Histogram("pipeline.latency_samples", "samples", obs.LinearBuckets(0, 2, 17)),
		Violations:    reg.Counter("pipeline.budget_violations", "chains"),
		BatchSweeps:   reg.Counter("pipeline.batch.sweeps", "sweeps"),
		BatchSessions: reg.Counter("pipeline.batch.sessions", "blocks"),
		reg:           reg,
	}
}

// fftObservable is implemented by stages with an FFT fast path, so
// Chain.Instrument can hand them the FFTBlocks counter.
type fftObservable interface {
	setFFTObs(c *obs.Counter, shard int)
}

// soaObservable is implemented by stages with a planar SoA fast path.
type soaObservable interface {
	setSoAObs(c *obs.Counter, shard int)
}

// FastPather is any stage (or chain) with an opt-in fast path held to
// ≤1e-9 of its direct form: the overlap-save FFT convolution, the planar
// SoA kernels, the CFO incremental rotator. Golden-pinned paths never
// arm it; the real-time multi-session path always does.
type FastPather interface {
	EnableFastPath()
}

// Chain composes stages into one Stage: the block flows through the
// stages in order and latencies add. A Chain is itself a Stage, so chains
// nest.
type Chain struct {
	name   string
	stages []Stage
	o      *Obs
	shard  int
	// timers[i] times stages[i]; non-nil only when instrumented with an
	// enabled registry.
	timers []*obs.StageTimer
}

// NewChain builds a chain over the given stages.
func NewChain(name string, stages ...Stage) *Chain {
	return &Chain{name: name, stages: stages}
}

// Name returns the chain name.
func (c *Chain) Name() string { return c.name }

// Stages returns the chain's stages (shared, not a copy).
func (c *Chain) Stages() []Stage { return c.stages }

// LatencySamples sums the stages' latencies: the chain's end-to-end
// buffering delay in samples.
func (c *Chain) LatencySamples() int {
	total := 0
	for _, st := range c.stages {
		total += st.LatencySamples()
	}
	return total
}

// Instrument attaches pipeline metrics: block/sample counters on the
// given shard, the FFT fast-path counter on capable stages, and one
// wall-clock timer per stage named pipeline.<chain>.<stage>. Nil o (or an
// o from a nil registry) detaches.
func (c *Chain) Instrument(o *Obs, shard int) {
	c.o = o
	c.shard = shard
	c.timers = nil
	for _, st := range c.stages {
		if fo, ok := st.(fftObservable); ok {
			if o != nil {
				fo.setFFTObs(o.FFTBlocks, shard)
			} else {
				fo.setFFTObs(nil, 0)
			}
		}
		if so, ok := st.(soaObservable); ok {
			if o != nil {
				so.setSoAObs(o.SOABlocks, shard)
			} else {
				so.setSoAObs(nil, 0)
			}
		}
	}
	if o == nil || o.reg == nil {
		return
	}
	c.timers = make([]*obs.StageTimer, len(c.stages))
	for i, st := range c.stages {
		c.timers[i] = o.reg.Timer("pipeline." + c.name + "." + st.Name())
	}
}

// Process runs the block through every stage in order.
func (c *Chain) Process(block []complex128) []complex128 {
	if c.o != nil {
		c.o.Blocks.Inc(c.shard)
		c.o.Samples.Add(c.shard, uint64(len(block)))
	}
	if c.timers != nil {
		for i, st := range c.stages {
			start := obs.NowNanos()
			block = st.Process(block)
			c.timers[i].AddNS(obs.NowNanos() - start)
		}
		return block
	}
	for _, st := range c.stages {
		block = st.Process(block)
	}
	return block
}

// Reset clears every stage's streaming state.
func (c *Chain) Reset() {
	for _, st := range c.stages {
		st.Reset()
	}
}

// EnableFastPath arms the opt-in fast paths on every capable stage
// (nested chains included): FFT convolution and SoA kernels on filter
// stages, the incremental rotator on CFO stages. Output stays within
// 1e-9 of the direct form; golden-pinned chains must not call this.
func (c *Chain) EnableFastPath() {
	for _, st := range c.stages {
		if fp, ok := st.(FastPather); ok {
			fp.EnableFastPath()
		}
	}
}

// CheckBudget holds the chain's end-to-end latency against a budget in
// samples (typically the OFDM CP length, or the configured processing
// delay) and reports whether it fits. When instrumented it records the
// latency into pipeline.latency_samples and counts overruns in
// pipeline.budget_violations — the check is soft because the latency
// experiment (Fig 16) deliberately sweeps past the CP.
func (c *Chain) CheckBudget(budgetSamples int) bool {
	lat := c.LatencySamples()
	if c.o != nil {
		c.o.Latency.Observe(c.shard, float64(lat))
		if lat > budgetSamples {
			c.o.Violations.Inc(c.shard)
		}
	}
	return lat <= budgetSamples
}
