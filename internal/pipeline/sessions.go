package pipeline

import (
	"math"

	"fastforward/internal/obs"
	"fastforward/internal/rng"
)

// This file answers the deployment-shaped question behind the batch
// executor: how many concurrent full-duplex sessions can one core carry
// in real time? A session is the forward relay chain of the paper's
// design — digital cancellation at the Sec 3.3 canceller length (24
// taps, sic.DefaultCharacterizeConfig), CFO removal, the 16-tap CNF
// pre-filter, CFO restoration, and the relay amplifier — fed 20 MHz of
// complex baseband. Real time means one batched stage sweep over all N
// sessions finishes within the air-time of one block
// (BlockSamples/SampleRateHz). RunSessionSweep binary-searches the
// largest N that holds the deadline and publishes it as the
// pipeline.sessions_per_core gauge.

// SessionConfig shapes the multi-session real-time sweep.
type SessionConfig struct {
	// SampleRateHz is the per-session sample rate (default 20e6, the
	// paper's 20 MHz WiFi channel).
	SampleRateHz float64
	// BlockSamples is the scheduling quantum (default 4096).
	BlockSamples int
	// CancelTaps / CNFTaps size the two filters (defaults 24 / 16 — the
	// repo's Sec 3.3 digital-canceller and CNF pre-filter lengths).
	CancelTaps int
	CNFTaps    int
	// CFOHz is the carrier-frequency offset each session corrects
	// (default 1.5 kHz).
	CFOHz float64
	// Seed makes the synthetic taps and waveforms reproducible.
	Seed int64
	// WarmSweeps run untimed before MeasureSweeps timed sweeps; the
	// fastest timed sweep is the probe's cost estimate (see
	// measureSessions for why minimum, not mean).
	WarmSweeps    int
	MeasureSweeps int
	// MaxSessions caps the search (default 4096).
	MaxSessions int
	// FastPath arms the FFT/SoA/rotator fast paths on every session.
	FastPath bool
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.SampleRateHz == 0 {
		c.SampleRateHz = 20e6
	}
	if c.BlockSamples == 0 {
		c.BlockSamples = 4096
	}
	if c.CancelTaps == 0 {
		c.CancelTaps = 24
	}
	if c.CNFTaps == 0 {
		c.CNFTaps = 16
	}
	if c.CFOHz == 0 {
		c.CFOHz = 1500
	}
	if c.WarmSweeps == 0 {
		c.WarmSweeps = 2
	}
	if c.MeasureSweeps == 0 {
		c.MeasureSweeps = 64
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	return c
}

// SessionProbe records one point the search visited.
type SessionProbe struct {
	Sessions   int
	NSPerSweep float64
	RealTime   bool
}

// SessionResult is the outcome of one RunSessionSweep.
type SessionResult struct {
	Config SessionConfig
	// Sessions is the largest session count whose batched sweep met the
	// block deadline (0 when even one session misses it).
	Sessions int
	// DeadlineNS is the per-sweep real-time budget: the air time of one
	// block at the configured sample rate.
	DeadlineNS float64
	// NSPerSweep / NSPerSession are the fastest measured sweep at the
	// winning count (at 1 session when Sessions is 0, for diagnosis).
	NSPerSweep   float64
	NSPerSession float64
	// Probes lists every count the doubling probe and binary search
	// timed, in visit order.
	Probes []SessionProbe
}

// SessionChainSpec shapes one relay session's forward chain: the Sec 3.3
// digital canceller, CFO removal, the CNF pre-filter, CFO restoration,
// and the relay amplifier. The session sweep and the relay daemon build
// their per-session chains from the same spec so a daemon session is the
// single-session pipeline path, stage for stage.
type SessionChainSpec struct {
	// CancelTaps / CNFTaps size the two filters; both must be positive.
	CancelTaps int
	CNFTaps    int
	// CFOStepRad is the per-sample CFO rotation 2π·CFOHz/SampleRateHz.
	CFOStepRad float64
	// AmpGain is the relay amplifier's complex amplitude gain (a power
	// amplification of A dB is complex(10^(A/20), 0)).
	AmpGain complex128
}

// SessionStageNames lists the stage names of every NewSessionChain chain
// in sweep order — the layout a dynamic Batch hosting session chains is
// built over.
func SessionStageNames() []string {
	return []string{"cancel", "cfo_remove", "cnf_pre", "cfo_restore", "amp"}
}

// NewSessionChain builds one session's forward chain with synthetic
// Rayleigh taps drawn from src (exponential power decay: 0.94^k for the
// canceller's self-interference estimate, 0.8^k for the CNF pre-filter —
// the repo's standard synthetic session model). The cancel stage is
// returned separately because its reference must be re-armed every
// block.
func NewSessionChain(spec SessionChainSpec, src *rng.Source) (*Chain, *CancelStage) {
	si := make([]complex128, spec.CancelTaps)
	for k := range si {
		si[k] = src.RayleighTap(math.Pow(0.94, float64(k)))
	}
	pre := make([]complex128, spec.CNFTaps)
	for k := range pre {
		pre[k] = src.RayleighTap(math.Pow(0.8, float64(k)))
	}
	cancel := NewCancelStage("cancel", si)
	ch := NewChain("session",
		cancel,
		NewCFOStage("cfo_remove", -spec.CFOStepRad),
		NewFIRStage("cnf_pre", pre),
		NewCFOStage("cfo_restore", spec.CFOStepRad),
		NewGainStage("amp", spec.AmpGain),
	)
	return ch, cancel
}

// newSessionChain adapts the sweep config to the shared session spec
// (the sweep's amplifier models a fixed 10 dB relay gain).
func newSessionChain(cfg SessionConfig, src *rng.Source) (*Chain, *CancelStage) {
	return NewSessionChain(SessionChainSpec{
		CancelTaps: cfg.CancelTaps,
		CNFTaps:    cfg.CNFTaps,
		CFOStepRad: 2 * math.Pi * cfg.CFOHz / cfg.SampleRateHz,
		AmpGain:    complex(math.Sqrt(10), 0),
	}, src)
}

// measureSessions times batched sweeps over n sessions and returns the
// fastest sweep in nanoseconds. The minimum — not the mean — estimates
// the machine's steady-state cost: every sweep does identical work, so
// anything above the minimum is scheduler or neighbor interference,
// which a deployment would remove with core pinning rather than budget
// for. Blocks are refilled from per-session templates before every
// sweep, so each sweep really is identical work on well-scaled samples
// (no denormal drift across sweeps).
func measureSessions(cfg SessionConfig, n int, po *Obs) float64 {
	chains := make([]*Chain, n)
	cancels := make([]*CancelStage, n)
	txT := make([][]complex128, n)
	rxT := make([][]complex128, n)
	for i := 0; i < n; i++ {
		src := rng.New(rng.ItemSeed(cfg.Seed, i))
		chains[i], cancels[i] = newSessionChain(cfg, src)
		txT[i] = src.NoiseVector(cfg.BlockSamples, 1)
		rxT[i] = src.NoiseVector(cfg.BlockSamples, 1)
	}
	b := NewBatch("sessions", chains...)
	b.Instrument(po, 0)
	if cfg.FastPath {
		b.EnableFastPath()
	}
	var pool BlockPool
	blocks := make([][]complex128, n)
	sweep := func() {
		for i := range blocks {
			blocks[i] = pool.Get(cfg.BlockSamples)
			copy(blocks[i], rxT[i])
			cancels[i].SetReference(txT[i])
		}
		b.ProcessAll(blocks)
		for i := range blocks {
			pool.Put(blocks[i])
			blocks[i] = nil
		}
	}
	for k := 0; k < cfg.WarmSweeps; k++ {
		sweep()
	}
	best := math.Inf(1)
	for k := 0; k < cfg.MeasureSweeps; k++ {
		start := obs.NowNanos()
		sweep()
		if ns := float64(obs.NowNanos() - start); ns < best {
			best = ns
		}
	}
	return best
}

// RunSessionSweep finds the largest session count whose batched sweep
// meets the real-time deadline on the calling core: a doubling probe
// until the first miss, then binary search on the bracket. When reg is
// non-nil the winning count is published as the
// pipeline.sessions_per_core gauge and the sweep chains record the
// usual pipeline.* metrics.
func RunSessionSweep(reg *obs.Registry, cfg SessionConfig) SessionResult {
	cfg = cfg.withDefaults()
	po := NewObs(reg)
	res := SessionResult{
		Config:     cfg,
		DeadlineNS: float64(cfg.BlockSamples) / cfg.SampleRateHz * 1e9,
	}
	probe := func(n int) bool {
		ns := measureSessions(cfg, n, po)
		ok := ns <= res.DeadlineNS
		res.Probes = append(res.Probes, SessionProbe{Sessions: n, NSPerSweep: ns, RealTime: ok})
		if ok && n > res.Sessions {
			res.Sessions = n
			res.NSPerSweep = ns
		}
		if n == 1 && res.Sessions == 0 {
			res.NSPerSweep = ns
		}
		return ok
	}
	// Doubling probe: find the first miss.
	lo, hi := 0, 1
	for hi <= cfg.MaxSessions && probe(hi) {
		lo = hi
		hi *= 2
	}
	if lo == 0 {
		// Even one session misses the deadline.
		res.NSPerSession = res.NSPerSweep
		publishSessions(reg, res.Sessions)
		return res
	}
	if hi > cfg.MaxSessions {
		hi = cfg.MaxSessions + 1
	}
	// Binary search (lo meets, hi misses): largest n meeting the deadline.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.NSPerSession = res.NSPerSweep / float64(res.Sessions)
	publishSessions(reg, res.Sessions)
	return res
}

func publishSessions(reg *obs.Registry, n int) {
	if reg == nil {
		return
	}
	reg.Gauge("pipeline.sessions_per_core", "sessions").Set(float64(n))
}
