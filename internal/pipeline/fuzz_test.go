package pipeline_test

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// FuzzChainSegmentation fuzzes the block-segmentation invariant: a chain
// fed a signal in arbitrary splits must produce bit-identical output to
// one whole-signal call on the direct path, and the FFT fast path must
// stay within 1e-9 of it. The split points, signal length, tap count,
// and seed all come from the fuzzer.
func FuzzChainSegmentation(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(24), []byte{3, 60, 17})
	f.Add(int64(7), uint16(1000), uint8(120), []byte{1, 1, 1, 250})
	f.Add(int64(42), uint16(64), uint8(4), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, nSig uint16, nTaps uint8, splits []byte) {
		n := int(nSig)%2048 + 1
		tl := int(nTaps)%130 + 1
		src := rng.New(seed)
		taps := make([]complex128, tl)
		for i := range taps {
			taps[i] = src.ComplexGaussian(1.0 / float64(tl))
		}
		sig := src.NoiseVector(n, 1.0)
		ref := src.NoiseVector(n, 1.0)
		step := 0.01 * src.Norm()

		build := func(fftPath bool) (*pipeline.Chain, *pipeline.CancelStage) {
			cancel := pipeline.NewCancelStage("si_cancel", taps)
			fir := pipeline.NewFIRStage("cnf_pre", taps)
			if fftPath {
				cancel.EnableFFT()
				fir.EnableFFT()
			}
			ch := pipeline.NewChain("fuzz.fwd",
				cancel,
				pipeline.NewCFOStage("cfo_remove", -step),
				fir,
				pipeline.NewCFOStage("cfo_restore", step),
				pipeline.NewGainStage("amp", complex(1.2, 0)),
				pipeline.NewDelayStage("pipe", 3),
			)
			return ch, cancel
		}

		// Reference: whole signal in one call, direct form.
		want := append([]complex128(nil), sig...)
		chW, cW := build(false)
		cW.SetReference(ref)
		chW.Process(want)

		// Fuzzer-chosen segmentation, direct form: must be bit-exact.
		got := append([]complex128(nil), sig...)
		chS, cS := build(false)
		cS.SetReference(ref)
		pos := 0
		for _, b := range splits {
			if pos >= n {
				break
			}
			size := int(b)%(n-pos) + 1
			chS.Process(got[pos : pos+size])
			pos += size
		}
		if pos < n {
			chS.Process(got[pos:])
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segmented direct path diverges at sample %d: %v != %v", i, got[i], want[i])
			}
		}

		// Same segmentation on the FFT fast path: ≤1e-9 of the direct form.
		fgot := append([]complex128(nil), sig...)
		chF, cF := build(true)
		cF.SetReference(ref)
		pos = 0
		for _, b := range splits {
			if pos >= n {
				break
			}
			size := int(b)%(n-pos) + 1
			chF.Process(fgot[pos : pos+size])
			pos += size
		}
		if pos < n {
			chF.Process(fgot[pos:])
		}
		for i := range want {
			d := cmplx.Abs(fgot[i] - want[i])
			if d > 1e-9 || math.IsNaN(d) {
				t.Fatalf("FFT path diverges from direct form at sample %d by %g", i, d)
			}
		}
	})
}
