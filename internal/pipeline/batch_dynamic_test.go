package pipeline_test

import (
	"math"
	"testing"

	"fastforward/internal/obs"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// dynSession is one synthetic session for the churn test: a batch-member
// chain, an identically-seeded solo reference chain, and its waveforms.
type dynSession struct {
	chain, ref     *pipeline.Chain
	cancel, refCan *pipeline.CancelStage
	tx, rx         []complex128
	blocks         int // blocks processed so far
}

func newDynSession(seed int64, blockLen int) *dynSession {
	spec := pipeline.SessionChainSpec{
		CancelTaps: 24,
		CNFTaps:    16,
		CFOStepRad: 2 * math.Pi * 1500 / 20e6,
		AmpGain:    complex(math.Sqrt(10), 0),
	}
	s := &dynSession{}
	s.chain, s.cancel = pipeline.NewSessionChain(spec, rng.New(seed))
	s.ref, s.refCan = pipeline.NewSessionChain(spec, rng.New(seed))
	src := rng.New(seed ^ 0x5eed)
	s.tx = src.NoiseVector(blockLen*32, 1)
	s.rx = src.NoiseVector(blockLen*32, 1)
	return s
}

// TestDynamicBatchChurnMatchesSolo runs a scripted admission/retire/sweep
// schedule through a dynamic batch and asserts every session's output is
// bit-identical to its solo chain at every block — the daemon's
// correctness property: batching and membership churn must be invisible
// in the samples.
func TestDynamicBatchChurnMatchesSolo(t *testing.T) {
	const blockLen = 192
	reg := obs.New()
	b := pipeline.NewDynamicBatch("churn", pipeline.SessionStageNames()...)
	b.Instrument(pipeline.NewObs(reg), 0)

	sessions := make([]*dynSession, 6)
	for i := range sessions {
		sessions[i] = newDynSession(int64(1000+i), blockLen)
	}
	active := []int{}
	admit := func(i int) {
		b.Add(sessions[i].chain)
		active = append(active, i)
	}
	retire := func(i int) {
		if !b.Remove(sessions[i].chain) {
			t.Fatalf("Remove(session %d) reported non-member", i)
		}
		for k, v := range active {
			if v == i {
				active = append(active[:k], active[k+1:]...)
				break
			}
		}
	}
	sweep := func(members ...int) {
		chains := make([]*pipeline.Chain, len(members))
		blocks := make([][]complex128, len(members))
		for k, i := range members {
			s := sessions[i]
			off := s.blocks * blockLen
			chains[k] = s.chain
			blocks[k] = make([]complex128, blockLen)
			copy(blocks[k], s.rx[off:off+blockLen])
			s.cancel.SetReference(s.tx[off : off+blockLen])
		}
		b.ProcessSome(chains, blocks)
		for k, i := range members {
			s := sessions[i]
			off := s.blocks * blockLen
			want := make([]complex128, blockLen)
			copy(want, s.rx[off:off+blockLen])
			s.refCan.SetReference(s.tx[off : off+blockLen])
			s.ref.Process(want)
			for j := range want {
				if blocks[k][j] != want[j] {
					t.Fatalf("session %d block %d sample %d: batch %v, solo %v (bit-exact required)",
						i, s.blocks, j, blocks[k][j], want[j])
				}
			}
			s.blocks++
		}
	}

	// Scripted churn: admissions and retirements interleaved with sweeps
	// over varying subsets, including sweeps while other members idle.
	admit(0)
	sweep(0)
	admit(1)
	admit(2)
	sweep(0, 1, 2)
	sweep(1) // 0 and 2 idle this sweep
	retire(1)
	admit(3)
	sweep(0, 2, 3)
	retire(0)
	admit(4)
	admit(5)
	sweep(2, 3, 4, 5)
	sweep(4, 5)
	retire(2)
	retire(3)
	sweep(4, 5)
	if b.Sessions() != 2 {
		t.Fatalf("Sessions() = %d after churn, want 2", b.Sessions())
	}

	// Counters: blocks processed through the batch must equal the total
	// session-blocks swept above.
	total := 0
	for _, s := range sessions {
		total += s.blocks
	}
	if got := reg.Counter("pipeline.blocks", "blocks").Value(); got != uint64(total) {
		t.Fatalf("pipeline.blocks = %d, want %d", got, total)
	}
	if got := reg.Counter("pipeline.batch.sessions", "blocks").Value(); got != uint64(total) {
		t.Fatalf("pipeline.batch.sessions = %d, want %d", got, total)
	}
}

// TestDynamicBatchLayoutMismatch pins the Add precondition: a chain with
// the wrong stage count must be rejected loudly, not swept out of step.
func TestDynamicBatchLayoutMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a chain whose stage count does not match the batch layout")
		}
	}()
	b := pipeline.NewDynamicBatch("bad", "only_stage")
	c, _ := pipeline.NewSessionChain(pipeline.SessionChainSpec{CancelTaps: 4, CNFTaps: 4, CFOStepRad: 0.1, AmpGain: 1}, rng.New(1))
	b.Add(c)
}

// TestDynamicBatchFastPathInheritance checks EnableFastPath arms chains
// admitted both before and after the call.
func TestDynamicBatchFastPathInheritance(t *testing.T) {
	spec := pipeline.SessionChainSpec{CancelTaps: 24, CNFTaps: 16, CFOStepRad: 0.001, AmpGain: 1}
	before, _ := pipeline.NewSessionChain(spec, rng.New(1))
	after, _ := pipeline.NewSessionChain(spec, rng.New(2))
	b := pipeline.NewDynamicBatch("fp", pipeline.SessionStageNames()...)
	b.Add(before)
	b.EnableFastPath()
	b.Add(after)
	for name, c := range map[string]*pipeline.Chain{"admitted before": before, "admitted after": after} {
		armed := false
		for _, st := range c.Stages() {
			if f, ok := st.(*pipeline.FIRStage); ok && (f.SoAEnabled() || f.FFTEnabled()) {
				armed = true
			}
		}
		if !armed {
			t.Fatalf("chain %s EnableFastPath: no FIR stage armed", name)
		}
	}
}
