package pipeline

import (
	"fastforward/internal/dsp"
	"fastforward/internal/fft"
)

// minFFTTaps is the filter length below which the overlap-save path is
// never worth arming: the per-segment FFT overhead (~2·N·log2 N complex
// ops for N−T+1 outputs) only beats the direct form's T ops/sample for
// filters in the tens of taps — the paper's 120-tap digital canceller is
// the target; the handful-of-taps CNF pre-filters are not.
const minFFTTaps = 16

// ovSave is the overlap-save FFT convolution engine behind FIRStage's
// fast path. It owns no streaming state of its own: each filter call
// reads the direct-form delay line for the T−1 samples of input history
// and writes the new tail back, so direct and FFT processing interleave
// freely and a Reset of the FIR resets both paths.
//
// Numerics: the FFT path computes the same convolution sums as the direct
// form but in a different association order, so outputs agree to floating
// round-off (≤1e-9 for unit-scale signals, enforced by test), not bit
// exactly — which is why it is opt-in and never the default on
// golden-pinned paths (DESIGN.md §8).
type ovSave struct {
	taps []complex128
	// n is the FFT length; m = n − len(taps) + 1 useful outputs per
	// segment.
	n, m int
	// h is the length-n DFT of the zero-padded taps (cached plans inside
	// internal/fft make repeated length-n transforms cheap).
	h []complex128
	// seg is the per-segment scratch; ext holds history + block.
	seg []complex128
	ext []complex128
	// minBlock gates the fast path: shorter blocks stay on the direct
	// form, whose per-sample cost is already low at those sizes.
	minBlock int
}

func newOvSave(taps []complex128) *ovSave {
	t := len(taps)
	n := 1
	for n < 4*t {
		n <<= 1
	}
	if n < 256 {
		n = 256
	}
	padded := make([]complex128, n)
	copy(padded, taps)
	o := &ovSave{
		taps:     append([]complex128(nil), taps...),
		n:        n,
		m:        n - t + 1,
		h:        fft.Forward(padded),
		seg:      make([]complex128, n),
		minBlock: t,
	}
	return o
}

// filter convolves block with the taps by overlap-save, reading the T−1
// samples of input history from f's delay line and refreshing it with the
// block's tail afterwards.
func (o *ovSave) filter(f *dsp.FIR, block []complex128) {
	t := len(o.taps)
	l := len(block)
	need := t - 1 + l
	if cap(o.ext) < need {
		o.ext = make([]complex128, need)
	}
	ext := o.ext[:need]
	f.Recent(ext[:t-1])
	copy(ext[t-1:], block)

	for start := 0; start < l; start += o.m {
		m := o.m
		if start+m > l {
			m = l - start
		}
		chunk := ext[start : start+t-1+m]
		copy(o.seg, chunk)
		for i := len(chunk); i < o.n; i++ {
			o.seg[i] = 0
		}
		fft.ForwardInPlace(o.seg)
		for i := range o.seg {
			o.seg[i] *= o.h[i]
		}
		fft.InverseInPlace(o.seg)
		// The first t−1 outputs of each segment are circular-convolution
		// aliases; the rest are exact linear-convolution samples.
		copy(block[start:start+m], o.seg[t-1:t-1+m])
	}
	f.LoadRecent(ext[need-t:])
}
