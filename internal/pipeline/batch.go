package pipeline

import (
	"fastforward/internal/obs"
)

// Batch advances N sessions' chains through one stage sweep per block:
// stage 0 runs for every session, then stage 1, and so on. Each chain
// keeps its own streaming state and its own block, so the output is
// bit-identical to processing the chains one by one — the sweep order
// only changes which overheads are paid per session and which per stage.
// Amortized across the sweep: the per-stage wall-clock timer brackets
// (two clock reads per stage instead of two per stage per session), the
// pipeline.blocks/samples counter updates (one atomic add per sweep),
// and the internal/fft plan-cache and twiddle-table locality when
// several sessions' filter stages run the same FFT length back to back.
//
// All chains must have the same number of stages (the multi-session
// deployment shape: one relay chain per 20 MHz session). ProcessAll is
// allocation-free at steady state.
type Batch struct {
	name   string
	chains []*Chain
	o      *Obs
	shard  int
	// timers[i] times stage position i across all sessions; named after
	// the first chain's stage names.
	timers []*obs.StageTimer
}

// NewBatch builds a batched executor over the given session chains. It
// panics if the chains do not all have the same stage count — the sweep
// advances stage positions in lockstep.
func NewBatch(name string, chains ...*Chain) *Batch {
	if len(chains) == 0 {
		panic("pipeline: NewBatch needs at least one chain")
	}
	n := len(chains[0].stages)
	for _, c := range chains[1:] {
		if len(c.stages) != n {
			panic("pipeline: NewBatch chains must have equal stage counts")
		}
	}
	return &Batch{name: name, chains: chains}
}

// Name returns the batch name.
func (b *Batch) Name() string { return b.name }

// Sessions returns the number of chains the batch advances per sweep.
func (b *Batch) Sessions() int { return len(b.chains) }

// Chains returns the session chains (shared, not a copy).
func (b *Batch) Chains() []*Chain { return b.chains }

// Instrument attaches pipeline.* metrics on the given shard: the block
// and sample counters plus the batch sweep counters, fast-path counters
// on every capable stage, and one wall-clock timer per stage position
// (pipeline.<batch>.<stage>, stage names from the first chain). Nil o
// detaches. Per-chain instrumentation is cleared: the batch records for
// all of its sessions.
func (b *Batch) Instrument(o *Obs, shard int) {
	b.o = o
	b.shard = shard
	b.timers = nil
	for _, c := range b.chains {
		// Wire stage-level fast-path counters through the chain hook, then
		// detach the chain's own block counters and timers so batched
		// sweeps are not double-counted.
		c.Instrument(o, shard)
		c.o = nil
		c.timers = nil
	}
	if o == nil || o.reg == nil {
		return
	}
	ref := b.chains[0]
	b.timers = make([]*obs.StageTimer, len(ref.stages))
	for i, st := range ref.stages {
		b.timers[i] = o.reg.Timer("pipeline." + b.name + "." + st.Name())
	}
}

// EnableFastPath arms the fast paths on every session chain.
func (b *Batch) EnableFastPath() {
	for _, c := range b.chains {
		c.EnableFastPath()
	}
}

// ProcessAll advances every session by one block through one stage sweep.
// blocks[i] is session i's block (any lengths, typically equal); the
// processed block replaces it in place. len(blocks) must equal Sessions.
func (b *Batch) ProcessAll(blocks [][]complex128) {
	if len(blocks) != len(b.chains) {
		panic("pipeline: ProcessAll needs one block per session")
	}
	if b.o != nil {
		total := 0
		for _, blk := range blocks {
			total += len(blk)
		}
		b.o.Blocks.Add(b.shard, uint64(len(blocks)))
		b.o.Samples.Add(b.shard, uint64(total))
		b.o.BatchSweeps.Inc(b.shard)
		b.o.BatchSessions.Add(b.shard, uint64(len(blocks)))
	}
	nstages := len(b.chains[0].stages)
	if b.timers != nil {
		for si := 0; si < nstages; si++ {
			start := obs.NowNanos()
			for ci, c := range b.chains {
				blocks[ci] = c.stages[si].Process(blocks[ci])
			}
			b.timers[si].AddNS(obs.NowNanos() - start)
		}
		return
	}
	for si := 0; si < nstages; si++ {
		for ci, c := range b.chains {
			blocks[ci] = c.stages[si].Process(blocks[ci])
		}
	}
}

// Reset clears every session chain's streaming state.
func (b *Batch) Reset() {
	for _, c := range b.chains {
		c.Reset()
	}
}

// BlockPool is a deterministic free-list of sample blocks for the
// batched executor's callers: Get returns a zeroed block of the exact
// requested length, Put recycles one. Unlike sync.Pool it never drops
// buffers between GC cycles and has no cross-goroutine machinery — the
// multi-session hot path is single-core by design (the sessions-per-core
// metric), so a plain LIFO list keeps ProcessAll's callers at zero
// allocations per block without scheduler-dependent behavior.
type BlockPool struct {
	free [][]complex128
}

// Get returns a zeroed block of length n, reusing a recycled one when
// its capacity suffices.
func (p *BlockPool) Get(n int) []complex128 {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i][:n]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			for j := range b {
				b[j] = 0
			}
			return b
		}
	}
	return make([]complex128, n)
}

// Put recycles a block for later Get calls. The caller must not use b
// afterwards.
func (p *BlockPool) Put(b []complex128) {
	if cap(b) == 0 {
		return
	}
	p.free = append(p.free, b)
}
