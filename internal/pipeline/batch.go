package pipeline

import (
	"fastforward/internal/obs"
)

// Batch advances N sessions' chains through one stage sweep per block:
// stage 0 runs for every session, then stage 1, and so on. Each chain
// keeps its own streaming state and its own block, so the output is
// bit-identical to processing the chains one by one — the sweep order
// only changes which overheads are paid per session and which per stage.
// Amortized across the sweep: the per-stage wall-clock timer brackets
// (two clock reads per stage instead of two per stage per session), the
// pipeline.blocks/samples counter updates (one atomic add per sweep),
// and the internal/fft plan-cache and twiddle-table locality when
// several sessions' filter stages run the same FFT length back to back.
//
// All chains must have the same number of stages (the multi-session
// deployment shape: one relay chain per 20 MHz session). ProcessAll is
// allocation-free at steady state.
//
// Membership can change at run time (the relay daemon's session
// lifecycle): NewDynamicBatch starts empty, Add admits a session chain,
// Remove retires one, and ProcessSome sweeps any subset of admitted
// chains. Membership mutations and sweeps touching the same chain must
// be ordered by the caller (the daemon orders them through its executor
// channel); sweeps never read the membership slice, so Add/Remove for
// one session may overlap another session's sweep.
type Batch struct {
	name string
	// stageNames fixes the stage-position layout every member chain must
	// match; timers are named after it.
	stageNames []string
	chains     []*Chain
	fastPath   bool
	o          *Obs
	shard      int
	// timers[i] times stage position i across all sessions.
	timers []*obs.StageTimer
}

// NewBatch builds a batched executor over the given session chains. It
// panics if the chains do not all have the same stage count — the sweep
// advances stage positions in lockstep.
func NewBatch(name string, chains ...*Chain) *Batch {
	if len(chains) == 0 {
		panic("pipeline: NewBatch needs at least one chain")
	}
	names := make([]string, len(chains[0].stages))
	for i, st := range chains[0].stages {
		names[i] = st.Name()
	}
	b := &Batch{name: name, stageNames: names}
	for _, c := range chains {
		b.Add(c)
	}
	return b
}

// NewDynamicBatch builds an empty batched executor whose member chains
// come and go at run time. stageNames fixes the sweep layout: every
// chain Added later must have exactly len(stageNames) stages, and the
// per-position wall-clock timers are named after it
// (pipeline.<batch>.<stageNames[i]>).
func NewDynamicBatch(name string, stageNames ...string) *Batch {
	if len(stageNames) == 0 {
		panic("pipeline: NewDynamicBatch needs at least one stage name")
	}
	return &Batch{name: name, stageNames: append([]string(nil), stageNames...)}
}

// Add admits a session chain into the batch: its stage count must match
// the batch layout. The chain inherits the batch's instrumentation (its
// own block counters and timers are detached so batched sweeps are not
// double-counted) and, when the batch's fast paths are armed, its fast
// paths are armed too.
func (b *Batch) Add(c *Chain) {
	if len(c.stages) != len(b.stageNames) {
		panic("pipeline: Batch.Add chain stage count does not match the batch layout")
	}
	b.chains = append(b.chains, c)
	b.wireChain(c)
	if b.fastPath {
		c.EnableFastPath()
	}
}

// Remove retires a session chain (matched by identity), preserving the
// order of the rest. Reports whether the chain was a member. The chain's
// streaming state is left untouched — a caller draining a session can
// keep processing it solo.
func (b *Batch) Remove(c *Chain) bool {
	for i, m := range b.chains {
		if m == c {
			b.chains = append(b.chains[:i], b.chains[i+1:]...)
			return true
		}
	}
	return false
}

// wireChain attaches the batch's instrumentation to one member chain:
// stage-level fast-path counters stay, per-chain block counters and
// timers are detached (the batch records for all of its sessions).
func (b *Batch) wireChain(c *Chain) {
	c.Instrument(b.o, b.shard)
	c.o = nil
	c.timers = nil
}

// Name returns the batch name.
func (b *Batch) Name() string { return b.name }

// Sessions returns the number of chains the batch advances per sweep.
func (b *Batch) Sessions() int { return len(b.chains) }

// Chains returns the session chains (shared, not a copy).
func (b *Batch) Chains() []*Chain { return b.chains }

// Instrument attaches pipeline.* metrics on the given shard: the block
// and sample counters plus the batch sweep counters, fast-path counters
// on every capable stage, and one wall-clock timer per stage position
// (pipeline.<batch>.<stageNames[i]>). Nil o detaches. Per-chain
// instrumentation is cleared: the batch records for all of its sessions.
// Chains Added later inherit the same wiring. Must not run concurrently
// with sweeps.
func (b *Batch) Instrument(o *Obs, shard int) {
	b.o = o
	b.shard = shard
	b.timers = nil
	for _, c := range b.chains {
		b.wireChain(c)
	}
	if o == nil || o.reg == nil {
		return
	}
	b.timers = make([]*obs.StageTimer, len(b.stageNames))
	for i, name := range b.stageNames {
		b.timers[i] = o.reg.Timer("pipeline." + b.name + "." + name)
	}
}

// EnableFastPath arms the fast paths on every session chain, current and
// future (chains Added later are armed on admission).
func (b *Batch) EnableFastPath() {
	b.fastPath = true
	for _, c := range b.chains {
		c.EnableFastPath()
	}
}

// ProcessAll advances every session by one block through one stage sweep.
// blocks[i] is session i's block (any lengths, typically equal); the
// processed block replaces it in place. len(blocks) must equal Sessions.
func (b *Batch) ProcessAll(blocks [][]complex128) {
	if len(blocks) != len(b.chains) {
		panic("pipeline: ProcessAll needs one block per session")
	}
	b.ProcessSome(b.chains, blocks)
}

// ProcessSome advances the listed session chains by one block each
// through one stage sweep: stage position 0 runs for every listed chain,
// then position 1, and so on. The chains must have been Added (so their
// instrumentation is wired) and each must appear at most once per call —
// a chain's blocks stay ordered because its handler submits them one at
// a time. This is the daemon's sweep entry point: sessions whose blocks
// arrived together share one sweep, everyone else is simply absent from
// it. Allocation-free.
func (b *Batch) ProcessSome(chains []*Chain, blocks [][]complex128) {
	if len(blocks) != len(chains) {
		panic("pipeline: ProcessSome needs one block per chain")
	}
	if len(chains) == 0 {
		return
	}
	if b.o != nil {
		total := 0
		for _, blk := range blocks {
			total += len(blk)
		}
		b.o.Blocks.Add(b.shard, uint64(len(blocks)))
		b.o.Samples.Add(b.shard, uint64(total))
		b.o.BatchSweeps.Inc(b.shard)
		b.o.BatchSessions.Add(b.shard, uint64(len(blocks)))
	}
	nstages := len(b.stageNames)
	if b.timers != nil {
		for si := 0; si < nstages; si++ {
			start := obs.NowNanos()
			for ci, c := range chains {
				blocks[ci] = c.stages[si].Process(blocks[ci])
			}
			b.timers[si].AddNS(obs.NowNanos() - start)
		}
		return
	}
	for si := 0; si < nstages; si++ {
		for ci, c := range chains {
			blocks[ci] = c.stages[si].Process(blocks[ci])
		}
	}
}

// Reset clears every session chain's streaming state.
func (b *Batch) Reset() {
	for _, c := range b.chains {
		c.Reset()
	}
}

// BlockPool is a deterministic free-list of sample blocks for the
// batched executor's callers: Get returns a zeroed block of the exact
// requested length, Put recycles one. Unlike sync.Pool it never drops
// buffers between GC cycles and has no cross-goroutine machinery — the
// multi-session hot path is single-core by design (the sessions-per-core
// metric), so a plain LIFO list keeps ProcessAll's callers at zero
// allocations per block without scheduler-dependent behavior.
type BlockPool struct {
	free [][]complex128
}

// Get returns a zeroed block of length n, reusing a recycled one when
// its capacity suffices.
func (p *BlockPool) Get(n int) []complex128 {
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i][:n]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			for j := range b {
				b[j] = 0
			}
			return b
		}
	}
	return make([]complex128, n)
}

// Put recycles a block for later Get calls. The caller must not use b
// afterwards.
func (p *BlockPool) Put(b []complex128) {
	if cap(b) == 0 {
		return
	}
	p.free = append(p.free, b)
}
