// Package sic implements FastForward's low-latency self-interference
// cancellation (Sec 3.3): a simulated RF self-interference channel, an
// analog cancellation stage modeled after the paper's 8-tap RF filter with
// 0.25 dB-step attenuators (reaching ~70 dB), a *causal* digital FIR
// canceller (120 taps, zero buffering delay), and the Gaussian
// noise-injection tuning procedure that avoids the correlation trap unique
// to relays — where the transmitted signal is a delayed copy of the
// received signal, so a naive adaptive canceller nulls the desired signal
// too.
//
// Characterize runs the whole chain over simulated relay placements and
// records the sic.* run metrics (analog, unquantized-fit and total
// cancellation, digital residual, tuner iteration counts) documented in
// OBSERVABILITY.md; AnalogCanceller.LastTune exposes the same per-tune
// telemetry programmatically.
package sic

import (
	"math"
	"math/cmplx"

	"fastforward/internal/linalg"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// CarrierHz is the RF carrier for analog-stage phase computation.
const CarrierHz = 2.45e9

// MaxCancellationDB is the physical ceiling: 20 dBm transmit power over a
// −90 dBm noise floor (Sec 3.3's "maximum cancellation expected is 110dB").
const MaxCancellationDB = 110.0

// SIPath is one leakage path from the relay's transmitter into its own
// receiver: circulator leakage, antenna reflection, or an environmental
// echo.
type SIPath struct {
	// DelayS is the path delay in seconds (sub-nanosecond for circulator
	// leakage, hundreds of ns for environment echoes).
	DelayS float64
	// GainDB is the path power gain relative to the transmitted signal
	// (negative; e.g. −15 dB for circulator leakage).
	GainDB float64
	// PhaseRad is an extra phase offset of the path.
	PhaseRad float64
}

// SIChannel is the self-interference channel: a sum of leakage paths.
type SIChannel struct {
	Paths []SIPath
}

// NewTypicalSIChannel synthesizes the self-interference environment of a
// relay node at some location: strong circulator leakage (~−15 dB at
// ~400 ps), an antenna mismatch reflection, and a few room echoes whose
// delays/gains vary with the seed. This mirrors the measurement-driven
// models of the full-duplex literature the paper builds on.
func NewTypicalSIChannel(src *rng.Source) *SIChannel {
	ch := &SIChannel{}
	// Circulator direct leakage.
	ch.Paths = append(ch.Paths, SIPath{
		DelayS:   300e-12 + 200e-12*src.Float64(),
		GainDB:   -15 - 3*src.Float64(),
		PhaseRad: 2 * math.Pi * src.Float64(),
	})
	// Antenna reflection.
	ch.Paths = append(ch.Paths, SIPath{
		DelayS:   800e-12 + 400e-12*src.Float64(),
		GainDB:   -20 - 5*src.Float64(),
		PhaseRad: 2 * math.Pi * src.Float64(),
	})
	// Environmental echoes: 2-4 paths between 50 and 400 ns, −85 to −100 dB
	// (two-way propagation to reflectors plus reflection loss and antenna
	// directionality). The analog stage's nanosecond-scale taps cannot
	// track their fast phase rotation across the band, so they set the
	// analog-stage floor (~70 dB below the dominant leakage, matching the
	// paper's analog figure) and are cleaned by the digital canceller.
	n := 2 + src.Intn(3)
	for i := 0; i < n; i++ {
		ch.Paths = append(ch.Paths, SIPath{
			DelayS:   50e-9 + 350e-9*src.Float64(),
			GainDB:   -85 - 15*src.Float64(),
			PhaseRad: 2 * math.Pi * src.Float64(),
		})
	}
	return ch
}

// FreqResponse evaluates the SI channel at baseband frequency f (Hz offset
// from the carrier), including the carrier phase of each path's delay —
// the quantity the RF analog canceller must match.
func (c *SIChannel) FreqResponse(f float64) complex128 {
	var acc complex128
	for _, p := range c.Paths {
		amp := math.Pow(10, p.GainDB/20)
		phase := -2*math.Pi*(CarrierHz+f)*p.DelayS + p.PhaseRad
		acc += cmplx.Rect(amp, phase)
	}
	return acc
}

// GainDB returns the aggregate SI power gain at band center.
func (c *SIChannel) GainDB() float64 {
	g := cmplx.Abs(c.FreqResponse(0))
	return 20 * math.Log10(g)
}

// BasebandFIR converts the SI channel to a sample-spaced baseband FIR at
// sampleRate with nTaps taps, for time-domain relay simulation. Fractional
// delays are realized with windowed-sinc interpolation; alignDelay extra
// samples of bulk delay keep the sinc tails causal (physically: ADC/DAC
// pipeline latency).
func (c *SIChannel) BasebandFIR(sampleRate float64, nTaps, alignDelay int) []complex128 {
	taps := make([]complex128, nTaps)
	const sincSpan = 8
	for _, p := range c.Paths {
		amp := math.Pow(10, p.GainDB/20)
		carrierPhase := -2*math.Pi*CarrierHz*p.DelayS + p.PhaseRad
		g := cmplx.Rect(amp, carrierPhase)
		d := p.DelayS*sampleRate + float64(alignDelay)
		center := int(math.Round(d))
		for k := center - sincSpan; k <= center+sincSpan; k++ {
			if k < 0 || k >= nTaps {
				continue
			}
			x := float64(k) - d
			w := 0.54 + 0.46*math.Cos(math.Pi*x/float64(sincSpan+1))
			taps[k] += g * complex(sinc(x)*w, 0)
		}
	}
	return taps
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// AnalogCanceller models the paper's tunable RF FIR: fixed tap delays
// (8 taps, 100–200 ps apart) with digitally stepped attenuators (0 to
// 31.75 dB in 0.25 dB steps). Gains are non-negative real attenuations;
// phase diversity comes entirely from the tap delays, as in the hardware.
// The tuned simulation reaches 40–60 dB (median ≈55 dB); the paper's
// hardware reports ~70 dB, a gap we attribute to tuning details beyond
// this model (see EXPERIMENTS.md). Total cancellation is unaffected: the
// digital stage drives the residual to the noise floor either way.
type AnalogCanceller struct {
	// TapDelaysS are the fixed delays of each tap in seconds.
	TapDelaysS []float64
	// RefAmps holds each tap's fixed coupling amplitude at 0 dB attenuation.
	RefAmps []float64
	// AttenDB holds each tap's attenuator setting; math.Inf(1) = tap off.
	AttenDB []float64
	// LastTune holds observability stats from the most recent Tune call.
	LastTune TuneStats
}

// Attenuator quantization per the prototype (Sec 4.3).
const (
	AttenStepDB = 0.25
	AttenMaxDB  = 31.75
)

// NewAnalogCanceller creates an untuned canceller with the prototype's tap
// structure: 8 taps spaced 100–200 ps apart. The tap delays fall into four
// phase directions roughly 88° apart at 2.45 GHz; each direction gets one
// strongly-coupled tap (for nulling the dominant leakage) and one
// weakly-coupled tap (for sub-step trim), with couplings graded from
// refAmp to refAmp−42 dB. refAmp should exceed the strongest SI path
// amplitude.
func NewAnalogCanceller(refAmp float64) *AnalogCanceller {
	// Two delay groups, each covering four phase directions ~88 degrees
	// apart at 2.45 GHz: a short group {200,300,500,800} ps and a long
	// group {1000,1100,1300,1200} ps. Bracketing the leakage delays in
	// every direction lets the fit match both the value and the frequency
	// slope of the SI response without huge opposing gains.
	delays := []float64{200e-12, 300e-12, 500e-12, 800e-12,
		1000e-12, 1100e-12, 1300e-12, 1200e-12}
	couplingDB := []float64{0, 0, 0, 0, -6, -6, -6, -6}
	a := &AnalogCanceller{TapDelaysS: delays}
	a.RefAmps = make([]float64, len(delays))
	a.AttenDB = make([]float64, len(delays))
	for i := range a.AttenDB {
		a.RefAmps[i] = refAmp * math.Pow(10, couplingDB[i]/20)
		a.AttenDB[i] = math.Inf(1)
	}
	return a
}

// FreqResponse evaluates the canceller's response at baseband frequency f.
func (a *AnalogCanceller) FreqResponse(f float64) complex128 {
	var acc complex128
	for i, tau := range a.TapDelaysS {
		if math.IsInf(a.AttenDB[i], 1) {
			continue
		}
		amp := a.RefAmps[i] * math.Pow(10, -a.AttenDB[i]/20)
		acc += cmplx.Rect(amp, -2*math.Pi*(CarrierHz+f)*tau)
	}
	return acc
}

// TuneStats records the work and intermediate quality of the most recent
// Tune call, for run manifests: the unquantized NNLS fit is the ceiling
// the attenuator grid is quantizing toward, so a drop in QuantizedDB with
// a steady UnquantizedDB points at the quantization/descent stages, while
// a drop in both points at the SI environment or the fit itself.
type TuneStats struct {
	// UnquantizedDB is the continuous (un-quantized, all-taps-free) NNLS
	// fit's cancellation — the tuner's upper bound (EXPERIMENTS.md note 1
	// reports 62–74 dB).
	UnquantizedDB float64
	// QuantizedDB is the cancellation achieved after quantized tuning.
	QuantizedDB float64
	// RefineIterations counts coordinate-descent sweeps across all refine
	// and pair-refine passes (including basin hops).
	RefineIterations int
}

// Tune fits the attenuators to cancel the SI channel over the band
// [-bw/2, +bw/2], sampled at nFreq points. The fit is a sequential
// noise-shaping quantization: taps are fixed one at a time from the
// strongest coupling down, each time re-solving a non-negative least
// squares over the still-free taps so they absorb the quantization error
// of the taps already fixed — followed by a coordinate-descent polish of
// the attenuator settings (the baseband tuning loop of Sec 4.3). It
// returns the achieved in-band cancellation in dB and leaves per-call
// observability in LastTune.
func (a *AnalogCanceller) Tune(si *SIChannel, bw float64, nFreq int) float64 {
	if nFreq < 2 {
		nFreq = 2
	}
	freqs := make([]float64, nFreq)
	for i := range freqs {
		freqs[i] = -bw/2 + bw*float64(i)/float64(nFreq-1)
	}
	a.LastTune = TuneStats{UnquantizedDB: a.UnquantizedFitDB(si, bw, nFreq)}
	nT := len(a.TapDelaysS)
	for i := range a.AttenDB {
		a.AttenDB[i] = math.Inf(1)
	}
	free := make([]bool, nT)
	for i := range free {
		free[i] = true
	}
	for fix := 0; fix < nT; fix++ {
		// Residual target: SI minus the taps already fixed.
		target := make([]complex128, nFreq)
		for fi, f := range freqs {
			target[fi] = si.FreqResponse(f) - a.FreqResponse(f)
		}
		gains, ok := a.nnls(target, freqs, free, 1e-6)
		if !ok {
			break
		}
		// Fix the free tap with the largest demanded gain; later re-solves
		// let the remaining taps absorb its quantization (and saturation)
		// error.
		tap, bestG := -1, -1.0
		for i := 0; i < nT; i++ {
			if free[i] && gains[i] > bestG {
				tap, bestG = i, gains[i]
			}
		}
		if tap < 0 {
			break
		}
		a.AttenDB[tap] = a.quantizeGain(tap, gains[tap])
		free[tap] = false
	}
	a.LastTune.RefineIterations += a.refine(si, bw, nFreq)
	a.LastTune.RefineIterations += a.pairRefine(si, bw, nFreq)
	// Basin hopping: the quantized landscape has local optima; perturb and
	// re-descend, keeping the best setting found. This is the software
	// analogue of the hardware tuner's repeated measurement-driven sweeps.
	best := a.CancellationDB(si, bw, nFreq)
	bestAtt := append([]float64(nil), a.AttenDB...)
	h := uint64(0x9e3779b97f4a7c15)
	for hop := 0; hop < 4; hop++ {
		copy(a.AttenDB, bestAtt)
		for i := range a.AttenDB {
			// Deterministic pseudo-random perturbation.
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			step := float64(int(h%33)-16) * AttenStepDB
			if math.IsInf(a.AttenDB[i], 1) {
				if h%5 == 0 {
					a.AttenDB[i] = AttenMaxDB - math.Abs(step)
				}
				continue
			}
			v := a.AttenDB[i] + step
			if v < 0 {
				v = 0
			}
			if v > AttenMaxDB {
				v = math.Inf(1)
			}
			a.AttenDB[i] = v
		}
		a.LastTune.RefineIterations += a.refine(si, bw, nFreq)
		a.LastTune.RefineIterations += a.pairRefine(si, bw, nFreq)
		if got := a.CancellationDB(si, bw, nFreq); got > best {
			best = got
			copy(bestAtt, a.AttenDB)
		}
	}
	copy(a.AttenDB, bestAtt)
	a.LastTune.QuantizedDB = best
	return best
}

// UnquantizedFitDB solves the continuous non-negative least-squares fit
// with every tap free and no attenuator quantization, and returns the
// cancellation it would achieve — the upper bound the quantized tuner
// works toward. The canceller's attenuator settings are not modified.
func (a *AnalogCanceller) UnquantizedFitDB(si *SIChannel, bw float64, nFreq int) float64 {
	if nFreq < 2 {
		nFreq = 2
	}
	freqs := make([]float64, nFreq)
	target := make([]complex128, nFreq)
	for i := range freqs {
		freqs[i] = -bw/2 + bw*float64(i)/float64(nFreq-1)
		target[i] = si.FreqResponse(freqs[i])
	}
	free := make([]bool, len(a.TapDelaysS))
	for i := range free {
		free[i] = true
	}
	gains, ok := a.nnls(target, freqs, free, 1e-6)
	if !ok {
		return 0
	}
	var raw, res float64
	for fi, f := range freqs {
		var fit complex128
		for k, tau := range a.TapDelaysS {
			fit += complex(gains[k], 0) * cmplx.Exp(complex(0, -2*math.Pi*(CarrierHz+f)*tau))
		}
		r := target[fi] - fit
		raw += real(target[fi])*real(target[fi]) + imag(target[fi])*imag(target[fi])
		res += real(r)*real(r) + imag(r)*imag(r)
	}
	if res <= 0 {
		return MaxCancellationDB
	}
	c := 10 * math.Log10(raw/res)
	if c > MaxCancellationDB {
		c = MaxCancellationDB
	}
	return c
}

// pairRefine extends the coordinate descent with coordinated two-tap moves:
// nudge tap i by a few attenuator steps, then exhaustively re-optimize tap
// j. Single-tap moves stall once every tap is pinned by the bulk fit; pair
// moves let one tap migrate to a deep-attenuation trim role while another
// absorbs the bulk shift. Returns the number of sweeps performed.
func (a *AnalogCanceller) pairRefine(si *SIChannel, bw float64, nFreq int) int {
	best := a.CancellationDB(si, bw, nFreq)
	nLevels := int(AttenMaxDB/AttenStepDB) + 1
	iters := 0
	for iter := 0; iter < 2; iter++ {
		iters++
		improved := false
		for i := range a.AttenDB {
			for j := range a.AttenDB {
				if i == j {
					continue
				}
				saveI, saveJ := a.AttenDB[i], a.AttenDB[j]
				for _, di := range []float64{-2, -1, 1, 2} {
					vi := saveI + di*AttenStepDB
					if math.IsInf(saveI, 1) {
						vi = AttenMaxDB + di*AttenStepDB
						if vi > AttenMaxDB {
							continue
						}
					}
					if vi < 0 || vi > AttenMaxDB {
						continue
					}
					a.AttenDB[i] = vi
					// Exhaustive sweep of tap j.
					bestJ, bestVal := saveJ, -1.0
					for l := 0; l <= nLevels; l++ {
						if l == nLevels {
							a.AttenDB[j] = math.Inf(1)
						} else {
							a.AttenDB[j] = float64(l) * AttenStepDB
						}
						if got := a.CancellationDB(si, bw, nFreq); got > bestVal {
							bestVal = got
							bestJ = a.AttenDB[j]
						}
					}
					if bestVal > best {
						best = bestVal
						a.AttenDB[j] = bestJ
						saveI, saveJ = a.AttenDB[i], bestJ
						improved = true
					} else {
						a.AttenDB[i], a.AttenDB[j] = saveI, saveJ
					}
				}
				a.AttenDB[i], a.AttenDB[j] = saveI, saveJ
			}
		}
		if !improved {
			break
		}
	}
	return iters
}

// nnls solves min ||target(f) - Σ_free g_k φ_k(f)||² over g_k ≥ 0 by
// iterated least squares with active-set clamping, returning per-tap gains.
func (a *AnalogCanceller) nnls(target []complex128, freqs []float64, free []bool, ridge float64) ([]float64, bool) {
	nT := len(a.TapDelaysS)
	nFreq := len(freqs)
	idx := make([]int, 0, nT)
	for i, on := range free {
		if on {
			idx = append(idx, i)
		}
	}
	gains := make([]float64, nT)
	if len(idx) == 0 {
		return gains, true
	}
	// Real-valued design matrix: rows are [Re; Im] over the band, one
	// column per free tap.
	rows := 2 * nFreq
	cols := len(idx)
	A := make([][]float64, rows)
	b := make([]float64, rows)
	for fi, f := range freqs {
		A[fi] = make([]float64, cols)
		A[nFreq+fi] = make([]float64, cols)
		b[fi] = real(target[fi])
		b[nFreq+fi] = imag(target[fi])
		for ji, j := range idx {
			phi := cmplx.Exp(complex(0, -2*math.Pi*(CarrierHz+f)*a.TapDelaysS[j]))
			A[fi][ji] = real(phi)
			A[nFreq+fi][ji] = imag(phi)
		}
	}
	g, ok := linalg.NNLS(A, b, ridge)
	if !ok {
		return gains, false
	}
	for ji, j := range idx {
		gains[j] = g[ji]
	}
	return gains, true
}

// quantizeGain maps a desired linear gain for tap i to the nearest
// attenuator grid setting (or off).
func (a *AnalogCanceller) quantizeGain(i int, g float64) float64 {
	minAmp := a.RefAmps[i] * math.Pow(10, -AttenMaxDB/20)
	if g < minAmp/2 {
		return math.Inf(1)
	}
	att := -20 * math.Log10(g/a.RefAmps[i])
	if att < 0 {
		att = 0
	}
	att = math.Round(att/AttenStepDB) * AttenStepDB
	if att > AttenMaxDB {
		return math.Inf(1)
	}
	return att
}

// refine performs coordinate descent over the quantized attenuator grid:
// independent rounding of each tap limits cancellation to ~40 dB, but taps
// with different phases form a fine joint lattice, so stepping attenuators
// against the measured residual — exactly what the hardware's baseband
// tuning loop does (Sec 4.3) — recovers the deep null. Returns the number
// of sweeps performed.
func (a *AnalogCanceller) refine(si *SIChannel, bw float64, nFreq int) int {
	best := a.CancellationDB(si, bw, nFreq)
	nLevels := int(AttenMaxDB/AttenStepDB) + 1
	iters := 0
	for iter := 0; iter < 200; iter++ {
		iters++
		improved := false
		for i := range a.AttenDB {
			orig := a.AttenDB[i]
			bestLevel := orig
			// Exhaustive sweep of this tap's attenuator, plus "off".
			for l := 0; l <= nLevels; l++ {
				var cand float64
				if l == nLevels {
					cand = math.Inf(1)
				} else {
					cand = float64(l) * AttenStepDB
				}
				a.AttenDB[i] = cand
				if got := a.CancellationDB(si, bw, nFreq); got > best {
					best = got
					bestLevel = cand
					improved = true
				}
			}
			a.AttenDB[i] = bestLevel
		}
		if !improved {
			break
		}
	}
	return iters
}

// CancellationDB measures the in-band power ratio between the raw SI and
// the post-cancellation residual, in dB.
func (a *AnalogCanceller) CancellationDB(si *SIChannel, bw float64, nFreq int) float64 {
	var raw, res float64
	for i := 0; i < nFreq; i++ {
		f := -bw/2 + bw*float64(i)/float64(nFreq-1)
		h := si.FreqResponse(f)
		r := h - a.FreqResponse(f)
		raw += real(h)*real(h) + imag(h)*imag(h)
		res += real(r)*real(r) + imag(r)*imag(r)
	}
	if res <= 0 {
		return MaxCancellationDB
	}
	c := 10 * math.Log10(raw/res)
	if c > MaxCancellationDB {
		c = MaxCancellationDB
	}
	return c
}

// ResidualFIR returns the baseband sample-domain FIR of the SI channel
// minus the tuned analog canceller — what the digital stage sees.
func (a *AnalogCanceller) ResidualFIR(si *SIChannel, sampleRate float64, nTaps, alignDelay int) []complex128 {
	taps := si.BasebandFIR(sampleRate, nTaps, alignDelay)
	// Subtract the canceller's paths the same way.
	canc := &SIChannel{}
	for i, tau := range a.TapDelaysS {
		if math.IsInf(a.AttenDB[i], 1) {
			continue
		}
		canc.Paths = append(canc.Paths, SIPath{
			DelayS: tau,
			GainDB: 20*math.Log10(a.RefAmps[i]) - a.AttenDB[i],
		})
	}
	ctaps := canc.BasebandFIR(sampleRate, nTaps, alignDelay)
	for i := range taps {
		taps[i] -= ctaps[i]
	}
	return taps
}

// EstimateFIR estimates a causal FIR h (nTaps taps) such that rx ≈ h * ref
// by least squares, with optional Tikhonov regularization. ref is the known
// reference signal (the transmitted samples, or the injected tuning noise);
// rx is the observed receive signal. Both must have equal length, and the
// estimate uses samples from nTaps-1 onward to avoid edge effects.
func EstimateFIR(ref, rx []complex128, nTaps int, lambda float64) ([]complex128, error) {
	if len(ref) != len(rx) {
		panic("sic: EstimateFIR length mismatch")
	}
	rows := len(ref) - nTaps + 1
	if rows < nTaps {
		panic("sic: EstimateFIR needs more samples than taps")
	}
	A := linalg.NewMatrix(rows, nTaps)
	b := make([]complex128, rows)
	for r := 0; r < rows; r++ {
		n := r + nTaps - 1
		b[r] = rx[n]
		for k := 0; k < nTaps; k++ {
			A.Set(r, k, ref[n-k])
		}
	}
	return linalg.LeastSquares(A, b, lambda)
}

// DigitalCanceller is the streaming causal digital cancellation stage: it
// subtracts FIR(tx) from the received samples with *zero* added latency —
// tap 0 applies to the sample currently being transmitted, so no received
// samples are ever buffered (Fig 9a). It wraps pipeline.CancelStage, so it
// slots directly into relay chains and can arm the overlap-save FFT fast
// path for block workloads.
type DigitalCanceller struct {
	stage *pipeline.CancelStage
}

// NewDigitalCanceller builds the canceller from estimated SI taps.
func NewDigitalCanceller(taps []complex128) *DigitalCanceller {
	return &DigitalCanceller{stage: pipeline.NewCancelStage("sic_cancel", taps)}
}

// NumTaps returns the canceller length.
func (d *DigitalCanceller) NumTaps() int { return d.stage.NumTaps() }

// Stage exposes the canceller as a pipeline stage for chain composition.
func (d *DigitalCanceller) Stage() *pipeline.CancelStage { return d.stage }

// EnableFFT arms the overlap-save fast path for block processing. The
// direct form stays in use for per-sample Push and short blocks; outputs
// then agree with the direct form to floating round-off, not bit-exactly.
func (d *DigitalCanceller) EnableFFT() { d.stage.EnableFFT() }

// EnableSoA arms the planar structure-of-arrays fast path: the reference
// filters through the SoA MAC kernel and subtracts without leaving the
// planar domain. Same 1e-9 contract as EnableFFT.
func (d *DigitalCanceller) EnableSoA() { d.stage.EnableSoA() }

// EnableFastPath arms every fast path the canceller length supports.
func (d *DigitalCanceller) EnableFastPath() { d.stage.EnableFastPath() }

// Push consumes one transmitted sample and one received sample and returns
// the cleaned received sample.
func (d *DigitalCanceller) Push(tx, rx complex128) complex128 {
	return d.stage.PushPair(tx, rx)
}

// Process cleans whole blocks (state is preserved across calls).
func (d *DigitalCanceller) Process(tx, rx []complex128) []complex128 {
	out := make([]complex128, len(rx)) //fflint:allow allocfree allocating convenience wrapper; hot paths call ProcessInto with caller-owned buffers
	d.ProcessInto(out, tx, rx)
	return out
}

// ProcessInto cleans a block into a caller-owned buffer, avoiding the
// per-call allocation of Process. out and rx may alias.
func (d *DigitalCanceller) ProcessInto(out, tx, rx []complex128) {
	if len(tx) != len(rx) || len(out) != len(rx) {
		panic("sic: Process length mismatch")
	}
	copy(out, rx)
	d.stage.SetReference(tx)
	d.stage.Process(out)
}

// Reset clears canceller state.
func (d *DigitalCanceller) Reset() { d.stage.Reset() }

// MeasureCancellationDB returns the achieved cancellation: the power ratio
// of the self-interference before and after cancellation, capped at the
// physical MaxCancellationDB ceiling.
func MeasureCancellationDB(siPower, residualPower float64) float64 {
	if siPower <= 0 {
		return 0
	}
	if residualPower <= 0 {
		return MaxCancellationDB
	}
	c := 10 * math.Log10(siPower/residualPower)
	if c > MaxCancellationDB {
		c = MaxCancellationDB
	}
	if c < 0 {
		c = 0
	}
	return c
}
