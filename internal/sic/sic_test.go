package sic

import (
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/rng"
)

func TestSIChannelFreqResponse(t *testing.T) {
	// Single path: magnitude is the path gain, phase rotates with delay.
	c := &SIChannel{Paths: []SIPath{{DelayS: 1e-9, GainDB: -20}}}
	h0 := c.FreqResponse(0)
	if math.Abs(cmplx.Abs(h0)-0.1) > 1e-12 {
		t.Errorf("|H(0)| = %v, want 0.1", cmplx.Abs(h0))
	}
	// Response phase difference across 10 MHz equals 2π·10MHz·1ns.
	h1 := c.FreqResponse(10e6)
	dphi := cmplx.Phase(h1 / h0)
	want := -2 * math.Pi * 10e6 * 1e-9
	if math.Abs(dphi-want) > 1e-9 {
		t.Errorf("phase slope %v, want %v", dphi, want)
	}
}

func TestBasebandFIRMatchesFreqResponse(t *testing.T) {
	// The sample-domain FIR must reproduce the channel's in-band frequency
	// response (up to the alignment delay's linear phase).
	src := rng.New(1)
	c := NewTypicalSIChannel(src)
	const fs = 20e6
	const nTaps = 32
	const align = 2
	taps := c.BasebandFIR(fs, nTaps, align)
	for _, k := range []int{-20, -5, 5, 20} {
		f := float64(k) / 64 * fs
		var got complex128
		for d, tap := range taps {
			got += tap * cmplx.Exp(complex(0, -2*math.Pi*f/fs*float64(d)))
		}
		// Compensate the alignment delay.
		got *= cmplx.Exp(complex(0, 2*math.Pi*f/fs*align))
		want := c.FreqResponse(f)
		if cmplx.Abs(got-want) > 0.02*cmplx.Abs(want)+1e-6 {
			t.Errorf("bin %d: FIR response %v, channel %v", k, got, want)
		}
	}
}

func TestAnalogCancellerDeepNulls(t *testing.T) {
	// Sec 3.3/4.3: the paper's 8-tap hardware reaches ~70 dB. Our
	// mechanistic simulation of the same structure (fixed delays, 0.25 dB
	// step attenuators, measurement-driven tuning) reaches a 50+ dB mean
	// with worst cases in the low 40s; the gap is documented in
	// EXPERIMENTS.md. This test pins the achieved band so regressions in
	// the tuner are caught.
	if testing.Short() {
		t.Skip("analog tuning sweep is slow")
	}
	src := rng.New(2)
	vals := make([]float64, 0, 6)
	for i := 0; i < 6; i++ {
		si := NewTypicalSIChannel(src)
		a := NewAnalogCanceller(1.0)
		got := a.Tune(si, 20e6, 16)
		vals = append(vals, got)
	}
	var sum, min float64
	min = math.Inf(1)
	for _, v := range vals {
		sum += v
		if v < min {
			min = v
		}
	}
	mean := sum / float64(len(vals))
	if mean < 50 {
		t.Errorf("mean analog cancellation %.1f dB, want >= 50 (values %v)", mean, vals)
	}
	if min < 40 {
		t.Errorf("worst analog cancellation %.1f dB too low (values %v)", min, vals)
	}
}

func TestAnalogQuantizationMatters(t *testing.T) {
	// With a single-step-quantized (non-refined) canceller the floor is much
	// higher; the refinement loop must be doing real work. We emulate the
	// unrefined state by re-quantizing a fresh NNLS fit and skipping refine:
	// easiest observable — refined result must beat 40 dB, the
	// independent-rounding bound for a −15 dB dominant path.
	src := rng.New(3)
	si := NewTypicalSIChannel(src)
	a := NewAnalogCanceller(1.0)
	got := a.Tune(si, 20e6, 16)
	if got < 42 {
		t.Errorf("refined cancellation %.1f dB does not beat the ~37 dB independent-rounding floor", got)
	}
}

func TestAnalogCancellerAttenuatorsQuantized(t *testing.T) {
	src := rng.New(4)
	si := NewTypicalSIChannel(src)
	a := NewAnalogCanceller(1.0)
	a.Tune(si, 20e6, 16)
	for i, att := range a.AttenDB {
		if math.IsInf(att, 1) {
			continue
		}
		if att < 0 || att > AttenMaxDB {
			t.Errorf("tap %d attenuation %v out of range", i, att)
		}
		steps := att / AttenStepDB
		if math.Abs(steps-math.Round(steps)) > 1e-9 {
			t.Errorf("tap %d attenuation %v not on the 0.25 dB grid", i, att)
		}
	}
}

func TestEstimateFIRRecoversChannel(t *testing.T) {
	src := rng.New(5)
	h := []complex128{0.5, -0.2i, 0.1, 0, 0.05}
	tx := src.NoiseVector(2000, 1)
	rx := dsp.FilterSame(tx, h)
	got, err := EstimateFIR(tx, rx, len(h), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if cmplx.Abs(got[i]-h[i]) > 1e-9 {
			t.Fatalf("tap %d: %v vs %v", i, got[i], h[i])
		}
	}
}

func TestEstimateFIRUnderNoise(t *testing.T) {
	src := rng.New(6)
	h := []complex128{0.3, 0.1i}
	tx := src.NoiseVector(20000, 1)
	rx := dsp.FilterSame(tx, h)
	rx = dsp.Add(rx, src.NoiseVector(len(rx), 1e-6))
	got, err := EstimateFIR(tx, rx, 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got[0]-h[0]) > 1e-3 || cmplx.Abs(got[1]-h[1]) > 1e-3 {
		t.Errorf("noisy estimate off: %v", got[:2])
	}
}

func TestDigitalCancellerZeroLatency(t *testing.T) {
	// The canceller must clean the *current* received sample using the
	// *current* transmitted sample — no buffering (Fig 9a). With SI taps
	// h[0]=1 only, rx[n] = tx[n], and the output must be zero from sample 0.
	d := NewDigitalCanceller([]complex128{1})
	for n := 0; n < 10; n++ {
		tx := complex(float64(n+1), -1)
		if out := d.Push(tx, tx); cmplx.Abs(out) > 1e-15 {
			t.Fatalf("sample %d not cancelled instantaneously: %v", n, out)
		}
	}
}

func TestDigitalCancellerEndToEnd(t *testing.T) {
	// Full digital chain: residual SI channel -> estimate -> streaming
	// cancel; desired signal must survive intact.
	src := rng.New(7)
	hRes := []complex128{0, 0.01, 0.02i, -0.005, 0.001} // post-analog residual
	tx := src.NoiseVector(5000, 100)                    // 20 dBm
	want := src.NoiseVector(5000, 1e-5)                 // −50 dBm desired signal
	rx := dsp.Add(dsp.FilterSame(tx, hRes), want)

	est, err := EstimateFIR(tx, rx, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Estimating on rx that contains the desired signal biases the estimate
	// slightly; with independent tx it stays tiny.
	dc := NewDigitalCanceller(est)
	clean := dc.Process(tx, rx)
	// Residual error vs the desired signal.
	errPow := dsp.Power(dsp.Sub(clean, want))
	sigPow := dsp.Power(want)
	if errPow > sigPow/100 {
		t.Errorf("post-cancellation error %.3g vs signal %.3g", errPow, sigPow)
	}
}

func TestCorrelationTrap(t *testing.T) {
	// The relay-specific failure mode (Sec 3.3): the transmitted signal is
	// a (nearly) delayed copy of the received signal, so an adaptive filter
	// that regresses the received signal on the relayed signal also
	// captures α(f) — and cancellation then removes the *desired* signal.
	src := rng.New(8)
	const n = 6000
	const delay = 3
	const amp = 2.0
	hSI := []complex128{0, 0.05, 0.02i}

	s := src.NoiseVector(n, 1)
	tx := dsp.Scale(dsp.Delay(s, delay), amp)
	rx := dsp.Add(s, dsp.FilterSame(tx, hSI))

	// The trap, made explicit: a non-causal adaptive canceller effectively
	// regresses on the advanced relayed signal (which equals amp·s). The
	// fit then nulls the desired signal along with the SI.
	adv := dsp.Delay(tx, -delay)
	trap, err := EstimateFIR(adv, rx, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	trapClean := NewDigitalCanceller(trap).Process(adv, rx)
	sPow := dsp.Power(s)
	// Ignore edge samples where Delay() zero-padding breaks the identity.
	core := trapClean[10 : n-10]
	if got := dsp.Power(core); got > sPow/20 {
		t.Errorf("correlated estimator failed to exhibit the trap: residual %.3g vs signal %.3g — "+
			"the desired signal should have been (wrongly) cancelled", got, sPow)
	}
}

func TestNoiseInjectionTuningPreservesSignal(t *testing.T) {
	// The fix for the correlation trap: tune against independently injected
	// Gaussian noise. Realistic scales: the relay transmits at 20 dBm
	// (power 100), injects tuning noise 30 dB below (0.1), and the desired
	// source signal arrives at −60 dBm (1e-6) — so the injection dominates
	// the desired signal and the estimate is clean. Tuning happens during a
	// warm-up in which the relay emits only the tuning noise (forwarding
	// off), as when a relay first comes online.
	src := rng.New(88)
	// The estimate must be accurate to roughly −100 dB relative to the
	// forwarded power for the residual to sit below the weak desired
	// signal; the paper achieves this by correlating over long windows
	// (tens of thousands of samples = a few ms at 20 Msps).
	const n = 200000
	hSI := []complex128{0, 0.05, 0.02i}

	inj := src.NoiseVector(n, 0.1)
	sWarm := src.NoiseVector(n, 1e-6)
	rxWarm := dsp.Add(sWarm, dsp.FilterSame(inj, hSI))
	est, err := EstimateFIR(inj, rxWarm, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate must match the SI channel closely.
	for i := 0; i < 3; i++ {
		if cmplx.Abs(est[i]-hSI[i]) > 3e-3 {
			t.Errorf("tap %d estimate %v, want %v", i, est[i], hSI[i])
		}
	}

	// Now operate: relay forwards at full power while the desired signal
	// flows; cancellation with the noise-tuned filter must preserve the
	// desired signal (scaled comparison, power domain).
	s := src.NoiseVector(n, 1e-6)
	txOp := src.NoiseVector(n, 100) // stand-in for the relayed waveform
	rxOp := dsp.Add(s, dsp.FilterSame(txOp, hSI))
	clean := NewDigitalCanceller(est).Process(txOp, rxOp)
	residual := dsp.Power(dsp.Sub(clean, s))
	if residual > 0.05*dsp.Power(s) {
		t.Errorf("noise-injection-tuned canceller distorted the desired signal: %.3g vs %.3g",
			residual, dsp.Power(s))
	}
}

func TestMeasureCancellation(t *testing.T) {
	if got := MeasureCancellationDB(1, 1e-7); math.Abs(got-70) > 1e-9 {
		t.Errorf("70 dB case = %v", got)
	}
	if got := MeasureCancellationDB(1, 0); got != MaxCancellationDB {
		t.Errorf("zero residual should cap at %v, got %v", MaxCancellationDB, got)
	}
	if got := MeasureCancellationDB(1, 1e-20); got != MaxCancellationDB {
		t.Errorf("cap not applied: %v", got)
	}
	if got := MeasureCancellationDB(0, 1); got != 0 {
		t.Errorf("zero SI should be 0, got %v", got)
	}
}

func TestFullCancellationChainReaches110dB(t *testing.T) {
	// Sec 3.3 experimental result: 108–110 dB total cancellation with
	// 20 dBm TX and a −90 dBm noise floor.
	if testing.Short() {
		t.Skip("full-chain tuning sweep is slow")
	}
	src := rng.New(9)
	for trial := 0; trial < 5; trial++ {
		si := NewTypicalSIChannel(src)
		a := NewAnalogCanceller(1.0)
		analogDB := a.Tune(si, 20e6, 16)

		const fs = 20e6
		const nChanTaps = 16
		const align = 2
		residual := a.ResidualFIR(si, fs, nChanTaps, align)

		tx := src.NoiseVector(8000, 100)     // 20 dBm
		noise := src.NoiseVector(8000, 1e-9) // −90 dBm floor
		rxSI := dsp.FilterSame(tx, residual) // post-analog SI
		rx := dsp.Add(rxSI, noise)

		est, err := EstimateFIR(tx, rx, 24, 0)
		if err != nil {
			t.Fatal(err)
		}
		clean := NewDigitalCanceller(est).Process(tx, rx)

		// The paper measures cancellation as transmit power over residual:
		// "the maximum cancellation expected is 110dB, since the maximum
		// transmit power is 20dBm and the noise floor is −90dBm" — passive
		// isolation counts toward the total.
		total := MeasureCancellationDB(dsp.Power(tx), dsp.Power(clean))
		if total < 107 {
			t.Errorf("trial %d: total cancellation %.1f dB (analog %.1f), want 108-110",
				trial, total, analogDB)
		}
	}
}

func BenchmarkAnalogTune(b *testing.B) {
	src := rng.New(10)
	si := NewTypicalSIChannel(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := NewAnalogCanceller(1.0)
		a.Tune(si, 20e6, 16)
	}
}

func BenchmarkDigitalCancel120Taps(b *testing.B) {
	src := rng.New(11)
	taps := src.NoiseVector(120, 1e-4)
	dc := NewDigitalCanceller(taps)
	tx := src.NoiseVector(1024, 100)
	rx := src.NoiseVector(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Process(tx, rx)
	}
}
