package sic

import (
	"fastforward/internal/dsp"
	"fastforward/internal/obs"
	"fastforward/internal/pipeline"
	"fastforward/internal/rng"
)

// Characterization is the Sec 3.3 cancellation chain measured at one
// simulated relay placement: analog-stage tuning quality (continuous fit
// vs the quantized attenuator grid), the digital stage's residual, and the
// total — the numbers the paper reports as ~70 dB analog / 108–110 dB
// total.
type Characterization struct {
	// AnalogDB is the tuned (quantized) analog-stage cancellation.
	AnalogDB float64
	// UnquantizedDB is the continuous NNLS fit before quantization — the
	// analog tuner's ceiling at this placement.
	UnquantizedDB float64
	// TotalDB is analog + digital cancellation against the raw SI power.
	TotalDB float64
	// DigitalResidualDBm is the absolute residual power after the digital
	// stage (the paper's noise-floor target is −90 dBm).
	DigitalResidualDBm float64
	// TuneIterations counts the analog tuner's coordinate-descent sweeps.
	TuneIterations int
}

// CharacterizeConfig sizes a characterization run. The zero value is not
// useful; start from DefaultCharacterizeConfig.
type CharacterizeConfig struct {
	// Trials is the number of independent relay placements.
	Trials int
	// BandwidthHz and NFreq sample the tuning band.
	BandwidthHz float64
	NFreq       int
	// ResidualTaps is the sample-domain FIR length used to realize the
	// post-analog residual channel.
	ResidualTaps int
	// DigitalTaps is the digital canceller length for the cleanup stage.
	DigitalTaps int
	// Samples is the probe length for digital estimation/measurement.
	Samples int
	// TxPowerMW and NoiseMW set the link budget (paper: 20 dBm over a
	// −90 dBm floor).
	TxPowerMW, NoiseMW float64
}

// DefaultCharacterizeConfig mirrors cmd/cancel's historical setup.
func DefaultCharacterizeConfig(trials int) CharacterizeConfig {
	return CharacterizeConfig{
		Trials:       trials,
		BandwidthHz:  20e6,
		NFreq:        16,
		ResidualTaps: 16,
		DigitalTaps:  24,
		Samples:      8000,
		TxPowerMW:    100,  // 20 dBm
		NoiseMW:      1e-9, // -90 dBm
	}
}

// Characterize runs the full cancellation chain over cfg.Trials simulated
// relay placements drawn serially from src, records the sic.* metrics into
// reg (nil disables recording), and returns the per-placement results.
// Both cmd/cancel and cmd/ffsim's cancellation stage run through here, so
// a manifest's sic.analog_db is measured by exactly the code the Sec 3.3
// characterization prints.
func Characterize(src *rng.Source, cfg CharacterizeConfig, reg *obs.Registry) []Characterization {
	analogHist := reg.Histogram("sic.analog_db", "dB", obs.LinearBuckets(0, 5, 24))
	unquantHist := reg.Histogram("sic.analog_unquantized_db", "dB", obs.LinearBuckets(0, 5, 24))
	totalHist := reg.Histogram("sic.total_db", "dB", obs.LinearBuckets(0, 5, 24))
	residHist := reg.Histogram("sic.digital_residual_dbm", "dBm", obs.LinearBuckets(-120, 10, 16))
	placements := reg.Counter("sic.tune_placements", "placements")
	iterations := reg.Counter("sic.tune_iterations", "sweeps")

	out := make([]Characterization, 0, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		si := NewTypicalSIChannel(src)
		a := NewAnalogCanceller(1.0)
		analogDB := a.Tune(si, cfg.BandwidthHz, cfg.NFreq)

		residual := a.ResidualFIR(si, cfg.BandwidthHz, cfg.ResidualTaps, 2)
		tx := src.NoiseVector(cfg.Samples, cfg.TxPowerMW)
		noise := src.NoiseVector(cfg.Samples, cfg.NoiseMW)
		// Streaming FIR stage from zero state is bit-exact with the old
		// dsp.FilterSame call (identical summation order), so the golden
		// characterization vectors are unchanged.
		leak := make([]complex128, len(tx))
		copy(leak, tx)
		pipeline.NewFIRStage("sic_residual", residual).Process(leak)
		dsp.AddInPlace(leak, noise) // leak is locally owned: sum in place
		rx := leak
		c := Characterization{
			AnalogDB:       analogDB,
			UnquantizedDB:  a.LastTune.UnquantizedDB,
			TuneIterations: a.LastTune.RefineIterations,
		}
		est, err := EstimateFIR(tx, rx, cfg.DigitalTaps, 0)
		if err == nil {
			clean := NewDigitalCanceller(est).Process(tx, rx)
			residualMW := dsp.Power(clean)
			c.TotalDB = MeasureCancellationDB(dsp.Power(tx), residualMW)
			c.DigitalResidualDBm = dsp.DB(residualMW)
		}
		out = append(out, c)

		shard := obs.ShardForSeed(int64(i))
		analogHist.Observe(shard, c.AnalogDB)
		unquantHist.Observe(shard, c.UnquantizedDB)
		totalHist.Observe(shard, c.TotalDB)
		residHist.Observe(shard, c.DigitalResidualDBm)
		placements.Inc(shard)
		iterations.Add(shard, uint64(c.TuneIterations))
	}
	return out
}
