package sic

import (
	"testing"

	"fastforward/internal/golden"
	"fastforward/internal/rng"
)

// TestCharacterizeGolden pins the full cancellation chain — analog tap
// placement, attenuator quantization, digital FIR residual — to a
// seed-fixed baseline. Any change to the tuner, the SI channel model, or
// the rng stream discipline shows up here as a >1e-9 drift before it can
// silently move the paper-level figures. Re-baseline with -update.
func TestCharacterizeGolden(t *testing.T) {
	cfg := DefaultCharacterizeConfig(2)
	// Coarse tuning band: the golden gate must stay fast, and drift in the
	// chain is just as visible at NFreq 8.
	cfg.NFreq = 8
	cfg.Samples = 2000
	out := Characterize(rng.New(42), cfg, nil)
	got := map[string]float64{}
	for i, c := range out {
		got[golden.Key("sic", i, "analog_db")] = c.AnalogDB
		got[golden.Key("sic", i, "analog_unquantized_db")] = c.UnquantizedDB
		got[golden.Key("sic", i, "total_db")] = c.TotalDB
		got[golden.Key("sic", i, "digital_residual_dbm")] = c.DigitalResidualDBm
		got[golden.Key("sic", i, "tune_iterations")] = float64(c.TuneIterations)
	}
	golden.Check(t, "testdata/characterize_golden.json", got)
}
