package sic

import (
	"math"
	"sync"
	"testing"

	"fastforward/internal/impair"
	"fastforward/internal/obs"
	"fastforward/internal/rng"
)

func TestMonitorRetuneLogic(t *testing.T) {
	m := NewMonitor(0)
	if !m.Observe(50) {
		t.Error("monitor without a baseline must demand a tune")
	}
	m.Retuned(TuneStats{QuantizedDB: 55})
	if m.Retunes != 0 {
		t.Error("initial tune counted as a re-tune")
	}
	if m.Observe(50) {
		t.Error("5 dB erosion tripped the default 10 dB threshold")
	}
	if !m.Observe(44) {
		t.Error("11 dB erosion did not trip")
	}
	m.Retuned(TuneStats{QuantizedDB: 54})
	if m.Retunes != 1 || m.Erosions != 1 {
		t.Errorf("retunes=%d erosions=%d, want 1/1", m.Retunes, m.Erosions)
	}
	if m.BaselineDB() != 54 {
		t.Errorf("baseline %v, want 54", m.BaselineDB())
	}
	if m.WorstErosionDB != 11 {
		t.Errorf("worst erosion %v, want 11", m.WorstErosionDB)
	}
	// Custom threshold.
	m2 := NewMonitor(3)
	m2.Retuned(TuneStats{QuantizedDB: 60})
	if m2.Observe(57.5) {
		t.Error("2.5 dB erosion tripped a 3 dB threshold")
	}
	if !m2.Observe(56) {
		t.Error("4 dB erosion did not trip a 3 dB threshold")
	}
}

func TestSIChannelDrift(t *testing.T) {
	src := rng.New(5)
	si := NewTypicalSIChannel(src)
	// rho >= 1 is the identity (same object).
	if si.Drift(src, 1) != si {
		t.Error("rho=1 should return the channel unchanged")
	}
	aged := si.Drift(rng.New(6), 0.9)
	if len(aged.Paths) != len(si.Paths) {
		t.Fatal("drift changed the path count")
	}
	for i := range aged.Paths {
		if aged.Paths[i].DelayS != si.Paths[i].DelayS {
			t.Errorf("path %d delay drifted — geometry must stay fixed", i)
		}
		if aged.Paths[i].GainDB == si.Paths[i].GainDB {
			t.Errorf("path %d gain unchanged under drift", i)
		}
	}
	// Deterministic.
	again := si.Drift(rng.New(6), 0.9)
	for i := range aged.Paths {
		if aged.Paths[i] != again.Paths[i] {
			t.Fatal("drift not deterministic")
		}
	}
	// Statistical sanity: over many drifts the mean power gain of the
	// dominant path is preserved within a factor of 2.
	var pw, pw0 float64
	n := 500
	for k := 0; k < n; k++ {
		d := si.Drift(rng.New(int64(100+k)), 0.8)
		pw += math.Pow(10, d.Paths[0].GainDB/10)
	}
	pw0 = math.Pow(10, si.Paths[0].GainDB/10)
	if r := pw / float64(n) / pw0; r < 0.5 || r > 2 {
		t.Errorf("dominant-path mean power ratio %v after drift, want ≈1", r)
	}
}

func TestCharacterizeDriftRetunesAndCaps(t *testing.T) {
	if testing.Short() {
		t.Skip("drift characterization tunes repeatedly; slow")
	}
	cfg := DefaultCharacterizeConfig(1)
	// A coarser tuning band keeps the repeated re-tunes affordable; the
	// monitor logic under test is insensitive to NFreq.
	cfg.NFreq = 8
	cfg.Samples = 2000
	p, _ := impair.ByName("severe")
	reg := obs.New()
	// Strong per-interval drift (rho 0.6) must erode a static tuning
	// quickly and trip the monitor at least once over 3 intervals.
	out := CharacterizeDrift(rng.New(11), cfg, &p, 3, 0.6, reg)
	if len(out) != 1 {
		t.Fatalf("want 1 characterization, got %d", len(out))
	}
	dc := out[0]
	if dc.InitialDB < 40 {
		t.Errorf("initial tune %.1f dB unexpectedly poor", dc.InitialDB)
	}
	if dc.MinAchievedDB >= dc.InitialDB {
		t.Error("drift never eroded cancellation")
	}
	if dc.Retunes == 0 {
		t.Error("monitor never demanded a re-tune under rho=0.7 drift")
	}
	floor := p.CancellationFloorDB()
	if dc.FloorDB != floor {
		t.Errorf("FloorDB %v != profile floor %v", dc.FloorDB, floor)
	}
	if dc.EffectiveTotalDB > floor {
		t.Errorf("effective total %.1f exceeds impairment floor %.1f",
			dc.EffectiveTotalDB, floor)
	}
	// Deterministic re-run.
	out2 := CharacterizeDrift(rng.New(11), cfg, &p, 3, 0.6, nil)
	if out2[0].EffectiveTotalDB != dc.EffectiveTotalDB || out2[0].Retunes != dc.Retunes {
		t.Error("drift characterization not deterministic")
	}
}

// Concurrent placements recording into one shared registry — the pattern
// cmd/ffsim's parallel sweep uses. Run under -race (make race includes
// internal/sic) this exercises the obs sharded accumulators against the
// tuner's compute loops.
func TestConcurrentCharacterizeSharedRegistry(t *testing.T) {
	reg := obs.New()
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := DefaultCharacterizeConfig(1)
			cfg.NFreq = 4
			cfg.Samples = 1000
			Characterize(rng.New(rng.ItemSeed(77, w)), cfg, reg)
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	m, ok := snap.Metrics["sic.tune_placements"]
	if !ok || m.Value == nil || *m.Value != workers {
		t.Errorf("registry placements metric = %+v, want %d", m, workers)
	}
}
