package sic

import (
	"math"
	"math/cmplx"

	"fastforward/internal/impair"
	"fastforward/internal/obs"
	"fastforward/internal/rng"
)

// DefaultRetuneThresholdDB is how far the achieved analog cancellation may
// erode below the tuned baseline before the monitor demands a re-tune.
// 10 dB mirrors the hardware practice of re-running the Sec 4.3 tuning
// loop only when the residual visibly rises out of the digital stage's
// comfortable range, not on every fade.
const DefaultRetuneThresholdDB = 10.0

// Monitor watches the achieved analog-stage cancellation against the
// baseline of the most recent tune (its TuneStats.QuantizedDB) and decides
// when the canceller must re-tune: the SI channel drifts as the
// environment moves, and a static attenuator setting slides off the null.
type Monitor struct {
	// ThresholdDB is the erosion that triggers a re-tune; <= 0 uses
	// DefaultRetuneThresholdDB.
	ThresholdDB float64

	// Retunes counts re-tunes the monitor has demanded (Retuned calls
	// after the first).
	Retunes int
	// Erosions counts observations that breached the threshold.
	Erosions int
	// WorstErosionDB is the largest baseline-minus-achieved seen.
	WorstErosionDB float64

	baselineDB   float64
	haveBaseline bool
}

// NewMonitor returns a monitor with the given erosion threshold
// (<= 0 selects DefaultRetuneThresholdDB).
func NewMonitor(thresholdDB float64) *Monitor {
	return &Monitor{ThresholdDB: thresholdDB}
}

func (m *Monitor) threshold() float64 {
	if m.ThresholdDB > 0 {
		return m.ThresholdDB
	}
	return DefaultRetuneThresholdDB
}

// Retuned records the outcome of a tune as the new baseline. The first
// call is the initial tune; subsequent calls count as re-tunes.
func (m *Monitor) Retuned(stats TuneStats) {
	if m.haveBaseline {
		m.Retunes++
	}
	m.baselineDB = stats.QuantizedDB
	m.haveBaseline = true
}

// BaselineDB returns the cancellation of the tune the monitor is watching
// against (0 before the first Retuned call).
func (m *Monitor) BaselineDB() float64 { return m.baselineDB }

// Observe feeds one achieved-cancellation measurement and reports whether
// the erosion past the threshold demands a re-tune. Without a baseline it
// always demands one.
func (m *Monitor) Observe(achievedDB float64) bool {
	if !m.haveBaseline {
		return true
	}
	erosion := m.baselineDB - achievedDB
	if erosion > m.WorstErosionDB {
		m.WorstErosionDB = erosion
	}
	if erosion > m.threshold() {
		m.Erosions++
		return true
	}
	return false
}

// Drift returns an aged copy of the SI channel: each path's complex gain
// decorrelates to correlation rho with an innovation matching its own
// power (the same Gauss-Markov model impair.AgeCSI and the cnf staleness
// study use), while path delays stay fixed — the geometry is static over
// coherence-time scales, it is the reflection coefficients and phases that
// wander. rho >= 1 returns the channel unchanged.
func (c *SIChannel) Drift(src *rng.Source, rho float64) *SIChannel {
	if rho >= 1 {
		return c
	}
	innov := 1 - rho*rho
	out := &SIChannel{Paths: make([]SIPath, len(c.Paths))}
	for i, p := range c.Paths {
		g := cmplx.Rect(math.Pow(10, p.GainDB/20), p.PhaseRad)
		pw := real(g)*real(g) + imag(g)*imag(g)
		aged := complex(rho, 0)*g + src.ComplexGaussian(innov*pw)
		amp := cmplx.Abs(aged)
		if amp <= 0 {
			amp = 1e-30
		}
		out.Paths[i] = SIPath{
			DelayS:   p.DelayS,
			GainDB:   20 * math.Log10(amp),
			PhaseRad: cmplx.Phase(aged),
		}
	}
	return out
}

// DriftStep is one interval of a drift characterization: the analog
// cancellation the stale attenuator setting still achieves against the
// drifted SI channel, and whether the monitor demanded (and the chain
// performed) a re-tune at this interval.
type DriftStep struct {
	AchievedDB float64
	Retuned    bool
}

// DriftCharacterization measures one placement's cancellation under SI
// drift and front-end impairments: tune once, drift the channel interval
// by interval, re-tune only when the Monitor trips.
type DriftCharacterization struct {
	// InitialDB is the first tune's analog cancellation.
	InitialDB float64
	// Steps holds the per-interval achieved cancellation (before any
	// re-tune at that interval restores it).
	Steps []DriftStep
	// MinAchievedDB is the worst pre-retune analog cancellation seen.
	MinAchievedDB float64
	// Retunes counts monitor-demanded re-tunes.
	Retunes int
	// FloorDB is the impairment profile's cancellation floor (+Inf when
	// ideal).
	FloorDB float64
	// EffectiveTotalDB is the end-to-end cancellation: the ideal chain
	// total capped by the impairment floor, using the worst drift interval
	// for the analog stage.
	EffectiveTotalDB float64
}

// CharacterizeDrift runs cfg.Trials placements through tune → drift →
// monitor → re-tune cycles under the given impairment profile, recording
// the sic.retune/erosion metrics OBSERVABILITY.md documents. intervals is
// the number of drift steps per placement; rho is the per-interval
// Gauss-Markov correlation of the SI paths (use profile.AgingRho() to tie
// it to the profile's CSI age, or pass explicitly). reg may be nil.
func CharacterizeDrift(src *rng.Source, cfg CharacterizeConfig, profile *impair.Profile, intervals int, rho float64, reg *obs.Registry) []DriftCharacterization {
	achievedHist := reg.Histogram("sic.drift_achieved_db", "dB", obs.LinearBuckets(0, 5, 24))
	erosionHist := reg.Histogram("sic.drift_erosion_db", "dB", obs.LinearBuckets(0, 2, 16))
	effectiveHist := reg.Histogram("sic.effective_total_db", "dB", obs.LinearBuckets(0, 5, 24))
	retunes := reg.Counter("sic.retunes", "retunes")
	intervalsRun := reg.Counter("sic.drift_intervals", "intervals")

	floorDB := profile.CancellationFloorDB()
	out := make([]DriftCharacterization, 0, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		shard := obs.ShardForSeed(int64(i))
		si := NewTypicalSIChannel(src)
		a := NewAnalogCanceller(1.0)
		mon := NewMonitor(0)
		initial := a.Tune(si, cfg.BandwidthHz, cfg.NFreq)
		mon.Retuned(a.LastTune)

		dc := DriftCharacterization{
			InitialDB:     initial,
			MinAchievedDB: initial,
			FloorDB:       floorDB,
		}
		for step := 0; step < intervals; step++ {
			si = si.Drift(src, rho)
			achieved := a.CancellationDB(si, cfg.BandwidthHz, cfg.NFreq)
			st := DriftStep{AchievedDB: achieved}
			if achieved < dc.MinAchievedDB {
				dc.MinAchievedDB = achieved
			}
			if mon.Observe(achieved) {
				a.Tune(si, cfg.BandwidthHz, cfg.NFreq)
				mon.Retuned(a.LastTune)
				st.Retuned = true
				dc.Retunes++
			}
			dc.Steps = append(dc.Steps, st)
			achievedHist.Observe(shard, achieved)
			erosionHist.Observe(shard, mon.BaselineDB()-achieved)
			intervalsRun.Inc(shard)
		}
		// End-to-end: the digital stage cleans what the (worst-interval)
		// analog stage left, but the impairment floor caps the total —
		// a linear canceller cannot subtract nonlinear/time-varying error.
		idealTotal := dc.MinAchievedDB + (MaxCancellationDB - initial)
		if idealTotal > MaxCancellationDB {
			idealTotal = MaxCancellationDB
		}
		dc.EffectiveTotalDB = profile.EffectiveCancellationDB(idealTotal)
		effectiveHist.Observe(shard, dc.EffectiveTotalDB)
		retunes.Add(shard, uint64(dc.Retunes))
		out = append(out, dc)
	}
	return out
}
