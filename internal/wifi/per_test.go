package wifi

import (
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/ofdm"
	"fastforward/internal/rng"
)

// TestMCSThresholdsMatchCodec validates the MCS sensitivity table (which
// drives every throughput prediction in the harness) against the actual
// software receiver: a few dB above threshold packets sail through; a few
// dB below they mostly fail. This pins the SNR→rate mapping to the real
// PHY rather than to folklore numbers.
func TestMCSThresholdsMatchCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("PER sweep is slow")
	}
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(120, 1)
	noise := rng.New(2)
	const trials = 8
	for _, m := range MCSList() {
		run := func(snrDB float64) int {
			ok := 0
			for i := 0; i < trials; i++ {
				wave, err := c.Encode(payload, m)
				if err != nil {
					t.Fatal(err)
				}
				rx := dsp.Add(wave, noise.NoiseVector(len(wave), 1/dsp.Linear(snrDB)))
				if res, err := c.Decode(rx); err == nil && res.FCSOK {
					ok++
				}
			}
			return ok
		}
		// Near MCS0's 2 dB threshold, packet *detection* (not decoding)
		// limits the software receiver, so probe it a little higher; real
		// hardware runs AGC-assisted correlators there.
		aboveMargin := 6.0
		if m.Index == 0 {
			aboveMargin = 9
		}
		// The table's upper-MCS thresholds (the paper quotes 28 dB for the
		// highest rate) include hardware margins — EVM floor, phase noise —
		// that an impairment-free simulation doesn't have, so the clean
		// receiver works a few dB below them; probe further down there.
		belowMargin := 4.0
		if m.Index >= 7 {
			belowMargin = 9
		}
		above := run(m.MinSNRdB + aboveMargin)
		below := run(m.MinSNRdB - belowMargin)
		if above < trials-2 {
			t.Errorf("%v: only %d/%d decoded at threshold+%.0fdB", m, above, trials, aboveMargin)
		}
		if below > trials/2 {
			t.Errorf("%v: %d/%d decoded at threshold-%.0fdB — table too pessimistic", m, below, trials, belowMargin)
		}
	}
}

// TestPERMonotoneInSNR checks the packet error rate falls monotonically
// (within sampling noise) as SNR rises through an MCS's operating region.
func TestPERMonotoneInSNR(t *testing.T) {
	if testing.Short() {
		t.Skip("PER sweep is slow")
	}
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(100, 3)
	noise := rng.New(4)
	m := MCSList()[4]
	const trials = 8
	per := func(snrDB float64) float64 {
		fail := 0
		for i := 0; i < trials; i++ {
			wave, _ := c.Encode(payload, m)
			rx := dsp.Add(wave, noise.NoiseVector(len(wave), 1/dsp.Linear(snrDB)))
			if res, err := c.Decode(rx); err != nil || !res.FCSOK {
				fail++
			}
		}
		return float64(fail) / trials
	}
	low := per(m.MinSNRdB - 5)
	mid := per(m.MinSNRdB)
	high := per(m.MinSNRdB + 6)
	if !(low >= mid && mid >= high) {
		t.Errorf("PER not monotone: %.2f @-5dB, %.2f @0dB, %.2f @+6dB rel threshold",
			low, mid, high)
	}
	if high > 0.2 {
		t.Errorf("PER %.2f at +6dB too high", high)
	}
	if low < 0.5 {
		t.Errorf("PER %.2f at -5dB too low", low)
	}
}
