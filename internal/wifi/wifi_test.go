package wifi

import (
	"bytes"
	"math"
	"testing"

	"fastforward/internal/dsp"
	"fastforward/internal/ofdm"
	"fastforward/internal/rng"
)

func testPayload(n int, seed int64) []byte {
	s := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(s.Intn(256))
	}
	return b
}

func TestMCSTable(t *testing.T) {
	p := ofdm.Default20MHz()
	list := MCSList()
	if len(list) != 10 {
		t.Fatalf("MCS table has %d entries", len(list))
	}
	// Rates must be strictly increasing with index.
	prev := 0.0
	for _, m := range list {
		r := m.PHYRateMbps(p, 1)
		if r <= prev {
			t.Errorf("%v rate %v not increasing", m, r)
		}
		prev = r
	}
	// MCS0: BPSK 1/2 over 52 data carriers: 26 bits / 3.6us = 7.22 Mbps.
	r0 := list[0].PHYRateMbps(p, 1)
	if math.Abs(r0-26.0/3.6) > 1e-9 {
		t.Errorf("MCS0 rate %v, want %v", r0, 26.0/3.6)
	}
	// MCS8 (256-QAM 3/4) needs 28 dB, the paper's quoted max.
	if list[8].MinSNRdB != 28 {
		t.Errorf("MCS8 threshold %v, want 28", list[8].MinSNRdB)
	}
	// 2 streams double the rate.
	if got := list[5].PHYRateMbps(p, 2); math.Abs(got-2*list[5].PHYRateMbps(p, 1)) > 1e-9 {
		t.Error("2-stream rate is not double")
	}
}

func TestHighestMCSForSNR(t *testing.T) {
	if _, ok := HighestMCSForSNR(0); ok {
		t.Error("0 dB should not sustain any MCS")
	}
	m, ok := HighestMCSForSNR(2)
	if !ok || m.Index != 0 {
		t.Errorf("2 dB -> %v, want MCS0", m)
	}
	m, ok = HighestMCSForSNR(19)
	if !ok || m.Index != 5 {
		t.Errorf("19 dB -> %v, want MCS5", m)
	}
	m, ok = HighestMCSForSNR(100)
	if !ok || m.Index != 9 {
		t.Errorf("100 dB -> %v, want MCS9", m)
	}
}

func TestMaxSupportedRate(t *testing.T) {
	p := ofdm.Default20MHz()
	if r := MaxSupportedRateMbps(p, -5, 2); r != 0 {
		t.Errorf("below sensitivity rate = %v, want 0", r)
	}
	if r := MaxSupportedRateMbps(p, 30, 2); r <= MaxSupportedRateMbps(p, 12, 2) {
		t.Error("higher SNR should never reduce rate")
	}
}

func TestEncodeProducesUnitPower(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	wave, err := c.Encode(testPayload(200, 1), MCSList()[3])
	if err != nil {
		t.Fatal(err)
	}
	if p := dsp.Power(wave); math.Abs(p-1) > 1e-9 {
		t.Errorf("frame power %v, want 1", p)
	}
}

func TestCleanRoundTripAllMCS(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(300, 2)
	for _, m := range MCSList() {
		wave, err := c.Encode(payload, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Surround with silence so detection has to work.
		rx := make([]complex128, 0, len(wave)+300)
		rx = append(rx, make([]complex128, 150)...)
		rx = append(rx, wave...)
		rx = append(rx, make([]complex128, 150)...)
		res, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("%v: decode: %v", m, err)
		}
		if !res.FCSOK {
			t.Fatalf("%v: FCS failed on clean channel", m)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatalf("%v: payload mismatch", m)
		}
		if res.MCS.Index != m.Index {
			t.Fatalf("%v: SIG decoded MCS %d", m, res.MCS.Index)
		}
	}
}

func TestRoundTripWithNoise(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	noise := rng.New(3)
	payload := testPayload(100, 4)
	// Each MCS at 6 dB above threshold must decode.
	for _, m := range MCSList() {
		wave, _ := c.Encode(payload, m)
		snr := dsp.Linear(m.MinSNRdB + 6)
		rx := dsp.Add(wave, noise.NoiseVector(len(wave), 1/snr))
		res, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("%v at %v dB: %v", m, m.MinSNRdB+6, err)
		}
		if !res.FCSOK {
			t.Fatalf("%v at %.0f dB SNR: FCS failed", m, m.MinSNRdB+6)
		}
	}
}

func TestRoundTripWithCFO(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(120, 5)
	wave, _ := c.Encode(payload, MCSList()[4])
	for _, cfo := range []float64{-120e3, 37e3, 200e3} {
		rx, _ := dsp.ApplyCFO(wave, cfo, 20e6, 0.7)
		res, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("CFO %v: %v", cfo, err)
		}
		if !res.FCSOK {
			t.Fatalf("CFO %v Hz: FCS failed", cfo)
		}
		if math.Abs(res.CFOHz-cfo) > 300 {
			t.Errorf("CFO estimate %v, want %v", res.CFOHz, cfo)
		}
	}
}

func TestRoundTripMultipath(t *testing.T) {
	// A frequency-selective channel within the CP must be equalized away.
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(150, 6)
	wave, _ := c.Encode(payload, MCSList()[4])
	taps := []complex128{0.7, 0, 0.35i, 0.1, 0, -0.15}
	noise := rng.New(7)
	rx := dsp.FilterSame(wave, taps)
	rx = dsp.Add(rx, noise.NoiseVector(len(rx), dsp.Power(rx)/dsp.Linear(30)))
	res, err := c.Decode(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK {
		t.Fatal("FCS failed over multipath channel")
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted over multipath channel")
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(80, 8)
	wave, _ := c.Encode(payload, MCSList()[7]) // fragile MCS
	noise := rng.New(9)
	// 5 dB below threshold: essentially guaranteed bit errors.
	rx := dsp.Add(wave, noise.NoiseVector(len(wave), 1/dsp.Linear(MCSList()[7].MinSNRdB-5)))
	res, err := c.Decode(rx)
	if err != nil {
		// SIG failure is an acceptable form of detected corruption.
		return
	}
	if res.FCSOK && !bytes.Equal(res.Payload, payload) {
		t.Fatal("FCS passed on corrupted payload")
	}
}

func TestLowSNRFailsHighMCSPassesLowMCS(t *testing.T) {
	// The MCS thresholds should be real: at 10 dB, MCS1 decodes and MCS7
	// does not (statistically: use several trials).
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(100, 10)
	noise := rng.New(11)
	trials := 5
	lowOK, highOK := 0, 0
	for i := 0; i < trials; i++ {
		waveLow, _ := c.Encode(payload, MCSList()[1])
		rx := dsp.Add(waveLow, noise.NoiseVector(len(waveLow), 1/dsp.Linear(10)))
		if res, err := c.Decode(rx); err == nil && res.FCSOK {
			lowOK++
		}
		waveHigh, _ := c.Encode(payload, MCSList()[7])
		rx = dsp.Add(waveHigh, noise.NoiseVector(len(waveHigh), 1/dsp.Linear(10)))
		if res, err := c.Decode(rx); err == nil && res.FCSOK {
			highOK++
		}
	}
	if lowOK != trials {
		t.Errorf("MCS1 at 10dB decoded %d/%d", lowOK, trials)
	}
	if highOK != 0 {
		t.Errorf("MCS7 at 10dB decoded %d/%d, expected 0", highOK, trials)
	}
}

func TestSNREstimateTracksTruth(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(60, 12)
	noise := rng.New(13)
	for _, snrDB := range []float64{10, 20, 30} {
		wave, _ := c.Encode(payload, MCSList()[0])
		rx := dsp.Add(wave, noise.NoiseVector(len(wave), 1/dsp.Linear(snrDB)))
		res, err := c.Decode(rx)
		if err != nil {
			t.Fatalf("snr %v: %v", snrDB, err)
		}
		// Post-FFT subcarrier SNR differs from the sample-domain setting by
		// the used-carrier fraction; allow generous tolerance.
		if math.Abs(res.SNRdB-snrDB) > 4 {
			t.Errorf("SNR estimate %v, want ~%v", res.SNRdB, snrDB)
		}
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	c := NewCodec(ofdm.Default20MHz())
	if _, err := c.Encode(make([]byte, maxPayload), MCSList()[0]); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestShannonRate(t *testing.T) {
	p := ofdm.Default20MHz()
	// 20 MHz at 0 dB -> 20 Mbps.
	if got := ShannonRateMbps(p, 0); math.Abs(got-20) > 1e-9 {
		t.Errorf("Shannon at 0dB = %v, want 20", got)
	}
	// Diminishing returns: +6 dB from 64QAM-ish SNR adds only ~33%%-ish.
	lo := ShannonRateMbps(p, 22)
	hi := ShannonRateMbps(p, 28)
	if ratio := hi / lo; ratio > 1.35 {
		t.Errorf("capacity gain 22->28 dB = %v, expected concave (<1.35)", ratio)
	}
}

func BenchmarkEncodeMCS4(b *testing.B) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(500, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload, MCSList()[4]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeMCS4(b *testing.B) {
	c := NewCodec(ofdm.Default20MHz())
	payload := testPayload(500, 1)
	wave, _ := c.Encode(payload, MCSList()[4])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(wave); err != nil {
			b.Fatal(err)
		}
	}
}
