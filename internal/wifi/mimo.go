package wifi

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fastforward/internal/coding"
	"fastforward/internal/dsp"
	"fastforward/internal/fft"
	"fastforward/internal/linalg"
	"fastforward/internal/modulation"
	"fastforward/internal/ofdm"
)

// MIMOCodec is the 2-stream (802.11n-style) frame chain used by the
// paper's 2×2 experiments. The frame layout per transmit antenna is:
//
//	antenna 0: L-STF | L-LTF | SIG | HT-LTF1 | HT-LTF2 | data stream 0
//	antenna 1: 0     | 0     | 0   | HT-LTF1 | −HT-LTF2| data stream 1
//
// The legacy preamble and SIG ride on antenna 0 alone (detection, CFO and
// SIG decoding are SISO); the two HT-LTFs use the orthogonal P-matrix
// [[1,1],[1,−1]] so the receiver can estimate the full 2×2 channel per
// subcarrier, then zero-forcing-detect the two spatial streams.
type MIMOCodec struct {
	p   *ofdm.Params
	pre *ofdm.Preamble
	mod *ofdm.Modulator
	dem *ofdm.Demodulator
}

// NewMIMOCodec builds a 2-stream codec over the numerology.
func NewMIMOCodec(p *ofdm.Params) *MIMOCodec {
	return &MIMOCodec{
		p:   p,
		pre: ofdm.NewPreamble(p),
		mod: ofdm.NewModulator(p),
		dem: ofdm.NewDemodulator(p),
	}
}

// NStreams is the stream count (2 for the paper's prototype).
const NStreams = 2

// Params returns the codec's OFDM numerology.
func (c *MIMOCodec) Params() *ofdm.Params { return c.p }

// htltfSymbol builds one HT-LTF OFDM symbol scaled by sign.
func (c *MIMOCodec) htltfSymbol(sign float64) []complex128 {
	bins := make([]complex128, c.p.NFFT)
	copy(bins, c.pre.LTFBins)
	for i := range bins {
		bins[i] *= complex(sign, 0)
	}
	td, err := c.mod.SymbolFromBins(bins)
	if err != nil {
		panic(err)
	}
	return td
}

// EncodeMIMO builds the two per-antenna waveforms for a frame carrying
// payload at MCS m over two spatial streams. Both waveforms share a
// common scale such that the total transmit power across antennas is 1.
func (c *MIMOCodec) EncodeMIMO(payload []byte, m MCS) ([][]complex128, error) {
	if len(payload)+4 > maxPayload {
		return nil, fmt.Errorf("wifi: payload of %d bytes exceeds maximum", len(payload))
	}
	psdu := make([]byte, 0, len(payload)+4)
	psdu = append(psdu, payload...)
	fcs := crc32.ChecksumIEEE(payload)
	psdu = append(psdu, byte(fcs), byte(fcs>>8), byte(fcs>>16), byte(fcs>>24))

	// Coded bit pipeline (shared encoder, then round-robin stream parsing).
	nDBPS := m.BitsPerSymbol(c.p) * NStreams
	nBits := serviceBits + 8*len(psdu) + tailBits
	nSym := (nBits + nDBPS - 1) / nDBPS
	total := nSym * nDBPS

	bits := make([]byte, 0, total)
	bits = append(bits, make([]byte, serviceBits)...)
	for _, b := range psdu {
		for k := 0; k < 8; k++ {
			bits = append(bits, b>>k&1)
		}
	}
	bits = append(bits, make([]byte, tailBits)...)
	bits = append(bits, make([]byte, total-len(bits))...)
	scrambled := coding.Scramble(bits, scramblerSeed)
	tailStart := serviceBits + 8*len(psdu)
	for i := 0; i < tailBits; i++ {
		scrambled[tailStart+i] = 0
	}
	coded := coding.EncodePunctured(scrambled, m.Rate)

	// Per-symbol, per-stream processing.
	nCBPSS := c.p.NumData() * m.Scheme.BitsPerSymbol() // coded bits/sym/stream
	ant0 := make([]complex128, 0, 4096)
	ant1 := make([]complex128, 0, 4096)

	// Legacy preamble + SIG on antenna 0 (SIG carries MCS and length).
	ant0 = append(ant0, c.pre.Samples()...)
	codec := Codec{p: c.p, pre: c.pre, mod: c.mod, dem: c.dem}
	sig, err := codec.encodeSIG(m.Index, len(psdu))
	if err != nil {
		return nil, err
	}
	ant0 = append(ant0, sig...)
	ant1 = append(ant1, make([]complex128, len(ant0))...)

	// HT-LTFs with the P matrix [[1,1],[1,-1]].
	ant0 = append(ant0, c.htltfSymbol(1)...)
	ant0 = append(ant0, c.htltfSymbol(1)...)
	ant1 = append(ant1, c.htltfSymbol(1)...)
	ant1 = append(ant1, c.htltfSymbol(-1)...)

	for s := 0; s < nSym; s++ {
		symBits := coded[s*NStreams*nCBPSS : (s+1)*NStreams*nCBPSS]
		// Stream parse: round-robin bit by bit.
		streams := [NStreams][]byte{}
		for i, b := range symBits {
			streams[i%NStreams] = append(streams[i%NStreams], b)
		}
		for st := 0; st < NStreams; st++ {
			il := coding.Interleave(streams[st], nCBPSS, m.Scheme.BitsPerSymbol())
			syms, err := modulation.Map(m.Scheme, il)
			if err != nil {
				return nil, err
			}
			td, err := c.mod.Symbol(syms)
			if err != nil {
				return nil, err
			}
			if st == 0 {
				ant0 = append(ant0, td...)
			} else {
				ant1 = append(ant1, td...)
			}
		}
	}
	// Normalize total transmit power (sum over antennas) to 1.
	pw := dsp.Power(ant0) + dsp.Power(ant1)
	if pw > 0 {
		g := 1 / math.Sqrt(pw)
		dsp.ScaleInPlace(ant0, g)
		dsp.ScaleInPlace(ant1, g)
	}
	return [][]complex128{ant0, ant1}, nil
}

// MIMODecodeResult reports 2-stream reception.
type MIMODecodeResult struct {
	Payload    []byte
	FCSOK      bool
	MCS        MCS
	CFOHz      float64
	StartIndex int
	// StreamSNRdB estimates the post-ZF SNR per stream (averaged over
	// subcarriers).
	StreamSNRdB [NStreams]float64
}

// ErrRankDeficient is returned when the estimated 2×2 channel cannot be
// inverted on enough subcarriers to detect two streams — the pinhole
// failure the paper's relay repairs.
var ErrRankDeficient = errors.New("wifi: channel rank-deficient for 2 streams")

// DecodeMIMO runs the 2-stream receiver on two antenna streams (equal
// lengths): detect and synchronize on the legacy preamble, decode SIG,
// estimate the 2×2 channel from the HT-LTFs, zero-forcing detect, and
// decode the shared bit stream.
func (c *MIMOCodec) DecodeMIMO(rx [][]complex128) (*MIMODecodeResult, error) {
	if len(rx) != NStreams || len(rx[0]) != len(rx[1]) {
		return nil, fmt.Errorf("wifi: DecodeMIMO needs %d equal-length streams", NStreams)
	}
	p := c.p
	// Detect on the antenna with the stronger legacy preamble correlation;
	// in practice antenna 0's copy suffices since both receive it.
	start, ok := ofdm.DetectPacket(rx[0], c.pre)
	if !ok {
		if start, ok = ofdm.DetectPacket(rx[1], c.pre); !ok {
			return nil, ErrNoPacket
		}
	}
	start -= syncBackoff
	if start < 0 {
		start = 0
	}
	if start+c.pre.Len()+3*p.SymbolLen() > len(rx[0]) {
		return nil, fmt.Errorf("wifi: truncated MIMO frame")
	}
	f0 := rx[0][start:]
	f1 := rx[1][start:]
	cfo := ofdm.EstimateCFO(f0, c.pre)
	f0 = ofdm.CorrectCFO(f0, cfo, p.SampleRate)
	f1 = ofdm.CorrectCFO(f1, cfo, p.SampleRate)

	res := &MIMODecodeResult{CFOHz: cfo, StartIndex: start}

	// Legacy channel estimate on each rx antenna (from antenna 0's LTF),
	// used only for SIG decoding.
	hLeg := ofdm.EstimateChannel(f0, c.pre)
	eq := ofdm.NewEqualizer(p, hLeg)
	codec := Codec{p: c.p, pre: c.pre, mod: c.mod, dem: c.dem}
	noiseVar := codec.estimateNoiseVar(f0, hLeg)
	off := c.pre.Len()
	mcsIdx, lengthBytes, err := codec.decodeSIG(f0[off:], eq, noiseVar, hLeg)
	if err != nil {
		return nil, err
	}
	m, err := MCSByIndex(mcsIdx)
	if err != nil {
		return nil, ErrSIG
	}
	res.MCS = m
	off += p.SymbolLen()

	// HT-LTF channel estimation: Y(t) per rx antenna and symbol t.
	H, err := c.estimateMIMOChannel(f0, f1, off)
	if err != nil {
		return nil, err
	}
	off += 2 * p.SymbolLen()

	// Data symbols.
	nDBPS := m.BitsPerSymbol(p) * NStreams
	nBits := serviceBits + 8*lengthBytes + tailBits
	nSym := (nBits + nDBPS - 1) / nDBPS
	if off+nSym*p.SymbolLen() > len(f0) {
		return nil, fmt.Errorf("wifi: truncated MIMO data (%d symbols)", nSym)
	}
	nCBPSS := p.NumData() * m.Scheme.BitsPerSymbol()
	soft := make([]float64, 0, nSym*NStreams*nCBPSS)
	var snrAcc [NStreams]float64
	usable := 0
	for s := 0; s < nSym; s++ {
		sym0 := f0[off+s*p.SymbolLen():]
		sym1 := f1[off+s*p.SymbolLen():]
		streamSoft, snrs, err := c.detectSymbol(sym0, sym1, H, m.Scheme, noiseVar)
		if err != nil {
			return nil, err
		}
		for st := 0; st < NStreams; st++ {
			snrAcc[st] += snrs[st]
		}
		usable++
		// Reassemble the round-robin parsed bit order.
		de0 := coding.DeinterleaveSoft(streamSoft[0], nCBPSS, m.Scheme.BitsPerSymbol())
		de1 := coding.DeinterleaveSoft(streamSoft[1], nCBPSS, m.Scheme.BitsPerSymbol())
		for i := 0; i < nCBPSS; i++ {
			soft = append(soft, de0[i], de1[i])
		}
	}
	for st := 0; st < NStreams; st++ {
		if usable > 0 {
			res.StreamSNRdB[st] = snrAcc[st] / float64(usable)
		}
	}
	totalBits := nSym * nDBPS
	scrambled := coding.DecodePunctured(soft, m.Rate, totalBits, false)
	bits := coding.Scramble(scrambled, scramblerSeed)
	psdu := make([]byte, lengthBytes)
	for i := range psdu {
		var b byte
		for k := 0; k < 8; k++ {
			b |= bits[serviceBits+8*i+k] << k
		}
		psdu[i] = b
	}
	if lengthBytes < 4 {
		return res, fmt.Errorf("wifi: PSDU too short for FCS")
	}
	payload := psdu[:lengthBytes-4]
	want := uint32(psdu[lengthBytes-4]) | uint32(psdu[lengthBytes-3])<<8 |
		uint32(psdu[lengthBytes-2])<<16 | uint32(psdu[lengthBytes-1])<<24
	if crc32.ChecksumIEEE(payload) == want {
		res.FCSOK = true
		res.Payload = payload
	}
	return res, nil
}

// estimateMIMOChannel recovers H(k) (2 rx × 2 streams) per subcarrier from
// the two HT-LTF symbols using the P matrix: Y = H·P·L per subcarrier,
// P = [[1,1],[1,-1]], so H = Y·P⁻¹/L with P⁻¹ = P/2.
func (c *MIMOCodec) estimateMIMOChannel(f0, f1 []complex128, off int) (map[int]*linalg.Matrix, error) {
	p := c.p
	if off+2*p.SymbolLen() > len(f0) {
		return nil, fmt.Errorf("wifi: truncated HT-LTF")
	}
	y := [NStreams][2][]complex128{}
	for t := 0; t < 2; t++ {
		base := off + t*p.SymbolLen() + p.CPLen
		y[0][t] = fft.Forward(f0[base : base+p.NFFT])
		y[1][t] = fft.Forward(f1[base : base+p.NFFT])
	}
	H := make(map[int]*linalg.Matrix, p.NumUsed())
	for _, k := range p.UsedCarriers() {
		bin := k
		if bin < 0 {
			bin += p.NFFT
		}
		l := c.pre.LTFBins[bin]
		if l == 0 {
			continue
		}
		m := linalg.NewMatrix(2, 2)
		for r := 0; r < 2; r++ {
			y1 := y[r][0][bin] / l
			y2 := y[r][1][bin] / l
			// H[r][0] = (y1+y2)/2 ; H[r][1] = (y1-y2)/2.
			m.Set(r, 0, (y1+y2)/2)
			m.Set(r, 1, (y1-y2)/2)
		}
		H[k] = m
	}
	return H, nil
}

// detectSymbol zero-forcing-detects one OFDM symbol's two streams and
// soft-demaps them. It returns per-stream LLR slices and per-stream SNR
// estimates in dB.
func (c *MIMOCodec) detectSymbol(sym0, sym1 []complex128, H map[int]*linalg.Matrix, scheme modulation.Scheme, noiseVar float64) ([NStreams][]float64, [NStreams]float64, error) {
	p := c.p
	var out [NStreams][]float64
	var snrs [NStreams]float64
	d0, _, err := c.dem.Symbol(sym0)
	if err != nil {
		return out, snrs, err
	}
	d1, _, err := c.dem.Symbol(sym1)
	if err != nil {
		return out, snrs, err
	}
	bad := 0
	var snrAcc [NStreams]float64
	for i, k := range p.DataCarriers {
		h, okH := H[k]
		var inv *linalg.Matrix
		if okH {
			inv, err = h.Inverse()
		}
		if !okH || err != nil {
			bad++
			for st := 0; st < NStreams; st++ {
				out[st] = append(out[st], make([]float64, scheme.BitsPerSymbol())...)
			}
			continue
		}
		x := inv.MulVec([]complex128{d0[i], d1[i]})
		// Post-ZF noise enhancement: row norms of the inverse scale the
		// noise on each detected stream.
		for st := 0; st < NStreams; st++ {
			var rowPow float64
			for cc := 0; cc < 2; cc++ {
				v := inv.At(st, cc)
				rowPow += real(v)*real(v) + imag(v)*imag(v)
			}
			nv := noiseVar * rowPow
			if nv <= 0 {
				nv = 1e-12
			}
			out[st] = append(out[st], modulation.SoftDemap(scheme, x[st:st+1], nv)...)
			snrAcc[st] += 1 / nv // unit-power constellations
		}
	}
	if bad > len(p.DataCarriers)/2 {
		return out, snrs, ErrRankDeficient
	}
	n := len(p.DataCarriers) - bad
	for st := 0; st < NStreams; st++ {
		if n > 0 {
			snrs[st] = dsp.DB(snrAcc[st] / float64(n))
		}
	}
	return out, snrs, nil
}
