package wifi

import (
	"testing"

	"fastforward/internal/ofdm"
)

func fuzzSamples(data []byte) []complex128 {
	n := len(data) / 4
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := int16(uint16(data[4*i]) | uint16(data[4*i+1])<<8)
		im := int16(uint16(data[4*i+2]) | uint16(data[4*i+3])<<8)
		out[i] = complex(float64(re)/8192, float64(im)/8192)
	}
	return out
}

func fuzzBytes(x []complex128) []byte {
	out := make([]byte, 4*len(x))
	for i, v := range x {
		re := int16(real(v) * 8192)
		im := int16(imag(v) * 8192)
		out[4*i] = byte(uint16(re))
		out[4*i+1] = byte(uint16(re) >> 8)
		out[4*i+2] = byte(uint16(im))
		out[4*i+3] = byte(uint16(im) >> 8)
	}
	return out
}

// FuzzDecode feeds the full frame decoder — packet detect, CFO correction,
// channel estimation, demap, FCS — arbitrary waveforms. The decoder faces
// relayed, impaired, half-overheard signals in every experiment; whatever
// arrives, it must reject cleanly (error) or return a parsed frame, never
// panic or return out-of-range metadata.
func FuzzDecode(f *testing.F) {
	p := ofdm.Default20MHz()
	c := NewCodec(p)
	// Seeds: valid frames at a robust and a dense MCS (int16-quantized, so
	// the mutator starts from decodable airtime), noise, and a bare
	// preamble with no payload symbols behind it.
	for _, idx := range []int{0, 4} {
		if m, err := MCSByIndex(idx); err == nil {
			if tx, err := c.Encode([]byte("fastforward fuzz seed frame"), m); err == nil {
				f.Add(fuzzBytes(tx))
			}
		}
	}
	f.Add(make([]byte, 4096))
	f.Add(fuzzBytes(ofdm.NewPreamble(p).Samples()))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		rx := fuzzSamples(data)
		res, err := c.Decode(rx)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatal("nil DecodeResult without error")
		}
	})
}
