// Package wifi implements a complete 20 MHz 802.11-style frame chain on top
// of the ofdm, modulation and coding packages: MCS definitions up to 256-QAM
// (the paper's headline modulations), a SIG field, scrambling, convolutional
// coding with puncturing, interleaving, OFDM modulation with preamble, and
// the corresponding receiver with packet detection, CFO recovery, channel
// estimation, soft demapping and Viterbi decoding. The FastForward relay
// operates below this layer; the wifi package is what the simulated AP and
// clients run, and what the evaluation uses to turn channels into packet
// error rates and PHY throughput.
package wifi

import (
	"fmt"
	"math"

	"fastforward/internal/coding"
	"fastforward/internal/modulation"
	"fastforward/internal/ofdm"
)

// MCS describes one modulation-and-coding scheme of the PHY.
type MCS struct {
	// Index is the MCS number (0..9 per stream, following 802.11ac).
	Index int
	// Scheme is the constellation.
	Scheme modulation.Scheme
	// Rate is the convolutional code rate.
	Rate coding.Rate
	// MinSNRdB is the minimum post-processing SNR at which this MCS
	// sustains a low packet error rate over an AWGN channel. The table
	// tops out at 28 dB for 256-QAM 3/4, the figure the paper quotes as
	// "the maximum SNR required ... for the highest data rate".
	MinSNRdB float64
}

// mcsTable lists the supported rates in increasing order. SNR thresholds
// follow standard 802.11 receiver sensitivity deltas.
var mcsTable = []MCS{
	{0, modulation.BPSK, coding.Rate1_2, 2},
	{1, modulation.QPSK, coding.Rate1_2, 5},
	{2, modulation.QPSK, coding.Rate3_4, 9},
	{3, modulation.QAM16, coding.Rate1_2, 11},
	{4, modulation.QAM16, coding.Rate3_4, 15},
	{5, modulation.QAM64, coding.Rate2_3, 18},
	{6, modulation.QAM64, coding.Rate3_4, 20},
	{7, modulation.QAM64, coding.Rate5_6, 25},
	{8, modulation.QAM256, coding.Rate3_4, 28},
	{9, modulation.QAM256, coding.Rate5_6, 31},
}

// MCSList returns the MCS table (shared; callers must not modify).
func MCSList() []MCS { return mcsTable }

// MCSByIndex returns the MCS with the given index.
func MCSByIndex(i int) (MCS, error) {
	if i < 0 || i >= len(mcsTable) {
		return MCS{}, fmt.Errorf("wifi: no MCS %d", i)
	}
	return mcsTable[i], nil
}

// BitsPerSymbol returns data bits per OFDM symbol per spatial stream for
// the given numerology.
func (m MCS) BitsPerSymbol(p *ofdm.Params) int {
	coded := p.NumData() * m.Scheme.BitsPerSymbol()
	return int(float64(coded) * m.Rate.Fraction())
}

// PHYRateMbps returns the PHY bitrate in Mbit/s for nStreams spatial
// streams.
func (m MCS) PHYRateMbps(p *ofdm.Params, nStreams int) float64 {
	return float64(m.BitsPerSymbol(p)*nStreams) / p.SymbolDuration() / 1e6
}

// String renders the MCS.
func (m MCS) String() string {
	return fmt.Sprintf("MCS%d(%v %v)", m.Index, m.Scheme, m.Rate)
}

// HighestMCSForSNR returns the fastest MCS whose threshold is at or below
// snrDB, or ok=false if even MCS0 is not sustainable.
func HighestMCSForSNR(snrDB float64) (MCS, bool) {
	best := -1
	for i, m := range mcsTable {
		if snrDB >= m.MinSNRdB {
			best = i
		}
	}
	if best < 0 {
		return MCS{}, false
	}
	return mcsTable[best], true
}

// MaxSupportedRateMbps returns the PHY throughput for the best MCS at
// snrDB with nStreams streams, or 0 below sensitivity. This is the
// "optimal bitrate at any location given the SNR" metric of Sec 5.
func MaxSupportedRateMbps(p *ofdm.Params, snrDB float64, nStreams int) float64 {
	m, ok := HighestMCSForSNR(snrDB)
	if !ok {
		return 0
	}
	return m.PHYRateMbps(p, nStreams)
}

// ShannonRateMbps returns the Shannon capacity in Mbit/s of a single
// stream of bandwidth p.SampleRate at snrDB, for analytic comparisons (the
// paper's diminishing-returns argument in Sec 5.2).
func ShannonRateMbps(p *ofdm.Params, snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	return p.SampleRate * math.Log2(1+snr) / 1e6
}
