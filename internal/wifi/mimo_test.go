package wifi

import (
	"bytes"
	"math"
	"testing"

	"fastforward/internal/channel"
	"fastforward/internal/dsp"
	"fastforward/internal/ofdm"
	"fastforward/internal/rng"
)

// applyMIMO passes two TX streams through a 2x2 channel and adds noise.
func applyMIMO(src *rng.Source, ch *channel.MIMO, tx [][]complex128, noiseMW float64, pad int) [][]complex128 {
	padded := make([][]complex128, len(tx))
	for i := range tx {
		padded[i] = append(append(make([]complex128, pad), tx[i]...), make([]complex128, pad)...)
	}
	rx := ch.Apply(padded)
	if noiseMW > 0 {
		for i := range rx {
			rx[i] = dsp.Add(rx[i], src.NoiseVector(len(rx[i]), noiseMW))
		}
	}
	return rx
}

// identityMIMO returns a 2x2 identity channel scaled by g.
func identityMIMO(g complex128) *channel.MIMO {
	m := channel.NewMIMO(2, 2)
	m.Links[0][1] = channel.NewFlat(0)
	m.Links[1][0] = channel.NewFlat(0)
	m.Links[0][0] = channel.NewFlat(g)
	m.Links[1][1] = channel.NewFlat(g)
	return m
}

func TestMIMOEncodeShape(t *testing.T) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	tx, err := c.EncodeMIMO(testPayload(200, 1), MCSList()[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(tx) != 2 || len(tx[0]) != len(tx[1]) {
		t.Fatal("expected two equal-length streams")
	}
	// Total power across antennas is 1.
	if p := dsp.Power(tx[0]) + dsp.Power(tx[1]); math.Abs(p-1) > 1e-9 {
		t.Errorf("total power %v, want 1", p)
	}
	// Legacy preamble region is silent on antenna 1.
	pre := c.Params()
	silent := ofdm.NewPreamble(pre).Len() + pre.SymbolLen()
	if dsp.Power(tx[1][:silent]) > 0 {
		t.Error("antenna 1 must be silent during legacy preamble + SIG")
	}
}

func TestMIMOCleanRoundTrip(t *testing.T) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(300, 2)
	src := rng.New(3)
	for _, m := range []MCS{MCSList()[0], MCSList()[3], MCSList()[6], MCSList()[8]} {
		tx, err := c.EncodeMIMO(payload, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rx := applyMIMO(src, identityMIMO(1), tx, 0, 100)
		res, err := c.DecodeMIMO(rx)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.FCSOK || !bytes.Equal(res.Payload, payload) {
			t.Fatalf("%v: clean 2x2 roundtrip failed", m)
		}
		if res.MCS.Index != m.Index {
			t.Fatalf("%v: SIG decoded MCS %d", m, res.MCS.Index)
		}
	}
}

func TestMIMORichChannelWithNoise(t *testing.T) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(150, 4)
	src := rng.New(5)
	decoded := 0
	const trials = 6
	for i := 0; i < trials; i++ {
		ch := channel.NewRichScattering(src, 2, 2, 3, 0.5, 1)
		tx, _ := c.EncodeMIMO(payload, MCSList()[3])
		// ~30 dB SNR per antenna.
		rx := applyMIMO(src, ch, tx, 0.5e-3, 100)
		res, err := c.DecodeMIMO(rx)
		if err == nil && res.FCSOK && bytes.Equal(res.Payload, payload) {
			decoded++
		}
	}
	if decoded < trials-1 {
		t.Errorf("decoded %d/%d frames over rich 2x2 channels", decoded, trials)
	}
}

func TestMIMOPinholeFails(t *testing.T) {
	// The Fig 2 pathology at waveform level: a rank-one channel cannot
	// carry two spatial streams no matter the SNR.
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(100, 6)
	src := rng.New(7)
	fails := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		ch := channel.NewPinhole(src, 2, 2, 1, 0.5, 1)
		tx, _ := c.EncodeMIMO(payload, MCSList()[3])
		rx := applyMIMO(src, ch, tx, 1e-5, 100) // generous SNR
		res, err := c.DecodeMIMO(rx)
		if err != nil || !res.FCSOK {
			fails++
		}
	}
	if fails < trials-1 {
		t.Errorf("pinhole channel decoded %d/%d 2-stream frames; expected failure",
			trials-fails, trials)
	}
}

func TestMIMORelayRestoresSecondStream(t *testing.T) {
	// The paper's headline MIMO mechanism, end to end at the waveform
	// level: direct pinhole channel fails 2-stream decoding; adding the
	// relayed path (direct + independent relay path) succeeds.
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(120, 8)
	src := rng.New(9)

	pin := channel.NewPinhole(src, 2, 2, 1, 0.5, 1e-2)
	// Relay path: AP->relay and relay->client both rich; model the relay
	// as an ideal 2x2 forwarder with gain (frequency-flat F=I) to isolate
	// the rank effect.
	sr := channel.NewRichScattering(src, 2, 2, 1, 0.5, 1e-1)
	rd := channel.NewRichScattering(src, 2, 2, 1, 0.5, 1e-1)
	amp := 3.0

	tx, _ := c.EncodeMIMO(payload, MCSList()[2])
	noise := 2e-6

	// Direct only.
	rxDirect := applyMIMO(src, pin, tx, noise, 100)
	resD, errD := c.DecodeMIMO(rxDirect)
	directOK := errD == nil && resD.FCSOK

	// Direct + relayed: relayed = rd(amp * sr(tx)).
	pad := 100
	padded := make([][]complex128, 2)
	for i := range tx {
		padded[i] = append(append(make([]complex128, pad), tx[i]...), make([]complex128, pad)...)
	}
	atRelay := sr.Apply(padded)
	for i := range atRelay {
		dsp.ScaleInPlace(atRelay[i], amp)
	}
	relayed := rd.Apply(atRelay)
	direct := pin.Apply(padded)
	rx := make([][]complex128, 2)
	for i := range rx {
		rx[i] = dsp.Add(direct[i], relayed[i])
		rx[i] = dsp.Add(rx[i], src.NoiseVector(len(rx[i]), noise))
	}
	resR, errR := c.DecodeMIMO(rx)
	relayOK := errR == nil && resR.FCSOK

	if directOK {
		t.Error("pinhole-only 2-stream frame should not decode")
	}
	if !relayOK {
		t.Errorf("relay-assisted 2-stream frame should decode (err=%v)", errR)
	}
}

func TestMIMOWithCFO(t *testing.T) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(80, 10)
	src := rng.New(11)
	tx, _ := c.EncodeMIMO(payload, MCSList()[2])
	for i := range tx {
		tx[i], _ = dsp.ApplyCFO(tx[i], 90e3, 20e6, 0.3)
	}
	rx := applyMIMO(src, identityMIMO(1), tx, 1e-5, 100)
	res, err := c.DecodeMIMO(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK {
		t.Fatal("2x2 frame with CFO failed")
	}
	if math.Abs(res.CFOHz-90e3) > 500 {
		t.Errorf("CFO estimate %v, want 90k", res.CFOHz)
	}
}

func TestMIMOStreamSNREstimates(t *testing.T) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(80, 12)
	src := rng.New(13)
	tx, _ := c.EncodeMIMO(payload, MCSList()[2])
	rx := applyMIMO(src, identityMIMO(1), tx, 1e-4, 100)
	res, err := c.DecodeMIMO(rx)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric identity channel: both streams see similar SNR.
	if math.Abs(res.StreamSNRdB[0]-res.StreamSNRdB[1]) > 3 {
		t.Errorf("stream SNRs should match: %v", res.StreamSNRdB)
	}
	if res.StreamSNRdB[0] < 10 {
		t.Errorf("stream SNR %v too low for this setup", res.StreamSNRdB[0])
	}
}

func BenchmarkMIMOEncodeDecode(b *testing.B) {
	c := NewMIMOCodec(ofdm.Default20MHz())
	payload := testPayload(500, 1)
	src := rng.New(2)
	tx, _ := c.EncodeMIMO(payload, MCSList()[4])
	rx := applyMIMO(src, identityMIMO(1), tx, 1e-6, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeMIMO(rx); err != nil {
			b.Fatal(err)
		}
	}
}
