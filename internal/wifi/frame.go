package wifi

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fastforward/internal/coding"
	"fastforward/internal/dsp"
	"fastforward/internal/fft"
	"fastforward/internal/modulation"
	"fastforward/internal/ofdm"
)

// Codec encodes and decodes complete PHY frames: preamble, SIG symbol and
// data symbols. One Codec is safe for sequential reuse; it is not
// goroutine-safe.
type Codec struct {
	p   *ofdm.Params
	pre *ofdm.Preamble
	mod *ofdm.Modulator
	dem *ofdm.Demodulator
}

// NewCodec builds a frame codec over the given numerology.
func NewCodec(p *ofdm.Params) *Codec {
	return &Codec{
		p:   p,
		pre: ofdm.NewPreamble(p),
		mod: ofdm.NewModulator(p),
		dem: ofdm.NewDemodulator(p),
	}
}

// Params returns the codec's OFDM numerology.
func (c *Codec) Params() *ofdm.Params { return c.p }

// Preamble returns the codec's training fields.
func (c *Codec) Preamble() *ofdm.Preamble { return c.pre }

const (
	serviceBits   = 16
	tailBits      = 6
	scramblerSeed = 93
	// sigUncodedBits is the SIG field payload before coding: 4 MCS bits,
	// 14 length bits, 1 even-parity bit, 6 tail bits, 1 pad bit = 26, which
	// after rate-1/2 coding exactly fills one 52-carrier BPSK symbol.
	sigUncodedBits = 26
)

// maxPayload is the largest payload (including the 4-byte FCS) the 14-bit
// SIG length field can describe.
const maxPayload = 1<<14 - 1

// Encode builds the waveform for a frame carrying payload at the given MCS.
// A CRC-32 FCS is appended to the payload before encoding so the receiver
// can verify integrity. The returned waveform is normalized to unit average
// sample power.
func (c *Codec) Encode(payload []byte, m MCS) ([]complex128, error) {
	if len(payload)+4 > maxPayload {
		return nil, fmt.Errorf("wifi: payload of %d bytes exceeds maximum", len(payload))
	}
	psdu := make([]byte, 0, len(payload)+4)
	psdu = append(psdu, payload...)
	fcs := crc32.ChecksumIEEE(payload)
	psdu = append(psdu, byte(fcs), byte(fcs>>8), byte(fcs>>16), byte(fcs>>24))

	wave := make([]complex128, 0, 4096)
	wave = append(wave, c.pre.Samples()...)

	sig, err := c.encodeSIG(m.Index, len(psdu))
	if err != nil {
		return nil, err
	}
	wave = append(wave, sig...)

	data, err := c.encodeData(psdu, m)
	if err != nil {
		return nil, err
	}
	wave = append(wave, data...)

	// Normalize to unit average power so channel gains are meaningful.
	pw := dsp.Power(wave)
	if pw > 0 {
		dsp.ScaleInPlace(wave, 1/math.Sqrt(pw))
	}
	return wave, nil
}

// encodeSIG builds the one-symbol BPSK rate-1/2 SIG field.
func (c *Codec) encodeSIG(mcsIdx, lengthBytes int) ([]complex128, error) {
	if mcsIdx < 0 || mcsIdx > 15 {
		return nil, fmt.Errorf("wifi: MCS index %d out of SIG range", mcsIdx)
	}
	if lengthBytes < 0 || lengthBytes > maxPayload {
		return nil, fmt.Errorf("wifi: length %d out of SIG range", lengthBytes)
	}
	bits := make([]byte, 0, sigUncodedBits)
	for k := 3; k >= 0; k-- {
		bits = append(bits, byte(mcsIdx>>k&1))
	}
	for k := 13; k >= 0; k-- {
		bits = append(bits, byte(lengthBytes>>k&1))
	}
	var parity byte
	for _, b := range bits {
		parity ^= b
	}
	bits = append(bits, parity)
	bits = append(bits, make([]byte, tailBits+1)...) // tail + pad
	coded := coding.ConvEncode(bits)                 // rate 1/2: 52 bits
	nCBPS := c.p.NumData()                           // BPSK: 1 bit/carrier
	il := coding.Interleave(coded, nCBPS, 1)
	syms, err := modulation.Map(modulation.BPSK, il)
	if err != nil {
		return nil, err
	}
	return c.mod.Symbol(syms)
}

// encodeData builds the data symbols for the PSDU at MCS m.
func (c *Codec) encodeData(psdu []byte, m MCS) ([]complex128, error) {
	nDBPS := m.BitsPerSymbol(c.p)
	nBits := serviceBits + 8*len(psdu) + tailBits
	nSym := (nBits + nDBPS - 1) / nDBPS
	total := nSym * nDBPS

	bits := make([]byte, 0, total)
	bits = append(bits, make([]byte, serviceBits)...)
	for _, b := range psdu {
		for k := 0; k < 8; k++ { // LSB first, 802.11 convention
			bits = append(bits, b>>k&1)
		}
	}
	bits = append(bits, make([]byte, tailBits)...)
	bits = append(bits, make([]byte, total-len(bits))...)

	scrambled := coding.Scramble(bits, scramblerSeed)
	// Restore zero tail so the decoder trellis terminates (802.11 17.3.5.3).
	tailStart := serviceBits + 8*len(psdu)
	for i := 0; i < tailBits; i++ {
		scrambled[tailStart+i] = 0
	}

	coded := coding.EncodePunctured(scrambled, m.Rate)
	nCBPS := c.p.NumData() * m.Scheme.BitsPerSymbol()

	wave := make([]complex128, 0, nSym*c.p.SymbolLen())
	for s := 0; s < nSym; s++ {
		symBits := coded[s*nCBPS : (s+1)*nCBPS]
		il := coding.Interleave(symBits, nCBPS, m.Scheme.BitsPerSymbol())
		syms, err := modulation.Map(m.Scheme, il)
		if err != nil {
			return nil, err
		}
		td, err := c.mod.Symbol(syms)
		if err != nil {
			return nil, err
		}
		wave = append(wave, td...)
	}
	return wave, nil
}

// DecodeResult reports the outcome of frame reception.
type DecodeResult struct {
	// Payload is the recovered payload (FCS stripped); nil when FCSOK is
	// false.
	Payload []byte
	// FCSOK reports whether the frame checksum verified.
	FCSOK bool
	// MCS is the scheme signalled in the SIG field.
	MCS MCS
	// CFOHz is the estimated carrier frequency offset.
	CFOHz float64
	// StartIndex is the detected preamble start within the input.
	StartIndex int
	// SNRdB is the average post-equalization SNR estimate over data
	// subcarriers.
	SNRdB float64
}

// ErrNoPacket is returned when packet detection finds nothing.
var ErrNoPacket = errors.New("wifi: no packet detected")

// ErrSIG is returned when the SIG field fails its parity check.
var ErrSIG = errors.New("wifi: SIG field corrupted")

// syncBackoff advances the FFT trigger a few samples into the cyclic
// prefix: when a strong relayed (or reflected) copy arrives later than the
// first path, timing acquisition tends to settle on it, and decoding from
// there would push the tail of the delay spread out of the CP. Starting
// early is always safe — the CP absorbs it — and real receivers do the
// same.
const syncBackoff = 3

// Decode runs the full receiver on rx: detect, synchronize, estimate CFO
// and channel, decode SIG, then decode and verify the data.
func (c *Codec) Decode(rx []complex128) (*DecodeResult, error) {
	start, ok := ofdm.DetectPacket(rx, c.pre)
	if !ok {
		return nil, ErrNoPacket
	}
	start -= syncBackoff
	if start < 0 {
		start = 0
	}
	return c.DecodeAt(rx, start)
}

// DecodeAt runs the receiver assuming the preamble starts at rx[start].
func (c *Codec) DecodeAt(rx []complex128, start int) (*DecodeResult, error) {
	p := c.p
	if start < 0 || start+c.pre.Len()+p.SymbolLen() > len(rx) {
		return nil, fmt.Errorf("wifi: truncated frame at %d", start)
	}
	frame := rx[start:]
	cfo := ofdm.EstimateCFO(frame, c.pre)
	frame = ofdm.CorrectCFO(frame, cfo, p.SampleRate)

	h := ofdm.EstimateChannel(frame, c.pre)
	if h == nil {
		return nil, fmt.Errorf("wifi: preamble truncated")
	}
	eq := ofdm.NewEqualizer(p, h)
	noiseVar := c.estimateNoiseVar(frame, h)

	res := &DecodeResult{CFOHz: cfo, StartIndex: start}
	res.SNRdB = c.meanSNR(h, noiseVar)

	// SIG symbol.
	off := c.pre.Len()
	mcsIdx, lengthBytes, err := c.decodeSIG(frame[off:], eq, noiseVar, h)
	if err != nil {
		return nil, err
	}
	m, err := MCSByIndex(mcsIdx)
	if err != nil {
		return nil, ErrSIG
	}
	res.MCS = m

	// Data symbols.
	off += p.SymbolLen()
	nDBPS := m.BitsPerSymbol(p)
	nBits := serviceBits + 8*lengthBytes + tailBits
	nSym := (nBits + nDBPS - 1) / nDBPS
	if off+nSym*p.SymbolLen() > len(frame) {
		return nil, fmt.Errorf("wifi: truncated data (%d symbols)", nSym)
	}
	nCBPS := p.NumData() * m.Scheme.BitsPerSymbol()
	soft := make([]float64, 0, nSym*nCBPS)
	for s := 0; s < nSym; s++ {
		raw, pilots, err := c.dem.Symbol(frame[off+s*p.SymbolLen():])
		if err != nil {
			return nil, err
		}
		eqd := eq.Symbol(raw, pilots)
		symSoft := c.softDemapSymbol(eqd, m.Scheme, h, noiseVar)
		soft = append(soft, coding.DeinterleaveSoft(symSoft, nCBPS, m.Scheme.BitsPerSymbol())...)
	}
	totalBits := nSym * nDBPS
	scrambled := coding.DecodePunctured(soft, m.Rate, totalBits, false)
	bits := coding.Scramble(scrambled, scramblerSeed)

	psdu := make([]byte, lengthBytes)
	for i := range psdu {
		var b byte
		for k := 0; k < 8; k++ {
			b |= bits[serviceBits+8*i+k] << k
		}
		psdu[i] = b
	}
	if lengthBytes < 4 {
		return res, fmt.Errorf("wifi: PSDU too short for FCS")
	}
	payload := psdu[:lengthBytes-4]
	want := uint32(psdu[lengthBytes-4]) | uint32(psdu[lengthBytes-3])<<8 |
		uint32(psdu[lengthBytes-2])<<16 | uint32(psdu[lengthBytes-1])<<24
	if crc32.ChecksumIEEE(payload) == want {
		res.FCSOK = true
		res.Payload = payload
	}
	return res, nil
}

// decodeSIG decodes the SIG symbol and returns the MCS index and PSDU
// length.
func (c *Codec) decodeSIG(sym []complex128, eq *ofdm.Equalizer, noiseVar float64, h []complex128) (int, int, error) {
	raw, pilots, err := c.dem.Symbol(sym)
	if err != nil {
		return 0, 0, err
	}
	eqd := eq.Symbol(raw, pilots)
	soft := c.softDemapSymbol(eqd, modulation.BPSK, h, noiseVar)
	de := coding.DeinterleaveSoft(soft, c.p.NumData(), 1)
	bits := coding.ViterbiDecode(de, sigUncodedBits, false)
	var mcsIdx, lengthBytes int
	for k := 0; k < 4; k++ {
		mcsIdx = mcsIdx<<1 | int(bits[k])
	}
	for k := 4; k < 18; k++ {
		lengthBytes = lengthBytes<<1 | int(bits[k])
	}
	var parity byte
	for k := 0; k < 18; k++ {
		parity ^= bits[k]
	}
	if parity != bits[18] {
		return 0, 0, ErrSIG
	}
	return mcsIdx, lengthBytes, nil
}

// softDemapSymbol demaps one equalized OFDM symbol with per-subcarrier
// noise scaling: after zero-forcing by H(k), the effective noise variance
// on subcarrier k is noiseVar/|H(k)|².
func (c *Codec) softDemapSymbol(eqd []complex128, s modulation.Scheme, h []complex128, noiseVar float64) []float64 {
	p := c.p
	out := make([]float64, 0, len(eqd)*s.BitsPerSymbol())
	for i, k := range p.DataCarriers {
		hk := ofdm.ChannelAt(h, k, p.NFFT)
		g := real(hk)*real(hk) + imag(hk)*imag(hk)
		nv := math.Inf(1)
		if g > 0 {
			nv = noiseVar / g
		}
		out = append(out, modulation.SoftDemap(s, eqd[i:i+1], nv)...)
	}
	return out
}

// estimateNoiseVar measures the post-FFT per-subcarrier noise variance from
// the difference of the two (identical when noiseless) LTF symbols.
func (c *Codec) estimateNoiseVar(frame []complex128, h []complex128) float64 {
	p := c.p
	o1, o2 := c.pre.LTFSymbolOffsets()
	if o2+p.NFFT > len(frame) {
		return 1e-6
	}
	var acc float64
	n := 0
	b1 := fft.Forward(frame[o1 : o1+p.NFFT])
	b2 := fft.Forward(frame[o2 : o2+p.NFFT])
	for _, k := range p.UsedCarriers() {
		idx := k
		if idx < 0 {
			idx += p.NFFT
		}
		d := b1[idx] - b2[idx]
		acc += real(d)*real(d) + imag(d)*imag(d)
		n++
	}
	if n == 0 {
		return 1e-6
	}
	// Var(B1-B2) = 2·Var(noise per bin).
	v := acc / float64(n) / 2
	if v <= 0 {
		v = 1e-12
	}
	return v
}

// meanSNR averages |H|²/noiseVar over data subcarriers, in dB.
func (c *Codec) meanSNR(h []complex128, noiseVar float64) float64 {
	p := c.p
	var acc float64
	for _, k := range p.DataCarriers {
		hk := ofdm.ChannelAt(h, k, p.NFFT)
		acc += real(hk)*real(hk) + imag(hk)*imag(hk)
	}
	acc /= float64(p.NumData())
	if noiseVar <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(acc/noiseVar)
}
