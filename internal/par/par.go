// Package par is the shared parallel-execution layer for the evaluation
// pipeline. Every hot sweep in the harness (grid cells, scenarios,
// Monte-Carlo locations, parameter sweep points) is embarrassingly
// parallel: items never communicate, so they can be fanned out over a
// bounded worker pool as long as two rules hold:
//
//  1. each work item derives all of its randomness from its own index
//     (never from a shared sequential source), and
//  2. each item writes only into its own preallocated slot (never a
//     shared accumulator).
//
// Under those rules the results are bit-identical for any worker count,
// which the testbed's determinism tests assert. ForEach and Map enforce
// rule 2 structurally; callers are responsible for rule 1 (see
// fastforward/internal/rng.ItemSeed).
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a configured worker count: n >= 1 is used as given,
// anything else (0, negative) means "one worker per available CPU"
// (runtime.GOMAXPROCS). Serial execution is therefore spelled Workers: 1,
// and the zero value of a config struct gets full parallelism.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines and blocks until all items finish. workers is resolved via
// Workers, so any value < 1 means GOMAXPROCS. With workers == 1 (or n <= 1)
// it degenerates to a plain loop on the calling goroutine — the serial
// reference path the determinism tests compare against.
//
// fn must follow the package rules: index-derived randomness, per-slot
// writes. Panics in fn propagate to the caller (re-raised after all
// workers stop, so no goroutine is leaked).
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next  int
		mu    sync.Mutex
		wg    sync.WaitGroup
		panMu sync.Mutex
		pan   interface{}
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panMu.Lock()
							if pan == nil {
								pan = r
							}
							panMu.Unlock()
						}
					}()
					fn(i)
				}()
				panMu.Lock()
				stop := pan != nil
				panMu.Unlock()
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
}

// Map applies fn to every index in [0, n) and collects the results in
// order, using at most workers goroutines (any value < 1 = GOMAXPROCS).
// Each result is written into its own slot of the output slice, so the
// output is identical for every worker count.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// FlatMap applies fn to every index in [0, n) and concatenates the result
// slices in index order. The fan-out is parallel; the concatenation is a
// deterministic serial pass, so the output layout matches the serial
// nested-loop equivalent exactly.
func FlatMap[T any](n, workers int, fn func(i int) []T) []T {
	parts := Map(n, workers, fn)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
