package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto worker count must be at least 1")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 257
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Error("fn called for n=0") })
	ForEach(-5, 4, func(int) { t.Error("fn called for n<0") })
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 100
	fn := func(i int) int { return i*i + 7 }
	serial := Map(n, 1, fn)
	for _, workers := range []int{2, 4, 16} {
		got := Map(n, workers, fn)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestFlatMapPreservesOrder(t *testing.T) {
	got := FlatMap(4, 3, func(i int) []int {
		out := make([]int, i)
		for j := range out {
			out[j] = 10*i + j
		}
		return out
	})
	want := []int{10, 20, 21, 30, 31, 32}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic in fn must propagate to the caller")
		}
	}()
	ForEach(64, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}
