package obs

import (
	"sync"
	"time"
)

// This file is the only wall-clock access in the obs package, and stage
// timers are the only consumer. Two properties keep the determinism
// story intact (and are why the detrand allowlist below is legitimate):
//
//   - The anchor is captured lazily on the first timer reading — never
//     at package init — so a process that starts no stage timer never
//     touches the clock, and nothing time-derived exists before the
//     first Stage call.
//
//   - Only differences of monotonic readings ever leave this file:
//     Stage records stop−start, and a Snapshot serializes those summed
//     durations into the timings section. Manifests therefore embed
//     wall-clock *intervals* (documented as run-dependent), never
//     absolute wall-clock values, and the deterministic metrics section
//     is untouched by anything defined here.

// base anchors the monotonic clock used by stage timers, captured on
// first use.
var base = sync.OnceValue(time.Now) //fflint:allow detrand stage timers are wall-clock by design; they feed only the run-dependent timings section, never deterministic metrics

// nowNanos returns monotonic nanoseconds since the lazily-captured
// anchor; callers only ever subtract two readings.
func nowNanos() int64 { return int64(time.Since(base())) } //fflint:allow detrand monotonic interval read for the timings section
