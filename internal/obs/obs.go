// Package obs is the run-observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, fixed-bucket
// histograms, and monotonic stage timers) that the relay pipeline records
// into, and that every cmd binary snapshots into a JSON run manifest (see
// OBSERVABILITY.md for the schema and the metric↔paper-section map).
//
// The design serves two masters at once:
//
//   - The deterministic parallel sweep engine (internal/par) must stay
//     bit-identical for every worker count. All aggregations are therefore
//     order-independent: counters and histogram bucket counts are integer
//     sums, histogram value sums are accumulated in fixed-point integers
//     (associative, unlike float addition), and min/max are computed by
//     compare-and-swap (commutative). A manifest's metrics section is thus
//     byte-identical for -workers 1 and -workers N; only the timings
//     section (wall clock) varies between runs.
//
//   - The hot paths must pay nothing when observability is off. A nil
//     *Registry hands out nil metric handles, and every handle method is
//     nil-safe, so disabled instrumentation costs one predicted branch.
//
// Concurrent recording is striped over NumShards cache-line-padded cells
// per metric; workers pick a shard (any stable value works — the testbed
// derives it from each item's seed via ShardForSeed) and the shards are
// merged at snapshot time.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the stripe width of every metric: a power of two so shard
// selection is a mask. 16 covers the worker counts the sweep engine uses
// without bloating per-metric memory (16 × 64 B per counter).
const NumShards = 16

// shardMask folds any shard index into range.
const shardMask = NumShards - 1

// fpScale is the fixed-point scale for histogram value sums: 1e9 keeps
// nanounit precision while leaving ~9.2e9 units of headroom in an int64 —
// ample for dB, Mbps, and energy values over millions of observations.
// Integer accumulation is what makes sums order-independent and therefore
// bit-identical across worker counts.
const fpScale = 1e9

// ShardForSeed maps an item-derived seed (e.g. the per-client rng seed of
// a sweep) to a shard index. Using the item's own seed — not the worker id
// — keeps the mapping identical for every execution schedule.
func ShardForSeed(seed int64) int {
	// Mix the low and high halves so grids with regular seed strides still
	// spread across shards.
	u := uint64(seed)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return int(u & shardMask)
}

// cell is a cache-line-padded atomic counter cell.
type cell struct {
	v uint64
	_ [7]uint64 // pad to 64 bytes against false sharing
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, unit string
	shards     [NumShards]cell
}

// Add increments the counter by n in the given shard. Safe on a nil
// receiver (disabled registry).
func (c *Counter) Add(shard int, n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.shards[shard&shardMask].v, n)
}

// Inc adds 1.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges the shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.shards {
		t += atomic.LoadUint64(&c.shards[i].v)
	}
	return t
}

// Gauge is a last-set float value. Gauges are only deterministic when set
// from serial code (setup, final results); inside parallel sweeps use a
// Histogram instead.
type Gauge struct {
	name, unit string
	bits       uint64
	set        uint32
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
	atomic.StoreUint32(&g.set, 1)
}

// Value returns the gauge value and whether it was ever set.
func (g *Gauge) Value() (float64, bool) {
	if g == nil || atomic.LoadUint32(&g.set) == 0 {
		return 0, false
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits)), true
}

// Histogram distributes float observations over a fixed ascending set of
// upper-bound buckets (`le` semantics: bucket i counts v <= Bounds[i];
// one implicit overflow bucket catches the rest), and tracks count, a
// fixed-point sum, min and max. All state merges order-independently.
type Histogram struct {
	name, unit string
	bounds     []float64
	// counts holds NumShards stripes of len(bounds)+1 buckets each, with
	// the stripe stride rounded up to a cache line.
	counts []uint64
	stride int
	sums   [NumShards]int64cell
	mins   [NumShards]extremeCell
	maxs   [NumShards]extremeCell
}

type int64cell struct {
	v int64
	_ [7]uint64
}

type extremeCell struct {
	bits uint64 // float64 bits; NaN = unset
	_    [7]uint64
}

func newHistogram(name, unit string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	stride := (len(b) + 1 + 7) &^ 7 // round to 8 uint64s = 64 B
	h := &Histogram{
		name:   name,
		unit:   unit,
		bounds: b,
		counts: make([]uint64, NumShards*stride),
		stride: stride,
	}
	unset := math.Float64bits(math.NaN())
	for i := range h.mins {
		h.mins[i].bits = unset
		h.maxs[i].bits = unset
	}
	return h
}

// Observe records v into the given shard. Non-finite values are dropped
// (they would poison the fixed-point sum); callers guard upstream if they
// care. Safe on a nil receiver.
func (h *Histogram) Observe(shard int, v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s := shard & shardMask
	// First bucket whose upper bound is >= v; len(bounds) = overflow.
	b := sort.SearchFloat64s(h.bounds, v)
	atomic.AddUint64(&h.counts[s*h.stride+b], 1)
	atomic.AddInt64(&h.sums[s].v, int64(math.Round(v*fpScale)))
	casExtreme(&h.mins[s].bits, v, func(cur float64) bool { return v < cur })
	casExtreme(&h.maxs[s].bits, v, func(cur float64) bool { return v > cur })
}

func casExtreme(bits *uint64, v float64, better func(cur float64) bool) {
	for {
		old := atomic.LoadUint64(bits)
		cur := math.Float64frombits(old)
		if !math.IsNaN(cur) && !better(cur) {
			return
		}
		if atomic.CompareAndSwapUint64(bits, old, math.Float64bits(v)) {
			return
		}
	}
}

// Count merges the total observation count.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for s := 0; s < NumShards; s++ {
		for b := 0; b <= len(h.bounds); b++ {
			t += atomic.LoadUint64(&h.counts[s*h.stride+b])
		}
	}
	return t
}

// Sum merges the fixed-point value sum back into float units.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var t int64
	for s := range h.sums {
		t += atomic.LoadInt64(&h.sums[s].v)
	}
	return float64(t) / fpScale
}

// StageTimer accumulates monotonic wall-clock time and call counts for one
// named pipeline stage. Timings are inherently run-dependent; they live in
// the manifest's timings section, not the deterministic metrics section.
type StageTimer struct {
	name  string
	ns    int64
	calls uint64
}

func (t *StageTimer) add(ns int64) {
	if t == nil {
		return
	}
	atomic.AddInt64(&t.ns, ns)
	atomic.AddUint64(&t.calls, 1)
}

// AddNS records one timed interval of ns nanoseconds. Nil-safe. Hot loops
// that cannot afford the closure of Registry.Stage hold a *StageTimer from
// Registry.Timer and bracket work with NowNanos themselves.
func (t *StageTimer) AddNS(ns int64) { t.add(ns) }

// NowNanos returns monotonic nanoseconds since the process's timing
// anchor, for bracketing StageTimer.AddNS intervals.
func NowNanos() int64 { return nowNanos() }

// Registry owns the metric namespace of one run. The zero value is not
// usable; construct with New. A nil *Registry is the disabled state: all
// lookups return nil handles whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*StageTimer
}

// New creates an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*StageTimer{},
	}
}

// Counter returns (creating on first use) the named counter. Nil-safe:
// returns nil on a disabled registry.
func (r *Registry) Counter(name, unit string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, unit: unit}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name, unit string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, unit: unit}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given fixed bucket upper bounds. The layout is fixed at first creation;
// later lookups ignore the bounds argument.
func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name, unit, bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns (creating on first use) the named stage timer handle.
// Nil-safe: returns nil on a disabled registry, and all *StageTimer
// methods are nil-safe, so callers can cache the handle unconditionally.
func (r *Registry) Timer(name string) *StageTimer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &StageTimer{name: name}
		r.timers[name] = t
	}
	return t
}

// Stage starts (or resumes) the named stage timer and returns a stop
// function. Nil-safe: a disabled registry returns a no-op stop.
func (r *Registry) Stage(name string) func() {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	t, ok := r.timers[name]
	if !ok {
		t = &StageTimer{name: name}
		r.timers[name] = t
	}
	r.mu.Unlock()
	start := nowNanos()
	return func() { t.add(nowNanos() - start) }
}

// LinearBuckets returns n ascending bounds start, start+width, ... — the
// fixed layouts OBSERVABILITY.md documents per metric.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}
