package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the `le` semantics: a value exactly on a
// bucket's upper bound lands in that bucket, anything above the last bound
// lands in the overflow bucket, and bounds are sorted at creation.
func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("edge", "dB", []float64{10, 0, 20}) // unsorted on purpose
	for _, v := range []float64{-5, 0, 0.0001, 10, 10.0001, 20, 25} {
		h.Observe(0, v)
	}
	snap := r.Snapshot().Metrics["edge"]
	if len(snap.Buckets) != 4 {
		t.Fatalf("want 3 bounds + overflow, got %d buckets", len(snap.Buckets))
	}
	wantLE := []float64{0, 10, 20}
	wantCount := []uint64{2, 2, 2, 1} // {-5,0} {0.0001,10} {10.0001,20} {25}
	for i, b := range snap.Buckets {
		if i < 3 {
			if b.LE == nil || *b.LE != wantLE[i] {
				t.Errorf("bucket %d: le = %v, want %v", i, b.LE, wantLE[i])
			}
		} else if b.LE != nil {
			t.Errorf("overflow bucket has le = %v, want nil (+Inf)", *b.LE)
		}
		if b.Count != wantCount[i] {
			t.Errorf("bucket %d: count = %d, want %d", i, b.Count, wantCount[i])
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if *snap.Min != -5 || *snap.Max != 25 {
		t.Errorf("min/max = %v/%v, want -5/25", *snap.Min, *snap.Max)
	}
}

// TestHistogramDropsNonFinite guards the fixed-point sum.
func TestHistogramDropsNonFinite(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0, math.Inf(1))
	h.Observe(0, math.Inf(-1))
	h.Observe(0, math.NaN())
	h.Observe(0, 0.5)
	snap := r.Snapshot().Metrics["h"]
	if snap.Count != 1 || *snap.Sum != 0.5 {
		t.Errorf("count/sum = %d/%v, want 1/0.5", snap.Count, *snap.Sum)
	}
}

// TestShardedMergeDeterminism hammers every metric kind from many
// goroutines with scheduler-dependent interleaving and shard assignment,
// and asserts the merged snapshot matches both the expected totals and a
// serial reference run bit for bit. Run under -race by `make check`.
func TestShardedMergeDeterminism(t *testing.T) {
	const goroutines = 8
	const perG = 500

	record := func(r *Registry, parallel bool) {
		c := r.Counter("c", "items")
		h := r.Histogram("h", "dB", LinearBuckets(0, 10, 10))
		work := func(g int) {
			for i := 0; i < perG; i++ {
				shard := ShardForSeed(int64(g*perG + i))
				c.Inc(shard)
				h.Observe(shard, float64(i%97)+0.125)
			}
		}
		if !parallel {
			for g := 0; g < goroutines; g++ {
				work(g)
			}
			return
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) { defer wg.Done(); work(g) }(g)
		}
		wg.Wait()
	}

	serial, par := New(), New()
	record(serial, false)
	record(par, true)

	sm, pm := serial.Snapshot().Metrics, par.Snapshot().Metrics
	if !reflect.DeepEqual(sm, pm) {
		t.Fatalf("parallel snapshot differs from serial:\nserial:   %+v\nparallel: %+v", sm, pm)
	}
	if got := *pm["c"].Value; got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
	if pm["h"].Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", pm["h"].Count, goroutines*perG)
	}
	// The fixed-point sum must be exact, not merely close.
	var want float64
	for i := 0; i < perG; i++ {
		want += float64(i%97) + 0.125
	}
	want *= goroutines
	if got := *pm["h"].Sum; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestNilRegistryIsNoOp: the disabled state must be safe and free on every
// handle type.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc(3)
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "", []float64{1}).Observe(0, 2)
	stop := r.Stage("s")
	stop()
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 || len(snap.Timings) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if v, ok := r.Gauge("g", "").Value(); ok || v != 0 {
		t.Errorf("nil gauge Value = %v,%v", v, ok)
	}
}

// TestSnapshotJSONShape pins the serialized form OBSERVABILITY.md and
// cmd/manifestcheck rely on: sorted map keys, le:null overflow bucket,
// gauge/counter scalar values.
func TestSnapshotJSONShape(t *testing.T) {
	r := New()
	r.Counter("z.count", "items").Add(0, 2)
	r.Gauge("a.gauge", "dB").Set(54.5)
	r.Histogram("m.hist", "dB", []float64{1}).Observe(0, 3)
	stop := r.Stage("stage1")
	stop()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
		Timings []StageTiming              `json:"timings"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"z.count", "a.gauge", "m.hist"} {
		if _, ok := decoded.Metrics[k]; !ok {
			t.Errorf("metric %q missing from JSON", k)
		}
	}
	if len(decoded.Timings) != 1 || decoded.Timings[0].Stage != "stage1" || decoded.Timings[0].Calls != 1 {
		t.Errorf("timings = %+v", decoded.Timings)
	}
}

// TestGaugeLastSet verifies gauges report the final value.
func TestGaugeLastSet(t *testing.T) {
	r := New()
	g := r.Gauge("g", "dB")
	g.Set(1)
	g.Set(42)
	if v, ok := g.Value(); !ok || v != 42 {
		t.Errorf("gauge = %v,%v want 42,true", v, ok)
	}
}
