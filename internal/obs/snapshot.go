package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Bucket is one histogram bucket in a snapshot. LE is the inclusive upper
// bound; nil means +Inf (the overflow bucket) — JSON cannot carry
// infinities.
type Bucket struct {
	LE    *float64 `json:"le"`
	Count uint64   `json:"count"`
}

// MetricSnapshot is the merged, serializable state of one metric. Exactly
// one of the Type-specific field groups is populated.
type MetricSnapshot struct {
	Type string `json:"type"` // "counter" | "gauge" | "histogram"
	Unit string `json:"unit,omitempty"`

	// Counter / gauge value. Counters store the integer total; gauges the
	// last value set.
	Value *float64 `json:"value,omitempty"`

	// Histogram aggregates. Sum carries fixed-point precision of 1e-9
	// units; Min/Max are omitted when the histogram is empty.
	Count   uint64   `json:"count,omitempty"`
	Sum     *float64 `json:"sum,omitempty"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// StageTiming is one stage timer's snapshot. Wall-clock seconds are not
// deterministic across runs or worker counts — manifest diffs should
// compare them only as performance indicators.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Calls  uint64  `json:"calls"`
	TotalS float64 `json:"total_s"`
}

// Snapshot is the merged state of a registry: the deterministic metrics
// map (bit-identical for any worker count) plus the run-dependent stage
// timings.
type Snapshot struct {
	Metrics map[string]MetricSnapshot `json:"metrics"`
	Timings []StageTiming             `json:"timings"`
}

// Snapshot merges all shards of all metrics. Nil-safe: a disabled registry
// yields an empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Metrics: map[string]MetricSnapshot{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		v := float64(c.Value())
		snap.Metrics[name] = MetricSnapshot{Type: "counter", Unit: c.unit, Value: &v}
	}
	for name, g := range r.gauges {
		if v, ok := g.Value(); ok {
			vv := v
			snap.Metrics[name] = MetricSnapshot{Type: "gauge", Unit: g.unit, Value: &vv}
		}
	}
	for name, h := range r.hists {
		snap.Metrics[name] = h.snapshot()
	}
	for name, t := range r.timers {
		snap.Timings = append(snap.Timings, StageTiming{
			Stage:  name,
			Calls:  atomic.LoadUint64(&t.calls),
			TotalS: float64(atomic.LoadInt64(&t.ns)) / 1e9,
		})
	}
	sort.Slice(snap.Timings, func(i, j int) bool { return snap.Timings[i].Stage < snap.Timings[j].Stage })
	return snap
}

func (h *Histogram) snapshot() MetricSnapshot {
	ms := MetricSnapshot{Type: "histogram", Unit: h.unit}
	buckets := make([]Bucket, len(h.bounds)+1)
	for b := range buckets {
		if b < len(h.bounds) {
			le := h.bounds[b]
			buckets[b].LE = &le
		}
		for s := 0; s < NumShards; s++ {
			buckets[b].Count += atomic.LoadUint64(&h.counts[s*h.stride+b])
		}
		ms.Count += buckets[b].Count
	}
	ms.Buckets = buckets
	sum := h.Sum()
	ms.Sum = &sum
	min, max := math.NaN(), math.NaN()
	for s := 0; s < NumShards; s++ {
		lo := math.Float64frombits(atomic.LoadUint64(&h.mins[s].bits))
		hi := math.Float64frombits(atomic.LoadUint64(&h.maxs[s].bits))
		if !math.IsNaN(lo) && (math.IsNaN(min) || lo < min) {
			min = lo
		}
		if !math.IsNaN(hi) && (math.IsNaN(max) || hi > max) {
			max = hi
		}
	}
	if !math.IsNaN(min) {
		ms.Min = &min
	}
	if !math.IsNaN(max) {
		ms.Max = &max
	}
	return ms
}
