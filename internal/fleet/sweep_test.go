package fleet

import (
	"reflect"
	"testing"

	"fastforward/internal/obs"
)

// smallSweepConfig is the test grid: small enough for -race, large
// enough that every cell sees spills, a forced failure, and migrations.
func smallSweepConfig(seed int64) SweepConfig {
	cfg := DefaultSweepConfig(seed)
	cfg.RelayCounts = []int{1, 3}
	cfg.ClientCounts = []int{20, 40}
	return cfg
}

// TestRunSweepParallelMatchesSerial is the fleet determinism property:
// the full sweep result — assignments, spills, the forced rebalance, and
// every service snapshot — is bit-identical for any worker count, and so
// is the deterministic metrics section of the manifest.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (*SweepResult, obs.Snapshot) {
		cfg := smallSweepConfig(1234)
		cfg.Workers = workers
		cfg.Obs = obs.New()
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, cfg.Obs.Snapshot()
	}

	serial, serialSnap := run(1)

	// The determinism claim must cover the post-failure state too: if no
	// cell migrated, the test would silently stop exercising rebalance.
	migrated := 0
	for _, c := range serial.Cells {
		migrated += c.Migrations
	}
	if migrated == 0 {
		t.Fatalf("test grid produced no migrations; rebalance path not covered")
	}

	for _, workers := range []int{2, 8, 0} {
		par, parSnap := run(workers)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: sweep result differs from serial reference", workers)
		}
		// Timings are wall-clock diagnostics; only the metrics map is
		// contractually deterministic.
		if !reflect.DeepEqual(serialSnap.Metrics, parSnap.Metrics) {
			t.Errorf("workers=%d: metric snapshot differs from serial reference", workers)
		}
	}
}

func TestRunSweepUnknownScenario(t *testing.T) {
	cfg := DefaultSweepConfig(1)
	cfg.ScenarioName = "no-such-floor"
	if _, err := RunSweep(cfg); err == nil {
		t.Fatalf("unknown scenario accepted")
	}
}

func TestRunSweepEmptyGrid(t *testing.T) {
	cfg := DefaultSweepConfig(1)
	cfg.RelayCounts = nil
	if _, err := RunSweep(cfg); err == nil {
		t.Fatalf("empty grid accepted")
	}
}

// TestRunSweepRecordsMetrics pins the fleet.* namespace: every metric in
// OBSERVABILITY.md's fleet section must appear in the manifest after one
// sweep, with the counters consistent with the returned cells.
func TestRunSweepRecordsMetrics(t *testing.T) {
	cfg := smallSweepConfig(77)
	cfg.Workers = 1
	cfg.Obs = obs.New()
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	names := []string{
		"fleet.cells", "fleet.relays", "fleet.clients",
		"fleet.assigned", "fleet.refused", "fleet.spilled",
		"fleet.migrations", "fleet.stranded",
		"fleet.amp_db", "fleet.relay_sessions",
		"fleet.aggregate_mbps", "fleet.p99_client_mbps",
	}
	for _, n := range names {
		if _, ok := snap.Metrics[n]; !ok {
			t.Errorf("metric %s missing from manifest", n)
		}
	}
	var wantAssigned uint64
	for _, c := range res.Cells {
		wantAssigned += uint64(c.Assigned)
	}
	if got := snap.Metrics["fleet.cells"].Value; got == nil || *got != float64(len(res.Cells)) {
		t.Errorf("fleet.cells = %v, want %d", got, len(res.Cells))
	}
	if got := snap.Metrics["fleet.assigned"].Value; got == nil || *got != float64(wantAssigned) {
		t.Errorf("fleet.assigned = %v, want %d", got, wantAssigned)
	}
}
