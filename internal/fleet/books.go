package fleet

import "fastforward/internal/relay"

// ClientBook is one client's assignment outcome, flattened for
// comparison: everything the scheduler decided about it, nothing about
// how the decision was transported. Two Pools that booked identically —
// whether their endpoints were local gates or live daemons — produce
// deeply equal books.
type ClientBook struct {
	ID       int
	Assigned int // serving relay ID, or Refused
	Grant    relay.AmpDecision
	Degraded bool
	Stranded bool
}

// Books is the pool's full assignment ledger: per-client outcomes in
// ascending-ID order plus the scheduler's aggregate accounting.
type Books struct {
	Clients    []ClientBook
	Grants     uint64
	Spilled    int
	Migrations int
	Refusals   int
}

// Books snapshots the pool's current ledger.
func (p *Pool) Books() Books {
	b := Books{
		Clients:    make([]ClientBook, 0, len(p.clients)),
		Grants:     p.grants,
		Spilled:    p.Spilled,
		Migrations: p.Migrations,
		Refusals:   p.Refusals,
	}
	for _, c := range p.clients {
		b.Clients = append(b.Clients, ClientBook{
			ID:       c.ID,
			Assigned: c.Assigned,
			Grant:    c.Grant,
			Degraded: c.Degraded,
			Stranded: c.Stranded,
		})
	}
	return b
}
