package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"fastforward/internal/obs"
	"fastforward/internal/relay"
	"fastforward/internal/relayd"
	"fastforward/internal/rng"
)

// WireSpec shapes the sessions a WireEndpoint opens: the chain geometry
// every HELLO declares (the admission budget comes per-call from the
// scheduler) and the transport discipline. The spec is deliberately
// identical for every client — assignment books must depend only on the
// Sec 3.5 budgets, exactly as they do in local mode.
type WireSpec struct {
	// SampleRateHz, BlockSamples, CancelTaps, CNFTaps, CFOHz fill the
	// chain-geometry half of relayd.SessionParams.
	SampleRateHz float64
	BlockSamples int
	CancelTaps   int
	CNFTaps      int
	CFOHz        float64
	// Timeout bounds each frame exchange; Attempts bounds dial retries
	// (transient only — a refusal is terminal, relayd.Dial).
	Timeout  time.Duration
	Attempts int
}

// DefaultWireSpec matches the cell's 20 MHz OFDM calibration and the
// daemon smoke's chain sizing, with transport bounds tight enough that a
// dead daemon surfaces as a spill, not a hang.
func DefaultWireSpec() WireSpec {
	return WireSpec{
		SampleRateHz: cellSampleRate,
		BlockSamples: 256,
		CancelTaps:   24,
		CNFTaps:      16,
		CFOHz:        1500,
		Timeout:      10 * time.Second,
		Attempts:     3,
	}
}

// wireMetrics holds the fleet.wire.* obs handles; nil handles (no
// registry) are free no-ops.
type wireMetrics struct {
	hellos      *obs.Counter
	accepted    *obs.Counter
	refused     *obs.Counter
	releases    *obs.Counter
	loadQueries *obs.Counter
	blocks      *obs.Counter
	verified    *obs.Counter
	ioErrors    *obs.Counter
}

func newWireMetrics(reg *obs.Registry) wireMetrics {
	return wireMetrics{
		hellos:      reg.Counter("fleet.wire.hellos", "sessions"),
		accepted:    reg.Counter("fleet.wire.accepted", "sessions"),
		refused:     reg.Counter("fleet.wire.refused", "sessions"),
		releases:    reg.Counter("fleet.wire.releases", "sessions"),
		loadQueries: reg.Counter("fleet.wire.load_queries", "queries"),
		blocks:      reg.Counter("fleet.wire.blocks", "blocks"),
		verified:    reg.Counter("fleet.wire.verified_sessions", "sessions"),
		ioErrors:    reg.Counter("fleet.wire.io_errors", "errors"),
	}
}

// wireSession is one admitted session's client plus everything needed to
// rebuild its chain locally (bit-verification).
type wireSession struct {
	c      *relayd.Client
	params relayd.SessionParams
}

// WireEndpoint serves a relay's admission over the wire: Admit is a live
// HELLO to an ffrelayd, Release closes the session (the daemon frees the
// budget slot before acknowledging), and occupancy/load come back over a
// QUERY control connection. REFUSE codes pass through untouched, so the
// scheduler's spill decisions are driven by the same vocabulary as in
// local mode; a transport failure synthesizes RefuseUnreachable.
//
// Not concurrency-safe — the Pool serializes all calls.
type WireEndpoint struct {
	addr string
	spec WireSpec

	sessions map[string]*wireSession
	info     *relayd.InfoClient

	// lastLoad / maxSessions cache the last successful QUERY so a
	// transient control-connection failure degrades to stale data (and an
	// io_errors count) instead of a panic mid-sweep.
	lastLoad    float64
	maxSessions int
	haveMax     bool

	m     wireMetrics
	shard int
}

// NewWireEndpoint builds an endpoint for one daemon address. reg may be
// nil (no metrics); shard is the obs shard every count lands in (use the
// cell's obs.ShardForSeed so sweeps stay order-independent).
func NewWireEndpoint(addr string, spec WireSpec, reg *obs.Registry, shard int) *WireEndpoint {
	if spec.BlockSamples <= 0 {
		spec = DefaultWireSpec()
	}
	return &WireEndpoint{
		addr:     addr,
		spec:     spec,
		sessions: make(map[string]*wireSession),
		m:        newWireMetrics(reg),
		shard:    shard,
	}
}

// Addr returns the daemon address this endpoint drives.
func (e *WireEndpoint) Addr() string { return e.addr }

// seedForKey derives the session-chain seed from the session key (FNV-1a)
// — deterministic across runs and modes, so the daemon-side chain for
// client "c7" is reproducible from the key alone.
func seedForKey(key string) int64 {
	h := fnv.New64a()
	// hash.Hash.Write never errors by contract.
	h.Write([]byte(key)) //fflint:allow errflow hash.Hash.Write is documented to never return an error
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Admit opens a live session: HELLO out, ACCEPT or REFUSE back. The
// returned decision is reconstructed bit-exactly from the ACCEPT frame
// (JSON float64 round-trips are exact), so the scheduler's books cannot
// tell the modes apart.
func (e *WireEndpoint) Admit(key string, sb relay.SessionBudget) (relay.AmpDecision, bool, *relayd.Refuse) {
	p := relayd.SessionParams{
		SampleRateHz:   e.spec.SampleRateHz,
		BlockSamples:   e.spec.BlockSamples,
		CancelTaps:     e.spec.CancelTaps,
		CNFTaps:        e.spec.CNFTaps,
		CFOHz:          e.spec.CFOHz,
		Seed:           seedForKey(key),
		CancellationDB: sb.CancellationDB,
		RDAttenDB:      sb.RDAttenDB,
		PAHeadroomDB:   sb.PAHeadroomDB,
		RxOverNoiseDB:  sb.RxOverNoiseDB,
	}
	e.m.hellos.Inc(e.shard)
	c, err := relayd.DialTimeout(e.addr, p, nil, e.spec.Attempts, e.spec.Timeout)
	if err != nil {
		var ref *relayd.RefusedError
		if errors.As(err, &ref) {
			e.m.refused.Inc(e.shard)
			return relay.AmpDecision{}, false, &relayd.Refuse{Code: ref.Code, Detail: ref.Detail}
		}
		e.m.ioErrors.Inc(e.shard)
		return relay.AmpDecision{}, false, &relayd.Refuse{Code: relayd.RefuseUnreachable, Detail: err.Error()}
	}
	acc := c.Accept()
	bound, ok := relay.ParseAmpBound(acc.AmpBound)
	if !ok {
		// The daemon speaks a vocabulary this scheduler does not; treat
		// the grant as unusable and walk it back.
		if _, cerr := c.Close(); cerr != nil {
			e.m.ioErrors.Inc(e.shard)
		}
		e.m.ioErrors.Inc(e.shard)
		return relay.AmpDecision{}, false, &relayd.Refuse{
			Code: relayd.RefuseProtocol, Detail: fmt.Sprintf("unknown amp bound %q", acc.AmpBound)}
	}
	e.sessions[key] = &wireSession{c: c, params: p}
	e.m.accepted.Inc(e.shard)
	return relay.AmpDecision{
		AmpDB:               acc.AmpDB,
		Bound:               bound,
		StabilityHeadroomDB: acc.StabilityHeadroomDB,
	}, acc.Degraded, nil
}

// Release closes the session. The daemon frees the budget slot before it
// writes the STATS frame Close reads, so the slot is observably free on
// return — the make-before-break invariant holds over the wire.
func (e *WireEndpoint) Release(key string) bool {
	s, ok := e.sessions[key]
	if !ok {
		return false
	}
	delete(e.sessions, key)
	if _, err := s.c.Close(); err != nil {
		e.m.ioErrors.Inc(e.shard)
	}
	e.m.releases.Inc(e.shard)
	return true
}

// query runs one QUERY/INFO round trip over the lazily-dialed control
// connection, reconnecting once if the daemon idled it out.
func (e *WireEndpoint) query() (relayd.Info, error) {
	if e.info == nil {
		ic, err := relayd.DialInfo(e.addr, e.spec.Timeout)
		if err != nil {
			return relayd.Info{}, err
		}
		e.info = ic
	}
	info, err := e.info.Query()
	if err == nil {
		e.m.loadQueries.Inc(e.shard)
		return info, nil
	}
	e.info.Close() // stale control conn; the error told us all we need
	ic, derr := relayd.DialInfo(e.addr, e.spec.Timeout)
	if derr != nil {
		e.info = nil
		return relayd.Info{}, derr
	}
	e.info = ic
	info, err = e.info.Query()
	if err != nil {
		return relayd.Info{}, err
	}
	e.m.loadQueries.Inc(e.shard)
	return info, nil
}

// ResidualLoad returns the daemon's aggregate residual load. A failed
// query counts an io_error and returns the last observed value.
func (e *WireEndpoint) ResidualLoad() float64 {
	info, err := e.query()
	if err != nil {
		e.m.ioErrors.Inc(e.shard)
		return e.lastLoad
	}
	e.lastLoad = info.ResidualLoad
	e.maxSessions, e.haveMax = info.MaxSessions, true
	return info.ResidualLoad
}

// Sessions returns the daemon's admitted session count. A failed query
// counts an io_error and falls back to this endpoint's own books.
func (e *WireEndpoint) Sessions() int {
	info, err := e.query()
	if err != nil {
		e.m.ioErrors.Inc(e.shard)
		return len(e.sessions)
	}
	e.lastLoad = info.ResidualLoad
	e.maxSessions, e.haveMax = info.MaxSessions, true
	return info.Active
}

// MaxSessions returns the daemon's session cap (cached after the first
// successful query; 0 — uncapped — if the daemon was never reachable).
func (e *WireEndpoint) MaxSessions() int {
	if e.haveMax {
		return e.maxSessions
	}
	info, err := e.query()
	if err != nil {
		e.m.ioErrors.Inc(e.shard)
		return 0
	}
	e.lastLoad = info.ResidualLoad
	e.maxSessions, e.haveMax = info.MaxSessions, true
	return e.maxSessions
}

// VerifySession streams blocks of seeded noise through an admitted
// session and requires the daemon's output to be bit-identical to a
// local replica of its chain (relayd.BuildSessionChain) — the proof that
// the wire path executes the same pipeline the placement geometry
// priced. The stream is seeded from the session's own chain seed, so
// verification is deterministic per key.
func (e *WireEndpoint) VerifySession(key string, blocks int) error {
	s, ok := e.sessions[key]
	if !ok {
		return fmt.Errorf("fleet: no admitted wire session for %q", key)
	}
	p := s.params
	n := p.BlockSamples
	src := rng.New(rng.ItemSeed(p.Seed, 1))
	tx := src.NoiseVector(blocks*n, 1)
	rx := src.NoiseVector(blocks*n, 1)
	out := make([]complex128, n)
	want := make([]complex128, n)
	dec, _ := e.Decision(key)
	ref, refCancel := relayd.BuildSessionChain(p, dec.AmpDB)
	for b := 0; b < blocks; b++ {
		off := b * n
		if err := s.c.Process(out, rx[off:off+n], tx[off:off+n]); err != nil {
			e.m.ioErrors.Inc(e.shard)
			return fmt.Errorf("fleet: wire session %q block %d: %w", key, b, err)
		}
		e.m.blocks.Inc(e.shard)
		copy(want, rx[off:off+n])
		refCancel.SetReference(tx[off : off+n])
		ref.Process(want)
		for j := range want {
			if out[j] != want[j] {
				return fmt.Errorf("fleet: wire session %q block %d sample %d: daemon %v, local chain %v (bit-exact required)",
					key, b, j, out[j], want[j])
			}
		}
	}
	e.m.verified.Inc(e.shard)
	return nil
}

// Decision returns the amplification the daemon granted an admitted
// session, reconstructed from its ACCEPT frame.
func (e *WireEndpoint) Decision(key string) (relay.AmpDecision, bool) {
	s, ok := e.sessions[key]
	if !ok {
		return relay.AmpDecision{}, false
	}
	acc := s.c.Accept()
	bound, _ := relay.ParseAmpBound(acc.AmpBound)
	return relay.AmpDecision{
		AmpDB:               acc.AmpDB,
		Bound:               bound,
		StabilityHeadroomDB: acc.StabilityHeadroomDB,
	}, true
}

// ActiveSessions returns the keys of this endpoint's admitted sessions
// in ascending order.
func (e *WireEndpoint) ActiveSessions() []string {
	keys := make([]string, 0, len(e.sessions))
	for k := range e.sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CloseSessions closes every admitted session and the control
// connection; the endpoint stays usable (sessions can be admitted
// again). Returns the number of sessions closed.
func (e *WireEndpoint) CloseSessions() int {
	n := 0
	for k := range e.sessions {
		if e.Release(k) {
			n++
		}
	}
	if e.info != nil {
		e.info.Close()
		e.info = nil
	}
	return n
}
