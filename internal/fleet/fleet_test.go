package fleet

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"fastforward/internal/cnf"
	"fastforward/internal/floorplan"
	"fastforward/internal/pipeline"
	"fastforward/internal/relayd"
	"fastforward/internal/rng"
)

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []int{3, 1, 2} {
		r := NewRelay(id, floorplan.Point{X: float64(id)}, 0, 0, true, -58, 0)
		if err := reg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Add(NewRelay(2, floorplan.Point{}, 0, 0, true, -58, 0)); err == nil {
		t.Fatalf("duplicate id accepted")
	}
	ids := []int{}
	for _, r := range reg.Relays() {
		ids = append(ids, r.ID)
	}
	if fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("registry order %v, want ascending IDs", ids)
	}
	if !reg.Remove(2) || reg.Remove(2) {
		t.Fatalf("Remove(2) should succeed once")
	}
	if _, ok := reg.Get(2); ok {
		t.Fatalf("removed relay still resolvable")
	}
	if reg.Len() != 2 || reg.Live() != 2 {
		t.Fatalf("Len=%d Live=%d, want 2/2", reg.Len(), reg.Live())
	}
}

// checkNoDoubleAssignment asserts the gate-level session books agree
// with the pool: every assigned client's session key is held by exactly
// its serving gate, refused clients by none, and the per-gate session
// counts sum to the assigned-client count.
func checkNoDoubleAssignment(t *testing.T, p *Pool) {
	t.Helper()
	assigned := 0
	for _, c := range p.Clients() {
		holders := []int{}
		for _, r := range p.Registry().Relays() {
			if _, ok := r.Gate.Decision(sessionKey(c.ID)); ok {
				holders = append(holders, r.ID)
			}
		}
		if c.Assigned == Refused {
			if len(holders) != 0 {
				t.Fatalf("refused client %d held by gates %v", c.ID, holders)
			}
			continue
		}
		assigned++
		if len(holders) != 1 || holders[0] != c.Assigned {
			t.Fatalf("client %d assigned to %d but held by gates %v", c.ID, c.Assigned, holders)
		}
	}
	active := 0
	for _, r := range p.Registry().Relays() {
		active += r.Gate.Active()
	}
	if active != assigned {
		t.Fatalf("gates hold %d sessions, pool assigned %d clients", active, assigned)
	}
}

// checkLoadBound asserts the Sec 3.5 aggregate invariant at fleet scope:
// each relay's residual load, and therefore the pool-wide admitted load,
// stays under the sum of its admitted sessions' budget targets (each
// member obeys beta*A^2 + (1+L)*A <= target with A >= 1, so its own load
// contribution beta*A is below its target).
func checkLoadBound(t *testing.T, p *Pool) {
	t.Helper()
	var totalTargets float64
	for _, r := range p.Registry().Relays() {
		var relayTargets float64
		for _, c := range p.Clients() {
			if c.Assigned != r.ID {
				continue
			}
			l, ok := c.Link(r.ID)
			if !ok {
				t.Fatalf("client %d assigned to relay %d without a link", c.ID, r.ID)
			}
			sb := p.budgetFor(r, l)
			relayTargets += math.Pow(10, (sb.RDAttenDB-cnf.NoiseMarginDB)/10)
		}
		if load := r.Gate.ResidualLoad(); load > relayTargets {
			t.Fatalf("relay %d residual load %.6g exceeds its sessions' target sum %.6g",
				r.ID, load, relayTargets)
		}
		totalTargets += relayTargets
	}
	if load := p.AdmittedLoad(); load > totalTargets {
		t.Fatalf("pool admitted load %.6g exceeds per-relay target sum %.6g", load, totalTargets)
	}
}

// TestFleetFailureMigration is the 3-relay integration scenario: build a
// real cell, drive one relay up the severity ladder rung by rung, and
// watch clients migrate away with the books staying consistent at every
// rung. The admitted survivors then run through a per-relay
// pipeline.Batch, the same chain shape a live daemon executes.
func TestFleetFailureMigration(t *testing.T) {
	sc, err := scenarioByName("home")
	if err != nil {
		t.Fatal(err)
	}
	cell := BuildCell(DefaultCellConfig(sc, 3, 45, 99))
	p := cell.Pool

	p.AssignAll()
	checkNoDoubleAssignment(t, p)
	checkLoadBound(t, p)

	failID := busiestRelay(p)
	victims := map[int]bool{}
	for _, c := range p.Clients() {
		if c.Assigned == failID {
			victims[c.ID] = true
		}
	}
	if len(victims) == 0 {
		t.Fatalf("busiest relay %d holds no clients", failID)
	}

	failed, _ := p.Registry().Get(failID)
	for sev := 1; sev <= 4; sev++ {
		p.SetHealth(failID, sev)
		p.Rebalance()
		wantLive := sev < p.cfg.DegradeSeverity
		if failed.Live() != wantLive {
			t.Fatalf("severity %d: Live=%v, want %v", sev, failed.Live(), wantLive)
		}
		checkNoDoubleAssignment(t, p)
		checkLoadBound(t, p)
	}

	if p.Migrations == 0 {
		t.Fatalf("no client migrated off the failed relay")
	}
	for _, c := range p.Clients() {
		if !victims[c.ID] {
			continue
		}
		switch {
		case c.Assigned == failID:
			if !c.Stranded {
				t.Fatalf("client %d still on dark relay %d but not Stranded", c.ID, failID)
			}
		case c.Assigned == Refused:
			// Acceptable terminal state: every alternative refused.
		default:
			r, ok := p.Registry().Get(c.Assigned)
			if !ok || !r.Live() {
				t.Fatalf("client %d migrated onto non-live relay %d", c.ID, c.Assigned)
			}
		}
	}

	// Hysteresis on the way back: inside the band the relay stays dark;
	// at the recovery floor it serves again.
	p.SetHealth(failID, 2)
	if failed.Live() {
		t.Fatalf("relay recovered inside the hysteresis band")
	}
	p.SetHealth(failID, 1)
	if !failed.Live() {
		t.Fatalf("relay still dark at the recovery floor")
	}
	p.Rebalance()
	checkNoDoubleAssignment(t, p)
	checkLoadBound(t, p)

	// Run every admitted session through its relay's batch — the fleet's
	// grants must be executable by the daemon-shaped pipeline.
	const blockSamples = 64
	for _, r := range p.Registry().Relays() {
		var chains []*pipeline.Chain
		var cancels []*pipeline.CancelStage
		var clientIDs []int
		for _, c := range p.Clients() {
			if c.Assigned != r.ID {
				continue
			}
			l, _ := c.Link(r.ID)
			sb := p.budgetFor(r, l)
			params := relayd.SessionParams{
				SampleRateHz:   cellSampleRate,
				BlockSamples:   blockSamples,
				CancelTaps:     8,
				CNFTaps:        8,
				CFOHz:          200,
				Seed:           int64(c.ID) + 1,
				CancellationDB: sb.CancellationDB,
				RDAttenDB:      sb.RDAttenDB,
				PAHeadroomDB:   sb.PAHeadroomDB,
				RxOverNoiseDB:  sb.RxOverNoiseDB,
			}
			ch, cn := relayd.BuildSessionChain(params, c.Grant.AmpDB)
			chains = append(chains, ch)
			cancels = append(cancels, cn)
			clientIDs = append(clientIDs, c.ID)
		}
		if len(chains) == 0 {
			continue
		}
		batch := pipeline.NewBatch(fmt.Sprintf("fleet-relay%d", r.ID), chains...)
		if batch.Sessions() != len(chains) {
			t.Fatalf("relay %d batch holds %d sessions, want %d", r.ID, batch.Sessions(), len(chains))
		}
		src := rng.New(4242 + int64(r.ID))
		blocks := make([][]complex128, len(chains))
		for i := range blocks {
			blocks[i] = src.NoiseVector(blockSamples, 1)
			cancels[i].SetReference(src.NoiseVector(blockSamples, 1))
		}
		batch.ProcessAll(blocks)
		for i, b := range blocks {
			for j, v := range b {
				if cmplx.IsNaN(v) || cmplx.IsInf(v) {
					t.Fatalf("relay %d client %d sample %d not finite: %v", r.ID, clientIDs[i], j, v)
				}
			}
		}
	}
}
