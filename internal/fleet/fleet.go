// Package fleet is the relay-pool layer above internal/relayd: a registry
// of N relays spread over one floor plan, each an independent admission
// domain (the daemon's extracted relayd.Gate over its own
// relay.BudgetAccount), and a client-assignment scheduler that places
// thousands of simulated clients on relays by STF-fingerprint selection
// (internal/ident) — the paper's Sec 6 primitive promoted to a pool-wide
// routing decision.
//
// Per-relay health is a position on the impair severity ladder
// (ideal…harsh). The scheduler rebalances with hysteresis when a relay
// saturates its budget or degrades: a client refused by its best
// fingerprint match spills to the next-best, a client on a degraded relay
// migrates make-before-break, and every move is dwell-limited in
// grant-count space so saturate/recover oscillation cannot flap
// assignments.
//
// RunSweep produces the fleet figure — aggregate throughput and p99
// client rate versus relay count × client density — through internal/par
// with bit-identical results for any worker count, recording the fleet.*
// metrics of OBSERVABILITY.md.
package fleet

import (
	"fmt"
	"sort"

	"fastforward/internal/floorplan"
	"fastforward/internal/ident"
	"fastforward/internal/impair"
	"fastforward/internal/relayd"
)

// Relay is one pool member: a placed admission domain with a fingerprint
// database of its currently assigned clients and a severity-ladder health
// state.
type Relay struct {
	// ID is the pool-unique relay identifier.
	ID int
	// Pos is the relay's position on the floor plan.
	Pos floorplan.Point
	// Gate is the relay's admission domain — the same cap+budget gate a
	// live ffrelayd runs (relayd.Gate).
	Gate *relayd.Gate
	// RxAtRelayDBm is the AP signal power arriving at this relay;
	// MaxTxDBm is its PA limit. Together they set the per-session PA
	// headroom of the Sec 3.5 budget.
	RxAtRelayDBm float64
	MaxTxDBm     float64

	// ep is the admission endpoint the scheduler actually calls: a
	// LocalEndpoint over Gate by default, or a WireEndpoint driving a
	// live ffrelayd (SetEndpoint). The Gate field stays exported either
	// way — it is the relay's reference admission domain, and tests
	// assert against it directly.
	ep Endpoint

	// cls is the relay's own-client fingerprint database: enrolled on
	// assignment, forgotten on migration (the paper's relays only forward
	// packets of their own network).
	cls *ident.Classifier
	// severity is the current rung on the impair severity ladder
	// (0 = ideal … 4 = harsh); degraded is the hysteresis latch.
	severity int
	degraded bool
}

// NewRelay builds a pool member at a position: a fresh gate with the
// given cap/threshold/policy and an empty aggressive-threshold
// fingerprint database. rxAtRelayDBm and maxTxDBm calibrate its Sec 3.5
// budgets (see Config in assign.go).
func NewRelay(id int, pos floorplan.Point, maxSessions int, minAmpDB float64, degrade bool, rxAtRelayDBm, maxTxDBm float64) *Relay {
	r := &Relay{
		ID:           id,
		Pos:          pos,
		Gate:         relayd.NewGate(maxSessions, minAmpDB, degrade),
		RxAtRelayDBm: rxAtRelayDBm,
		MaxTxDBm:     maxTxDBm,
		cls:          ident.NewClassifier(ident.AggressiveThreshold),
	}
	r.ep = LocalEndpoint{Gate: r.Gate}
	return r
}

// Endpoint returns the admission endpoint the scheduler calls for this
// relay.
func (r *Relay) Endpoint() Endpoint { return r.ep }

// SetEndpoint swaps the relay's admission endpoint (nil restores the
// LocalEndpoint over Gate). Swapping while sessions are admitted is the
// caller's bug — the scheduler's release calls would go to the wrong
// admission domain.
func (r *Relay) SetEndpoint(ep Endpoint) {
	if ep == nil {
		ep = LocalEndpoint{Gate: r.Gate}
	}
	r.ep = ep
}

// Classifier exposes the relay's own-client fingerprint database.
func (r *Relay) Classifier() *ident.Classifier { return r.cls }

// Severity returns the relay's current severity-ladder rank.
func (r *Relay) Severity() int { return r.severity }

// Live reports whether the scheduler treats the relay as assignable. It
// is the hysteresis latch, not the raw severity: a relay goes dark when
// its severity climbs to Config.DegradeSeverity and only returns once it
// falls back to Config.RecoverSeverity.
func (r *Relay) Live() bool { return !r.degraded }

// EffectiveCancellationDB returns the cancellation the relay achieves at
// its current health: the ideal figure clipped by the severity rung's
// impairment floor (impair.Profile.EffectiveCancellationDB).
func (r *Relay) EffectiveCancellationDB(idealDB float64) float64 {
	ladder := impair.SeverityLadder()
	if r.severity < 0 || r.severity >= len(ladder) {
		return idealDB
	}
	return ladder[r.severity].EffectiveCancellationDB(idealDB)
}

// Registry is the pool membership: relays in ascending-ID order. It is
// not concurrency-safe; the Pool serializes access.
type Registry struct {
	relays []*Relay
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add inserts a relay, keeping ID order. Duplicate IDs are an error —
// assignment preferences are keyed by relay ID.
func (g *Registry) Add(r *Relay) error {
	i := sort.Search(len(g.relays), func(i int) bool { return g.relays[i].ID >= r.ID })
	if i < len(g.relays) && g.relays[i].ID == r.ID {
		return fmt.Errorf("fleet: duplicate relay id %d", r.ID)
	}
	g.relays = append(g.relays, nil)
	copy(g.relays[i+1:], g.relays[i:])
	g.relays[i] = r
	return nil
}

// Remove deletes a relay by ID, reporting whether it was registered.
func (g *Registry) Remove(id int) bool {
	i := sort.Search(len(g.relays), func(i int) bool { return g.relays[i].ID >= id })
	if i >= len(g.relays) || g.relays[i].ID != id {
		return false
	}
	g.relays = append(g.relays[:i], g.relays[i+1:]...)
	return true
}

// Get returns the relay with the given ID.
func (g *Registry) Get(id int) (*Relay, bool) {
	i := sort.Search(len(g.relays), func(i int) bool { return g.relays[i].ID >= id })
	if i >= len(g.relays) || g.relays[i].ID != id {
		return nil, false
	}
	return g.relays[i], true
}

// Relays returns the members in ascending-ID order. The slice is the
// registry's own; callers must not mutate it.
func (g *Registry) Relays() []*Relay { return g.relays }

// Len returns the number of registered relays.
func (g *Registry) Len() int { return len(g.relays) }

// Live returns the number of live (assignable) relays.
func (g *Registry) Live() int {
	n := 0
	for _, r := range g.relays {
		if r.Live() {
			n++
		}
	}
	return n
}
