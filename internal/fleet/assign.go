package fleet

import (
	"sort"
	"strconv"

	"fastforward/internal/channel"
	"fastforward/internal/floorplan"
	"fastforward/internal/ident"
	"fastforward/internal/relay"
)

// Refused marks a client no relay could admit; it falls back to the AP's
// direct link.
const Refused = -1

// Link is one client's view of one relay: the measured channel between
// them, reduced to what the scheduler ranks on.
type Link struct {
	// RelayID names the relay this link reaches.
	RelayID int
	// GainDB is the average power gain of the relay→client channel
	// (negative; path loss). Its negation is the R→D attenuation of the
	// Sec 3.5 session budget.
	GainDB float64
	// FP is the client's STF fingerprint through this relay's channel —
	// the Sec 6 identification primitive. The relay enrolls it while the
	// client is assigned here.
	FP ident.Fingerprint
	// AffinityDB is the fingerprint's mean subcarrier energy in dB — the
	// ranking key for assignment (a stronger fingerprint is both easier
	// to classify and a better relayed link).
	AffinityDB float64
	// Identifiable reports that this relay's classifier picks the client
	// out against every other candidate at the aggressive threshold
	// (Sec 6: the filter must be selected before the PHY header
	// arrives). Identifiable links rank strictly ahead of unidentifiable
	// ones — a relay that cannot pick the client out must fall back to
	// late identification and loses the fast-forward head start, so it
	// is only used when nothing better admits.
	Identifiable bool
}

// Client is one simulated station and its assignment state.
type Client struct {
	// ID is the pool-unique client identifier.
	ID int
	// Pos is the client's position on the floor plan.
	Pos floorplan.Point
	// DirectSNRdB is the AP→client SNR without any relay (the fallback
	// service level, and what a refused client gets).
	DirectSNRdB float64
	// Links holds this client's candidate relays in RelayID order.
	Links []Link

	// Assigned is the serving relay's ID, or Refused.
	Assigned int
	// Grant is the sticky amplification grant from the serving relay.
	Grant relay.AmpDecision
	// Degraded reports the grant was bisected below the client's own
	// bound (gate degrade policy).
	Degraded bool
	// Stranded marks a client left on a non-live relay because no
	// alternative could admit it during rebalancing.
	Stranded bool

	// prefs is the fingerprint-ranked relay preference order.
	prefs []int
	// lastMoveGrant is the pool grant-count at this client's last
	// migration — the dwell clock. Zero means the client has never
	// migrated (initial assignment does not arm the damper).
	lastMoveGrant uint64
}

// Link returns the client's link to the given relay.
func (c *Client) Link(relayID int) (Link, bool) {
	i := sort.Search(len(c.Links), func(i int) bool { return c.Links[i].RelayID >= relayID })
	if i >= len(c.Links) || c.Links[i].RelayID != relayID {
		return Link{}, false
	}
	return c.Links[i], true
}

// Prefs returns the client's relay preference order (best first).
func (c *Client) Prefs() []int { return c.prefs }

// Config tunes the assignment scheduler.
type Config struct {
	// MinAmpDB is each relay gate's admission threshold
	// (relay.NewBudgetAccount).
	MinAmpDB float64
	// MaxSessionsPerRelay caps each gate (<= 0: uncapped).
	MaxSessionsPerRelay int
	// Degrade selects the gates' soft admission policy
	// (relay.BudgetAccount.AdmitDegraded).
	Degrade bool
	// DegradeSeverity is the ladder rank at which a relay goes dark
	// (stops accepting assignments and sheds clients); RecoverSeverity
	// is the rank it must fall back to before it serves again. The gap
	// between them is the health hysteresis band.
	DegradeSeverity int
	RecoverSeverity int
	// MinDwellGrants is the minimum number of pool-wide admission grants
	// between two migrations of the same client — the flap damper,
	// measured in grant-count space so it is deterministic (no wall
	// clock). Initial assignment never arms it.
	MinDwellGrants uint64
	// MaxAmpDB caps each granted amplification below the relay's raw PA
	// headroom (<= 0: uncapped). A modest cap keeps grants PA-bound with
	// slack against the shared noise floor, so one session cannot
	// consume the entire budget and freeze its relay.
	MaxAmpDB float64
	// BaseCancellationDB is the relays' ideal self-interference
	// cancellation; each relay's health clips it
	// (Relay.EffectiveCancellationDB).
	BaseCancellationDB float64
	// NoiseFigureDB lifts the thermal floor at every receiver.
	NoiseFigureDB float64
}

// DefaultConfig mirrors the testbed calibration: 110 dB ideal
// cancellation, 8 dB noise figure, degrade-at-severe / recover-at-mild
// hysteresis, a 16-grant dwell, and a 30 dB amplification cap (the
// paper's hardware gain regime).
func DefaultConfig() Config {
	return Config{
		MinAmpDB:            0,
		MaxSessionsPerRelay: 0,
		Degrade:             true,
		DegradeSeverity:     3, // severe
		RecoverSeverity:     1, // mild
		MinDwellGrants:      16,
		MaxAmpDB:            30,
		BaseCancellationDB:  110,
		NoiseFigureDB:       8,
	}
}

// noiseFloorDBm returns the effective receiver noise floor.
func (cfg Config) noiseFloorDBm() float64 {
	return channel.NoiseFloorDBm + cfg.NoiseFigureDB
}

// Pool is the scheduler: the registry plus every client it places. Not
// concurrency-safe — each sweep cell owns one Pool.
type Pool struct {
	cfg     Config
	reg     *Registry
	clients []*Client

	// grants counts successful admissions pool-wide; it is the
	// deterministic clock dwell times are measured against.
	grants uint64

	// Spilled counts assignments that landed below the client's best
	// live preference because a better relay refused. Migrations counts
	// successful rebalance moves. Refusals counts assignment passes that
	// exhausted every preference.
	Spilled    int
	Migrations int
	Refusals   int
}

// NewPool builds a scheduler over a registry.
func NewPool(cfg Config, reg *Registry) *Pool {
	return &Pool{cfg: cfg, reg: reg}
}

// Registry returns the pool's relay registry.
func (p *Pool) Registry() *Registry { return p.reg }

// Clients returns the pool's clients in ascending-ID order.
func (p *Pool) Clients() []*Client { return p.clients }

// Grants returns the pool-wide admission count (the dwell clock).
func (p *Pool) Grants() uint64 { return p.grants }

// AddClient registers a client and computes its fingerprint-ranked
// preference order. The client starts unassigned.
func (p *Pool) AddClient(c *Client) {
	c.Assigned = Refused
	c.prefs = rankPrefs(c.Links)
	i := sort.Search(len(p.clients), func(i int) bool { return p.clients[i].ID >= c.ID })
	p.clients = append(p.clients, nil)
	copy(p.clients[i+1:], p.clients[i:])
	p.clients[i] = c
}

// rankPrefs orders a client's candidate relays: identifiable links
// strictly before unidentifiable ones, then by descending fingerprint
// affinity, with ascending relay ID as the deterministic tie-break.
func rankPrefs(links []Link) []int {
	idx := make([]int, len(links))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		la, lb := links[idx[a]], links[idx[b]]
		if la.Identifiable != lb.Identifiable {
			return la.Identifiable
		}
		if la.AffinityDB != lb.AffinityDB {
			return la.AffinityDB > lb.AffinityDB
		}
		return la.RelayID < lb.RelayID
	})
	prefs := make([]int, len(idx))
	for i, j := range idx {
		prefs[i] = links[j].RelayID
	}
	return prefs
}

// sessionKey is the gate-side identity of one client's session.
func sessionKey(clientID int) string { return "c" + strconv.Itoa(clientID) }

// budgetFor translates one relay/link pair into the Sec 3.5 session
// budget its gate admits against. The PA headroom is clipped to
// Config.MaxAmpDB so grants stay PA-bound with shared-floor slack.
func (p *Pool) budgetFor(r *Relay, l Link) relay.SessionBudget {
	pa := r.MaxTxDBm - r.RxAtRelayDBm
	if p.cfg.MaxAmpDB > 0 && pa > p.cfg.MaxAmpDB {
		pa = p.cfg.MaxAmpDB
	}
	return relay.SessionBudget{
		CancellationDB: r.EffectiveCancellationDB(p.cfg.BaseCancellationDB),
		RDAttenDB:      -l.GainDB,
		PAHeadroomDB:   pa,
		RxOverNoiseDB:  r.RxAtRelayDBm - p.cfg.noiseFloorDBm(),
	}
}

// admitAt runs one guarded gate admission. A strict grant bound by the
// noise rule sits exactly on the shared floor at the current load:
// sticky grants have no slack, so every later candidate would violate
// it and the relay would be frozen at this session count. The pool
// refuses such grants (releasing the slot) rather than let one session
// monopolize a relay — the client spills to its next preference.
func (p *Pool) admitAt(r *Relay, c *Client, l Link) (relay.AmpDecision, bool, bool) {
	key := sessionKey(c.ID)
	dec, degraded, ref := r.ep.Admit(key, p.budgetFor(r, l))
	if ref != nil {
		return relay.AmpDecision{}, false, false
	}
	if dec.Bound == relay.AmpBoundNoiseRule {
		r.ep.Release(key)
		return relay.AmpDecision{}, false, false
	}
	return dec, degraded, true
}

// AssignAll places every unassigned client, in ascending client-ID
// order, on its best-ranked live relay that admits it. A refusal from a
// better-ranked live relay spills the client to the next preference; a
// client every preference refuses stays at Refused (and is retried by
// the next AssignAll or Rebalance).
func (p *Pool) AssignAll() {
	for _, c := range p.clients {
		if c.Assigned != Refused {
			continue
		}
		p.assign(c)
	}
}

// assign walks the client's preference order and admits it to the first
// live relay whose gate accepts. It reports success.
func (p *Pool) assign(c *Client) bool {
	sawLiveRefusal := false
	for _, id := range c.prefs {
		r, ok := p.reg.Get(id)
		if !ok || !r.Live() {
			continue
		}
		l, ok := c.Link(id)
		if !ok {
			continue
		}
		dec, degraded, ok := p.admitAt(r, c, l)
		if !ok {
			sawLiveRefusal = true
			continue
		}
		c.Assigned = id
		c.Grant = dec
		c.Degraded = degraded
		c.Stranded = false
		r.cls.Enroll(c.ID, l.FP)
		p.grants++
		if sawLiveRefusal {
			p.Spilled++
		}
		return true
	}
	c.Assigned = Refused
	c.Grant = relay.AmpDecision{}
	c.Degraded = false
	c.Stranded = false
	p.Refusals++
	return false
}

// release undoes a client's current assignment: gate slot freed,
// fingerprint forgotten.
func (p *Pool) release(c *Client) {
	if c.Assigned == Refused {
		return
	}
	if r, ok := p.reg.Get(c.Assigned); ok {
		r.ep.Release(sessionKey(c.ID))
		r.cls.Forget(c.ID)
	}
	c.Assigned = Refused
	c.Grant = relay.AmpDecision{}
	c.Degraded = false
	c.Stranded = false
}

// AdmittedLoad sums every live grant's residual load across the pool —
// bounded by construction by the sum of per-relay budget targets (each
// gate enforces its own account).
func (p *Pool) AdmittedLoad() float64 {
	var load float64
	for _, r := range p.reg.Relays() {
		load += r.ep.ResidualLoad()
	}
	return load
}
