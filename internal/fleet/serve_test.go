package fleet

import (
	"reflect"
	"strings"
	"testing"

	"fastforward/internal/obs"
	"fastforward/internal/rng"
)

// serveTestSeed matches the fleet-smoke seed: a grid where refusals,
// spills, migrations, and strandings all naturally occur, so the wire
// REFUSE → spill mapping is actually exercised.
const serveTestSeed = 2

// runServeCell runs one seeded cell end to end — assignment, healthy
// evaluation, forced failure, rebalance — against either local gates or
// live in-process daemons, returning the books and snapshots at both
// stages. In wire mode it also bit-verifies one admitted session.
func runServeCell(t *testing.T, wire bool) (healthyBooks, failedBooks Books, healthy, failed Snapshot) {
	t.Helper()
	sc, err := scenarioByName("home")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := DefaultCellConfig(sc, 3, 40, rng.ItemSeed(serveTestSeed, 3))
	// A session cap well under the client count forces genuine
	// session_limit REFUSEs (not just noise-rule walk-backs), so the
	// wire's REFUSE → spill mapping is on the critical path.
	ccfg.Pool.MaxSessionsPerRelay = 8
	cell := BuildCell(ccfg)
	pool := cell.Pool

	if wire {
		pp, err := NewProcessPool(pool.Registry(), ProcessPoolConfig{
			Pool: ccfg.Pool,
			Spec: DefaultWireSpec(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer pp.Close()
	}

	pool.AssignAll()
	healthyBooks = pool.Books()
	healthy = cell.Evaluate()

	if wire {
		if err := verifyOneWireSession(pool); err != nil {
			t.Fatalf("wire session bit-verification: %v", err)
		}
	}

	failID := busiestRelay(pool)
	pool.SetHealth(failID, 3)
	pool.Rebalance()
	failedBooks = pool.Books()
	failed = cell.Evaluate()
	return healthyBooks, failedBooks, healthy, failed
}

// TestServeModeWireMatchesLocal is the seam's acceptance test: the same
// seeded cell run against live ffrelayd daemons over loopback TCP books
// exactly the same assignments, spills, and strandings as the in-process
// gates, with at least one admitted wire session's output bit-verified
// against its local replica chain (runServeCell).
func TestServeModeWireMatchesLocal(t *testing.T) {
	lh, lf, lhs, lfs := runServeCell(t, false)
	wh, wf, whs, wfs := runServeCell(t, true)

	if !reflect.DeepEqual(lh, wh) {
		t.Errorf("healthy books differ between serve modes:\nlocal %+v\nwire  %+v", lh, wh)
	}
	if !reflect.DeepEqual(lf, wf) {
		t.Errorf("post-failure books differ between serve modes:\nlocal %+v\nwire  %+v", lf, wf)
	}
	if !reflect.DeepEqual(lhs, whs) {
		t.Errorf("healthy snapshots differ between serve modes:\nlocal %+v\nwire  %+v", lhs, whs)
	}
	if !reflect.DeepEqual(lfs, wfs) {
		t.Errorf("post-failure snapshots differ between serve modes:\nlocal %+v\nwire  %+v", lfs, wfs)
	}
	if lh.Grants == 0 {
		t.Fatal("cell booked no grants; the comparison is vacuous")
	}
}

// sweepMetrics runs the smoke's sweep grid in the given mode and returns
// the resulting obs metrics.
func sweepMetrics(t *testing.T, wire bool) map[string]obs.MetricSnapshot {
	t.Helper()
	reg := obs.New()
	cfg := DefaultSweepConfig(serveTestSeed)
	cfg.RelayCounts = []int{1, 3}
	cfg.ClientCounts = []int{20, 40}
	cfg.Workers = 4
	cfg.Obs = reg
	cfg.ServeWire = wire
	cfg.Pool.MaxSessionsPerRelay = 8 // provoke session_limit REFUSEs, not just noise-rule spills
	if _, err := RunSweep(cfg); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot().Metrics
}

// TestServeModeSweepManifestsMatch diffs the whole sweep's obs manifest
// between modes: every fleet.* metric must be bit-identical; only the
// fleet.wire.* transport metrics may (and must) appear in wire mode.
func TestServeModeSweepManifestsMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("wire sweep spawns a daemon per relay per cell")
	}
	local := sweepMetrics(t, false)
	wire := sweepMetrics(t, true)

	wireOnly := make(map[string]obs.MetricSnapshot)
	for name, ms := range wire {
		if strings.HasPrefix(name, "fleet.wire.") {
			wireOnly[name] = ms
			delete(wire, name)
		}
	}
	if !reflect.DeepEqual(local, wire) {
		for name, lm := range local {
			if wm, ok := wire[name]; !ok || !reflect.DeepEqual(lm, wm) {
				t.Errorf("metric %s differs: local %+v, wire %+v", name, lm, wire[name])
			}
		}
		for name := range wire {
			if _, ok := local[name]; !ok {
				t.Errorf("metric %s present only in wire mode", name)
			}
		}
	}
	counterVal := func(m map[string]obs.MetricSnapshot, name string) float64 {
		ms, ok := m[name]
		if !ok || ms.Value == nil {
			return 0
		}
		return *ms.Value
	}
	if counterVal(local, "fleet.spilled") == 0 {
		t.Error("sweep grid produced no spills; the REFUSE mapping went unexercised")
	}
	for _, name := range []string{"fleet.wire.hellos", "fleet.wire.accepted", "fleet.wire.refused",
		"fleet.wire.releases", "fleet.wire.load_queries", "fleet.wire.verified_sessions", "fleet.wire.blocks"} {
		if counterVal(wireOnly, name) == 0 {
			t.Errorf("%s = 0, want nonzero in wire mode", name)
		}
	}
	if n := counterVal(wireOnly, "fleet.wire.io_errors"); n != 0 {
		t.Errorf("fleet.wire.io_errors = %v, want 0 (loopback daemons must not flap)", n)
	}
}
